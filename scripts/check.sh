#!/usr/bin/env bash
# One-command tier-1 verify: configure + build + ctest.
#   scripts/check.sh [build-dir]      (extra CMake args via CMAKE_ARGS)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
