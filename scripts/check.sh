#!/usr/bin/env bash
# One-command verify: configure + build + ctest.
#   scripts/check.sh [--tier1|--tier2|--bench|--lint|--asan|--tidy|--chaos]
#                    [build-dir]             (extra CMake args via CMAKE_ARGS)
#
# Default runs every ctest suite. --tier1 runs only the fast unit/property
# suites (label tier1), which include the incremental-refresh equivalence
# harness (test_incremental_refresh); --tier2 runs the end-to-end scenario
# regression harness (label tier2), which trains every scenario's SGM arm
# AND its incremental-refresh configuration at num_threads=1 and =4 and
# asserts the histories are byte-identical.
# --bench builds Release and runs the train-step benchmark, the
# refresh-path benchmark and the serving-engine benchmark with
# SGM_BENCH_JSON=1, leaving BENCH_train_step.json,
# BENCH_incremental_refresh.json and BENCH_serve.json in the build dir
# (the perf-smoke / serve-smoke CI jobs do the same; compare against
# bench/baselines/).
# --lint runs the determinism lint (self-test first, then the tree) without
# building anything. --asan builds with SGM_ASAN=ON into <build-dir>-asan and
# runs tier1 under AddressSanitizer+UBSan. --tidy runs clang-tidy over src/
# using the compile_commands.json of the build dir (requires clang-tidy on
# PATH; CI provides it). --chaos is the failure-model gate: the failpoint /
# durability / recovery suite (test_robustness) under ASan+UBSan, then the
# serving degradation + socket fault suites (test_serve, test_socket) under
# TSan — every fault path exercised with memory and race checking on.
set -euo pipefail

cd "$(dirname "$0")/.."

TIER=""
case "${1:-}" in
  --tier1) TIER="tier1"; shift ;;
  --tier2) TIER="tier2"; shift ;;
  --bench) TIER="bench"; shift ;;
  --lint)  TIER="lint";  shift ;;
  --asan)  TIER="asan";  shift ;;
  --tidy)  TIER="tidy";  shift ;;
  --chaos) TIER="chaos"; shift ;;
esac
BUILD_DIR="${1:-build}"

if [[ "$TIER" == "lint" ]]; then
  python3 scripts/lint_determinism.py --self-test
  python3 scripts/lint_determinism.py
  exit 0
fi

if [[ "$TIER" == "asan" ]]; then
  BUILD_DIR="${1:-build-asan}"
  cmake -B "$BUILD_DIR" -S . -DSGM_ASAN=ON -DSGM_BUILD_BENCH=OFF \
    -DSGM_BUILD_EXAMPLES=OFF ${CMAKE_ARGS:-}
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure -j "$(nproc)"
  exit 0
fi

if [[ "$TIER" == "chaos" ]]; then
  ASAN_DIR="${1:-build-chaos-asan}"
  TSAN_DIR="${ASAN_DIR%-asan}-tsan"
  cmake -B "$ASAN_DIR" -S . -DSGM_ASAN=ON -DSGM_BUILD_BENCH=OFF \
    -DSGM_BUILD_EXAMPLES=OFF ${CMAKE_ARGS:-}
  cmake --build "$ASAN_DIR" -j "$(nproc)" --target test_robustness
  ctest --test-dir "$ASAN_DIR" -R test_robustness --output-on-failure
  cmake -B "$TSAN_DIR" -S . -DSGM_TSAN=ON -DSGM_BUILD_BENCH=OFF \
    -DSGM_BUILD_EXAMPLES=OFF ${CMAKE_ARGS:-}
  cmake --build "$TSAN_DIR" -j "$(nproc)" --target test_serve test_socket
  ctest --test-dir "$TSAN_DIR" -R 'test_serve|test_socket' \
    --output-on-failure
  exit 0
fi

cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j "$(nproc)"

if [[ "$TIER" == "bench" ]]; then
  if [[ ! -x "$BUILD_DIR/bench_train_step" ]]; then
    echo "bench_train_step not built (Google Benchmark missing?)" >&2
    exit 1
  fi
  (cd "$BUILD_DIR" && SGM_BENCH_JSON=1 ./bench_train_step)
  echo "Wrote $BUILD_DIR/BENCH_train_step.json"
  (cd "$BUILD_DIR" && SGM_BENCH_JSON=1 ./bench_incremental_refresh)
  echo "Wrote $BUILD_DIR/BENCH_incremental_refresh.json"
  (cd "$BUILD_DIR" && SGM_BENCH_JSON=1 ./bench_serve)
  echo "Wrote $BUILD_DIR/BENCH_serve.json"
elif [[ "$TIER" == "tidy" ]]; then
  command -v clang-tidy >/dev/null || {
    echo "clang-tidy not found on PATH" >&2; exit 1; }
  mapfile -t TIDY_SOURCES < <(find src -name '*.cpp' | sort)
  clang-tidy -p "$BUILD_DIR" --quiet --warnings-as-errors='*' \
    "${TIDY_SOURCES[@]}"
elif [[ "$TIER" == "tier2" ]]; then
  ctest --test-dir "$BUILD_DIR" -L tier2 --output-on-failure
elif [[ "$TIER" == "tier1" ]]; then
  ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure -j "$(nproc)"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
fi
