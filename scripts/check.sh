#!/usr/bin/env bash
# One-command verify: configure + build + ctest.
#   scripts/check.sh [--tier1|--tier2] [build-dir]   (extra CMake args via CMAKE_ARGS)
#
# Default runs every ctest suite. --tier1 runs only the fast unit/property
# suites (label tier1); --tier2 runs the end-to-end scenario regression
# harness (label tier2), which itself trains every scenario's SGM arm at
# num_threads=1 and =4 and asserts the histories are byte-identical.
set -euo pipefail

cd "$(dirname "$0")/.."

TIER=""
case "${1:-}" in
  --tier1) TIER="tier1"; shift ;;
  --tier2) TIER="tier2"; shift ;;
esac
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j "$(nproc)"

if [[ "$TIER" == "tier2" ]]; then
  ctest --test-dir "$BUILD_DIR" -L tier2 --output-on-failure
elif [[ "$TIER" == "tier1" ]]; then
  ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure -j "$(nproc)"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
fi
