#!/usr/bin/env python3
"""Determinism & locking-discipline lint for the sgm-pinn sources.

The library's contract is byte-identical results at any thread count
(docs/TESTING.md "Determinism"). Most violations of that contract enter the
tree through one of a handful of textual patterns, so this lint bans them
outright in src/:

  raw-mutex        std::mutex / std::lock_guard / std::unique_lock /
                   std::condition_variable / std::scoped_lock / shared or
                   timed mutexes anywhere outside src/util/mutex.hpp. All
                   locking goes through the capability-annotated wrappers so
                   clang -Wthread-safety can check the discipline; a raw
                   mutex is invisible to the analysis.
  raw-rand         rand() / srand() / std::random_device outside
                   src/util/rng.*. All randomness flows from the seedable
                   util::Rng; an ambient entropy source breaks run-to-run
                   reproducibility.
  time-seeded-rng  constructing any RNG from time(), a <chrono> clock or
                   clock() — the classic nondeterministic seed.
  std-async        std::async: its launch policy (and therefore execution
                   interleaving and the thread that runs the task) is
                   implementation-defined; use util::ThreadPool /
                   parallel_for_chunks, whose chunk layout is deterministic.
  unordered-accum  a range-for over a std::unordered_map/unordered_set
                   declared in the same file whose body does `+=`
                   accumulation. Hash-table iteration order is unspecified,
                   so floating-point accumulation over it is
                   layout-dependent. (Membership tests and lookups are fine.)
  failpoint-rng    a <random> engine or distribution anywhere outside
                   src/util/rng.*. Probabilistic decisions — including the
                   failpoint registry's `prob:` sites — must draw from a
                   seedable util::Rng, so a chaos run replays exactly given
                   SGM_FAILPOINT_SEED. Enforced structurally too: the
                   failpoint machinery (src/util/failpoint.cpp) must
                   reference util::Rng for its probability draw.
  fp-contract      every translation unit that includes the GEMM
                   micro-kernels (gemm_kernels.inl) must be compiled with
                   -ffp-contract=off in CMakeLists.txt, otherwise the
                   compiler may fuse mul+add in the tile loops but not the
                   edge loops and C(i,j) becomes tiling-dependent.

Usage:
  scripts/lint_determinism.py [--root DIR]   lint DIR (default: repo root)
  scripts/lint_determinism.py --self-test    prove each rule fires on a bad
                                             fixture and stays quiet on a
                                             clean one

Exit status: 0 clean, 1 findings (or self-test failure).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile

SRC_EXTENSIONS = {".hpp", ".cpp", ".inl", ".h", ".cc"}

# Files allowed to touch the raw primitives a rule otherwise bans.
RAW_MUTEX_ALLOWED = {"src/util/mutex.hpp"}
RAW_RAND_ALLOWED = {"src/util/rng.hpp", "src/util/rng.cpp"}

RAW_MUTEX_RE = re.compile(
    r"std::(mutex|lock_guard|unique_lock|scoped_lock|condition_variable(_any)?"
    r"|shared_mutex|shared_lock|timed_mutex|recursive_mutex)\b")
RAW_RAND_RE = re.compile(r"(?<![\w:])(rand|srand)\s*\(|std::random_device")
STD_RANDOM_ENGINE_RE = re.compile(
    r"std::(mt19937(_64)?|minstd_rand0?|default_random_engine|knuth_b"
    r"|ranlux\w+|(uniform_real|uniform_int|bernoulli|normal|poisson"
    r"|discrete|exponential|geometric)_distribution)\b")
STD_ASYNC_RE = re.compile(r"std::async\b")
# An RNG constructed with a seed expression mentioning a clock. Covers both
# util::Rng and the <random> engines (which are themselves suspicious in
# src/, but the seed is the determinism bug).
TIME_SEED_RE = re.compile(
    r"\b(Rng|mt19937(_64)?|default_random_engine|minstd_rand0?|ranlux\w+)\s*"
    r"(\w+\s*)?[({][^;]*\b(time\s*\(|chrono|::clock\s*\(|clock\s*\(\))")
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(map|set|multimap|multiset)\s*<[^;{]*>\s+(\w+)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;)]*?:\s*([^)]+)\)")
ACCUM_RE = re.compile(r"[-+*]=")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line numbers."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.extend(ch if ch == "\n" else " " for ch in text[i:end])
            i = end
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def brace_block(text: str, open_pos: int) -> str:
    """The {...} block starting at the first '{' at/after open_pos."""
    start = text.find("{", open_pos)
    if start < 0:  # single-statement loop body: up to the next ';'
        end = text.find(";", open_pos)
        return text[open_pos:end if end >= 0 else len(text)]
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[start:i + 1]
    return text[start:]


def check_file(rel: str, text: str) -> list[Finding]:
    findings: list[Finding] = []
    code = strip_comments_and_strings(text)

    if rel not in RAW_MUTEX_ALLOWED:
        for m in RAW_MUTEX_RE.finditer(code):
            findings.append(Finding(
                rel, line_of(code, m.start()), "raw-mutex",
                f"{m.group(0)} bypasses the annotated util::Mutex wrappers "
                "(util/mutex.hpp); clang -Wthread-safety cannot see it"))

    if rel not in RAW_RAND_ALLOWED:
        for m in RAW_RAND_RE.finditer(code):
            findings.append(Finding(
                rel, line_of(code, m.start()), "raw-rand",
                "ambient entropy source; all randomness must flow from a "
                "seedable util::Rng"))

    if rel not in RAW_RAND_ALLOWED:
        for m in STD_RANDOM_ENGINE_RE.finditer(code):
            findings.append(Finding(
                rel, line_of(code, m.start()), "failpoint-rng",
                f"{m.group(0)} bypasses util::Rng; probabilistic decisions "
                "(incl. failpoint prob: sites) must come from the seedable "
                "util::Rng so runs replay exactly"))

    for m in STD_ASYNC_RE.finditer(code):
        findings.append(Finding(
            rel, line_of(code, m.start()), "std-async",
            "launch policy and executing thread are implementation-defined; "
            "use util::ThreadPool / parallel_for_chunks"))

    for m in TIME_SEED_RE.finditer(code):
        findings.append(Finding(
            rel, line_of(code, m.start()), "time-seeded-rng",
            "RNG seeded from a clock is nondeterministic run-to-run; take "
            "the seed as a parameter"))

    unordered_names = {m.group(2) for m in UNORDERED_DECL_RE.finditer(code)}
    if unordered_names:
        for m in RANGE_FOR_RE.finditer(code):
            range_expr = m.group(1)
            tokens = set(re.findall(r"\w+", range_expr))
            hit = tokens & unordered_names
            if not hit:
                continue
            body = brace_block(code, m.end())
            if ACCUM_RE.search(body):
                findings.append(Finding(
                    rel, line_of(code, m.start()), "unordered-accum",
                    f"accumulation over unordered container '{hit.pop()}' "
                    "depends on hash-table iteration order; iterate a sorted "
                    "view or an ordered container"))
    return findings


def check_fp_contract(root: pathlib.Path) -> list[Finding]:
    """Every TU including gemm_kernels.inl must get -ffp-contract=off."""
    findings: list[Finding] = []
    cmake_path = root / "CMakeLists.txt"
    if not cmake_path.exists():
        return [Finding("CMakeLists.txt", 1, "fp-contract",
                        "CMakeLists.txt not found")]
    cmake = cmake_path.read_text()

    kernel_tus: list[pathlib.Path] = []
    src = root / "src"
    if src.is_dir():
        for path in sorted(src.rglob("*.cpp")):
            if re.search(r'#\s*include\s*"[^"]*gemm_kernels\.inl"',
                         path.read_text()):
                kernel_tus.append(path.relative_to(root))

    for tu in kernel_tus:
        # Find a set_source_files_properties(...) stanza naming this TU and
        # carrying -ffp-contract=off in its COMPILE_OPTIONS.
        ok = False
        for m in re.finditer(r"set_source_files_properties\s*\(([^)]*)\)",
                             cmake, re.S):
            stanza = m.group(1)
            if str(tu) in stanza and "-ffp-contract=off" in stanza:
                ok = True
                break
        if not ok:
            findings.append(Finding(
                str(tu), 1, "fp-contract",
                "includes gemm_kernels.inl but CMakeLists.txt does not set "
                "-ffp-contract=off for it; contraction makes C(i,j) depend "
                "on where a row falls in the tiling"))
    return findings


def check_failpoint_routing(root: pathlib.Path) -> list[Finding]:
    """The failpoint machinery must draw its prob: decisions from util::Rng.

    The textual engine ban above catches a <random> rewrite; this structural
    check catches the subtler regression where the probability draw stops
    going through a seedable Rng at all (hash-of-pointer tricks, counters).
    """
    fp = root / "src" / "util" / "failpoint.cpp"
    if not fp.exists():
        return []
    code = strip_comments_and_strings(fp.read_text())
    if not re.search(r"\bRng\b", code):
        return [Finding(
            "src/util/failpoint.cpp", 1, "failpoint-rng",
            "failpoint prob: decisions must draw from a seedable util::Rng "
            "(SGM_FAILPOINT_SEED replay contract), but the file no longer "
            "references Rng")]
    return []


def lint(root: pathlib.Path) -> list[Finding]:
    findings: list[Finding] = []
    src = root / "src"
    if src.is_dir():
        for path in sorted(src.rglob("*")):
            if path.suffix in SRC_EXTENSIONS and path.is_file():
                rel = str(path.relative_to(root)).replace("\\", "/")
                findings.extend(check_file(rel, path.read_text()))
    findings.extend(check_fp_contract(root))
    findings.extend(check_failpoint_routing(root))
    return findings


# ---------------------------------------------------------------------------
# Self-test: every rule must fire on its bad fixture and stay quiet on the
# clean one. Run by tier-1 CI so a regressed regex cannot silently stop
# guarding the tree.
# ---------------------------------------------------------------------------

BAD_FIXTURE = """
#include <mutex>
#include <random>
#include <future>
#include <unordered_map>
std::mutex raw_mu;                                   // raw-mutex
void f() {
  std::lock_guard<std::mutex> lock(raw_mu);          // raw-mutex (x2)
  int r = rand();                                    // raw-rand
  std::random_device rd;                             // raw-rand
  std::mt19937 gen(std::chrono::steady_clock::now().time_since_epoch().count());
  std::uniform_real_distribution<double> dist(0, 1); // failpoint-rng
  auto fut = std::async([] { return 1; });           // std-async
  std::unordered_map<int, double> weights;
  double total = 0.0;
  for (const auto& [k, v] : weights) {
    total += v;                                      // unordered-accum
  }
}
"""

CLEAN_FIXTURE = """
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include <unordered_map>
// Comment mentioning std::mutex and rand() must not trip the lint.
void g(sgm::util::Rng& rng) {
  const char* s = "std::async in a string literal";
  sgm::util::Mutex mu;
  sgm::util::MutexLock lock(mu);
  double x = rng.uniform();
  std::unordered_map<int, double> lookup;
  double y = lookup.count(1) ? lookup[1] : x;  // lookup, not iteration
  (void)s; (void)y;
}
"""

BAD_CMAKE = """
add_library(x STATIC src/tensor/matrix.cpp)
# no fp-contract property at all
"""

BAD_KERNEL_TU = """
#include "tensor/gemm_kernels.inl"
"""


def self_test() -> int:
    failures: list[str] = []

    def expect(name: str, cond: bool):
        if not cond:
            failures.append(name)

    bad = check_file("src/bad.cpp", BAD_FIXTURE)
    rules = {f.rule for f in bad}
    expect("raw-mutex fires", "raw-mutex" in rules)
    expect("raw-rand fires", "raw-rand" in rules)
    expect("time-seeded-rng fires", "time-seeded-rng" in rules)
    expect("std-async fires", "std-async" in rules)
    expect("failpoint-rng fires", "failpoint-rng" in rules)
    expect("unordered-accum fires", "unordered-accum" in rules)

    clean = check_file("src/clean.cpp", CLEAN_FIXTURE)
    expect("clean fixture is clean",
           not clean or [str(f) for f in clean] == [])

    # Allowlisted paths may use the raw primitives.
    allowed = check_file("src/util/mutex.hpp", "std::mutex m_;")
    expect("mutex.hpp allowlisted", not allowed)

    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        (root / "src" / "tensor").mkdir(parents=True)
        (root / "src" / "tensor" / "matrix.cpp").write_text(BAD_KERNEL_TU)
        (root / "CMakeLists.txt").write_text(BAD_CMAKE)
        fp = check_fp_contract(root)
        expect("fp-contract fires on missing property",
               any(f.rule == "fp-contract" for f in fp))

        (root / "CMakeLists.txt").write_text(
            'set_source_files_properties(src/tensor/matrix.cpp PROPERTIES\n'
            '  COMPILE_OPTIONS "-ffp-contract=off")\n')
        fp_ok = check_fp_contract(root)
        expect("fp-contract quiet when property present", not fp_ok)

        # Structural failpoint-rng check: fires when failpoint.cpp stops
        # routing through Rng, quiet when it does.
        (root / "src" / "util").mkdir(parents=True)
        fp_cpp = root / "src" / "util" / "failpoint.cpp"
        fp_cpp.write_text("bool fire() { return counter++ % 7 == 0; }\n")
        expect("failpoint-rng fires on Rng-free failpoint.cpp",
               any(f.rule == "failpoint-rng"
                   for f in check_failpoint_routing(root)))
        fp_cpp.write_text("// prob draw\nbool fire(Rng& rng) "
                          "{ return rng.uniform() < p; }\n")
        expect("failpoint-rng quiet when routed through Rng",
               not check_failpoint_routing(root))

    if failures:
        for name in failures:
            print(f"SELF-TEST FAIL: {name}", file=sys.stderr)
        return 1
    print("lint_determinism self-test: all rules fire on bad fixtures and "
          "stay quiet on clean ones")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repository root (default: script's parent dir)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules against built-in fixtures")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = pathlib.Path(args.root) if args.root else \
        pathlib.Path(__file__).resolve().parent.parent
    findings = lint(root)
    for f in findings:
        print(f)
    if findings:
        print(f"\n{len(findings)} determinism-lint finding(s)",
              file=sys.stderr)
        return 1
    print("lint_determinism: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
