// Sampler refresh overhead (Sections 3.1/3.5): SGM-PINN's key efficiency
// claim is that scoring r% of each cluster replaces scoring every sample.
// This bench measures one refresh of each strategy against the same
// network/problem, plus the per-refresh forward-pass counts.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/sgm_sampler.hpp"
#include "nn/mlp.hpp"
#include "pinn/pde.hpp"
#include "samplers/mis.hpp"
#include "util/rng.hpp"

using namespace sgm;

namespace {

struct Fixture {
  pinn::PoissonProblem problem;
  nn::Mlp net;

  explicit Fixture(std::size_t n)
      : problem(make_problem(n)), net(make_net()) {}

  static pinn::PoissonProblem::Options make_problem_options(std::size_t n) {
    pinn::PoissonProblem::Options o;
    o.interior_points = n;
    o.boundary_points = 256;
    return o;
  }
  static pinn::PoissonProblem make_problem(std::size_t n) {
    return pinn::PoissonProblem(make_problem_options(n));
  }
  static nn::Mlp make_net() {
    nn::MlpConfig cfg;
    cfg.input_dim = 2;
    cfg.output_dim = 1;
    cfg.width = 48;
    cfg.depth = 4;
    util::Rng rng(5);
    return nn::Mlp(cfg, rng);
  }

  samplers::LossEvaluator evaluator() {
    return [this](const std::vector<std::uint32_t>& rows) {
      return problem.pointwise_residual(net, rows);
    };
  }
};

void BM_RefreshMisFull(benchmark::State& state) {
  Fixture fx(static_cast<std::size_t>(state.range(0)));
  samplers::MisOptions opt;
  opt.refresh_every = 1;
  opt.num_seeds = 0;  // Modulus default: score the entire dataset
  auto eval = fx.evaluator();
  util::Rng rng(1);
  std::uint64_t it = 0;
  samplers::MisSampler sampler(fx.problem.interior_points(), opt);
  for (auto _ : state) {
    sampler.maybe_refresh(it, eval, rng);
    it += 1;
  }
  state.counters["loss_evals_per_refresh"] = benchmark::Counter(
      static_cast<double>(sampler.loss_evaluations()) / it);
}
BENCHMARK(BM_RefreshMisFull)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void BM_RefreshMisSeeded(benchmark::State& state) {
  Fixture fx(static_cast<std::size_t>(state.range(0)));
  samplers::MisOptions opt;
  opt.refresh_every = 1;
  opt.num_seeds = static_cast<std::size_t>(state.range(0)) / 20;
  auto eval = fx.evaluator();
  util::Rng rng(1);
  std::uint64_t it = 0;
  samplers::MisSampler sampler(fx.problem.interior_points(), opt);
  for (auto _ : state) {
    sampler.maybe_refresh(it, eval, rng);
    it += 1;
  }
  state.counters["loss_evals_per_refresh"] = benchmark::Counter(
      static_cast<double>(sampler.loss_evaluations()) / it);
}
BENCHMARK(BM_RefreshMisSeeded)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void BM_RefreshSgm(benchmark::State& state) {
  // One SGM score+epoch refresh (clusters prebuilt, as on the tau_e path).
  Fixture fx(static_cast<std::size_t>(state.range(0)));
  core::SgmOptions opt;
  opt.pgm.knn.k = 10;
  opt.lrd.levels = 8;
  opt.tau_e = 1;
  opt.tau_g = 0;
  opt.rep_fraction = 0.15;  // the paper's r
  core::SgmSampler sampler(fx.problem.interior_points(), opt);
  auto eval = fx.evaluator();
  util::Rng rng(1);
  std::uint64_t it = 0;
  for (auto _ : state) {
    sampler.maybe_refresh(it, eval, rng);
    it += 1;
  }
  state.counters["loss_evals_per_refresh"] = benchmark::Counter(
      static_cast<double>(sampler.loss_evaluations()) / it);
  state.counters["clusters"] =
      benchmark::Counter(sampler.clusters().num_clusters());
}
BENCHMARK(BM_RefreshSgm)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void BM_RefreshSgmWithIsr(benchmark::State& state) {
  Fixture fx(static_cast<std::size_t>(state.range(0)));
  core::SgmOptions opt;
  opt.pgm.knn.k = 10;
  opt.lrd.levels = 8;
  opt.tau_e = 1;
  opt.tau_g = 0;
  opt.rep_fraction = 0.15;
  opt.use_isr = true;
  opt.isr.rank = 6;
  opt.isr.subspace_iterations = 4;
  core::SgmSampler sampler(fx.problem.interior_points(), opt);
  auto eval = fx.evaluator();
  util::Rng rng(1);
  std::uint64_t it = 0;
  for (auto _ : state) {
    sampler.maybe_refresh(it, eval, rng);
    it += 1;
  }
  state.counters["loss_evals_per_refresh"] = benchmark::Counter(
      static_cast<double>(sampler.loss_evaluations()) / it);
}
BENCHMARK(BM_RefreshSgmWithIsr)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void BM_GraphRebuildTauG(benchmark::State& state) {
  // The tau_G path: full S1+S2 rebuild. Second arg = num_threads for the
  // parallel refresh engine (1 = serial path); the 50k-point rows are the
  // scaling check for the thread-pool speedup, and the clustering is
  // byte-identical at every thread count.
  Fixture fx(static_cast<std::size_t>(state.range(0)));
  const auto threads = static_cast<std::size_t>(state.range(1));
  core::PgmOptions pgm;
  pgm.knn.k = 10;
  pgm.num_threads = threads;
  graph::LrdOptions lrd;
  lrd.levels = 8;
  lrd.num_threads = threads;
  for (auto _ : state) {
    auto g = core::build_pgm(fx.problem.interior_points(), nullptr, pgm);
    auto c = graph::lrd_decompose(g, lrd);
    benchmark::DoNotOptimize(c.num_clusters);
  }
  state.counters["num_threads"] =
      benchmark::Counter(static_cast<double>(threads));
}
BENCHMARK(BM_GraphRebuildTauG)
    ->Args({4096, 1})
    ->Args({16384, 1})
    ->Args({16384, 4})
    ->Args({50000, 1})
    ->Args({50000, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: SGM_BENCH_JSON=1 mirrors the experiment benches' machine-
// readable output by routing google-benchmark's JSON reporter to a file, so
// the rebuild wall times (including the thread-count sweep above) land in
// BENCH_overhead_sampling.json.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_overhead_sampling.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (const char* env = std::getenv("SGM_BENCH_JSON");
      env && std::string(env) != "0") {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
