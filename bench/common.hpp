#pragma once
// Shared harness for the experiment benches: configures the paper's
// sampling-method arms, runs them under a wall-time budget, and prints
// table/figure data in the paper's format.
//
// Scale note: the paper trains 512x6 networks on 0.5M-16M points for hours
// on a V100. These benches run the same controlled comparison — identical
// trainer/network/problem per arm, only the sampler differs — scaled to
// one CPU core. Budgets are configurable:
//   SGM_BENCH_BUDGET   seconds of train wall time per arm (default 30)
//   SGM_BENCH_SEEDS    number of seeds averaged, as in the paper (default 1)
//   SGM_BENCH_THREADS  worker threads for SGM rebuilds (default: the arm's
//                      sgm.num_threads, whose 0 = hardware concurrency)

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/sgm_sampler.hpp"
#include "nn/mlp.hpp"
#include "pinn/pde.hpp"
#include "pinn/trainer.hpp"
#include "samplers/mis.hpp"
#include "samplers/uniform.hpp"

namespace sgm::bench {

double budget_seconds(double fallback = 30.0);
int num_seeds(int fallback = 1);
/// SGM_BENCH_THREADS override for the SGM arms' rebuild thread count;
/// returns `fallback` when the env var is unset or invalid.
std::size_t bench_threads(std::size_t fallback = 0);

enum class SamplerKind { kUniform, kMis, kSgm, kSgmS };

struct Arm {
  std::string label;             ///< e.g. "U_500", "SGM_500 (ours)"
  SamplerKind kind = SamplerKind::kUniform;
  std::size_t batch_size = 128;
  core::SgmOptions sgm{};        ///< used by kSgm / kSgmS
  samplers::MisOptions mis{};    ///< used by kMis
};

struct ArmResult {
  Arm arm;
  /// Averaged error-vs-time curves: per record, wall seconds and the named
  /// validation errors (metric order fixed by the problem).
  std::vector<pinn::TrainRecord> records;
  std::vector<std::string> metrics;
  double refresh_seconds = 0.0;
  std::uint64_t loss_evaluations = 0;
  /// Resolved rebuild thread count the arm ran with (1 for the serial path;
  /// only meaningful for sampler kinds that rebuild, i.e. SGM/SGM-S).
  std::size_t num_threads = 1;

  double best(const std::string& metric) const;
  /// First wall time at which `metric` fell to <= threshold (inf if never).
  double time_to(const std::string& metric, double threshold) const;
};

/// Runs one arm for `seeds` seeds, averaging the validation curves
/// record-by-record (records align because validate_every is fixed).
ArmResult run_arm(const pinn::PinnProblem& problem, const Arm& arm,
                  const nn::MlpConfig& net_cfg, double budget_s, int seeds,
                  std::uint64_t validate_every);

/// Renders the paper's "minimum + time-to-reach" table: one column per arm,
/// Min(metric) rows followed by T(arm_metric) rows. `scenario` is the
/// registry name of the workload (stamped into the JSON; "" if the bench
/// does not map onto one scenario).
void print_min_time_table(const std::string& title,
                          const std::vector<ArmResult>& arms,
                          const std::vector<std::string>& metrics,
                          const std::string& scenario = "");

/// Prints error-vs-wall-time series (one block per arm) and writes
/// `prefix_<arm>.csv` files next to the binary.
void print_curves(const std::string& title,
                  const std::vector<ArmResult>& arms,
                  const std::string& metric, const std::string& csv_prefix,
                  const std::string& scenario = "");

/// When SGM_BENCH_JSON=1, writes `BENCH_<slug(title)>.json` next to the
/// binary: the scenario name, per-arm best errors, refresh overhead and
/// error-vs-time curves. Called automatically by print_min_time_table /
/// print_curves, so every bench can feed the machine-readable perf
/// trajectory without extra code.
void maybe_write_json(const std::string& title,
                      const std::vector<ArmResult>& arms,
                      const std::vector<std::string>& metrics,
                      const std::string& scenario = "");

}  // namespace sgm::bench
