// Table 1 reproduction: "Minimum Validation Errors and Time to Achieve for
// LDC_zeroEq" — four arms (uniform small batch, uniform large batch,
// Modulus-style importance sampling, SGM-PINN), identical trainer and
// network, validation against the vorticity-streamfunction FD reference.
//
// Paper arms:   U_500 (b=500, N=8M)   U_4000 (b=4000, N=16M)
//               MIS_500               SGM_500 (k=30, L=10, r=15%)
// Scaled arms:  U_small (b=128, N=16k) U_large (b=1024, N=32k)
//               MIS_small             SGM_small (k=20, L=10, r=15%)
// The controlled variable (the sampler) and the batch/dataset ratios match
// the paper; absolute sizes are scaled to one CPU core.

#include <cstdio>
#include <memory>

#include "cfd/ldc_solver.hpp"
#include "common.hpp"
#include "pinn/navier_stokes.hpp"

using namespace sgm;

int main() {
  const double budget = bench::budget_seconds(30.0);
  const int seeds = bench::num_seeds(1);
  std::printf("bench_table1_ldc: budget %.0fs/arm, %d seed(s)\n", budget,
              seeds);

  // Reference fields (the OpenFOAM stand-in).
  cfd::LdcOptions ref_opt;
  ref_opt.n = 81;
  ref_opt.reynolds = 10.0;
  auto reference = std::make_shared<const cfd::LdcSolution>(
      cfd::solve_lid_driven_cavity(ref_opt));
  std::printf("reference solver: %s after %d sweeps\n",
              reference->converged ? "converged" : "NOT converged",
              reference->iterations);

  // Small-N problem for the reduced arms, large-N for the baseline
  // (paper: 8M vs 16M; here 16k vs 32k, same 1:2 ratio).
  pinn::LdcProblem::Options small_opt;
  small_opt.reynolds = 10.0;
  small_opt.interior_points = 16384;
  small_opt.boundary_points = 2048;
  small_opt.zero_equation = true;
  pinn::LdcProblem small_problem(small_opt, reference);

  pinn::LdcProblem::Options large_opt = small_opt;
  large_opt.interior_points = 32768;
  pinn::LdcProblem large_problem(large_opt, reference);

  nn::MlpConfig net_cfg;
  net_cfg.input_dim = 2;
  net_cfg.output_dim = 3;
  net_cfg.width = 48;   // paper: 512x6; scaled
  net_cfg.depth = 4;
  net_cfg.activation = &nn::silu();
  util::Rng enc_rng(4242);  // same Fourier features for every arm
  net_cfg.encoding = std::make_shared<nn::FourierEncoding>(2, 12, 1.5, enc_rng);

  const std::uint64_t validate_every = 150;

  bench::Arm u_small;
  u_small.label = "U_small";
  u_small.kind = bench::SamplerKind::kUniform;
  u_small.batch_size = 128;

  bench::Arm u_large;
  u_large.label = "U_large";
  u_large.kind = bench::SamplerKind::kUniform;
  u_large.batch_size = 1024;  // paper keeps the 1:8 batch ratio

  bench::Arm mis;
  mis.label = "MIS_small";
  mis.kind = bench::SamplerKind::kMis;
  mis.batch_size = 128;
  mis.mis.refresh_every = 700;  // tau_e, scaled 10x from the paper's 7k
  mis.mis.num_seeds = 0;        // Modulus MIS re-scores the full dataset

  bench::Arm sgm;
  sgm.label = "SGM_small";
  sgm.kind = bench::SamplerKind::kSgm;
  sgm.batch_size = 128;
  sgm.sgm.pgm.knn.k = 20;       // paper: k=30 at N=8M
  sgm.sgm.lrd.levels = 10;      // paper: L=10
  sgm.sgm.rep_fraction = 0.15;  // paper: r=15%
  sgm.sgm.tau_e = 700;
  sgm.sgm.tau_g = 2500;         // paper: 25k, scaled 10x
  sgm.sgm.epoch.epoch_fraction = 0.125;

  std::vector<bench::ArmResult> results;
  results.push_back(bench::run_arm(small_problem, u_small, net_cfg, budget,
                                   seeds, validate_every));
  results.push_back(bench::run_arm(large_problem, u_large, net_cfg, budget,
                                   seeds, validate_every));
  results.push_back(bench::run_arm(small_problem, mis, net_cfg, budget,
                                   seeds, validate_every));
  results.push_back(bench::run_arm(small_problem, sgm, net_cfg, budget,
                                   seeds, validate_every));

  bench::print_min_time_table(
      "Table 1: LDC_zeroEq minimum validation errors and time to achieve",
      results, {"u", "v", "nu"}, /*scenario=*/"ldc_zeroeq");
  return 0;
}
