// One full training step of the PINN engine — tape record, forward with
// input-derivative propagation, backward, Adam update — swept over
// (batch, width, depth, n_deriv, threads). This is the denominator of every
// wall-clock result in the paper's tables, benchmarked in isolation from the
// samplers so kernel/tape changes show up undiluted.
//
// The loss mirrors a second-order PDE residual: mean((u_x0x0 + u_x1x1)^2)
// at n_deriv=2 (the lid-driven-cavity configuration), mean(u_x0^2) at
// n_deriv=1, mean(u^2) at n_deriv=0.
//
// SGM_BENCH_JSON=1 routes google-benchmark's JSON reporter to
// BENCH_train_step.json (the perf-trajectory artifact uploaded by the
// perf-smoke CI job).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"
#include "tensor/tape.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace sgm;

namespace {

tensor::Matrix random_batch(std::size_t rows, std::size_t cols,
                            util::Rng& rng) {
  tensor::Matrix x(rows, cols);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = rng.uniform(-1.0, 1.0);
  return x;
}

void BM_TrainStep(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto width = static_cast<std::size_t>(state.range(1));
  const auto depth = static_cast<std::size_t>(state.range(2));
  const int n_deriv = static_cast<int>(state.range(3));
  const auto threads = static_cast<std::size_t>(state.range(4));

  nn::MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 1;
  cfg.width = width;
  cfg.depth = depth;
  util::Rng rng(42);
  nn::Mlp net(cfg, rng);
  const tensor::Matrix x = random_batch(batch, 2, rng);
  nn::Adam adam(1e-3);
  const std::vector<tensor::Matrix*> params = net.parameters();

  // The steady-state step exactly as Trainer::run performs it: one hoisted
  // tape cleared per step (pooled buffers, zero allocations), reused
  // binding/outputs/grads, threaded kernels.
  tensor::Tape tape;
  tape.set_num_threads(threads);
  nn::Mlp::Binding binding;
  nn::Mlp::TapeOutputs out;
  std::vector<tensor::Matrix> grads;

  for (auto _ : state) {
    tape.clear();
    net.bind(tape, &binding);
    net.forward_on_tape(tape, binding, x, n_deriv, &out);
    tensor::VarId residual = out.y;
    if (n_deriv == 1) residual = out.dy[0];
    if (n_deriv >= 2) residual = tensor::add(tape, out.d2y[0], out.d2y[1]);
    const tensor::VarId loss =
        tensor::mean_all(tape, tensor::square(tape, residual));
    tape.backward(loss);
    net.collect_grads_into(tape, binding, &grads);
    adam.step(params, grads);
    benchmark::DoNotOptimize(tape.value(loss)(0, 0));
  }
  state.counters["params"] =
      benchmark::Counter(static_cast<double>(net.num_parameters()));
}

// args: {batch, width, depth, n_deriv, threads}
BENCHMARK(BM_TrainStep)
    ->Args({512, 64, 4, 2, 1})    // lid-driven-cavity smoke configuration
    ->Args({512, 64, 4, 2, 4})
    ->Args({512, 64, 4, 0, 1})
    ->Args({512, 64, 4, 1, 1})
    ->Args({128, 64, 4, 2, 1})
    ->Args({2048, 64, 4, 2, 1})
    ->Args({2048, 64, 4, 2, 4})
    ->Args({512, 128, 4, 2, 1})
    ->Args({512, 64, 8, 2, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main mirroring bench_overhead_sampling: SGM_BENCH_JSON=1 writes the
// machine-readable run to BENCH_train_step.json next to the binary.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_train_step.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (const char* env = std::getenv("SGM_BENCH_JSON");
      env && std::string(env) != "0") {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
