#include "common.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "util/csv.hpp"
#include "util/thread_pool.hpp"
#include "pinn/validation.hpp"

namespace sgm::bench {

double budget_seconds(double fallback) {
  if (const char* env = std::getenv("SGM_BENCH_BUDGET"))
    return std::max(1.0, std::atof(env));
  return fallback;
}

int num_seeds(int fallback) {
  if (const char* env = std::getenv("SGM_BENCH_SEEDS"))
    return std::max(1, std::atoi(env));
  return fallback;
}

std::size_t bench_threads(std::size_t fallback) {
  if (const char* env = std::getenv("SGM_BENCH_THREADS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

double ArmResult::best(const std::string& metric) const {
  double b = std::numeric_limits<double>::infinity();
  for (const auto& rec : records)
    for (const auto& e : rec.validation)
      if (e.name == metric) b = std::min(b, e.error);
  return b;
}

double ArmResult::time_to(const std::string& metric, double threshold) const {
  for (const auto& rec : records)
    for (const auto& e : rec.validation)
      if (e.name == metric && e.error <= threshold) return rec.train_wall_s;
  return std::numeric_limits<double>::infinity();
}

namespace {

std::unique_ptr<samplers::Sampler> make_sampler(
    const pinn::PinnProblem& problem, const Arm& arm, std::uint64_t seed) {
  const auto n =
      static_cast<std::uint32_t>(problem.interior_points().rows());
  switch (arm.kind) {
    case SamplerKind::kUniform:
      return std::make_unique<samplers::UniformSampler>(n);
    case SamplerKind::kMis:
      return std::make_unique<samplers::MisSampler>(
          problem.interior_points(), arm.mis);
    case SamplerKind::kSgm:
    case SamplerKind::kSgmS: {
      core::SgmOptions opt = arm.sgm;
      opt.use_isr = (arm.kind == SamplerKind::kSgmS);
      opt.seed = seed * 7919 + 13;
      opt.num_threads = bench_threads(opt.num_threads);
      return std::make_unique<core::SgmSampler>(problem.interior_points(),
                                                opt);
    }
  }
  return nullptr;
}

}  // namespace

ArmResult run_arm(const pinn::PinnProblem& problem, const Arm& arm,
                  const nn::MlpConfig& net_cfg, double budget_s, int seeds,
                  std::uint64_t validate_every) {
  ArmResult result;
  result.arm = arm;
  const bool rebuilds =
      arm.kind == SamplerKind::kSgm || arm.kind == SamplerKind::kSgmS;
  result.num_threads =
      rebuilds ? util::resolve_threads(bench_threads(arm.sgm.num_threads))
               : 1;

  std::vector<std::vector<pinn::TrainRecord>> runs;
  for (int s = 0; s < seeds; ++s) {
    util::Rng net_rng(1000 + s);  // same init across arms for seed s
    nn::Mlp net(net_cfg, net_rng);
    auto sampler = make_sampler(problem, arm, 100 + s);

    pinn::TrainerOptions topt;
    topt.batch_size = arm.batch_size;
    topt.max_iterations = std::numeric_limits<std::uint64_t>::max() / 2;
    topt.wall_time_budget_s = budget_s;
    topt.learning_rate = 2e-3;
    topt.lr_gamma = 0.97;
    topt.lr_decay_steps = 1000;
    topt.validate_every = validate_every;
    topt.seed = 500 + s;
    pinn::Trainer trainer(problem, net, *sampler, topt);
    auto history = trainer.run();
    runs.push_back(history.records);
    result.refresh_seconds += history.sampler_refresh_s / seeds;
    result.loss_evaluations += history.sampler_loss_evaluations / seeds;
    if (result.metrics.empty() && !history.records.empty())
      for (const auto& e : history.records.front().validation)
        result.metrics.push_back(e.name);
  }

  // Average curves record-by-record over seeds (truncate to the shortest).
  std::size_t min_len = std::numeric_limits<std::size_t>::max();
  for (const auto& r : runs) min_len = std::min(min_len, r.size());
  for (std::size_t i = 0; i < min_len; ++i) {
    pinn::TrainRecord avg = runs[0][i];
    for (int s = 1; s < seeds; ++s) {
      avg.train_wall_s += runs[s][i].train_wall_s;
      avg.mean_loss += runs[s][i].mean_loss;
      for (std::size_t m = 0; m < avg.validation.size(); ++m)
        avg.validation[m].error += runs[s][i].validation[m].error;
    }
    avg.train_wall_s /= seeds;
    avg.mean_loss /= seeds;
    for (auto& e : avg.validation) e.error /= seeds;
    result.records.push_back(std::move(avg));
  }
  return result;
}

void print_min_time_table(const std::string& title,
                          const std::vector<ArmResult>& arms,
                          const std::vector<std::string>& metrics,
                          const std::string& scenario) {
  auto cell = [](double v) {
    char buf[32];
    if (std::isinf(v)) {
      std::snprintf(buf, sizeof buf, "%10s", "-");
    } else {
      std::snprintf(buf, sizeof buf, "%10.4g", v);
    }
    return std::string(buf);
  };

  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-18s", "Label");
  for (const auto& a : arms) std::printf("%12s", a.arm.label.c_str());
  std::printf("\n");

  for (const auto& m : metrics) {
    std::printf("Min(%-12s) ", m.c_str());
    for (const auto& a : arms) std::printf("  %s", cell(a.best(m)).c_str());
    std::printf("\n");
  }
  // Time-to-reach matrix: rows are thresholds defined by each arm's best
  // value of each metric; columns are how long every arm took to get there.
  for (const auto& m : metrics) {
    for (const auto& target : arms) {
      const double threshold = target.best(m);
      if (std::isinf(threshold)) continue;
      std::printf("T(%-8s_%-4s) ", target.arm.label.c_str(), m.c_str());
      for (const auto& a : arms)
        std::printf("  %s", cell(a.time_to(m, threshold)).c_str());
      std::printf("\n");
    }
  }
  std::printf("(times in train-wall seconds; '-' = never reached; "
              "sampler refresh included in wall time)\n");
  for (const auto& a : arms)
    std::printf("  %-14s refresh %6.2fs, extra loss evals %llu\n",
                a.arm.label.c_str(), a.refresh_seconds,
                static_cast<unsigned long long>(a.loss_evaluations));
  maybe_write_json(title, arms, metrics, scenario);
}

void print_curves(const std::string& title,
                  const std::vector<ArmResult>& arms,
                  const std::string& metric, const std::string& csv_prefix,
                  const std::string& scenario) {
  std::printf("\n=== %s (error in '%s' vs train wall seconds) ===\n",
              title.c_str(), metric.c_str());
  for (const auto& a : arms) {
    std::printf("-- %s\n", a.arm.label.c_str());
    std::string fname = csv_prefix + "_" + a.arm.label + ".csv";
    for (auto& c : fname)
      if (c == ' ' || c == '(' || c == ')') c = '_';
    util::CsvWriter csv(fname, {"train_wall_s", "err_" + metric});
    for (const auto& rec : a.records) {
      const double err = pinn::validation_error(rec.validation, metric);
      std::printf("   t=%7.2fs  err=%.5g\n", rec.train_wall_s, err);
      csv.row({rec.train_wall_s, err});
    }
    std::printf("   (series written to %s)\n", fname.c_str());
  }
  maybe_write_json(title, arms, {metric}, scenario);
}

void maybe_write_json(const std::string& title,
                      const std::vector<ArmResult>& arms,
                      const std::vector<std::string>& metrics,
                      const std::string& scenario) {
  const char* env = std::getenv("SGM_BENCH_JSON");
  if (!env || std::string(env) == "0") return;

  std::string slug = title;
  for (auto& c : slug) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      c = '_';
    }
  }
  const std::string fname = "BENCH_" + slug + ".json";

  // Infinities (metric never reached / no records) are not valid JSON;
  // emit null so downstream tooling can parse every file uniformly.
  auto num = [](double v) {
    if (std::isinf(v) || std::isnan(v)) return std::string("null");
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
  };
  auto str = [](const std::string& s) {
    std::string q = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') q += '\\';
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        q += buf;
      } else {
        q += c;
      }
    }
    return q + "\"";
  };

  std::ofstream out(fname);
  if (!out) {
    std::fprintf(stderr, "  (SGM_BENCH_JSON set but cannot open %s)\n",
                 fname.c_str());
    return;
  }
  out << "{\n  \"title\": " << str(title) << ",\n  \"scenario\": "
      << str(scenario) << ",\n  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const auto& a = arms[i];
    out << "    {\n      \"label\": " << str(a.arm.label) << ",\n"
        << "      \"refresh_seconds\": " << num(a.refresh_seconds) << ",\n"
        << "      \"loss_evaluations\": " << a.loss_evaluations << ",\n"
        << "      \"num_threads\": " << a.num_threads << ",\n"
        << "      \"best\": {";
    for (std::size_t m = 0; m < metrics.size(); ++m)
      out << (m ? ", " : "") << str(metrics[m]) << ": "
          << num(a.best(metrics[m]));
    out << "},\n      \"curve\": [";
    for (std::size_t r = 0; r < a.records.size(); ++r) {
      const auto& rec = a.records[r];
      out << (r ? ", " : "") << "[" << num(rec.train_wall_s);
      for (const auto& m : metrics)
        out << ", " << num(pinn::validation_error(rec.validation, m));
      out << "]";
    }
    out << "]\n    }" << (i + 1 < arms.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("  (json written to %s)\n", fname.c_str());
}

}  // namespace sgm::bench
