// Serving-engine throughput/latency benchmark: closed-loop clients hammer
// the InferenceBatcher (the same path the HTTP front end uses, minus socket
// I/O) against a registry-published scenario network, and the batcher's
// coalescing turns the concurrent single-row queries into blocked-GEMM
// forwards.
//
// Arms: a client-count sweep at the smoke-scale poisson2d network. Each arm
// reports queries/s, p50/p99/p999 end-to-end latency (enqueue -> response,
// from the engine's own HDR histogram) and the realized mean batch size —
// the number that explains the throughput curve.
//
// Queue arms: `--arm ring` (default; PR 8 MPSC ring + pooled response
// slots) or `--arm mutex` (the PR 6 mutex + promise/future path, kept for
// same-machine A/B). Also settable via SGM_BENCH_SERVE_ARM.
//
// Env knobs:
//   SGM_BENCH_SERVE_SECONDS  wall seconds per arm          (default 2)
//   SGM_BENCH_SERVE_CLIENTS  comma list of client counts   (default 1,4,16,64)
//   SGM_BENCH_SERVE_BATCH    batcher max_batch             (default 64)
//   SGM_BENCH_SERVE_ARM      ring | mutex                  (default ring)
//   SGM_BENCH_THREADS        forward threads per batch     (default 2)
//   SGM_BENCH_JSON=1         write BENCH_serve.json next to the binary
//                            (uploaded by the serve-smoke CI job; baselines
//                            committed at bench/baselines/BENCH_serve_pr6.json
//                            [mutex] and BENCH_serve_pr8_ring.json [ring])

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "nn/mlp.hpp"
#include "pinn/scenario.hpp"
#include "serve/batcher.hpp"
#include "serve/metrics.hpp"
#include "serve/model_registry.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace sgm;

namespace {

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    const double parsed = std::atof(v);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

std::size_t env_size_t(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long long parsed = std::atoll(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

std::vector<std::size_t> client_counts() {
  std::vector<std::size_t> counts;
  const char* v = std::getenv("SGM_BENCH_SERVE_CLIENTS");
  std::string spec = v ? v : "1,4,16,64";
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const long long parsed = std::atoll(tok.c_str());
    if (parsed > 0) counts.push_back(static_cast<std::size_t>(parsed));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (counts.empty()) counts = {1, 4, 16, 64};
  return counts;
}

struct ArmResult {
  std::size_t clients = 0;
  std::uint64_t queries = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_us = 0.0, p99_us = 0.0, p999_us = 0.0;
  double mean_batch = 0.0;
  double full_flush_fraction = 0.0;
};

ArmResult run_arm(serve::ModelRegistry& registry, const std::string& scenario,
                  std::size_t input_dim, std::size_t clients, double seconds,
                  std::size_t max_batch, std::size_t num_threads,
                  serve::QueueMode mode) {
  serve::ServeMetrics metrics;
  serve::BatcherOptions opt;
  opt.max_batch = max_batch;
  opt.max_delay_s = 100e-6;
  opt.num_threads = num_threads;
  opt.mode = mode;
  // Closed-loop clients never have more than `clients` queries in flight,
  // but keep headroom so the pool never backpressures the benchmark itself.
  opt.queue_capacity = std::max<std::size_t>(1024, 4 * clients);
  serve::InferenceBatcher batcher(registry, opt, &metrics);

  // Pre-generate each client's probe set so the hot loop is queries only.
  const std::size_t kProbes = 256;
  std::vector<std::vector<std::vector<double>>> probes(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    util::Rng rng(100 + c);
    probes[c].resize(kProbes);
    for (auto& x : probes[c]) {
      x.resize(input_dim);
      for (auto& v : x) v = rng.uniform();
    }
  }

  std::atomic<bool> run{true};
  std::vector<std::uint64_t> served(clients, 0);
  std::vector<std::thread> threads;
  util::WallTimer timer;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::uint64_t count = 0;
      while (run.load(std::memory_order_relaxed)) {
        (void)batcher.query(scenario, probes[c][count % kProbes]);
        ++count;
      }
      served[c] = count;
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds));
  run.store(false);
  for (auto& t : threads) t.join();
  const double wall = timer.elapsed_s();
  batcher.stop();

  ArmResult r;
  r.clients = clients;
  for (const auto count : served) r.queries += count;
  r.wall_s = wall;
  r.qps = static_cast<double>(r.queries) / wall;
  const auto snap = metrics.query_latency.snapshot();
  r.p50_us = snap.quantile(0.5) * 1e6;
  r.p99_us = snap.quantile(0.99) * 1e6;
  r.p999_us = snap.quantile(0.999) * 1e6;
  const auto batches = metrics.batches_total.load();
  r.mean_batch = batches ? static_cast<double>(
                               metrics.batched_queries_total.load()) /
                               static_cast<double>(batches)
                         : 0.0;
  r.full_flush_fraction =
      batches ? static_cast<double>(metrics.full_flushes_total.load()) /
                    static_cast<double>(batches)
              : 0.0;
  return r;
}

void maybe_write_json(const std::vector<ArmResult>& arms,
                      const std::string& scenario, std::size_t max_batch,
                      std::size_t num_threads, const std::string& arm) {
  const char* env = std::getenv("SGM_BENCH_JSON");
  if (!env || std::string(env) == "0") return;
  std::ofstream out("BENCH_serve.json");
  out << "{\n  \"bench\": \"serve\",\n  \"arm\": \"" << arm
      << "\",\n  \"scenario\": \"" << scenario
      << "\",\n  \"max_batch\": " << max_batch
      << ",\n  \"num_threads\": " << num_threads << ",\n  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmResult& a = arms[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"clients\": %zu, \"queries\": %llu, "
                  "\"wall_s\": %.3f, \"queries_per_s\": %.0f, "
                  "\"p50_us\": %.2f, \"p99_us\": %.2f, \"p999_us\": %.2f, "
                  "\"mean_batch\": %.2f, \"full_flush_fraction\": %.3f}%s\n",
                  a.clients,
                  static_cast<unsigned long long>(a.queries), a.wall_s,
                  a.qps, a.p50_us, a.p99_us, a.p999_us, a.mean_batch,
                  a.full_flush_fraction,
                  i + 1 < arms.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  std::printf("(json written to BENCH_serve.json)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = env_double("SGM_BENCH_SERVE_SECONDS", 2.0);
  const std::size_t max_batch = env_size_t("SGM_BENCH_SERVE_BATCH", 64);
  const std::size_t num_threads = env_size_t("SGM_BENCH_THREADS", 2);
  const std::string scenario = "poisson2d";

  // --arm ring|mutex (or SGM_BENCH_SERVE_ARM); ring is the default path.
  std::string arm = "ring";
  if (const char* v = std::getenv("SGM_BENCH_SERVE_ARM")) arm = v;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--arm") == 0) arm = argv[i + 1];
  }
  if (arm != "ring" && arm != "mutex") {
    std::fprintf(stderr, "unknown arm '%s' (want ring|mutex)\n", arm.c_str());
    return 2;
  }
  const serve::QueueMode mode =
      arm == "ring" ? serve::QueueMode::kRing : serve::QueueMode::kMutex;

  const auto cfg = pinn::ScenarioRegistry::instance().make(
      scenario, pinn::ScenarioScale::kSmoke);
  util::Rng rng(cfg.net_seed);
  nn::Mlp net(cfg.net, rng);

  namespace fs = std::filesystem;
  const std::string root =
      (fs::temp_directory_path() / "sgm_bench_serve_registry").string();
  fs::remove_all(root);
  serve::ModelRegistry registry(root);
  registry.publish(scenario, net);
  registry.pin(scenario);

  std::printf(
      "=== serve throughput [%s queue]: %s %zux%zu net, max_batch %zu, %zu "
      "forward threads, %.1fs per arm ===\n",
      arm.c_str(), scenario.c_str(), cfg.net.width, cfg.net.depth, max_batch,
      num_threads, seconds);
  std::printf("%8s %12s %12s %10s %10s %10s %11s %10s\n", "clients",
              "queries", "queries/s", "p50_us", "p99_us", "p999_us",
              "mean_batch", "full_frac");

  std::vector<ArmResult> arms;
  for (const std::size_t clients : client_counts()) {
    const ArmResult r = run_arm(registry, scenario, cfg.net.input_dim,
                                clients, seconds, max_batch, num_threads,
                                mode);
    std::printf("%8zu %12llu %12.0f %10.2f %10.2f %10.2f %11.2f %10.3f\n",
                r.clients, static_cast<unsigned long long>(r.queries), r.qps,
                r.p50_us, r.p99_us, r.p999_us, r.mean_batch,
                r.full_flush_fraction);
    arms.push_back(r);
  }
  maybe_write_json(arms, scenario, max_batch, num_threads, arm);
  fs::remove_all(root);
  return 0;
}
