// Serving-engine throughput/latency benchmark: closed-loop clients hammer
// the InferenceBatcher (the same path the HTTP front end uses, minus socket
// I/O) against a registry-published scenario network, and the batcher's
// coalescing turns the concurrent single-row queries into blocked-GEMM
// forwards.
//
// Arms: a client-count sweep at the smoke-scale poisson2d network. Each arm
// reports queries/s, p50/p99/p999 end-to-end latency (enqueue -> response,
// from the engine's own HDR histogram) and the realized mean batch size —
// the number that explains the throughput curve.
//
// Queue arms: `--arm ring` (default; PR 8 MPSC ring + pooled response
// slots) or `--arm mutex` (the PR 6 mutex + promise/future path, kept for
// same-machine A/B). Also settable via SGM_BENCH_SERVE_ARM.
//
// I/O arms (`--io`, PR 10): `direct` (default; clients call the batcher
// in-process — the ceiling the HTTP layer is measured against), `reactor`
// (full HTTP loopback against the epoll reactor: N keep-alive connections,
// each keeping a fixed pipeline of requests in flight, multiplexed onto a
// few client threads) and `threads` (same HTTP clients against the
// thread-per-connection mode — which needs one handler thread PER
// connection to serve keep-alive clients at all; that thread count is the
// A/B contrast). HTTP arms always use the ring queue.
//
// Env knobs:
//   SGM_BENCH_SERVE_SECONDS  wall seconds per arm          (default 2)
//   SGM_BENCH_SERVE_CLIENTS  comma list of client counts   (default 1,4,16,64)
//                            (HTTP arms: connections)
//   SGM_BENCH_SERVE_BATCH    batcher max_batch             (default 64)
//   SGM_BENCH_SERVE_ARM      ring | mutex                  (default ring)
//   SGM_BENCH_SERVE_IO       direct | reactor | threads    (default direct)
//   SGM_BENCH_SERVE_PIPELINE HTTP requests in flight/conn  (default 8)
//   SGM_BENCH_THREADS        forward threads per batch     (default 2)
//   SGM_BENCH_JSON=1         write BENCH_serve.json next to the binary
//                            (uploaded by the serve-smoke CI job; baselines
//                            committed at bench/baselines/BENCH_serve_pr6.json
//                            [mutex], BENCH_serve_pr8_ring.json [ring] and
//                            BENCH_serve_pr10_reactor.json [reactor sweep])

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "nn/mlp.hpp"
#include "pinn/scenario.hpp"
#include "serve/batcher.hpp"
#include "serve/http_server.hpp"
#include "serve/metrics.hpp"
#include "serve/model_registry.hpp"
#include "util/rng.hpp"
#include "util/socket.hpp"
#include "util/timer.hpp"

using namespace sgm;

namespace {

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    const double parsed = std::atof(v);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

std::size_t env_size_t(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long long parsed = std::atoll(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

std::vector<std::size_t> client_counts() {
  std::vector<std::size_t> counts;
  const char* v = std::getenv("SGM_BENCH_SERVE_CLIENTS");
  std::string spec = v ? v : "1,4,16,64";
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const long long parsed = std::atoll(tok.c_str());
    if (parsed > 0) counts.push_back(static_cast<std::size_t>(parsed));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (counts.empty()) counts = {1, 4, 16, 64};
  return counts;
}

struct ArmResult {
  std::size_t clients = 0;
  std::uint64_t queries = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_us = 0.0, p99_us = 0.0, p999_us = 0.0;
  double mean_batch = 0.0;
  double full_flush_fraction = 0.0;
};

ArmResult run_arm(serve::ModelRegistry& registry, const std::string& scenario,
                  std::size_t input_dim, std::size_t clients, double seconds,
                  std::size_t max_batch, std::size_t num_threads,
                  serve::QueueMode mode) {
  serve::ServeMetrics metrics;
  serve::BatcherOptions opt;
  opt.max_batch = max_batch;
  opt.max_delay_s = 100e-6;
  opt.num_threads = num_threads;
  opt.mode = mode;
  // Closed-loop clients never have more than `clients` queries in flight,
  // but keep headroom so the pool never backpressures the benchmark itself.
  opt.queue_capacity = std::max<std::size_t>(1024, 4 * clients);
  serve::InferenceBatcher batcher(registry, opt, &metrics);

  // Pre-generate each client's probe set so the hot loop is queries only.
  const std::size_t kProbes = 256;
  std::vector<std::vector<std::vector<double>>> probes(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    util::Rng rng(100 + c);
    probes[c].resize(kProbes);
    for (auto& x : probes[c]) {
      x.resize(input_dim);
      for (auto& v : x) v = rng.uniform();
    }
  }

  std::atomic<bool> run{true};
  std::vector<std::uint64_t> served(clients, 0);
  std::vector<std::thread> threads;
  util::WallTimer timer;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::uint64_t count = 0;
      while (run.load(std::memory_order_relaxed)) {
        (void)batcher.query(scenario, probes[c][count % kProbes]);
        ++count;
      }
      served[c] = count;
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds));
  run.store(false);
  for (auto& t : threads) t.join();
  const double wall = timer.elapsed_s();
  batcher.stop();

  ArmResult r;
  r.clients = clients;
  for (const auto count : served) r.queries += count;
  r.wall_s = wall;
  r.qps = static_cast<double>(r.queries) / wall;
  const auto snap = metrics.query_latency.snapshot();
  r.p50_us = snap.quantile(0.5) * 1e6;
  r.p99_us = snap.quantile(0.99) * 1e6;
  r.p999_us = snap.quantile(0.999) * 1e6;
  const auto batches = metrics.batches_total.load();
  r.mean_batch = batches ? static_cast<double>(
                               metrics.batched_queries_total.load()) /
                               static_cast<double>(batches)
                         : 0.0;
  r.full_flush_fraction =
      batches ? static_cast<double>(metrics.full_flushes_total.load()) /
                    static_cast<double>(batches)
              : 0.0;
  return r;
}

// --- HTTP loopback arms (PR 10) ---------------------------------------------

/// Counts and removes the complete HTTP responses at the front of `buf`
/// (head + Content-Length body). Partial tails stay for the next read.
std::size_t consume_responses(std::string& buf) {
  std::size_t n = 0, pos = 0;
  for (;;) {
    const std::size_t head_end = buf.find("\r\n\r\n", pos);
    if (head_end == std::string::npos) break;
    std::size_t len = 0;
    const std::size_t cl = buf.find("Content-Length: ", pos);
    if (cl != std::string::npos && cl < head_end)
      len = std::strtoul(buf.c_str() + cl + 16, nullptr, 10);
    const std::size_t total = head_end + 4 + len;
    if (buf.size() < total) break;
    pos = total;
    ++n;
  }
  buf.erase(0, pos);
  return n;
}

/// Closed-loop HTTP clients over loopback: `clients` keep-alive
/// connections, each primed with `pipeline` requests; every consumed
/// response is immediately replaced, so the in-flight depth per connection
/// is constant. A handful of client threads round-robin their connections
/// with blocking reads — safe because the server never waits on a client
/// read, so every connection always has responses on the way.
ArmResult run_http_arm(serve::ModelRegistry& registry,
                       const std::string& scenario, std::size_t input_dim,
                       std::size_t clients, double seconds,
                       std::size_t max_batch, std::size_t num_threads,
                       serve::IoMode io, std::size_t pipeline) {
  serve::ServeMetrics metrics;
  serve::BatcherOptions opt;
  opt.max_batch = max_batch;
  opt.max_delay_s = 100e-6;
  opt.num_threads = num_threads;
  opt.queue_capacity = std::max<std::size_t>(1024, 2 * clients * pipeline);
  serve::InferenceBatcher batcher(registry, opt, &metrics);

  serve::HttpServerOptions hopt;
  hopt.io_mode = io;
  hopt.max_pipeline = std::max<std::size_t>(64, 2 * pipeline);
  // The A/B contrast in one line: keep-alive connections occupy a handler
  // thread each in kThreads mode, while kReactor serves them all from its
  // default fixed reactor count.
  if (io == serve::IoMode::kThreads) hopt.num_workers = clients;
  serve::HttpServer server(registry, batcher, metrics, hopt);
  const std::uint16_t port = server.port();

  // Pre-render the request wire bytes so the hot loop is I/O only.
  const std::size_t kProbes = 256;
  std::vector<std::string> wire(kProbes);
  util::Rng rng(4242);
  for (auto& w : wire) {
    std::string body = "{\"scenario\": \"" + scenario + "\", \"x\": [";
    for (std::size_t d = 0; d < input_dim; ++d) {
      char num[32];
      std::snprintf(num, sizeof(num), "%s%.17g", d ? ", " : "", rng.uniform());
      body += num;
    }
    body += "]}";
    w = "POST /v1/query HTTP/1.1\r\nHost: b\r\nConnection: keep-alive\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
  }

  struct BenchConn {
    util::TcpSocket sock;
    std::string buf;
    std::size_t next = 0;  ///< probe index of the next request to send
  };
  const std::size_t nthreads = std::min<std::size_t>(clients, 4);
  std::vector<std::vector<BenchConn>> per_thread(nthreads);
  for (std::size_t c = 0; c < clients; ++c) {
    BenchConn bc;
    bc.sock = util::tcp_connect(port);
    bc.sock.set_recv_timeout(5.0);
    bc.next = c % kProbes;
    per_thread[c % nthreads].push_back(std::move(bc));
  }

  std::atomic<bool> run{true};
  std::vector<std::uint64_t> served(nthreads, 0);
  std::vector<std::thread> threads;
  util::WallTimer timer;
  for (std::size_t t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t count = 0;
      auto& conns = per_thread[t];
      // Prime: fill every connection's pipeline in one coalesced write.
      for (auto& c : conns) {
        std::string out;
        for (std::size_t q = 0; q < pipeline; ++q)
          out += wire[(c.next++) % kProbes];
        if (!c.sock.write_all(out)) return;
      }
      char chunk[16384];
      while (run.load(std::memory_order_relaxed)) {
        for (auto& c : conns) {
          const long n = c.sock.read_some(chunk, sizeof(chunk));
          if (n <= 0) return;  // timeout/error: stop this thread's loop
          c.buf.append(chunk, static_cast<std::size_t>(n));
          const std::size_t done = consume_responses(c.buf);
          if (done == 0) continue;
          count += done;
          std::string out;
          for (std::size_t q = 0; q < done; ++q)
            out += wire[(c.next++) % kProbes];
          if (!c.sock.write_all(out)) return;
        }
      }
      served[t] = count;
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  run.store(false);
  for (auto& t : threads) t.join();
  const double wall = timer.elapsed_s();
  per_thread.clear();  // close all connections before stopping the server
  server.stop();
  batcher.stop();

  ArmResult r;
  r.clients = clients;
  for (const auto count : served) r.queries += count;
  r.wall_s = wall;
  r.qps = static_cast<double>(r.queries) / wall;
  // HTTP arms report the server-side request latency (parse -> response
  // flushed to outbuf), the histogram the /metrics endpoint exposes.
  const auto snap = metrics.http_latency.snapshot();
  r.p50_us = snap.quantile(0.5) * 1e6;
  r.p99_us = snap.quantile(0.99) * 1e6;
  r.p999_us = snap.quantile(0.999) * 1e6;
  const auto batches = metrics.batches_total.load();
  r.mean_batch = batches ? static_cast<double>(
                               metrics.batched_queries_total.load()) /
                               static_cast<double>(batches)
                         : 0.0;
  r.full_flush_fraction =
      batches ? static_cast<double>(metrics.full_flushes_total.load()) /
                    static_cast<double>(batches)
              : 0.0;
  return r;
}

/// The 2048-connection sweep needs ~2 fds per client plus the server side
/// in one process: lift the soft RLIMIT_NOFILE to the hard cap.
void raise_fd_limit() {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  lim.rlim_cur = lim.rlim_max;
  (void)setrlimit(RLIMIT_NOFILE, &lim);
}

void maybe_write_json(const std::vector<ArmResult>& arms,
                      const std::string& scenario, std::size_t max_batch,
                      std::size_t num_threads, const std::string& arm,
                      const std::string& io, std::size_t pipeline) {
  const char* env = std::getenv("SGM_BENCH_JSON");
  if (!env || std::string(env) == "0") return;
  std::ofstream out("BENCH_serve.json");
  out << "{\n  \"bench\": \"serve\",\n  \"arm\": \"" << arm
      << "\",\n  \"io\": \"" << io << "\",\n  \"pipeline\": " << pipeline
      << ",\n  \"scenario\": \"" << scenario
      << "\",\n  \"max_batch\": " << max_batch
      << ",\n  \"num_threads\": " << num_threads << ",\n  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmResult& a = arms[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"clients\": %zu, \"queries\": %llu, "
                  "\"wall_s\": %.3f, \"queries_per_s\": %.0f, "
                  "\"p50_us\": %.2f, \"p99_us\": %.2f, \"p999_us\": %.2f, "
                  "\"mean_batch\": %.2f, \"full_flush_fraction\": %.3f}%s\n",
                  a.clients,
                  static_cast<unsigned long long>(a.queries), a.wall_s,
                  a.qps, a.p50_us, a.p99_us, a.p999_us, a.mean_batch,
                  a.full_flush_fraction,
                  i + 1 < arms.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  std::printf("(json written to BENCH_serve.json)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = env_double("SGM_BENCH_SERVE_SECONDS", 2.0);
  const std::size_t max_batch = env_size_t("SGM_BENCH_SERVE_BATCH", 64);
  const std::size_t num_threads = env_size_t("SGM_BENCH_THREADS", 2);
  const std::string scenario = "poisson2d";

  // --arm ring|mutex (or SGM_BENCH_SERVE_ARM); ring is the default path.
  std::string arm = "ring";
  if (const char* v = std::getenv("SGM_BENCH_SERVE_ARM")) arm = v;
  // --io direct|reactor|threads (or SGM_BENCH_SERVE_IO).
  std::string io = "direct";
  if (const char* v = std::getenv("SGM_BENCH_SERVE_IO")) io = v;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--arm") == 0) arm = argv[i + 1];
    if (std::strcmp(argv[i], "--io") == 0) io = argv[i + 1];
  }
  if (arm != "ring" && arm != "mutex") {
    std::fprintf(stderr, "unknown arm '%s' (want ring|mutex)\n", arm.c_str());
    return 2;
  }
  if (io != "direct" && io != "reactor" && io != "threads") {
    std::fprintf(stderr, "unknown io '%s' (want direct|reactor|threads)\n",
                 io.c_str());
    return 2;
  }
  if (io != "direct" && arm != "ring") {
    std::fprintf(stderr, "HTTP arms require --arm ring (reactor dispatches "
                         "via query_async)\n");
    return 2;
  }
  const serve::QueueMode mode =
      arm == "ring" ? serve::QueueMode::kRing : serve::QueueMode::kMutex;
  const std::size_t pipeline = env_size_t("SGM_BENCH_SERVE_PIPELINE", 8);
  if (io != "direct") raise_fd_limit();

  const auto cfg = pinn::ScenarioRegistry::instance().make(
      scenario, pinn::ScenarioScale::kSmoke);
  util::Rng rng(cfg.net_seed);
  nn::Mlp net(cfg.net, rng);

  namespace fs = std::filesystem;
  const std::string root =
      (fs::temp_directory_path() / "sgm_bench_serve_registry").string();
  fs::remove_all(root);
  serve::ModelRegistry registry(root);
  registry.publish(scenario, net);
  registry.pin(scenario);

  std::printf(
      "=== serve throughput [%s queue, %s io]: %s %zux%zu net, max_batch "
      "%zu, %zu forward threads, %.1fs per arm ===\n",
      arm.c_str(), io.c_str(), scenario.c_str(), cfg.net.width, cfg.net.depth,
      max_batch, num_threads, seconds);
  std::printf("%8s %12s %12s %10s %10s %10s %11s %10s\n", "clients",
              "queries", "queries/s", "p50_us", "p99_us", "p999_us",
              "mean_batch", "full_frac");

  std::vector<ArmResult> arms;
  for (const std::size_t clients : client_counts()) {
    const ArmResult r =
        io == "direct"
            ? run_arm(registry, scenario, cfg.net.input_dim, clients, seconds,
                      max_batch, num_threads, mode)
            : run_http_arm(registry, scenario, cfg.net.input_dim, clients,
                           seconds, max_batch, num_threads,
                           io == "reactor" ? serve::IoMode::kReactor
                                           : serve::IoMode::kThreads,
                           pipeline);
    std::printf("%8zu %12llu %12.0f %10.2f %10.2f %10.2f %11.2f %10.3f\n",
                r.clients, static_cast<unsigned long long>(r.queries), r.qps,
                r.p50_us, r.p99_us, r.p999_us, r.mean_batch,
                r.full_flush_fraction);
    arms.push_back(r);
  }
  maybe_write_json(arms, scenario, max_batch, num_threads, arm, io, pipeline);
  fs::remove_all(root);
  return 0;
}
