// Section 3.6 complexity claims, measured: kNN construction O(N log N)
// (kd-tree and HNSW), effective-resistance embedding and LRD decomposition
// nearly linear in N. google-benchmark's complexity analysis reports the
// fitted exponent.

#include <benchmark/benchmark.h>

#include "core/pgm.hpp"
#include "graph/effective_resistance.hpp"
#include "graph/hnsw.hpp"
#include "graph/knn.hpp"
#include "graph/lrd.hpp"
#include "util/rng.hpp"

using namespace sgm;

namespace {

tensor::Matrix cloud(std::size_t n) {
  util::Rng rng(n * 2654435761u);
  tensor::Matrix pts(n, 2);
  for (std::size_t i = 0; i < pts.size(); ++i) pts.data()[i] = rng.uniform();
  return pts;
}

graph::CsrGraph knn_graph_of(std::size_t n, std::size_t k = 10) {
  graph::KnnGraphOptions opt;
  opt.k = k;
  return graph::build_knn_graph(cloud(n), opt);
}

void BM_KnnBuildKdTree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const tensor::Matrix pts = cloud(n);
  graph::KnnGraphOptions opt;
  opt.k = 10;
  for (auto _ : state) {
    auto g = graph::build_knn_graph(pts, opt);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KnnBuildKdTree)
    ->RangeMultiplier(2)
    ->Range(1024, 16384)
    ->Complexity(benchmark::oNLogN)
    ->Unit(benchmark::kMillisecond);

void BM_KnnBuildHnsw(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const tensor::Matrix pts = cloud(n);
  graph::KnnGraphOptions opt;
  opt.k = 10;
  for (auto _ : state) {
    auto g = graph::build_knn_graph_hnsw(pts, opt, {});
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KnnBuildHnsw)
    ->RangeMultiplier(2)
    ->Range(1024, 16384)
    ->Complexity(benchmark::oNLogN)
    ->Unit(benchmark::kMillisecond);

void BM_ErSmoothedEmbedding(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::CsrGraph g = knn_graph_of(n);
  graph::ErOptions opt;
  opt.method = graph::ErMethod::kSmoothed;
  opt.num_vectors = 8;
  opt.smoothing_iterations = 30;
  for (auto _ : state) {
    auto z = graph::effective_resistance_embedding(g, opt);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ErSmoothedEmbedding)
    ->RangeMultiplier(2)
    ->Range(1024, 16384)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMillisecond);

void BM_LrdDecompose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::CsrGraph g = knn_graph_of(n);
  graph::LrdOptions opt;
  opt.levels = 10;
  opt.er.method = graph::ErMethod::kSmoothed;
  opt.er.num_vectors = 8;
  opt.er.smoothing_iterations = 30;
  for (auto _ : state) {
    auto c = graph::lrd_decompose(g, opt);
    benchmark::DoNotOptimize(c.num_clusters);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LrdDecompose)
    ->RangeMultiplier(2)
    ->Range(1024, 16384)
    ->Complexity(benchmark::oNLogN)
    ->Unit(benchmark::kMillisecond);

void BM_FullPipelineS1S2(benchmark::State& state) {
  // The complete rebuild the paper runs every tau_G iterations.
  const auto n = static_cast<std::size_t>(state.range(0));
  const tensor::Matrix pts = cloud(n);
  core::PgmOptions pgm;
  pgm.knn.k = 10;
  graph::LrdOptions lrd;
  lrd.levels = 10;
  lrd.er.num_vectors = 8;
  lrd.er.smoothing_iterations = 30;
  for (auto _ : state) {
    auto g = core::build_pgm(pts, nullptr, pgm);
    auto c = graph::lrd_decompose(g, lrd);
    benchmark::DoNotOptimize(c.num_clusters);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FullPipelineS1S2)
    ->RangeMultiplier(2)
    ->Range(1024, 16384)
    ->Complexity(benchmark::oNLogN)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
