// Table 2 reproduction: parameterized annular ring — Min(u), Min(v),
// p at Min(v), and the time-to-reach matrix for U_1024, U_4096, MIS_1024
// and SGM-S_1024 (SGM with the S3 stability term).
//
// Paper hyperparameters kept: k=7, L=6, r=15%; batch ratio 1:4; N ratio 1:2.
// Validation is against the exact annular-Poiseuille solution at
// r_i = 1.0 / 0.875 / 0.75, averaged, as in the paper.

#include <cstdio>

#include "common.hpp"
#include "pinn/annular.hpp"

using namespace sgm;

int main() {
  const double budget = bench::budget_seconds(30.0);
  const int seeds = bench::num_seeds(1);
  std::printf("bench_table2_ar: budget %.0fs/arm, %d seed(s)\n", budget,
              seeds);

  pinn::AnnularProblem::Options small_opt;
  small_opt.interior_points = 16384;
  small_opt.boundary_points = 2048;
  pinn::AnnularProblem small_problem(small_opt);

  pinn::AnnularProblem::Options large_opt = small_opt;
  large_opt.interior_points = 32768;
  pinn::AnnularProblem large_problem(large_opt);

  nn::MlpConfig net_cfg;
  net_cfg.input_dim = 3;
  net_cfg.output_dim = 3;
  net_cfg.width = 48;
  net_cfg.depth = 4;
  util::Rng enc_rng(4242);  // same Fourier features for every arm
  net_cfg.encoding = std::make_shared<nn::FourierEncoding>(3, 12, 1.0, enc_rng);

  const std::uint64_t validate_every = 150;

  bench::Arm u_small{"U_small", bench::SamplerKind::kUniform, 128};
  bench::Arm u_large{"U_large", bench::SamplerKind::kUniform, 512};
  bench::Arm mis{"MIS_small", bench::SamplerKind::kMis, 128};
  mis.mis.refresh_every = 700;

  bench::Arm sgms{"SGM-S_small", bench::SamplerKind::kSgmS, 128};
  sgms.sgm.pgm.knn.k = 7;        // paper: k=7
  sgms.sgm.lrd.levels = 6;       // paper: L=6
  sgms.sgm.rep_fraction = 0.15;  // paper: r=15%
  sgms.sgm.tau_e = 700;
  sgms.sgm.tau_g = 6000;         // paper: 60k, scaled 10x
  sgms.sgm.epoch.epoch_fraction = 0.125;
  sgms.sgm.isr.rank = 6;
  sgms.sgm.isr.subspace_iterations = 4;
  sgms.sgm.scorer.isr_weight = 1.0;

  std::vector<bench::ArmResult> results;
  results.push_back(bench::run_arm(small_problem, u_small, net_cfg, budget,
                                   seeds, validate_every));
  results.push_back(bench::run_arm(large_problem, u_large, net_cfg, budget,
                                   seeds, validate_every));
  results.push_back(bench::run_arm(small_problem, mis, net_cfg, budget,
                                   seeds, validate_every));
  results.push_back(bench::run_arm(small_problem, sgms, net_cfg, budget,
                                   seeds, validate_every));

  bench::print_min_time_table(
      "Table 2: parameterized annular ring (averaged over r_i)", results,
      {"u", "v", "p"}, /*scenario=*/"annular_ring_param");

  // The paper reports p at the iteration where v reaches its minimum
  // (p does not decrease monotonically); print that row explicitly.
  std::printf("\np at Min(v):\n");
  for (const auto& a : results) {
    double best_v = 1e300, p_at = 0;
    for (const auto& rec : a.records) {
      double v = 0, p = 0;
      for (const auto& e : rec.validation) {
        if (e.name == "v") v = e.error;
        if (e.name == "p") p = e.error;
      }
      if (v < best_v) {
        best_v = v;
        p_at = p;
      }
    }
    std::printf("  %-14s %.4g\n", a.arm.label.c_str(), p_at);
  }
  return 0;
}
