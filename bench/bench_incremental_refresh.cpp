// Refresh-path benchmark: one S1/S2 refresh (kNN PGM + effective-resistance
// embedding + LRD merge) measured as a FULL rebuild vs the INCREMENTAL
// engine, on the same evolving output stream, at a sweep of dirty fractions.
//
// This is the denominator the incremental refresh engine attacks: after
// PR 4 made the training step 3.3x faster, the periodic S1/S2 rebuild is
// the dominant recurring sampler cost. The acceptance line for PR 5 is a
// >= 3x refresh speedup at 10% dirty on the 50k-point sweep (kd backend).
//
// The two engines are fed the identical stream, so they stay equivalent
// (see tests/test_incremental_refresh.cpp) and every round is an
// apples-to-apples timing of the same logical refresh. Fractions above the
// fallback threshold (0.30) show the incremental engine taking the full
// path — speedup ~1x by design.
//
// Env knobs:
//   SGM_BENCH_N        points (default 50000)
//   SGM_BENCH_THREADS  worker threads per engine (default 1)
//   SGM_BENCH_JSON=1   write BENCH_incremental_refresh.json next to the
//                      binary (uploaded by the perf-smoke CI job)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/incremental_refresh.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace sgm;

namespace {

tensor::Matrix random_points(std::size_t n, std::size_t d, util::Rng& rng) {
  tensor::Matrix m(n, d);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform();
  return m;
}

tensor::Matrix base_outputs(const tensor::Matrix& pts) {
  tensor::Matrix out(pts.rows(), 1);
  for (std::size_t i = 0; i < pts.rows(); ++i)
    out(i, 0) = std::sin(3.0 * pts(i, 0)) + 0.5 * std::cos(5.0 * pts(i, 1));
  return out;
}

/// Perturbs exactly `fraction` of the points, chosen as the disc nearest a
/// (round-dependent) moving center — the spatially-coherent drift real PINN
/// training produces: residuals move with the solution front, they do not
/// scatter uniformly. (A uniformly-random dirty set at 10% touches ~70% of
/// all kNN lists via reverse neighbors, which no incremental scheme can
/// beat; the coherent case is both the physical one and the one the paper's
/// refresh amortization targets.) Alternating sign keeps the output column
/// std pinned so no repin-fallback fires mid-sweep.
void evolve_outputs(tensor::Matrix& out, const tensor::Matrix& pts,
                    double fraction, int round) {
  const std::size_t n = out.rows();
  const auto want = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(n)));
  if (want == 0) return;
  const double cx = 0.15 + 0.12 * round, cy = 0.35 + 0.09 * round;
  std::vector<std::pair<double, std::size_t>> by_dist(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = pts(i, 0) - cx, dy = pts(i, 1) - cy;
    by_dist[i] = {dx * dx + dy * dy, i};
  }
  std::nth_element(by_dist.begin(), by_dist.begin() + (want - 1),
                   by_dist.end());
  for (std::size_t t = 0; t < want; ++t) {
    const std::size_t id = by_dist[t].second;
    const double sign = (id % 2 == 0) ? 1.0 : -1.0;
    out(id, 0) += sign * (0.25 + 0.02 * round);
  }
}

std::size_t env_size_t(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long long parsed = std::atoll(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

struct ArmResult {
  std::string arm_name;
  std::string er_method;
  double er_stale_ratio = 0.0;
  double dirty_fraction = 0.0;
  double full_s = 0.0;
  double incremental_s = 0.0;
  bool took_full_path = false;
  bool er_resynced = false;
  std::size_t requeried = 0;
  std::size_t changed_edges = 0;
  double speedup() const {
    return incremental_s > 0.0 ? full_s / incremental_s : 0.0;
  }
};

core::IncrementalRefreshOptions make_options(graph::ErMethod method,
                                             double threshold,
                                             double er_stale_ratio,
                                             std::size_t threads) {
  core::IncrementalRefreshOptions opt;
  opt.pgm.knn.k = 10;
  opt.pgm.output_feature_weight = 0.6;
  opt.lrd.levels = 8;
  opt.lrd.er.method = method;  // smoothed arms run the LRD defaults
  if (method == graph::ErMethod::kJlSolve) {
    // Cold JL solves at 50k are ~17 s each at the defaults; a reduced
    // budget (applied to BOTH sides of the comparison) keeps the arm
    // CI-sized without changing the full-vs-incremental ratio story.
    opt.lrd.er.num_vectors = 8;
    opt.lrd.er.cg_rel_tol = 1e-5;
  }
  opt.dirty_tolerance = 0.0;
  opt.incremental_threshold = threshold;
  opt.er_stale_ratio = er_stale_ratio;
  opt.num_threads = threads;
  return opt;
}

struct ArmSpec {
  const char* name;
  graph::ErMethod method;
  double er_stale_ratio;
};

}  // namespace

int main() {
  const std::size_t n = env_size_t("SGM_BENCH_N", 50000);
  const std::size_t threads = env_size_t("SGM_BENCH_THREADS", 1);
  util::Rng rng(7);
  const tensor::Matrix pts = random_points(n, 2, rng);

  // Each row measures ONE refresh at the given dirty fraction from a synced
  // state (fresh engine pair per row), which is the well-defined "cost of a
  // refresh at p% dirty". Under stale-ER amortization a steady stream of
  // p%-dirty refreshes additionally pays an exact resync roughly every
  // er_stale_ratio / changed_edge_fraction rounds (the [er resync] rows
  // show that price).
  //
  // The production configuration (scenario registry defaults) is
  // smoothed + stale-ER amortization; the strict arms resync the embedding
  // every refresh and show what exact-to-tolerance ER incrementality costs
  // (converged iterative solves are near-full price for any non-trivial
  // perturbation — that is why the amortization exists).
  const ArmSpec specs[] = {
      {"smoothed_stale", graph::ErMethod::kSmoothed, 0.25},
      {"smoothed_strict", graph::ErMethod::kSmoothed, 0.0},
      {"jl_strict", graph::ErMethod::kJlSolve, 0.0},
  };
  std::vector<ArmResult> arms;

  for (const ArmSpec& spec : specs) {
    const bool jl = spec.method == graph::ErMethod::kJlSolve;
    // The JL arm's cold solves make full rebuilds expensive; two rows keep
    // the bench inside a CI-friendly budget.
    const std::vector<double> fractions =
        jl ? std::vector<double>{0.01, 0.10}
           : std::vector<double>{0.01, 0.05, 0.10, 0.25, 0.50};
    int round = 0;
    for (double fraction : fractions) {
      ++round;
      core::IncrementalRefreshEngine full(
          pts, make_options(spec.method, -1.0, 0.0, threads));
      core::IncrementalRefreshEngine inc(
          pts, make_options(spec.method, 0.30, spec.er_stale_ratio, threads));
      tensor::Matrix out = base_outputs(pts);
      full.refresh(&out);
      inc.refresh(&out);
      evolve_outputs(out, pts, fraction, round);

      ArmResult arm;
      arm.arm_name = spec.name;
      arm.er_method = jl ? "jl_solve" : "smoothed";
      arm.er_stale_ratio = spec.er_stale_ratio;
      arm.dirty_fraction = fraction;

      util::WallTimer t_full;
      full.refresh(&out);
      arm.full_s = t_full.elapsed_s();

      core::RefreshStats stats;
      util::WallTimer t_inc;
      inc.refresh(&out, &stats);
      arm.incremental_s = t_inc.elapsed_s();
      arm.took_full_path = stats.full_rebuild;
      arm.er_resynced = stats.er_resynced;
      arm.requeried = stats.requeried_points;
      arm.changed_edges = stats.changed_edges;

      std::printf(
          "arm=%-15s dirty=%5.1f%%  full=%8.3f s  incremental=%8.3f s  "
          "speedup=%6.2fx  %s%s (requeried %zu, changed edges %zu)\n",
          spec.name, 100.0 * fraction, arm.full_s, arm.incremental_s,
          arm.speedup(),
          arm.took_full_path ? "[fallback]" : "[incremental]",
          arm.er_resynced ? "[er resync]" : "", arm.requeried,
          arm.changed_edges);
      std::fflush(stdout);
      arms.push_back(arm);
    }
  }

  if (const char* env = std::getenv("SGM_BENCH_JSON");
      env && std::string(env) != "0") {
    std::ofstream os("BENCH_incremental_refresh.json");
    os << "{\n  \"bench\": \"incremental_refresh\",\n";
    os << "  \"n\": " << n << ",\n  \"k\": 10,\n  \"threads\": " << threads
       << ",\n  \"incremental_threshold\": 0.30,\n  \"arms\": [\n";
    for (std::size_t i = 0; i < arms.size(); ++i) {
      const ArmResult& a = arms[i];
      os << "    {\"arm\": \"" << a.arm_name << "\", \"er_method\": \""
         << a.er_method << "\", \"er_stale_ratio\": " << a.er_stale_ratio
         << ", \"dirty_fraction\": " << a.dirty_fraction
         << ", \"full_s\": " << a.full_s
         << ", \"incremental_s\": " << a.incremental_s
         << ", \"speedup\": " << a.speedup()
         << ", \"full_path_fallback\": " << (a.took_full_path ? "true" : "false")
         << ", \"er_resynced\": " << (a.er_resynced ? "true" : "false")
         << ", \"requeried_points\": " << a.requeried
         << ", \"changed_edges\": " << a.changed_edges << "}"
         << (i + 1 < arms.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::printf("Wrote BENCH_incremental_refresh.json\n");
  }
  return 0;
}
