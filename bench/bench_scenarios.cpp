// Scenario sweep: every registered scenario, uniform vs SGM, under one wall
// budget — the "does importance sampling still pay off on every workload"
// bench. New scenarios registered in src/pinn/scenario.cpp are picked up
// automatically; with SGM_BENCH_JSON=1 each scenario writes its own
// BENCH_scenario_<name>.json stamped with the scenario name.
//
//   SGM_BENCH_BUDGET   seconds of train wall time per arm (default 10)
//   SGM_BENCH_SEEDS    seeds averaged per arm (default 1)
//   SGM_BENCH_SCENARIO run only this scenario (default: all registered)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "pinn/scenario.hpp"

using namespace sgm;

int main() {
  const double budget = bench::budget_seconds(10.0);
  const int seeds = bench::num_seeds(1);
  const char* only = std::getenv("SGM_BENCH_SCENARIO");

  auto& registry = pinn::ScenarioRegistry::instance();
  std::vector<std::string> names = registry.names();
  if (only && *only) names = {only};

  std::printf("bench_scenarios: %zu scenario(s), budget %.0fs/arm, %d "
              "seed(s)\n",
              names.size(), budget, seeds);

  for (const auto& name : names) {
    const pinn::ScenarioConfig cfg =
        registry.make(name, pinn::ScenarioScale::kFull);
    std::printf("\n--- %s: %s ---\n", name.c_str(), cfg.description.c_str());

    bench::Arm uniform;
    uniform.label = "uniform";
    uniform.kind = bench::SamplerKind::kUniform;
    uniform.batch_size = cfg.trainer.batch_size;

    bench::Arm sgm;
    sgm.label = cfg.sgm.use_isr ? "SGM-S (ours)" : "SGM (ours)";
    sgm.kind = cfg.sgm.use_isr ? bench::SamplerKind::kSgmS
                               : bench::SamplerKind::kSgm;
    sgm.batch_size = cfg.trainer.batch_size;
    sgm.sgm = cfg.sgm;

    std::vector<std::string> metrics;
    for (const auto& env : cfg.envelopes) metrics.push_back(env.metric);

    std::vector<bench::ArmResult> results;
    results.push_back(bench::run_arm(*cfg.problem, uniform, cfg.net, budget,
                                     seeds, cfg.trainer.validate_every));
    results.push_back(bench::run_arm(*cfg.problem, sgm, cfg.net, budget,
                                     seeds, cfg.trainer.validate_every));

    bench::print_min_time_table("Scenario " + name, results, metrics, name);
  }
  return 0;
}
