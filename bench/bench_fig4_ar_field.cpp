// Figure 4 reproduction: visualized absolute pressure errors at r_i = 1.0
// for each sampling method after equal training budgets. Renders ASCII
// heat maps to stdout (the terminal stand-in for the paper's color plots)
// and writes fig4_<arm>.csv with (z, r, |p_err|) triplets for external
// plotting.

#include <cstdio>

#include "common.hpp"
#include "pinn/annular.hpp"
#include "pinn/trainer.hpp"
#include "pinn/validation.hpp"
#include "util/csv.hpp"

using namespace sgm;

namespace {

nn::Mlp train_arm(const pinn::AnnularProblem& problem, const bench::Arm& arm,
                  double budget) {
  nn::MlpConfig cfg;
  cfg.input_dim = 3;
  cfg.output_dim = 3;
  cfg.width = 48;
  cfg.depth = 4;
  util::Rng enc_rng(4242);
  cfg.encoding = std::make_shared<nn::FourierEncoding>(3, 12, 1.0, enc_rng);
  util::Rng rng(1000);
  nn::Mlp net(cfg, rng);

  std::unique_ptr<samplers::Sampler> sampler;
  if (arm.kind == bench::SamplerKind::kUniform) {
    sampler = std::make_unique<samplers::UniformSampler>(
        static_cast<std::uint32_t>(problem.interior_points().rows()));
  } else if (arm.kind == bench::SamplerKind::kMis) {
    sampler = std::make_unique<samplers::MisSampler>(
        problem.interior_points(), arm.mis);
  } else {
    core::SgmOptions opt = arm.sgm;
    opt.use_isr = (arm.kind == bench::SamplerKind::kSgmS);
    sampler =
        std::make_unique<core::SgmSampler>(problem.interior_points(), opt);
  }

  pinn::TrainerOptions topt;
  topt.batch_size = arm.batch_size;
  topt.max_iterations = std::numeric_limits<std::uint64_t>::max() / 2;
  topt.wall_time_budget_s = budget;
  topt.learning_rate = 2e-3;
  topt.validate_every = 500;
  pinn::Trainer trainer(problem, net, *sampler, topt);
  trainer.run();
  return net;
}

}  // namespace

int main() {
  const double budget = bench::budget_seconds(20.0);
  std::printf("bench_fig4_ar_field: budget %.0fs/arm\n", budget);

  pinn::AnnularProblem::Options opt;
  opt.interior_points = 16384;
  opt.boundary_points = 2048;
  pinn::AnnularProblem problem(opt);

  bench::Arm u_small{"Uniform_small", bench::SamplerKind::kUniform, 128};
  bench::Arm mis{"MIS_small", bench::SamplerKind::kMis, 128};
  mis.mis.refresh_every = 700;
  bench::Arm sgms{"SGM-S-PINN", bench::SamplerKind::kSgmS, 128};
  sgms.sgm.pgm.knn.k = 7;
  sgms.sgm.lrd.levels = 6;
  sgms.sgm.rep_fraction = 0.15;
  sgms.sgm.tau_e = 700;
  sgms.sgm.tau_g = 6000;
  sgms.sgm.epoch.epoch_fraction = 0.125;
  sgms.sgm.isr.rank = 6;
  sgms.sgm.isr.subspace_iterations = 4;

  const std::size_t nz = 48, nr = 20;
  for (const auto& arm : {u_small, mis, sgms}) {
    nn::Mlp net = train_arm(problem, arm, budget);
    const tensor::Matrix field =
        problem.pressure_error_field(net, 1.0, nz, nr);
    std::printf("\n=== Figure 4: |p - p_exact| at r_i=1.0 — %s ===\n",
                arm.label.c_str());
    std::fputs(pinn::ascii_heatmap(field, nz, nr).c_str(), stdout);

    std::string fname = "fig4_" + arm.label + ".csv";
    for (auto& c : fname)
      if (c == ' ') c = '_';
    util::CsvWriter csv(fname, {"z", "r", "abs_p_err"});
    for (std::size_t i = 0; i < field.rows(); ++i)
      csv.row({field(i, 0), field(i, 1), field(i, 2)});
    double mean = 0;
    for (std::size_t i = 0; i < field.rows(); ++i) mean += field(i, 2);
    std::printf("mean |p_err| = %.5g  (field written to %s)\n",
                mean / field.rows(), fname.c_str());
  }
  return 0;
}
