// Figure 3 reproduction: solution error of v vs wall time on the
// parameterized annular-ring example. Crucially includes the paper's
// negative result: SGM *without* the S3 stability term degrades on
// parameterized training, while SGM-S recovers — so this bench runs five
// arms (uniform small/large, MIS, SGM, SGM-S).

#include <cstdio>

#include "common.hpp"
#include "pinn/annular.hpp"

using namespace sgm;

int main() {
  const double budget = bench::budget_seconds(25.0);
  const int seeds = bench::num_seeds(1);
  std::printf("bench_fig3_ar_curves: budget %.0fs/arm, %d seed(s)\n",
              budget, seeds);

  pinn::AnnularProblem::Options small_opt;
  small_opt.interior_points = 16384;
  small_opt.boundary_points = 2048;
  pinn::AnnularProblem small_problem(small_opt);

  pinn::AnnularProblem::Options large_opt = small_opt;
  large_opt.interior_points = 32768;
  pinn::AnnularProblem large_problem(large_opt);

  nn::MlpConfig net_cfg;
  net_cfg.input_dim = 3;
  net_cfg.output_dim = 3;
  net_cfg.width = 48;
  net_cfg.depth = 4;
  util::Rng enc_rng(4242);  // same Fourier features for every arm
  net_cfg.encoding = std::make_shared<nn::FourierEncoding>(3, 12, 1.0, enc_rng);

  const std::uint64_t validate_every = 100;

  auto sgm_base = [] {
    bench::Arm a;
    a.batch_size = 128;
    a.sgm.pgm.knn.k = 7;
    a.sgm.lrd.levels = 6;
    a.sgm.rep_fraction = 0.15;
    a.sgm.tau_e = 700;
    a.sgm.tau_g = 6000;
    a.sgm.epoch.epoch_fraction = 0.125;
    a.sgm.isr.rank = 6;
    a.sgm.isr.subspace_iterations = 4;
    return a;
  };

  bench::Arm u_small{"Uniform_small", bench::SamplerKind::kUniform, 128};
  bench::Arm u_large{"Uniform_large", bench::SamplerKind::kUniform, 512};
  bench::Arm mis{"MIS_small", bench::SamplerKind::kMis, 128};
  mis.mis.refresh_every = 700;
  bench::Arm sgm = sgm_base();
  sgm.label = "SGM-PINN";  // without S3 — the paper's degradation case
  sgm.kind = bench::SamplerKind::kSgm;
  bench::Arm sgms = sgm_base();
  sgms.label = "SGM-S-PINN";  // with S3
  sgms.kind = bench::SamplerKind::kSgmS;

  std::vector<bench::ArmResult> results;
  results.push_back(bench::run_arm(small_problem, u_small, net_cfg, budget,
                                   seeds, validate_every));
  results.push_back(bench::run_arm(large_problem, u_large, net_cfg, budget,
                                   seeds, validate_every));
  results.push_back(bench::run_arm(small_problem, mis, net_cfg, budget,
                                   seeds, validate_every));
  results.push_back(bench::run_arm(small_problem, sgm, net_cfg, budget,
                                   seeds, validate_every));
  results.push_back(bench::run_arm(small_problem, sgms, net_cfg, budget,
                                   seeds, validate_every));

  bench::print_curves(
      "Figure 3: annular ring (parameterized) solution error of v vs time",
      results, "v", "fig3", /*scenario=*/"annular_ring_param");
  return 0;
}
