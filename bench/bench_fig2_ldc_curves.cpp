// Figure 2 reproduction: solution error of v by wall time for the LDC
// example — the error-vs-time convergence curves behind Table 1. Prints
// each arm's series and writes fig2_<arm>.csv files.

#include <cstdio>
#include <memory>

#include "cfd/ldc_solver.hpp"
#include "common.hpp"
#include "pinn/navier_stokes.hpp"

using namespace sgm;

int main() {
  const double budget = bench::budget_seconds(25.0);
  const int seeds = bench::num_seeds(1);
  std::printf("bench_fig2_ldc_curves: budget %.0fs/arm, %d seed(s)\n",
              budget, seeds);

  cfd::LdcOptions ref_opt;
  ref_opt.n = 81;
  ref_opt.reynolds = 10.0;
  auto reference = std::make_shared<const cfd::LdcSolution>(
      cfd::solve_lid_driven_cavity(ref_opt));

  pinn::LdcProblem::Options small_opt;
  small_opt.reynolds = 10.0;
  small_opt.interior_points = 16384;
  small_opt.boundary_points = 2048;
  pinn::LdcProblem small_problem(small_opt, reference);

  pinn::LdcProblem::Options large_opt = small_opt;
  large_opt.interior_points = 32768;
  pinn::LdcProblem large_problem(large_opt, reference);

  nn::MlpConfig net_cfg;
  net_cfg.input_dim = 2;
  net_cfg.output_dim = 3;
  net_cfg.width = 48;
  net_cfg.depth = 4;
  util::Rng enc_rng(4242);  // same Fourier features for every arm
  net_cfg.encoding = std::make_shared<nn::FourierEncoding>(2, 12, 1.5, enc_rng);

  const std::uint64_t validate_every = 100;

  bench::Arm u_small{"Uniform_small", bench::SamplerKind::kUniform, 128};
  bench::Arm u_large{"Uniform_large", bench::SamplerKind::kUniform, 1024};
  bench::Arm mis{"MIS_small", bench::SamplerKind::kMis, 128};
  mis.mis.refresh_every = 700;
  bench::Arm sgm{"SGM-PINN_small", bench::SamplerKind::kSgm, 128};
  sgm.sgm.pgm.knn.k = 20;
  sgm.sgm.lrd.levels = 10;
  sgm.sgm.rep_fraction = 0.15;
  sgm.sgm.tau_e = 700;
  sgm.sgm.tau_g = 2500;
  sgm.sgm.epoch.epoch_fraction = 0.125;

  std::vector<bench::ArmResult> results;
  results.push_back(bench::run_arm(small_problem, u_small, net_cfg, budget,
                                   seeds, validate_every));
  results.push_back(bench::run_arm(large_problem, u_large, net_cfg, budget,
                                   seeds, validate_every));
  results.push_back(bench::run_arm(small_problem, mis, net_cfg, budget,
                                   seeds, validate_every));
  results.push_back(bench::run_arm(small_problem, sgm, net_cfg, budget,
                                   seeds, validate_every));

  bench::print_curves("Figure 2: LDC solution error of v by wall time",
                      results, "v", "fig2", /*scenario=*/"ldc_zeroeq");
  return 0;
}
