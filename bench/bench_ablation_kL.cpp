// Hyperparameter sensitivity ablation (Section 5 notes "more complex
// examples can be sensitive to k and L, as is the performance overhead"):
// sweeps the kNN size k, the LRD level count L and the representative
// fraction r on the Poisson problem with a fixed wall budget per cell,
// reporting final error, cluster count and refresh overhead.

#include <cstdio>
#include <limits>

#include "common.hpp"
#include "pinn/pde.hpp"

using namespace sgm;

namespace {

struct Cell {
  std::size_t k;
  int levels;
  double rep_fraction;
};

}  // namespace

int main() {
  const double budget = bench::budget_seconds(8.0);
  std::printf("bench_ablation_kL: budget %.0fs/cell\n", budget);

  pinn::PoissonProblem::Options popt;
  popt.interior_points = 8192;
  pinn::PoissonProblem problem(popt);

  nn::MlpConfig net_cfg;
  net_cfg.input_dim = 2;
  net_cfg.output_dim = 1;
  net_cfg.width = 32;
  net_cfg.depth = 3;

  const std::vector<Cell> cells = {
      // k sweep at L=8, r=15%
      {5, 8, 0.15},
      {10, 8, 0.15},
      {20, 8, 0.15},
      {30, 8, 0.15},
      // L sweep at k=10, r=15%
      {10, 2, 0.15},
      {10, 6, 0.15},
      {10, 10, 0.15},
      // r sweep at k=10, L=8
      {10, 8, 0.05},
      {10, 8, 0.30},
  };

  std::printf("%6s %4s %6s | %10s %10s %12s %10s\n", "k", "L", "r",
              "err_u", "clusters", "refresh_s", "evals");
  for (const auto& cell : cells) {
    bench::Arm arm;
    arm.label = "sgm";
    arm.kind = bench::SamplerKind::kSgm;
    arm.batch_size = 128;
    arm.sgm.pgm.knn.k = cell.k;
    arm.sgm.lrd.levels = cell.levels;
    arm.sgm.rep_fraction = cell.rep_fraction;
    arm.sgm.tau_e = 400;
    arm.sgm.tau_g = 0;
    arm.sgm.epoch.epoch_fraction = 0.25;

    // Cluster count reported from a one-off decomposition with the same
    // parameters (run_arm hides the sampler internals).
    core::SgmOptions probe = arm.sgm;
    core::SgmSampler probe_sampler(problem.interior_points(), probe);
    const auto clusters = probe_sampler.clusters().num_clusters();

    auto result = bench::run_arm(problem, arm, net_cfg, budget, 1, 200);
    std::printf("%6zu %4d %5.0f%% | %10.4g %10u %12.3f %10llu\n", cell.k,
                cell.levels, cell.rep_fraction * 100, result.best("u"),
                clusters, result.refresh_seconds,
                static_cast<unsigned long long>(result.loss_evaluations));
  }
  std::printf("(fixed wall budget per cell; err_u = relative L2 vs the "
              "manufactured solution)\n");
  return 0;
}
