// Unit tests for sgm::tensor — matrix algebra and the autodiff tape.
// Every differentiable op is gradient-checked against central finite
// differences; these checks underwrite the correctness of all PDE losses.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>

#include "nn/activation.hpp"
#include "tensor/gemm_dispatch.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "tensor/tape.hpp"
#include "util/rng.hpp"

namespace {

using sgm::tensor::Matrix;
using sgm::tensor::Tape;
using sgm::tensor::VarId;
namespace ops = sgm::tensor;

Matrix random_matrix(std::size_t r, std::size_t c, sgm::util::Rng& rng,
                     double scale = 1.0) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = rng.normal(0.0, scale);
  return m;
}

// ---------------------------------------------------------------- Matrix --

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, InitializerListAndRagged) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, MatmulMatchesManual) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = sgm::tensor::matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(sgm::tensor::matmul(a, b), std::invalid_argument);
}

TEST(Matrix, TransposedProductsAgree) {
  sgm::util::Rng rng(3);
  Matrix a = random_matrix(4, 3, rng);
  Matrix b = random_matrix(4, 5, rng);
  Matrix tn = sgm::tensor::matmul_tn(a, b);  // A^T B
  Matrix ref = sgm::tensor::matmul(sgm::tensor::transpose(a), b);
  EXPECT_LT((tn - ref).max_abs(), 1e-12);

  Matrix c = random_matrix(6, 3, rng);
  Matrix d = random_matrix(5, 3, rng);
  Matrix nt = sgm::tensor::matmul_nt(c, d);  // C D^T
  Matrix ref2 = sgm::tensor::matmul(c, sgm::tensor::transpose(d));
  EXPECT_LT((nt - ref2).max_abs(), 1e-12);
}

TEST(Matrix, NormsAndReductions) {
  Matrix m{{3, 4}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
  EXPECT_DOUBLE_EQ(m.sum(), 7.0);
}

TEST(Matrix, AxpyAndScale) {
  Matrix a{{1, 2}};
  Matrix b{{10, 20}};
  a.axpy(0.5, b);
  EXPECT_DOUBLE_EQ(a(0, 0), 6.0);
  a.scale(2.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 24.0);
}

TEST(Matrix, HadamardAndIdentity) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix h = sgm::tensor::hadamard(a, a);
  EXPECT_DOUBLE_EQ(h(1, 1), 16.0);
  Matrix i = sgm::tensor::identity(3);
  EXPECT_DOUBLE_EQ(i(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
}

// ------------------------------------------------------------------ Tape --

TEST(Tape, BackwardRequiresScalarRoot) {
  Tape t;
  VarId a = t.parameter(Matrix(2, 2, 1.0));
  EXPECT_THROW(t.backward(a), std::invalid_argument);
}

TEST(Tape, ConstantGetsNoGrad) {
  Tape t;
  VarId c = t.constant(Matrix(1, 1, 3.0));
  VarId p = t.parameter(Matrix(1, 1, 2.0));
  VarId s = ops::mul(t, c, p);
  t.backward(s);
  EXPECT_TRUE(t.grad(c).empty());
  EXPECT_DOUBLE_EQ(t.grad(p)(0, 0), 3.0);
}

TEST(Tape, GradAccumulatesAcrossUses) {
  Tape t;
  VarId p = t.parameter(Matrix(1, 1, 3.0));
  VarId s = ops::add(t, p, p);  // d(2p)/dp = 2
  t.backward(s);
  EXPECT_DOUBLE_EQ(t.grad(p)(0, 0), 2.0);
}

TEST(Tape, ClearResets) {
  Tape t;
  t.parameter(Matrix(1, 1, 1.0));
  EXPECT_EQ(t.num_nodes(), 1u);
  t.clear();
  EXPECT_EQ(t.num_nodes(), 0u);
}

// ------------------------------------------------------- Gradient checks --

// Central-difference gradient check: `build` records ops on the tape and
// returns the scalar root; the check compares the analytic gradient of the
// parameter leaf against finite differences, one entry at a time.
void gradcheck_root(
    const std::function<VarId(Tape&, VarId)>& build, const Matrix& param0,
    double tol = 2e-6, double h = 1e-5) {
  Tape t;
  VarId p = t.parameter(param0);
  VarId root = build(t, p);
  t.backward(root);
  const Matrix analytic = t.grad(p);
  ASSERT_FALSE(analytic.empty());

  for (std::size_t i = 0; i < param0.size(); ++i) {
    Matrix plus = param0, minus = param0;
    plus.data()[i] += h;
    minus.data()[i] -= h;
    Tape tp;
    VarId pp = tp.parameter(plus);
    const double fp = tp.value(build(tp, pp))(0, 0);
    Tape tm;
    VarId pm = tm.parameter(minus);
    const double fm = tm.value(build(tm, pm))(0, 0);
    const double numeric = (fp - fm) / (2 * h);
    EXPECT_NEAR(analytic.data()[i], numeric, tol)
        << "entry " << i << " of " << param0.size();
  }
}

TEST(Gradcheck, AddSubScale) {
  sgm::util::Rng rng(1);
  const Matrix x0 = random_matrix(3, 2, rng);
  gradcheck_root(
      [&](Tape& t, VarId p) {
        VarId c = t.constant(Matrix(3, 2, 0.7));
        VarId a = ops::add(t, p, c);
        VarId b = ops::sub(t, a, p);  // also exercises sub's -1 path
        VarId d = ops::scale(t, ops::add(t, a, b), 0.3);
        return ops::sum_all(t, d);
      },
      x0);
}

TEST(Gradcheck, MulSquare) {
  sgm::util::Rng rng(2);
  const Matrix x0 = random_matrix(2, 3, rng);
  gradcheck_root(
      [&](Tape& t, VarId p) {
        VarId sq = ops::square(t, p);
        VarId m = ops::mul(t, sq, p);  // p^3 elementwise
        return ops::mean_all(t, m);
      },
      x0);
}

TEST(Gradcheck, MatmulBothSides) {
  sgm::util::Rng rng(3);
  const Matrix w0 = random_matrix(3, 4, rng);
  const Matrix x = random_matrix(5, 3, rng);
  gradcheck_root(
      [&](Tape& t, VarId p) {
        VarId xc = t.constant(x);
        VarId y = ops::matmul(t, xc, p);
        return ops::mean_all(t, ops::square(t, y));
      },
      w0);
  // And gradients w.r.t. the left operand.
  const Matrix a0 = random_matrix(2, 3, rng);
  const Matrix b = random_matrix(3, 4, rng);
  gradcheck_root(
      [&](Tape& t, VarId p) {
        VarId bc = t.constant(b);
        return ops::sum_all(t, ops::square(t, ops::matmul(t, p, bc)));
      },
      a0);
}

TEST(Gradcheck, AddRowvecBias) {
  sgm::util::Rng rng(4);
  const Matrix b0 = random_matrix(1, 4, rng);
  const Matrix x = random_matrix(6, 4, rng);
  gradcheck_root(
      [&](Tape& t, VarId p) {
        VarId xc = t.constant(x);
        return ops::mean_all(t, ops::square(t, ops::add_rowvec(t, xc, p)));
      },
      b0);
}

TEST(Gradcheck, ApplyActivationOrders) {
  sgm::util::Rng rng(5);
  const Matrix x0 = random_matrix(4, 2, rng);
  for (int order = 0; order <= 2; ++order) {
    gradcheck_root(
        [order](Tape& t, VarId p) {
          return ops::mean_all(
              t, ops::apply(t, p, sgm::nn::silu(), order));
        },
        x0, 5e-6);
  }
}

TEST(Gradcheck, ColAndHcat) {
  sgm::util::Rng rng(6);
  const Matrix x0 = random_matrix(4, 3, rng);
  gradcheck_root(
      [&](Tape& t, VarId p) {
        VarId c0 = ops::col(t, p, 0);
        VarId c2 = ops::col(t, p, 2);
        VarId cat = ops::hcat(t, c0, c2);
        return ops::sum_all(t, ops::square(t, cat));
      },
      x0);
}

TEST(Gradcheck, WeightedMeanAndAddScalar) {
  sgm::util::Rng rng(7);
  const Matrix x0 = random_matrix(5, 1, rng);
  Matrix w(5, 1);
  for (int i = 0; i < 5; ++i) w(i, 0) = 0.2 * (i + 1);
  gradcheck_root(
      [&](Tape& t, VarId p) {
        VarId shifted = ops::add_scalar(t, p, 0.3);
        return ops::weighted_mean(t, ops::square(t, shifted), w);
      },
      x0);
}

TEST(Gradcheck, DeepCompositeChain) {
  // A chain resembling one PINN residual: matmul -> act -> matmul -> square
  // -> mean, checked end to end.
  sgm::util::Rng rng(8);
  const Matrix w0 = random_matrix(3, 3, rng, 0.5);
  const Matrix x = random_matrix(4, 3, rng);
  gradcheck_root(
      [&](Tape& t, VarId p) {
        VarId xc = t.constant(x);
        VarId h1 = ops::apply(t, ops::matmul(t, xc, p), sgm::nn::tanh_act(), 0);
        VarId h2 = ops::matmul(t, h1, p);
        VarId s1 = ops::apply(t, h2, sgm::nn::silu(), 1);
        return ops::mean_all(t, ops::square(t, s1));
      },
      w0, 5e-6);
}

TEST(Ops, ValueCorrectness) {
  Tape t;
  VarId a = t.constant(Matrix{{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(t.value(ops::mean_all(t, a))(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(t.value(ops::sum_all(t, a))(0, 0), 10.0);
  VarId c1 = ops::col(t, a, 1);
  EXPECT_DOUBLE_EQ(t.value(c1)(1, 0), 4.0);
  VarId sq = ops::square(t, a);
  EXPECT_DOUBLE_EQ(t.value(sq)(1, 1), 16.0);
  VarId sc = ops::add_scalar(t, a, 1.0);
  EXPECT_DOUBLE_EQ(t.value(sc)(0, 0), 2.0);
}

TEST(Ops, ShapeErrorsThrow) {
  Tape t;
  VarId a = t.constant(Matrix(2, 2));
  VarId b = t.constant(Matrix(2, 3));
  EXPECT_THROW(ops::add(t, a, b), std::invalid_argument);
  EXPECT_THROW(ops::mul(t, a, b), std::invalid_argument);
  EXPECT_THROW(ops::col(t, a, 5), std::out_of_range);
  VarId rv = t.constant(Matrix(1, 3));
  EXPECT_THROW(ops::add_rowvec(t, a, rv), std::invalid_argument);
}

// ------------------------------------------------- FP contraction guard --
// The GEMM determinism contract (gemm_kernels.inl) requires every path —
// tile loops, row edges, column edges, AVX2 and generic builds of the same
// source — to apply ONE rounding regime uniformly. The kernel TUs are
// compiled with -ffp-contract=off, but gcc 12 still emits FMA for these
// reduction loops when -mfma is enabled (vfmadd231sd in the scalar edge
// loops and vfmadd231pd in the tile loops of the AVX2 TU), while clang
// honors the flag and rounds mul and add separately. Both regimes are
// deterministic; what breaks bitwise batched≡single inference is a MIX —
// e.g. a vectorized body that contracts while its scalar epilogue does not,
// the exact bug class PR 6 fixed by hand. These tests therefore pin, with
// bitwise comparisons, that (a) the edge path matches either the
// separate-rounding chain or the std::fma chain for EVERY element — never a
// blend — and (b) tile and edge paths agree bitwise. This TU is itself
// built with -ffp-contract=off (CMakeLists) so the `plain` reference loop
// below rounds each step separately.

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

TEST(GemmContraction, RowEdgeRoundingIsUniformAndPinned) {
  // A 1-row matmul runs entirely in the scalar row-edge path, whichever
  // kernel build dispatch selected.
  constexpr std::size_t kK = 64, kN = 3;
  sgm::util::Rng rng(17);
  Matrix a = random_matrix(1, kK, rng);
  Matrix b = random_matrix(kK, kN, rng);
  Matrix c = sgm::tensor::matmul(a, b);

  bool some_element_is_fma_sensitive = false;
  bool all_plain = true, all_fused = true;
  for (std::size_t j = 0; j < kN; ++j) {
    double plain = 0.0;  // separate rounding: mul rounds, then add rounds
    double fused = 0.0;  // contracted: each step rounds once, via std::fma
    for (std::size_t p = 0; p < kK; ++p) {
      const double prod = a(0, p) * b(p, j);
      plain += prod;
      fused = std::fma(a(0, p), b(p, j), fused);
    }
    if (!bits_equal(plain, fused)) some_element_is_fma_sensitive = true;
    if (!bits_equal(c(0, j), plain)) all_plain = false;
    if (!bits_equal(c(0, j), fused)) all_fused = false;
  }
  // The inputs must actually distinguish the two roundings, or the check
  // below proves nothing.
  ASSERT_TRUE(some_element_is_fma_sensitive);
  // One regime, uniformly: every element matches the separate-rounding
  // reference, or every element matches the std::fma chain bitwise. A blend
  // means the compiler contracted only part of the edge loop — the
  // determinism contract is broken and the kernel flags need attention.
  EXPECT_TRUE(all_plain || all_fused)
      << "edge path mixes contracted and separate rounding "
      << "(gemm_avx2_active=" << sgm::tensor::gemm_avx2_active() << ")";
  // The two regimes disagree on at least one element, so exactly one holds.
  EXPECT_NE(all_plain, all_fused);
}

TEST(GemmContraction, TileAndEdgePathsAgreeBitwise) {
  // Five identical rows: rows 0-3 run through the register-blocked tile
  // path, row 4 through the scalar row edge; 11 columns exercise the
  // column-edge path too (8-wide tile + 3-wide edge). Any rounding
  // difference between paths (e.g. contraction in just one of them) breaks
  // the bitwise equality.
  constexpr std::size_t kK = 37, kN = 11, kRows = 5;
  sgm::util::Rng rng(23);
  Matrix row = random_matrix(1, kK, rng);
  Matrix b = random_matrix(kK, kN, rng);
  Matrix a(kRows, kK);
  for (std::size_t i = 0; i < kRows; ++i)
    for (std::size_t p = 0; p < kK; ++p) a(i, p) = row(0, p);

  Matrix c = sgm::tensor::matmul(a, b);
  Matrix c_single = sgm::tensor::matmul(row, b);
  for (std::size_t i = 0; i < kRows; ++i)
    for (std::size_t j = 0; j < kN; ++j)
      EXPECT_TRUE(bits_equal(c(i, j), c_single(0, j)))
          << "row " << i << " col " << j
          << " rounds differently from the single-row edge path";
}

TEST(GemmContraction, Avx2DispatchConsistent) {
  if (!sgm::tensor::gemm_avx2_compiled()) {
    EXPECT_FALSE(sgm::tensor::gemm_avx2_active());
  }
}

}  // namespace
