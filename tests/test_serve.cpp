// Serving-engine contract (serve/): batched inference equivalence, registry
// LRU/pin/hot-swap semantics, version attribution under concurrent
// publishes, and the HTTP front end.
//
// The two load-bearing guarantees, pinned bitwise:
//  * BATCHING IS INVISIBLE — a row served through forward_batched (any
//    batch composition, 1 or 4 threads) is byte-identical to a lone
//    net.forward() on that row;
//  * EVERY RESPONSE IS ATTRIBUTABLE — under an 8-client soak with a
//    publisher hot-swapping versions mid-flight, each response's y matches
//    the prediction of exactly the version it reports. This suite is run
//    under ThreadSanitizer in CI (serve-smoke job).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nn/mlp.hpp"
#include "serve/batcher.hpp"
#include "serve/http_server.hpp"
#include "serve/metrics.hpp"
#include "serve/model_registry.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"
#include "util/socket.hpp"

namespace {

namespace fs = std::filesystem;
using sgm::nn::Mlp;
using sgm::nn::MlpConfig;
using sgm::serve::BatcherOptions;
using sgm::serve::InferenceBatcher;
using sgm::serve::ModelRegistry;
using sgm::serve::QueueFullError;
using sgm::serve::QueueMode;
using sgm::serve::ServeMetrics;
using sgm::tensor::Matrix;

MlpConfig small_config() {
  MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 2;
  cfg.width = 16;
  cfg.depth = 3;
  return cfg;
}

Matrix probe_batch(std::size_t n, std::size_t dim, std::uint64_t seed) {
  sgm::util::Rng rng(seed);
  Matrix x(n, dim);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform();
  return x;
}

Matrix single_row(const Matrix& x, std::size_t r) {
  Matrix out(1, x.cols());
  std::memcpy(out.row(0), x.row(r), x.cols() * sizeof(double));
  return out;
}

std::vector<double> row_vec(const Matrix& x, std::size_t r) {
  return std::vector<double>(x.row(r), x.row(r) + x.cols());
}

/// Fresh registry root per test; removed on teardown.
class ServeTest : public testing::Test {
 protected:
  void SetUp() override {
    const auto* info = testing::UnitTest::GetInstance()->current_test_info();
    root_ = (fs::temp_directory_path() /
             ("sgm_serve_" + std::to_string(::getpid()) + "_" +
              info->test_suite_name() + "_" + info->name()))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
};

// ------------------------------------------------- batched forward bitwise --

class BatchedForward : public ServeTest,
                       public testing::WithParamInterface<std::size_t> {};

TEST_P(BatchedForward, BitwiseEqualsPerRowForward) {
  const std::size_t num_threads = GetParam();
  sgm::util::Rng rng(11);
  Mlp net(small_config(), rng);

  // Odd batch sizes on purpose: chunk boundaries must not show through.
  for (const std::size_t n : {1ul, 3ul, 33ul, 257ul}) {
    const Matrix x = probe_batch(n, net.config().input_dim, 1000 + n);
    Matrix y;
    Mlp::ForwardWorkspace ws;
    net.forward_batched(x, y, ws, num_threads);
    ASSERT_EQ(y.rows(), n);
    ASSERT_EQ(y.cols(), net.config().output_dim);
    for (std::size_t r = 0; r < n; ++r) {
      const Matrix yr = net.forward(single_row(x, r));
      ASSERT_EQ(std::memcmp(y.row(r), yr.row(0),
                            y.cols() * sizeof(double)),
                0)
          << "batch " << n << " row " << r << " at " << num_threads
          << " threads differs from a lone forward";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, BatchedForward, testing::Values(1, 4),
                         [](const testing::TestParamInfo<std::size_t>& info) {
                           return std::to_string(info.param) + "thread";
                         });

// --------------------------------------------------------- registry basics --

TEST_F(ServeTest, RegistryPublishAcquireRoundTrip) {
  ModelRegistry registry(root_);
  sgm::util::Rng rng(21);
  Mlp net(small_config(), rng);
  EXPECT_THROW(registry.acquire("poisson2d"), std::out_of_range);

  EXPECT_EQ(registry.publish("poisson2d", net), 1u);
  const auto served = registry.acquire("poisson2d");
  EXPECT_EQ(served->info.meta.scenario, "poisson2d");
  EXPECT_EQ(served->info.meta.model_version, 1u);

  // Served predictions come from the published weights, bitwise.
  const Matrix x = probe_batch(4, net.config().input_dim, 5);
  const Matrix ya = net.forward(x);
  const Matrix yb = served->model->forward(x);
  EXPECT_EQ(std::memcmp(ya.data(), yb.data(), ya.size() * sizeof(double)), 0);

  EXPECT_THROW(registry.publish("../escape", net), std::invalid_argument);
  EXPECT_THROW(registry.publish("", net), std::invalid_argument);
}

TEST_F(ServeTest, RegistryVersionsAreMonotonicAndOldOnesStayOnDisk) {
  ModelRegistry registry(root_);
  sgm::util::Rng rng(22);
  Mlp v1(small_config(), rng), v2(small_config(), rng);
  EXPECT_EQ(registry.publish("s", v1), 1u);
  EXPECT_EQ(registry.publish("s", v2), 2u);
  EXPECT_TRUE(fs::exists(fs::path(root_) / "s" / "v1.ckpt"));
  EXPECT_TRUE(fs::exists(fs::path(root_) / "s" / "v2.ckpt"));
  EXPECT_EQ(registry.acquire("s")->info.meta.model_version, 2u);

  // A fresh registry over the same root resumes the version sequence.
  ModelRegistry reopened(root_);
  sgm::util::Rng rng2(23);
  Mlp v3(small_config(), rng2);
  EXPECT_EQ(reopened.publish("s", v3), 3u);
}

TEST_F(ServeTest, RegistryAuditHoldsThroughLifecycleAndCatchesTampering) {
  sgm::serve::RegistryOptions opt;
  opt.cache_capacity = 2;
  ModelRegistry registry(root_, opt);
  sgm::util::Rng rng(29);
  Mlp net(small_config(), rng);

  // The invariant sweep must hold at every lifecycle step: publish, cached
  // and loading acquires, pin-induced overflow, unpin, eviction.
  registry.audit();
  registry.publish("a", net);
  registry.audit();
  (void)registry.acquire("a");
  registry.publish("a", net);  // hot-swap of a resident entry
  registry.audit();
  registry.publish("b", net);
  registry.publish("c", net);
  registry.pin("a");
  registry.pin("b");
  registry.pin("c");  // all pinned: 3 resident > capacity 2 is legal
  registry.audit();
  registry.unpin("b");  // eviction brings the cache back under capacity
  registry.audit();

  // Deleting a resident version's backing checkpoint out from under the
  // registry is exactly what the audit exists to catch.
  const std::uint64_t v = registry.acquire("a")->info.meta.model_version;
  fs::remove(fs::path(root_) / "a" / ("v" + std::to_string(v) + ".ckpt"));
  EXPECT_THROW(registry.audit(), sgm::util::CheckError);
}

TEST_F(ServeTest, RegistryLruEvictsOldestUnpinnedAndPinProtects) {
  sgm::serve::RegistryOptions opt;
  opt.cache_capacity = 2;
  ModelRegistry registry(root_, opt);
  sgm::util::Rng rng(24);
  Mlp net(small_config(), rng);
  registry.publish("a", net);
  registry.publish("b", net);
  registry.publish("c", net);

  registry.pin("a");
  (void)registry.acquire("b");
  (void)registry.acquire("c");  // capacity 2: must evict b, never pinned a

  const auto list = registry.list();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_TRUE(list[0].resident && list[0].pinned) << "a";
  EXPECT_FALSE(list[1].resident) << "b was the LRU victim";
  EXPECT_TRUE(list[2].resident) << "c";

  const auto stats = registry.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_EQ(stats.publishes, 3u);

  // Unpinning returns `a` to the pool: the next load can now evict it.
  registry.unpin("a");
  (void)registry.acquire("b");
  EXPECT_FALSE(registry.list()[0].resident) << "a evictable after unpin";

  // Cache hits don't reload from disk.
  const auto before = registry.stats().loads;
  (void)registry.acquire("b");
  EXPECT_EQ(registry.stats().loads, before);
}

TEST_F(ServeTest, HotSwapLeavesInFlightAcquisitionsOnTheirVersion) {
  ModelRegistry registry(root_);
  sgm::util::Rng rng(25);
  Mlp v1(small_config(), rng), v2(small_config(), rng);
  registry.publish("s", v1);

  const auto held = registry.acquire("s");  // an in-flight batch's view
  registry.publish("s", v2);

  EXPECT_EQ(held->info.meta.model_version, 1u)
      << "hot-swap must not mutate an acquired model";
  const auto fresh = registry.acquire("s");
  EXPECT_EQ(fresh->info.meta.model_version, 2u);
  EXPECT_NE(held->info.checksum, fresh->info.checksum);

  const Matrix x = probe_batch(3, v1.config().input_dim, 9);
  const Matrix expect1 = v1.forward(x);
  const Matrix got1 = held->model->forward(x);
  EXPECT_EQ(
      std::memcmp(expect1.data(), got1.data(), got1.size() * sizeof(double)),
      0)
      << "held version still serves v1 weights";
}

// -------------------------------------------------------- batcher contract --

class BatcherEquivalence : public ServeTest,
                           public testing::WithParamInterface<std::size_t> {};

TEST_P(BatcherEquivalence, ResponsesBitwiseMatchLoneForwards) {
  const std::size_t num_threads = GetParam();
  ModelRegistry registry(root_);
  sgm::util::Rng rng(31);
  Mlp net(small_config(), rng);
  registry.publish("s", net);

  BatcherOptions opt;
  opt.max_batch = 16;
  opt.max_delay_s = 1e-3;  // force real coalescing under the client storm
  opt.num_threads = num_threads;
  InferenceBatcher batcher(registry, opt);

  const std::size_t kClients = 8, kQueriesEach = 50;
  const Matrix probes =
      probe_batch(kClients * kQueriesEach, net.config().input_dim, 777);
  const Matrix expected = net.forward(probes);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t q = 0; q < kQueriesEach; ++q) {
        const std::size_t r = c * kQueriesEach + q;
        const auto resp = batcher.query("s", row_vec(probes, r));
        if (resp.version != 1 ||
            resp.y.size() != net.config().output_dim ||
            std::memcmp(resp.y.data(), expected.row(r),
                        resp.y.size() * sizeof(double)) != 0)
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "batched responses must be bitwise identical to lone forwards";
}

INSTANTIATE_TEST_SUITE_P(Threads, BatcherEquivalence, testing::Values(1, 4),
                         [](const testing::TestParamInfo<std::size_t>& info) {
                           return std::to_string(info.param) + "thread";
                         });

TEST_F(ServeTest, BatcherActuallyCoalescesAndCountsFlushes) {
  ModelRegistry registry(root_);
  sgm::util::Rng rng(32);
  Mlp net(small_config(), rng);
  registry.publish("s", net);

  ServeMetrics metrics;
  BatcherOptions opt;
  opt.max_batch = 8;
  // A wide deadline window makes coalescing robust to scheduler noise: the
  // worker holds a partial batch for 50 ms, and with 16 clients re-querying
  // continuously, batches fill (and flush early) long before that. Full
  // batches do not wait out the window, so the test stays fast.
  opt.max_delay_s = 50e-3;
  InferenceBatcher batcher(registry, opt, &metrics);

  const Matrix probes = probe_batch(64, net.config().input_dim, 88);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 16; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t q = 0; q < 4; ++q)
        (void)batcher.query("s", row_vec(probes, c * 4 + q));
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(metrics.queries_total.load(), 64u);
  EXPECT_LT(metrics.batches_total.load(), 64u)
      << "16 concurrent clients should coalesce into fewer batches";
  EXPECT_EQ(metrics.full_flushes_total.load() +
                metrics.deadline_flushes_total.load(),
            metrics.batches_total.load());
  EXPECT_EQ(metrics.query_latency.count(), 64u);
}

TEST_F(ServeTest, BatcherErrorPaths) {
  ModelRegistry registry(root_);
  sgm::util::Rng rng(33);
  Mlp net(small_config(), rng);
  registry.publish("s", net);

  InferenceBatcher batcher(registry, {});
  EXPECT_THROW(batcher.query("never_published", {0.0, 0.0}),
               std::out_of_range);
  EXPECT_THROW(batcher.query("s", {0.0, 0.0, 0.0}), std::invalid_argument);
  EXPECT_NO_THROW(batcher.query("s", {0.0, 0.0}));
  batcher.stop();
  EXPECT_THROW(batcher.query("s", {0.0, 0.0}), std::runtime_error);
  batcher.stop();  // idempotent
}

// The PR 6 mutex+promise path is kept as the bench A/B arm; it must keep
// serving bitwise-correct responses and its stop() contract.
TEST_F(ServeTest, LegacyMutexModeStillServesBitwise) {
  ModelRegistry registry(root_);
  sgm::util::Rng rng(36);
  Mlp net(small_config(), rng);
  registry.publish("s", net);

  BatcherOptions opt;
  opt.mode = QueueMode::kMutex;
  opt.max_delay_s = 1e-4;
  InferenceBatcher batcher(registry, opt);

  const Matrix probes = probe_batch(16, net.config().input_dim, 91);
  const Matrix expected = net.forward(probes);
  for (std::size_t r = 0; r < probes.rows(); ++r) {
    const auto resp = batcher.query("s", row_vec(probes, r));
    ASSERT_EQ(std::memcmp(resp.y.data(), expected.row(r),
                          resp.y.size() * sizeof(double)),
              0);
  }
  EXPECT_THROW(batcher.query("never", {0.0, 0.0}), std::out_of_range);
  batcher.stop();
  EXPECT_THROW(batcher.query("s", {0.0, 0.0}), std::runtime_error);
}

// Far more queries than the slot pool: every slot is recycled through many
// generations, and a stale generation tag would surface as a wrong or torn
// response (bitwise check) or a hang.
TEST_F(ServeTest, RingSlotsRecycleCorrectlyAcrossGenerations) {
  ModelRegistry registry(root_);
  sgm::util::Rng rng(37);
  Mlp net(small_config(), rng);
  registry.publish("s", net);

  BatcherOptions opt;
  opt.queue_capacity = 4;  // tiny on purpose: forces heavy reuse
  opt.max_batch = 4;
  opt.max_delay_s = 1e-4;
  InferenceBatcher batcher(registry, opt);

  const std::size_t kClients = 2, kQueriesEach = 300;
  const Matrix probes =
      probe_batch(kClients * kQueriesEach, net.config().input_dim, 92);
  const Matrix expected = net.forward(probes);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t q = 0; q < kQueriesEach; ++q) {
        const std::size_t r = c * kQueriesEach + q;
        // A tiny pool can legitimately be full; retry, never drop.
        for (;;) {
          try {
            const auto resp = batcher.query("s", row_vec(probes, r));
            if (std::memcmp(resp.y.data(), expected.row(r),
                            resp.y.size() * sizeof(double)) != 0)
              mismatches.fetch_add(1, std::memory_order_relaxed);
            break;
          } catch (const QueueFullError&) {
            std::this_thread::yield();
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Backpressure: with the bounded pool exhausted by in-flight queries, a new
// query is rejected immediately with QueueFullError + rejected_total, not
// queued unboundedly.
TEST_F(ServeTest, RingFullQueriesAreRejectedNotQueued) {
  ModelRegistry registry(root_);
  sgm::util::Rng rng(38);
  Mlp net(small_config(), rng);
  registry.publish("s", net);

  ServeMetrics metrics;
  BatcherOptions opt;
  opt.queue_capacity = 2;
  opt.max_batch = 8;       // batches never fill ...
  opt.max_delay_s = 50e-3; // ... so each query holds its slot ~50 ms
  InferenceBatcher batcher(registry, opt, &metrics);

  std::atomic<bool> run{true};
  std::vector<std::thread> blockers;
  for (int b = 0; b < 2; ++b) {
    blockers.emplace_back([&] {
      while (run.load()) {
        try {
          (void)batcher.query("s", {0.25, 0.75});
        } catch (const QueueFullError&) {
          std::this_thread::yield();
        }
      }
    });
  }

  bool rejected = false;
  for (int attempt = 0; attempt < 2000 && !rejected; ++attempt) {
    try {
      (void)batcher.query("s", {0.5, 0.5});
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    } catch (const QueueFullError&) {
      rejected = true;
    }
  }
  run.store(false);
  for (auto& t : blockers) t.join();
  EXPECT_TRUE(rejected) << "a full 2-slot pool must shed load";
  EXPECT_GE(metrics.rejected_total.load(), 1u);
}

// A mixed-scenario storm: responses must route to the right model.
TEST_F(ServeTest, BatcherKeepsScenariosApart) {
  ModelRegistry registry(root_);
  sgm::util::Rng rng(34);
  Mlp net_a(small_config(), rng), net_b(small_config(), rng);
  registry.publish("a", net_a);
  registry.publish("b", net_b);

  BatcherOptions opt;
  opt.max_batch = 8;
  opt.max_delay_s = 1e-3;
  InferenceBatcher batcher(registry, opt);

  const Matrix probes = probe_batch(32, net_a.config().input_dim, 55);
  const Matrix ya = net_a.forward(probes);
  const Matrix yb = net_b.forward(probes);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      const bool use_a = (c % 2 == 0);
      const Matrix& expected = use_a ? ya : yb;
      for (std::size_t q = 0; q < 4; ++q) {
        const std::size_t r = c * 4 + q;
        const auto resp =
            batcher.query(use_a ? "a" : "b", row_vec(probes, r));
        if (std::memcmp(resp.y.data(), expected.row(r),
                        resp.y.size() * sizeof(double)) != 0)
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ------------------------------------------------- hot-swap attribution soak --

TEST_F(ServeTest, SoakEveryResponseAttributableToExactlyOneVersion) {
  // 8 clients hammer the batcher while a publisher hot-swaps through 5
  // versions. For every response, y must equal version-resp.version's
  // prediction on that probe — bitwise. A torn read, a stale cache entry or
  // a mid-batch swap would all surface as a mismatch (and as a TSan report
  // in the CI serve-smoke job).
  ModelRegistry registry(root_);
  const std::size_t kVersions = 5;
  std::vector<std::unique_ptr<Mlp>> nets;
  for (std::size_t v = 0; v < kVersions; ++v) {
    sgm::util::Rng rng(1000 + v);
    nets.push_back(std::make_unique<Mlp>(small_config(), rng));
  }
  registry.publish("s", *nets[0]);

  const std::size_t kProbes = 32;
  const Matrix probes = probe_batch(kProbes, small_config().input_dim, 4242);
  std::vector<Matrix> expected;  // expected[v] = version v+1's predictions
  for (const auto& net : nets) expected.push_back(net->forward(probes));

  BatcherOptions opt;
  opt.max_batch = 16;
  opt.max_delay_s = 500e-6;
  opt.num_threads = 2;
  InferenceBatcher batcher(registry, opt);

  std::atomic<bool> publishing{true};
  std::atomic<int> bad_version{0}, bad_payload{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      sgm::util::Rng pick(9000 + c);
      for (std::size_t q = 0; q < 200; ++q) {
        const std::size_t r =
            static_cast<std::size_t>(pick.uniform() * kProbes) % kProbes;
        const auto resp = batcher.query("s", row_vec(probes, r));
        if (resp.version < 1 || resp.version > kVersions) {
          bad_version.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const Matrix& want = expected[resp.version - 1];
        if (std::memcmp(resp.y.data(), want.row(r),
                        resp.y.size() * sizeof(double)) != 0)
          bad_payload.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread publisher([&] {
    for (std::size_t v = 1; v < kVersions && publishing.load(); ++v) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      registry.publish("s", *nets[v]);
    }
  });

  for (auto& t : clients) t.join();
  publishing.store(false);
  publisher.join();

  EXPECT_EQ(bad_version.load(), 0) << "response with an unknown version";
  EXPECT_EQ(bad_payload.load(), 0)
      << "response whose payload does not match its reported version";
  EXPECT_EQ(registry.stats().publishes, kVersions);
  EXPECT_EQ(registry.acquire("s")->info.meta.model_version, kVersions);
}

// ------------------------------------------------------------- HTTP server --

std::string http_request(std::uint16_t port, const std::string& method,
                         const std::string& target, const std::string& body) {
  sgm::util::TcpSocket conn = sgm::util::tcp_connect(port);
  std::string req = method + " " + target + " HTTP/1.1\r\n";
  req += "Host: 127.0.0.1\r\nConnection: close\r\n";
  req += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  req += body;
  EXPECT_TRUE(conn.write_all(req));
  std::string response;
  char chunk[4096];
  long n;
  while ((n = conn.read_some(chunk, sizeof(chunk))) > 0)
    response.append(chunk, static_cast<std::size_t>(n));
  return response;
}

/// Writes raw bytes on a fresh connection and reads until the server closes
/// it. Used by the tests that need exact control over the wire format
/// (pipelining, hostile headers, HTTP/1.0).
std::string raw_exchange(std::uint16_t port, const std::string& bytes) {
  sgm::util::TcpSocket conn = sgm::util::tcp_connect(port);
  EXPECT_TRUE(conn.write_all(bytes));
  std::string response;
  char chunk[4096];
  long n;
  while ((n = conn.read_some(chunk, sizeof(chunk))) > 0)
    response.append(chunk, static_cast<std::size_t>(n));
  return response;
}

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

int response_status(const std::string& response) {
  // "HTTP/1.1 NNN ..."
  if (response.size() < 12) return -1;
  return std::atoi(response.c_str() + 9);
}

std::string response_body(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

struct HttpStack {
  explicit HttpStack(const std::string& root,
                     sgm::serve::IoMode io = sgm::serve::IoMode::kReactor)
      : registry(root), batcher(registry, batcher_opts(), &metrics) {
    sgm::serve::HttpServerOptions hopt;
    hopt.num_workers = 2;
    hopt.io_mode = io;
    server = std::make_unique<sgm::serve::HttpServer>(registry, batcher,
                                                      metrics, hopt);
  }
  ~HttpStack() {
    server->stop();
    batcher.stop();
  }
  static BatcherOptions batcher_opts() {
    BatcherOptions opt;
    opt.max_delay_s = 200e-6;
    return opt;
  }
  ModelRegistry registry;
  ServeMetrics metrics;
  InferenceBatcher batcher;
  std::unique_ptr<sgm::serve::HttpServer> server;
};

TEST_F(ServeTest, HttpQueryRoundTripsPredictionsExactly) {
  HttpStack stack(root_);
  sgm::util::Rng rng(41);
  Mlp net(small_config(), rng);
  stack.registry.publish("poisson2d", net);
  const std::uint16_t port = stack.server->port();

  const Matrix probes = probe_batch(8, net.config().input_dim, 66);
  const Matrix expected = net.forward(probes);
  for (std::size_t r = 0; r < probes.rows(); ++r) {
    char body[256];
    std::snprintf(body, sizeof(body),
                  "{\"scenario\": \"poisson2d\", \"x\": [%.17g, %.17g]}",
                  probes.row(r)[0], probes.row(r)[1]);
    const std::string response =
        http_request(port, "POST", "/v1/query", body);
    ASSERT_EQ(response_status(response), 200) << response;
    const std::string resp_body = response_body(response);
    EXPECT_NE(resp_body.find("\"version\": 1"), std::string::npos);

    // %.17g round-trips doubles exactly: parse y back and compare bitwise.
    const std::size_t ypos = resp_body.find("\"y\": [");
    ASSERT_NE(ypos, std::string::npos) << resp_body;
    const char* cursor = resp_body.c_str() + ypos + 6;
    for (std::size_t c = 0; c < net.config().output_dim; ++c) {
      char* end = nullptr;
      const double got = std::strtod(cursor, &end);
      ASSERT_NE(cursor, end) << resp_body;
      const double want = expected.row(r)[c];
      EXPECT_EQ(std::memcmp(&got, &want, sizeof(double)), 0)
          << "row " << r << " col " << c << ": served " << got
          << " != forward " << want;
      cursor = end;
      while (*cursor == ',' || *cursor == ' ') ++cursor;
    }
  }
}

TEST_F(ServeTest, HttpEndpointsAndErrorMapping) {
  HttpStack stack(root_);
  sgm::util::Rng rng(42);
  Mlp net(small_config(), rng);
  stack.registry.publish("s", net);
  const std::uint16_t port = stack.server->port();

  EXPECT_EQ(response_body(http_request(port, "GET", "/healthz", "")), "ok\n");

  const std::string models =
      response_body(http_request(port, "GET", "/v1/models", ""));
  EXPECT_NE(models.find("\"scenario\": \"s\""), std::string::npos) << models;
  EXPECT_NE(models.find("\"version\": 1"), std::string::npos) << models;

  // Exercise a query so the metrics page has data.
  (void)http_request(port, "POST", "/v1/query",
                     "{\"scenario\": \"s\", \"x\": [0.5, 0.5]}");
  const std::string metrics =
      response_body(http_request(port, "GET", "/metrics", ""));
  for (const char* expected_metric :
       {"sgm_serve_http_requests_total", "sgm_serve_queries_total",
        "sgm_serve_query_latency_seconds{quantile=\"0.99\"}",
        "sgm_serve_batches_total"})
    EXPECT_NE(metrics.find(expected_metric), std::string::npos)
        << "missing " << expected_metric << " in:\n"
        << metrics;

  EXPECT_EQ(response_status(http_request(port, "GET", "/nope", "")), 404);
  EXPECT_EQ(response_status(http_request(port, "GET", "/v1/query", "")), 405);
  EXPECT_EQ(
      response_status(http_request(port, "POST", "/v1/query", "not json")),
      400);
  EXPECT_EQ(response_status(http_request(
                port, "POST", "/v1/query",
                "{\"scenario\": \"never\", \"x\": [0.1, 0.2]}")),
            404);
  EXPECT_EQ(response_status(http_request(
                port, "POST", "/v1/query",
                "{\"scenario\": \"s\", \"x\": [0.1, 0.2, 0.3]}")),
            400);
}

TEST_F(ServeTest, HttpConcurrentClientsAllServed) {
  HttpStack stack(root_);
  sgm::util::Rng rng(43);
  Mlp net(small_config(), rng);
  stack.registry.publish("s", net);
  const std::uint16_t port = stack.server->port();

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 8; ++c) {
    clients.emplace_back([&] {
      for (int q = 0; q < 10; ++q) {
        const std::string response =
            http_request(port, "POST", "/v1/query",
                         "{\"scenario\": \"s\", \"x\": [0.25, 0.75]}");
        if (response_status(response) != 200)
          failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(stack.metrics.http_requests_total.load(), 80u);
}

// Regression: three requests pipelined into one write must yield three
// responses. The pre-PR handler rebuilt its buffer per request and dropped
// whatever it had already read past the first body.
TEST_F(ServeTest, HttpPipelinedRequestsAllGetResponses) {
  HttpStack stack(root_);
  sgm::util::Rng rng(44);
  Mlp net(small_config(), rng);
  stack.registry.publish("s", net);
  const std::uint16_t port = stack.server->port();

  const std::string q = "{\"scenario\": \"s\", \"x\": [0.25, 0.75]}";
  const std::string head = "POST /v1/query HTTP/1.1\r\nHost: h\r\n";
  const std::string clen =
      "Content-Length: " + std::to_string(q.size()) + "\r\n";
  const std::string keep = head + clen + "\r\n" + q;
  const std::string last = head + "Connection: close\r\n" + clen + "\r\n" + q;

  const std::string response = raw_exchange(port, keep + keep + last);
  EXPECT_EQ(count_of(response, "HTTP/1.1 200 OK"), 3u) << response;
  EXPECT_EQ(count_of(response, "\"y\": ["), 3u) << response;
}

// Regression: a hostile Content-Length must be rejected up front — 400 for
// non-numeric, 413 for values past max_body_bytes (including 20+-digit
// values that would wrap a uint64 parse) — instead of stalling the
// connection until the idle timeout or wrapping body_offset arithmetic.
TEST_F(ServeTest, HttpContentLengthValidation) {
  HttpStack stack(root_);
  const std::uint16_t port = stack.server->port();

  std::string resp = raw_exchange(
      port, "POST /v1/query HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
  EXPECT_EQ(response_status(resp), 400);
  EXPECT_EQ(response_body(resp), "bad request\n");

  resp = raw_exchange(port,
                      "POST /v1/query HTTP/1.1\r\nContent-Length: -1\r\n\r\n");
  EXPECT_EQ(response_status(resp), 400);

  resp = raw_exchange(
      port,
      "POST /v1/query HTTP/1.1\r\nContent-Length: "
      "18446744073709551617\r\n\r\n");  // 2^64 + 1: would wrap strtoull
  EXPECT_EQ(response_status(resp), 413);
  EXPECT_EQ(response_body(resp), "body too large\n");

  // Parseable but over max_body_bytes (default 1 MiB): the 413 must come
  // back immediately, not after waiting for a 2 MiB body that never comes.
  const auto t0 = std::chrono::steady_clock::now();
  resp = raw_exchange(
      port, "POST /v1/query HTTP/1.1\r\nContent-Length: 2097152\r\n\r\n");
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(response_status(resp), 413);
  EXPECT_LT(elapsed_s, 8.0) << "413 must not wait for the idle timeout";
}

// Regression: error bodies echo untrusted input (the request target); a
// quote in it must come back escaped, or the JSON body is invalid.
TEST_F(ServeTest, HttpErrorBodiesEscapeUntrustedInput) {
  HttpStack stack(root_);
  const std::uint16_t port = stack.server->port();

  const std::string resp = http_request(port, "GET", "/oops\"}{\"", "");
  EXPECT_EQ(response_status(resp), 404);
  const std::string body = response_body(resp);
  EXPECT_NE(body.find("no such endpoint: /oops\\\"}{\\\""),
            std::string::npos)
      << body;
  EXPECT_EQ(body.find("/oops\"}"), std::string::npos)
      << "raw quote leaked into JSON: " << body;
}

// Regression: read-only endpoints must 405 mutating verbs, unknown HTTP
// versions are 400, and an HTTP/1.0 peer defaults to Connection: close.
TEST_F(ServeTest, HttpMethodAndVersionHandling) {
  HttpStack stack(root_);
  const std::uint16_t port = stack.server->port();

  EXPECT_EQ(response_status(http_request(port, "POST", "/healthz", "")), 405);
  EXPECT_EQ(response_status(http_request(port, "POST", "/metrics", "")), 405);
  EXPECT_EQ(response_status(http_request(port, "DELETE", "/v1/models", "")),
            405);

  std::string resp = raw_exchange(port, "GET /healthz HTTP/9.9\r\n\r\n");
  EXPECT_EQ(response_status(resp), 400);

  // No Connection header: an HTTP/1.0 peer does not speak keep-alive, so
  // the server must answer and close (raw_exchange reads until EOF).
  resp = raw_exchange(port, "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_EQ(response_status(resp), 200);
  EXPECT_NE(resp.find("Connection: close"), std::string::npos) << resp;
  EXPECT_EQ(response_body(resp), "ok\n");
}

// Backpressure end to end: a full batcher queue surfaces as HTTP 503 and
// sgm_serve_rejected_total, not an unbounded queue or a hung connection.
TEST_F(ServeTest, HttpQueueFullReturns503) {
  ModelRegistry registry(root_);
  ServeMetrics metrics;
  BatcherOptions bopt;
  bopt.queue_capacity = 2;
  bopt.max_batch = 8;        // batches never fill ...
  bopt.max_delay_s = 50e-3;  // ... so each query holds its slot ~50 ms
  InferenceBatcher batcher(registry, bopt, &metrics);
  sgm::serve::HttpServerOptions hopt;
  hopt.num_workers = 2;
  sgm::serve::HttpServer server(registry, batcher, metrics, hopt);

  sgm::util::Rng rng(45);
  Mlp net(small_config(), rng);
  registry.publish("s", net);
  const std::uint16_t port = server.port();

  std::atomic<bool> run{true};
  std::vector<std::thread> blockers;
  for (int b = 0; b < 2; ++b) {
    blockers.emplace_back([&] {
      while (run.load()) {
        try {
          (void)batcher.query("s", {0.25, 0.75});
        } catch (const QueueFullError&) {
          std::this_thread::yield();
        }
      }
    });
  }

  bool saw_503 = false;
  for (int attempt = 0; attempt < 400 && !saw_503; ++attempt) {
    const std::string resp =
        http_request(port, "POST", "/v1/query",
                     "{\"scenario\": \"s\", \"x\": [0.5, 0.5]}");
    saw_503 = response_status(resp) == 503;
  }
  run.store(false);
  for (auto& t : blockers) t.join();
  server.stop();
  batcher.stop();

  EXPECT_TRUE(saw_503) << "a full 2-slot pool must surface as HTTP 503";
  EXPECT_GE(metrics.rejected_total.load(), 1u);
}

// ------------------------------------------------ failure-model regressions --

/// Reads a checkpoint file, applies `mutate`, writes it back. Helper for
/// the corruption-recovery tests below.
void corrupt_file(const fs::path& path,
                  const std::function<void(std::string&)>& mutate) {
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  mutate(bytes);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Durability acceptance: a reopened registry must quarantine checkpoints
// that fail validation — truncated, bit-flipped, or zero-length — fall back
// to the newest intact version, and never reuse a quarantined version
// number for future publishes.
TEST_F(ServeTest, RegistryReopenQuarantinesCorruptCheckpoints) {
  sgm::util::Rng rng(51);
  Mlp net(small_config(), rng);
  {
    ModelRegistry registry(root_);
    for (int v = 0; v < 4; ++v) registry.publish("s", net);
  }
  const fs::path dir = fs::path(root_) / "s";
  // v2: hard truncation (half the file), v3: single bit flip mid-payload
  // (caught by the checksum trailer), v4: zero-length residue.
  corrupt_file(dir / "v2.ckpt",
               [](std::string& b) { b.resize(b.size() / 2); });
  corrupt_file(dir / "v3.ckpt", [](std::string& b) { b[b.size() / 2] ^= 0x10; });
  corrupt_file(dir / "v4.ckpt", [](std::string& b) { b.clear(); });

  ModelRegistry reopened(root_);
  const auto lease = reopened.acquire("s");
  EXPECT_EQ(lease->info.meta.model_version, 1)
      << "must fall back to the newest intact checkpoint";
  EXPECT_EQ(reopened.stats().quarantined, 3u);
  EXPECT_TRUE(fs::exists(dir / "v2.ckpt.quarantined"));
  EXPECT_TRUE(fs::exists(dir / "v3.ckpt.quarantined"));
  EXPECT_TRUE(fs::exists(dir / "v4.ckpt.quarantined"));
  EXPECT_FALSE(fs::exists(dir / "v2.ckpt"));

  // Version allocation must skip the quarantined 2..4 — reusing a number
  // would let a stale sidelined file shadow a fresh publish.
  EXPECT_EQ(reopened.publish("s", net), 5u);
  EXPECT_EQ(reopened.acquire("s")->info.meta.model_version, 5);
}

/// http_request with an extra raw header line spliced into the head.
std::string http_request_with_header(std::uint16_t port,
                                     const std::string& target,
                                     const std::string& header,
                                     const std::string& body) {
  std::string req = "POST " + target + " HTTP/1.1\r\n";
  req += "Host: 127.0.0.1\r\nConnection: close\r\n";
  req += header + "\r\n";
  req += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  req += body;
  return raw_exchange(port, req);
}

// Deadline budgets end to end: a request whose x-deadline-ms budget is
// below the batcher's flush delay must be shed up front with 503 +
// Retry-After and counted in sgm_serve_deadline_shed_total; a malformed
// budget is the client's bug (400), and requests without budgets are
// untouched.
TEST_F(ServeTest, HttpDeadlineShedReturns503WithRetryAfter) {
  HttpStack stack(root_);
  sgm::util::Rng rng(52);
  Mlp net(small_config(), rng);
  stack.registry.publish("s", net);
  const std::uint16_t port = stack.server->port();
  const std::string body = "{\"scenario\": \"s\", \"x\": [0.5, 0.5]}";

  // Estimated wait is floored at max_delay_s (200 us): a 50 us budget can
  // never be met, so the shed decision is deterministic.
  const std::string resp = http_request_with_header(
      port, "/v1/query", "x-deadline-ms: 0.05", body);
  EXPECT_EQ(response_status(resp), 503) << resp;
  EXPECT_NE(resp.find("Retry-After: "), std::string::npos)
      << "shed responses must tell the client when to come back: " << resp;
  EXPECT_GE(stack.metrics.deadline_shed_total.load(), 1u);

  // A generous budget and no budget at all must both serve normally.
  EXPECT_EQ(response_status(http_request_with_header(
                port, "/v1/query", "x-deadline-ms: 5000", body)),
            200);
  EXPECT_EQ(response_status(http_request(port, "POST", "/v1/query", body)),
            200);

  // Malformed budgets are rejected loudly, not silently ignored.
  for (const char* bad :
       {"x-deadline-ms: nope", "x-deadline-ms: -3", "x-deadline-ms: 0",
        "x-deadline-ms: inf", "x-deadline-ms: 12garbage"}) {
    EXPECT_EQ(response_status(
                  http_request_with_header(port, "/v1/query", bad, body)),
              400)
        << bad;
  }

  // Both failure-model counters are on the exposition page.
  const std::string metrics_body =
      response_body(http_request(port, "GET", "/metrics", ""));
  EXPECT_NE(metrics_body.find("sgm_serve_deadline_shed_total"),
            std::string::npos)
      << metrics_body;
  EXPECT_NE(metrics_body.find("sgm_registry_quarantined_total"),
            std::string::npos)
      << metrics_body;
}

// /healthz is a state machine, not a constant: ok -> degraded (latched for
// one probe after a shed) -> ok, and draining (503) once stop begins.
TEST_F(ServeTest, HealthzReportsDegradedAfterShedAndDrainingOnStop) {
  HttpStack stack(root_);
  sgm::util::Rng rng(53);
  Mlp net(small_config(), rng);
  stack.registry.publish("s", net);
  const std::uint16_t port = stack.server->port();

  std::string resp = http_request(port, "GET", "/healthz", "");
  EXPECT_EQ(response_status(resp), 200);
  EXPECT_EQ(response_body(resp), "ok\n");

  // One shed latches exactly one degraded probe.
  const std::string body = "{\"scenario\": \"s\", \"x\": [0.5, 0.5]}";
  EXPECT_EQ(response_status(http_request_with_header(
                port, "/v1/query", "x-deadline-ms: 0.05", body)),
            503);
  resp = http_request(port, "GET", "/healthz", "");
  EXPECT_EQ(response_status(resp), 200) << "degraded still serves traffic";
  EXPECT_EQ(response_body(resp), "degraded\n");
  EXPECT_EQ(response_body(http_request(port, "GET", "/healthz", "")), "ok\n")
      << "the shed latch is consumed by one probe";

  // Draining: load balancers must see 503 and stop routing here.
  stack.batcher.stop();
  resp = http_request(port, "GET", "/healthz", "");
  EXPECT_EQ(response_status(resp), 503);
  EXPECT_EQ(response_body(resp), "draining\n");
}

// The degradation loop closed end to end: ring rejections surface as 503 +
// Retry-After, and a client that honors them with exponential backoff gets
// served once capacity returns — no lost requests, no manual intervention.
TEST_F(ServeTest, Http503RetryWithBackoffEventuallySucceeds) {
  ModelRegistry registry(root_);
  ServeMetrics metrics;
  BatcherOptions bopt;
  bopt.mode = QueueMode::kRing;
  bopt.queue_capacity = 2;
  bopt.max_batch = 8;        // batches never fill ...
  bopt.max_delay_s = 20e-3;  // ... so each query holds its slot ~20 ms
  InferenceBatcher batcher(registry, bopt, &metrics);
  sgm::serve::HttpServerOptions hopt;
  hopt.num_workers = 2;
  sgm::serve::HttpServer server(registry, batcher, metrics, hopt);

  sgm::util::Rng rng(54);
  Mlp net(small_config(), rng);
  registry.publish("s", net);
  const std::uint16_t port = server.port();

  std::atomic<bool> run{true};
  std::vector<std::thread> blockers;
  for (int b = 0; b < 2; ++b) {
    blockers.emplace_back([&] {
      while (run.load()) {
        try {
          (void)batcher.query("s", {0.25, 0.75});
        } catch (const QueueFullError&) {
          std::this_thread::yield();
        }
      }
    });
  }

  // Phase 1: drive until the saturated ring surfaces as a 503 with a
  // Retry-After hint (200s are possible while the blockers race for
  // freed slots — keep probing).
  const std::string body = "{\"scenario\": \"s\", \"x\": [0.5, 0.5]}";
  bool saw_503 = false;
  for (int attempt = 0; attempt < 400 && !saw_503; ++attempt) {
    const std::string resp = http_request(port, "POST", "/v1/query", body);
    if (response_status(resp) == 503) {
      saw_503 = true;
      EXPECT_NE(resp.find("Retry-After: "), std::string::npos) << resp;
    }
  }

  // Phase 2: release the pool and let a well-behaved client ride out the
  // recovery with exponential backoff — it must eventually be served.
  run.store(false);
  for (auto& t : blockers) t.join();
  bool succeeded = false;
  auto backoff = std::chrono::milliseconds(1);
  for (int attempt = 0; attempt < 40 && !succeeded; ++attempt) {
    const std::string resp = http_request(port, "POST", "/v1/query", body);
    const int status = response_status(resp);
    if (status == 200) {
      succeeded = true;
      break;
    }
    ASSERT_EQ(status, 503) << resp;
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, std::chrono::milliseconds(50));
  }
  server.stop();
  batcher.stop();

  EXPECT_TRUE(saw_503) << "a full 2-slot ring must surface as HTTP 503";
  EXPECT_TRUE(succeeded)
      << "retry-with-backoff must succeed once the pool drains";
  EXPECT_GE(metrics.rejected_total.load(), 1u);
}

// ----------------------------------------- PR 10: reactor + request-path fixes

using sgm::serve::IoMode;

/// Reads exactly one complete HTTP response (head + Content-Length body)
/// from a keep-alive connection. `leftover` carries bytes of the *next*
/// response across calls, so pipelined responses split correctly no matter
/// how they chunk onto reads. Returns "" on EOF/error before completion.
std::string read_one_response(sgm::util::TcpSocket& conn,
                              std::string& leftover) {
  std::string buf = std::move(leftover);
  leftover.clear();
  for (;;) {
    const std::size_t head_end = buf.find("\r\n\r\n");
    if (head_end != std::string::npos) {
      std::size_t len = 0;
      const std::size_t cl = buf.find("Content-Length: ");
      if (cl != std::string::npos && cl < head_end)
        len = std::strtoul(buf.c_str() + cl + 16, nullptr, 10);
      const std::size_t total = head_end + 4 + len;
      if (buf.size() >= total) {
        leftover = buf.substr(total);
        return buf.substr(0, total);
      }
    }
    char chunk[4096];
    const long n = conn.read_some(chunk, sizeof(chunk));
    if (n <= 0) return "";
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

/// Every request-path contract must hold identically under the epoll
/// reactor (default) and the thread-per-connection A/B baseline.
class HttpIo : public ServeTest,
               public testing::WithParamInterface<IoMode> {};

INSTANTIATE_TEST_SUITE_P(IoModes, HttpIo,
                         testing::Values(IoMode::kReactor, IoMode::kThreads),
                         [](const testing::TestParamInfo<IoMode>& info) {
                           return std::string(sgm::serve::to_string(info.param));
                         });

TEST_P(HttpIo, QueryAndPipeliningServeInBothModes) {
  HttpStack stack(root_, GetParam());
  sgm::util::Rng rng(61);
  Mlp net(small_config(), rng);
  stack.registry.publish("s", net);
  const std::uint16_t port = stack.server->port();

  const std::string body = "{\"scenario\": \"s\", \"x\": [0.5, 0.5]}";
  EXPECT_EQ(response_status(http_request(port, "POST", "/v1/query", body)),
            200);

  // Three pipelined requests in one write: exactly three responses, in
  // order, on one connection.
  std::string wire;
  for (int i = 0; i < 3; ++i) {
    wire += "POST /v1/query HTTP/1.1\r\nHost: h\r\n";
    wire += (i == 2) ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    wire += body;
  }
  const std::string responses = raw_exchange(port, wire);
  EXPECT_EQ(count_of(responses, "HTTP/1.1 200"), 3u) << responses;
}

// Satellite 1: nan/inf and overflowing literals like 1e999 are not JSON and
// must never reach the model as silent poison — reject with 400 at parse.
TEST_P(HttpIo, NonFiniteNumbersRejectedWith400) {
  HttpStack stack(root_, GetParam());
  sgm::util::Rng rng(62);
  Mlp net(small_config(), rng);
  stack.registry.publish("s", net);
  const std::uint16_t port = stack.server->port();

  for (const char* bad :
       {"{\"scenario\": \"s\", \"x\": [nan, 0.5]}",
        "{\"scenario\": \"s\", \"x\": [inf, 0.5]}",
        "{\"scenario\": \"s\", \"x\": [-inf, 0.5]}",
        "{\"scenario\": \"s\", \"x\": [1e999, 0.5]}",
        "{\"scenario\": \"s\", \"x\": [0.5, -1e999]}"}) {
    const std::string resp = http_request(port, "POST", "/v1/query", bad);
    EXPECT_EQ(response_status(resp), 400) << bad << "\n" << resp;
  }
  // The connection machinery is unharmed: a clean request still serves.
  EXPECT_EQ(response_status(http_request(
                port, "POST", "/v1/query",
                "{\"scenario\": \"s\", \"x\": [0.5, 0.5]}")),
            200);
}

// Defense in depth on the response side: if the model ever produces a
// non-finite prediction, the server refuses to serialize it (a bare `nan`
// token is not JSON) and fails the request with 500 instead.
TEST_F(ServeTest, RenderQueryBodyRefusesNonFinitePredictions) {
  int status = 200;
  const std::string ok =
      sgm::serve::http::render_query_body("s", 1, {0.5, -0.25}, status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(ok.find("\"y\": ["), std::string::npos) << ok;

  for (const double poison : {std::nan(""), HUGE_VAL, -HUGE_VAL}) {
    status = 200;
    const std::string err =
        sgm::serve::http::render_query_body("s", 1, {0.5, poison}, status);
    EXPECT_EQ(status, 500);
    EXPECT_NE(err.find("non-finite"), std::string::npos) << err;
    EXPECT_EQ(err.find("nan"), std::string::npos) << err;
    EXPECT_EQ(err.find("inf"), std::string::npos) << err;
  }
}

// Satellite 2 (the ISSUE's exact reproducer): a scenario literally named
// "x" — so the *value* of "scenario" spells the next key — must parse. The
// old find_key raw-scanned for `"x"` and matched the one inside the
// scenario string, then failed to find an array after it.
TEST_P(HttpIo, ScenarioValueCannotShadowBodyKey) {
  HttpStack stack(root_, GetParam());
  MlpConfig cfg = small_config();
  cfg.input_dim = 1;
  sgm::util::Rng rng(63);
  Mlp net(cfg, rng);
  stack.registry.publish("x", net);
  const std::uint16_t port = stack.server->port();

  Matrix probe(1, 1);
  probe.row(0)[0] = 1.0;
  const Matrix want = net.forward(probe);

  const std::string resp = http_request(port, "POST", "/v1/query",
                                        "{\"scenario\": \"x\", \"x\": [1]}");
  ASSERT_EQ(response_status(resp), 200) << resp;
  const std::string body = response_body(resp);
  const std::size_t ypos = body.find("\"y\": [");
  ASSERT_NE(ypos, std::string::npos) << body;
  const char* cursor = body.c_str() + ypos + 6;
  for (std::size_t c = 0; c < cfg.output_dim; ++c) {
    char* end = nullptr;
    const double got = std::strtod(cursor, &end);
    ASSERT_NE(cursor, end) << body;
    EXPECT_EQ(std::memcmp(&got, &want.row(0)[c], sizeof(double)), 0)
        << "col " << c << ": served " << got << " != " << want.row(0)[c];
    cursor = end;
    while (*cursor == ',' || *cursor == ' ') ++cursor;
  }
}

// Satellite 3b: the Connection header is a comma-separated token list.
// "keep-alive, Upgrade" on an HTTP/1.0 request must keep the connection
// alive (the old exact-match compare saw neither token and fell back to the
// 1.0 close default); "Upgrade, close" on HTTP/1.1 must close.
TEST_P(HttpIo, ConnectionHeaderParsedAsTokenList) {
  HttpStack stack(root_, GetParam());
  sgm::util::Rng rng(64);
  Mlp net(small_config(), rng);
  stack.registry.publish("s", net);
  const std::uint16_t port = stack.server->port();

  sgm::util::TcpSocket conn = sgm::util::tcp_connect(port);
  std::string leftover;
  ASSERT_TRUE(conn.write_all(
      "GET /healthz HTTP/1.0\r\nHost: h\r\n"
      "Connection: keep-alive, Upgrade\r\n\r\n"));
  std::string resp = read_one_response(conn, leftover);
  ASSERT_EQ(response_status(resp), 200) << resp;
  EXPECT_NE(resp.find("Connection: keep-alive"), std::string::npos) << resp;

  // The connection really is still alive: a second request serves on it.
  ASSERT_TRUE(conn.write_all(
      "GET /healthz HTTP/1.0\r\nHost: h\r\nConnection: close\r\n\r\n"));
  resp = read_one_response(conn, leftover);
  ASSERT_EQ(response_status(resp), 200) << resp;
  EXPECT_NE(resp.find("Connection: close"), std::string::npos) << resp;

  // Any `close` token wins regardless of its neighbors.
  const std::string closed = raw_exchange(
      port,
      "GET /healthz HTTP/1.1\r\nHost: h\r\nConnection: Upgrade, close\r\n\r\n");
  EXPECT_EQ(response_status(closed), 200) << closed;
  EXPECT_NE(closed.find("Connection: close"), std::string::npos) << closed;
}

// Satellite 3a: EINTR while parked waiting for readiness is a retry, never
// a disconnect. The failpoint fakes a signal delivery in the idle wait of
// whichever I/O path is under test; a healthy keep-alive connection must
// survive it and serve the next request.
TEST_P(HttpIo, EintrDuringIdleWaitIsRetriedNotFatal) {
  HttpStack stack(root_, GetParam());
  sgm::util::Rng rng(65);
  Mlp net(small_config(), rng);
  stack.registry.publish("s", net);
  const std::uint16_t port = stack.server->port();

  const char* failpoint = GetParam() == IoMode::kReactor ? "http.epoll_eintr"
                                                         : "http.poll_eintr";
  sgm::util::TcpSocket conn = sgm::util::tcp_connect(port);
  std::string leftover;
  sgm::util::FailpointRegistry::instance().arm(failpoint, "once");
  ASSERT_TRUE(conn.write_all(
      "GET /healthz HTTP/1.1\r\nHost: h\r\nConnection: keep-alive\r\n\r\n"));
  std::string resp = read_one_response(conn, leftover);
  sgm::util::FailpointRegistry::instance().disarm_all();
  ASSERT_EQ(response_status(resp), 200)
      << "EINTR must not tear down the connection: " << resp;

  // Still alive after the fake signal: the next request serves too.
  ASSERT_TRUE(conn.write_all(
      "GET /healthz HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n"));
  resp = read_one_response(conn, leftover);
  EXPECT_EQ(response_status(resp), 200) << resp;
}

// The open-connections gauge tracks accepted-but-not-yet-closed sockets in
// both I/O modes.
TEST_P(HttpIo, MetricsReportOpenConnectionsGauge) {
  HttpStack stack(root_, GetParam());
  const std::uint16_t port = stack.server->port();

  // Hold one keep-alive connection open while scraping on a second: the
  // gauge must count at least the held one plus the scraper itself.
  sgm::util::TcpSocket held = sgm::util::tcp_connect(port);
  std::string leftover;
  ASSERT_TRUE(held.write_all(
      "GET /healthz HTTP/1.1\r\nHost: h\r\nConnection: keep-alive\r\n\r\n"));
  ASSERT_EQ(response_status(read_one_response(held, leftover)), 200);

  const std::string metrics =
      response_body(http_request(port, "GET", "/metrics", ""));
  const std::size_t pos = metrics.find("gauge\nsgm_serve_open_connections ");
  ASSERT_NE(pos, std::string::npos) << metrics;
  const unsigned long open =
      std::strtoul(metrics.c_str() + pos + 33, nullptr, 10);
  EXPECT_GE(open, 2u) << metrics;
}

// Satellite 4: the reactor's load-bearing claim — hundreds of concurrent
// keep-alive connections, all pipelining, served by a *fixed* reactor
// thread count, with every response bitwise-attributable to the model. 16
// client threads drive 16 sockets each (256 concurrent connections); each
// round writes a 4-deep pipeline per socket and then validates all four
// responses in order. Runs under TSan in the CI serve-smoke job.
TEST_F(ServeTest, ReactorServes256PipelinedConnectionsBitwiseExact) {
  ModelRegistry registry(root_);
  ServeMetrics metrics;
  BatcherOptions bopt;
  bopt.max_delay_s = 200e-6;
  bopt.queue_capacity = 4096;  // 256 conns x 4-deep pipelines, no 503s
  InferenceBatcher batcher(registry, bopt, &metrics);
  sgm::serve::HttpServerOptions hopt;  // reactor defaults
  sgm::serve::HttpServer server(registry, batcher, metrics, hopt);

  sgm::util::Rng rng(66);
  Mlp net(small_config(), rng);
  registry.publish("s", net);
  const std::uint16_t port = server.port();

  const std::size_t kProbes = 32;
  const Matrix probes = probe_batch(kProbes, net.config().input_dim, 6767);
  const Matrix expected = net.forward(probes);

  constexpr std::size_t kThreads = 16, kConnsPerThread = 16, kRounds = 3,
                        kPipeline = 4;
  std::vector<sgm::util::TcpSocket> conns(kThreads * kConnsPerThread);
  for (auto& c : conns) c = sgm::util::tcp_connect(port);

  std::atomic<int> bad_status{0}, bad_payload{0};
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::vector<std::string> leftovers(kConnsPerThread);
      for (std::size_t round = 0; round < kRounds; ++round) {
        // Write phase: a 4-deep pipeline on every socket this thread owns.
        for (std::size_t s = 0; s < kConnsPerThread; ++s) {
          std::string wire;
          for (std::size_t q = 0; q < kPipeline; ++q) {
            const std::size_t r = (t * 131 + s * 17 + round * 5 + q) % kProbes;
            char body[256];
            std::snprintf(body, sizeof(body),
                          "{\"scenario\": \"s\", \"x\": [%.17g, %.17g]}",
                          probes.row(r)[0], probes.row(r)[1]);
            wire += "POST /v1/query HTTP/1.1\r\nHost: h\r\n";
            wire += "Connection: keep-alive\r\n";
            wire += "Content-Length: " + std::to_string(std::strlen(body)) +
                    "\r\n\r\n";
            wire += body;
          }
          if (!conns[t * kConnsPerThread + s].write_all(wire))
            bad_status.fetch_add(1, std::memory_order_relaxed);
        }
        // Read phase: four in-order responses per socket, each bitwise
        // equal to the lone forward() on its probe row.
        for (std::size_t s = 0; s < kConnsPerThread; ++s) {
          sgm::util::TcpSocket& conn = conns[t * kConnsPerThread + s];
          for (std::size_t q = 0; q < kPipeline; ++q) {
            const std::size_t r = (t * 131 + s * 17 + round * 5 + q) % kProbes;
            const std::string resp = read_one_response(conn, leftovers[s]);
            if (response_status(resp) != 200) {
              bad_status.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            const std::string body = response_body(resp);
            const std::size_t ypos = body.find("\"y\": [");
            const char* cursor = body.c_str() + ypos + 6;
            bool row_ok = ypos != std::string::npos;
            for (std::size_t c = 0; row_ok && c < expected.cols(); ++c) {
              char* end = nullptr;
              const double got = std::strtod(cursor, &end);
              row_ok = end != cursor &&
                       std::memcmp(&got, &expected.row(r)[c],
                                   sizeof(double)) == 0;
              cursor = end;
              while (*cursor == ',' || *cursor == ' ') ++cursor;
            }
            if (!row_ok) bad_payload.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(bad_status.load(), 0) << "non-200 under the keep-alive soak";
  EXPECT_EQ(bad_payload.load(), 0)
      << "response not bitwise equal to its probe's lone forward()";
  EXPECT_GE(metrics.queries_total.load(),
            kThreads * kConnsPerThread * kRounds * kPipeline);

  // The whole soak ran on the default fixed reactor thread count; the
  // gauge saw every connection.
  conns.clear();  // EOF all 256; server reaps them before stop()
  server.stop();
  batcher.stop();
}

// query_async is the reactor's dispatch primitive: the completion must
// deliver the same bitwise payload the blocking query() returns, and the
// mutex A/B arm must refuse it loudly (it has no completion machinery).
TEST_F(ServeTest, QueryAsyncDeliversBitwiseEqualCompletion) {
  ModelRegistry registry(root_);
  sgm::util::Rng rng(67);
  Mlp net(small_config(), rng);
  registry.publish("s", net);

  BatcherOptions opt;
  opt.max_delay_s = 100e-6;
  InferenceBatcher batcher(registry, opt);
  ASSERT_TRUE(batcher.supports_async());

  struct Ctx {
    std::atomic<bool> done{false};
    InferenceBatcher::Response resp;
    sgm::serve::QueryError error = sgm::serve::QueryError::kNone;
    std::uint64_t tag1 = 0, tag2 = 0;
  } ctx;
  batcher.query_async(
      "s", {0.25, 0.75}, /*deadline_s=*/-1.0,
      [](void* p, std::uint64_t t1, std::uint64_t t2,
         InferenceBatcher::Response&& r, sgm::serve::QueryError e,
         const std::string&) {
        auto* c = static_cast<Ctx*>(p);
        c->resp = std::move(r);
        c->error = e;
        c->tag1 = t1;
        c->tag2 = t2;
        c->done.store(true, std::memory_order_release);
      },
      &ctx, 7, 9);
  while (!ctx.done.load(std::memory_order_acquire)) std::this_thread::yield();

  EXPECT_EQ(ctx.error, sgm::serve::QueryError::kNone);
  EXPECT_EQ(ctx.tag1, 7u);
  EXPECT_EQ(ctx.tag2, 9u);
  const auto blocking = batcher.query("s", {0.25, 0.75});
  ASSERT_EQ(ctx.resp.y.size(), blocking.y.size());
  EXPECT_EQ(std::memcmp(ctx.resp.y.data(), blocking.y.data(),
                        blocking.y.size() * sizeof(double)),
            0);
  EXPECT_EQ(ctx.resp.version, blocking.version);

  // Unknown scenarios fail through the completion, not an exception.
  struct ErrCtx {
    std::atomic<bool> done{false};
    sgm::serve::QueryError error = sgm::serve::QueryError::kNone;
  } ectx;
  batcher.query_async(
      "ghost", {0.1, 0.2}, -1.0,
      [](void* p, std::uint64_t, std::uint64_t, InferenceBatcher::Response&&,
         sgm::serve::QueryError e, const std::string&) {
        auto* c = static_cast<ErrCtx*>(p);
        c->error = e;
        c->done.store(true, std::memory_order_release);
      },
      &ectx, 0, 0);
  while (!ectx.done.load(std::memory_order_acquire)) std::this_thread::yield();
  EXPECT_EQ(ectx.error, sgm::serve::QueryError::kNotFound);
  batcher.stop();

  BatcherOptions mopt;
  mopt.mode = QueueMode::kMutex;
  InferenceBatcher mutex_batcher(registry, mopt);
  EXPECT_FALSE(mutex_batcher.supports_async());
  EXPECT_THROW(mutex_batcher.query_async(
                   "s", {0.1, 0.2}, -1.0,
                   [](void*, std::uint64_t, std::uint64_t,
                      InferenceBatcher::Response&&, sgm::serve::QueryError,
                      const std::string&) {},
                   nullptr, 0, 0),
               std::logic_error);
  mutex_batcher.stop();
}

// The reactor refuses to start on a batcher that cannot dispatch
// asynchronously — a misconfiguration, not a silent fallback.
TEST_F(ServeTest, ReactorRequiresAsyncCapableBatcher) {
  ModelRegistry registry(root_);
  ServeMetrics metrics;
  BatcherOptions bopt;
  bopt.mode = QueueMode::kMutex;
  InferenceBatcher batcher(registry, bopt, &metrics);
  sgm::serve::HttpServerOptions hopt;  // io_mode defaults to kReactor
  EXPECT_THROW(sgm::serve::HttpServer(registry, batcher, metrics, hopt),
               std::invalid_argument);

  // The same batcher works fine behind the thread-per-connection mode.
  hopt.io_mode = IoMode::kThreads;
  sgm::serve::HttpServer server(registry, batcher, metrics, hopt);
  EXPECT_EQ(response_body(http_request(server.port(), "GET", "/healthz", "")),
            "ok\n");
  server.stop();
  batcher.stop();
}

}  // namespace
