// Chaos/robustness suite (tier 1): deterministic failpoints, the crash-safe
// durable-write protocol, registry recovery after a kill at every failpoint
// in the publish path, train-checkpoint integrity, and the trainer's
// divergence sentinel + rollback + byte-identical resume.
//
// Every test disarms the process-wide failpoint registry on entry and exit
// so no spec leaks across tests (the registry is a process singleton).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/mlp.hpp"
#include "pinn/pde.hpp"
#include "pinn/train_checkpoint.hpp"
#include "pinn/trainer.hpp"
#include "samplers/uniform.hpp"
#include "serve/model_registry.hpp"
#include "util/failpoint.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = std::filesystem;

using sgm::nn::Mlp;
using sgm::nn::MlpConfig;
using sgm::util::FailpointRegistry;
using sgm::util::FailpointTriggered;

/// Fresh scratch directory under /tmp, wiped on construction + destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path("/tmp/sgm_robustness_" + name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const std::string& name) const { return path + "/" + name; }
  std::string path;
};

/// RAII failpoint hygiene: no spec survives into (or out of) a test.
struct FailpointGuard {
  FailpointGuard() { FailpointRegistry::instance().disarm_all(); }
  ~FailpointGuard() { FailpointRegistry::instance().disarm_all(); }
};

void arm(const std::string& name, const std::string& spec) {
  FailpointRegistry::instance().arm(name, spec);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

Mlp make_net(std::uint64_t seed, std::size_t width = 12,
             std::size_t depth = 2) {
  MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 1;
  cfg.width = width;
  cfg.depth = depth;
  sgm::util::Rng rng(seed);
  return Mlp(cfg, rng);
}

// ------------------------------------------------------------- failpoints --

TEST(Failpoint, UnarmedSiteNeverFires) {
  FailpointGuard guard;
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(SGM_FAILPOINT_HIT("test.fp.unarmed"));
}

TEST(Failpoint, OnceFiresExactlyOnceThenDisarms) {
  FailpointGuard guard;
  arm("test.fp.once", "once");
  EXPECT_TRUE(SGM_FAILPOINT_HIT("test.fp.once"));
  for (int i = 0; i < 10; ++i)
    EXPECT_FALSE(SGM_FAILPOINT_HIT("test.fp.once"));
}

TEST(Failpoint, AfterNPassesThenFiresOnce) {
  FailpointGuard guard;
  arm("test.fp.after", "after:3");
  EXPECT_FALSE(SGM_FAILPOINT_HIT("test.fp.after"));
  EXPECT_FALSE(SGM_FAILPOINT_HIT("test.fp.after"));
  EXPECT_FALSE(SGM_FAILPOINT_HIT("test.fp.after"));
  EXPECT_TRUE(SGM_FAILPOINT_HIT("test.fp.after"));
  EXPECT_FALSE(SGM_FAILPOINT_HIT("test.fp.after"));  // disarmed after firing
}

TEST(Failpoint, AlwaysFiresUntilDisarmed) {
  FailpointGuard guard;
  arm("test.fp.always", "always");
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(SGM_FAILPOINT_HIT("test.fp.always"));
  FailpointRegistry::instance().disarm("test.fp.always");
  EXPECT_FALSE(SGM_FAILPOINT_HIT("test.fp.always"));
}

TEST(Failpoint, ProbReplaysExactlyGivenSeed) {
  FailpointGuard guard;
  auto run_pattern = [] {
    FailpointRegistry::instance().set_seed(0xC0FFEEull);
    arm("test.fp.prob", "prob:0.5");
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i)
      fired.push_back(SGM_FAILPOINT_HIT("test.fp.prob"));
    FailpointRegistry::instance().disarm("test.fp.prob");
    return fired;
  };
  const std::vector<bool> a = run_pattern();
  const std::vector<bool> b = run_pattern();
  EXPECT_EQ(a, b);
  // Not degenerate: 64 draws at p=0.5 include both outcomes.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST(Failpoint, MalformedSpecsThrow) {
  FailpointGuard guard;
  EXPECT_THROW(arm("test.fp.bad", ""), std::invalid_argument);
  EXPECT_THROW(arm("test.fp.bad", "sometimes"), std::invalid_argument);
  EXPECT_THROW(arm("test.fp.bad", "prob:2.0"), std::invalid_argument);
  EXPECT_THROW(arm("test.fp.bad", "prob:-0.1"), std::invalid_argument);
  EXPECT_THROW(arm("test.fp.bad", "prob:"), std::invalid_argument);
  EXPECT_THROW(arm("test.fp.bad", "after:"), std::invalid_argument);
  EXPECT_THROW(arm("test.fp.bad", "after:x"), std::invalid_argument);
  EXPECT_THROW(
      FailpointRegistry::instance().arm_from_spec_list("a=once,b"),
      std::invalid_argument);
  // A failed arm leaves nothing armed.
  EXPECT_FALSE(SGM_FAILPOINT_HIT("test.fp.bad"));
}

TEST(Failpoint, ArmBeforeFirstExecutionApplies) {
  FailpointGuard guard;
  // The macro below is this name's first execution in the process; the spec
  // must be waiting for it.
  arm("test.fp.pending_site", "once");
  EXPECT_TRUE(SGM_FAILPOINT_HIT("test.fp.pending_site"));
  EXPECT_FALSE(SGM_FAILPOINT_HIT("test.fp.pending_site"));
}

TEST(Failpoint, SpecListArmsSeveralSites) {
  FailpointGuard guard;
  FailpointRegistry::instance().arm_from_spec_list(
      "test.fp.list_a=once,test.fp.list_b=after:1");
  EXPECT_TRUE(SGM_FAILPOINT_HIT("test.fp.list_a"));
  EXPECT_FALSE(SGM_FAILPOINT_HIT("test.fp.list_b"));
  EXPECT_TRUE(SGM_FAILPOINT_HIT("test.fp.list_b"));
}

TEST(Failpoint, CountersAndListReportSites) {
  FailpointGuard guard;
  arm("test.fp.counted", "always");
  (void)SGM_FAILPOINT_HIT("test.fp.counted");
  (void)SGM_FAILPOINT_HIT("test.fp.counted");
  bool found = false;
  for (const auto& info : FailpointRegistry::instance().list()) {
    if (info.name != "test.fp.counted") continue;
    found = true;
    EXPECT_TRUE(info.armed);
    EXPECT_GE(info.hits, 2u);
    EXPECT_GE(info.fires, 2u);
  }
  EXPECT_TRUE(found);
  EXPECT_GE(FailpointRegistry::instance().total_fires(), 2u);
}

TEST(Failpoint, ThrowingMacroCarriesSiteName) {
  FailpointGuard guard;
  arm("test.fp.throwing", "once");
  try {
    SGM_FAILPOINT("test.fp.throwing");
    FAIL() << "failpoint did not fire";
  } catch (const FailpointTriggered& e) {
    EXPECT_EQ(e.site(), "test.fp.throwing");
  }
}

// ---------------------------------------------------------- durable writes --

TEST(DurableWrite, WritesAndAtomicallyReplaces) {
  FailpointGuard guard;
  ScratchDir dir("durable_basic");
  const std::string path = dir.file("data.bin");
  sgm::util::write_file_durable(path, "first");
  EXPECT_EQ(read_file(path), "first");
  sgm::util::write_file_durable(path, "second, longer payload");
  EXPECT_EQ(read_file(path), "second, longer payload");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(DurableWrite, FailureAtEveryStepLeavesOldFileIntact) {
  for (const char* site :
       {"durable_write.torn", "durable_write.before_fsync",
        "durable_write.before_rename"}) {
    FailpointGuard guard;
    ScratchDir dir(std::string("durable_") + site);
    const std::string path = dir.file("data.bin");
    sgm::util::write_file_durable(path, "old-and-intact");
    arm(site, "once");
    EXPECT_THROW(sgm::util::write_file_durable(path, "replacement"),
                 FailpointTriggered)
        << site;
    EXPECT_EQ(read_file(path), "old-and-intact") << site;
  }
}

TEST(DurableWrite, AfterRenameFailureStillReplacedTheFile) {
  FailpointGuard guard;
  ScratchDir dir("durable_after_rename");
  const std::string path = dir.file("data.bin");
  sgm::util::write_file_durable(path, "old");
  arm("durable_write.after_rename", "once");
  // The crash lands after the atomic rename: the protocol already
  // committed, only the directory fsync is missing.
  EXPECT_THROW(sgm::util::write_file_durable(path, "new"),
               FailpointTriggered);
  EXPECT_EQ(read_file(path), "new");
}

TEST(DurableWrite, StaleTempSweepRemovesResidue) {
  FailpointGuard guard;
  ScratchDir dir("durable_sweep");
  const std::string path = dir.file("data.bin");
  arm("durable_write.before_rename", "once");
  EXPECT_THROW(sgm::util::write_file_durable(path, "doomed"),
               FailpointTriggered);
  EXPECT_TRUE(fs::exists(path + ".tmp"));  // the crash residue
  const auto removed = sgm::util::remove_stale_temp_files(dir.path);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], path + ".tmp");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(DurableWrite, QuarantineSidelinesFile) {
  FailpointGuard guard;
  ScratchDir dir("durable_quarantine");
  const std::string path = dir.file("v3.ckpt");
  sgm::util::write_file_durable(path, "corrupt bytes");
  const std::string moved = sgm::util::quarantine_file(path);
  EXPECT_EQ(moved, path + ".quarantined");
  EXPECT_FALSE(fs::exists(path));
  EXPECT_EQ(read_file(moved), "corrupt bytes");
}

// ------------------------------------- registry kill-at-every-failpoint ----

// The acceptance test for durability: kill the publisher at every failpoint
// in the publish protocol; a fresh registry over the same directory must
// always come back serving the latest intact version, and the next publish
// must allocate a strictly newer version.
TEST(RegistryRecovery, KillAtEveryFailpointAlwaysRecovers) {
  const char* kSites[] = {
      "registry.publish.before_write", "durable_write.torn",
      "durable_write.before_fsync",    "durable_write.before_rename",
      "durable_write.after_rename",    "registry.publish.after_write",
  };
  const Mlp net = make_net(11);
  for (const char* site : kSites) {
    FailpointGuard guard;
    ScratchDir dir(std::string("registry_kill_") + site);
    {
      sgm::serve::ModelRegistry reg(dir.path);
      EXPECT_EQ(reg.publish("scn", net), 1u) << site;
      arm(site, "once");
      EXPECT_THROW(reg.publish("scn", net), FailpointTriggered) << site;
    }
    FailpointRegistry::instance().disarm_all();

    // "Reboot": a fresh registry over the same directory.
    sgm::serve::ModelRegistry reg(dir.path);
    const auto served = reg.acquire("scn");
    // v1 always survived; sites past the rename also committed v2. Either
    // way the load checksum-verified the bytes.
    EXPECT_TRUE(served->info.meta.model_version == 1 ||
                served->info.meta.model_version == 2)
        << site << " served v" << served->info.meta.model_version;
    // The reopen sweep removed any crash residue.
    for (const auto& entry : fs::recursive_directory_iterator(dir.path))
      EXPECT_NE(entry.path().extension(), ".tmp") << site;
    // Publishing again always moves strictly forward.
    const std::uint64_t next = reg.publish("scn", net);
    EXPECT_GT(next, served->info.meta.model_version) << site;
    EXPECT_NO_THROW(reg.audit()) << site;
  }
}

// ------------------------------------------------------- train checkpoints --

sgm::pinn::TrainCheckpoint sample_checkpoint() {
  sgm::pinn::TrainCheckpoint ckpt;
  ckpt.iteration = 1234;
  ckpt.train_wall_s = 5.75;
  ckpt.loss_accum = 0.125;
  ckpt.loss_count = 17;
  ckpt.lr_scale = 0.25;
  sgm::util::Rng rng(99);
  for (int i = 0; i < 5; ++i) (void)rng.uniform();
  (void)rng.normal();  // leave a spare cached, the hardest state to carry
  ckpt.rng = rng.state();
  ckpt.adam.iterations = 1234;
  ckpt.adam.beta1_pow = 0.5;
  ckpt.adam.beta2_pow = 0.25;
  sgm::tensor::Matrix m(3, 4);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = 0.25 * static_cast<double>(i) - 1.0;
  ckpt.adam.m = {m};
  ckpt.adam.v = {m};
  ckpt.params = {m, m};
  ckpt.sampler.indices = {7, 3, 5, 1, 0, 6, 2, 4};
  ckpt.sampler.cursor = 3;
  ckpt.sampler.shuffled = true;
  return ckpt;
}

TEST(TrainCheckpointFormat, RoundTripsBitExactly) {
  FailpointGuard guard;
  ScratchDir dir("trainckpt_roundtrip");
  const std::string path = dir.file("train.ckpt");
  const sgm::pinn::TrainCheckpoint ckpt = sample_checkpoint();
  sgm::pinn::save_train_checkpoint(ckpt, path);
  const sgm::pinn::TrainCheckpoint back =
      sgm::pinn::load_train_checkpoint(path);
  EXPECT_EQ(back.iteration, ckpt.iteration);
  EXPECT_EQ(back.train_wall_s, ckpt.train_wall_s);
  EXPECT_EQ(back.loss_accum, ckpt.loss_accum);
  EXPECT_EQ(back.loss_count, ckpt.loss_count);
  EXPECT_EQ(back.lr_scale, ckpt.lr_scale);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(back.rng.s[i], ckpt.rng.s[i]);
  EXPECT_EQ(back.rng.spare_normal, ckpt.rng.spare_normal);
  EXPECT_EQ(back.rng.has_spare, ckpt.rng.has_spare);
  EXPECT_EQ(back.adam.iterations, ckpt.adam.iterations);
  EXPECT_EQ(back.adam.beta1_pow, ckpt.adam.beta1_pow);
  EXPECT_EQ(back.adam.beta2_pow, ckpt.adam.beta2_pow);
  ASSERT_EQ(back.params.size(), ckpt.params.size());
  for (std::size_t i = 0; i < back.params.size(); ++i) {
    ASSERT_EQ(back.params[i].size(), ckpt.params[i].size());
    EXPECT_EQ(std::memcmp(back.params[i].data(), ckpt.params[i].data(),
                          ckpt.params[i].size() * sizeof(double)),
              0);
  }
  EXPECT_EQ(back.sampler.indices, ckpt.sampler.indices);
  EXPECT_EQ(back.sampler.cursor, ckpt.sampler.cursor);
  EXPECT_EQ(back.sampler.shuffled, ckpt.sampler.shuffled);
}

TEST(TrainCheckpointFormat, RejectsCorruptTruncatedAndEmptyFiles) {
  FailpointGuard guard;
  ScratchDir dir("trainckpt_corrupt");
  const std::string path = dir.file("train.ckpt");
  sgm::pinn::save_train_checkpoint(sample_checkpoint(), path);
  const std::string good = read_file(path);

  // Bit flip mid-body -> checksum mismatch.
  std::string flipped = good;
  flipped[flipped.size() / 2] =
      static_cast<char>(flipped[flipped.size() / 2] ^ 0x40);
  std::ofstream(path, std::ios::binary) << flipped;
  EXPECT_THROW(sgm::pinn::load_train_checkpoint(path), std::runtime_error);

  // Truncation -> size check.
  std::ofstream(path, std::ios::binary) << good.substr(0, good.size() / 2);
  EXPECT_THROW(sgm::pinn::load_train_checkpoint(path), std::runtime_error);

  // Zero-length -> magic check.
  std::ofstream(path, std::ios::binary) << "";
  EXPECT_THROW(sgm::pinn::load_train_checkpoint(path), std::runtime_error);

  // Missing file.
  fs::remove(path);
  EXPECT_THROW(sgm::pinn::load_train_checkpoint(path), std::runtime_error);
}

// --------------------------------------------------------- trainer chaos ---

sgm::pinn::PoissonProblem::Options small_problem_options() {
  sgm::pinn::PoissonProblem::Options popt;
  popt.interior_points = 512;
  return popt;
}

sgm::pinn::TrainerOptions small_trainer(std::uint64_t iters) {
  sgm::pinn::TrainerOptions opt;
  opt.batch_size = 64;
  opt.max_iterations = iters;
  opt.learning_rate = 2e-3;
  opt.validate_every = 1000;  // only the final record
  opt.seed = 3;
  opt.num_threads = 1;
  return opt;
}

TEST(TrainerRecovery, InjectedDivergenceRollsBackAndFinishes) {
  FailpointGuard guard;
  const sgm::pinn::PoissonProblem problem(small_problem_options());
  Mlp net = make_net(11);
  sgm::samplers::UniformSampler sampler(512);
  auto opt = small_trainer(60);
  opt.snapshot_every = 10;
  // Fire on the 26th sentinel evaluation (iteration 25), then disarm: one
  // clean divergence mid-run.
  arm("trainer.diverge", "after:25");
  sgm::pinn::Trainer trainer(problem, net, sampler, opt);
  const auto history = trainer.run();
  EXPECT_EQ(history.divergence_rollbacks, 1u);
  ASSERT_FALSE(history.records.empty());
  EXPECT_EQ(history.records.back().iteration, 60u);
  EXPECT_TRUE(std::isfinite(history.records.back().mean_loss));
  // No iteration appears twice despite the rollback.
  for (std::size_t i = 1; i < history.records.size(); ++i)
    EXPECT_GT(history.records[i].iteration, history.records[i - 1].iteration);
}

TEST(TrainerRecovery, DivergenceWithoutSnapshotsThrows) {
  FailpointGuard guard;
  const sgm::pinn::PoissonProblem problem(small_problem_options());
  Mlp net = make_net(11);
  sgm::samplers::UniformSampler sampler(512);
  auto opt = small_trainer(20);
  opt.snapshot_every = 0;  // rollback disabled
  arm("trainer.diverge", "once");
  sgm::pinn::Trainer trainer(problem, net, sampler, opt);
  EXPECT_THROW(trainer.run(), std::runtime_error);
}

TEST(TrainerRecovery, BoundedRetriesGiveUpOnPersistentDivergence) {
  FailpointGuard guard;
  const sgm::pinn::PoissonProblem problem(small_problem_options());
  Mlp net = make_net(11);
  sgm::samplers::UniformSampler sampler(512);
  auto opt = small_trainer(20);
  opt.snapshot_every = 5;
  opt.max_divergence_retries = 2;
  arm("trainer.diverge", "always");
  sgm::pinn::Trainer trainer(problem, net, sampler, opt);
  EXPECT_THROW(trainer.run(), std::runtime_error);
}

TEST(TrainerRecovery, ResumeFromCheckpointIsByteIdentical) {
  FailpointGuard guard;
  ScratchDir dir("trainer_resume");
  const std::string ckpt_path = dir.file("train.ckpt");
  const sgm::pinn::PoissonProblem problem(small_problem_options());

  // Reference: one uninterrupted 40-iteration run.
  Mlp net_a = make_net(11);
  {
    sgm::samplers::UniformSampler sampler(512);
    sgm::pinn::Trainer trainer(problem, net_a, sampler, small_trainer(40));
    (void)trainer.run();
  }

  // Crashed run: stops at 20 with a durable checkpoint...
  Mlp net_b = make_net(11);
  {
    sgm::samplers::UniformSampler sampler(512);
    auto opt = small_trainer(20);
    opt.checkpoint_path = ckpt_path;
    opt.checkpoint_every = 20;
    sgm::pinn::Trainer trainer(problem, net_b, sampler, opt);
    (void)trainer.run();
  }

  // ...and a fresh process (fresh net, same init seed) resumes it to 40.
  Mlp net_c = make_net(11);
  {
    sgm::samplers::UniformSampler sampler(512);
    auto opt = small_trainer(40);
    opt.checkpoint_path = ckpt_path;
    opt.resume = true;
    sgm::pinn::Trainer trainer(problem, net_c, sampler, opt);
    const auto history = trainer.run();
    EXPECT_EQ(history.resumed_from_iteration, 20u);
  }

  const auto params_a = net_a.parameters();
  const auto params_c = net_c.parameters();
  ASSERT_EQ(params_a.size(), params_c.size());
  for (std::size_t i = 0; i < params_a.size(); ++i) {
    ASSERT_EQ(params_a[i]->size(), params_c[i]->size());
    EXPECT_EQ(std::memcmp(params_a[i]->data(), params_c[i]->data(),
                          params_a[i]->size() * sizeof(double)),
              0)
        << "parameter tensor " << i << " diverged across resume";
  }
}

TEST(TrainerRecovery, ResumeWithMissingCheckpointStartsFresh) {
  FailpointGuard guard;
  ScratchDir dir("trainer_resume_missing");
  const sgm::pinn::PoissonProblem problem(small_problem_options());
  Mlp net = make_net(11);
  sgm::samplers::UniformSampler sampler(512);
  auto opt = small_trainer(10);
  opt.checkpoint_path = dir.file("never_written.ckpt");
  opt.resume = true;
  sgm::pinn::Trainer trainer(problem, net, sampler, opt);
  const auto history = trainer.run();
  EXPECT_EQ(history.resumed_from_iteration, 0u);
  EXPECT_EQ(history.records.back().iteration, 10u);
}

}  // namespace
