// Tests for exact kNN (kd-tree vs brute force), the HNSW approximate index
// (recall against exact), and kNN PGM graph construction (S1).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <thread>

#include "graph/hnsw.hpp"
#include "graph/knn.hpp"
#include "util/rng.hpp"

namespace {

using sgm::graph::CsrGraph;
using sgm::graph::KdTree;
using sgm::graph::KnnGraphOptions;
using sgm::graph::KnnResult;
using sgm::tensor::Matrix;

Matrix random_points(std::size_t n, std::size_t d, sgm::util::Rng& rng) {
  Matrix m(n, d);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform();
  return m;
}

// Parameterized over (n, d, k).
class KdTreeVsBrute
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KdTreeVsBrute, ExactAgreement) {
  const auto [n, d, k] = GetParam();
  sgm::util::Rng rng(static_cast<std::uint64_t>(n * 131 + d * 7 + k));
  const Matrix pts = random_points(n, d, rng);
  KdTree tree(pts);
  for (int probe = 0; probe < 25; ++probe) {
    const auto i =
        static_cast<sgm::graph::NodeId>(rng.uniform_index(pts.rows()));
    const KnnResult fast = tree.query_point(i, k);
    const KnnResult slow = sgm::graph::knn_brute_force(
        pts, pts.row(i), k, static_cast<std::int64_t>(i));
    ASSERT_EQ(fast.index.size(), slow.index.size());
    // Distances must agree exactly (ties may permute indices).
    for (std::size_t t = 0; t < fast.dist2.size(); ++t)
      EXPECT_NEAR(fast.dist2[t], slow.dist2[t], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeVsBrute,
    ::testing::Values(std::make_tuple(50, 2, 5), std::make_tuple(500, 2, 10),
                      std::make_tuple(500, 3, 7), std::make_tuple(200, 4, 3),
                      std::make_tuple(64, 1, 4), std::make_tuple(1000, 2, 1)));

TEST(KdTree, QueryArbitraryPoint) {
  sgm::util::Rng rng(3);
  const Matrix pts = random_points(300, 2, rng);
  KdTree tree(pts);
  const double q[2] = {0.5, 0.5};
  auto r = tree.query(q, 4);
  auto ref = sgm::graph::knn_brute_force(pts, q, 4);
  for (int t = 0; t < 4; ++t) EXPECT_NEAR(r.dist2[t], ref.dist2[t], 1e-12);
}

TEST(KdTree, HandlesDuplicatePoints) {
  Matrix pts(10, 2);  // all identical
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    pts(i, 0) = 0.3;
    pts(i, 1) = 0.7;
  }
  KdTree tree(pts);
  auto r = tree.query_point(0, 3);
  EXPECT_EQ(r.index.size(), 3u);
  for (double d2v : r.dist2) EXPECT_DOUBLE_EQ(d2v, 0.0);
}

TEST(KnnGraph, UnionSymmetrizationIsConnectedOnBlobs) {
  sgm::util::Rng rng(4);
  const Matrix pts = random_points(400, 2, rng);
  KnnGraphOptions opt;
  opt.k = 8;
  const CsrGraph g = sgm::graph::build_knn_graph(pts, opt);
  EXPECT_EQ(g.num_nodes(), 400u);
  EXPECT_TRUE(g.is_connected());
  // Every node has degree >= k under union symmetrization... at least k
  // outgoing candidates existed; after dedup degree >= 1.
  for (sgm::graph::NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_GE(g.degree(v), 1u);
}

TEST(KnnGraph, InverseWeightsDecreaseWithDistance) {
  // Three collinear points: the nearer pair must get the larger weight.
  Matrix pts{{0.0, 0.0}, {0.1, 0.0}, {0.5, 0.0}};
  KnnGraphOptions opt;
  opt.k = 2;
  const CsrGraph g = sgm::graph::build_knn_graph(pts, opt);
  double w01 = 0, w12 = 0;
  for (const auto& e : g.edges()) {
    if (e.u == 0 && e.v == 1) w01 = e.w;
    if (e.u == 1 && e.v == 2) w12 = e.w;
  }
  ASSERT_GT(w01, 0.0);
  ASSERT_GT(w12, 0.0);
  EXPECT_GT(w01, w12);
}

TEST(KnnGraph, MutualModeIsSubsetOfUnion) {
  sgm::util::Rng rng(5);
  const Matrix pts = random_points(200, 2, rng);
  KnnGraphOptions u, m;
  u.k = m.k = 6;
  m.mutual = true;
  const CsrGraph gu = sgm::graph::build_knn_graph(pts, u);
  const CsrGraph gm = sgm::graph::build_knn_graph(pts, m);
  EXPECT_LE(gm.num_edges(), gu.num_edges());
}

TEST(KnnGraph, UnitWeights) {
  sgm::util::Rng rng(6);
  const Matrix pts = random_points(50, 2, rng);
  KnnGraphOptions opt;
  opt.k = 4;
  opt.weight = sgm::graph::KnnWeight::kUnit;
  const CsrGraph g = sgm::graph::build_knn_graph(pts, opt);
  for (const auto& e : g.edges()) EXPECT_DOUBLE_EQ(e.w, 1.0);
}

TEST(KnnGraph, GaussWeightsInUnitInterval) {
  sgm::util::Rng rng(7);
  const Matrix pts = random_points(50, 2, rng);
  KnnGraphOptions opt;
  opt.k = 4;
  opt.weight = sgm::graph::KnnWeight::kGauss;
  const CsrGraph g = sgm::graph::build_knn_graph(pts, opt);
  for (const auto& e : g.edges()) {
    EXPECT_GT(e.w, 0.0);
    EXPECT_LE(e.w, 1.0);
  }
}

// ---------------------------------------------------------------- HNSW ----

TEST(Hnsw, HighRecallOnUniformCloud) {
  sgm::util::Rng rng(8);
  const std::size_t n = 2000, k = 10;
  const Matrix pts = random_points(n, 2, rng);
  sgm::graph::HnswOptions hopt;
  hopt.ef_search = 96;
  sgm::graph::HnswIndex index(pts, hopt);

  std::size_t hit = 0, total = 0;
  for (int probe = 0; probe < 50; ++probe) {
    const auto i = static_cast<sgm::graph::NodeId>(rng.uniform_index(n));
    auto approx = index.query_point(i, k);
    auto exact = sgm::graph::knn_brute_force(pts, pts.row(i), k,
                                             static_cast<std::int64_t>(i));
    std::set<sgm::graph::NodeId> truth(exact.index.begin(),
                                       exact.index.end());
    for (auto idx : approx.index) hit += truth.count(idx);
    total += k;
  }
  const double recall = static_cast<double>(hit) / total;
  EXPECT_GT(recall, 0.9) << "HNSW recall " << recall;
}

TEST(Hnsw, QueryExcludesSelf) {
  sgm::util::Rng rng(9);
  const Matrix pts = random_points(300, 2, rng);
  sgm::graph::HnswIndex index(pts, {});
  for (int probe = 0; probe < 20; ++probe) {
    const auto i =
        static_cast<sgm::graph::NodeId>(rng.uniform_index(pts.rows()));
    auto r = index.query_point(i, 5);
    for (auto idx : r.index) EXPECT_NE(idx, i);
  }
}

TEST(Hnsw, GraphConstructionConnectsCloud) {
  sgm::util::Rng rng(10);
  const Matrix pts = random_points(500, 2, rng);
  KnnGraphOptions gopt;
  gopt.k = 8;
  const CsrGraph g = sgm::graph::build_knn_graph_hnsw(pts, gopt, {});
  EXPECT_EQ(g.num_nodes(), 500u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Hnsw, ConcurrentQueriesMatchSerial) {
  // Queries carry their visit tracking in caller-owned scratch, so a shared
  // const index must give concurrent callers exactly the serial answers.
  // (Run under -DSGM_TSAN=ON this also proves the old mutable-member race
  // is gone.)
  sgm::util::Rng rng(12);
  const std::size_t n = 800, k = 6;
  const Matrix pts = random_points(n, 2, rng);
  const sgm::graph::HnswIndex index(pts, {});

  std::vector<KnnResult> serial(n);
  for (std::size_t i = 0; i < n; ++i)
    serial[i] = index.query_point(static_cast<sgm::graph::NodeId>(i), k);

  constexpr std::size_t kThreads = 4;
  std::vector<KnnResult> concurrent(n);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      sgm::graph::HnswIndex::SearchScratch scratch;
      for (std::size_t i = t; i < n; i += kThreads)
        concurrent[i] =
            index.query_point(static_cast<sgm::graph::NodeId>(i), k, scratch);
    });
  }
  for (auto& w : workers) w.join();

  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(serial[i].index.size(), concurrent[i].index.size());
    EXPECT_EQ(serial[i].index, concurrent[i].index) << "point " << i;
    for (std::size_t j = 0; j < serial[i].dist2.size(); ++j)
      EXPECT_EQ(serial[i].dist2[j], concurrent[i].dist2[j]);
  }
}

TEST(Hnsw, ResultsSortedByDistance) {
  sgm::util::Rng rng(11);
  const Matrix pts = random_points(400, 3, rng);
  sgm::graph::HnswIndex index(pts, {});
  auto r = index.query(pts.row(7), 8);
  EXPECT_TRUE(std::is_sorted(r.dist2.begin(), r.dist2.end()));
}

// ------------------------------------------------- update_points ----------

namespace {

/// Recall of `index` against brute force over `pts` on a fixed query set.
double static_query_recall(const sgm::graph::HnswIndex& index,
                           const Matrix& pts, const Matrix& queries,
                           std::size_t k) {
  std::size_t hit = 0, total = 0;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    auto approx = index.query(queries.row(q), k);
    auto exact = sgm::graph::knn_brute_force(pts, queries.row(q), k);
    std::set<sgm::graph::NodeId> truth(exact.index.begin(),
                                       exact.index.end());
    for (auto idx : approx.index) hit += truth.count(idx);
    total += k;
  }
  return static_cast<double>(hit) / static_cast<double>(total);
}

/// Moves `fraction` of the points to fresh uniform positions; returns the
/// moved ids (sorted) and their new rows.
std::pair<std::vector<sgm::graph::NodeId>, Matrix> move_points(
    Matrix& pts, double fraction, sgm::util::Rng& rng) {
  const auto n = static_cast<std::uint32_t>(pts.rows());
  const auto want = static_cast<std::uint32_t>(fraction * n);
  std::vector<std::uint32_t> ids = rng.sample_without_replacement(n, want);
  std::sort(ids.begin(), ids.end());
  Matrix rows(ids.size(), pts.cols());
  for (std::size_t t = 0; t < ids.size(); ++t)
    for (std::size_t c = 0; c < pts.cols(); ++c) {
      rows(t, c) = rng.uniform();
      pts(ids[t], c) = rows(t, c);
    }
  return {std::vector<sgm::graph::NodeId>(ids.begin(), ids.end()),
          std::move(rows)};
}

}  // namespace

TEST(HnswUpdate, RecallWithinTwoPointsOfFreshBuild) {
  // The insert/delete contract of the incremental refresh engine: after
  // moving 10% of the points, the mutated index's recall on a static query
  // set may trail a from-scratch build by at most 2 points.
  sgm::util::Rng rng(101);
  const std::size_t n = 2000, k = 10;
  Matrix pts = random_points(n, 2, rng);
  sgm::graph::HnswOptions hopt;
  hopt.ef_search = 96;
  sgm::graph::HnswIndex index(pts, hopt);

  const Matrix queries = random_points(64, 2, rng);
  auto [ids, rows] = move_points(pts, 0.10, rng);
  index.update_points(ids, rows);
  sgm::graph::HnswIndex fresh(pts, hopt);

  const double recall_updated = static_query_recall(index, pts, queries, k);
  const double recall_fresh = static_query_recall(fresh, pts, queries, k);
  EXPECT_GE(recall_updated, recall_fresh - 0.02)
      << "updated " << recall_updated << " vs fresh " << recall_fresh;
  EXPECT_GT(recall_updated, 0.85);
}

TEST(HnswUpdate, RepeatedUpdatesKeepRecall) {
  // Churn the index across several refresh rounds: unlink damage must heal
  // through re-insertion back-links instead of accumulating.
  sgm::util::Rng rng(103);
  const std::size_t n = 1200, k = 8;
  Matrix pts = random_points(n, 2, rng);
  sgm::graph::HnswOptions hopt;
  hopt.ef_search = 96;
  sgm::graph::HnswIndex index(pts, hopt);
  const Matrix queries = random_points(48, 2, rng);
  for (int round = 0; round < 5; ++round) {
    auto [ids, rows] = move_points(pts, 0.05, rng);
    index.update_points(ids, rows);
  }
  sgm::graph::HnswIndex fresh(pts, hopt);
  const double recall_updated = static_query_recall(index, pts, queries, k);
  const double recall_fresh = static_query_recall(fresh, pts, queries, k);
  EXPECT_GE(recall_updated, recall_fresh - 0.02)
      << "updated " << recall_updated << " vs fresh " << recall_fresh;
}

TEST(HnswUpdate, SelfExclusionAndDeterminismAfterUpdate) {
  sgm::util::Rng rng(107);
  Matrix pts = random_points(500, 2, rng);
  sgm::graph::HnswIndex a(pts, {});
  sgm::graph::HnswIndex b(pts, {});
  auto [ids, rows] = move_points(pts, 0.2, rng);
  a.update_points(ids, rows);
  b.update_points(ids, rows);
  for (int probe = 0; probe < 20; ++probe) {
    const auto i =
        static_cast<sgm::graph::NodeId>(rng.uniform_index(pts.rows()));
    auto ra = a.query_point(i, 5);
    auto rb = b.query_point(i, 5);
    for (auto idx : ra.index) EXPECT_NE(idx, i);
    EXPECT_EQ(ra.index, rb.index) << "update_points must be deterministic";
  }
}

TEST(HnswUpdate, SurvivesDirtySetContainingEveryTopLevelNode) {
  // When the dirty set contains every top-level node, the stand-in entry
  // point sits below max_level and can surface as a search candidate at
  // layers above its own level; connect() must skip it rather than index
  // past its adjacency (regression: out-of-bounds write). Sweeping the
  // single point that stays clean guarantees some sweep iteration detaches
  // all top-level nodes regardless of the level assignment.
  sgm::util::Rng rng(211);
  const std::size_t n = 60;
  const Matrix pts = random_points(n, 2, rng);
  for (std::size_t keep = 0; keep < n; ++keep) {
    sgm::graph::HnswIndex index(pts, {});
    std::vector<sgm::graph::NodeId> ids;
    Matrix rows(n - 1, 2);
    std::size_t t = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == keep) continue;
      ids.push_back(static_cast<sgm::graph::NodeId>(i));
      rows(t, 0) = rng.uniform();
      rows(t, 1) = rng.uniform();
      ++t;
    }
    index.update_points(ids, rows);
    auto r = index.query_point(static_cast<sgm::graph::NodeId>(keep), 4);
    EXPECT_EQ(r.index.size(), 4u) << "keep " << keep;
  }
}

TEST(HnswUpdate, AllPointsDirtyRebuildsAtPreservedLevels) {
  sgm::util::Rng rng(109);
  Matrix pts = random_points(300, 2, rng);
  sgm::graph::HnswIndex index(pts, {});
  std::vector<sgm::graph::NodeId> all(pts.rows());
  std::iota(all.begin(), all.end(), sgm::graph::NodeId{0});
  Matrix rows = random_points(pts.rows(), 2, rng);
  index.update_points(all, rows);
  // Every point findable and self-excluded after the full re-insertion.
  for (int probe = 0; probe < 20; ++probe) {
    const auto i =
        static_cast<sgm::graph::NodeId>(rng.uniform_index(rows.rows()));
    auto r = index.query_point(i, 4);
    EXPECT_EQ(r.index.size(), 4u);
    for (auto idx : r.index) EXPECT_NE(idx, i);
  }
}

TEST(HnswUpdate, ConcurrentConstQueriesMatchSerialOnMutatedIndex) {
  // The PR 2 race-freedom contract re-run against an index that has been
  // through update_points: queries still share no mutable state.
  sgm::util::Rng rng(113);
  const std::size_t n = 800, k = 6;
  Matrix pts = random_points(n, 2, rng);
  sgm::graph::HnswIndex mutated(pts, {});
  auto [ids, rows] = move_points(pts, 0.15, rng);
  mutated.update_points(ids, rows);
  const sgm::graph::HnswIndex& index = mutated;

  std::vector<KnnResult> serial(n);
  for (std::size_t i = 0; i < n; ++i)
    serial[i] = index.query_point(static_cast<sgm::graph::NodeId>(i), k);

  constexpr std::size_t kThreads = 4;
  std::vector<KnnResult> concurrent(n);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      sgm::graph::HnswIndex::SearchScratch scratch;
      for (std::size_t i = t; i < n; i += kThreads)
        concurrent[i] =
            index.query_point(static_cast<sgm::graph::NodeId>(i), k, scratch);
    });
  }
  for (auto& w : workers) w.join();

  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(serial[i].index.size(), concurrent[i].index.size());
    EXPECT_EQ(serial[i].index, concurrent[i].index) << "point " << i;
    for (std::size_t j = 0; j < serial[i].dist2.size(); ++j)
      EXPECT_EQ(serial[i].dist2[j], concurrent[i].dist2[j]);
  }
}

TEST(KdTreeUpdate, MatchesFreshBuildExactly) {
  // kd update_points keeps queries exact: identical (canonical) results to
  // a tree built from scratch over the updated points.
  sgm::util::Rng rng(127);
  Matrix pts = random_points(600, 3, rng);
  KdTree tree(pts);
  auto [ids, rows] = move_points(pts, 0.2, rng);
  tree.update_points(ids, rows);
  KdTree fresh(pts);
  for (int probe = 0; probe < 40; ++probe) {
    const auto i =
        static_cast<sgm::graph::NodeId>(rng.uniform_index(pts.rows()));
    const auto a = tree.query_point(i, 7);
    const auto b = fresh.query_point(i, 7);
    EXPECT_EQ(a.index, b.index) << "point " << i;
    EXPECT_EQ(a.dist2, b.dist2) << "point " << i;
  }
}

TEST(KdTree, AnyWithinAgreesWithBruteForce) {
  sgm::util::Rng rng(131);
  const Matrix pts = random_points(400, 2, rng);
  KdTree tree(pts);
  for (int probe = 0; probe < 200; ++probe) {
    double q[2] = {rng.uniform(-0.2, 1.2), rng.uniform(-0.2, 1.2)};
    const double r2 = rng.uniform(0.0, 0.02);
    bool brute = false;
    for (std::size_t i = 0; i < pts.rows() && !brute; ++i) {
      const double dx = q[0] - pts(i, 0), dy = q[1] - pts(i, 1);
      brute = dx * dx + dy * dy <= r2;
    }
    EXPECT_EQ(tree.any_within(q, r2), brute) << "probe " << probe;
  }
  // Exclusion: the indexed point itself is found at radius 0 unless
  // excluded (generic random cloud: no duplicates).
  EXPECT_TRUE(tree.any_within(pts.row(5), 0.0, -1));
  EXPECT_FALSE(tree.any_within(pts.row(5), 0.0, 5));
}

}  // namespace
