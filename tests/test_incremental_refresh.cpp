// Equivalence / property harness for the incremental refresh engine
// (core/incremental_refresh + graph/incremental_knn + IncrementalErEngine).
//
// The central property: with dirty_tolerance = 0 and the exact kd backend,
// an engine taking the incremental path is EQUIVALENT to an engine forced
// onto the full-rebuild path every refresh (incremental_threshold < 0), fed
// the same output stream —
//   * identical kNN edges after symmetrize (bitwise, including weights);
//   * identical ER embedding for kSmoothed (bit-for-bit: the localized
//     Richardson sweep commits only the region the full recompute could
//     have changed), ER values within the PCG tolerance for kJlSolve (both
//     arms are rel_tol-accurate solutions of the same hash-keyed sketch
//     systems — see docs/TESTING.md for how the assertion tolerance derives
//     from ErOptions::cg_rel_tol);
//   * identical clustering and sampler distributions for a fixed seed
//     (kSmoothed arm, where the embedding is bitwise).
// swept across dirty fractions {0%, 1%, 10%, 50%, 100%} — straddling the
// fallback threshold so both the incremental and full-fallback paths are
// exercised — and across both graph backends. The HNSW backend is
// approximate away from the fallback path (the mutated index is not a fresh
// build), so there the harness asserts determinism, thread invariance,
// bitwise equality on the no-op/fallback fractions, and bounded edge-set
// divergence in between.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "core/cluster_store.hpp"
#include "core/dirty_tracker.hpp"
#include "core/epoch_builder.hpp"
#include "core/incremental_refresh.hpp"
#include "graph/effective_resistance.hpp"
#include "graph/incremental_knn.hpp"
#include "graph/knn.hpp"
#include "graph/pcg.hpp"
#include "util/rng.hpp"

namespace {

using sgm::core::DirtyTracker;
using sgm::core::IncrementalRefreshEngine;
using sgm::core::IncrementalRefreshOptions;
using sgm::core::KnnBackend;
using sgm::core::RefreshStats;
using sgm::graph::CsrGraph;
using sgm::graph::ErMethod;
using sgm::graph::ErOptions;
using sgm::graph::IncrementalErEngine;
using sgm::tensor::Matrix;

Matrix random_points(std::size_t n, std::size_t d, sgm::util::Rng& rng) {
  Matrix m(n, d);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform();
  return m;
}

/// Smooth base output field over the points (one column).
Matrix base_outputs(const Matrix& pts) {
  Matrix out(pts.rows(), 1);
  for (std::size_t i = 0; i < pts.rows(); ++i)
    out(i, 0) = std::sin(3.0 * pts(i, 0)) + 0.5 * std::cos(5.0 * pts(i, 1));
  return out;
}

/// Perturbs exactly `fraction` of the points (seeded choice, alternating
/// sign so the column std stays pinned) on top of `prev`.
Matrix evolve_outputs(const Matrix& prev, double fraction, int round,
                      std::uint64_t seed) {
  Matrix out = prev;
  const auto n = static_cast<std::uint32_t>(prev.rows());
  const auto want = static_cast<std::uint32_t>(
      std::llround(fraction * static_cast<double>(n)));
  if (want == 0) return out;
  sgm::util::Rng rng(seed + static_cast<std::uint64_t>(round));
  std::vector<std::uint32_t> ids = rng.sample_without_replacement(n, want);
  for (std::uint32_t id : ids) {
    const double sign = (id % 2 == 0) ? 1.0 : -1.0;
    out(id, 0) += sign * (0.35 + 0.03 * round);
  }
  return out;
}

IncrementalRefreshOptions engine_options(KnnBackend backend, ErMethod method,
                                         double threshold,
                                         std::size_t threads) {
  IncrementalRefreshOptions opt;
  opt.pgm.backend = backend;
  opt.pgm.knn.k = 8;
  opt.pgm.output_feature_weight = 0.6;
  opt.lrd.levels = 5;
  opt.lrd.er.method = method;
  opt.lrd.er.num_vectors = 8;
  opt.lrd.er.smoothing_iterations = 20;
  opt.lrd.er.cg_rel_tol = 1e-8;
  opt.dirty_tolerance = 0.0;
  opt.incremental_threshold = threshold;
  opt.num_threads = threads;
  return opt;
}

void expect_identical_graphs(const CsrGraph& a, const CsrGraph& b,
                             const std::string& label) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes()) << label;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << label;
  for (sgm::graph::EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u) << label << " edge " << e;
    EXPECT_EQ(a.edge(e).v, b.edge(e).v) << label << " edge " << e;
    EXPECT_EQ(a.edge(e).w, b.edge(e).w) << label << " edge " << e;
  }
}

void expect_identical_clustering(const sgm::graph::Clustering& a,
                                 const sgm::graph::Clustering& b,
                                 const std::string& label) {
  EXPECT_EQ(a.num_clusters, b.num_clusters) << label;
  EXPECT_EQ(a.node_cluster, b.node_cluster) << label;
}

/// Same sampler-facing behavior: representatives and epochs drawn with the
/// same seed must coincide.
void expect_identical_distributions(const sgm::graph::Clustering& a,
                                    const sgm::graph::Clustering& b,
                                    const std::string& label) {
  sgm::core::ClusterStore sa(a), sb(b);
  sgm::util::Rng ra(777), rb(777);
  const auto reps_a = sa.sample_representatives(0.2, ra);
  const auto reps_b = sb.sample_representatives(0.2, rb);
  EXPECT_EQ(reps_a.node, reps_b.node) << label;
  EXPECT_EQ(reps_a.cluster, reps_b.cluster) << label;
  std::vector<double> scores_a(sa.num_clusters());
  for (std::size_t c = 0; c < scores_a.size(); ++c)
    scores_a[c] = 1.0 + 0.1 * static_cast<double>(c % 7);
  sgm::util::Rng ea(888), eb(888);
  const auto epoch_a =
      sgm::core::build_epoch(sa, scores_a, {}, ea);
  const auto epoch_b =
      sgm::core::build_epoch(sb, scores_a, {}, eb);
  EXPECT_EQ(epoch_a.indices, epoch_b.indices) << label;
}

double edge_overlap(const CsrGraph& a, const CsrGraph& b) {
  std::set<std::pair<sgm::graph::NodeId, sgm::graph::NodeId>> ea, eb;
  for (const auto& e : a.edges()) ea.insert({e.u, e.v});
  for (const auto& e : b.edges()) eb.insert({e.u, e.v});
  std::size_t common = 0;
  for (const auto& e : ea) common += eb.count(e);
  const std::size_t denom = std::max(ea.size(), eb.size());
  return denom ? static_cast<double>(common) / static_cast<double>(denom)
               : 1.0;
}

// -------------------------------------------------- kd-exact equivalence --

class KdEquivalence
    : public ::testing::TestWithParam<std::tuple<ErMethod, double>> {};

TEST_P(KdEquivalence, IncrementalMatchesFullRebuild) {
  const auto [method, fraction] = GetParam();
  const std::size_t n = 700;
  sgm::util::Rng rng(91);
  const Matrix pts = random_points(n, 2, rng);

  // Production threshold: 1% / 10% take the incremental path, 50% / 100%
  // the fallback; the baseline engine (threshold < 0) always rebuilds.
  IncrementalRefreshEngine inc(
      pts, engine_options(KnnBackend::kKdTree, method, 0.30, 1));
  IncrementalRefreshEngine full(
      pts, engine_options(KnnBackend::kKdTree, method, -1.0, 1));

  Matrix out = base_outputs(pts);
  auto c_inc = inc.refresh(&out);
  auto c_full = full.refresh(&out);
  expect_identical_graphs(inc.graph(), full.graph(), "initial");
  expect_identical_clustering(c_inc, c_full, "initial");

  for (int round = 1; round <= 3; ++round) {
    out = evolve_outputs(out, fraction, round, 1234);
    RefreshStats si, sf;
    c_inc = inc.refresh(&out, &si);
    c_full = full.refresh(&out, &sf);
    const std::string label = "round " + std::to_string(round) + " frac " +
                              std::to_string(fraction);

    EXPECT_TRUE(sf.full_rebuild) << label;
    if (fraction > 0.0 && fraction <= 0.30 && !si.repinned) {
      EXPECT_FALSE(si.full_rebuild)
          << label << ": expected the incremental path";
      EXPECT_EQ(si.dirty_points,
                static_cast<std::size_t>(std::llround(fraction * n)))
          << label;
      EXPECT_GE(si.requeried_points, si.dirty_points) << label;
    }
    if (fraction > 0.30) {
      EXPECT_TRUE(si.full_rebuild) << label;
    }

    expect_identical_graphs(inc.graph(), full.graph(), label);

    if (method == ErMethod::kSmoothed) {
      // Canonical smoothing is bit-identical between the paths...
      ASSERT_EQ(inc.embedding().rows(), full.embedding().rows()) << label;
      ASSERT_EQ(inc.embedding().cols(), full.embedding().cols()) << label;
      for (std::size_t i = 0; i < inc.embedding().size(); ++i)
        ASSERT_EQ(inc.embedding().data()[i], full.embedding().data()[i])
            << label << " embedding entry " << i;
      // ...hence so are the clustering and everything the sampler sees.
      expect_identical_clustering(c_inc, c_full, label);
      expect_identical_distributions(c_inc, c_full, label);
    } else {
      // kJlSolve: both arms solve the same hash-keyed sketch systems to
      // cg_rel_tol; per-edge ER must agree within the solver tolerance
      // (assertion bound: 1e4 * cg_rel_tol relative, calibrated with wide
      // margin — see docs/TESTING.md).
      const auto er_inc = sgm::graph::edge_effective_resistance(
          inc.graph(), inc.embedding(), 1);
      const auto er_full = sgm::graph::edge_effective_resistance(
          full.graph(), full.embedding(), 1);
      ASSERT_EQ(er_inc.size(), er_full.size()) << label;
      const double tol = 1e4 * 1e-8;
      for (std::size_t e = 0; e < er_inc.size(); ++e)
        EXPECT_NEAR(er_inc[e], er_full[e],
                    tol * std::max(1.0, std::fabs(er_full[e])))
            << label << " edge " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdEquivalence,
    ::testing::Combine(::testing::Values(ErMethod::kSmoothed,
                                         ErMethod::kJlSolve),
                       ::testing::Values(0.0, 0.01, 0.10, 0.50, 1.0)));

// ------------------------------------------------- thread invariance ------

TEST(IncrementalRefresh, ByteIdenticalAtOneAndFourThreads) {
  const std::size_t n = 600;
  sgm::util::Rng rng(17);
  const Matrix pts = random_points(n, 2, rng);
  auto run = [&](std::size_t threads) {
    IncrementalRefreshEngine eng(
        pts, engine_options(KnnBackend::kKdTree, ErMethod::kSmoothed, 0.30,
                            threads));
    Matrix out = base_outputs(pts);
    eng.refresh(&out);
    std::vector<sgm::graph::Clustering> results;
    for (int round = 1; round <= 3; ++round) {
      out = evolve_outputs(out, 0.08, round, 555);
      results.push_back(eng.refresh(&out));
    }
    return std::make_pair(results, eng.embedding());
  };
  const auto [c1, z1] = run(1);
  const auto [c4, z4] = run(4);
  ASSERT_EQ(c1.size(), c4.size());
  for (std::size_t r = 0; r < c1.size(); ++r)
    expect_identical_clustering(c1[r], c4[r],
                                "threads round " + std::to_string(r));
  ASSERT_EQ(z1.size(), z4.size());
  for (std::size_t i = 0; i < z1.size(); ++i)
    ASSERT_EQ(z1.data()[i], z4.data()[i]) << "embedding entry " << i;
}

// ---------------------------------------------------- HNSW backend --------

TEST(IncrementalRefresh, HnswDeterministicAndBoundedDivergence) {
  const std::size_t n = 800;
  sgm::util::Rng rng(23);
  const Matrix pts = random_points(n, 2, rng);
  auto make = [&](double threshold, std::size_t threads) {
    return IncrementalRefreshEngine(
        pts, engine_options(KnnBackend::kHnsw, ErMethod::kSmoothed, threshold,
                            threads));
  };
  IncrementalRefreshEngine inc1 = make(0.30, 1);
  IncrementalRefreshEngine inc4 = make(0.30, 4);
  IncrementalRefreshEngine full = make(-1.0, 1);

  Matrix out = base_outputs(pts);
  inc1.refresh(&out);
  inc4.refresh(&out);
  full.refresh(&out);
  expect_identical_graphs(inc1.graph(), full.graph(), "hnsw initial");

  // 0% dirty: the incremental no-op must match the full rebuild bitwise
  // (unchanged metric => the fresh index is rebuilt identically).
  RefreshStats si, sf;
  auto ci = inc1.refresh(&out, &si);
  auto cf = full.refresh(&out, &sf);
  EXPECT_EQ(si.dirty_points, 0u);
  expect_identical_graphs(inc1.graph(), full.graph(), "hnsw 0% dirty");
  expect_identical_clustering(ci, cf, "hnsw 0% dirty");

  // 10% dirty: deterministic (1 vs 4 threads bitwise) and close to the
  // fresh build (the mutated index trades a little recall).
  out = evolve_outputs(out, 0.10, 1, 999);
  ci = inc1.refresh(&out, &si);
  auto ci4 = inc4.refresh(&out);
  cf = full.refresh(&out, &sf);
  EXPECT_FALSE(si.full_rebuild);
  EXPECT_TRUE(sf.full_rebuild);
  expect_identical_graphs(inc1.graph(), inc4.graph(), "hnsw 10% threads");
  expect_identical_clustering(ci, ci4, "hnsw 10% threads");
  EXPECT_GE(edge_overlap(inc1.graph(), full.graph()), 0.9)
      << "mutated-index graph drifted too far from the fresh build";

  // 100% dirty: fallback => fresh index in both engines, bitwise equal
  // again (and the incremental engine resynchronizes its state).
  out = evolve_outputs(out, 1.0, 2, 999);
  ci = inc1.refresh(&out, &si);
  cf = full.refresh(&out, &sf);
  EXPECT_TRUE(si.full_rebuild);
  expect_identical_graphs(inc1.graph(), full.graph(), "hnsw fallback");
  expect_identical_clustering(ci, cf, "hnsw fallback");
}

// ---------------------------------------------- sub-threshold deferral ----

TEST(IncrementalRefresh, SubToleranceDriftIsDeferredUntilItAccumulates) {
  const std::size_t n = 300;
  sgm::util::Rng rng(31);
  const Matrix pts = random_points(n, 2, rng);
  auto opt = engine_options(KnnBackend::kKdTree, ErMethod::kSmoothed, 0.9, 1);
  opt.dirty_tolerance = 0.05;  // relative to the output feature scale
  IncrementalRefreshEngine eng(pts, opt);
  Matrix out = base_outputs(pts);
  eng.refresh(&out);

  // A wiggle far below tolerance: refresh is a no-op...
  Matrix wiggled = out;
  for (std::size_t i = 0; i < n; ++i) wiggled(i, 0) += 1e-6;
  RefreshStats st;
  eng.refresh(&wiggled, &st);
  EXPECT_EQ(st.dirty_points, 0u);
  EXPECT_FALSE(st.full_rebuild);

  // ...but the drift is measured against the APPLIED reference, so pushing
  // the same points further eventually crosses the threshold.
  for (std::size_t i = 0; i < n; ++i) wiggled(i, 0) += 0.5;
  eng.refresh(&wiggled, &st);
  EXPECT_GT(st.dirty_points, 0u);
}

// ------------------------------------------------ stale-ER amortization ---

TEST(IncrementalRefresh, StaleErReusesEmbeddingThenResyncsExactly) {
  const std::size_t n = 500;
  sgm::util::Rng rng(37);
  const Matrix pts = random_points(n, 2, rng);
  auto opt = engine_options(KnnBackend::kKdTree, ErMethod::kSmoothed, 0.9, 1);
  opt.er_stale_ratio = 0.30;
  IncrementalRefreshEngine eng(pts, opt);
  auto strict_opt = opt;
  strict_opt.er_stale_ratio = 0.0;  // resyncs every refresh
  IncrementalRefreshEngine strict(pts, strict_opt);
  Matrix out = base_outputs(pts);
  eng.refresh(&out);
  strict.refresh(&out);
  const CsrGraph g_sync = eng.graph();  // embedding's sync snapshot

  // Small rounds bank changed edges below the ratio: the embedding must be
  // reused bit-for-bit (that is the whole point — no solves happen).
  Matrix z_before = eng.embedding();
  RefreshStats st;
  int round = 0;
  bool saw_stale = false;
  while (round < 20) {
    ++round;
    out = evolve_outputs(out, 0.02, round, 4321);
    eng.refresh(&out, &st);
    strict.refresh(&out);
    if (st.er_resynced) break;
    ASSERT_TRUE(st.er_reused_stale || st.dirty_points == 0) << round;
    saw_stale = true;
    ASSERT_EQ(eng.embedding().size(), z_before.size());
    for (std::size_t i = 0; i < z_before.size(); ++i)
      ASSERT_EQ(eng.embedding().data()[i], z_before.data()[i])
          << "round " << round << " entry " << i
          << ": stale reuse must not touch the embedding";
  }
  ASSERT_TRUE(saw_stale) << "ratio never let a refresh reuse the embedding";
  ASSERT_TRUE(st.er_resynced) << "banked changes never crossed the ratio";

  // The resync must land exactly where a reference engine driven with the
  // same sync-point schedule lands: rebuild on the old snapshot, one update
  // against the accumulated diff. (Same pinned-step history by
  // construction, so the comparison is bitwise.)
  const CsrGraph& g_now = eng.graph();
  std::set<std::tuple<sgm::graph::NodeId, sgm::graph::NodeId, double>> s1, s2;
  for (const auto& e : g_sync.edges()) s1.insert({e.u, e.v, e.w});
  for (const auto& e : g_now.edges()) s2.insert({e.u, e.v, e.w});
  std::set<sgm::graph::NodeId> nodes;
  for (const auto& e : s1)
    if (!s2.count(e)) {
      nodes.insert(std::get<0>(e));
      nodes.insert(std::get<1>(e));
    }
  for (const auto& e : s2)
    if (!s1.count(e)) {
      nodes.insert(std::get<0>(e));
      nodes.insert(std::get<1>(e));
    }
  IncrementalErEngine ref(opt.lrd.er);
  ref.rebuild(g_sync);
  ref.update(g_now, g_sync,
             std::vector<sgm::graph::NodeId>(nodes.begin(), nodes.end()));
  ASSERT_EQ(eng.embedding().size(), ref.embedding().size());
  for (std::size_t i = 0; i < ref.embedding().size(); ++i)
    ASSERT_EQ(eng.embedding().data()[i], ref.embedding().data()[i])
        << "resync entry " << i;

  // ...and, equivalently, on a never-stale core engine fed the same
  // stream. This holds for arbitrary streams because a max-degree growth
  // on any round forces the stale engine to resync (degree-unpin rule), so
  // the two pin histories can never diverge.
  ASSERT_EQ(eng.embedding().size(), strict.embedding().size());
  for (std::size_t i = 0; i < strict.embedding().size(); ++i)
    ASSERT_EQ(eng.embedding().data()[i], strict.embedding().data()[i])
        << "strict-engine resync entry " << i;
}

// ------------------------------------------------------ DirtyTracker ------

TEST(DirtyTracker, DiffRebaseAndScales) {
  Matrix ref(4, 2);
  for (std::size_t i = 0; i < ref.size(); ++i)
    ref.data()[i] = static_cast<double>(i);
  DirtyTracker t(4, 2, 0.5);
  t.set_scales({1.0, 10.0});
  t.rebase_all(ref);
  EXPECT_TRUE(t.diff(ref).empty());

  Matrix cand = ref;
  cand(1, 0) += 0.6;  // > 0.5 * 1.0 => dirty
  cand(2, 1) += 3.0;  // < 0.5 * 10  => clean
  const auto dirty = t.diff(cand);
  EXPECT_EQ(dirty, (std::vector<std::uint32_t>{1}));

  Matrix row(1, 2);
  row(0, 0) = cand(1, 0);
  row(0, 1) = cand(1, 1);
  t.rebase_rows({1}, row);
  EXPECT_TRUE(t.diff(cand).empty());
}

TEST(DirtyTracker, ZeroToleranceFlagsAnyBitwiseChange) {
  Matrix ref(3, 1);
  DirtyTracker t(3, 1, 0.0);
  t.rebase_all(ref);
  Matrix cand = ref;
  cand(2, 0) = 1e-300;
  EXPECT_EQ(t.diff(cand), (std::vector<std::uint32_t>{2}));
}

TEST(DirtyTracker, RelativeToReferenceModeScalesWithTheSignal) {
  // The sampler's loss signal uses reference-relative drift: a 30% move is
  // dirty whether the loss is O(10) or O(1e-3).
  DirtyTracker t(4, 1, 0.25);
  t.set_relative_to_reference();
  t.observe({0, 1, 2, 3}, {10.0, 1e-3, 10.0, 1e-3});
  t.observe({0, 1}, {13.0, 1.3e-3});  // +30% of reference => dirty
  EXPECT_TRUE(t.is_dirty(0));
  EXPECT_TRUE(t.is_dirty(1));
  t.observe({2, 3}, {11.0, 1.1e-3});  // +10% => clean
  EXPECT_FALSE(t.is_dirty(2));
  EXPECT_FALSE(t.is_dirty(3));
}

TEST(DirtyTracker, StreamObservationDrivesDirtyFraction) {
  DirtyTracker t(10, 1, 0.25);
  // First sight sets references; nothing is dirty yet.
  t.observe({0, 1, 2, 3}, {1.0, 1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(t.dirty_fraction(), 0.0);
  // Two of four observed points drift beyond 25%.
  t.observe({0, 1}, {1.5, 1.1});
  EXPECT_TRUE(t.is_dirty(0));
  EXPECT_FALSE(t.is_dirty(1));
  t.observe({2}, {2.0});
  EXPECT_DOUBLE_EQ(t.dirty_fraction(), 0.5);  // 2 of 4 observed
  // A rebuild absorbs the drift.
  t.settle();
  EXPECT_DOUBLE_EQ(t.dirty_fraction(), 0.0);
  t.observe({0}, {1.5});  // settled reference is the last observed value
  EXPECT_FALSE(t.is_dirty(0));
}

// -------------------------------------------------- PCG warm start --------

TEST(PcgWarmStart, ExactStartConvergesInZeroIterations) {
  sgm::util::Rng rng(47);
  const Matrix pts = random_points(200, 2, rng);
  sgm::graph::KnnGraphOptions ko;
  ko.k = 6;
  const CsrGraph g = sgm::graph::build_knn_graph(pts, ko);
  sgm::graph::Vec b(g.num_nodes());
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  sgm::graph::deflate_constant(b);

  sgm::graph::PcgOptions opt;
  opt.rel_tol = 1e-8;
  const auto cold = sgm::graph::pcg_solve_laplacian(g, b, opt);
  ASSERT_TRUE(cold.converged);
  ASSERT_GT(cold.iterations, 0);

  const auto warm = sgm::graph::pcg_solve_laplacian(g, b, opt, &cold.x);
  EXPECT_TRUE(warm.converged);
  EXPECT_EQ(warm.iterations, 0);
}

TEST(PcgWarmStart, NearbyStartConvergesFasterToTheSameSolution) {
  sgm::util::Rng rng(53);
  const Matrix pts = random_points(300, 2, rng);
  sgm::graph::KnnGraphOptions ko;
  ko.k = 6;
  const CsrGraph g = sgm::graph::build_knn_graph(pts, ko);
  sgm::graph::Vec b(g.num_nodes());
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  sgm::graph::deflate_constant(b);

  sgm::graph::PcgOptions opt;
  opt.rel_tol = 1e-10;
  const auto cold = sgm::graph::pcg_solve_laplacian(g, b, opt);
  ASSERT_TRUE(cold.converged);

  sgm::graph::Vec x0 = cold.x;
  for (auto& v : x0) v += 1e-6 * rng.uniform(-1.0, 1.0);
  const auto warm = sgm::graph::pcg_solve_laplacian(g, b, opt, &x0);
  ASSERT_TRUE(warm.converged);
  EXPECT_LT(warm.iterations, cold.iterations);
  double diff = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < cold.x.size(); ++i) {
    diff += (warm.x[i] - cold.x[i]) * (warm.x[i] - cold.x[i]);
    norm += cold.x[i] * cold.x[i];
  }
  EXPECT_LT(std::sqrt(diff), 1e-6 * std::sqrt(norm) + 1e-9);
}

// -------------------------------------- localized smoothed-ER updates ----

TEST(IncrementalEr, LocalizedSmoothedUpdateIsBitwiseExact) {
  // A long path graph: diameter >> 2 * smoothing_iterations, so a single
  // re-weighted edge's influence region is a genuine sub-ball and the
  // localized sweep path runs (instead of the all-columns fallback).
  const std::size_t n = 1500;
  std::vector<sgm::graph::Edge> edges;
  for (std::size_t i = 0; i + 1 < n; ++i)
    edges.push_back({static_cast<sgm::graph::NodeId>(i),
                     static_cast<sgm::graph::NodeId>(i + 1), 1.0});
  const CsrGraph g1 = CsrGraph::from_edges(static_cast<sgm::graph::NodeId>(n),
                                           std::move(edges));
  std::vector<sgm::graph::Edge> edges2;
  for (std::size_t i = 0; i + 1 < n; ++i)
    edges2.push_back({static_cast<sgm::graph::NodeId>(i),
                      static_cast<sgm::graph::NodeId>(i + 1),
                      i == 10 ? 0.5 : 1.0});
  const CsrGraph g2 = CsrGraph::from_edges(static_cast<sgm::graph::NodeId>(n),
                                           std::move(edges2));

  ErOptions eo;
  eo.method = ErMethod::kSmoothed;
  eo.num_vectors = 6;
  eo.smoothing_iterations = 8;

  IncrementalErEngine baseline(eo);
  baseline.rebuild(g1);
  baseline.rebuild(g2);  // same pinned-step history as the incremental arm

  IncrementalErEngine inc(eo);
  inc.rebuild(g1);
  sgm::graph::ErUpdateStats st;
  inc.update(g2, g1, {10, 11}, &st);
  EXPECT_FALSE(st.full_recompute);
  EXPECT_GT(st.region_nodes, 0u);
  EXPECT_LT(st.region_nodes, n / 2);

  ASSERT_EQ(inc.embedding().size(), baseline.embedding().size());
  for (std::size_t i = 0; i < inc.embedding().size(); ++i)
    ASSERT_EQ(inc.embedding().data()[i], baseline.embedding().data()[i])
        << "entry " << i;
}

TEST(IncrementalEr, DenseRegionFallsBackToFullColumns) {
  // On a small dense cloud the 2T-hop ball covers everything: the engine
  // must recompute all columns — and still match the baseline bitwise.
  sgm::util::Rng rng(61);
  const Matrix pts = random_points(120, 2, rng);
  sgm::graph::KnnGraphOptions ko;
  ko.k = 6;
  const CsrGraph g1 = sgm::graph::build_knn_graph(pts, ko);
  Matrix pts2 = pts;
  pts2(7, 0) += 0.05;
  const CsrGraph g2 = sgm::graph::build_knn_graph(pts2, ko);

  ErOptions eo;
  eo.method = ErMethod::kSmoothed;
  eo.num_vectors = 6;
  eo.smoothing_iterations = 20;

  std::size_t changed_count = 0;
  std::vector<sgm::graph::NodeId> changed;
  {
    // Collect endpoints of differing edges the blunt way.
    std::set<std::tuple<sgm::graph::NodeId, sgm::graph::NodeId, double>> s1,
        s2;
    for (const auto& e : g1.edges()) s1.insert({e.u, e.v, e.w});
    for (const auto& e : g2.edges()) s2.insert({e.u, e.v, e.w});
    std::set<sgm::graph::NodeId> nodes;
    for (const auto& e : s1)
      if (!s2.count(e)) {
        nodes.insert(std::get<0>(e));
        nodes.insert(std::get<1>(e));
        ++changed_count;
      }
    for (const auto& e : s2)
      if (!s1.count(e)) {
        nodes.insert(std::get<0>(e));
        nodes.insert(std::get<1>(e));
        ++changed_count;
      }
    changed.assign(nodes.begin(), nodes.end());
  }
  ASSERT_GT(changed_count, 0u);

  IncrementalErEngine baseline(eo);
  baseline.rebuild(g1);
  baseline.rebuild(g2);

  IncrementalErEngine inc(eo);
  inc.rebuild(g1);
  sgm::graph::ErUpdateStats st;
  inc.update(g2, g1, changed, &st);
  EXPECT_TRUE(st.full_recompute);

  ASSERT_EQ(inc.embedding().size(), baseline.embedding().size());
  for (std::size_t i = 0; i < inc.embedding().size(); ++i)
    ASSERT_EQ(inc.embedding().data()[i], baseline.embedding().data()[i])
        << "entry " << i;
}

}  // namespace
