// Tests for the baseline samplers: alias tables, epoch dealing, uniform,
// MIS (loss-proportional) and RAR — plus the cross-sampler batch contract
// (exactly batch_size in-range rows) and the PGM-edge exclusion property.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>

#include "core/pgm.hpp"
#include "core/sgm_sampler.hpp"
#include "samplers/mis.hpp"
#include "samplers/rar.hpp"
#include "samplers/sampler.hpp"
#include "samplers/uniform.hpp"
#include "util/rng.hpp"

namespace {

using sgm::samplers::AliasTable;
using sgm::samplers::EpochDealer;
using sgm::tensor::Matrix;

TEST(AliasTable, MatchesNormalizedProbabilities) {
  AliasTable t({1.0, 3.0, 6.0});
  EXPECT_NEAR(t.probability(0), 0.1, 1e-12);
  EXPECT_NEAR(t.probability(1), 0.3, 1e-12);
  EXPECT_NEAR(t.probability(2), 0.6, 1e-12);
}

TEST(AliasTable, EmpiricalFrequenciesConverge) {
  AliasTable t({2.0, 1.0, 1.0, 4.0});
  sgm::util::Rng rng(1);
  std::map<std::uint32_t, int> count;
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++count[t.sample(rng)];
  EXPECT_NEAR(count[0] / double(n), 0.25, 0.01);
  EXPECT_NEAR(count[3] / double(n), 0.50, 0.01);
}

TEST(AliasTable, RejectsInvalidWeights) {
  EXPECT_THROW(AliasTable({}), std::invalid_argument);
  EXPECT_THROW(AliasTable({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable({1.0, -1.0}), std::invalid_argument);
}

TEST(AliasTable, HandlesZeroWeightEntries) {
  AliasTable t({0.0, 1.0, 0.0});
  sgm::util::Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(t.sample(rng), 1u);
}

TEST(EpochDealer, FullUniverseEachEpoch) {
  EpochDealer d(10);
  sgm::util::Rng rng(3);
  std::map<std::uint32_t, int> count;
  // Two complete epochs of 10 in batches of 5.
  for (int b = 0; b < 4; ++b)
    for (auto i : d.next(5, rng)) ++count[i];
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(count[i], 2);
}

TEST(EpochDealer, SetEpochUsesGivenMultiset) {
  EpochDealer d(100);
  sgm::util::Rng rng(4);
  d.set_epoch({7, 7, 9}, rng);
  std::map<std::uint32_t, int> count;
  for (auto i : d.next(6, rng)) ++count[i];  // exactly two epochs
  EXPECT_EQ(count[7], 4);
  EXPECT_EQ(count[9], 2);
  EXPECT_EQ(count.size(), 2u);
}

TEST(EpochDealer, RejectsEmptyEpoch) {
  EpochDealer d(4);
  sgm::util::Rng rng(5);
  EXPECT_THROW(d.set_epoch({}, rng), std::invalid_argument);
}

TEST(UniformSampler, CoversUniverse) {
  sgm::samplers::UniformSampler s(16);
  sgm::util::Rng rng(6);
  std::map<std::uint32_t, int> count;
  for (int b = 0; b < 4; ++b)
    for (auto i : s.next_batch(8, rng)) ++count[i];
  EXPECT_EQ(count.size(), 16u);  // two epochs touch everything
}

// ----------------------------------------------------------------- MIS ----

Matrix line_points(std::size_t n) {
  Matrix pts(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    pts(i, 0) = static_cast<double>(i) / n;
    pts(i, 1) = 0.0;
  }
  return pts;
}

TEST(MisSampler, UniformBeforeFirstRefresh) {
  const Matrix pts = line_points(50);
  sgm::samplers::MisOptions opt;
  sgm::samplers::MisSampler s(pts, opt);
  EXPECT_NEAR(s.probability(3), 1.0 / 50, 1e-12);
}

TEST(MisSampler, ProbabilityTracksLoss) {
  const Matrix pts = line_points(100);
  sgm::samplers::MisOptions opt;
  opt.refresh_every = 1;
  opt.uniform_floor = 0.0;
  sgm::samplers::MisSampler s(pts, opt);
  sgm::util::Rng rng(7);
  // Loss = 9 for the first half, 1 for the second.
  auto eval = [](const std::vector<std::uint32_t>& rows) {
    std::vector<double> loss(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
      loss[i] = rows[i] < 50 ? 9.0 : 1.0;
    return loss;
  };
  s.maybe_refresh(0, eval, rng);
  EXPECT_NEAR(s.probability(10) / s.probability(90), 9.0, 1e-9);
}

TEST(MisSampler, SeededModeAssignsNearestSeedLoss) {
  const Matrix pts = line_points(100);
  sgm::samplers::MisOptions opt;
  opt.refresh_every = 1;
  opt.num_seeds = 10;
  opt.uniform_floor = 0.0;
  sgm::samplers::MisSampler s(pts, opt);
  sgm::util::Rng rng(8);
  std::size_t evaluated = 0;
  auto eval = [&](const std::vector<std::uint32_t>& rows) {
    evaluated = rows.size();
    std::vector<double> loss(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
      loss[i] = rows[i] < 50 ? 5.0 : 1.0;
    return loss;
  };
  s.maybe_refresh(0, eval, rng);
  EXPECT_EQ(evaluated, 10u);  // seeds only, not the full cloud
  EXPECT_EQ(s.loss_evaluations(), 10u);
  // Points deep in each half should inherit their half's seed loss.
  EXPECT_GT(s.probability(5), s.probability(95));
}

TEST(MisSampler, RespectsRefreshPeriod) {
  const Matrix pts = line_points(20);
  sgm::samplers::MisOptions opt;
  opt.refresh_every = 100;
  sgm::samplers::MisSampler s(pts, opt);
  sgm::util::Rng rng(9);
  int calls = 0;
  auto eval = [&](const std::vector<std::uint32_t>& rows) {
    ++calls;
    return std::vector<double>(rows.size(), 1.0);
  };
  for (std::uint64_t it = 0; it < 250; ++it) s.maybe_refresh(it, eval, rng);
  EXPECT_EQ(calls, 3);  // at 0, 100, 200
}

TEST(MisSampler, UniformFloorKeepsAllReachable) {
  const Matrix pts = line_points(10);
  sgm::samplers::MisOptions opt;
  opt.refresh_every = 1;
  opt.uniform_floor = 0.1;
  sgm::samplers::MisSampler s(pts, opt);
  sgm::util::Rng rng(10);
  auto eval = [](const std::vector<std::uint32_t>& rows) {
    std::vector<double> loss(rows.size(), 0.0);
    loss[0] = 100.0;  // all mass on one point without the floor
    return loss;
  };
  s.maybe_refresh(0, eval, rng);
  for (std::uint32_t i = 0; i < 10; ++i)
    EXPECT_GE(s.probability(i), 0.1 / 10 - 1e-12);
}

// ----------------------------------------------------------------- RAR ----

TEST(RarSampler, GrowsActiveSetByResidual) {
  sgm::util::Rng rng(11);
  sgm::samplers::RarOptions opt;
  opt.initial_points = 16;
  opt.added_per_refresh = 8;
  opt.candidate_pool = 64;
  opt.refresh_every = 10;
  sgm::samplers::RarSampler s(256, opt, rng);
  EXPECT_EQ(s.active_size(), 16u);
  auto eval = [](const std::vector<std::uint32_t>& rows) {
    std::vector<double> loss(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
      loss[i] = static_cast<double>(rows[i]);  // higher index = higher loss
    return loss;
  };
  s.maybe_refresh(10, eval, rng);
  EXPECT_EQ(s.active_size(), 24u);
  s.maybe_refresh(20, eval, rng);
  EXPECT_EQ(s.active_size(), 32u);
}

TEST(RarSampler, BatchesComeFromActiveSet) {
  sgm::util::Rng rng(12);
  sgm::samplers::RarOptions opt;
  opt.initial_points = 8;
  sgm::samplers::RarSampler s(100, opt, rng);
  auto batch = s.next_batch(32, rng);
  // All batch elements must be among the 8 active points.
  std::set<std::uint32_t> uniq(batch.begin(), batch.end());
  EXPECT_LE(uniq.size(), 8u);
}

// ----------------------------------------------- cross-sampler contract ----

// Every Sampler must hand the trainer exactly `batch_size` rows, each a
// valid index into the point universe — for every batch size, including
// ones larger than the universe (epoch dealers wrap, weighted samplers draw
// with replacement).
void check_batch_contract(sgm::samplers::Sampler& s, std::uint32_t n,
                          sgm::util::Rng& rng) {
  for (const std::size_t batch_size : {1u, 7u, 64u, n, n + 13u}) {
    for (int rep = 0; rep < 5; ++rep) {
      const auto batch = s.next_batch(batch_size, rng);
      ASSERT_EQ(batch.size(), batch_size) << s.name();
      for (const auto i : batch) ASSERT_LT(i, n) << s.name();
    }
  }
}

sgm::tensor::Matrix cloud2d(std::uint32_t n, std::uint64_t seed) {
  sgm::util::Rng rng(seed);
  sgm::tensor::Matrix pts(n, 2);
  for (std::size_t i = 0; i < pts.size(); ++i) pts.data()[i] = rng.uniform();
  return pts;
}

TEST(SamplerContract, EverySamplerReturnsExactlyBatchSizeInRangeRows) {
  const std::uint32_t n = 200;
  const sgm::tensor::Matrix pts = cloud2d(n, 21);
  sgm::util::Rng rng(22);
  auto eval = [](const std::vector<std::uint32_t>& rows) {
    std::vector<double> loss(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) loss[i] = 1.0 + rows[i];
    return loss;
  };

  sgm::samplers::UniformSampler uniform(n);
  check_batch_contract(uniform, n, rng);

  sgm::samplers::MisOptions mopt;
  mopt.refresh_every = 1;
  sgm::samplers::MisSampler mis(pts, mopt);
  check_batch_contract(mis, n, rng);  // pre-refresh (uniform path)
  mis.maybe_refresh(0, eval, rng);
  check_batch_contract(mis, n, rng);  // post-refresh (alias path)

  sgm::samplers::RarOptions ropt;
  ropt.initial_points = 16;
  ropt.refresh_every = 1;
  sgm::samplers::RarSampler rar(n, ropt, rng);
  rar.maybe_refresh(1, eval, rng);
  check_batch_contract(rar, n, rng);

  sgm::core::SgmOptions sopt;
  sopt.pgm.knn.k = 6;
  sopt.lrd.levels = 4;
  sopt.tau_e = 1;
  sopt.tau_g = 0;
  sgm::core::SgmSampler sgm_sampler(pts, sopt);
  check_batch_contract(sgm_sampler, n, rng);  // initial full-universe epoch
  sgm_sampler.maybe_refresh(0, eval, rng);
  check_batch_contract(sgm_sampler, n, rng);  // SGM epoch
}

// ------------------------------------------------- MIS edge exclusion ----

TEST(MisSampler, ExclusionGraphBatchesNeverContainAPgmEdge) {
  const std::uint32_t n = 400;
  const sgm::tensor::Matrix pts = cloud2d(n, 31);
  sgm::core::PgmOptions gopt;
  gopt.knn.k = 6;
  const sgm::graph::CsrGraph pgm = sgm::core::build_pgm(pts, nullptr, gopt);

  sgm::samplers::MisOptions opt;
  opt.refresh_every = 1;
  opt.exclusion_graph = &pgm;
  sgm::samplers::MisSampler s(pts, opt);
  sgm::util::Rng rng(32);
  auto eval = [](const std::vector<std::uint32_t>& rows) {
    // Concentrated losses make kNN neighbors likely co-draws without the
    // exclusion; the property must hold anyway.
    std::vector<double> loss(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
      loss[i] = rows[i] < 40 ? 100.0 : 0.01;
    return loss;
  };

  auto check_independent = [&](const std::vector<std::uint32_t>& batch) {
    std::set<std::uint32_t> in_batch(batch.begin(), batch.end());
    ASSERT_EQ(in_batch.size(), batch.size()) << "duplicate row in batch";
    for (const auto u : batch)
      for (const auto v : pgm.neighbors(u))
        ASSERT_FALSE(in_batch.count(v))
            << "PGM edge (" << u << ", " << v << ") inside one batch";
  };

  for (int b = 0; b < 20; ++b) check_independent(s.next_batch(24, rng));
  s.maybe_refresh(0, eval, rng);
  for (int b = 0; b < 20; ++b) check_independent(s.next_batch(24, rng));
}

TEST(MisSampler, ExclusionGraphThrowsWhenNoIndependentBatchExists) {
  // K4: any two vertices are adjacent, so no independent batch of 2 exists.
  sgm::tensor::Matrix pts(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    pts(i, 0) = static_cast<double>(i);
    pts(i, 1) = 0.0;
  }
  const sgm::graph::CsrGraph k4 = sgm::graph::CsrGraph::from_edges(
      4, {{0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0}, {1, 2, 1.0}, {1, 3, 1.0},
          {2, 3, 1.0}});
  sgm::samplers::MisOptions opt;
  opt.exclusion_graph = &k4;
  sgm::samplers::MisSampler s(pts, opt);
  sgm::util::Rng rng(33);
  EXPECT_EQ(s.next_batch(1, rng).size(), 1u);
  EXPECT_THROW(s.next_batch(2, rng), std::runtime_error);
}

// --------------------------------------------- RAR growth invariants ----

TEST(RarSampler, ActiveSetGrowsMonotonicallyAndNeverExceedsUniverse) {
  const std::uint32_t n = 300;
  sgm::util::Rng rng(41);
  sgm::samplers::RarOptions opt;
  opt.initial_points = 32;
  opt.added_per_refresh = 64;
  opt.candidate_pool = 128;
  opt.refresh_every = 1;
  sgm::samplers::RarSampler s(n, opt, rng);
  auto eval = [](const std::vector<std::uint32_t>& rows) {
    return std::vector<double>(rows.size(), 1.0);
  };
  std::size_t previous = s.active_size();
  EXPECT_LE(previous, static_cast<std::size_t>(n));
  // Far more refreshes than needed to saturate: growth must be monotone and
  // capped at the universe the whole way.
  for (std::uint64_t it = 1; it <= 20; ++it) {
    s.maybe_refresh(it, eval, rng);
    EXPECT_GE(s.active_size(), previous);
    EXPECT_LE(s.active_size(), static_cast<std::size_t>(n));
    previous = s.active_size();
  }
  EXPECT_EQ(s.active_size(), static_cast<std::size_t>(n));  // saturated
}

}  // namespace
