// Tests for the baseline samplers: alias tables, epoch dealing, uniform,
// MIS (loss-proportional) and RAR.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "samplers/mis.hpp"
#include "samplers/rar.hpp"
#include "samplers/sampler.hpp"
#include "samplers/uniform.hpp"
#include "util/rng.hpp"

namespace {

using sgm::samplers::AliasTable;
using sgm::samplers::EpochDealer;
using sgm::tensor::Matrix;

TEST(AliasTable, MatchesNormalizedProbabilities) {
  AliasTable t({1.0, 3.0, 6.0});
  EXPECT_NEAR(t.probability(0), 0.1, 1e-12);
  EXPECT_NEAR(t.probability(1), 0.3, 1e-12);
  EXPECT_NEAR(t.probability(2), 0.6, 1e-12);
}

TEST(AliasTable, EmpiricalFrequenciesConverge) {
  AliasTable t({2.0, 1.0, 1.0, 4.0});
  sgm::util::Rng rng(1);
  std::map<std::uint32_t, int> count;
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++count[t.sample(rng)];
  EXPECT_NEAR(count[0] / double(n), 0.25, 0.01);
  EXPECT_NEAR(count[3] / double(n), 0.50, 0.01);
}

TEST(AliasTable, RejectsInvalidWeights) {
  EXPECT_THROW(AliasTable({}), std::invalid_argument);
  EXPECT_THROW(AliasTable({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable({1.0, -1.0}), std::invalid_argument);
}

TEST(AliasTable, HandlesZeroWeightEntries) {
  AliasTable t({0.0, 1.0, 0.0});
  sgm::util::Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(t.sample(rng), 1u);
}

TEST(EpochDealer, FullUniverseEachEpoch) {
  EpochDealer d(10);
  sgm::util::Rng rng(3);
  std::map<std::uint32_t, int> count;
  // Two complete epochs of 10 in batches of 5.
  for (int b = 0; b < 4; ++b)
    for (auto i : d.next(5, rng)) ++count[i];
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(count[i], 2);
}

TEST(EpochDealer, SetEpochUsesGivenMultiset) {
  EpochDealer d(100);
  sgm::util::Rng rng(4);
  d.set_epoch({7, 7, 9}, rng);
  std::map<std::uint32_t, int> count;
  for (auto i : d.next(6, rng)) ++count[i];  // exactly two epochs
  EXPECT_EQ(count[7], 4);
  EXPECT_EQ(count[9], 2);
  EXPECT_EQ(count.size(), 2u);
}

TEST(EpochDealer, RejectsEmptyEpoch) {
  EpochDealer d(4);
  sgm::util::Rng rng(5);
  EXPECT_THROW(d.set_epoch({}, rng), std::invalid_argument);
}

TEST(UniformSampler, CoversUniverse) {
  sgm::samplers::UniformSampler s(16);
  sgm::util::Rng rng(6);
  std::map<std::uint32_t, int> count;
  for (int b = 0; b < 4; ++b)
    for (auto i : s.next_batch(8, rng)) ++count[i];
  EXPECT_EQ(count.size(), 16u);  // two epochs touch everything
}

// ----------------------------------------------------------------- MIS ----

Matrix line_points(std::size_t n) {
  Matrix pts(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    pts(i, 0) = static_cast<double>(i) / n;
    pts(i, 1) = 0.0;
  }
  return pts;
}

TEST(MisSampler, UniformBeforeFirstRefresh) {
  const Matrix pts = line_points(50);
  sgm::samplers::MisOptions opt;
  sgm::samplers::MisSampler s(pts, opt);
  EXPECT_NEAR(s.probability(3), 1.0 / 50, 1e-12);
}

TEST(MisSampler, ProbabilityTracksLoss) {
  const Matrix pts = line_points(100);
  sgm::samplers::MisOptions opt;
  opt.refresh_every = 1;
  opt.uniform_floor = 0.0;
  sgm::samplers::MisSampler s(pts, opt);
  sgm::util::Rng rng(7);
  // Loss = 9 for the first half, 1 for the second.
  auto eval = [](const std::vector<std::uint32_t>& rows) {
    std::vector<double> loss(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
      loss[i] = rows[i] < 50 ? 9.0 : 1.0;
    return loss;
  };
  s.maybe_refresh(0, eval, rng);
  EXPECT_NEAR(s.probability(10) / s.probability(90), 9.0, 1e-9);
}

TEST(MisSampler, SeededModeAssignsNearestSeedLoss) {
  const Matrix pts = line_points(100);
  sgm::samplers::MisOptions opt;
  opt.refresh_every = 1;
  opt.num_seeds = 10;
  opt.uniform_floor = 0.0;
  sgm::samplers::MisSampler s(pts, opt);
  sgm::util::Rng rng(8);
  std::size_t evaluated = 0;
  auto eval = [&](const std::vector<std::uint32_t>& rows) {
    evaluated = rows.size();
    std::vector<double> loss(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
      loss[i] = rows[i] < 50 ? 5.0 : 1.0;
    return loss;
  };
  s.maybe_refresh(0, eval, rng);
  EXPECT_EQ(evaluated, 10u);  // seeds only, not the full cloud
  EXPECT_EQ(s.loss_evaluations(), 10u);
  // Points deep in each half should inherit their half's seed loss.
  EXPECT_GT(s.probability(5), s.probability(95));
}

TEST(MisSampler, RespectsRefreshPeriod) {
  const Matrix pts = line_points(20);
  sgm::samplers::MisOptions opt;
  opt.refresh_every = 100;
  sgm::samplers::MisSampler s(pts, opt);
  sgm::util::Rng rng(9);
  int calls = 0;
  auto eval = [&](const std::vector<std::uint32_t>& rows) {
    ++calls;
    return std::vector<double>(rows.size(), 1.0);
  };
  for (std::uint64_t it = 0; it < 250; ++it) s.maybe_refresh(it, eval, rng);
  EXPECT_EQ(calls, 3);  // at 0, 100, 200
}

TEST(MisSampler, UniformFloorKeepsAllReachable) {
  const Matrix pts = line_points(10);
  sgm::samplers::MisOptions opt;
  opt.refresh_every = 1;
  opt.uniform_floor = 0.1;
  sgm::samplers::MisSampler s(pts, opt);
  sgm::util::Rng rng(10);
  auto eval = [](const std::vector<std::uint32_t>& rows) {
    std::vector<double> loss(rows.size(), 0.0);
    loss[0] = 100.0;  // all mass on one point without the floor
    return loss;
  };
  s.maybe_refresh(0, eval, rng);
  for (std::uint32_t i = 0; i < 10; ++i)
    EXPECT_GE(s.probability(i), 0.1 / 10 - 1e-12);
}

// ----------------------------------------------------------------- RAR ----

TEST(RarSampler, GrowsActiveSetByResidual) {
  sgm::util::Rng rng(11);
  sgm::samplers::RarOptions opt;
  opt.initial_points = 16;
  opt.added_per_refresh = 8;
  opt.candidate_pool = 64;
  opt.refresh_every = 10;
  sgm::samplers::RarSampler s(256, opt, rng);
  EXPECT_EQ(s.active_size(), 16u);
  auto eval = [](const std::vector<std::uint32_t>& rows) {
    std::vector<double> loss(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
      loss[i] = static_cast<double>(rows[i]);  // higher index = higher loss
    return loss;
  };
  s.maybe_refresh(10, eval, rng);
  EXPECT_EQ(s.active_size(), 24u);
  s.maybe_refresh(20, eval, rng);
  EXPECT_EQ(s.active_size(), 32u);
}

TEST(RarSampler, BatchesComeFromActiveSet) {
  sgm::util::Rng rng(12);
  sgm::samplers::RarOptions opt;
  opt.initial_points = 8;
  sgm::samplers::RarSampler s(100, opt, rng);
  auto batch = s.next_batch(32, rng);
  // All batch elements must be among the 8 active points.
  std::set<std::uint32_t> uniq(batch.begin(), batch.end());
  EXPECT_LE(uniq.size(), 8u);
}

}  // namespace
