// util::MpscRing + util::RingGate contract: FIFO per producer, bounded
// capacity with wraparound, lock-free full/empty answers, move-only
// payloads, multi-producer/multi-consumer safety (this suite runs under
// ThreadSanitizer in the serve-smoke CI job), and the spin-then-park
// protocol's no-lost-wakeup guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/mpsc_ring.hpp"

namespace {

using sgm::util::MpscRing;
using sgm::util::RingGate;

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(MpscRing<int>(65).capacity(), 128u);
  EXPECT_THROW(MpscRing<int>(1), std::invalid_argument);
}

TEST(MpscRing, FifoAndFullEmptySingleThreaded) {
  MpscRing<int> ring(4);
  int v = -1;
  EXPECT_FALSE(ring.try_pop(v)) << "fresh ring must be empty";
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "5th push into capacity 4 must fail";
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i) << "FIFO order";
  }
  EXPECT_FALSE(ring.try_pop(v));
}

// Many laps around a tiny ring: the slot sequence numbers must keep the
// push/pop pairing exact across wraparound.
TEST(MpscRing, WraparoundPreservesOrderAcrossManyLaps) {
  MpscRing<std::uint64_t> ring(8);
  std::uint64_t next_pop = 0, next_push = 0;
  while (next_pop < 10000) {
    // Push a small burst (as much as fits), then drain half.
    while (ring.try_push(next_push)) ++next_push;
    for (int i = 0; i < 5; ++i) {
      std::uint64_t v = 0;
      if (!ring.try_pop(v)) break;
      ASSERT_EQ(v, next_pop);
      ++next_pop;
    }
  }
}

TEST(MpscRing, MoveOnlyPayloadsMoveThrough) {
  MpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 7);
}

// Multi-producer, single-consumer: every pushed value arrives exactly once
// and each producer's values arrive in its push order.
TEST(MpscRing, MpscStressDeliversEverythingInPerProducerOrder) {
  constexpr std::size_t kProducers = 4, kPerProducer = 5000;
  MpscRing<std::uint64_t> ring(256);
  RingGate gate;

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = (static_cast<std::uint64_t>(p) << 32) | i;
        while (!ring.try_push(v)) std::this_thread::yield();
        gate.notify();
      }
    });
  }

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::size_t received = 0, order_errors = 0;
  while (received < kProducers * kPerProducer) {
    std::uint64_t v = 0;
    if (ring.try_pop(v)) {
      const std::size_t p = v >> 32;
      const std::uint64_t seq = v & 0xffffffffu;
      if (p >= kProducers || seq != next_seq[p]++) ++order_errors;
      ++received;
      continue;
    }
    // Full park protocol (prepare / recheck / wait) — exercising exactly
    // what the batcher worker runs.
    const RingGate::Ticket t = gate.prepare_wait();
    if (ring.try_pop(v)) {
      gate.cancel_wait();
      const std::size_t p = v >> 32;
      const std::uint64_t seq = v & 0xffffffffu;
      if (p >= kProducers || seq != next_seq[p]++) ++order_errors;
      ++received;
      continue;
    }
    gate.wait(t);
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(order_errors, 0u);
  std::uint64_t v = 0;
  EXPECT_FALSE(ring.try_pop(v)) << "nothing left after full drain";
}

// Multi-producer, multi-consumer (the response-slot freelist pattern):
// every value is delivered to exactly one consumer.
TEST(MpscRing, MpmcStressDeliversEachValueExactlyOnce) {
  constexpr std::size_t kThreads = 4, kPerProducer = 2000;
  constexpr std::size_t kTotal = kThreads * kPerProducer;
  MpscRing<std::uint32_t> ring(128);

  std::vector<std::atomic<int>> seen(kTotal);
  for (auto& s : seen) s.store(0);
  std::atomic<std::size_t> popped{0};

  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kThreads; ++p) {
    threads.emplace_back([&, p] {  // producer
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const auto v = static_cast<std::uint32_t>(p * kPerProducer + i);
        while (!ring.try_push(v)) std::this_thread::yield();
      }
    });
    threads.emplace_back([&] {  // consumer
      std::uint32_t v = 0;
      while (popped.load(std::memory_order_relaxed) < kTotal) {
        if (ring.try_pop(v)) {
          seen[v].fetch_add(1, std::memory_order_relaxed);
          popped.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < kTotal; ++i)
    ASSERT_EQ(seen[i].load(), 1) << "value " << i;
}

// The payload written before try_push must be visible to the popping
// thread (release/acquire through the slot sequence). A plain (non-atomic)
// field carried through the ring is exactly what TSan checks here.
TEST(MpscRing, PushPublishesPayloadWrites) {
  struct Payload {
    std::uint64_t a = 0, b = 0;
  };
  MpscRing<Payload*> ring(16);
  constexpr std::size_t kItems = 20000;
  std::vector<Payload> pool(kItems);

  std::thread producer([&] {
    for (std::size_t i = 0; i < kItems; ++i) {
      pool[i].a = i;
      pool[i].b = ~i;
      while (!ring.try_push(&pool[i])) std::this_thread::yield();
    }
  });
  std::size_t bad = 0;
  for (std::size_t i = 0; i < kItems; ++i) {
    Payload* p = nullptr;
    while (!ring.try_pop(p)) std::this_thread::yield();
    if (p->a != i || p->b != ~i) ++bad;
  }
  producer.join();
  EXPECT_EQ(bad, 0u);
}

TEST(RingGate, NotifyAfterPrepareWakesTicketHolder) {
  RingGate gate;
  const RingGate::Ticket t = gate.prepare_wait();
  std::thread notifier([&] { gate.notify_all(); });
  gate.wait(t);  // must return; a lost wakeup would hang the test
  notifier.join();
}

TEST(RingGate, WaitUntilTimesOutWithoutNotify) {
  RingGate gate;
  const RingGate::Ticket t = gate.prepare_wait();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
  EXPECT_FALSE(gate.wait_until(t, deadline));
}

TEST(RingGate, NotifyBeforeWaitIsNotLost) {
  // prepare -> (producer notifies) -> wait: the epoch ticket guarantees the
  // wait returns immediately instead of parking forever.
  RingGate gate;
  const RingGate::Ticket t = gate.prepare_wait();
  gate.notify_all();
  gate.wait(t);  // returns without any further notify
}

}  // namespace
