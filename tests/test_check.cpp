// Unit tests for the contract macros (src/util/check.hpp): exception
// types, message structure, DCHECK's debug/release split and the
// SGM_AUDIT environment gate.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/check.hpp"

namespace {

using sgm::util::CheckError;

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(SGM_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(SGM_CHECK_ARG(true, "unused"));
  EXPECT_NO_THROW(SGM_CHECK_BOUNDS(0 < 1));
}

TEST(Check, FailureThrowsCheckError) {
  EXPECT_THROW(SGM_CHECK(false), CheckError);
  // CheckError derives std::runtime_error so existing catch sites treat an
  // invariant violation as the internal error it is.
  EXPECT_THROW(SGM_CHECK(false), std::runtime_error);
}

TEST(Check, ArgAndBoundsFlavorsPreserveExceptionTypes) {
  EXPECT_THROW(SGM_CHECK_ARG(false, "bad arg"), std::invalid_argument);
  EXPECT_THROW(SGM_CHECK_BOUNDS(false, "bad index"), std::out_of_range);
}

TEST(Check, MessageCarriesExpressionFileLineAndParts) {
  std::string what;
  try {
    const int version = 3, prev = 7;
    SGM_CHECK(version > prev, "went backwards: ", version, " after ", prev);
  } catch (const CheckError& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("SGM_CHECK failed"), std::string::npos) << what;
  EXPECT_NE(what.find("version > prev"), std::string::npos) << what;
  EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
  EXPECT_NE(what.find("went backwards: 3 after 7"), std::string::npos)
      << what;
}

TEST(Check, MessageWithoutPartsStillStructured) {
  std::string what;
  try {
    SGM_CHECK_ARG(false);
  } catch (const std::invalid_argument& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("SGM_CHECK_ARG failed: false"), std::string::npos)
      << what;
}

TEST(Check, DcheckEvaluatesOnlyInDebugBuilds) {
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return true;
  };
  SGM_DCHECK(touch());
#ifdef SGM_DEBUG_CHECKS
  EXPECT_EQ(evaluations, 1);
  EXPECT_THROW(SGM_DCHECK(false), CheckError);
#else
  // Release: compiled but never evaluated — zero cost on hot paths.
  EXPECT_EQ(evaluations, 0);
  EXPECT_NO_THROW(SGM_DCHECK(false));
#endif
}

TEST(Check, AuditGateFollowsEnvironment) {
  int runs = 0;
  auto sweep = [&runs] { ++runs; };
  SGM_AUDIT(sweep());
  // audits_enabled() reads SGM_AUDIT once per process; whichever way it
  // resolved, the macro must agree with it.
  EXPECT_EQ(runs, sgm::util::audits_enabled() ? 1 : 0);
}

}  // namespace
