// Tier-2 end-to-end regression harness (ctest label `tier2`).
//
// Every scenario in the registry is trained for its smoke budget under
// uniform and SGM sampling, asserting for each:
//  (a) training reduces the loss (last recorded mean loss < first);
//  (b) the best validation error beats the scenario's per-metric envelope
//      under BOTH samplers;
//  (c) the SGM run is byte-identical at num_threads = 1 and 4 — every
//      recorded loss and validation error bitwise equal — with the thread
//      count applied to BOTH the sampler rebuilds (PR 2) and the training
//      step's threaded forward/backward tape kernels (PR 4);
//  (d) the scenario's incremental-refresh configuration (PR 5:
//      ScenarioConfig::sgm_incremental — IncrementalRefreshEngine with
//      output-weighted rebuilds and the dirty-fraction-aware cadence) also
//      trains inside the envelopes, actually rebuilds, and stays
//      byte-identical at 1 vs 4 threads.
//
// The smoke budgets keep each scenario in the seconds range; the harness is
// the one-invocation answer to "does the pipeline still work" after any
// trainer/sampler/refresh-path change.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/sgm_sampler.hpp"
#include "history_compare.hpp"
#include "pinn/point_cloud.hpp"
#include "pinn/scenario.hpp"
#include "pinn/trainer.hpp"
#include "samplers/uniform.hpp"
#include "serve/batcher.hpp"
#include "serve/model_registry.hpp"

namespace {

using sgm::pinn::ScenarioConfig;
using sgm::pinn::ScenarioRegistry;
using sgm::pinn::ScenarioScale;
using sgm::pinn::TrainHistory;

TrainHistory run_uniform(const ScenarioConfig& cfg) {
  sgm::util::Rng net_rng(cfg.net_seed);
  sgm::nn::Mlp net(cfg.net, net_rng);
  sgm::samplers::UniformSampler sampler(
      static_cast<std::uint32_t>(cfg.problem->interior_points().rows()));
  sgm::pinn::Trainer trainer(*cfg.problem, net, sampler, cfg.trainer);
  return trainer.run();
}

TrainHistory run_sgm(const ScenarioConfig& cfg, std::size_t num_threads) {
  sgm::util::Rng net_rng(cfg.net_seed);
  sgm::nn::Mlp net(cfg.net, net_rng);
  sgm::core::SgmOptions sopt = cfg.sgm;
  sopt.num_threads = num_threads;
  // Thread both the sampler rebuilds AND the training-step forward/backward
  // kernels: the byte-identity assertion below covers the whole pipeline.
  sgm::pinn::TrainerOptions topt = cfg.trainer;
  topt.num_threads = num_threads;
  sgm::core::SgmSampler sampler(cfg.problem->interior_points(), sopt);
  sgm::pinn::Trainer trainer(*cfg.problem, net, sampler, topt);
  return trainer.run();
}

struct IncrementalRun {
  TrainHistory history;
  std::uint64_t rebuilds = 0;
};

IncrementalRun run_sgm_incremental(const ScenarioConfig& cfg,
                                   std::size_t num_threads) {
  sgm::util::Rng net_rng(cfg.net_seed);
  sgm::nn::Mlp net(cfg.net, net_rng);
  sgm::core::SgmOptions sopt = cfg.sgm_incremental;
  sopt.num_threads = num_threads;
  sgm::pinn::TrainerOptions topt = cfg.trainer;
  topt.num_threads = num_threads;
  sgm::core::SgmSampler sampler(cfg.problem->interior_points(), sopt);
  // Output-weighted rebuilds drive the dirty tracking: the provider is the
  // live network, evaluated over all points at each rebuild boundary.
  sampler.set_outputs_provider([&](const std::vector<std::uint32_t>& rows) {
    return net.forward(
        sgm::pinn::gather_rows(cfg.problem->interior_points(), rows));
  });
  sgm::pinn::Trainer trainer(*cfg.problem, net, sampler, topt);
  IncrementalRun run;
  run.history = trainer.run();
  run.rebuilds = sampler.rebuild_count();
  return run;
}

void expect_loss_decreased(const TrainHistory& history,
                           const std::string& label) {
  ASSERT_GE(history.records.size(), 2u) << label;
  EXPECT_LT(history.records.back().mean_loss,
            history.records.front().mean_loss)
      << label << ": training did not reduce the loss";
}

void expect_envelopes(const ScenarioConfig& cfg, const TrainHistory& history,
                      const std::string& label) {
  for (const auto& env : cfg.envelopes) {
    const double best = history.best_error(env.metric);
    EXPECT_LE(best, env.max_error)
        << label << ": metric '" << env.metric << "' best " << best
        << " misses the envelope " << env.max_error;
  }
}

class ScenarioE2E : public testing::TestWithParam<std::string> {};

TEST_P(ScenarioE2E, TrainsUnderUniformAndSgmWithThreadInvariance) {
  const std::string name = GetParam();
  const ScenarioConfig cfg =
      ScenarioRegistry::instance().make(name, ScenarioScale::kSmoke);
  ASSERT_EQ(cfg.problem->name(), name);
  ASSERT_FALSE(cfg.envelopes.empty())
      << name << ": scenarios must declare at least one envelope";

  const TrainHistory uniform = run_uniform(cfg);
  expect_loss_decreased(uniform, name + "/uniform");
  expect_envelopes(cfg, uniform, name + "/uniform");

  const TrainHistory sgm1 = run_sgm(cfg, /*num_threads=*/1);
  EXPECT_GT(sgm1.sampler_loss_evaluations, 0u)
      << name << ": SGM never refreshed";
  expect_loss_decreased(sgm1, name + "/sgm");
  expect_envelopes(cfg, sgm1, name + "/sgm");

  const TrainHistory sgm4 = run_sgm(cfg, /*num_threads=*/4);
  sgm::pinn::testutil::expect_identical_histories(
      sgm1, sgm4, name + "/sgm threads 1 vs 4");

  // (d) the incremental-refresh configuration: trains, rebuilds through the
  // engine, holds the envelopes, and is thread-invariant too.
  ASSERT_TRUE(cfg.sgm_incremental.incremental_refresh) << name;
  const IncrementalRun inc1 = run_sgm_incremental(cfg, /*num_threads=*/1);
  EXPECT_GT(inc1.history.sampler_loss_evaluations, 0u)
      << name << ": incremental SGM never refreshed";
  EXPECT_GE(inc1.rebuilds, 1u)
      << name << ": incremental engine never rebuilt";
  expect_loss_decreased(inc1.history, name + "/sgm-incremental");
  expect_envelopes(cfg, inc1.history, name + "/sgm-incremental");

  const IncrementalRun inc4 = run_sgm_incremental(cfg, /*num_threads=*/4);
  EXPECT_EQ(inc1.rebuilds, inc4.rebuilds) << name << "/sgm-incremental";
  sgm::pinn::testutil::expect_identical_histories(
      inc1.history, inc4.history, name + "/sgm-incremental threads 1 vs 4");
}

// The deployment leg: train -> publish a versioned checkpoint -> serve the
// same scenario through a FRESH registry (so every served weight went
// through the serialized bytes on disk) -> every batched response bitwise
// equals the trained network's own forward. This is the end-to-end claim
// behind the serving engine: checkpointing and batched serving are exactly
// invisible to the numbers.
TEST(ScenarioServe, TrainCheckpointServeRoundTripIsExact) {
  namespace fs = std::filesystem;
  const ScenarioConfig cfg =
      ScenarioRegistry::instance().make("poisson2d", ScenarioScale::kSmoke);
  sgm::util::Rng net_rng(cfg.net_seed);
  sgm::nn::Mlp net(cfg.net, net_rng);
  sgm::core::SgmSampler sampler(cfg.problem->interior_points(), cfg.sgm);
  sgm::pinn::Trainer trainer(*cfg.problem, net, sampler, cfg.trainer);
  const TrainHistory history = trainer.run();
  ASSERT_GE(history.records.size(), 2u);

  const std::string root =
      (fs::temp_directory_path() /
       ("sgm_e2e_serve_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(root);
  {
    sgm::serve::ModelRegistry publisher(root);
    EXPECT_EQ(publisher.publish("poisson2d", net), 1u);
  }

  // A fresh registry: the served model is reconstructed from the checkpoint
  // file, not shared state with the trainer.
  sgm::serve::ModelRegistry registry(root);
  sgm::serve::BatcherOptions bopt;
  bopt.max_batch = 16;
  bopt.num_threads = 2;
  sgm::serve::InferenceBatcher batcher(registry, bopt);

  const sgm::tensor::Matrix& pts = cfg.problem->interior_points();
  const std::size_t n = std::min<std::size_t>(pts.rows(), 64);
  const sgm::tensor::Matrix expected = net.forward(
      [&] {
        sgm::tensor::Matrix head(n, pts.cols());
        for (std::size_t r = 0; r < n; ++r)
          std::memcpy(head.row(r), pts.row(r),
                      pts.cols() * sizeof(double));
        return head;
      }());
  for (std::size_t r = 0; r < n; ++r) {
    const auto resp = batcher.query(
        "poisson2d",
        std::vector<double>(pts.row(r), pts.row(r) + pts.cols()));
    EXPECT_EQ(resp.version, 1u);
    ASSERT_EQ(resp.y.size(), expected.cols());
    EXPECT_EQ(std::memcmp(resp.y.data(), expected.row(r),
                          resp.y.size() * sizeof(double)),
              0)
        << "served prediction for point " << r
        << " differs from the trained network";
  }
  fs::remove_all(root);
}

TEST(ScenarioRegistry, ExposesAllBuiltinScenarios) {
  const auto names = ScenarioRegistry::instance().names();
  ASSERT_GE(names.size(), 6u);
  for (const char* expected :
       {"annular_ring_param", "burgers1d", "chip_thermal", "helmholtz2d",
        "ldc_zeroeq", "poisson2d"})
    EXPECT_TRUE(ScenarioRegistry::instance().contains(expected)) << expected;
}

TEST(ScenarioRegistry, RejectsDuplicatesAndUnknownNames) {
  auto& registry = ScenarioRegistry::instance();
  EXPECT_THROW(registry.add("poisson2d", [](ScenarioScale) {
    return ScenarioConfig{};
  }),
               std::invalid_argument);
  EXPECT_THROW(registry.make("no_such_scenario", ScenarioScale::kSmoke),
               std::out_of_range);
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistered, ScenarioE2E,
    testing::ValuesIn(ScenarioRegistry::instance().names()),
    [](const testing::TestParamInfo<std::string>& info) { return info.param; });

}  // namespace
