// Checkpoint format contract (nn/serialize v2 binary + legacy v1 text).
//
// What is pinned here:
//  * save/load round-trips are BITWISE — every weight byte identical —
//    across every MlpConfig shape in the scenario registry (including the
//    Fourier-encoded ones, whose frequency matrices ride in the header);
//  * malformed input (wrong magic, unsupported version, truncation, any
//    single flipped byte) is a std::runtime_error, never UB: the FNV-1a64
//    trailer covers the whole body;
//  * the legacy v1 text format still loads through load_parameters(),
//    pinned by a committed fixture (tests/data/mlp_v1_text.ckpt) written by
//    the pre-PR-6 text writer.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "nn/mlp.hpp"
#include "nn/serialize.hpp"
#include "pinn/scenario.hpp"
#include "util/rng.hpp"

#ifndef SGM_TEST_DATA_DIR
#define SGM_TEST_DATA_DIR "tests/data"
#endif

namespace {

using sgm::nn::Mlp;
using sgm::nn::MlpConfig;
using sgm::tensor::Matrix;

void expect_bitwise_equal_params(const Mlp& a, const Mlp& b,
                                 const std::string& label) {
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size()) << label;
  for (std::size_t t = 0; t < pa.size(); ++t) {
    ASSERT_TRUE(pa[t]->same_shape(*pb[t])) << label << " tensor " << t;
    EXPECT_EQ(std::memcmp(pa[t]->data(), pb[t]->data(),
                          pa[t]->size() * sizeof(double)),
              0)
        << label << ": tensor " << t << " differs bitwise";
  }
}

Matrix probe_batch(std::size_t n, std::size_t dim, std::uint64_t seed) {
  sgm::util::Rng rng(seed);
  Matrix x(n, dim);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform();
  return x;
}

std::string serialized_v2(const Mlp& net, const sgm::nn::CheckpointMeta& meta) {
  std::ostringstream out(std::ios::binary);
  sgm::nn::save_model(net, out, meta);
  return out.str();
}

// ------------------------------------------------ registry-shape roundtrip --

class ScenarioShapes : public testing::TestWithParam<std::string> {};

TEST_P(ScenarioShapes, RoundTripsBitwise) {
  const auto cfg = sgm::pinn::ScenarioRegistry::instance().make(
      GetParam(), sgm::pinn::ScenarioScale::kSmoke);
  sgm::util::Rng rng(cfg.net_seed);
  Mlp original(cfg.net, rng);

  // Parameter-only API into a differently-initialized same-shape net.
  Mlp reloaded(cfg.net, rng);
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  sgm::nn::save_parameters(original, stream);
  sgm::nn::load_parameters(reloaded, stream);
  expect_bitwise_equal_params(original, reloaded, GetParam() + "/params");

  // Full-model API: architecture reconstructed from the header alone.
  sgm::nn::CheckpointMeta meta;
  meta.scenario = GetParam();
  meta.model_version = 7;
  std::istringstream in(serialized_v2(original, meta), std::ios::binary);
  const sgm::nn::LoadedModel loaded = sgm::nn::load_model(in);
  EXPECT_EQ(loaded.info.meta.scenario, GetParam());
  EXPECT_EQ(loaded.info.meta.model_version, 7u);
  EXPECT_EQ(loaded.info.format_version, sgm::nn::kCheckpointFormatVersion);
  EXPECT_NE(loaded.info.checksum, 0u);
  expect_bitwise_equal_params(original, *loaded.model, GetParam() + "/model");

  // The reconstructed model (activation singleton, rebuilt encoding) must
  // predict bitwise identically, not just share weights.
  const Matrix x = probe_batch(16, cfg.net.input_dim, 99);
  const Matrix ya = original.forward(x);
  const Matrix yb = loaded.model->forward(x);
  ASSERT_TRUE(ya.same_shape(yb));
  EXPECT_EQ(
      std::memcmp(ya.data(), yb.data(), ya.size() * sizeof(double)), 0)
      << GetParam() << ": reloaded model predicts differently";
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistered, ScenarioShapes,
    testing::ValuesIn(sgm::pinn::ScenarioRegistry::instance().names()),
    [](const testing::TestParamInfo<std::string>& info) { return info.param; });

// ------------------------------------------------------------- error paths --

MlpConfig small_config() {
  MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 1;
  cfg.width = 8;
  cfg.depth = 2;
  return cfg;
}

TEST(SerializeErrors, UnsupportedFormatVersionIsAnError) {
  sgm::util::Rng rng(1);
  Mlp net(small_config(), rng);
  std::string raw = serialized_v2(net, {});
  raw[8] = 3;  // format-version field (little-endian u32 after the magic)
  std::istringstream in(raw, std::ios::binary);
  EXPECT_THROW(sgm::nn::load_model(in), std::runtime_error);
  std::istringstream in2(raw, std::ios::binary);
  Mlp target(small_config(), rng);
  EXPECT_THROW(sgm::nn::load_parameters(target, in2), std::runtime_error);
}

TEST(SerializeErrors, TruncationIsAnError) {
  sgm::util::Rng rng(2);
  Mlp net(small_config(), rng);
  const std::string raw = serialized_v2(net, {});
  // Every truncation point — mid-magic, mid-header, mid-tensor, mid-trailer
  // — must be a clean error.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{11}, std::size_t{40},
        raw.size() / 2, raw.size() - 9, raw.size() - 1}) {
    std::istringstream in(raw.substr(0, keep), std::ios::binary);
    EXPECT_THROW(sgm::nn::load_model(in), std::runtime_error)
        << "kept " << keep << " of " << raw.size() << " bytes";
  }
}

TEST(SerializeErrors, ChecksumDetectsEverySingleFlippedByte) {
  sgm::util::Rng rng(3);
  Mlp net(small_config(), rng);
  const std::string raw = serialized_v2(net, {});
  // Flip one byte at a time across the whole file (magic, header, weights,
  // trailer); every corruption must surface as an exception — silent
  // acceptance of a corrupt model is the one unacceptable outcome.
  for (std::size_t off = 0; off < raw.size(); ++off) {
    std::string corrupt = raw;
    corrupt[off] = static_cast<char>(corrupt[off] ^ 0x20);
    std::istringstream in(corrupt, std::ios::binary);
    EXPECT_THROW(sgm::nn::load_model(in), std::exception)
        << "flipped byte at offset " << off;
  }
}

TEST(SerializeErrors, ShapeMismatchIsAnError) {
  sgm::util::Rng rng(4);
  Mlp net(small_config(), rng);
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  sgm::nn::save_parameters(net, stream);
  MlpConfig other = small_config();
  other.width = 16;
  Mlp wrong(other, rng);
  EXPECT_THROW(sgm::nn::load_parameters(wrong, stream), std::runtime_error);
}

TEST(SerializeErrors, GarbageIsAnError) {
  Mlp net(small_config(), *std::make_unique<sgm::util::Rng>(5));
  std::istringstream in("not a checkpoint at all", std::ios::binary);
  EXPECT_THROW(sgm::nn::load_parameters(net, in), std::runtime_error);
  std::istringstream in2("not a checkpoint at all", std::ios::binary);
  EXPECT_THROW(sgm::nn::load_model(in2), std::runtime_error);
}

// ------------------------------------------------------- legacy v1 fixture --

TEST(SerializeLegacy, CommittedV1TextFixtureStillLoads) {
  // The fixture was written by the pre-PR-6 text writer from exactly this
  // configuration and seed; %.17g text round-trips doubles exactly, so the
  // load must reproduce the original weights bitwise.
  MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 3;
  cfg.width = 16;
  cfg.depth = 3;
  sgm::util::Rng rng(20260808);
  Mlp original(cfg, rng);

  Mlp reloaded(cfg, rng);  // different init (rng advanced)
  const std::string path =
      std::string(SGM_TEST_DATA_DIR) + "/mlp_v1_text.ckpt";
  ASSERT_TRUE(std::filesystem::exists(path)) << path;
  sgm::nn::load_checkpoint(reloaded, path);
  expect_bitwise_equal_params(original, reloaded, "v1 fixture");
}

TEST(SerializeLegacy, V1FixtureRejectedByFullModelLoader) {
  const std::string path =
      std::string(SGM_TEST_DATA_DIR) + "/mlp_v1_text.ckpt";
  EXPECT_THROW(sgm::nn::load_model_file(path), std::runtime_error);
}

}  // namespace
