// Unit tests for the lock-free HDR-style latency histogram
// (src/util/histogram.hpp): bucket geometry, quantile edge cases and the
// empty/single-sample corners the serving metrics rely on.

#include <gtest/gtest.h>

#include <cstdint>

#include "util/histogram.hpp"

namespace {

using sgm::util::HistogramSnapshot;
using sgm::util::LatencyHistogram;

constexpr std::uint64_t kSubBuckets = 1ull << LatencyHistogram::kSubBucketBits;

TEST(Histogram, FirstBucketsAreExactNanoseconds) {
  for (std::uint64_t ns = 0; ns < kSubBuckets; ++ns) {
    EXPECT_EQ(LatencyHistogram::bucket_index(ns), ns);
    EXPECT_EQ(LatencyHistogram::bucket_upper_ns(ns), ns);
  }
}

TEST(Histogram, BucketBoundariesRoundTrip) {
  // Every bucket's inclusive upper bound must map back to that bucket, and
  // the next nanosecond must start the next bucket (except at the top).
  const std::size_t n = LatencyHistogram::bucket_count();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::uint64_t upper = LatencyHistogram::bucket_upper_ns(i);
    EXPECT_EQ(LatencyHistogram::bucket_index(upper), i) << "upper=" << upper;
    EXPECT_EQ(LatencyHistogram::bucket_index(upper + 1), i + 1)
        << "upper=" << upper;
  }
}

TEST(Histogram, UpperBoundsStrictlyIncrease) {
  const std::size_t n = LatencyHistogram::bucket_count();
  for (std::size_t i = 1; i < n; ++i)
    EXPECT_LT(LatencyHistogram::bucket_upper_ns(i - 1),
              LatencyHistogram::bucket_upper_ns(i));
}

TEST(Histogram, GeometricRelativeErrorBound) {
  // 16 sub-buckets per octave: a bucket's width never exceeds 1/16 of its
  // lower bound, which is what keeps quantile estimates within ~6%.
  const std::size_t n = LatencyHistogram::bucket_count();
  for (std::size_t i = kSubBuckets; i + 1 < n; ++i) {
    const std::uint64_t lo = LatencyHistogram::bucket_upper_ns(i - 1) + 1;
    const std::uint64_t hi = LatencyHistogram::bucket_upper_ns(i);
    EXPECT_LE(hi - lo + 1, (lo + kSubBuckets - 1) / kSubBuckets)
        << "bucket " << i;
  }
}

TEST(Histogram, HugeDurationsClampIntoTopBucket) {
  const std::size_t top = LatencyHistogram::bucket_count() - 1;
  EXPECT_EQ(LatencyHistogram::bucket_index(1ull << 40), top);
  EXPECT_EQ(LatencyHistogram::bucket_index(~0ull), top);
}

TEST(Histogram, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.total_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.snapshot().mean_seconds(), 0.0);
}

TEST(Histogram, SingleSample) {
  LatencyHistogram h;
  h.record_ns(1000);
  const std::uint64_t upper =
      LatencyHistogram::bucket_upper_ns(LatencyHistogram::bucket_index(1000));
  // With one sample, every quantile reports that sample's bucket bound.
  for (double q : {0.0, 0.001, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(h.quantile(q), static_cast<double>(upper) * 1e-9) << q;
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.snapshot().mean_seconds(), 1000e-9);
}

TEST(Histogram, QuantileClampsOutOfRangeQ) {
  LatencyHistogram h;
  h.record_ns(5);
  h.record_ns(500);
  EXPECT_DOUBLE_EQ(h.quantile(-3.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(42.0), h.quantile(1.0));
}

TEST(Histogram, QuantilesSplitExactCounts) {
  LatencyHistogram h;
  // 10 samples in the exact single-ns buckets 1..10: quantiles are exact.
  for (std::uint64_t ns = 1; ns <= 10; ++ns) h.record_ns(ns);
  EXPECT_DOUBLE_EQ(h.quantile(0.1), 1e-9);   // ceil(0.1*10)=1st sample
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5e-9);
  EXPECT_DOUBLE_EQ(h.quantile(0.51), 6e-9);  // ceil rounds up
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10e-9);
}

TEST(Histogram, NegativeSecondsClampToZero) {
  LatencyHistogram h;
  h.record(-1.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.snapshot().counts[0], 1u);  // bucket 0 == 0 ns
  EXPECT_DOUBLE_EQ(h.total_seconds(), 0.0);
}

TEST(Histogram, SumAndMeanTrackRecordedDurations) {
  LatencyHistogram h;
  h.record_ns(100);
  h.record_ns(300);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.total, 2u);
  EXPECT_EQ(snap.sum_ns, 400u);
  EXPECT_DOUBLE_EQ(snap.mean_seconds(), 200e-9);
}

TEST(Histogram, ResetClearsEverything) {
  LatencyHistogram h;
  h.record_ns(123456);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.total_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

}  // namespace
