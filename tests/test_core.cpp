// Tests for the SGM-PINN core: PGM construction, cluster bookkeeping,
// scoring, epoch building (Algorithm 1 lines 5-10), refresh scheduling,
// async rebuild and the assembled SgmSampler.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>

#include "core/async_rebuild.hpp"
#include "core/cluster_store.hpp"
#include "core/epoch_builder.hpp"
#include "core/pgm.hpp"
#include "core/refresh_scheduler.hpp"
#include "core/scorer.hpp"
#include "core/sgm_sampler.hpp"
#include "util/rng.hpp"

namespace {

using sgm::core::ClusterStore;
using sgm::core::SgmOptions;
using sgm::core::SgmSampler;
using sgm::graph::Clustering;
using sgm::tensor::Matrix;

Matrix random_cloud(std::size_t n, sgm::util::Rng& rng) {
  Matrix pts(n, 2);
  for (std::size_t i = 0; i < pts.size(); ++i) pts.data()[i] = rng.uniform();
  return pts;
}

SgmOptions fast_options() {
  SgmOptions opt;
  opt.pgm.knn.k = 6;
  opt.lrd.levels = 4;
  opt.lrd.er.method = sgm::graph::ErMethod::kSmoothed;
  opt.lrd.er.num_vectors = 6;
  opt.lrd.er.smoothing_iterations = 15;
  opt.tau_e = 10;
  opt.tau_g = 50;
  opt.rep_fraction = 0.25;
  opt.epoch.epoch_fraction = 0.5;
  return opt;
}

// ----------------------------------------------------------------- PGM ----

TEST(Pgm, BuildsConnectedKnnGraph) {
  sgm::util::Rng rng(1);
  const Matrix pts = random_cloud(300, rng);
  sgm::core::PgmOptions opt;
  opt.knn.k = 8;
  auto g = sgm::core::build_pgm(pts, nullptr, opt);
  EXPECT_EQ(g.num_nodes(), 300u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Pgm, HnswBackendWorks) {
  sgm::util::Rng rng(2);
  const Matrix pts = random_cloud(400, rng);
  sgm::core::PgmOptions opt;
  opt.knn.k = 8;
  opt.backend = sgm::core::KnnBackend::kHnsw;
  auto g = sgm::core::build_pgm(pts, nullptr, opt);
  EXPECT_EQ(g.num_nodes(), 400u);
  EXPECT_GT(g.num_edges(), 400u);
}

TEST(Pgm, OutputFeaturesChangeTopology) {
  // Two spatially mixed populations with wildly different outputs should
  // separate when outputs join the metric.
  sgm::util::Rng rng(3);
  const std::size_t n = 200;
  const Matrix pts = random_cloud(n, rng);
  Matrix outputs(n, 1);
  for (std::size_t i = 0; i < n; ++i) outputs(i, 0) = (i % 2) ? 100.0 : -100.0;
  sgm::core::PgmOptions opt;
  opt.knn.k = 4;
  auto g_spatial = sgm::core::build_pgm(pts, nullptr, opt);
  opt.output_feature_weight = 5.0;
  auto g_output = sgm::core::build_pgm(pts, &outputs, opt);
  // Count parity-crossing edges: with output features they should shrink.
  auto crossings = [](const sgm::graph::CsrGraph& g) {
    std::size_t c = 0;
    for (const auto& e : g.edges())
      if ((e.u % 2) != (e.v % 2)) ++c;
    return c;
  };
  EXPECT_LT(crossings(g_output), crossings(g_spatial) / 4 + 1);
}

TEST(Pgm, StandardizeColumnsZeroMeanUnitVar) {
  Matrix m{{1, 10}, {2, 20}, {3, 30}, {4, 40}};
  const Matrix s = sgm::core::standardize_columns(m);
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0, var = 0;
    for (std::size_t r = 0; r < 4; ++r) mean += s(r, c);
    mean /= 4;
    for (std::size_t r = 0; r < 4; ++r) var += s(r, c) * s(r, c);
    var /= 4;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    EXPECT_NEAR(var, 1.0, 1e-12);
  }
}

// --------------------------------------------------------- ClusterStore ----

Clustering tiny_clustering() {
  Clustering c;
  c.node_cluster = {0, 0, 0, 1, 1, 2, 2, 2, 2, 2};
  c.num_clusters = 3;
  c.cluster_diameter = {0.1, 0.2, 0.3};
  return c;
}

TEST(ClusterStore, MembersAndSizes) {
  ClusterStore store(tiny_clustering());
  EXPECT_EQ(store.num_clusters(), 3u);
  EXPECT_EQ(store.size(0), 3u);
  EXPECT_EQ(store.size(2), 5u);
  EXPECT_EQ(store.cluster_of(4), 1u);
  EXPECT_EQ(store.members(1).size(), 2u);
}

TEST(ClusterStore, RepresentativesRespectFractionAndFloor) {
  ClusterStore store(tiny_clustering());
  sgm::util::Rng rng(4);
  auto reps = store.sample_representatives(0.4, rng);
  // ceil(0.4*3)=2, ceil(0.4*2)=1, ceil(0.4*5)=2 => 5 reps.
  EXPECT_EQ(reps.node.size(), 5u);
  std::map<std::uint32_t, int> per_cluster;
  for (std::size_t i = 0; i < reps.node.size(); ++i) {
    ++per_cluster[reps.cluster[i]];
    EXPECT_EQ(store.cluster_of(reps.node[i]), reps.cluster[i]);
  }
  EXPECT_EQ(per_cluster[0], 2);
  EXPECT_EQ(per_cluster[1], 1);
  EXPECT_EQ(per_cluster[2], 2);
  // Tiny fraction still yields one per cluster (the floor).
  auto reps2 = store.sample_representatives(0.01, rng);
  EXPECT_EQ(reps2.node.size(), 3u);
}

TEST(ClusterStore, RepresentativesAreDistinctWithinCluster) {
  ClusterStore store(tiny_clustering());
  sgm::util::Rng rng(5);
  auto reps = store.sample_representatives(1.0, rng);
  std::set<std::uint32_t> uniq(reps.node.begin(), reps.node.end());
  EXPECT_EQ(uniq.size(), 10u);
}

// ---------------------------------------------------------------- Scorer --

TEST(Scorer, LossOnlyNormalizedToMeanOne) {
  ClusterStore store(tiny_clustering());
  sgm::util::Rng rng(6);
  auto reps = store.sample_representatives(1.0, rng);
  std::vector<double> loss(reps.node.size());
  for (std::size_t i = 0; i < reps.node.size(); ++i)
    loss[i] = reps.cluster[i] == 2 ? 8.0 : 1.0;  // cluster 2 is hot
  auto scores =
      sgm::core::score_clusters(store, reps, loss, {}, {});
  EXPECT_GT(scores.combined[2], scores.combined[0]);
  const double mean = (scores.combined[0] + scores.combined[1] +
                       scores.combined[2]) /
                      3.0;
  EXPECT_NEAR(mean, 1.0, 0.35);
}

TEST(Scorer, IsrTermRaisesUnstableCluster) {
  ClusterStore store(tiny_clustering());
  sgm::util::Rng rng(7);
  auto reps = store.sample_representatives(1.0, rng);
  std::vector<double> loss(reps.node.size(), 1.0);  // flat losses
  std::vector<double> isr(reps.node.size());
  for (std::size_t i = 0; i < reps.node.size(); ++i)
    isr[i] = reps.cluster[i] == 1 ? 10.0 : 0.1;
  sgm::core::ScorerOptions opt;
  opt.isr_weight = 1.0;
  auto with_isr = sgm::core::score_clusters(store, reps, loss, isr, opt);
  auto without = sgm::core::score_clusters(store, reps, loss, {}, opt);
  EXPECT_GT(with_isr.combined[1], with_isr.combined[0]);
  EXPECT_NEAR(without.combined[1], without.combined[0], 1e-9);
}

TEST(Scorer, UnseenClusterGetsNeutralScore) {
  ClusterStore store(tiny_clustering());
  // Handcraft reps that skip cluster 1 entirely.
  ClusterStore::Representatives reps;
  reps.node = {0, 5};
  reps.cluster = {0, 2};
  auto scores = sgm::core::score_clusters(store, reps, {2.0, 2.0}, {}, {});
  EXPECT_DOUBLE_EQ(scores.combined[1], 1.0);
}

TEST(Scorer, SizeMismatchThrows) {
  ClusterStore store(tiny_clustering());
  ClusterStore::Representatives reps;
  reps.node = {0, 5};
  reps.cluster = {0, 2};
  EXPECT_THROW(sgm::core::score_clusters(store, reps, {1.0}, {}, {}),
               std::invalid_argument);
}

// ----------------------------------------------------------- EpochBuilder --

TEST(EpochBuilder, FloorOfOnePerCluster) {
  ClusterStore store(tiny_clustering());
  sgm::util::Rng rng(8);
  sgm::core::EpochBuilderOptions opt;
  opt.epoch_fraction = 0.3;  // tiny epoch
  opt.ratio_min = 0.01;
  opt.ratio_max = 10.0;
  // Give cluster 0 all the mass; clusters 1 and 2 must still appear.
  auto epoch =
      sgm::core::build_epoch(store, {100.0, 0.0, 0.0}, opt, rng);
  EXPECT_GE(epoch.per_cluster[1], 1u);
  EXPECT_GE(epoch.per_cluster[2], 1u);
}

TEST(EpochBuilder, HigherScoreMoreSamples) {
  // Two equal-size clusters, one hot.
  Clustering c;
  c.num_clusters = 2;
  c.node_cluster.resize(200);
  for (std::size_t i = 0; i < 200; ++i) c.node_cluster[i] = i < 100 ? 0 : 1;
  c.cluster_diameter = {0, 0};
  ClusterStore store(std::move(c));
  sgm::util::Rng rng(9);
  sgm::core::EpochBuilderOptions opt;
  opt.epoch_fraction = 0.4;
  auto epoch = sgm::core::build_epoch(store, {5.0, 1.0}, opt, rng);
  EXPECT_GT(epoch.per_cluster[0], 2 * epoch.per_cluster[1]);
}

TEST(EpochBuilder, EpochSizeNearTarget) {
  Clustering c;
  c.num_clusters = 10;
  c.node_cluster.resize(1000);
  for (std::size_t i = 0; i < 1000; ++i)
    c.node_cluster[i] = static_cast<std::uint32_t>(i / 100);
  c.cluster_diameter.assign(10, 0.0);
  ClusterStore store(std::move(c));
  sgm::util::Rng rng(10);
  std::vector<double> scores(10);
  for (int i = 0; i < 10; ++i) scores[i] = 1.0 + 0.1 * i;
  sgm::core::EpochBuilderOptions opt;
  opt.epoch_fraction = 0.25;
  auto epoch = sgm::core::build_epoch(store, scores, opt, rng);
  EXPECT_NEAR(static_cast<double>(epoch.indices.size()), 250.0, 30.0);
}

TEST(EpochBuilder, BudgetExactUnderClampPressure) {
  // 60 tiny clusters that all pin at the floor of 1 plus one big cluster:
  // without residual redistribution the floor contributions inflate the
  // epoch well past epoch_fraction * n.
  Clustering c;
  c.num_clusters = 61;
  c.node_cluster.resize(1000);
  for (std::size_t i = 0; i < 120; ++i)
    c.node_cluster[i] = static_cast<std::uint32_t>(i / 2);  // sizes 2
  for (std::size_t i = 120; i < 1000; ++i) c.node_cluster[i] = 60;
  c.cluster_diameter.assign(61, 0.0);
  ClusterStore store(std::move(c));
  sgm::util::Rng rng(30);
  std::vector<double> scores(61, 0.1);
  scores[60] = 10.0;  // the big cluster carries nearly all the mass
  sgm::core::EpochBuilderOptions opt;
  opt.epoch_fraction = 0.1;  // target 100 of 1000
  auto epoch = sgm::core::build_epoch(store, scores, opt, rng);
  EXPECT_EQ(epoch.indices.size(), 100u);
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < epoch.per_cluster.size(); ++k) {
    EXPECT_GE(epoch.per_cluster[k], 1u);
    EXPECT_LE(epoch.per_cluster[k], store.size(static_cast<std::uint32_t>(k)));
    total += epoch.per_cluster[k];
  }
  EXPECT_EQ(total, 100u);
}

TEST(EpochBuilder, BudgetClampedToClusterCountAndUniverse) {
  ClusterStore store(tiny_clustering());  // 10 nodes, 3 clusters
  sgm::util::Rng rng(31);
  sgm::core::EpochBuilderOptions opt;
  // Target below the per-cluster floor: realized size is the cluster count.
  opt.epoch_fraction = 0.01;
  auto tiny = sgm::core::build_epoch(store, {1.0, 1.0, 1.0}, opt, rng);
  EXPECT_EQ(tiny.indices.size(), 3u);
  // Target above the universe: realized size is n.
  opt.epoch_fraction = 3.0;
  auto full = sgm::core::build_epoch(store, {1.0, 1.0, 1.0}, opt, rng);
  EXPECT_EQ(full.indices.size(), 10u);
}

TEST(EpochBuilder, NoDuplicateWithinCluster) {
  ClusterStore store(tiny_clustering());
  sgm::util::Rng rng(11);
  sgm::core::EpochBuilderOptions opt;
  opt.epoch_fraction = 1.0;  // ask for everything
  auto epoch = sgm::core::build_epoch(store, {1.0, 1.0, 1.0}, opt, rng);
  std::set<std::uint32_t> uniq(epoch.indices.begin(), epoch.indices.end());
  EXPECT_EQ(uniq.size(), epoch.indices.size());
}

// ------------------------------------------------------ RefreshScheduler --

TEST(RefreshScheduler, TauESchedule) {
  sgm::core::RefreshScheduler sched(7, 25);
  EXPECT_TRUE(sched.should_score(0));
  EXPECT_FALSE(sched.should_score(3));
  EXPECT_FALSE(sched.should_score(6));
  EXPECT_TRUE(sched.should_score(7));
  EXPECT_FALSE(sched.should_score(13));
  EXPECT_TRUE(sched.should_score(14));
}

TEST(RefreshScheduler, TauGScheduleSkipsZero) {
  sgm::core::RefreshScheduler sched(7, 25);
  EXPECT_FALSE(sched.should_rebuild(0));
  EXPECT_FALSE(sched.should_rebuild(24));
  EXPECT_TRUE(sched.should_rebuild(25));
  EXPECT_FALSE(sched.should_rebuild(49));
  EXPECT_TRUE(sched.should_rebuild(50));
}

TEST(RefreshScheduler, DisabledRebuild) {
  sgm::core::RefreshScheduler sched(5, 0);
  EXPECT_FALSE(sched.should_rebuild(1000));
}

// ----------------------------------------------------------- SgmSampler ---

TEST(SgmSampler, InitialEpochIsFullUniverse) {
  sgm::util::Rng rng(12);
  const Matrix pts = random_cloud(200, rng);
  SgmSampler s(pts, fast_options());
  EXPECT_GT(s.clusters().num_clusters(), 1u);
  auto batch = s.next_batch(64, rng);
  EXPECT_EQ(batch.size(), 64u);
  for (auto i : batch) EXPECT_LT(i, 200u);
}

TEST(SgmSampler, RefreshBuildsBiasedEpoch) {
  sgm::util::Rng rng(13);
  const Matrix pts = random_cloud(400, rng);
  SgmOptions opt = fast_options();
  opt.epoch.epoch_fraction = 0.25;
  SgmSampler s(pts, opt);
  // Loss concentrated in the lower-left quadrant.
  auto eval = [&](const std::vector<std::uint32_t>& rows) {
    std::vector<double> loss(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const bool hot = pts(rows[i], 0) < 0.5 && pts(rows[i], 1) < 0.5;
      loss[i] = hot ? 10.0 : 0.1;
    }
    return loss;
  };
  s.maybe_refresh(0, eval, rng);
  EXPECT_GT(s.last_epoch_size(), 0u);
  EXPECT_GT(s.loss_evaluations(), 0u);

  // Sample many batches; the hot quadrant (25% of area) should receive
  // clearly more than its uniform share.
  std::size_t hot = 0, total = 0;
  for (int b = 0; b < 50; ++b) {
    for (auto i : s.next_batch(32, rng)) {
      hot += (pts(i, 0) < 0.5 && pts(i, 1) < 0.5);
      ++total;
    }
  }
  const double share = static_cast<double>(hot) / total;
  EXPECT_GT(share, 0.35) << "hot share " << share;
}

TEST(SgmSampler, EveryClusterRepresentedInEpoch) {
  sgm::util::Rng rng(14);
  const Matrix pts = random_cloud(300, rng);
  SgmOptions opt = fast_options();
  opt.epoch.epoch_fraction = 0.1;
  SgmSampler s(pts, opt);
  auto eval = [](const std::vector<std::uint32_t>& rows) {
    return std::vector<double>(rows.size(), 1.0);
  };
  s.maybe_refresh(0, eval, rng);
  // Drain several epochs worth of batches and verify cluster coverage.
  std::set<std::uint32_t> seen_clusters;
  for (int b = 0; b < 80; ++b)
    for (auto i : s.next_batch(16, rng))
      seen_clusters.insert(s.clusters().cluster_of(i));
  EXPECT_EQ(seen_clusters.size(), s.clusters().num_clusters());
}

TEST(SgmSampler, TauGRebuildHappens) {
  sgm::util::Rng rng(15);
  const Matrix pts = random_cloud(150, rng);
  SgmOptions opt = fast_options();
  opt.tau_e = 5;
  opt.tau_g = 20;
  SgmSampler s(pts, opt);
  auto eval = [](const std::vector<std::uint32_t>& rows) {
    return std::vector<double>(rows.size(), 1.0);
  };
  for (std::uint64_t it = 0; it < 45; ++it) s.maybe_refresh(it, eval, rng);
  EXPECT_EQ(s.rebuild_count(), 2u);  // at 20 and 40
}

TEST(SgmSampler, IsrModeRuns) {
  sgm::util::Rng rng(16);
  const Matrix pts = random_cloud(250, rng);
  SgmOptions opt = fast_options();
  opt.use_isr = true;
  opt.isr.rank = 4;
  opt.isr.subspace_iterations = 3;
  SgmSampler s(pts, opt);
  EXPECT_EQ(s.name(), "sgm-s");
  auto eval = [&](const std::vector<std::uint32_t>& rows) {
    std::vector<double> loss(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
      loss[i] = std::exp(3.0 * pts(rows[i], 0));
    return loss;
  };
  s.maybe_refresh(0, eval, rng);
  EXPECT_FALSE(s.last_scores().mean_isr.empty());
  auto batch = s.next_batch(32, rng);
  EXPECT_EQ(batch.size(), 32u);
}

// --------------------------------------------------------- AsyncRebuilder --

TEST(AsyncRebuilder, ProducesClusteringInBackground) {
  sgm::util::Rng rng(17);
  const Matrix pts = random_cloud(300, rng);
  sgm::core::PgmOptions pgm;
  pgm.knn.k = 6;
  sgm::graph::LrdOptions lrd;
  lrd.levels = 4;
  lrd.er.num_vectors = 6;
  sgm::core::AsyncRebuilder rebuilder;
  rebuilder.launch(pts, nullptr, pgm, lrd);
  rebuilder.wait();
  auto result = rebuilder.try_take();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->node_cluster.size(), 300u);
  // A second take must return nothing.
  EXPECT_FALSE(rebuilder.try_take().has_value());
}

TEST(AsyncRebuilder, ProviderEvaluationChargedToRefreshSeconds) {
  // The async path evaluates the outputs provider synchronously on the
  // training thread; that time must show up in refresh_seconds() even
  // though the graph build itself overlaps training.
  sgm::util::Rng rng(19);
  const Matrix pts = random_cloud(150, rng);
  SgmOptions opt = fast_options();
  opt.async_rebuild = true;
  opt.tau_g = 5;
  opt.tau_e = 1000;  // one score refresh at it=0, then only the rebuild
  opt.rebuild_output_weight = 1.0;
  SgmSampler s(pts, opt);
  const double baseline = s.refresh_seconds();
  s.set_outputs_provider([&](const std::vector<std::uint32_t>& rows) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    Matrix out(rows.size(), 1);
    for (std::size_t i = 0; i < rows.size(); ++i)
      out(i, 0) = pts(rows[i], 0);
    return out;
  });
  auto eval = [](const std::vector<std::uint32_t>& rows) {
    return std::vector<double>(rows.size(), 1.0);
  };
  for (std::uint64_t it = 0; it < 6; ++it) s.maybe_refresh(it, eval, rng);
  // sleep_for's lower bound is guaranteed, so >= 20ms is deterministic.
  EXPECT_GE(s.refresh_seconds() - baseline, 0.020);
}

TEST(AsyncRebuilder, AsyncSamplerSwapsIn) {
  sgm::util::Rng rng(18);
  const Matrix pts = random_cloud(200, rng);
  SgmOptions opt = fast_options();
  opt.async_rebuild = true;
  opt.tau_g = 10;
  opt.tau_e = 5;
  SgmSampler s(pts, opt);
  auto eval = [](const std::vector<std::uint32_t>& rows) {
    return std::vector<double>(rows.size(), 1.0);
  };
  for (std::uint64_t it = 0; it < 200; ++it) {
    s.maybe_refresh(it, eval, rng);
    (void)s.next_batch(8, rng);
  }
  // Give any in-flight rebuild time to land, then poll once more.
  for (int spin = 0; spin < 100 && s.rebuild_count() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    s.maybe_refresh(1000 + spin, eval, rng);
  }
  EXPECT_GE(s.rebuild_count(), 1u);
}

}  // namespace
