// Tests for the validation-data substrate: the lid-driven-cavity FDM solver
// (against the published Ghia et al. 1982 benchmark profiles) and the
// analytic annular-Poiseuille reference.

#include <gtest/gtest.h>

#include <cmath>

#include "cfd/analytic.hpp"
#include "cfd/ldc_solver.hpp"

namespace {

using sgm::cfd::AnnularPoiseuille;
using sgm::cfd::LdcOptions;
using sgm::cfd::LdcSolution;

const LdcSolution& solved_cavity_re100() {
  static const LdcSolution sol = [] {
    LdcOptions opt;
    opt.n = 81;
    opt.reynolds = 100.0;
    opt.tolerance = 1e-7;
    return sgm::cfd::solve_lid_driven_cavity(opt);
  }();
  return sol;
}

TEST(LdcSolver, Converges) {
  const auto& sol = solved_cavity_re100();
  EXPECT_TRUE(sol.converged);
  EXPECT_GT(sol.iterations, 10);
}

TEST(LdcSolver, BoundaryConditionsHold) {
  const auto& sol = solved_cavity_re100();
  const int n = sol.n;
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(sol.u(0, i), 0.0);          // bottom wall
    EXPECT_DOUBLE_EQ(sol.u(n - 1, i), 1.0);      // moving lid
    EXPECT_DOUBLE_EQ(sol.v(0, i), 0.0);
  }
  // Side walls: skip j = n-1 (the lid corners belong to the moving lid).
  for (int j = 0; j < n - 1; ++j) {
    EXPECT_DOUBLE_EQ(sol.u(j, 0), 0.0);          // left wall
    EXPECT_DOUBLE_EQ(sol.u(j, n - 1), 0.0);      // right wall
  }
}

TEST(LdcSolver, MatchesGhiaUCenterline) {
  const auto& sol = solved_cavity_re100();
  for (const auto& [y, u_ref] : sgm::cfd::ghia_re100_u_centerline()) {
    const double u = sol.sample_u(0.5, y);
    // First-order upwind on an 81^2 grid: expect agreement within ~0.035.
    EXPECT_NEAR(u, u_ref, 0.035) << "at y=" << y;
  }
}

TEST(LdcSolver, MatchesGhiaVCenterline) {
  const auto& sol = solved_cavity_re100();
  for (const auto& [x, v_ref] : sgm::cfd::ghia_re100_v_centerline()) {
    const double v = sol.sample_v(x, 0.5);
    EXPECT_NEAR(v, v_ref, 0.035) << "at x=" << x;
  }
}

TEST(LdcSolver, MassConservationInBulk) {
  // Continuity: du/dx + dv/dy ~ 0 away from walls (central differences).
  const auto& sol = solved_cavity_re100();
  const int n = sol.n;
  const double h = sol.h;
  double worst = 0.0;
  for (int j = n / 4; j < 3 * n / 4; ++j) {
    for (int i = n / 4; i < 3 * n / 4; ++i) {
      const double div = (sol.u(j, i + 1) - sol.u(j, i - 1)) / (2 * h) +
                         (sol.v(j + 1, i) - sol.v(j - 1, i)) / (2 * h);
      worst = std::max(worst, std::fabs(div));
    }
  }
  EXPECT_LT(worst, 0.15);  // discrete divergence of the derived velocities
}

TEST(LdcSolver, StreamfunctionMinimumLocation) {
  // The Re=100 primary vortex center sits near (0.6172, 0.7344) (Ghia).
  const auto& sol = solved_cavity_re100();
  double best = 1e9;
  double bx = 0, by = 0;
  for (int j = 1; j < sol.n - 1; ++j)
    for (int i = 1; i < sol.n - 1; ++i)
      if (sol.psi(j, i) < best) {
        best = sol.psi(j, i);
        bx = i * sol.h;
        by = j * sol.h;
      }
  EXPECT_NEAR(bx, 0.6172, 0.06);
  EXPECT_NEAR(by, 0.7344, 0.06);
  EXPECT_NEAR(best, -0.1034, 0.015);  // Ghia's psi_min at Re=100
}

TEST(LdcSolver, RejectsBadOptions) {
  LdcOptions bad;
  bad.n = 4;
  EXPECT_THROW(sgm::cfd::solve_lid_driven_cavity(bad), std::invalid_argument);
  bad.n = 32;
  bad.reynolds = -1;
  EXPECT_THROW(sgm::cfd::solve_lid_driven_cavity(bad), std::invalid_argument);
}

TEST(LdcSolver, BilinearSamplingInterpolates) {
  const auto& sol = solved_cavity_re100();
  // At grid nodes sampling returns the stored value.
  EXPECT_NEAR(sol.sample_u(0.5, 1.0), 1.0, 1e-12);
  // Clamps out-of-range coordinates.
  EXPECT_NO_THROW(sol.sample_u(-0.5, 2.0));
}

// ----------------------------------------------------- annular Poiseuille --

TEST(AnnularPoiseuille, NoSlipAtWalls) {
  AnnularPoiseuille ap;
  ap.r_inner = 1.0;
  ap.r_outer = 2.0;
  EXPECT_NEAR(ap.axial_velocity(1.0), 0.0, 1e-12);
  EXPECT_NEAR(ap.axial_velocity(2.0), 0.0, 1e-12);
  EXPECT_GT(ap.axial_velocity(1.5), 0.0);
}

TEST(AnnularPoiseuille, SatisfiesMomentumOde) {
  // nu * (u'' + u'/r) = dp/dz = -g, verified by central differences.
  AnnularPoiseuille ap;
  ap.r_inner = 0.8;
  ap.r_outer = 2.0;
  ap.pressure_gradient = 1.3;
  ap.nu = 0.1;
  const double h = 1e-5;
  for (double r : {0.9, 1.2, 1.5, 1.9}) {
    const double u0 = ap.axial_velocity(r);
    const double up = ap.axial_velocity(r + h);
    const double um = ap.axial_velocity(r - h);
    const double d1 = (up - um) / (2 * h);
    const double d2 = (up - 2 * u0 + um) / (h * h);
    EXPECT_NEAR(ap.nu * (d2 + d1 / r), -ap.pressure_gradient, 1e-4)
        << "at r=" << r;
  }
}

TEST(AnnularPoiseuille, MaxAtZeroShearRadius) {
  AnnularPoiseuille ap;
  ap.r_inner = 0.75;
  ap.r_outer = 2.0;
  const double rm = ap.zero_shear_radius();
  EXPECT_GT(rm, ap.r_inner);
  EXPECT_LT(rm, ap.r_outer);
  const double h = 1e-6;
  const double slope =
      (ap.axial_velocity(rm + h) - ap.axial_velocity(rm - h)) / (2 * h);
  EXPECT_NEAR(slope, 0.0, 1e-6);
  EXPECT_NEAR(ap.max_velocity(), ap.axial_velocity(rm), 1e-12);
}

TEST(AnnularPoiseuille, MeanVelocityMatchesQuadrature) {
  AnnularPoiseuille ap;
  ap.r_inner = 1.0;
  ap.r_outer = 2.0;
  // Numerical Q = int 2 pi r u dr via Simpson on a fine grid.
  const int n = 2000;
  const double h = (ap.r_outer - ap.r_inner) / n;
  double q = 0;
  for (int i = 0; i <= n; ++i) {
    const double r = ap.r_inner + i * h;
    const double w = (i == 0 || i == n) ? 1.0 : (i % 2 ? 4.0 : 2.0);
    q += w * 2 * M_PI * r * ap.axial_velocity(r);
  }
  q *= h / 3.0;
  const double area = M_PI * (ap.r_outer * ap.r_outer - ap.r_inner * ap.r_inner);
  EXPECT_NEAR(ap.mean_velocity(), q / area, 1e-6);
}

TEST(AnnularPoiseuille, PressureLinearInZ) {
  AnnularPoiseuille ap;
  ap.pressure_gradient = 2.0;
  EXPECT_DOUBLE_EQ(ap.pressure(0.0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(ap.pressure(3.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(ap.pressure(1.5, 3.0), 3.0);
}

TEST(AnnularPoiseuille, RejectsDegenerateGeometry) {
  AnnularPoiseuille ap;
  ap.r_inner = 2.0;
  ap.r_outer = 1.0;
  EXPECT_THROW(ap.axial_velocity(1.5), std::invalid_argument);
}

TEST(PlanePoiseuille, ParabolicProfile) {
  const double h = 2.0, g = 1.0, nu = 0.1;
  EXPECT_DOUBLE_EQ(sgm::cfd::plane_poiseuille_velocity(0.0, h, g, nu), 0.0);
  EXPECT_DOUBLE_EQ(sgm::cfd::plane_poiseuille_velocity(h, h, g, nu), 0.0);
  const double mid = sgm::cfd::plane_poiseuille_velocity(1.0, h, g, nu);
  EXPECT_NEAR(mid, g * 1.0 * 1.0 / (2 * nu), 1e-12);
}

TEST(PoissonManufactured, RhsMatchesNegativeLaplacian) {
  const double h = 1e-5;
  for (double x : {0.2, 0.5, 0.8}) {
    for (double y : {0.3, 0.7}) {
      const double lap =
          (sgm::cfd::poisson_manufactured_solution(x + h, y) +
           sgm::cfd::poisson_manufactured_solution(x - h, y) +
           sgm::cfd::poisson_manufactured_solution(x, y + h) +
           sgm::cfd::poisson_manufactured_solution(x, y - h) -
           4 * sgm::cfd::poisson_manufactured_solution(x, y)) /
          (h * h);
      EXPECT_NEAR(-lap, sgm::cfd::poisson_manufactured_rhs(x, y), 1e-4);
    }
  }
}

// ------------------------------------------------- Burgers (Cole-Hopf) ----

TEST(BurgersColeHopf, RecoversInitialConditionAtSmallTime) {
  const double nu = 0.02;
  for (double x = -0.9; x <= 0.9; x += 0.15) {
    EXPECT_NEAR(sgm::cfd::burgers_cole_hopf_solution(x, 1e-8, nu),
                -std::sin(M_PI * x), 1e-3)
        << "x=" << x;
    EXPECT_DOUBLE_EQ(sgm::cfd::burgers_cole_hopf_solution(x, 0.0, nu),
                     -std::sin(M_PI * x));
  }
}

TEST(BurgersColeHopf, OddSymmetryAndHomogeneousWalls) {
  const double nu = 0.05;
  for (double t : {0.1, 0.5, 1.0}) {
    EXPECT_NEAR(sgm::cfd::burgers_cole_hopf_solution(-1.0, t, nu), 0.0, 1e-9);
    EXPECT_NEAR(sgm::cfd::burgers_cole_hopf_solution(1.0, t, nu), 0.0, 1e-9);
    EXPECT_NEAR(sgm::cfd::burgers_cole_hopf_solution(0.0, t, nu), 0.0, 1e-9);
    for (double x : {0.2, 0.45, 0.8})
      EXPECT_NEAR(sgm::cfd::burgers_cole_hopf_solution(-x, t, nu),
                  -sgm::cfd::burgers_cole_hopf_solution(x, t, nu), 1e-8)
          << "x=" << x << " t=" << t;
  }
}

TEST(BurgersColeHopf, SatisfiesThePdeByFiniteDifferences) {
  // The strongest check: u_t + u u_x - nu u_xx = 0 at interior points,
  // with all three derivatives taken by central differences of the
  // closed-form evaluation itself.
  const double nu = 0.05;
  const double hx = 1e-4, ht = 1e-4;
  auto u = [&](double x, double t) {
    return sgm::cfd::burgers_cole_hopf_solution(x, t, nu);
  };
  for (double t : {0.3, 0.8}) {
    for (double x : {-0.6, -0.25, 0.35, 0.7}) {
      const double u0 = u(x, t);
      const double ut = (u(x, t + ht) - u(x, t - ht)) / (2 * ht);
      const double ux = (u(x + hx, t) - u(x - hx, t)) / (2 * hx);
      const double uxx = (u(x + hx, t) - 2 * u0 + u(x - hx, t)) / (hx * hx);
      const double residual = ut + u0 * ux - nu * uxx;
      // Scale tolerance by the local gradient (the FD error term).
      EXPECT_NEAR(residual, 0.0, 5e-3 * (1.0 + std::fabs(ux)))
          << "x=" << x << " t=" << t;
    }
  }
}

TEST(BurgersColeHopf, SteepensTowardAShockAtTheOrigin) {
  // By t = 1/pi the profile forms a near-discontinuity at x = 0 for small
  // nu: the gradient there must dwarf the initial -pi.
  const double nu = 0.01 / M_PI;
  const double h = 1e-3;
  const double grad0 =
      (sgm::cfd::burgers_cole_hopf_solution(h, 1.0 / M_PI, nu) -
       sgm::cfd::burgers_cole_hopf_solution(-h, 1.0 / M_PI, nu)) /
      (2 * h);
  EXPECT_LT(grad0, -30.0);  // ~ -152 in the exact solution
  EXPECT_THROW(sgm::cfd::burgers_cole_hopf_solution(0.0, 0.5, 0.0),
               std::invalid_argument);
}

// ------------------------------------------------ Helmholtz manufactured ----

TEST(HelmholtzManufactured, RhsMatchesLaplacianByFiniteDifferences) {
  const int a1 = 1, a2 = 4;
  const double k = 1.0;
  const double h = 1e-4;
  auto u = [&](double x, double y) {
    return sgm::cfd::helmholtz_manufactured_solution(x, y, a1, a2);
  };
  for (double x : {0.17, 0.5, 0.83}) {
    for (double y : {0.21, 0.44, 0.9}) {
      const double lap = (u(x + h, y) + u(x - h, y) + u(x, y + h) +
                          u(x, y - h) - 4 * u(x, y)) /
                         (h * h);
      const double rhs =
          sgm::cfd::helmholtz_manufactured_rhs(x, y, a1, a2, k);
      EXPECT_NEAR(lap + k * k * u(x, y), rhs, 1e-4) << x << "," << y;
    }
  }
}

TEST(HelmholtzManufactured, VanishesOnTheBoundary) {
  for (double s = 0.0; s <= 1.0; s += 0.1) {
    EXPECT_NEAR(sgm::cfd::helmholtz_manufactured_solution(0.0, s, 1, 4), 0.0,
                1e-12);
    EXPECT_NEAR(sgm::cfd::helmholtz_manufactured_solution(1.0, s, 1, 4), 0.0,
                1e-12);
    EXPECT_NEAR(sgm::cfd::helmholtz_manufactured_solution(s, 0.0, 1, 4), 0.0,
                1e-12);
    EXPECT_NEAR(sgm::cfd::helmholtz_manufactured_solution(s, 1.0, 1, 4), 0.0,
                1e-12);
  }
}

}  // namespace
