// Unit tests for sgm::nn — activation derivative ladders, encodings, the
// MLP's input-derivative propagation (checked against finite differences of
// the plain forward pass), and parameter gradients through second-order
// terms (the mechanism every PDE loss relies on).

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.hpp"
#include "nn/encoding.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace {

using sgm::nn::Mlp;
using sgm::nn::MlpConfig;
using sgm::tensor::Matrix;
using sgm::tensor::Tape;
using sgm::tensor::VarId;
namespace ops = sgm::tensor;

// ------------------------------------------------------------ Activations --

class ActivationDerivatives
    : public ::testing::TestWithParam<const sgm::nn::Activation*> {};

TEST_P(ActivationDerivatives, FiniteDifferenceLadder) {
  const auto& act = *GetParam();
  const double h = 1e-5;
  for (double x : {-2.0, -0.5, 0.0, 0.3, 1.7}) {
    for (int order = 0; order < 3; ++order) {
      const double analytic = act.eval(x, order + 1);
      const double numeric =
          (act.eval(x + h, order) - act.eval(x - h, order)) / (2 * h);
      EXPECT_NEAR(analytic, numeric, 1e-6)
          << act.name() << " order " << order + 1 << " at x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllActivations, ActivationDerivatives,
    ::testing::Values(&sgm::nn::silu(), &sgm::nn::tanh_act(),
                      &sgm::nn::sigmoid_act(), &sgm::nn::sine_act(),
                      &sgm::nn::identity_act()),
    [](const auto& info) { return info.param->name(); });

TEST(Activation, LookupByName) {
  EXPECT_EQ(sgm::nn::activation_by_name("silu").name(), "silu");
  EXPECT_EQ(sgm::nn::activation_by_name("tanh").name(), "tanh");
  EXPECT_THROW(sgm::nn::activation_by_name("relu6"), std::invalid_argument);
}

TEST(Activation, SiluKnownValues) {
  const auto& s = sgm::nn::silu();
  EXPECT_NEAR(s.eval(0.0, 0), 0.0, 1e-12);
  EXPECT_NEAR(s.eval(0.0, 1), 0.5, 1e-12);  // f'(0) = sigma(0) = 0.5
  EXPECT_NEAR(s.eval(10.0, 0), 10.0 / (1 + std::exp(-10.0)), 1e-9);
}

// -------------------------------------------------------------- Encodings --

TEST(Encoding, IdentityShapesAndJacobian) {
  sgm::nn::IdentityEncoding enc;
  Matrix x{{0.3, 0.8}, {0.1, 0.2}};
  Matrix e;
  std::vector<Matrix> de, d2e;
  enc.encode(x, 2, e, de, d2e);
  EXPECT_EQ(e.rows(), 2u);
  EXPECT_EQ(e.cols(), 2u);
  EXPECT_DOUBLE_EQ(de[0](0, 0), 1.0);
  EXPECT_DOUBLE_EQ(de[0](0, 1), 0.0);
  EXPECT_DOUBLE_EQ(de[1](1, 1), 1.0);
  EXPECT_DOUBLE_EQ(d2e[0].max_abs(), 0.0);
}

TEST(Encoding, FourierDerivativesMatchFiniteDifference) {
  sgm::util::Rng rng(5);
  sgm::nn::FourierEncoding enc(2, 4, 1.5, rng);
  Matrix x{{0.4, -0.2}};
  Matrix e;
  std::vector<Matrix> de, d2e;
  enc.encode(x, 2, e, de, d2e);

  const double h = 1e-5;
  for (int k = 0; k < 2; ++k) {
    Matrix xp = x, xm = x;
    xp(0, k) += h;
    xm(0, k) -= h;
    Matrix ep, em;
    std::vector<Matrix> dd, dd2;
    enc.encode(xp, 0, ep, dd, dd2);
    enc.encode(xm, 0, em, dd, dd2);
    for (std::size_t c = 0; c < e.cols(); ++c) {
      const double d1 = (ep(0, c) - em(0, c)) / (2 * h);
      const double d2 = (ep(0, c) - 2 * e(0, c) + em(0, c)) / (h * h);
      EXPECT_NEAR(de[k](0, c), d1, 1e-6);
      EXPECT_NEAR(d2e[k](0, c), d2, 1e-4);
    }
  }
}

TEST(Encoding, FourierOutputDim) {
  sgm::util::Rng rng(6);
  sgm::nn::FourierEncoding enc(3, 8, 1.0, rng);
  EXPECT_EQ(enc.output_dim(3), 3u + 16u);
  EXPECT_THROW(enc.output_dim(2), std::invalid_argument);
}

// --------------------------------------------------------------------- MLP --

MlpConfig small_config(std::size_t in, std::size_t out,
                       const sgm::nn::Activation& act = sgm::nn::silu()) {
  MlpConfig cfg;
  cfg.input_dim = in;
  cfg.output_dim = out;
  cfg.width = 8;
  cfg.depth = 3;
  cfg.activation = &act;
  return cfg;
}

TEST(Mlp, ParameterCount) {
  sgm::util::Rng rng(1);
  Mlp net(small_config(2, 3), rng);
  // Layers: 2->8, 8->8, 8->8, 8->3 with biases.
  const std::size_t expect = (2 * 8 + 8) + 2 * (8 * 8 + 8) + (8 * 3 + 3);
  EXPECT_EQ(net.num_parameters(), expect);
}

TEST(Mlp, ForwardMatchesTapeForward) {
  sgm::util::Rng rng(2);
  Mlp net(small_config(2, 3), rng);
  Matrix x{{0.1, 0.9}, {-0.4, 0.3}, {0.7, 0.7}};
  const Matrix direct = net.forward(x);
  Tape tape;
  auto binding = net.bind(tape);
  auto out = net.forward_on_tape(tape, binding, x, 0);
  EXPECT_LT((direct - tape.value(out.y)).max_abs(), 1e-12);
}

TEST(Mlp, InputJacobianMatchesFiniteDifference) {
  sgm::util::Rng rng(3);
  Mlp net(small_config(2, 3), rng);
  Matrix x{{0.25, -0.5}};
  Tape tape;
  auto binding = net.bind(tape);
  auto out = net.forward_on_tape(tape, binding, x, 2);

  const double h = 1e-6;
  for (int k = 0; k < 2; ++k) {
    Matrix xp = x, xm = x;
    xp(0, k) += h;
    xm(0, k) -= h;
    const Matrix fp = net.forward(xp);
    const Matrix fm = net.forward(xm);
    for (std::size_t c = 0; c < 3; ++c) {
      const double numeric = (fp(0, c) - fm(0, c)) / (2 * h);
      EXPECT_NEAR(tape.value(out.dy[k])(0, c), numeric, 1e-6)
          << "dim " << k << " out " << c;
    }
  }
}

TEST(Mlp, InputHessianDiagonalMatchesFiniteDifference) {
  sgm::util::Rng rng(4);
  Mlp net(small_config(2, 2), rng);
  Matrix x{{0.3, 0.6}, {-0.2, 0.1}};
  Tape tape;
  auto binding = net.bind(tape);
  auto out = net.forward_on_tape(tape, binding, x, 2);

  const double h = 1e-4;
  for (std::size_t row = 0; row < 2; ++row) {
    for (int k = 0; k < 2; ++k) {
      Matrix xp = x, xm = x;
      xp(row, k) += h;
      xm(row, k) -= h;
      const Matrix fp = net.forward(xp);
      const Matrix f0 = net.forward(x);
      const Matrix fm = net.forward(xm);
      for (std::size_t c = 0; c < 2; ++c) {
        const double numeric =
            (fp(row, c) - 2 * f0(row, c) + fm(row, c)) / (h * h);
        EXPECT_NEAR(tape.value(out.d2y[k])(row, c), numeric, 5e-5)
            << "row " << row << " dim " << k << " out " << c;
      }
    }
  }
}

// Parameterized over the tape's worker-thread count: the analytic gradient
// must match finite differences bit-for-bit regardless of threading (the
// threaded kernels are write-disjoint with fixed per-element accumulation
// order), so the same FD tolerance must hold at 1 and 4 threads.
class MlpGradcheck : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MlpGradcheck, SecondOrderLossParamGradcheck) {
  // The crux: d/dtheta of a loss built from u_xx. Verified against central
  // differences on a few randomly chosen parameters.
  const std::size_t num_threads = GetParam();
  sgm::util::Rng rng(5);
  Mlp net(small_config(2, 1), rng);
  Matrix x{{0.2, 0.4}, {0.6, -0.3}, {-0.5, 0.9}};

  auto loss_value = [&](Mlp& m) {
    Tape t;
    t.set_num_threads(num_threads);
    auto b = m.bind(t);
    auto out = m.forward_on_tape(t, b, x, 2);
    VarId lap = ops::add(t, out.d2y[0], out.d2y[1]);
    VarId mixed = ops::add(t, lap, ops::mul(t, out.y, out.dy[0]));
    return t.value(ops::mean_all(t, ops::square(t, mixed)))(0, 0);
  };

  Tape tape;
  tape.set_num_threads(num_threads);
  auto binding = net.bind(tape);
  auto out = net.forward_on_tape(tape, binding, x, 2);
  VarId lap = ops::add(tape, out.d2y[0], out.d2y[1]);
  VarId mixed = ops::add(tape, lap, ops::mul(tape, out.y, out.dy[0]));
  VarId loss = ops::mean_all(tape, ops::square(tape, mixed));
  tape.backward(loss);
  auto grads = net.collect_grads(tape, binding);

  auto params = net.parameters();
  ASSERT_EQ(params.size(), grads.size());
  const double h = 1e-5;
  sgm::util::Rng pick(99);
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    // Probe two random entries per parameter tensor.
    for (int probe = 0; probe < 2; ++probe) {
      const std::size_t idx = pick.uniform_index(params[pi]->size());
      const double orig = params[pi]->data()[idx];
      params[pi]->data()[idx] = orig + h;
      const double fp = loss_value(net);
      params[pi]->data()[idx] = orig - h;
      const double fm = loss_value(net);
      params[pi]->data()[idx] = orig;
      const double numeric = (fp - fm) / (2 * h);
      EXPECT_NEAR(grads[pi].data()[idx], numeric, 5e-5)
          << "param " << pi << " entry " << idx;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, MlpGradcheck, ::testing::Values(1u, 4u),
                         [](const auto& info) {
                           return "threads_" + std::to_string(info.param);
                         });

TEST(Mlp, FourierEncodedDerivativesStillCorrect) {
  sgm::util::Rng rng(6);
  MlpConfig cfg = small_config(2, 1);
  cfg.encoding = std::make_shared<sgm::nn::FourierEncoding>(2, 4, 1.0, rng);
  Mlp net(cfg, rng);
  Matrix x{{0.3, 0.5}};
  Tape tape;
  auto binding = net.bind(tape);
  auto out = net.forward_on_tape(tape, binding, x, 2);
  const double h = 1e-4;
  for (int k = 0; k < 2; ++k) {
    Matrix xp = x, xm = x;
    xp(0, k) += h;
    xm(0, k) -= h;
    const double numeric1 =
        (net.forward(xp)(0, 0) - net.forward(xm)(0, 0)) / (2 * h);
    const double numeric2 = (net.forward(xp)(0, 0) -
                             2 * net.forward(x)(0, 0) +
                             net.forward(xm)(0, 0)) /
                            (h * h);
    EXPECT_NEAR(tape.value(out.dy[k])(0, 0), numeric1, 1e-5);
    EXPECT_NEAR(tape.value(out.d2y[k])(0, 0), numeric2, 1e-3);
  }
}

TEST(Mlp, SetParametersRoundTrip) {
  sgm::util::Rng rng(7);
  Mlp a(small_config(2, 1), rng);
  Mlp b(small_config(2, 1), rng);  // different init
  std::vector<Matrix> snapshot;
  for (const auto* p : a.parameters()) snapshot.push_back(*p);
  b.set_parameters(snapshot);
  Matrix x{{0.1, 0.2}};
  EXPECT_LT((a.forward(x) - b.forward(x)).max_abs(), 1e-14);
}

TEST(Mlp, PartialDerivDimsOnly) {
  // n_deriv = 2 of a 3-input network: derivatives w.r.t. dims 0 and 1 only
  // (the parameterized-problem configuration).
  sgm::util::Rng rng(8);
  Mlp net(small_config(3, 2), rng);
  Matrix x{{0.1, 0.5, 0.9}};
  Tape tape;
  auto binding = net.bind(tape);
  auto out = net.forward_on_tape(tape, binding, x, 2);
  EXPECT_EQ(out.dy.size(), 2u);
  const double h = 1e-6;
  Matrix xp = x, xm = x;
  xp(0, 1) += h;
  xm(0, 1) -= h;
  const double numeric =
      (net.forward(xp)(0, 0) - net.forward(xm)(0, 0)) / (2 * h);
  EXPECT_NEAR(tape.value(out.dy[1])(0, 0), numeric, 1e-6);
}

// -------------------------------------------------------------- Optimizers --

TEST(Optimizer, SgdQuadraticConverges) {
  // Minimize f(w) = 0.5 ||w - target||^2 by explicit gradients.
  Matrix w(1, 4, 0.0);
  Matrix target{{1, -2, 3, 0.5}};
  sgm::nn::Sgd opt(0.2, 0.5);
  for (int it = 0; it < 200; ++it) {
    Matrix g = w - target;
    opt.step({&w}, {g});
  }
  EXPECT_LT((w - target).max_abs(), 1e-6);
  EXPECT_EQ(opt.iterations(), 200u);
}

TEST(Optimizer, AdamQuadraticConverges) {
  Matrix w(1, 4, 0.0);
  Matrix target{{1, -2, 3, 0.5}};
  sgm::nn::Adam opt(0.1);
  for (int it = 0; it < 800; ++it) {
    Matrix g = w - target;
    opt.step({&w}, {g});
  }
  EXPECT_LT((w - target).max_abs(), 1e-3);
}

TEST(Optimizer, AdamRejectsShapeMismatch) {
  Matrix w(1, 4);
  sgm::nn::Adam opt(0.1);
  EXPECT_THROW(opt.step({&w}, {Matrix(2, 2)}), std::invalid_argument);
}

TEST(Optimizer, ExponentialDecaySchedule) {
  sgm::nn::ExponentialDecaySchedule sched(1e-3, 0.5, 100);
  EXPECT_DOUBLE_EQ(sched.lr(0), 1e-3);
  EXPECT_NEAR(sched.lr(100), 5e-4, 1e-12);
  EXPECT_NEAR(sched.lr(200), 2.5e-4, 1e-12);
}

}  // namespace
