// Tape v2 regression tests: the bump-arena reuse contract (zero heap
// allocations in the steady-state tape/forward/backward path), the fused
// affine/activation ops against their unfused compositions, the blocked
// GEMM kernels against the naive _reference oracles over random and
// degenerate shapes, and bitwise thread-count invariance of the threaded
// kernels.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "nn/activation.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "tensor/tape.hpp"
#include "util/rng.hpp"

// ------------------------------------------------------ allocation counter --
// Global operator new/delete hook. Counting is scoped: only allocations made
// between arm() and disarm() on the main thread are counted, so gtest's own
// bookkeeping stays out of the tally.

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using sgm::nn::Mlp;
using sgm::nn::MlpConfig;
using sgm::tensor::Matrix;
using sgm::tensor::Tape;
using sgm::tensor::VarId;
namespace ops = sgm::tensor;

struct AllocScope {
  AllocScope() {
    g_alloc_count.store(0);
    g_count_allocs.store(true);
  }
  ~AllocScope() { g_count_allocs.store(false); }
  std::uint64_t count() const { return g_alloc_count.load(); }
};

Matrix random_matrix(std::size_t r, std::size_t c, sgm::util::Rng& rng,
                     double scale = 1.0) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = rng.normal(0.0, scale);
  return m;
}

// ------------------------------------------------------------ arena reuse --

TEST(TapeArena, ClearRetainsCapacityAndReusesSlots) {
  Tape t;
  sgm::util::Rng rng(1);
  const Matrix a0 = random_matrix(16, 8, rng);
  const Matrix b0 = random_matrix(16, 8, rng);
  VarId p = t.parameter(a0);
  VarId c = t.constant(b0);
  VarId root = ops::mean_all(t, ops::square(t, ops::mul(t, p, c)));
  t.backward(root);
  const double g00 = t.grad(p)(0, 0);
  const std::size_t nodes = t.num_nodes();

  for (int step = 0; step < 3; ++step) {
    t.clear();
    EXPECT_EQ(t.num_nodes(), 0u);
    p = t.parameter(a0);
    c = t.constant(b0);
    root = ops::mean_all(t, ops::square(t, ops::mul(t, p, c)));
    EXPECT_EQ(t.num_nodes(), nodes);
    t.backward(root);
    EXPECT_DOUBLE_EQ(t.grad(p)(0, 0), g00) << "reuse changed the result";
  }
}

TEST(TapeArena, GradOfUntouchedNodeIsEmptyAfterReuse) {
  Tape t;
  // First pass: a constant that never receives a gradient, but whose slot's
  // grad buffer gets dirtied when the slot is later reused as a parameter.
  VarId p = t.parameter(Matrix(2, 2, 1.0));
  VarId root = ops::sum_all(t, p);
  t.backward(root);
  EXPECT_FALSE(t.grad(p).empty());

  t.clear();
  VarId c = t.constant(Matrix(2, 2, 3.0));  // reuses the parameter's slot
  VarId p2 = t.parameter(Matrix(2, 2, 2.0));
  root = ops::sum_all(t, ops::mul(t, c, p2));
  t.backward(root);
  EXPECT_TRUE(t.grad(c).empty()) << "stale grad leaked through slot reuse";
  EXPECT_DOUBLE_EQ(t.grad(p2)(0, 0), 3.0);
}

TEST(TapeArena, SteadyStateTrainingStepAllocatesNothing) {
  // The acceptance criterion of PR 4: after warm-up, a full training
  // iteration's tape/forward/backward path — clear, bind, forward with
  // second derivatives, loss, backward, grad collection, Adam — performs
  // ZERO heap allocations (num_threads=1; threaded dispatch enqueues task
  // objects by design).
  MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 1;
  cfg.width = 16;
  cfg.depth = 3;
  sgm::util::Rng rng(7);
  Mlp net(cfg, rng);
  const Matrix x = random_matrix(32, 2, rng);
  sgm::nn::Adam adam(1e-3);
  const std::vector<Matrix*> params = net.parameters();

  Tape tape;
  Mlp::Binding binding;
  Mlp::TapeOutputs out;
  std::vector<Matrix> grads;

  auto step = [&]() {
    tape.clear();
    net.bind(tape, &binding);
    net.forward_on_tape(tape, binding, x, /*n_deriv=*/2, &out);
    const VarId lap = ops::add(tape, out.d2y[0], out.d2y[1]);
    const VarId loss = ops::mean_all(tape, ops::square(tape, lap));
    tape.backward(loss);
    net.collect_grads_into(tape, binding, &grads);
    adam.step(params, grads);
  };

  for (int warmup = 0; warmup < 3; ++warmup) step();

  AllocScope scope;
  for (int it = 0; it < 5; ++it) step();
  EXPECT_EQ(scope.count(), 0u)
      << "steady-state training step performed heap allocations";
}

// -------------------------------------------------------------- fused ops --

TEST(FusedOps, AffineMatchesMatmulAddRowvec) {
  sgm::util::Rng rng(2);
  for (auto [n, k, d] : {std::array<std::size_t, 3>{5, 3, 4},
                         std::array<std::size_t, 3>{1, 1, 1},
                         std::array<std::size_t, 3>{17, 9, 13}}) {
    const Matrix a = random_matrix(n, k, rng);
    const Matrix w = random_matrix(k, d, rng);
    const Matrix b = random_matrix(1, d, rng);
    Tape t;
    VarId av = t.constant(a);
    VarId wv = t.parameter(w);
    VarId bv = t.parameter(b);
    VarId fused = ops::affine(t, av, wv, bv);
    VarId unfused = ops::add_rowvec(t, ops::matmul(t, av, wv), bv);
    EXPECT_LT((t.value(fused) - t.value(unfused)).max_abs(), 1e-12)
        << n << "x" << k << "x" << d;
  }
}

TEST(FusedOps, AffineGradcheck) {
  sgm::util::Rng rng(3);
  const Matrix a = random_matrix(6, 3, rng);
  const Matrix w0 = random_matrix(3, 4, rng);
  const Matrix b0 = random_matrix(1, 4, rng);

  auto loss_of = [&](const Matrix& w, const Matrix& b) {
    Tape t;
    VarId av = t.constant(a);
    VarId y = ops::affine(t, av, t.parameter(w), t.parameter(b));
    return t.value(ops::mean_all(t, ops::square(t, y)))(0, 0);
  };

  Tape t;
  VarId av = t.constant(a);
  VarId wv = t.parameter(w0);
  VarId bv = t.parameter(b0);
  t.backward(ops::mean_all(t, ops::square(t, ops::affine(t, av, wv, bv))));

  const double h = 1e-6;
  for (std::size_t i = 0; i < w0.size(); ++i) {
    Matrix wp = w0, wm = w0;
    wp.data()[i] += h;
    wm.data()[i] -= h;
    const double numeric = (loss_of(wp, b0) - loss_of(wm, b0)) / (2 * h);
    EXPECT_NEAR(t.grad(wv).data()[i], numeric, 1e-6) << "w entry " << i;
  }
  for (std::size_t i = 0; i < b0.size(); ++i) {
    Matrix bp = b0, bm = b0;
    bp.data()[i] += h;
    bm.data()[i] -= h;
    const double numeric = (loss_of(w0, bp) - loss_of(w0, bm)) / (2 * h);
    EXPECT_NEAR(t.grad(bv).data()[i], numeric, 1e-6) << "b entry " << i;
  }
}

TEST(FusedOps, ActivationSweepMatchesApplyLadder) {
  sgm::util::Rng rng(4);
  const Matrix z = random_matrix(7, 5, rng);
  for (const sgm::nn::Activation* act :
       {&sgm::nn::silu(), &sgm::nn::tanh_act(), &sgm::nn::sigmoid_act()}) {
    Tape t;
    VarId zv = t.constant(z);
    VarId s = ops::activation(t, zv, *act, /*orders=*/3);
    EXPECT_LT((t.value(s) - t.value(ops::apply(t, zv, *act, 0))).max_abs(),
              1e-12)
        << act->name();
    // The sweep's aux buffers are exercised through act_chain / act_curve.
    const Matrix zk = random_matrix(7, 5, rng);
    const Matrix hzk = random_matrix(7, 5, rng);
    VarId zkv = t.constant(zk);
    VarId hzkv = t.constant(hzk);
    VarId chain = ops::act_chain(t, s, zkv);
    VarId ref_chain = ops::mul(t, ops::apply(t, zv, *act, 1), zkv);
    EXPECT_LT((t.value(chain) - t.value(ref_chain)).max_abs(), 1e-12)
        << act->name();
    VarId curve = ops::act_curve(t, s, zkv, hzkv);
    VarId ref_curve = ops::add(
        t, ops::mul(t, ops::apply(t, zv, *act, 2), ops::square(t, zkv)),
        ops::mul(t, ops::apply(t, zv, *act, 1), hzkv));
    EXPECT_LT((t.value(curve) - t.value(ref_curve)).max_abs(), 1e-12)
        << act->name();
  }
}

TEST(FusedOps, ActChainAndCurveGradcheck) {
  // End-to-end gradient of a loss built from the fused derivative-
  // propagation ops, checked against the unfused composition's gradient.
  sgm::util::Rng rng(5);
  const Matrix z0 = random_matrix(4, 3, rng);
  const Matrix zk = random_matrix(4, 3, rng);
  const Matrix hzk = random_matrix(4, 3, rng);
  const auto& act = sgm::nn::silu();

  Tape tf;
  VarId zf = tf.parameter(z0);
  VarId sf = ops::activation(tf, zf, act, 3);
  VarId rootf = ops::mean_all(
      tf, ops::square(tf, ops::add(tf, ops::act_chain(tf, sf, tf.constant(zk)),
                                   ops::act_curve(tf, sf, tf.constant(zk),
                                                  tf.constant(hzk)))));
  tf.backward(rootf);

  Tape tu;
  VarId zu = tu.parameter(z0);
  VarId s1 = ops::apply(tu, zu, act, 1);
  VarId s2 = ops::apply(tu, zu, act, 2);
  VarId zkc = tu.constant(zk);
  VarId chain = ops::mul(tu, s1, zkc);
  VarId curve = ops::add(tu, ops::mul(tu, s2, ops::square(tu, zkc)),
                         ops::mul(tu, s1, tu.constant(hzk)));
  VarId rootu =
      ops::mean_all(tu, ops::square(tu, ops::add(tu, chain, curve)));
  tu.backward(rootu);

  EXPECT_LT((tf.value(rootf) - tu.value(rootu)).max_abs(), 1e-12);
  EXPECT_LT((tf.grad(zf) - tu.grad(zu)).max_abs(), 1e-10);
}

// ---------------------------------------------------------- GEMM property --

TEST(BlockedGemm, MatchesReferenceOverShapes) {
  sgm::util::Rng rng(6);
  // Random shapes around the block sizes plus degenerate cases: empty
  // matrices, single elements, and non-multiples of the 4x8 tile.
  const std::size_t dims[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 33};
  for (std::size_t m : dims) {
    for (std::size_t k : {std::size_t{1}, std::size_t{5}, std::size_t{32}}) {
      for (std::size_t n : dims) {
        const Matrix a = random_matrix(m ? m : 0, k, rng);
        const Matrix b = random_matrix(k, n, rng);
        const Matrix blocked = sgm::tensor::matmul(a, b);
        const Matrix reference = sgm::tensor::matmul_reference(a, b);
        ASSERT_EQ(blocked.rows(), m);
        ASSERT_EQ(blocked.cols(), n);
        if (m && n) {
          EXPECT_LT((blocked - reference).max_abs(),
                    1e-13 * (1.0 + reference.max_abs()))
              << m << "x" << k << "x" << n;
        }

        const Matrix at = random_matrix(k, m, rng);  // for A^T B
        EXPECT_LT((sgm::tensor::matmul_tn(at, b) -
                   sgm::tensor::matmul_tn_reference(at, b))
                      .max_abs(),
                  1e-12)
            << "tn " << m << "x" << k << "x" << n;

        const Matrix bt = random_matrix(n, k, rng);  // for A B^T
        EXPECT_LT((sgm::tensor::matmul_nt(a, bt) -
                   sgm::tensor::matmul_nt_reference(a, bt))
                      .max_abs(),
                  1e-12)
            << "nt " << m << "x" << k << "x" << n;
      }
    }
  }
}

TEST(BlockedGemm, RangeKernelsAndAccumulate) {
  sgm::util::Rng rng(7);
  const Matrix a = random_matrix(21, 13, rng);
  const Matrix b = random_matrix(13, 11, rng);
  Matrix c(21, 11, 1.0);
  // Disjoint row ranges must tile exactly like a full-range call.
  sgm::tensor::gemm_nn(a, b, c, 0, 9, /*accumulate=*/false);
  sgm::tensor::gemm_nn(a, b, c, 9, 21, /*accumulate=*/false);
  EXPECT_LT((c - sgm::tensor::matmul_reference(a, b)).max_abs(), 1e-12);

  Matrix acc = c;
  sgm::tensor::gemm_nn(a, b, acc, 0, 21, /*accumulate=*/true);
  Matrix twice = sgm::tensor::matmul_reference(a, b);
  twice.scale(2.0);
  EXPECT_LT((acc - twice).max_abs(), 1e-12);
}

// --------------------------------------------------- thread invariance ----

TEST(ThreadedTape, ForwardBackwardBitwiseIdenticalAcrossThreadCounts) {
  MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 1;
  cfg.width = 32;
  cfg.depth = 3;
  sgm::util::Rng rng(11);
  Mlp net(cfg, rng);
  const Matrix x = random_matrix(257, 2, rng);  // odd size: exercises edges

  auto run = [&](std::size_t threads, Matrix* loss) {
    Tape tape;
    tape.set_num_threads(threads);
    Mlp::Binding binding;
    net.bind(tape, &binding);
    auto out = net.forward_on_tape(tape, binding, x, 2);
    const VarId lap = ops::add(tape, out.d2y[0], out.d2y[1]);
    const VarId root = ops::mean_all(tape, ops::square(tape, lap));
    tape.backward(root);
    *loss = tape.value(root);
    return net.collect_grads(tape, binding);
  };

  Matrix loss1, loss4;
  const auto g1 = run(1, &loss1);
  const auto g4 = run(4, &loss4);
  ASSERT_EQ(g1.size(), g4.size());
  EXPECT_EQ(loss1(0, 0), loss4(0, 0)) << "loss not bitwise identical";
  for (std::size_t i = 0; i < g1.size(); ++i)
    for (std::size_t j = 0; j < g1[i].size(); ++j)
      ASSERT_EQ(g1[i].data()[j], g4[i].data()[j])
          << "grad " << i << " entry " << j << " differs across thread counts";
}

}  // namespace
