// Unit tests for sgm::graph core — CSR assembly, Laplacian operators, the
// PCG solver and the eigensolvers (dense Jacobi + Lanczos).

#include <gtest/gtest.h>

#include <cmath>

#include "graph/csr.hpp"
#include "graph/lanczos.hpp"
#include "graph/laplacian.hpp"
#include "graph/pcg.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using sgm::graph::CsrGraph;
using sgm::graph::Edge;
using sgm::graph::Vec;
using sgm::tensor::Matrix;

CsrGraph path_graph(std::uint32_t n, double w = 1.0) {
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1, w});
  return CsrGraph::from_edges(n, std::move(edges));
}

CsrGraph cycle_graph(std::uint32_t n, double w = 1.0) {
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i < n; ++i)
    edges.push_back({i, (i + 1) % n, w});
  return CsrGraph::from_edges(n, std::move(edges));
}

CsrGraph random_connected_graph(std::uint32_t n, std::uint32_t extra,
                                sgm::util::Rng& rng) {
  std::vector<Edge> edges;
  for (std::uint32_t i = 1; i < n; ++i)
    edges.push_back({static_cast<std::uint32_t>(rng.uniform_index(i)), i,
                     rng.uniform(0.5, 2.0)});
  for (std::uint32_t t = 0; t < extra; ++t) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_index(n));
    const auto b = static_cast<std::uint32_t>(rng.uniform_index(n));
    if (a != b) edges.push_back({a, b, rng.uniform(0.5, 2.0)});
  }
  return CsrGraph::from_edges(n, std::move(edges));
}

// --------------------------------------------------------------------- CSR --

TEST(Csr, BuildsAdjacencyAndDegrees) {
  CsrGraph g = CsrGraph::from_edges(4, {{0, 1, 2.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_DOUBLE_EQ(g.weighted_degree(1), 3.0);
  auto nbrs = g.neighbors(1);
  EXPECT_EQ(nbrs.size(), 2u);
}

TEST(Csr, MergesDuplicatesAndDropsSelfLoops) {
  CsrGraph g = CsrGraph::from_edges(
      3, {{0, 1, 1.0}, {1, 0, 2.0}, {1, 1, 5.0}, {1, 2, 1.0}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 3.0);  // 0-1 merged
}

TEST(Csr, RejectsBadEdges) {
  EXPECT_THROW(CsrGraph::from_edges(2, {{0, 5, 1.0}}), std::out_of_range);
  EXPECT_THROW(CsrGraph::from_edges(2, {{0, 1, -1.0}}), std::invalid_argument);
}

TEST(Csr, ConnectedComponents) {
  CsrGraph g = CsrGraph::from_edges(5, {{0, 1, 1.0}, {2, 3, 1.0}});
  auto [label, count] = g.connected_components();
  EXPECT_EQ(count, 3u);  // {0,1}, {2,3}, {4}
  EXPECT_EQ(label[0], label[1]);
  EXPECT_NE(label[0], label[2]);
  EXPECT_FALSE(g.is_connected());
  EXPECT_TRUE(path_graph(6).is_connected());
}

TEST(Csr, AverageDegreeAndTotalWeight) {
  CsrGraph g = cycle_graph(10, 2.0);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 20.0);
}

TEST(CsrAudit, AcceptsEveryFromEdgesResult) {
  EXPECT_NO_THROW(CsrGraph::from_edges(0, {}).audit());
  EXPECT_NO_THROW(path_graph(7).audit());
  EXPECT_NO_THROW(cycle_graph(12, 0.5).audit());
  // Duplicate merging and self-loop dropping still leave a canonical graph.
  EXPECT_NO_THROW(
      CsrGraph::from_edges(3, {{0, 1, 1.0}, {1, 0, 2.0}, {1, 1, 5.0}})
          .audit());
}

TEST(CsrAudit, RejectsMalformedArrays) {
  using sgm::graph::EdgeId;
  using sgm::graph::NodeId;
  using sgm::util::CheckError;
  // A valid 3-node path 0-1-2 in raw-array form; each case below corrupts
  // one structure that from_edges could never produce.
  const std::vector<Edge> edges{{0, 1, 1.0}, {1, 2, 2.0}};
  const std::vector<std::size_t> offsets{0, 1, 3, 4};
  const std::vector<NodeId> nbr{1, 0, 2, 1};
  const std::vector<EdgeId> inc{0, 0, 1, 1};
  const std::vector<double> wdeg{1.0, 3.0, 2.0};
  EXPECT_NO_THROW(
      sgm::graph::audit_csr_arrays(3, edges, offsets, nbr, inc, wdeg));

  // Non-canonical edge (v < u).
  EXPECT_THROW(sgm::graph::audit_csr_arrays(3, {{1, 0, 1.0}, {1, 2, 2.0}},
                                            offsets, nbr, inc, wdeg),
               CheckError);
  // Non-positive weight.
  EXPECT_THROW(sgm::graph::audit_csr_arrays(3, {{0, 1, 0.0}, {1, 2, 2.0}},
                                            offsets, nbr, inc, wdeg),
               CheckError);
  // Offsets not covering 2|E|.
  EXPECT_THROW(
      sgm::graph::audit_csr_arrays(3, edges, {0, 1, 3, 3}, nbr, inc, wdeg),
      CheckError);
  // Broken symmetry: node 2's row names the wrong neighbor.
  EXPECT_THROW(
      sgm::graph::audit_csr_arrays(3, edges, offsets, {1, 0, 2, 0}, inc, wdeg),
      CheckError);
  // Adjacency references an edge not incident to the row's node.
  EXPECT_THROW(
      sgm::graph::audit_csr_arrays(3, edges, offsets, nbr, {1, 0, 1, 1}, wdeg),
      CheckError);
  // Weighted degree out of sync with the edge list.
  EXPECT_THROW(sgm::graph::audit_csr_arrays(3, edges, offsets, nbr, inc,
                                            {1.0, 3.5, 2.0}),
               CheckError);
}

// --------------------------------------------------------------- Laplacian --

TEST(Laplacian, ApplyMatchesDense) {
  sgm::util::Rng rng(1);
  CsrGraph g = random_connected_graph(12, 10, rng);
  const Matrix dense = sgm::graph::laplacian_dense(g);
  Vec x(12);
  for (auto& v : x) v = rng.normal();
  Vec y;
  sgm::graph::laplacian_apply(g, x, y);
  for (std::size_t i = 0; i < 12; ++i) {
    double ref = 0;
    for (std::size_t j = 0; j < 12; ++j) ref += dense(i, j) * x[j];
    EXPECT_NEAR(y[i], ref, 1e-12);
  }
}

TEST(Laplacian, AnnihilatesConstants) {
  sgm::util::Rng rng(2);
  CsrGraph g = random_connected_graph(20, 15, rng);
  Vec ones(20, 1.0), y;
  sgm::graph::laplacian_apply(g, ones, y);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Laplacian, DeflateRemovesMean) {
  Vec x = {1, 2, 3, 4};
  sgm::graph::deflate_constant(x);
  EXPECT_NEAR(x[0] + x[1] + x[2] + x[3], 0.0, 1e-14);
}

// --------------------------------------------------------------------- PCG --

TEST(Pcg, SolvesLaplacianSystem) {
  sgm::util::Rng rng(3);
  CsrGraph g = random_connected_graph(50, 60, rng);
  Vec b(50);
  for (auto& v : b) v = rng.normal();
  sgm::graph::deflate_constant(b);
  auto result = sgm::graph::pcg_solve_laplacian(g, b, {1e-10, 2000, 0.0});
  ASSERT_TRUE(result.converged);
  Vec lx;
  sgm::graph::laplacian_apply(g, result.x, lx);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(lx[i], b[i], 1e-7);
}

TEST(Pcg, PathGraphPotentialDrop) {
  // Unit current injected at the ends of a unit-weight path: the potential
  // difference end-to-end equals the effective resistance n-1.
  const std::uint32_t n = 10;
  CsrGraph g = path_graph(n);
  Vec b(n, 0.0);
  b[0] = 1.0;
  b[n - 1] = -1.0;
  auto result = sgm::graph::pcg_solve_laplacian(g, b, {1e-12, 2000, 0.0});
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0] - result.x[n - 1], n - 1.0, 1e-8);
}

TEST(Pcg, ShiftedSolveIsNonSingular) {
  CsrGraph g = path_graph(8);
  Vec b(8, 1.0);  // constant RHS: only solvable with a shift
  sgm::graph::PcgOptions opt;
  opt.diagonal_shift = 1e-2;
  opt.rel_tol = 1e-10;
  auto result = sgm::graph::pcg_solve_laplacian(g, b, opt);
  EXPECT_TRUE(result.converged);
}

TEST(Pcg, ZeroRhsShortCircuits) {
  CsrGraph g = path_graph(5);
  auto result = sgm::graph::pcg_solve_laplacian(g, Vec(5, 0.0));
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
}

// --------------------------------------------------------------- Eigen ----

TEST(Jacobi, DiagonalizesKnownMatrix) {
  // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
  Matrix a{{2, 1}, {1, 2}};
  auto eig = sgm::graph::jacobi_eigensymm(a);
  ASSERT_EQ(eig.values.size(), 2u);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
}

TEST(Jacobi, ReconstructsMatrix) {
  sgm::util::Rng rng(4);
  const std::size_t n = 8;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  auto eig = sgm::graph::jacobi_eigensymm(a);
  // A = V diag(l) V^T
  Matrix recon(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0;
      for (std::size_t k = 0; k < n; ++k)
        s += eig.vectors(i, k) * eig.values[k] * eig.vectors(j, k);
      recon(i, j) = s;
    }
  EXPECT_LT((recon - a).max_abs(), 1e-8);
}

TEST(Jacobi, PathLaplacianEigenvalues) {
  // Path P_n Laplacian eigenvalues: 2 - 2 cos(pi k / n), k = 0..n-1.
  const std::uint32_t n = 6;
  auto eig = sgm::graph::jacobi_eigensymm(
      sgm::graph::laplacian_dense(path_graph(n)));
  for (std::uint32_t k = 0; k < n; ++k) {
    const double expect = 2.0 - 2.0 * std::cos(M_PI * k / n);
    EXPECT_NEAR(eig.values[k], expect, 1e-9);
  }
}

TEST(Lanczos, FindsExtremalLaplacianEigenvalues) {
  const std::uint32_t n = 40;
  CsrGraph g = cycle_graph(n);
  auto apply = [&](const Vec& x, Vec& y) {
    sgm::graph::laplacian_apply(g, x, y);
  };
  sgm::graph::LanczosOptions opt;
  opt.num_eigenpairs = 3;
  opt.max_iterations = 60;
  opt.largest = true;
  auto eig = sgm::graph::lanczos(apply, n, opt);
  ASSERT_GE(eig.values.size(), 1u);
  // Largest Laplacian eigenvalue of an even cycle is 4.
  EXPECT_NEAR(eig.values.back(), 4.0, 1e-6);
}

TEST(Lanczos, ResidualIsSmall) {
  sgm::util::Rng rng(5);
  CsrGraph g = random_connected_graph(30, 40, rng);
  auto apply = [&](const Vec& x, Vec& y) {
    sgm::graph::laplacian_apply(g, x, y);
  };
  sgm::graph::LanczosOptions opt;
  opt.num_eigenpairs = 2;
  opt.max_iterations = 60;
  auto eig = sgm::graph::lanczos(apply, 30, opt);
  for (std::size_t j = 0; j < eig.values.size(); ++j) {
    Vec v(30), av;
    for (std::size_t i = 0; i < 30; ++i) v[i] = eig.vectors(i, j);
    sgm::graph::laplacian_apply(g, v, av);
    double res = 0;
    for (std::size_t i = 0; i < 30; ++i) {
      const double r = av[i] - eig.values[j] * v[i];
      res += r * r;
    }
    EXPECT_LT(std::sqrt(res), 1e-5);
  }
}

}  // namespace
