#pragma once
// Shared test helper: assert two TrainHistory objects are bitwise identical
// in every deterministic field — iteration numbers, the loss stream, and
// validation metric names/errors. Wall-clock fields are the only tolerated
// nondeterminism. Used by the trainer determinism tests (same seed, two
// runs) and the tier-2 harness (same seed, num_threads 1 vs 4).

#include <gtest/gtest.h>

#include <string>

#include "pinn/trainer.hpp"

namespace sgm::pinn::testutil {

inline void expect_identical_histories(const TrainHistory& a,
                                       const TrainHistory& b,
                                       const std::string& label) {
  EXPECT_EQ(a.sampler_name, b.sampler_name) << label;
  EXPECT_EQ(a.sampler_loss_evaluations, b.sampler_loss_evaluations) << label;
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    EXPECT_EQ(ra.iteration, rb.iteration) << label << " record " << i;
    EXPECT_EQ(ra.mean_loss, rb.mean_loss)
        << label << " record " << i << ": loss stream diverged";
    ASSERT_EQ(ra.validation.size(), rb.validation.size())
        << label << " record " << i;
    for (std::size_t m = 0; m < ra.validation.size(); ++m) {
      EXPECT_EQ(ra.validation[m].name, rb.validation[m].name)
          << label << " record " << i;
      EXPECT_EQ(ra.validation[m].error, rb.validation[m].error)
          << label << " record " << i << " metric " << ra.validation[m].name;
    }
  }
}

}  // namespace sgm::pinn::testutil
