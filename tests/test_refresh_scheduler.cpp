// Regression tests for the tau_e / tau_G cadence of core::RefreshScheduler
// (Algorithm 1's outer loop). Pins down the boundary semantics the sampler
// relies on: scoring fires on the very first call (iteration 0 included),
// rebuilds never fire at iteration 0, and both respect their periods even
// when the trainer skips iterations.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/refresh_scheduler.hpp"

namespace {

using sgm::core::RefreshScheduler;

TEST(RefreshScheduler, ScoreFiresAtIterationZeroThenEveryTauE) {
  RefreshScheduler sched(/*tau_e=*/3, /*tau_g=*/100);
  std::vector<std::uint64_t> fired;
  for (std::uint64_t it = 0; it <= 9; ++it)
    if (sched.should_score(it)) fired.push_back(it);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{0, 3, 6, 9}));
}

TEST(RefreshScheduler, ScoreFirstCallFiresEvenAtNonzeroIteration) {
  RefreshScheduler sched(/*tau_e=*/5, /*tau_g=*/100);
  EXPECT_TRUE(sched.should_score(7));
  EXPECT_FALSE(sched.should_score(8));
  EXPECT_FALSE(sched.should_score(11));
  EXPECT_TRUE(sched.should_score(12));  // 7 + tau_e
}

TEST(RefreshScheduler, RebuildDoesNotFireAtIterationZero) {
  // The initial PGM/LRD build happens at sampler construction, so the
  // scheduler must not request another one at iteration 0.
  RefreshScheduler sched(/*tau_e=*/1, /*tau_g=*/4);
  EXPECT_FALSE(sched.should_rebuild(0));
}

TEST(RefreshScheduler, RebuildFiresEveryTauGAfterWarmup) {
  RefreshScheduler sched(/*tau_e=*/1, /*tau_g=*/4);
  std::vector<std::uint64_t> fired;
  for (std::uint64_t it = 0; it <= 12; ++it)
    if (sched.should_rebuild(it)) fired.push_back(it);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{4, 8, 12}));
}

TEST(RefreshScheduler, RebuildDisabledWhenTauGZero) {
  RefreshScheduler sched(/*tau_e=*/1, /*tau_g=*/0);
  for (std::uint64_t it = 0; it <= 100; ++it)
    EXPECT_FALSE(sched.should_rebuild(it));
}

TEST(RefreshScheduler, BothHandleSkippedIterations) {
  // Callers are not required to poll every iteration; a late call still
  // fires once and re-anchors the period at the observed iteration.
  RefreshScheduler sched(/*tau_e=*/3, /*tau_g=*/4);
  EXPECT_TRUE(sched.should_score(0));
  EXPECT_TRUE(sched.should_score(10));
  EXPECT_FALSE(sched.should_score(12));
  EXPECT_TRUE(sched.should_score(13));

  EXPECT_TRUE(sched.should_rebuild(10));
  EXPECT_FALSE(sched.should_rebuild(13));
  EXPECT_TRUE(sched.should_rebuild(14));
}

TEST(RefreshScheduler, ExposesConfiguredPeriods) {
  RefreshScheduler sched(/*tau_e=*/7000, /*tau_g=*/25000);
  EXPECT_EQ(sched.tau_e(), 7000u);
  EXPECT_EQ(sched.tau_g(), 25000u);
}

}  // namespace
