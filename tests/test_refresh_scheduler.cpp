// Regression tests for the tau_e / tau_G cadence of core::RefreshScheduler
// (Algorithm 1's outer loop). Pins down the boundary semantics the sampler
// relies on: scoring fires on the very first call (iteration 0 included),
// rebuilds never fire at iteration 0, and both respect their periods even
// when the trainer skips iterations.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/refresh_scheduler.hpp"

namespace {

using sgm::core::RefreshScheduler;

TEST(RefreshScheduler, ScoreFiresAtIterationZeroThenEveryTauE) {
  RefreshScheduler sched(/*tau_e=*/3, /*tau_g=*/100);
  std::vector<std::uint64_t> fired;
  for (std::uint64_t it = 0; it <= 9; ++it)
    if (sched.should_score(it)) fired.push_back(it);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{0, 3, 6, 9}));
}

TEST(RefreshScheduler, ScoreFirstCallFiresEvenAtNonzeroIteration) {
  RefreshScheduler sched(/*tau_e=*/5, /*tau_g=*/100);
  EXPECT_TRUE(sched.should_score(7));
  EXPECT_FALSE(sched.should_score(8));
  EXPECT_FALSE(sched.should_score(11));
  EXPECT_TRUE(sched.should_score(12));  // 7 + tau_e
}

TEST(RefreshScheduler, RebuildDoesNotFireAtIterationZero) {
  // The initial PGM/LRD build happens at sampler construction, so the
  // scheduler must not request another one at iteration 0.
  RefreshScheduler sched(/*tau_e=*/1, /*tau_g=*/4);
  EXPECT_FALSE(sched.should_rebuild(0));
}

TEST(RefreshScheduler, RebuildFiresEveryTauGAfterWarmup) {
  RefreshScheduler sched(/*tau_e=*/1, /*tau_g=*/4);
  std::vector<std::uint64_t> fired;
  for (std::uint64_t it = 0; it <= 12; ++it)
    if (sched.should_rebuild(it)) fired.push_back(it);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{4, 8, 12}));
}

TEST(RefreshScheduler, RebuildDisabledWhenTauGZero) {
  RefreshScheduler sched(/*tau_e=*/1, /*tau_g=*/0);
  for (std::uint64_t it = 0; it <= 100; ++it)
    EXPECT_FALSE(sched.should_rebuild(it));
}

TEST(RefreshScheduler, BothHandleSkippedIterations) {
  // Callers are not required to poll every iteration; a late call still
  // fires once and re-anchors the period at the observed iteration.
  RefreshScheduler sched(/*tau_e=*/3, /*tau_g=*/4);
  EXPECT_TRUE(sched.should_score(0));
  EXPECT_TRUE(sched.should_score(10));
  EXPECT_FALSE(sched.should_score(12));
  EXPECT_TRUE(sched.should_score(13));

  EXPECT_TRUE(sched.should_rebuild(10));
  EXPECT_FALSE(sched.should_rebuild(13));
  EXPECT_TRUE(sched.should_rebuild(14));
}

TEST(RefreshScheduler, ExposesConfiguredPeriods) {
  RefreshScheduler sched(/*tau_e=*/7000, /*tau_g=*/25000);
  EXPECT_EQ(sched.tau_e(), 7000u);
  EXPECT_EQ(sched.tau_g(), 25000u);
}

// ----------------------------------------- dirty-fraction-aware cadence ---
// The rebuild cadence is a pure function of iteration numbers and observed
// dirty fractions — never wall-clock time. With no signal it must be the
// legacy fixed-tau_G schedule bit-for-bit.

TEST(RefreshScheduler, NoSignalKeepsLegacyCadence) {
  RefreshScheduler sched(/*tau_e=*/1, /*tau_g=*/6);
  EXPECT_FALSE(sched.has_dirty_signal());
  EXPECT_EQ(sched.effective_tau_g(), 6u);
  std::vector<std::uint64_t> fired;
  for (std::uint64_t it = 0; it <= 18; ++it)
    if (sched.should_rebuild(it)) fired.push_back(it);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{6, 12, 18}));
}

TEST(RefreshScheduler, HotSignalAcceleratesRebuilds) {
  RefreshScheduler sched(/*tau_e=*/1, /*tau_g=*/8);  // hot: >= 0.5 => /4
  sched.observe_dirty_fraction(0.75);
  EXPECT_TRUE(sched.has_dirty_signal());
  EXPECT_EQ(sched.effective_tau_g(), 2u);
  std::vector<std::uint64_t> fired;
  for (std::uint64_t it = 0; it <= 8; ++it)
    if (sched.should_rebuild(it)) fired.push_back(it);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{2, 4, 6, 8}));
}

TEST(RefreshScheduler, CoolSignalKeepsBaseCadence) {
  RefreshScheduler sched(/*tau_e=*/1, /*tau_g=*/8);
  sched.observe_dirty_fraction(0.49);  // below the default hot threshold
  EXPECT_EQ(sched.effective_tau_g(), 8u);
  // Signals update as observed; dropping back below hot restores tau_g.
  sched.observe_dirty_fraction(0.9);
  EXPECT_EQ(sched.effective_tau_g(), 2u);
  sched.observe_dirty_fraction(0.1);
  EXPECT_EQ(sched.effective_tau_g(), 8u);
}

TEST(RefreshScheduler, ColdSignalDefersOnlyWhenEnabled) {
  sgm::core::RefreshCadence cadence;
  cadence.cold_fraction = 0.02;
  cadence.cold_multiplier = 2;
  RefreshScheduler sched(/*tau_e=*/1, /*tau_g=*/5, cadence);
  sched.observe_dirty_fraction(0.0);
  EXPECT_EQ(sched.effective_tau_g(), 10u);
  // Default cadence: a zero fraction must NOT defer (cold path disabled).
  RefreshScheduler plain(/*tau_e=*/1, /*tau_g=*/5);
  plain.observe_dirty_fraction(0.0);
  EXPECT_EQ(plain.effective_tau_g(), 5u);
}

TEST(RefreshScheduler, SignalClampsAndClears) {
  RefreshScheduler sched(/*tau_e=*/1, /*tau_g=*/8);
  sched.observe_dirty_fraction(7.5);  // clamped into [0, 1]
  EXPECT_DOUBLE_EQ(sched.dirty_fraction(), 1.0);
  EXPECT_EQ(sched.effective_tau_g(), 2u);
  sched.observe_dirty_fraction(-1.0);  // negative clears back to legacy
  EXPECT_FALSE(sched.has_dirty_signal());
  EXPECT_EQ(sched.effective_tau_g(), 8u);
}

TEST(RefreshScheduler, AcceleratedPeriodFloorsAtOneAndZeroStaysDisabled) {
  RefreshScheduler tiny(/*tau_e=*/1, /*tau_g=*/2);
  tiny.observe_dirty_fraction(1.0);
  EXPECT_EQ(tiny.effective_tau_g(), 1u);  // 2/4 floors at 1

  RefreshScheduler off(/*tau_e=*/1, /*tau_g=*/0);
  off.observe_dirty_fraction(1.0);
  EXPECT_EQ(off.effective_tau_g(), 0u);
  for (std::uint64_t it = 0; it <= 50; ++it)
    EXPECT_FALSE(off.should_rebuild(it));
}

TEST(RefreshScheduler, CadenceIsAPureFunctionOfItsInputs) {
  // Same iteration/signal stream twice => identical fire pattern. This is
  // the "never wall-clock" pin: there is no clock to diverge on.
  auto run = [] {
    RefreshScheduler sched(/*tau_e=*/1, /*tau_g=*/8);
    std::vector<std::uint64_t> fired;
    for (std::uint64_t it = 0; it <= 40; ++it) {
      if (it == 10) sched.observe_dirty_fraction(0.8);
      if (it == 25) sched.observe_dirty_fraction(0.05);
      if (sched.should_rebuild(it)) fired.push_back(it);
    }
    return fired;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

}  // namespace
