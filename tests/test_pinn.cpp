// Tests for the PINN problem layer: geometry sampling, loss assembly, the
// zero-equation closure, and — critically — that each problem's residual
// operator is consistent with finite differences of the network and that
// exact reference solutions produce (near-)zero residuals.

#include <gtest/gtest.h>

#include <cmath>

#include "cfd/analytic.hpp"
#include "nn/mlp.hpp"
#include "pinn/annular.hpp"
#include "pinn/geometry.hpp"
#include "pinn/loss.hpp"
#include "pinn/navier_stokes.hpp"
#include "pinn/pde.hpp"
#include "pinn/point_cloud.hpp"
#include "pinn/validation.hpp"
#include "pinn/zero_eq.hpp"
#include "util/rng.hpp"

namespace {

using sgm::nn::Mlp;
using sgm::nn::MlpConfig;
using sgm::tensor::Matrix;
using sgm::tensor::Tape;
using sgm::tensor::VarId;

// ---------------------------------------------------------------- geometry --

TEST(Geometry, RectangleSdfSigns) {
  sgm::pinn::Rectangle r(0, 1, 0, 2);
  EXPECT_LT(r.sdf(0.5, 1.0), 0.0);
  EXPECT_GT(r.sdf(1.5, 1.0), 0.0);
  EXPECT_NEAR(r.sdf(0.5, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(r.sdf(2.0, 1.0), 1.0, 1e-12);  // distance outside
}

TEST(Geometry, InteriorSamplesInside) {
  sgm::util::Rng rng(1);
  sgm::pinn::Rectangle r(0, 1, 0, 1);
  sgm::pinn::Circle hole(0.5, 0.5, 0.2);
  sgm::pinn::Difference dom(r, hole);
  const Matrix pts = dom.sample_interior(500, rng);
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    EXPECT_LT(dom.sdf(pts(i, 0), pts(i, 1)), 0.0);
    EXPECT_GT(hole.sdf(pts(i, 0), pts(i, 1)), 0.0);  // outside the hole
  }
}

TEST(Geometry, SideSamplesOnBoundary) {
  sgm::util::Rng rng(2);
  sgm::pinn::Rectangle r(0, 2, 1, 3);
  const Matrix top = r.sample_side(sgm::pinn::Rectangle::Side::kTop, 50, rng);
  for (std::size_t i = 0; i < top.rows(); ++i) {
    EXPECT_DOUBLE_EQ(top(i, 1), 3.0);
    EXPECT_GE(top(i, 0), 0.0);
    EXPECT_LE(top(i, 0), 2.0);
  }
}

TEST(Geometry, CircleBoundaryOnCircle) {
  sgm::util::Rng rng(3);
  sgm::pinn::Circle c(1.0, -1.0, 0.5);
  const Matrix pts = c.sample_boundary(64, rng);
  for (std::size_t i = 0; i < pts.rows(); ++i)
    EXPECT_NEAR(c.sdf(pts(i, 0), pts(i, 1)), 0.0, 1e-12);
}

TEST(Geometry, WallDistance) {
  EXPECT_DOUBLE_EQ(sgm::pinn::unit_square_wall_distance(0.5, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(sgm::pinn::unit_square_wall_distance(0.1, 0.5), 0.1);
  EXPECT_NEAR(sgm::pinn::unit_square_wall_distance(0.5, 0.95), 0.05, 1e-12);
}

// -------------------------------------------------------------- point cloud --

TEST(PointCloud, GatherRows) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const Matrix g = sgm::pinn::gather_rows(m, {2, 0});
  EXPECT_DOUBLE_EQ(g(0, 0), 5);
  EXPECT_DOUBLE_EQ(g(1, 1), 2);
  EXPECT_THROW(sgm::pinn::gather_rows(m, {9}), std::out_of_range);
}

TEST(PointCloud, GridAndLinspace) {
  const auto xs = sgm::pinn::linspace(0, 1, 5);
  EXPECT_DOUBLE_EQ(xs[0], 0.0);
  EXPECT_DOUBLE_EQ(xs[4], 1.0);
  EXPECT_DOUBLE_EQ(xs[2], 0.5);
  const Matrix grid = sgm::pinn::make_grid(0, 1, 3, 0, 2, 4);
  EXPECT_EQ(grid.rows(), 12u);
  EXPECT_DOUBLE_EQ(grid(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(grid(11, 1), 2.0);
}

// -------------------------------------------------------------------- loss --

TEST(Loss, MseAndWeightedMse) {
  Tape t;
  VarId r = t.constant(Matrix{{1}, {2}, {3}});
  EXPECT_NEAR(t.value(sgm::pinn::mse(t, r))(0, 0), (1 + 4 + 9) / 3.0, 1e-12);
  Matrix w{{1}, {0}, {2}};
  EXPECT_NEAR(t.value(sgm::pinn::weighted_mse(t, r, w))(0, 0),
              (1.0 * 1 + 0 + 2.0 * 9) / 3.0, 1e-12);
}

TEST(Loss, CombineWeightsTerms) {
  Tape t;
  VarId a = t.constant(Matrix(1, 1, 2.0));
  VarId b = t.constant(Matrix(1, 1, 3.0));
  VarId total = sgm::pinn::combine(t, {{"a", a, 1.0}, {"b", b, 10.0}});
  EXPECT_DOUBLE_EQ(t.value(total)(0, 0), 32.0);
  EXPECT_THROW(sgm::pinn::combine(t, {}), std::invalid_argument);
}

TEST(Loss, SqrtEpsDerivativeLadder) {
  const auto& f = sgm::pinn::sqrt_eps();
  const double h = 1e-7;
  for (double x : {0.1, 1.0, 4.0}) {
    for (int order = 0; order < 2; ++order) {
      const double numeric =
          (f.eval(x + h, order) - f.eval(x - h, order)) / (2 * h);
      EXPECT_NEAR(f.eval(x, order + 1), numeric, 1e-5);
    }
  }
  EXPECT_GT(f.eval(0.0, 1), 0.0);  // finite at zero
}

// ----------------------------------------------------------------- zero-eq --

TEST(ZeroEq, MixingLengthCapped) {
  sgm::pinn::ZeroEqOptions opt;
  EXPECT_NEAR(sgm::pinn::mixing_length(0.01, opt), 0.419 * 0.01, 1e-12);
  EXPECT_NEAR(sgm::pinn::mixing_length(0.5, opt), 0.09 * 0.5, 1e-12);
}

TEST(ZeroEq, NutMatchesHandComputedStrain) {
  sgm::util::Rng rng(4);
  MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 3;
  cfg.width = 8;
  cfg.depth = 2;
  Mlp net(cfg, rng);
  Matrix x{{0.3, 0.4}, {0.6, 0.2}};
  Tape t;
  auto binding = net.bind(t);
  auto out = net.forward_on_tape(t, binding, x, 2);
  Matrix wall_d{{0.1}, {0.3}};
  sgm::pinn::ZeroEqOptions opt;
  VarId nut = sgm::pinn::zero_eq_nu_t(t, out, 0, 1, wall_d, opt);
  const Matrix& jx = t.value(out.dy[0]);
  const Matrix& jy = t.value(out.dy[1]);
  for (std::size_t i = 0; i < 2; ++i) {
    const double ux = jx(i, 0), vx = jx(i, 1);
    const double uy = jy(i, 0), vy = jy(i, 1);
    const double g = 2 * (ux * ux + vy * vy) + (uy + vx) * (uy + vx);
    const double lm = sgm::pinn::mixing_length(wall_d(i, 0), opt);
    EXPECT_NEAR(t.value(nut)(i, 0), lm * lm * std::sqrt(g), 1e-6);
  }
}

// ---------------------------------------------------------- Poisson problem --

TEST(PoissonProblem, ShapesAndDeterminism) {
  sgm::pinn::PoissonProblem::Options opt;
  opt.interior_points = 256;
  opt.boundary_points = 64;
  sgm::pinn::PoissonProblem p1(opt), p2(opt);
  EXPECT_EQ(p1.interior_points().rows(), 256u);
  EXPECT_LT(
      (p1.interior_points() - Matrix(p2.interior_points())).max_abs(), 1e-15);
}

TEST(PoissonProblem, PointwiseResidualMatchesFiniteDifference) {
  sgm::util::Rng rng(5);
  sgm::pinn::PoissonProblem::Options popt;
  popt.interior_points = 64;
  sgm::pinn::PoissonProblem prob(popt);
  MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 1;
  cfg.width = 8;
  cfg.depth = 2;
  Mlp net(cfg, rng);
  auto res = prob.pointwise_residual(net, {0, 1, 2, 3});
  EXPECT_EQ(res.size(), 4u);
  for (double r : res) EXPECT_GE(r, 0.0);
  for (std::uint32_t i = 0; i < 4; ++i) {
    const double x = prob.interior_points()(i, 0);
    const double y = prob.interior_points()(i, 1);
    const double h = 1e-4;
    auto u = [&](double a, double b) {
      Matrix q(1, 2);
      q(0, 0) = a;
      q(0, 1) = b;
      return net.forward(q)(0, 0);
    };
    const double lap = (u(x + h, y) + u(x - h, y) + u(x, y + h) +
                        u(x, y - h) - 4 * u(x, y)) /
                       (h * h);
    const double expect = lap + sgm::cfd::poisson_manufactured_rhs(x, y);
    EXPECT_NEAR(std::sqrt(res[i]), std::fabs(expect), 5e-3);
  }
}

TEST(PoissonProblem, BatchLossBackpropagates) {
  sgm::util::Rng rng(6);
  sgm::pinn::PoissonProblem::Options popt;
  popt.interior_points = 64;
  sgm::pinn::PoissonProblem prob(popt);
  MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 1;
  cfg.width = 8;
  cfg.depth = 2;
  Mlp net(cfg, rng);
  Tape tape;
  auto binding = net.bind(tape);
  VarId loss = prob.batch_loss(tape, net, binding, {0, 1, 2, 3, 4}, rng);
  EXPECT_GT(tape.value(loss)(0, 0), 0.0);
  tape.backward(loss);
  auto grads = net.collect_grads(tape, binding);
  double gnorm = 0;
  for (const auto& g : grads) gnorm += g.frobenius_norm();
  EXPECT_GT(gnorm, 0.0);
}

// --------------------------------------------------------------- LDC problem --

TEST(LdcProblem, ConstructsAndScores) {
  sgm::util::Rng rng(7);
  sgm::pinn::LdcProblem::Options opt;
  opt.interior_points = 128;
  opt.boundary_points = 64;
  sgm::pinn::LdcProblem prob(opt, nullptr);
  EXPECT_EQ(prob.input_dim(), 2u);
  EXPECT_EQ(prob.output_dim(), 3u);
  MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 3;
  cfg.width = 8;
  cfg.depth = 2;
  Mlp net(cfg, rng);
  auto res = prob.pointwise_residual(net, {0, 5, 10});
  EXPECT_EQ(res.size(), 3u);
  Tape tape;
  auto binding = net.bind(tape);
  VarId loss = prob.batch_loss(tape, net, binding, {0, 1, 2}, rng);
  tape.backward(loss);
  EXPECT_GT(tape.value(loss)(0, 0), 0.0);
  // Without a reference solution, validation is empty.
  EXPECT_TRUE(prob.validate(net).empty());
}

TEST(LdcProblem, NavierStokesResidualConsistency) {
  // For a random network state, the momentum-x residual recomputed from
  // finite differences of the network must match the tape value.
  sgm::util::Rng rng(8);
  MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 3;
  cfg.width = 8;
  cfg.depth = 2;
  Mlp net(cfg, rng);
  Matrix pt(1, 2);
  pt(0, 0) = 0.4;
  pt(0, 1) = 0.6;
  Tape tape;
  auto binding = net.bind(tape);
  auto out = net.forward_on_tape(tape, binding, pt, 2);
  auto res = sgm::pinn::navier_stokes_residuals(tape, out, 0.01,
                                                sgm::tensor::kNoVar);
  auto f = [&](double x, double y, int c) {
    Matrix q(1, 2);
    q(0, 0) = x;
    q(0, 1) = y;
    return net.forward(q)(0, c);
  };
  const double x = 0.4, y = 0.6, h = 1e-4;
  const double u = f(x, y, 0), v = f(x, y, 1);
  const double ux = (f(x + h, y, 0) - f(x - h, y, 0)) / (2 * h);
  const double uy = (f(x, y + h, 0) - f(x, y - h, 0)) / (2 * h);
  const double px = (f(x + h, y, 2) - f(x - h, y, 2)) / (2 * h);
  const double uxx = (f(x + h, y, 0) - 2 * u + f(x - h, y, 0)) / (h * h);
  const double uyy = (f(x, y + h, 0) - 2 * u + f(x, y - h, 0)) / (h * h);
  const double expect = u * ux + v * uy + px - 0.01 * (uxx + uyy);
  EXPECT_NEAR(tape.value(res.momentum_x)(0, 0), expect, 1e-3);
}

// ------------------------------------------------------------- annular ring --

TEST(AnnularProblem, CloudRespectsParameterizedGeometry) {
  sgm::pinn::AnnularProblem::Options opt;
  opt.interior_points = 512;
  opt.boundary_points = 128;
  sgm::pinn::AnnularProblem prob(opt);
  const Matrix& pts = prob.interior_points();
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    const double z = pts(i, 0), r = pts(i, 1), ri = pts(i, 2);
    EXPECT_GE(z, 0.0);
    EXPECT_LE(z, opt.length);
    EXPECT_GE(ri, opt.r_inner_min);
    EXPECT_LE(ri, opt.r_inner_max);
    EXPECT_GE(r, ri);
    EXPECT_LE(r, opt.r_outer);
  }
}

TEST(AnnularProblem, ResidualAndLossRun) {
  sgm::util::Rng rng(9);
  sgm::pinn::AnnularProblem::Options opt;
  opt.interior_points = 128;
  opt.boundary_points = 64;
  sgm::pinn::AnnularProblem prob(opt);
  MlpConfig cfg;
  cfg.input_dim = 3;
  cfg.output_dim = 3;
  cfg.width = 8;
  cfg.depth = 2;
  Mlp net(cfg, rng);
  auto res = prob.pointwise_residual(net, {0, 1, 2, 3});
  EXPECT_EQ(res.size(), 4u);
  Tape tape;
  auto binding = net.bind(tape);
  VarId loss = prob.batch_loss(tape, net, binding, {0, 1, 2, 3}, rng);
  tape.backward(loss);
  EXPECT_GT(tape.value(loss)(0, 0), 0.0);
}

TEST(AnnularProblem, ValidationAgainstExactSolution) {
  sgm::pinn::AnnularProblem::Options opt;
  opt.interior_points = 64;
  sgm::pinn::AnnularProblem prob(opt);
  auto ref = prob.reference(1.0);
  EXPECT_NEAR(ref.axial_velocity(1.0), 0.0, 1e-12);
  sgm::util::Rng rng(10);
  MlpConfig cfg;
  cfg.input_dim = 3;
  cfg.output_dim = 3;
  cfg.width = 8;
  cfg.depth = 2;
  Mlp net(cfg, rng);
  auto errs = prob.validate(net);
  ASSERT_EQ(errs.size(), 3u);
  EXPECT_GT(errs[0].error, 0.1);  // untrained: far from the solution
}

TEST(AnnularProblem, PressureErrorFieldShape) {
  sgm::pinn::AnnularProblem::Options opt;
  opt.interior_points = 64;
  sgm::pinn::AnnularProblem prob(opt);
  sgm::util::Rng rng(11);
  MlpConfig cfg;
  cfg.input_dim = 3;
  cfg.output_dim = 3;
  cfg.width = 8;
  cfg.depth = 2;
  Mlp net(cfg, rng);
  const Matrix field = prob.pressure_error_field(net, 1.0, 8, 6);
  EXPECT_EQ(field.rows(), 48u);
  EXPECT_EQ(field.cols(), 3u);
  for (std::size_t i = 0; i < field.rows(); ++i) EXPECT_GE(field(i, 2), 0.0);
  EXPECT_NO_THROW(sgm::pinn::ascii_heatmap(field, 8, 6));
}

// -------------------------------------------------------------- validation --

TEST(Validation, RelativeL2) {
  EXPECT_NEAR(sgm::pinn::relative_l2({1, 1}, {2, 2}),
              std::sqrt(2.0) / std::sqrt(8.0), 1e-12);
  EXPECT_NEAR(sgm::pinn::relative_l2({3, 4}, {0, 0}), 5.0, 1e-12);
  EXPECT_THROW(sgm::pinn::relative_l2({1}, {1, 2}), std::invalid_argument);
}

TEST(Validation, FormatAndLookup) {
  std::vector<sgm::pinn::ValidationEntry> v = {{"u", 0.5}, {"v", 0.25}};
  EXPECT_EQ(sgm::pinn::format_validation(v), "u=0.5 v=0.25");
  EXPECT_DOUBLE_EQ(sgm::pinn::validation_error(v, "v"), 0.25);
  EXPECT_TRUE(std::isinf(sgm::pinn::validation_error(v, "zzz")));
}

}  // namespace
