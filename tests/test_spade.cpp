// Tests for the SPADE / ISR stability metric (S3): generalized eigenvalue
// sanity on constructed input/output graph pairs and localization of node
// scores at unstable regions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/knn.hpp"
#include "spade/isr.hpp"
#include "util/rng.hpp"

namespace {

using sgm::graph::CsrGraph;
using sgm::spade::IsrOptions;
using sgm::spade::IsrResult;
using sgm::tensor::Matrix;

Matrix line_points(std::size_t n) {
  Matrix pts(n, 1);
  for (std::size_t i = 0; i < n; ++i)
    pts(i, 0) = static_cast<double>(i) / static_cast<double>(n - 1);
  return pts;
}

TEST(Isr, IdentityMapHasUnitEigenvalues) {
  // Y = X => L_Y == L_X => generalized eigenvalues ~ 1 (up to the shift).
  const std::size_t n = 60;
  const Matrix x = line_points(n);
  sgm::graph::KnnGraphOptions kopt;
  kopt.k = 4;
  const CsrGraph gx = sgm::graph::build_knn_graph(x, kopt);
  IsrOptions opt;
  opt.rank = 4;
  opt.subspace_iterations = 8;
  opt.y_knn.k = 4;
  const IsrResult r = sgm::spade::compute_isr(gx, x, opt);
  ASSERT_FALSE(r.eigenvalues.empty());
  for (double ev : r.eigenvalues) EXPECT_NEAR(ev, 1.0, 0.25);
}

TEST(Isr, UniformScalingScalesIsrMax) {
  // Y = 2X halves the inverse-distance output weights, so L_Y = L_X / 2 and
  // the pencil's eigenvalues all become ~2.
  const std::size_t n = 60;
  const Matrix x = line_points(n);
  Matrix y = x;
  y.scale(2.0);
  sgm::graph::KnnGraphOptions kopt;
  kopt.k = 4;
  const CsrGraph gx = sgm::graph::build_knn_graph(x, kopt);
  IsrOptions opt;
  opt.rank = 4;
  opt.subspace_iterations = 8;
  opt.y_knn.k = 4;
  const IsrResult r = sgm::spade::compute_isr(gx, y, opt);
  EXPECT_NEAR(r.isr_max(), 2.0, 0.5);
}

TEST(Isr, ScoresLocalizeAtSteepRegion) {
  // Map: identity on [0, 0.5], steep x20 slope on (0.5, 1]. Node scores in
  // the steep half must dominate those in the flat half.
  const std::size_t n = 120;
  const Matrix x = line_points(n);
  Matrix y(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = x(i, 0);
    y(i, 0) = v <= 0.5 ? v : 0.5 + 20.0 * (v - 0.5);
  }
  sgm::graph::KnnGraphOptions kopt;
  kopt.k = 4;
  const CsrGraph gx = sgm::graph::build_knn_graph(x, kopt);
  IsrOptions opt;
  opt.rank = 6;
  opt.subspace_iterations = 10;
  opt.y_knn.k = 4;
  const IsrResult r = sgm::spade::compute_isr(gx, y, opt);

  double steep = 0, flat = 0;
  std::size_t steep_n = 0, flat_n = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (x(i, 0) > 0.55) {
      steep += r.node_score[i];
      ++steep_n;
    } else if (x(i, 0) < 0.45) {
      flat += r.node_score[i];
      ++flat_n;
    }
  }
  steep /= steep_n;
  flat /= flat_n;
  EXPECT_GT(steep, 2.0 * flat)
      << "steep mean " << steep << " flat mean " << flat;
}

TEST(Isr, EdgeScoreSymmetricNonNegative) {
  const std::size_t n = 40;
  sgm::util::Rng rng(3);
  Matrix x(n, 2);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform();
  Matrix y(n, 1);
  for (std::size_t i = 0; i < n; ++i) y(i, 0) = std::sin(5 * x(i, 0));
  sgm::graph::KnnGraphOptions kopt;
  kopt.k = 5;
  const CsrGraph gx = sgm::graph::build_knn_graph(x, kopt);
  IsrOptions opt;
  opt.rank = 4;
  const IsrResult r = sgm::spade::compute_isr(gx, y, opt);
  for (sgm::graph::NodeId p = 0; p < 10; ++p) {
    for (sgm::graph::NodeId q = 0; q < 10; ++q) {
      const double spq = sgm::spade::isr_edge_score(r, p, q);
      EXPECT_GE(spq, 0.0);
      EXPECT_NEAR(spq, sgm::spade::isr_edge_score(r, q, p), 1e-12);
    }
  }
}

TEST(Isr, NodeScoresMatchNeighborAverageDefinition) {
  const std::size_t n = 30;
  const Matrix x = line_points(n);
  Matrix y(n, 1);
  for (std::size_t i = 0; i < n; ++i) y(i, 0) = x(i, 0) * x(i, 0);
  sgm::graph::KnnGraphOptions kopt;
  kopt.k = 3;
  const CsrGraph gx = sgm::graph::build_knn_graph(x, kopt);
  IsrOptions opt;
  opt.rank = 3;
  const IsrResult r = sgm::spade::compute_isr(gx, y, opt);
  for (sgm::graph::NodeId p = 0; p < n; ++p) {
    const auto nbrs = gx.neighbors(p);
    double mean = 0;
    for (auto q : nbrs) mean += sgm::spade::isr_edge_score(r, p, q);
    mean /= static_cast<double>(nbrs.size());
    EXPECT_NEAR(r.node_score[p], mean, 1e-12);
  }
}

TEST(Isr, MismatchedGraphSizesThrow) {
  const Matrix x = line_points(10);
  sgm::graph::KnnGraphOptions kopt;
  kopt.k = 2;
  const CsrGraph gx = sgm::graph::build_knn_graph(x, kopt);
  const Matrix y = line_points(8);
  EXPECT_THROW(sgm::spade::compute_isr(gx, y, {}), std::invalid_argument);
}

TEST(Isr, DeterministicForFixedSeed) {
  const std::size_t n = 50;
  const Matrix x = line_points(n);
  Matrix y(n, 1);
  for (std::size_t i = 0; i < n; ++i) y(i, 0) = std::cos(3 * x(i, 0));
  sgm::graph::KnnGraphOptions kopt;
  kopt.k = 4;
  const CsrGraph gx = sgm::graph::build_knn_graph(x, kopt);
  IsrOptions opt;
  opt.seed = 1234;
  const IsrResult a = sgm::spade::compute_isr(gx, y, opt);
  const IsrResult b = sgm::spade::compute_isr(gx, y, opt);
  ASSERT_EQ(a.node_score.size(), b.node_score.size());
  for (std::size_t i = 0; i < a.node_score.size(); ++i)
    EXPECT_DOUBLE_EQ(a.node_score[i], b.node_score[i]);
}

}  // namespace
