// Unit tests for the POSIX TCP wrappers (src/util/socket.hpp), focused on
// the error paths the HTTP front end depends on: orderly-shutdown reads,
// writes to a vanished peer, receive timeouts, the listener's wake-pipe
// close() contract and connect failures.

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "util/failpoint.hpp"
#include "util/socket.hpp"

namespace {

using sgm::util::TcpListener;
using sgm::util::TcpSocket;
using sgm::util::tcp_connect;

// Accepted server end + connected client end of one loopback connection.
struct Loopback {
  TcpSocket server, client;
};

Loopback make_loopback(TcpListener& listener) {
  Loopback lb;
  std::thread accepter([&] { lb.server = listener.accept(); });
  lb.client = tcp_connect(listener.port());
  accepter.join();
  return lb;
}

TEST(Socket, EphemeralPortIsAssigned) {
  TcpListener listener(0);
  EXPECT_NE(listener.port(), 0);
}

TEST(Socket, RoundTrip) {
  TcpListener listener(0);
  Loopback lb = make_loopback(listener);
  ASSERT_TRUE(lb.server.valid());
  ASSERT_TRUE(lb.client.valid());

  const std::string msg = "ping";
  ASSERT_TRUE(lb.client.write_all(msg));
  char buf[16];
  long got = lb.server.read_some(buf, sizeof(buf));
  ASSERT_GT(got, 0);
  EXPECT_EQ(std::string(buf, static_cast<std::size_t>(got)), msg);
}

TEST(Socket, ReadReturnsZeroOnOrderlyPeerShutdown) {
  TcpListener listener(0);
  Loopback lb = make_loopback(listener);
  lb.client.close();
  char buf[8];
  EXPECT_EQ(lb.server.read_some(buf, sizeof(buf)), 0);
}

TEST(Socket, WriteToClosedPeerFailsWithoutSigpipe) {
  TcpListener listener(0);
  Loopback lb = make_loopback(listener);
  lb.server.close();
  // The first writes may land in kernel buffers; keep pushing until the
  // RST surfaces. MSG_NOSIGNAL means we observe `false`, not SIGPIPE
  // killing the process.
  const std::string chunk(64 * 1024, 'x');
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i)
    failed = !lb.client.write_all(chunk);
  EXPECT_TRUE(failed);
}

TEST(Socket, InvalidSocketOperationsFail) {
  TcpSocket s;
  EXPECT_FALSE(s.valid());
  char buf[4];
  EXPECT_EQ(s.read_some(buf, sizeof(buf)), -1);
  EXPECT_FALSE(s.write_all("x", 1));
}

TEST(Socket, MoveTransfersOwnership) {
  TcpListener listener(0);
  Loopback lb = make_loopback(listener);
  const int fd = lb.client.fd();
  TcpSocket moved = std::move(lb.client);
  EXPECT_EQ(moved.fd(), fd);
  EXPECT_FALSE(lb.client.valid());
  EXPECT_TRUE(moved.write_all("still open", 10));
}

TEST(Socket, RecvTimeoutUnblocksIdleRead) {
  TcpListener listener(0);
  Loopback lb = make_loopback(listener);
  lb.server.set_recv_timeout(0.05);
  char buf[8];
  // No data ever arrives: the read must return an error instead of
  // parking the thread forever (the keep-alive guard in the HTTP server).
  EXPECT_EQ(lb.server.read_some(buf, sizeof(buf)), -1);
}

TEST(Socket, CloseUnblocksPendingAccept) {
  TcpListener listener(0);
  TcpSocket accepted;
  std::thread accepter([&] { accepted = listener.accept(); });
  // Give the acceptor time to park in poll(), then close from this thread:
  // the wake pipe must unblock it with an invalid socket.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  listener.close();
  accepter.join();
  EXPECT_FALSE(accepted.valid());
}

TEST(Socket, AcceptAfterCloseReturnsInvalid) {
  TcpListener listener(0);
  listener.close();
  EXPECT_FALSE(listener.accept().valid());
}

// Regression for the send loop: with the `socket.short_send` failpoint
// forcing 1-byte kernel writes, write_all must resume from every partial
// send and still deliver the payload bitwise (the HTTP server's only write
// path rides on this loop).
TEST(Socket, WriteAllResumesAcrossShortSends) {
  sgm::util::FailpointRegistry::instance().arm("socket.short_send", "always");
  TcpListener listener(0);
  Loopback lb = make_loopback(listener);

  std::string payload(8192, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<char>('a' + i % 23);

  std::string received;
  std::thread reader([&] {
    char chunk[512];
    long n;
    while (received.size() < payload.size() &&
           (n = lb.server.read_some(chunk, sizeof(chunk))) > 0)
      received.append(chunk, static_cast<std::size_t>(n));
  });
  const bool ok = lb.client.write_all(payload);
  reader.join();
  sgm::util::FailpointRegistry::instance().disarm_all();

  EXPECT_TRUE(ok);
  EXPECT_EQ(received, payload);
}

// A peer that never reads must not park the writer forever: once the
// kernel buffers fill, SO_SNDTIMEO expires the blocked send and write_all
// reports failure (the per-connection write timeout in the HTTP server).
TEST(Socket, SendTimeoutFailsStalledWrite) {
  TcpListener listener(0);
  Loopback lb = make_loopback(listener);
  lb.client.set_send_timeout(0.1);

  // Large enough to overrun both the send and receive kernel buffers on
  // any sane loopback configuration.
  const std::string payload(64 * 1024 * 1024, 'x');
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(lb.client.write_all(payload));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(30))
      << "the write timeout must bound the stall";
}

// --- nonblocking API (the epoll reactor's transport, PR 10) ----------------

TEST(Socket, ReadNbReturnsWouldBlockOnEmptySocket) {
  TcpListener listener(0);
  Loopback lb = make_loopback(listener);
  lb.server.set_nonblocking(true);
  char buf[8];
  // No bytes in flight: a nonblocking read must report would-block, not
  // park and not error.
  EXPECT_EQ(lb.server.read_nb(buf, sizeof(buf)), TcpSocket::kWouldBlock);

  ASSERT_TRUE(lb.client.write_all("hi", 2));
  // Data may take a scheduler beat to land in the receive buffer.
  long got = TcpSocket::kWouldBlock;
  for (int i = 0; i < 1000 && got == TcpSocket::kWouldBlock; ++i) {
    got = lb.server.read_nb(buf, sizeof(buf));
    if (got == TcpSocket::kWouldBlock)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(got, 2);
  EXPECT_EQ(std::string(buf, 2), "hi");

  lb.client.close();
  got = TcpSocket::kWouldBlock;
  for (int i = 0; i < 1000 && got == TcpSocket::kWouldBlock; ++i)
    got = lb.server.read_nb(buf, sizeof(buf));
  EXPECT_EQ(got, 0) << "orderly shutdown must still read as 0";
}

TEST(Socket, WriteSomeReportsWouldBlockWhenBufferFull) {
  TcpListener listener(0);
  Loopback lb = make_loopback(listener);
  lb.client.set_nonblocking(true);

  // The peer never reads: keep writing until the kernel buffers fill. A
  // nonblocking write must then report would-block instead of parking.
  const std::string chunk(64 * 1024, 'x');
  long rc = 0;
  std::size_t total = 0;
  for (int i = 0; i < 4096; ++i) {
    rc = lb.client.write_some(chunk.data(), chunk.size());
    if (rc == TcpSocket::kWouldBlock) break;
    ASSERT_GT(rc, 0);
    total += static_cast<std::size_t>(rc);
  }
  EXPECT_EQ(rc, TcpSocket::kWouldBlock);

  // Drain on the blocking side: every byte the writer thinks it sent must
  // arrive (partial-send accounting is exact).
  std::size_t received = 0;
  char buf[65536];
  while (received < total) {
    const long n = lb.server.read_some(buf, sizeof(buf));
    ASSERT_GT(n, 0);
    received += static_cast<std::size_t>(n);
  }
  EXPECT_EQ(received, total);
}

TEST(Socket, WriteSomeHonorsShortSendFailpoint) {
  sgm::util::FailpointRegistry::instance().arm("socket.short_send", "always");
  TcpListener listener(0);
  Loopback lb = make_loopback(listener);
  lb.client.set_nonblocking(true);
  // The failpoint caps each kernel send at one byte — the partial-write
  // continuation path the reactor's flush cursor depends on.
  EXPECT_EQ(lb.client.write_some("abc", 3), 1);
  sgm::util::FailpointRegistry::instance().disarm_all();
}

TEST(Socket, AcceptNbDistinguishesWouldBlockFromClosed) {
  TcpListener listener(0);
  listener.set_nonblocking(true);

  bool would_block = false;
  TcpSocket conn = listener.accept_nb(would_block);
  EXPECT_FALSE(conn.valid());
  EXPECT_TRUE(would_block) << "no pending connection is not an error";

  // A pending connection accepts without parking, already nonblocking:
  // a read on the fresh connection reports would-block, not a stall.
  TcpSocket client = tcp_connect(listener.port());
  for (int i = 0; i < 1000 && !conn.valid(); ++i) {
    conn = listener.accept_nb(would_block);
    if (!conn.valid())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(conn.valid());
  char buf[4];
  EXPECT_EQ(conn.read_nb(buf, sizeof(buf)), TcpSocket::kWouldBlock);

  listener.close();
  conn = listener.accept_nb(would_block);
  EXPECT_FALSE(conn.valid());
  EXPECT_FALSE(would_block) << "a closed listener is terminal, not a retry";
}

TEST(Socket, ConnectToDeadPortThrows) {
  // Bind an ephemeral port, then close it: connecting to it afterwards
  // must be refused (nothing is listening there anymore).
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
    listener.close();
  }
  EXPECT_THROW(tcp_connect(dead_port), std::runtime_error);
}

}  // namespace
