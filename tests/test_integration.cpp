// End-to-end integration tests: the full trainer loop over real problems
// with every sampler, checking that training actually reduces validation
// error and that the SGM pipeline's moving parts cooperate.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/sgm_sampler.hpp"
#include "history_compare.hpp"
#include "nn/mlp.hpp"
#include "pinn/annular.hpp"
#include "pinn/navier_stokes.hpp"
#include "pinn/pde.hpp"
#include "pinn/point_cloud.hpp"
#include "pinn/thermal.hpp"
#include "pinn/trainer.hpp"
#include "pinn/validation.hpp"
#include "samplers/mis.hpp"
#include "samplers/uniform.hpp"

namespace {

using sgm::nn::Mlp;
using sgm::nn::MlpConfig;

Mlp make_net(std::size_t in, std::size_t out, std::uint64_t seed,
             std::size_t width = 24, std::size_t depth = 3) {
  MlpConfig cfg;
  cfg.input_dim = in;
  cfg.output_dim = out;
  cfg.width = width;
  cfg.depth = depth;
  sgm::util::Rng rng(seed);
  return Mlp(cfg, rng);
}

sgm::pinn::TrainerOptions fast_trainer(std::uint64_t iters) {
  sgm::pinn::TrainerOptions opt;
  opt.batch_size = 96;
  opt.max_iterations = iters;
  opt.learning_rate = 2e-3;
  opt.validate_every = iters / 4;
  opt.seed = 3;
  return opt;
}

TEST(Integration, PoissonUniformTrainsToLowError) {
  sgm::pinn::PoissonProblem::Options popt;
  popt.interior_points = 2048;
  sgm::pinn::PoissonProblem problem(popt);
  Mlp net = make_net(2, 1, 11);
  sgm::samplers::UniformSampler sampler(2048);
  sgm::pinn::Trainer trainer(problem, net, sampler, fast_trainer(800));
  auto history = trainer.run();
  ASSERT_FALSE(history.records.empty());
  const double first =
      sgm::pinn::validation_error(history.records.front().validation, "u");
  const double best = history.best_error("u");
  EXPECT_LT(best, 0.3);
  EXPECT_LT(best, first);  // training reduced the error
  EXPECT_EQ(history.sampler_name, "uniform");
}

TEST(Integration, PoissonSgmTrainsAndRefreshes) {
  sgm::pinn::PoissonProblem::Options popt;
  popt.interior_points = 2048;
  sgm::pinn::PoissonProblem problem(popt);
  Mlp net = make_net(2, 1, 11);
  sgm::core::SgmOptions sopt;
  sopt.pgm.knn.k = 8;
  sopt.lrd.levels = 5;
  sopt.tau_e = 200;
  sopt.tau_g = 0;
  sopt.epoch.epoch_fraction = 0.25;
  sgm::core::SgmSampler sampler(problem.interior_points(), sopt);
  sgm::pinn::Trainer trainer(problem, net, sampler, fast_trainer(800));
  auto history = trainer.run();
  EXPECT_LT(history.best_error("u"), 0.3);
  EXPECT_GT(history.sampler_loss_evaluations, 0u);
  EXPECT_GT(history.sampler_refresh_s, 0.0);
  EXPECT_EQ(history.sampler_name, "sgm");
}

TEST(Integration, PoissonMisTrains) {
  sgm::pinn::PoissonProblem::Options popt;
  popt.interior_points = 2048;
  sgm::pinn::PoissonProblem problem(popt);
  Mlp net = make_net(2, 1, 11);
  sgm::samplers::MisOptions mopt;
  mopt.refresh_every = 200;
  mopt.num_seeds = 256;
  sgm::samplers::MisSampler sampler(problem.interior_points(), mopt);
  sgm::pinn::Trainer trainer(problem, net, sampler, fast_trainer(800));
  auto history = trainer.run();
  EXPECT_LT(history.best_error("u"), 0.35);
  EXPECT_GT(history.sampler_loss_evaluations, 0u);
}

TEST(Integration, TrainerWallBudgetStopsEarly) {
  sgm::pinn::PoissonProblem::Options popt;
  popt.interior_points = 1024;
  sgm::pinn::PoissonProblem problem(popt);
  Mlp net = make_net(2, 1, 5);
  sgm::samplers::UniformSampler sampler(1024);
  auto topt = fast_trainer(100000);  // would run forever without the budget
  topt.wall_time_budget_s = 0.5;
  sgm::pinn::Trainer trainer(problem, net, sampler, topt);
  auto history = trainer.run();
  EXPECT_LT(history.total_train_wall_s, 3.0);
  EXPECT_LT(history.records.back().iteration, 100000u);
}

TEST(Integration, TrainerTelemetryCsvWritten) {
  const std::string path = "/tmp/sgm_telemetry_test.csv";
  sgm::pinn::PoissonProblem::Options popt;
  popt.interior_points = 512;
  sgm::pinn::PoissonProblem problem(popt);
  Mlp net = make_net(2, 1, 6, 12, 2);
  sgm::samplers::UniformSampler sampler(512);
  auto topt = fast_trainer(40);
  topt.validate_every = 10;
  topt.telemetry_csv = path;
  sgm::pinn::Trainer trainer(problem, net, sampler, topt);
  auto history = trainer.run();
  EXPECT_EQ(history.records.size(), 4u);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof line, f), nullptr);
  EXPECT_EQ(std::string(line), "iteration,train_wall_s,mean_loss,err_u\n");
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(Integration, LdcSmokeTrainReducesResidual) {
  // A short LDC run (no reference data): PDE loss must drop markedly.
  sgm::pinn::LdcProblem::Options lopt;
  lopt.interior_points = 1024;
  lopt.boundary_points = 256;
  lopt.reynolds = 100;
  sgm::pinn::LdcProblem problem(lopt, nullptr);
  Mlp net = make_net(2, 3, 21);
  sgm::core::SgmOptions sopt;
  sopt.pgm.knn.k = 8;
  sopt.lrd.levels = 5;
  sopt.tau_e = 100;
  sopt.tau_g = 0;
  sgm::core::SgmSampler sampler(problem.interior_points(), sopt);
  auto topt = fast_trainer(400);
  topt.validate_every = 100;
  sgm::pinn::Trainer trainer(problem, net, sampler, topt);
  auto history = trainer.run();
  ASSERT_GE(history.records.size(), 2u);
  EXPECT_LT(history.records.back().mean_loss,
            history.records.front().mean_loss);
}

TEST(Integration, AnnularParamSmokeTrains) {
  sgm::pinn::AnnularProblem::Options aopt;
  aopt.interior_points = 1024;
  aopt.boundary_points = 256;
  sgm::pinn::AnnularProblem problem(aopt);
  Mlp net = make_net(3, 3, 31);
  sgm::core::SgmOptions sopt;
  sopt.pgm.knn.k = 7;   // the paper's AR hyperparameters
  sopt.lrd.levels = 6;
  sopt.tau_e = 100;
  sopt.tau_g = 0;
  sopt.use_isr = true;
  sopt.isr.rank = 4;
  sopt.isr.subspace_iterations = 3;
  sgm::core::SgmSampler sampler(problem.interior_points(), sopt);
  auto topt = fast_trainer(400);
  topt.validate_every = 100;
  sgm::pinn::Trainer trainer(problem, net, sampler, topt);
  auto history = trainer.run();
  EXPECT_LT(history.records.back().mean_loss,
            history.records.front().mean_loss);
  EXPECT_EQ(history.sampler_name, "sgm-s");
  // Validation produced all three paper metrics.
  const auto& val = history.records.back().validation;
  EXPECT_EQ(val.size(), 3u);
}

TEST(Integration, IdenticalSeedsReproduceExactly) {
  sgm::pinn::PoissonProblem::Options popt;
  popt.interior_points = 512;
  sgm::pinn::PoissonProblem problem(popt);
  auto run_once = [&] {
    Mlp net = make_net(2, 1, 17, 12, 2);
    sgm::samplers::UniformSampler sampler(512);
    auto topt = fast_trainer(60);
    topt.validate_every = 30;
    sgm::pinn::Trainer trainer(problem, net, sampler, topt);
    return trainer.run().records.back().mean_loss;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Integration, TrainerHistoryDeterministicWithSgmRebuilds) {
  sgm::pinn::PoissonProblem::Options popt;
  popt.interior_points = 1024;
  sgm::pinn::PoissonProblem problem(popt);
  auto run_once = [&] {
    Mlp net = make_net(2, 1, 19, 16, 2);
    sgm::core::SgmOptions sopt;
    sopt.pgm.knn.k = 6;
    sopt.lrd.levels = 4;
    sopt.tau_e = 60;
    sopt.tau_g = 100;  // two synchronous S1/S2 rebuilds inside the run
    sgm::core::SgmSampler sampler(problem.interior_points(), sopt);
    auto topt = fast_trainer(240);
    topt.validate_every = 60;
    sgm::pinn::Trainer trainer(problem, net, sampler, topt);
    return trainer.run();
  };
  sgm::pinn::testutil::expect_identical_histories(run_once(), run_once(),
                                                  "sgm sync rebuilds");
}

TEST(Integration, TrainerHistoryDeterministicUnderAsyncRebuild) {
  // The async path overlaps the background rebuild with ordinary training
  // iterations, but both a score refresh (before building the next epoch)
  // and a rebuild boundary (before launching the next build) synchronize
  // with any in-flight rebuild — so which clustering each epoch uses
  // depends only on the iteration schedule, never on worker-thread timing,
  // and same-seed histories are identical by construction (not by
  // scheduling luck). Output-weighted rebuilds are on, covering the
  // provider-snapshot path as well.
  sgm::pinn::PoissonProblem::Options popt;
  popt.interior_points = 512;
  sgm::pinn::PoissonProblem problem(popt);
  auto run_once = [&] {
    Mlp net = make_net(2, 1, 23, 16, 2);
    sgm::core::SgmOptions sopt;
    sopt.pgm.knn.k = 6;
    sopt.lrd.levels = 4;
    sopt.tau_e = 150;      // scores refresh at 0, 150, 300 (sync points)
    sopt.tau_g = 110;      // async rebuilds launch at 110, 220, 330
    sopt.async_rebuild = true;
    sopt.rebuild_output_weight = 0.5;
    sgm::core::SgmSampler sampler(problem.interior_points(), sopt);
    sampler.set_outputs_provider([&](const std::vector<std::uint32_t>& rows) {
      return net.forward(sgm::pinn::gather_rows(problem.interior_points(),
                                                rows));
    });
    auto topt = fast_trainer(450);
    topt.validate_every = 150;
    sgm::pinn::Trainer trainer(problem, net, sampler, topt);
    return trainer.run();
  };
  sgm::pinn::testutil::expect_identical_histories(run_once(), run_once(),
                                                  "sgm async rebuild");
}

TEST(Integration, TrainerHistoryDeterministicUnderAsyncIncrementalRefresh) {
  // The incremental refresh engine threaded through the async rebuild path:
  // the engine's state is owned by the worker between launch and the next
  // barrier, refresh outcomes (dirty detection, kNN update, warm-started
  // ER, cadence signal) are pure functions of the iteration schedule, so
  // same-seed histories must still be identical — including the
  // dirty-fraction-modulated rebuild cadence.
  sgm::pinn::PoissonProblem::Options popt;
  popt.interior_points = 512;
  sgm::pinn::PoissonProblem problem(popt);
  auto run_once = [&](std::size_t threads) {
    Mlp net = make_net(2, 1, 23, 16, 2);
    sgm::core::SgmOptions sopt;
    sopt.pgm.knn.k = 6;
    sopt.lrd.levels = 4;
    sopt.tau_e = 150;
    sopt.tau_g = 110;
    sopt.async_rebuild = true;
    sopt.incremental_refresh = true;
    sopt.rebuild_output_weight = 0.5;
    sopt.dirty_tolerance = 0.02;
    sopt.num_threads = threads;
    sgm::core::SgmSampler sampler(problem.interior_points(), sopt);
    sampler.set_outputs_provider([&](const std::vector<std::uint32_t>& rows) {
      return net.forward(sgm::pinn::gather_rows(problem.interior_points(),
                                                rows));
    });
    auto topt = fast_trainer(450);
    topt.validate_every = 150;
    topt.num_threads = threads;
    sgm::pinn::Trainer trainer(problem, net, sampler, topt);
    return trainer.run();
  };
  const auto h1 = run_once(1);
  sgm::pinn::testutil::expect_identical_histories(
      h1, run_once(1), "sgm async incremental, repeated");
  sgm::pinn::testutil::expect_identical_histories(
      h1, run_once(4), "sgm async incremental, 1 vs 4 threads");
}

// Telemetry round-trip: the CSV must parse back into exactly the recorded
// history — same column layout, bitwise-equal values (format_double writes
// %.17g so doubles survive the text round trip).
TEST(Integration, TelemetryCsvRoundTripsAgainstHistory) {
  const std::string path = "/tmp/sgm_telemetry_roundtrip.csv";
  sgm::pinn::ChipThermalProblem::Options copt;
  copt.interior_points = 512;
  copt.boundary_points = 128;
  copt.reference_grid = 33;
  sgm::pinn::ChipThermalProblem problem(copt);  // two validation metrics
  Mlp net = make_net(2, 1, 6, 12, 2);
  sgm::samplers::UniformSampler sampler(512);
  auto topt = fast_trainer(40);
  topt.validate_every = 10;
  topt.telemetry_csv = path;
  sgm::pinn::Trainer trainer(problem, net, sampler, topt);
  const auto history = trainer.run();
  ASSERT_EQ(history.records.size(), 4u);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
  std::string expected_header = "iteration,train_wall_s,mean_loss";
  for (const auto& e : history.records.front().validation)
    expected_header += ",err_" + e.name;
  EXPECT_EQ(line, expected_header);

  for (const auto& rec : history.records) {
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line))) << "missing row";
    std::vector<double> cells;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ','))
      cells.push_back(std::strtod(cell.c_str(), nullptr));
    ASSERT_EQ(cells.size(), 3 + rec.validation.size());
    EXPECT_EQ(cells[0], static_cast<double>(rec.iteration));
    EXPECT_EQ(cells[1], rec.train_wall_s);
    EXPECT_EQ(cells[2], rec.mean_loss);
    for (std::size_t m = 0; m < rec.validation.size(); ++m)
      EXPECT_EQ(cells[3 + m], rec.validation[m].error)
          << "metric " << rec.validation[m].name;
  }
  EXPECT_FALSE(static_cast<bool>(std::getline(in, line)));  // no extra rows
  std::remove(path.c_str());
}

}  // namespace
