// Property-based suites (parameterized gtest sweeps) asserting structural
// invariants across module boundaries: linear-algebra identities over shape
// sweeps, Laplacian/PCG properties over graph families, epoch-builder
// guarantees over configuration grids, checkpoint round-trips, and sampler
// distribution laws.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "core/epoch_builder.hpp"
#include "core/sgm_sampler.hpp"
#include "graph/effective_resistance.hpp"
#include "graph/knn.hpp"
#include "graph/laplacian.hpp"
#include "graph/pcg.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"
#include "samplers/sampler.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace {

using sgm::graph::CsrGraph;
using sgm::graph::Edge;
using sgm::graph::Vec;
using sgm::tensor::Matrix;

Matrix random_matrix(std::size_t r, std::size_t c, sgm::util::Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  return m;
}

// ---------------------------------------------------------- matmul algebra --

class MatmulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulShapes, AssociativityAndTransposeIdentities) {
  const auto [m, k, n] = GetParam();
  sgm::util::Rng rng(m * 100 + k * 10 + n);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);

  // (A B)^T == B^T A^T
  const Matrix abt = sgm::tensor::transpose(sgm::tensor::matmul(a, b));
  const Matrix btat = sgm::tensor::matmul(sgm::tensor::transpose(b),
                                          sgm::tensor::transpose(a));
  EXPECT_LT((abt - btat).max_abs(), 1e-11);

  // Distributivity: A (B + C) == A B + A C
  const Matrix c = random_matrix(k, n, rng);
  const Matrix lhs = sgm::tensor::matmul(a, b + c);
  const Matrix rhs = sgm::tensor::matmul(a, b) + sgm::tensor::matmul(a, c);
  EXPECT_LT((lhs - rhs).max_abs(), 1e-11);

  // matmul_tn / matmul_nt consistency with explicit transposes.
  EXPECT_LT((sgm::tensor::matmul_tn(a, sgm::tensor::matmul(a, b)) -
             sgm::tensor::matmul(sgm::tensor::transpose(a),
                                 sgm::tensor::matmul(a, b)))
                .max_abs(),
            1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, MatmulShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                      std::make_tuple(1, 9, 2), std::make_tuple(33, 2, 17)));

// ------------------------------------------------------ Laplacian families --

enum class GraphFamily { kPath, kCycle, kGrid, kRandom, kStar };

CsrGraph make_family(GraphFamily family, std::uint32_t n,
                     sgm::util::Rng& rng) {
  std::vector<Edge> edges;
  switch (family) {
    case GraphFamily::kPath:
      for (std::uint32_t i = 0; i + 1 < n; ++i)
        edges.push_back({i, i + 1, rng.uniform(0.5, 2.0)});
      break;
    case GraphFamily::kCycle:
      for (std::uint32_t i = 0; i < n; ++i)
        edges.push_back({i, (i + 1) % n, rng.uniform(0.5, 2.0)});
      break;
    case GraphFamily::kGrid: {
      const auto side = static_cast<std::uint32_t>(std::sqrt(n));
      for (std::uint32_t y = 0; y < side; ++y)
        for (std::uint32_t x = 0; x < side; ++x) {
          if (x + 1 < side)
            edges.push_back({y * side + x, y * side + x + 1, 1.0});
          if (y + 1 < side)
            edges.push_back({y * side + x, (y + 1) * side + x, 1.0});
        }
      n = side * side;
      break;
    }
    case GraphFamily::kRandom:
      for (std::uint32_t i = 1; i < n; ++i)
        edges.push_back({static_cast<std::uint32_t>(rng.uniform_index(i)), i,
                         rng.uniform(0.5, 2.0)});
      for (std::uint32_t t = 0; t < n; ++t) {
        const auto a = static_cast<std::uint32_t>(rng.uniform_index(n));
        const auto b = static_cast<std::uint32_t>(rng.uniform_index(n));
        if (a != b) edges.push_back({a, b, rng.uniform(0.5, 2.0)});
      }
      break;
    case GraphFamily::kStar:
      for (std::uint32_t i = 1; i < n; ++i)
        edges.push_back({0, i, rng.uniform(0.5, 2.0)});
      break;
  }
  return CsrGraph::from_edges(n, std::move(edges));
}

class LaplacianFamilies
    : public ::testing::TestWithParam<std::tuple<GraphFamily, int>> {};

TEST_P(LaplacianFamilies, PsdSymmetricAndSolvable) {
  const auto [family, n] = GetParam();
  sgm::util::Rng rng(static_cast<std::uint64_t>(n) * 17 +
                     static_cast<std::uint64_t>(family));
  const CsrGraph g = make_family(family, n, rng);
  const std::size_t nn = g.num_nodes();

  // Quadratic form non-negative (PSD) for random vectors, and symmetric:
  // x^T L y == y^T L x.
  Vec x(nn), y(nn), lx, ly;
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  sgm::graph::laplacian_apply(g, x, lx);
  sgm::graph::laplacian_apply(g, y, ly);
  EXPECT_GE(sgm::graph::dot(x, lx), -1e-10);
  EXPECT_NEAR(sgm::graph::dot(x, ly), sgm::graph::dot(y, lx), 1e-8);

  // PCG solves a deflated system to high accuracy on every family.
  Vec b(nn);
  for (auto& v : b) v = rng.normal();
  sgm::graph::deflate_constant(b);
  auto sol = sgm::graph::pcg_solve_laplacian(g, b, {1e-10, 5000, 0.0});
  ASSERT_TRUE(sol.converged) << "family " << static_cast<int>(family);
  Vec chk;
  sgm::graph::laplacian_apply(g, sol.x, chk);
  for (std::size_t i = 0; i < nn; ++i) EXPECT_NEAR(chk[i], b[i], 1e-6);
}

TEST_P(LaplacianFamilies, FosterSumOnConnectedFamilies) {
  const auto [family, n] = GetParam();
  sgm::util::Rng rng(static_cast<std::uint64_t>(n) * 31 +
                     static_cast<std::uint64_t>(family));
  const CsrGraph g = make_family(family, n, rng);
  if (g.num_nodes() > 40) GTEST_SKIP() << "dense eig too slow";
  sgm::graph::ErOptions opt;
  opt.method = sgm::graph::ErMethod::kExact;
  const Matrix z = sgm::graph::effective_resistance_embedding(g, opt);
  const auto er = sgm::graph::edge_effective_resistance(g, z);
  double total = 0;
  for (std::size_t e = 0; e < er.size(); ++e)
    total += g.edge(static_cast<sgm::graph::EdgeId>(e)).w * er[e];
  EXPECT_NEAR(total, g.num_nodes() - 1.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    FamilySweep, LaplacianFamilies,
    ::testing::Combine(::testing::Values(GraphFamily::kPath,
                                         GraphFamily::kCycle,
                                         GraphFamily::kGrid,
                                         GraphFamily::kRandom,
                                         GraphFamily::kStar),
                       ::testing::Values(16, 36, 100)));

// ------------------------------------------------------------ epoch builder --

class EpochBuilderGrid
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(EpochBuilderGrid, InvariantsHoldAcrossConfigurations) {
  const auto [fraction, ratio_min, ratio_max] = GetParam();
  // 12 clusters of heterogeneous sizes.
  sgm::graph::Clustering c;
  c.num_clusters = 12;
  std::vector<std::uint32_t> sizes = {1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 40, 29};
  for (std::uint32_t cl = 0; cl < 12; ++cl)
    for (std::uint32_t i = 0; i < sizes[cl]; ++i)
      c.node_cluster.push_back(cl);
  c.cluster_diameter.assign(12, 0.0);
  sgm::core::ClusterStore store(std::move(c));

  sgm::util::Rng rng(7);
  std::vector<double> scores(12);
  for (auto& s : scores) s = rng.uniform(0.1, 5.0);

  sgm::core::EpochBuilderOptions opt;
  opt.epoch_fraction = fraction;
  opt.ratio_min = ratio_min;
  opt.ratio_max = ratio_max;
  auto epoch = sgm::core::build_epoch(store, scores, opt, rng);

  // Floor of one per cluster; never exceed cluster size; no duplicates.
  for (std::uint32_t cl = 0; cl < 12; ++cl) {
    EXPECT_GE(epoch.per_cluster[cl], 1u);
    EXPECT_LE(epoch.per_cluster[cl], sizes[cl]);
  }
  std::set<std::uint32_t> uniq(epoch.indices.begin(), epoch.indices.end());
  EXPECT_EQ(uniq.size(), epoch.indices.size());
  // Total within [num_clusters, N].
  EXPECT_GE(epoch.indices.size(), 12u);
  EXPECT_LE(epoch.indices.size(), store.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, EpochBuilderGrid,
    ::testing::Combine(::testing::Values(0.05, 0.25, 0.75),
                       ::testing::Values(0.1, 0.5),
                       ::testing::Values(1.0, 4.0, 16.0)));

// ----------------------------------------------------------- alias sampling --

class AliasDistribution : public ::testing::TestWithParam<int> {};

TEST_P(AliasDistribution, ChiSquareWithinBounds) {
  const int n = GetParam();
  sgm::util::Rng rng(n);
  std::vector<double> w(n);
  for (auto& x : w) x = rng.uniform(0.1, 3.0);
  sgm::samplers::AliasTable table(w);
  const int draws = 40000;
  std::vector<int> count(n, 0);
  for (int i = 0; i < draws; ++i) ++count[table.sample(rng)];
  double chi2 = 0;
  for (int i = 0; i < n; ++i) {
    const double expect = table.probability(i) * draws;
    chi2 += (count[i] - expect) * (count[i] - expect) / expect;
  }
  // Very generous 5-sigma-ish bound: chi2 ~ n - 1 +- sqrt(2(n-1)) * 5.
  EXPECT_LT(chi2, (n - 1) + 5 * std::sqrt(2.0 * (n - 1)) + 10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AliasDistribution,
                         ::testing::Values(2, 5, 17, 64, 256));

// ------------------------------------------------------------- checkpoints --

class CheckpointRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CheckpointRoundTrip, ForwardIdenticalAfterReload) {
  const auto [width, depth] = GetParam();
  sgm::nn::MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 3;
  cfg.width = width;
  cfg.depth = depth;
  sgm::util::Rng rng(width * 10 + depth);
  sgm::nn::Mlp a(cfg, rng);
  sgm::nn::Mlp b(cfg, rng);  // different init

  std::stringstream stream;
  sgm::nn::save_parameters(a, stream);
  sgm::nn::load_parameters(b, stream);

  sgm::util::Rng prng(3);
  const Matrix x = random_matrix(5, 2, prng);
  EXPECT_LT((a.forward(x) - b.forward(x)).max_abs(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Architectures, CheckpointRoundTrip,
                         ::testing::Combine(::testing::Values(4, 16, 48),
                                            ::testing::Values(1, 3, 5)));

TEST(Checkpoint, RejectsArchitectureMismatch) {
  sgm::nn::MlpConfig small, big;
  small.input_dim = big.input_dim = 2;
  small.output_dim = big.output_dim = 1;
  small.width = 4;
  big.width = 8;
  small.depth = big.depth = 2;
  sgm::util::Rng rng(1);
  sgm::nn::Mlp a(small, rng), b(big, rng);
  std::stringstream stream;
  sgm::nn::save_parameters(a, stream);
  EXPECT_THROW(sgm::nn::load_parameters(b, stream), std::runtime_error);
}

TEST(Checkpoint, RejectsGarbage) {
  sgm::nn::MlpConfig cfg;
  cfg.width = 4;
  cfg.depth = 1;
  sgm::util::Rng rng(1);
  sgm::nn::Mlp net(cfg, rng);
  std::stringstream stream("not a checkpoint at all");
  EXPECT_THROW(sgm::nn::load_parameters(net, stream), std::runtime_error);
}

TEST(Checkpoint, FileRoundTrip) {
  sgm::nn::MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 1;
  cfg.width = 8;
  cfg.depth = 2;
  sgm::util::Rng rng(9);
  sgm::nn::Mlp a(cfg, rng), b(cfg, rng);
  const std::string path = "/tmp/sgm_ckpt_test.txt";
  sgm::nn::save_checkpoint(a, path);
  sgm::nn::load_checkpoint(b, path);
  sgm::util::Rng prng(4);
  const Matrix x = random_matrix(3, 2, prng);
  EXPECT_LT((a.forward(x) - b.forward(x)).max_abs(), 1e-12);
  std::remove(path.c_str());
}

// ------------------------------------------------- kNN graphs across dims --

class KnnGraphDims : public ::testing::TestWithParam<int> {};

TEST_P(KnnGraphDims, DegreeBoundsAndSymmetry) {
  const int d = GetParam();
  sgm::util::Rng rng(d * 1001);
  Matrix pts(300, d);
  for (std::size_t i = 0; i < pts.size(); ++i) pts.data()[i] = rng.uniform();
  sgm::graph::KnnGraphOptions opt;
  opt.k = 6;
  const CsrGraph g = sgm::graph::build_knn_graph(pts, opt);
  // Union symmetrization: degree >= k is NOT guaranteed, but every node has
  // at least its own k out-edges merged in, so degree >= 1 and the mean
  // degree is >= k.
  double mean_deg = 0;
  for (sgm::graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(g.degree(v), 1u);
    mean_deg += static_cast<double>(g.degree(v));
  }
  mean_deg /= g.num_nodes();
  EXPECT_GE(mean_deg, 6.0);
  // Symmetry: neighbor lists are consistent both ways.
  for (sgm::graph::NodeId v = 0; v < 20; ++v) {
    for (auto u : g.neighbors(v)) {
      const auto nb = g.neighbors(u);
      EXPECT_NE(std::find(nb.begin(), nb.end(), v), nb.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, KnnGraphDims, ::testing::Values(1, 2, 3, 5));

}  // namespace
