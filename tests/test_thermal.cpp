// Tests for the chip-thermal workload: the Dirichlet-Poisson FDM solver
// (against the manufactured solution) and ChipThermalProblem's residual,
// floorplan source and validation plumbing.

#include <gtest/gtest.h>

#include <cmath>

#include "cfd/analytic.hpp"
#include "cfd/poisson_fdm.hpp"
#include "nn/mlp.hpp"
#include "pinn/thermal.hpp"
#include "util/rng.hpp"

namespace {

using sgm::tensor::Matrix;

TEST(PoissonFdm, MatchesManufacturedSolution) {
  auto sol = sgm::cfd::solve_poisson_dirichlet(
      [](double x, double y) {
        return sgm::cfd::poisson_manufactured_rhs(x, y);
      },
      {65, 20000, 1e-10, 1.9});
  ASSERT_TRUE(sol.converged);
  double worst = 0;
  for (double x : {0.25, 0.5, 0.75})
    for (double y : {0.3, 0.6, 0.9}) {
      const double err = std::fabs(
          sol.sample(x, y) - sgm::cfd::poisson_manufactured_solution(x, y));
      worst = std::max(worst, err);
    }
  EXPECT_LT(worst, 2e-3);  // second-order FDM on a 65^2 grid
}

TEST(PoissonFdm, ZeroSourceGivesZero) {
  auto sol = sgm::cfd::solve_poisson_dirichlet(
      [](double, double) { return 0.0; }, {33, 5000, 1e-12, 1.8});
  EXPECT_TRUE(sol.converged);
  EXPECT_LT(sol.t.max_abs(), 1e-10);
}

TEST(PoissonFdm, PositiveSourceHeatsInterior) {
  auto sol = sgm::cfd::solve_poisson_dirichlet(
      [](double, double) { return 1.0; }, {33, 20000, 1e-11, 1.8});
  ASSERT_TRUE(sol.converged);
  // Max of -lap T = 1 on the unit square is ~0.0737 at the center.
  EXPECT_NEAR(sol.sample(0.5, 0.5), 0.0737, 0.002);
  EXPECT_GT(sol.sample(0.5, 0.5), sol.sample(0.1, 0.1));
}

TEST(PoissonFdm, RejectsTinyGrid) {
  EXPECT_THROW(sgm::cfd::solve_poisson_dirichlet(
                   [](double, double) { return 0.0; }, {4, 10, 1e-3, 1.5}),
               std::invalid_argument);
}

TEST(ChipThermal, PowerDensityRespectsFloorplan) {
  sgm::pinn::ChipThermalProblem::Options opt;
  opt.interior_points = 256;
  opt.boundary_points = 64;
  opt.reference_grid = 33;
  sgm::pinn::ChipThermalProblem problem(opt);
  const auto& blocks = problem.options().blocks;
  ASSERT_EQ(blocks.size(), 3u);
  // Center of the hottest core carries (approximately) its density.
  const auto& core1 = blocks[1];
  const double cx = 0.5 * (core1.xmin + core1.xmax);
  const double cy = 0.5 * (core1.ymin + core1.ymax);
  EXPECT_NEAR(problem.power_density(cx, cy), core1.density,
              0.02 * core1.density);
  // Far corner: essentially zero.
  EXPECT_LT(problem.power_density(0.02, 0.98), 0.5);
}

TEST(ChipThermal, ReferencePeakPositive) {
  sgm::pinn::ChipThermalProblem::Options opt;
  opt.interior_points = 128;
  opt.boundary_points = 64;
  opt.reference_grid = 65;
  sgm::pinn::ChipThermalProblem problem(opt);
  EXPECT_GT(problem.reference_peak(), 0.1);
}

TEST(ChipThermal, ResidualMatchesFiniteDifference) {
  sgm::pinn::ChipThermalProblem::Options opt;
  opt.interior_points = 64;
  opt.boundary_points = 32;
  opt.reference_grid = 33;
  sgm::pinn::ChipThermalProblem problem(opt);

  sgm::util::Rng rng(3);
  sgm::nn::MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 1;
  cfg.width = 8;
  cfg.depth = 2;
  sgm::nn::Mlp net(cfg, rng);

  auto res = problem.pointwise_residual(net, {0, 1, 2});
  for (std::uint32_t i = 0; i < 3; ++i) {
    const double x = problem.interior_points()(i, 0);
    const double y = problem.interior_points()(i, 1);
    const double h = 1e-4;
    auto t = [&](double a, double b) {
      Matrix q(1, 2);
      q(0, 0) = a;
      q(0, 1) = b;
      return net.forward(q)(0, 0);
    };
    const double lap =
        (t(x + h, y) + t(x - h, y) + t(x, y + h) + t(x, y - h) -
         4 * t(x, y)) /
        (h * h);
    const double expect = lap + problem.power_density(x, y);
    EXPECT_NEAR(std::sqrt(res[i]), std::fabs(expect), 5e-3);
  }
}

TEST(ChipThermal, BatchLossAndValidationRun) {
  sgm::pinn::ChipThermalProblem::Options opt;
  opt.interior_points = 128;
  opt.boundary_points = 64;
  opt.reference_grid = 33;
  sgm::pinn::ChipThermalProblem problem(opt);
  sgm::util::Rng rng(4);
  sgm::nn::MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 1;
  cfg.width = 8;
  cfg.depth = 2;
  sgm::nn::Mlp net(cfg, rng);
  sgm::tensor::Tape tape;
  auto binding = net.bind(tape);
  auto loss = problem.batch_loss(tape, net, binding, {0, 1, 2, 3}, rng);
  tape.backward(loss);
  EXPECT_GT(tape.value(loss)(0, 0), 0.0);
  auto val = problem.validate(net);
  ASSERT_EQ(val.size(), 2u);
  EXPECT_EQ(val[0].name, "T");
  EXPECT_GT(val[0].error, 0.0);
}

TEST(ChipThermal, CustomFloorplanUsed) {
  sgm::pinn::ChipThermalProblem::Options opt;
  opt.blocks = {{0.4, 0.6, 0.4, 0.6, 10.0, 0.02}};
  opt.interior_points = 64;
  opt.boundary_points = 32;
  opt.reference_grid = 33;
  sgm::pinn::ChipThermalProblem problem(opt);
  EXPECT_EQ(problem.options().blocks.size(), 1u);
  EXPECT_NEAR(problem.power_density(0.5, 0.5), 10.0, 0.3);
  EXPECT_LT(problem.power_density(0.1, 0.1), 0.1);
}

}  // namespace
