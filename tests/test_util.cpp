// Unit tests for sgm::util — RNG statistics/determinism, timers, CSV.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using sgm::util::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(8);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, UniformIndexCoversAndBounded) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng(10);
  // (0 - n) % n with n == 0 would be UB; must refuse instead.
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(11);
  for (std::uint32_t n : {5u, 50u, 1000u}) {
    for (std::uint32_t k : {1u, 3u, n / 2, n}) {
      auto s = rng.sample_without_replacement(n, k);
      EXPECT_EQ(s.size(), k);
      std::set<std::uint32_t> uniq(s.begin(), s.end());
      EXPECT_EQ(uniq.size(), k);
      for (auto v : s) EXPECT_LT(v, n);
    }
  }
}

TEST(Rng, SampleWithoutReplacementClampsOverdraw) {
  Rng rng(12);
  auto s = rng.sample_without_replacement(4, 10);
  EXPECT_EQ(s.size(), 4u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<std::uint32_t> v(100);
  for (std::uint32_t i = 0; i < 100; ++i) v[i] = i;
  rng.shuffle(v);
  std::set<std::uint32_t> uniq(v.begin(), v.end());
  EXPECT_EQ(uniq.size(), 100u);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(5);
  Rng child = parent.split();
  // The child stream should not replay the parent stream.
  Rng parent2(5);
  (void)parent2.next_u64();  // advance like split() did internally
  int same = 0;
  for (int i = 0; i < 32; ++i)
    if (child.next_u64() == parent2.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, RademacherBalanced) {
  Rng rng(21);
  int pos = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.rademacher() > 0) ++pos;
  EXPECT_NEAR(static_cast<double>(pos) / n, 0.5, 0.01);
}

TEST(WallTimer, Monotonic) {
  sgm::util::WallTimer t;
  const double a = t.elapsed_s();
  const double b = t.elapsed_s();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(PhaseAccumulator, AccumulatesAndCounts) {
  sgm::util::PhaseAccumulator acc;
  acc.add("fw", 1.0);
  acc.add("fw", 0.5);
  acc.add("bw", 2.0);
  EXPECT_DOUBLE_EQ(acc.total("fw"), 1.5);
  EXPECT_EQ(acc.count("fw"), 2u);
  EXPECT_DOUBLE_EQ(acc.total("bw"), 2.0);
  EXPECT_DOUBLE_EQ(acc.total("missing"), 0.0);
  acc.clear();
  EXPECT_DOUBLE_EQ(acc.total("fw"), 0.0);
}

TEST(ScopedPhase, AddsOnDestruction) {
  sgm::util::PhaseAccumulator acc;
  { sgm::util::ScopedPhase phase(acc, "scope"); }
  EXPECT_EQ(acc.count("scope"), 1u);
  EXPECT_GE(acc.total("scope"), 0.0);
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "/tmp/sgm_test_csv.csv";
  {
    sgm::util::CsvWriter csv(path, {"a", "b"});
    csv.row({1.5, 2.25});
    csv.row_strings({"x", "y"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2.25");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWrongWidth) {
  sgm::util::CsvWriter csv("/tmp/sgm_test_csv2.csv", {"a", "b"});
  EXPECT_THROW(csv.row({1.0}), std::runtime_error);
  std::remove("/tmp/sgm_test_csv2.csv");
}

TEST(FormatDouble, RoundTripsCompactly) {
  EXPECT_EQ(sgm::util::format_double(0.5), "0.5");
  EXPECT_EQ(sgm::util::format_double(3.0), "3");
}

TEST(FormatDouble, RoundTripsEveryDoubleExactly) {
  // The telemetry CSV contract: strtod(format_double(v)) == v bitwise.
  // (%.9g, the old format, fails this for most non-dyadic values.)
  sgm::util::Rng rng(7);
  std::vector<double> values = {1.0 / 3.0, 0.1, 2.0 / 7.0, 1e-300, 1e300,
                                -0.12345678901234567};
  for (int i = 0; i < 1000; ++i)
    values.push_back((rng.uniform() - 0.5) * std::pow(10.0, rng.uniform(-12, 12)));
  for (const double v : values) {
    const std::string s = sgm::util::format_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(Log, LevelGateWorks) {
  using namespace sgm::util;
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log_info() << "should be suppressed";
  set_log_level(LogLevel::kWarn);
}

}  // namespace
