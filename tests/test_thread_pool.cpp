// Tests for the threading substrate (util/thread_pool.*) and the refresh
// engine's core determinism contract: for a fixed seed, the S1 PGM build and
// the S2 LRD decomposition must be byte-identical at any thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/pgm.hpp"
#include "graph/hnsw.hpp"
#include "graph/knn.hpp"
#include "graph/lrd.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using sgm::graph::CsrGraph;
using sgm::tensor::Matrix;

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPool, SubmitReturnsValues) {
  sgm::util::ThreadPool pool(2);
  auto f1 = pool.submit([]() { return 41 + 1; });
  auto f2 = pool.submit([]() { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, RunsManyTasks) {
  sgm::util::ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([&sum]() { sum.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 100);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  sgm::util::ThreadPool pool(1);
  auto f = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ResolveThreadsPassesThroughExplicitCounts) {
  EXPECT_EQ(sgm::util::resolve_threads(1), 1u);
  EXPECT_EQ(sgm::util::resolve_threads(7), 7u);
  EXPECT_GE(sgm::util::resolve_threads(0), 1u);
}

// ------------------------------------------------------- parallel_for(_chunks)

TEST(ParallelFor, ChunkLayoutMatchesGrain) {
  EXPECT_EQ(sgm::util::num_chunks(0, 10, 4), 3u);
  EXPECT_EQ(sgm::util::num_chunks(0, 12, 4), 3u);
  EXPECT_EQ(sgm::util::num_chunks(5, 5, 4), 0u);
  EXPECT_EQ(sgm::util::num_chunks(0, 1, 100), 1u);
}

TEST(ParallelFor, ChunksCoverRangeExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<int> hits(1000, 0);
    std::vector<int> chunk_of(1000, -1);
    sgm::util::parallel_for_chunks(
        0, 1000, 64, threads,
        [&](std::size_t b, std::size_t e, std::size_t c) {
          for (std::size_t i = b; i < e; ++i) {
            ++hits[i];
            chunk_of[i] = static_cast<int>(c);
          }
        });
    for (std::size_t i = 0; i < 1000; ++i) {
      EXPECT_EQ(hits[i], 1) << "index " << i << " threads " << threads;
      // Chunk index must follow the fixed grain layout, not the thread count.
      EXPECT_EQ(chunk_of[i], static_cast<int>(i / 64));
    }
  }
}

TEST(ParallelFor, PerIndexVariantCoversRange) {
  std::vector<std::atomic<int>> hits(500);
  sgm::util::parallel_for(0, 500, 4, [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, RethrowsFirstException) {
  EXPECT_THROW(
      sgm::util::parallel_for_chunks(
          0, 100, 1, 4,
          [](std::size_t b, std::size_t, std::size_t) {
            if (b == 37) throw std::runtime_error("chunk 37");
          }),
      std::runtime_error);
}

TEST(ParallelFor, NestedLoopsDoNotDeadlock) {
  std::atomic<int> total{0};
  sgm::util::parallel_for_chunks(
      0, 8, 1, 4, [&](std::size_t, std::size_t, std::size_t) {
        sgm::util::parallel_for_chunks(
            0, 8, 1, 4, [&](std::size_t, std::size_t, std::size_t) {
              total.fetch_add(1);
            });
      });
  EXPECT_EQ(total.load(), 64);
}

// --------------------------------------------- serial-vs-parallel identity --

Matrix random_points(std::size_t n, std::size_t d, sgm::util::Rng& rng) {
  Matrix m(n, d);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform();
  return m;
}

void expect_identical_graphs(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (sgm::graph::EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
    // Bitwise-equal weights, not just close: the determinism contract.
    EXPECT_EQ(a.edge(e).w, b.edge(e).w) << "edge " << e;
  }
}

TEST(ParallelRefresh, KdTreePgmByteIdenticalAcrossThreadCounts) {
  sgm::util::Rng rng(21);
  const Matrix pts = random_points(1500, 2, rng);
  for (auto weight :
       {sgm::graph::KnnWeight::kInverse, sgm::graph::KnnWeight::kGauss}) {
    sgm::graph::KnnGraphOptions opt;
    opt.k = 8;
    opt.weight = weight;
    opt.num_threads = 1;
    const CsrGraph serial = sgm::graph::build_knn_graph(pts, opt);
    for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
      opt.num_threads = threads;
      expect_identical_graphs(serial, sgm::graph::build_knn_graph(pts, opt));
    }
  }
}

TEST(ParallelRefresh, MutualPgmByteIdenticalAcrossThreadCounts) {
  sgm::util::Rng rng(22);
  const Matrix pts = random_points(900, 3, rng);
  sgm::graph::KnnGraphOptions opt;
  opt.k = 6;
  opt.mutual = true;
  opt.num_threads = 1;
  const CsrGraph serial = sgm::graph::build_knn_graph(pts, opt);
  opt.num_threads = 4;
  expect_identical_graphs(serial, sgm::graph::build_knn_graph(pts, opt));
}

TEST(ParallelRefresh, HnswPgmByteIdenticalAcrossThreadCounts) {
  sgm::util::Rng rng(23);
  const Matrix pts = random_points(1200, 2, rng);
  sgm::graph::KnnGraphOptions gopt;
  gopt.k = 8;
  sgm::graph::HnswOptions hopt;
  gopt.num_threads = 1;
  const CsrGraph serial = sgm::graph::build_knn_graph_hnsw(pts, gopt, hopt);
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    gopt.num_threads = threads;
    expect_identical_graphs(
        serial, sgm::graph::build_knn_graph_hnsw(pts, gopt, hopt));
  }
}

TEST(ParallelRefresh, BuildPgmThreadOverridePlumbsThrough) {
  sgm::util::Rng rng(24);
  const Matrix pts = random_points(600, 2, rng);
  sgm::core::PgmOptions opt;
  opt.knn.k = 6;
  opt.num_threads = 1;
  const CsrGraph serial = sgm::core::build_pgm(pts, nullptr, opt);
  opt.num_threads = 4;
  expect_identical_graphs(serial, sgm::core::build_pgm(pts, nullptr, opt));
}

TEST(ParallelRefresh, LrdClusteringIdenticalAcrossThreadCounts) {
  sgm::util::Rng rng(25);
  const Matrix pts = random_points(1000, 2, rng);
  sgm::graph::KnnGraphOptions kopt;
  kopt.k = 8;
  kopt.num_threads = 1;
  const CsrGraph g = sgm::graph::build_knn_graph(pts, kopt);

  for (auto method :
       {sgm::graph::ErMethod::kSmoothed, sgm::graph::ErMethod::kJlSolve}) {
    sgm::graph::LrdOptions opt;
    opt.levels = 6;
    opt.er.method = method;
    opt.er.num_vectors = 6;
    opt.er.smoothing_iterations = 15;
    opt.num_threads = 1;
    const sgm::graph::Clustering serial = sgm::graph::lrd_decompose(g, opt);
    for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
      opt.num_threads = threads;
      const sgm::graph::Clustering par = sgm::graph::lrd_decompose(g, opt);
      EXPECT_EQ(serial.num_clusters, par.num_clusters);
      ASSERT_EQ(serial.node_cluster.size(), par.node_cluster.size());
      EXPECT_EQ(serial.node_cluster, par.node_cluster);
      ASSERT_EQ(serial.cluster_diameter.size(), par.cluster_diameter.size());
      for (std::size_t c = 0; c < serial.cluster_diameter.size(); ++c)
        EXPECT_EQ(serial.cluster_diameter[c], par.cluster_diameter[c]);
    }
  }
}

TEST(ParallelRefresh, SymmetrizeEdgesMatchesSerialReference) {
  // Random multi-edge soup with duplicates both ways around.
  sgm::util::Rng rng(26);
  std::vector<sgm::graph::Edge> edges;
  for (int i = 0; i < 5000; ++i) {
    const auto u = static_cast<sgm::graph::NodeId>(rng.uniform_index(300));
    const auto v = static_cast<sgm::graph::NodeId>(rng.uniform_index(300));
    if (u == v) continue;
    edges.push_back({u, v, 1.0 + static_cast<double>(std::min(u, v))});
  }
  auto serial = edges;
  sgm::graph::symmetrize_edges(serial, 1);
  auto parallel = edges;
  sgm::graph::symmetrize_edges(parallel, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].u, parallel[i].u);
    EXPECT_EQ(serial[i].v, parallel[i].v);
    EXPECT_EQ(serial[i].w, parallel[i].w);
    EXPECT_LT(serial[i].u, serial[i].v);
    if (i > 0) {
      EXPECT_TRUE(serial[i - 1].u < serial[i].u ||
                  (serial[i - 1].u == serial[i].u &&
                   serial[i - 1].v < serial[i].v));
    }
  }
}

}  // namespace
