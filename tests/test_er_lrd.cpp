// Tests for effective-resistance estimation (exact / JL / smoothed) and the
// LRD decomposition invariants that make SGM-PINN's clusters meaningful.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

#include "graph/effective_resistance.hpp"
#include "graph/knn.hpp"
#include "graph/lrd.hpp"
#include "util/rng.hpp"

namespace {

using sgm::graph::Clustering;
using sgm::graph::CsrGraph;
using sgm::graph::Edge;
using sgm::graph::ErMethod;
using sgm::graph::ErOptions;
using sgm::graph::LrdOptions;
using sgm::tensor::Matrix;

CsrGraph path_graph(std::uint32_t n, double w = 1.0) {
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1, w});
  return CsrGraph::from_edges(n, std::move(edges));
}

CsrGraph grid_graph(std::uint32_t nx, std::uint32_t ny) {
  std::vector<Edge> edges;
  auto id = [nx](std::uint32_t x, std::uint32_t y) { return y * nx + x; };
  for (std::uint32_t y = 0; y < ny; ++y)
    for (std::uint32_t x = 0; x < nx; ++x) {
      if (x + 1 < nx) edges.push_back({id(x, y), id(x + 1, y), 1.0});
      if (y + 1 < ny) edges.push_back({id(x, y), id(x, y + 1), 1.0});
    }
  return CsrGraph::from_edges(nx * ny, std::move(edges));
}

CsrGraph cycle_graph(std::uint32_t n, double w = 1.0) {
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i < n; ++i) edges.push_back({i, (i + 1) % n, w});
  return CsrGraph::from_edges(n, std::move(edges));
}

CsrGraph complete_graph(std::uint32_t n, double w = 1.0) {
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i < n; ++i)
    for (std::uint32_t j = i + 1; j < n; ++j) edges.push_back({i, j, w});
  return CsrGraph::from_edges(n, std::move(edges));
}

// ------------------------------------------------------ exact ER formulas --

TEST(EffectiveResistance, ExactOnPathIsAdditive) {
  // Series resistors: R(0, j) = j / w on a unit path.
  CsrGraph g = path_graph(8, 2.0);
  for (std::uint32_t j = 1; j < 8; ++j) {
    EXPECT_NEAR(sgm::graph::exact_effective_resistance(g, 0, j), j / 2.0,
                1e-8);
  }
}

TEST(EffectiveResistance, ExactOnCycleIsParallel) {
  // Cycle of n unit edges: R(u,v) over k hops = k(n-k)/n.
  const std::uint32_t n = 6;
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i < n; ++i) edges.push_back({i, (i + 1) % n, 1.0});
  CsrGraph g = CsrGraph::from_edges(n, std::move(edges));
  for (std::uint32_t k = 1; k < n; ++k) {
    EXPECT_NEAR(sgm::graph::exact_effective_resistance(g, 0, k),
                static_cast<double>(k) * (n - k) / n, 1e-8);
  }
}

TEST(EffectiveResistance, ExactEqualsFosterOnTriangle) {
  // Complete graph K3 with unit weights: R between any pair = 2/3.
  CsrGraph g =
      CsrGraph::from_edges(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}});
  EXPECT_NEAR(sgm::graph::exact_effective_resistance(g, 0, 1), 2.0 / 3.0,
              1e-9);
}

// ------------------------------------- golden values, embedding back-ends --

// Golden pairwise resistances on analytically solvable graphs, checked for
// both calibrated embedding back-ends (the exact eigendecomposition and the
// Spielman–Srivastava JL solver) rather than only against each other:
//   path   : R(0, j)    = j / w            (series resistors)
//   cycle  : R(0, k)    = k (n - k) / (n w) (two parallel arcs)
//   complete Kn : R(u,v) = 2 / (n w)        (any pair)
// kExact must reproduce these to solver precision; kJlSolve concentrates as
// 1/sqrt(num_vectors), so a generous fixed sketch gets a tight-but-honest
// relative tolerance. (kSmoothed is rank-preserving only — it has no
// calibrated golden value and keeps its ordering test below.)

struct GoldenCase {
  const char* name;
  CsrGraph graph;
  // (u, v, expected R) triplets.
  std::vector<std::tuple<std::uint32_t, std::uint32_t, double>> pairs;
  // Every edge of these graphs has the same analytic resistance:
  // 1/w (path bridge), (n-1)/(n w) (cycle), 2/(n w) (complete).
  double edge_resistance = 0.0;
};

std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> cases;
  {
    GoldenCase c{"path8_w2", path_graph(8, 2.0), {}, 1.0 / 2.0};
    for (std::uint32_t j = 1; j < 8; ++j)
      c.pairs.emplace_back(0, j, j / 2.0);
    cases.push_back(std::move(c));
  }
  {
    const std::uint32_t n = 7;
    GoldenCase c{"cycle7", cycle_graph(n), {}, (n - 1.0) / n};
    for (std::uint32_t k = 1; k < n; ++k)
      c.pairs.emplace_back(0, k, static_cast<double>(k) * (n - k) / n);
    cases.push_back(std::move(c));
  }
  {
    const std::uint32_t n = 6;
    GoldenCase c{"complete6", complete_graph(n), {}, 2.0 / n};
    for (std::uint32_t u = 0; u < n; ++u)
      for (std::uint32_t v = u + 1; v < n; ++v)
        c.pairs.emplace_back(u, v, 2.0 / n);
    cases.push_back(std::move(c));
  }
  return cases;
}

TEST(EffectiveResistance, GoldenValuesExactEmbedding) {
  for (const auto& c : golden_cases()) {
    ErOptions opt;
    opt.method = ErMethod::kExact;
    const Matrix z = sgm::graph::effective_resistance_embedding(c.graph, opt);
    for (const auto& [u, v, expected] : c.pairs) {
      EXPECT_NEAR(sgm::graph::er_from_embedding(z, u, v), expected, 1e-8)
          << c.name << " R(" << u << "," << v << ")";
    }
  }
}

TEST(EffectiveResistance, GoldenValuesJlEmbedding) {
  for (const auto& c : golden_cases()) {
    ErOptions opt;
    opt.method = ErMethod::kJlSolve;
    opt.num_vectors = 1024;  // eps ~ 1/sqrt(t): ample for a 15% bound
    opt.seed = 9;
    const Matrix z = sgm::graph::effective_resistance_embedding(c.graph, opt);
    for (const auto& [u, v, expected] : c.pairs) {
      const double got = sgm::graph::er_from_embedding(z, u, v);
      EXPECT_NEAR(got, expected, 0.15 * expected)
          << c.name << " R(" << u << "," << v << ")";
    }
  }
}

TEST(EffectiveResistance, GoldenEdgeValuesBothMethods) {
  // Per-edge readout (what LRD consumes): every path edge is a bridge with
  // R_e = 1/w_e; every cycle edge sees (n-1)/n; every Kn edge sees 2/n.
  for (const auto& c : golden_cases()) {
    for (const ErMethod method : {ErMethod::kExact, ErMethod::kJlSolve}) {
      ErOptions opt;
      opt.method = method;
      opt.num_vectors = 1024;
      opt.seed = 9;
      const Matrix z =
          sgm::graph::effective_resistance_embedding(c.graph, opt);
      const auto er = sgm::graph::edge_effective_resistance(c.graph, z);
      const double expected = c.edge_resistance;
      const double tol =
          method == ErMethod::kExact ? 1e-8 : 0.15 * expected;
      for (sgm::graph::EdgeId e = 0; e < c.graph.num_edges(); ++e)
        EXPECT_NEAR(er[e], expected, tol) << c.name << " edge " << e;
    }
  }
}

// ---------------------------------------------------------- JL estimation --

TEST(EffectiveResistance, JlMatchesExactOnGrid) {
  CsrGraph g = grid_graph(6, 6);
  ErOptions exact_opt;
  exact_opt.method = ErMethod::kExact;
  const Matrix z_exact = sgm::graph::effective_resistance_embedding(g, exact_opt);
  ErOptions jl;
  jl.method = ErMethod::kJlSolve;
  jl.num_vectors = 64;  // generous sketch for a tight test
  jl.seed = 5;
  const Matrix z_jl = sgm::graph::effective_resistance_embedding(g, jl);

  const auto exact = sgm::graph::edge_effective_resistance(g, z_exact);
  const auto approx = sgm::graph::edge_effective_resistance(g, z_jl);
  // JL concentration: per-edge error ~ 1/sqrt(num_vectors); check the mean
  // relative error tightly and the worst edge loosely.
  double mean_rel = 0.0, max_rel = 0.0;
  for (std::size_t e = 0; e < exact.size(); ++e) {
    const double rel = std::fabs(approx[e] - exact[e]) / exact[e];
    mean_rel += rel;
    max_rel = std::max(max_rel, rel);
  }
  mean_rel /= static_cast<double>(exact.size());
  EXPECT_LT(mean_rel, 0.15);
  EXPECT_LT(max_rel, 0.60);
}

TEST(EffectiveResistance, FosterSumCheck) {
  // Foster's theorem: sum over edges of w_e * R_e = n - 1 (connected graph).
  CsrGraph g = grid_graph(5, 4);
  ErOptions opt;
  opt.method = ErMethod::kExact;
  const Matrix z = sgm::graph::effective_resistance_embedding(g, opt);
  const auto er = sgm::graph::edge_effective_resistance(g, z);
  double total = 0;
  for (std::size_t e = 0; e < er.size(); ++e)
    total += g.edge(static_cast<sgm::graph::EdgeId>(e)).w * er[e];
  EXPECT_NEAR(total, g.num_nodes() - 1.0, 1e-6);
}

TEST(EffectiveResistance, SmoothedPreservesRankOrderGrossly) {
  // The smoothed estimator is only rank-preserving; verify that the known
  // extremes order correctly: a pendant edge has much higher ER than a
  // well-embedded interior edge.
  std::vector<Edge> edges;
  CsrGraph grid = grid_graph(8, 8);
  edges = grid.edges();
  const std::uint32_t pendant = 64;
  edges.push_back({0, pendant, 0.05});  // weak pendant edge: high ER
  CsrGraph g = CsrGraph::from_edges(65, std::move(edges));

  ErOptions opt;
  opt.method = ErMethod::kSmoothed;
  opt.num_vectors = 16;
  opt.smoothing_iterations = 60;
  const Matrix z = sgm::graph::effective_resistance_embedding(g, opt);
  const auto er = sgm::graph::edge_effective_resistance(g, z);

  // Find pendant edge id and an interior edge id.
  double pendant_er = -1, interior_mean = 0;
  std::size_t interior_count = 0;
  for (sgm::graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (g.edge(e).v == pendant) {
      pendant_er = er[e];
    } else {
      interior_mean += er[e];
      ++interior_count;
    }
  }
  interior_mean /= static_cast<double>(interior_count);
  EXPECT_GT(pendant_er, 3.0 * interior_mean);
}

// ------------------------------------------------------------------- LRD --

Clustering decompose_exact(const CsrGraph& g, int levels,
                           double budget = 0.0) {
  LrdOptions opt;
  opt.levels = levels;
  opt.diameter_budget = budget;
  opt.er.method = ErMethod::kExact;
  return sgm::graph::lrd_decompose(g, opt);
}

TEST(Lrd, EveryNodeAssignedExactlyOnce) {
  CsrGraph g = grid_graph(8, 8);
  Clustering c = decompose_exact(g, 6);
  EXPECT_EQ(c.node_cluster.size(), g.num_nodes());
  for (auto cl : c.node_cluster) EXPECT_LT(cl, c.num_clusters);
  auto sizes = c.sizes();
  const std::uint32_t total =
      std::accumulate(sizes.begin(), sizes.end(), 0u);
  EXPECT_EQ(total, g.num_nodes());
}

TEST(Lrd, ClustersAreConnectedSubgraphs) {
  CsrGraph g = grid_graph(10, 6);
  Clustering c = decompose_exact(g, 8);
  // BFS within each cluster using only intra-cluster edges must reach all
  // members (merges happen along edges, so this is an invariant).
  auto members = c.members();
  for (std::uint32_t cl = 0; cl < c.num_clusters; ++cl) {
    const auto& m = members[cl];
    ASSERT_FALSE(m.empty());
    std::vector<char> seen(g.num_nodes(), 0);
    std::vector<std::uint32_t> stack = {m[0]};
    seen[m[0]] = 1;
    std::size_t reached = 0;
    while (!stack.empty()) {
      const auto u = stack.back();
      stack.pop_back();
      ++reached;
      for (auto v : g.neighbors(u)) {
        if (!seen[v] && c.node_cluster[v] == cl) {
          seen[v] = 1;
          stack.push_back(v);
        }
      }
    }
    EXPECT_EQ(reached, m.size()) << "cluster " << cl;
  }
}

TEST(Lrd, TrueDiameterWithinRecordedBound) {
  // The merge-tree diameter bound must dominate the true pairwise ER within
  // each cluster (verified with exact ER on a small graph).
  CsrGraph g = grid_graph(6, 5);
  Clustering c = decompose_exact(g, 6);
  ErOptions opt;
  opt.method = ErMethod::kExact;
  const Matrix z = sgm::graph::effective_resistance_embedding(g, opt);
  auto members = c.members();
  for (std::uint32_t cl = 0; cl < c.num_clusters; ++cl) {
    const auto& m = members[cl];
    for (std::size_t a = 0; a < m.size(); ++a)
      for (std::size_t b = a + 1; b < m.size(); ++b) {
        const double er = sgm::graph::er_from_embedding(z, m[a], m[b]);
        EXPECT_LE(er, c.cluster_diameter[cl] + 1e-9)
            << "pair " << m[a] << "," << m[b] << " in cluster " << cl;
      }
  }
}

TEST(Lrd, MoreLevelsCoarsen) {
  CsrGraph g = grid_graph(12, 12);
  const Clustering c2 = decompose_exact(g, 2);
  const Clustering c10 = decompose_exact(g, 10);
  EXPECT_LE(c10.num_clusters, c2.num_clusters);
  EXPECT_GT(c10.num_clusters, 0u);
  EXPECT_LT(c10.num_clusters, g.num_nodes());  // did merge something
}

TEST(Lrd, MaxClusterSizeRespected) {
  CsrGraph g = grid_graph(10, 10);
  LrdOptions opt;
  opt.levels = 10;
  opt.max_cluster_size = 7;
  opt.er.method = ErMethod::kExact;
  Clustering c = sgm::graph::lrd_decompose(g, opt);
  for (auto s : c.sizes()) EXPECT_LE(s, 7u);
}

TEST(Lrd, TightBudgetMeansNoMerging) {
  CsrGraph g = grid_graph(6, 6);
  LrdOptions opt;
  opt.levels = 4;
  opt.diameter_budget = 1e-12;  // nothing fits
  opt.er.method = ErMethod::kExact;
  Clustering c = sgm::graph::lrd_decompose(g, opt);
  EXPECT_EQ(c.num_clusters, g.num_nodes());
}

TEST(Lrd, WorksOnKnnPointCloud) {
  // End-to-end S1 -> S2 on a realistic cloud: cluster count lands in a
  // sensible band and clusters are spatially tight.
  sgm::util::Rng rng(12);
  Matrix pts(600, 2);
  for (std::size_t i = 0; i < pts.size(); ++i) pts.data()[i] = rng.uniform();
  sgm::graph::KnnGraphOptions kopt;
  kopt.k = 8;
  CsrGraph g = sgm::graph::build_knn_graph(pts, kopt);
  LrdOptions opt;
  opt.levels = 6;
  opt.er.method = ErMethod::kSmoothed;
  opt.er.num_vectors = 8;
  Clustering c = sgm::graph::lrd_decompose(g, opt);
  EXPECT_GT(c.num_clusters, 10u);
  EXPECT_LT(c.num_clusters, 600u);
}

TEST(Lrd, DeterministicForFixedSeed) {
  CsrGraph g = grid_graph(9, 9);
  LrdOptions opt;
  opt.levels = 5;
  opt.er.method = ErMethod::kSmoothed;
  opt.er.seed = 77;
  Clustering a = sgm::graph::lrd_decompose(g, opt);
  Clustering b = sgm::graph::lrd_decompose(g, opt);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(a.node_cluster, b.node_cluster);
}

}  // namespace
