#pragma once
// Dense row-major matrix of doubles. This is the numeric workhorse under the
// autodiff tape, the graph solvers and the CFD reference solvers.
//
// Design notes (why not a template / expression library):
//  * all hot loops in this project are matmuls over small-to-medium shapes
//    (batch x width), so a plain contiguous buffer with a blocked matmul is
//    both simple and fast enough on one core;
//  * doubles everywhere — second-derivative PDE residuals and effective-
//    resistance estimates are sensitive to cancellation, and the test suite
//    gradient-checks against 1e-6-level tolerances.

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace sgm::tensor {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill);

  /// From nested initializer list (row-major); all rows must have equal size.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Raw row pointer (row-major layout).
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(double v);
  void set_zero() { fill(0.0); }

  /// Reshape in place to rows x cols. Existing heap capacity is retained
  /// (shrinking or re-growing within capacity never touches the allocator),
  /// which is what lets the tape's pooled buffers reach zero steady-state
  /// allocations. Element contents are unspecified after a resize; callers
  /// overwrite every entry.
  void resize(std::size_t rows, std::size_t cols);

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Largest |entry|.
  double max_abs() const;

  /// Sum of all entries.
  double sum() const;

  /// In-place: this += alpha * other (shapes must match).
  void axpy(double alpha, const Matrix& other);

  /// In-place scale.
  void scale(double alpha);

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B. Shapes: (m x k) * (k x n) -> (m x n). Throws on mismatch.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C += A * B into an existing matrix (must be pre-shaped m x n).
void matmul_accumulate(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A^T * B. Shapes: (k x m)^T * (k x n) -> (m x n).
Matrix matmul_tn(const Matrix& a, const Matrix& b);

/// C = A * B^T. Shapes: (m x k) * (n x k)^T -> (m x n).
Matrix matmul_nt(const Matrix& a, const Matrix& b);

// ---------------------------------------------------------------------------
// Register-blocked GEMM kernels.
//
// All three products share one micro-kernel shape: an MR x NR accumulator
// tile held in registers while the reduction dimension streams through it.
// Every element c(i, j) accumulates its products in strictly ascending
// reduction order in every code path (full tiles and edges alike), so the
// result is bitwise independent of the tiling AND of how callers split the
// row range across threads — the property the trainer's determinism
// guarantee (byte-identical histories at any num_threads) rests on.
//
// The row-range entry points compute only output rows [r0, r1); rows outside
// the range are untouched, which is what the tape's threaded kernels call
// with disjoint chunks. `accumulate` selects C(+)= vs C=.
// ---------------------------------------------------------------------------

/// C rows [r0, r1) = (or +=) A rows [r0, r1) * B. No shape checks (callers
/// validated); r1 <= a.rows(), C pre-shaped (a.rows() x b.cols()).
void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
             std::size_t r1, bool accumulate);

/// C rows [r0, r1) of C = A^T * B (rows of C are columns of A); C pre-shaped
/// (a.cols() x b.cols()).
void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
             std::size_t r1, bool accumulate);

/// C rows [r0, r1) of C = A * B^T; C pre-shaped (a.rows() x b.rows()).
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
             std::size_t r1, bool accumulate);

/// Naive triple-loop implementations kept as the oracle for the property
/// tests pitting the blocked kernels against them. Not used on hot paths.
Matrix matmul_reference(const Matrix& a, const Matrix& b);
Matrix matmul_tn_reference(const Matrix& a, const Matrix& b);
Matrix matmul_nt_reference(const Matrix& a, const Matrix& b);

Matrix transpose(const Matrix& a);

/// Transpose into an existing matrix (resized in place, capacity retained).
/// Used by the tape's backward kernels to turn the NT product shape into
/// the faster NN kernel via a pooled scratch.
void transpose_into(const Matrix& a, Matrix& out);

Matrix operator+(const Matrix& a, const Matrix& b);
Matrix operator-(const Matrix& a, const Matrix& b);

/// Elementwise product.
Matrix hadamard(const Matrix& a, const Matrix& b);

Matrix operator*(double s, const Matrix& a);

/// Identity matrix n x n.
Matrix identity(std::size_t n);

}  // namespace sgm::tensor
