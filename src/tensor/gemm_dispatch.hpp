#pragma once
// Internal header: per-ISA GEMM kernel builds and their runtime dispatch.
//
// The micro-kernels in gemm_kernels.inl are compiled twice: once with the
// project's baseline flags (namespace gemm_generic, in matrix.cpp) and once
// with -mavx2 -mfma (namespace gemm_avx2, in gemm_avx2.cpp, x86-64 +
// gcc/clang builds only). matrix.cpp selects one set of function pointers
// at startup via __builtin_cpu_supports, so a single portable binary uses
// FMA-width kernels wherever the CPU has them. The choice is made once per
// process and never depends on thread count, preserving the determinism
// contract.

#include <cstddef>

#include "tensor/matrix.hpp"

namespace sgm::tensor {

namespace gemm_generic {
void gemm_nn_range(const Matrix& a, const Matrix& b, Matrix& c,
                   std::size_t r0, std::size_t r1, bool accumulate);
void gemm_tn_range(const Matrix& a, const Matrix& b, Matrix& c,
                   std::size_t r0, std::size_t r1, bool accumulate);
void gemm_nt_range(const Matrix& a, const Matrix& b, Matrix& c,
                   std::size_t r0, std::size_t r1, bool accumulate);
}  // namespace gemm_generic

namespace gemm_avx2 {
void gemm_nn_range(const Matrix& a, const Matrix& b, Matrix& c,
                   std::size_t r0, std::size_t r1, bool accumulate);
void gemm_tn_range(const Matrix& a, const Matrix& b, Matrix& c,
                   std::size_t r0, std::size_t r1, bool accumulate);
void gemm_nt_range(const Matrix& a, const Matrix& b, Matrix& c,
                   std::size_t r0, std::size_t r1, bool accumulate);
}  // namespace gemm_avx2

/// True when gemm_avx2.cpp was actually built with AVX2+FMA codegen (its
/// stubs forward to gemm_generic otherwise).
bool gemm_avx2_compiled();

/// True when runtime dispatch selected the AVX2+FMA kernels for this
/// process (compiled in AND the CPU reports avx2+fma). Tests use this to
/// pick the right bitwise reference: the AVX2 edge paths round through
/// std::fma, the generic ones through separate mul+add.
bool gemm_avx2_active();

}  // namespace sgm::tensor
