#include "tensor/tape.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace sgm::tensor {

VarId Tape::alloc_node() {
  if (size_ == pool_.size()) pool_.emplace_back();
  TapeNode& n = pool_[size_];
  n.fn = nullptr;
  n.scalar = 0.0;
  n.index = 0;
  n.order = 0;
  n.in = {kNoVar, kNoVar, kNoVar};
  n.ref = kNoVar;
  n.op = Op::kLeaf;
  n.requires_grad = false;
  n.grad_set = false;
  return static_cast<VarId>(size_++);
}

VarId Tape::constant(const Matrix& value) {
  const VarId id = alloc_node();
  pool_[id].value = value;  // copy-assign reuses the pooled buffer
  return id;
}

VarId Tape::parameter(const Matrix& value) {
  const VarId id = alloc_node();
  pool_[id].value = value;
  pool_[id].requires_grad = true;
  return id;
}

VarId Tape::constant_uninit(std::size_t rows, std::size_t cols) {
  const VarId id = alloc_node();
  pool_[id].value.resize(rows, cols);
  return id;
}

VarId Tape::emit(Op op, VarId in0, VarId in1, VarId in2, VarId ref) {
  const VarId id = alloc_node();
  TapeNode& n = pool_[id];
  n.op = op;
  n.in = {in0, in1, in2};
  n.ref = ref;
  for (VarId in : n.in) {
    if (in == kNoVar) continue;
    if (in < 0 || in >= id) throw std::out_of_range("Tape::emit: bad input id");
    if (pool_[in].requires_grad) n.requires_grad = true;
  }
  if (ref != kNoVar && (ref < 0 || ref >= id))
    throw std::out_of_range("Tape::emit: bad ref id");
  return id;
}

const Matrix& Tape::grad(VarId id) const {
  static const Matrix kEmpty;
  const TapeNode& n = pool_[id];
  return n.grad_set ? n.grad : kEmpty;
}

Matrix& Tape::grad_buf(VarId id) {
  TapeNode& n = pool_[id];
  if (!n.grad_set) {
    n.grad.resize(n.value.rows(), n.value.cols());
    n.grad.set_zero();
    n.grad_set = true;
  }
  return n.grad;
}

void Tape::backward(VarId root) {
  if (root < 0 || static_cast<std::size_t>(root) >= size_)
    throw std::out_of_range("Tape::backward: bad root id");
  const Matrix& rv = pool_[root].value;
  if (rv.rows() != 1 || rv.cols() != 1)
    throw std::invalid_argument("Tape::backward: root must be a 1x1 scalar");
  for (std::size_t i = 0; i < size_; ++i) pool_[i].grad_set = false;
  {
    TapeNode& r = pool_[root];
    r.grad.resize(1, 1);
    r.grad(0, 0) = 1.0;
    r.grad_set = true;
  }
  for (VarId id = root; id >= 0; --id) {
    TapeNode& n = pool_[id];
    if (!n.requires_grad || !n.grad_set || n.op == Op::kLeaf) continue;
    detail::backward_node(*this, id);
  }
}

}  // namespace sgm::tensor
