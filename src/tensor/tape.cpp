#include "tensor/tape.hpp"

#include <stdexcept>

namespace sgm::tensor {

VarId Tape::constant(Matrix value) {
  Node n;
  n.value = std::move(value);
  n.requires_grad = false;
  nodes_.push_back(std::move(n));
  return static_cast<VarId>(nodes_.size() - 1);
}

VarId Tape::parameter(Matrix value) {
  Node n;
  n.value = std::move(value);
  n.requires_grad = true;
  nodes_.push_back(std::move(n));
  return static_cast<VarId>(nodes_.size() - 1);
}

VarId Tape::emit(Matrix value, std::vector<VarId> inputs,
                 BackwardFn backward) {
  Node n;
  n.value = std::move(value);
  n.inputs = std::move(inputs);
  for (VarId in : n.inputs) {
    if (in < 0 || in >= static_cast<VarId>(nodes_.size()))
      throw std::out_of_range("Tape::emit: bad input id");
    if (nodes_[in].requires_grad) n.requires_grad = true;
  }
  if (n.requires_grad) n.backward = std::move(backward);
  nodes_.push_back(std::move(n));
  return static_cast<VarId>(nodes_.size() - 1);
}

void Tape::accumulate_grad(VarId id, const Matrix& delta) {
  Node& n = nodes_[id];
  if (!n.requires_grad) return;
  if (n.grad.empty()) {
    n.grad = delta;
  } else {
    n.grad.axpy(1.0, delta);
  }
}

void Tape::backward(VarId root) {
  if (root < 0 || root >= static_cast<VarId>(nodes_.size()))
    throw std::out_of_range("Tape::backward: bad root id");
  const Matrix& rv = nodes_[root].value;
  if (rv.rows() != 1 || rv.cols() != 1)
    throw std::invalid_argument("Tape::backward: root must be a 1x1 scalar");
  for (auto& n : nodes_) n.grad = Matrix();
  nodes_[root].grad = Matrix(1, 1, 1.0);
  for (VarId id = root; id >= 0; --id) {
    Node& n = nodes_[id];
    if (!n.requires_grad || n.grad.empty() || !n.backward) continue;
    n.backward(*this, id);
  }
}

void Tape::clear() { nodes_.clear(); }

}  // namespace sgm::tensor
