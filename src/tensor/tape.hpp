#pragma once
// Reverse-mode automatic differentiation over Matrix values — v2.
//
// The tape is define-by-run: the MLP forward pass — including the
// propagation of input-Jacobians and input-Hessian diagonals needed by PDE
// residuals — is recorded as a sequence of Matrix ops, and one backward()
// sweep produces gradients w.r.t. every parameter leaf. Nodes are
// topologically ordered by construction, so the backward sweep is a simple
// reverse iteration.
//
// v2 execution model (PR 4):
//  * ops are an enum dispatched in a switch, not std::function closures —
//    a node carries at most three input ids, a few scalar params and an
//    ElementwiseFunction pointer, never a heap-allocated callable;
//  * nodes live in a bump arena: clear() resets the node count but keeps
//    every node's value/grad/aux Matrix buffers, so a tape reused across
//    training steps re-records the same graph into the same buffers with
//    ZERO heap allocations in steady state (asserted by tests; input
//    encodings other than identity still stage their encode() outputs
//    outside the arena);
//  * kernels are threaded over row/element chunks via util::ThreadPool.
//    Every threaded kernel writes disjoint output elements and keeps each
//    element's floating-point accumulation order fixed, and reductions run
//    serially, so results are byte-identical at any num_threads (the
//    trainer's determinism invariant). num_threads=1 (the default) never
//    touches the pool.

#include <array>
#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/thread_pool.hpp"

namespace sgm::tensor {

class ElementwiseFunction;

using VarId = std::int32_t;
inline constexpr VarId kNoVar = -1;

/// The op set. Fused ops exist for the training-step hot path:
/// kAffine = matmul + bias row broadcast; kActivation evaluates f, f', f''
/// (and f''' for backward) in ONE sweep over z; kActChain / kActCurve are
/// the per-input-dimension derivative propagation rules of the MLP layer
/// (see nn/mlp.hpp), each a single fused elementwise pass.
enum class Op : std::uint8_t {
  kLeaf,          // constant or parameter
  kAdd,           // a + b
  kSub,           // a - b
  kMul,           // a ⊙ b
  kScale,         // scalar * a
  kAddScalar,     // a + scalar
  kMatmul,        // a · b
  kAffine,        // a · w + 1 ⊗ bias
  kAddRowvec,     // x + 1 ⊗ b
  kApply,         // f^(order)(a) elementwise
  kActivation,    // f(z); aux[k] = f^(k+1)(z) for k < orders
  kActChain,      // f'(z) ⊙ zk            (ref: the kActivation node)
  kActCurve,      // f''(z) ⊙ zk² + f'(z) ⊙ hzk  (ref: the kActivation node)
  kSquare,        // a ⊙ a
  kCol,           // column `index` of a
  kMeanAll,       // scalar mean
  kSumAll,        // scalar sum
  kWeightedMean,  // scalar sum(w ⊙ a) / n, w in aux[0]
  kHcat,          // [a | b], index = a.cols
};

/// One arena slot. Matrix members are pooled: emit() reuses them in place
/// (resize retains capacity), which is where the zero-allocation steady
/// state comes from. Treated as internal by everything except the op
/// kernels in ops.cpp.
struct TapeNode {
  Matrix value;
  Matrix grad;                 // valid only when grad_set (stale otherwise)
  std::array<Matrix, 3> aux;   // kActivation: f',f'',f'''; kWeightedMean: w
  const ElementwiseFunction* fn = nullptr;
  double scalar = 0.0;         // kScale/kAddScalar factor, reduction 1/n
  std::uint32_t index = 0;     // kCol j; kHcat split; kActivation orders
  int order = 0;               // kApply derivative order
  std::array<VarId, 3> in = {kNoVar, kNoVar, kNoVar};
  VarId ref = kNoVar;          // kActChain/kActCurve -> kActivation node
  Op op = Op::kLeaf;
  bool requires_grad = false;
  bool grad_set = false;
};

class Tape {
 public:
  /// Leaf that never receives a gradient (e.g. collocation coordinates).
  /// The value is copied into the slot's pooled buffer.
  VarId constant(const Matrix& value);

  /// Leaf that accumulates a gradient (network weights / biases).
  VarId parameter(const Matrix& value);

  /// Leaf constant with an uninitialized (rows x cols) value the caller
  /// fills in place via mutable_value() — lets encodings write directly
  /// into the arena without a staging matrix.
  VarId constant_uninit(std::size_t rows, std::size_t cols);

  /// Record an op node (kernel interface, used by the emitters in ops.cpp).
  /// requires_grad is inferred from the inputs; throws on out-of-range ids.
  VarId emit(Op op, VarId in0 = kNoVar, VarId in1 = kNoVar,
             VarId in2 = kNoVar, VarId ref = kNoVar);

  const Matrix& value(VarId id) const { return pool_[id].value; }
  Matrix& mutable_value(VarId id) { return pool_[id].value; }

  /// Gradient of the last backward() root w.r.t. node `id`. Empty matrix if
  /// the node never received a gradient.
  const Matrix& grad(VarId id) const;

  bool requires_grad(VarId id) const { return pool_[id].requires_grad; }

  /// Runs reverse-mode accumulation from `root`, which must be 1x1.
  /// Clears any previous gradients first.
  void backward(VarId root);

  std::size_t num_nodes() const { return size_; }

  /// Drop all nodes; node slots and their Matrix capacity are retained so
  /// per-step reuse is allocation-free once shapes have stabilized.
  void clear() { size_ = 0; }

  /// Worker threads for the threaded kernels (resolved count; 1 = serial,
  /// the default). Results are byte-identical at any setting.
  void set_num_threads(std::size_t n) { threads_ = n > 0 ? n : 1; }
  std::size_t num_threads() const { return threads_; }

  /// Kernel access to a node slot (ops.cpp only).
  TapeNode& node(VarId id) { return pool_[id]; }
  const TapeNode& node(VarId id) const { return pool_[id]; }

  /// Gradient buffer of `id`, shaped like its value and zero-filled on the
  /// first touch of this backward sweep; kernels accumulate into it.
  Matrix& grad_buf(VarId id);

  /// Chunked loop over [0, n): fn(begin, end). Runs inline when serial or
  /// when n is below two grains; otherwise fans out over the shared pool
  /// with a chunk layout that depends only on `grain` — callers write
  /// disjoint slots, so outputs never depend on the thread count.
  template <class Fn>
  void parallel_range(std::size_t n, std::size_t grain, Fn&& fn) const {
    if (threads_ <= 1 || n < 2 * grain) {
      fn(std::size_t{0}, n);
      return;
    }
    util::parallel_for_chunks(
        0, n, grain, threads_,
        [&fn](std::size_t b, std::size_t e, std::size_t) { fn(b, e); });
  }

  /// Grain sizes for the threaded kernels (rows for GEMM-shaped loops,
  /// raw elements for pointwise loops).
  static constexpr std::size_t kRowGrain = 32;
  static constexpr std::size_t kElemGrain = 8192;

 private:
  VarId alloc_node();

  std::vector<TapeNode> pool_;
  std::size_t size_ = 0;
  std::size_t threads_ = 1;
};

}  // namespace sgm::tensor
