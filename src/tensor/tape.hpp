#pragma once
// Reverse-mode automatic differentiation over Matrix values.
//
// The tape is rebuilt every training step (define-by-run): the MLP forward
// pass — including the propagation of input-Jacobians and input-Hessian
// diagonals needed by PDE residuals — is recorded as a sequence of Matrix
// ops, and one backward() sweep produces gradients w.r.t. every parameter
// leaf. Nodes are topologically ordered by construction, so the backward
// sweep is a simple reverse iteration.

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/matrix.hpp"

namespace sgm::tensor {

using VarId = std::int32_t;
inline constexpr VarId kNoVar = -1;

class Tape {
 public:
  /// Called during backward(); must read grad(self) and accumulate into the
  /// grads of its inputs via accumulate_grad().
  using BackwardFn = std::function<void(Tape&, VarId self)>;

  /// Leaf that never receives a gradient (e.g. collocation coordinates).
  VarId constant(Matrix value);

  /// Leaf that accumulates a gradient (network weights / biases).
  VarId parameter(Matrix value);

  /// Record an op node. `requires_grad` is inferred from the inputs.
  VarId emit(Matrix value, std::vector<VarId> inputs, BackwardFn backward);

  const Matrix& value(VarId id) const { return nodes_[id].value; }
  Matrix& mutable_value(VarId id) { return nodes_[id].value; }

  /// Gradient of the last backward() root w.r.t. node `id`. Empty matrix if
  /// the node never received a gradient.
  const Matrix& grad(VarId id) const { return nodes_[id].grad; }

  bool requires_grad(VarId id) const { return nodes_[id].requires_grad; }

  /// Accumulate `delta` into grad(id) (allocating it on first touch).
  /// No-op when the node does not require grad.
  void accumulate_grad(VarId id, const Matrix& delta);

  /// Runs reverse-mode accumulation from `root`, which must be 1x1.
  /// Clears any previous gradients first.
  void backward(VarId root);

  std::size_t num_nodes() const { return nodes_.size(); }

  /// Drop all nodes; capacity is retained so per-step reuse is cheap.
  void clear();

 private:
  struct Node {
    Matrix value;
    Matrix grad;  // empty until touched by backward
    std::vector<VarId> inputs;
    BackwardFn backward;
    bool requires_grad = false;
  };
  std::vector<Node> nodes_;
};

}  // namespace sgm::tensor
