#include "tensor/matrix.hpp"

#include "tensor/gemm_dispatch.hpp"

#include <cmath>
#include <stdexcept>

// Baseline-ISA build of the micro-kernels; the AVX2+FMA build lives in
// gemm_avx2.cpp and runtime dispatch picks between them.
#define SGM_GEMM_NS gemm_generic
#include "tensor/gemm_kernels.inl"
#undef SGM_GEMM_NS

namespace sgm::tensor {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_)
      throw std::invalid_argument("Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

void Matrix::fill(double v) {
  for (auto& x : data_) x = v;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::fabs(x));
  return m;
}

double Matrix::sum() const {
  double s = 0.0;
  for (double x : data_) s += x;
  return s;
}

void Matrix::axpy(double alpha, const Matrix& other) {
  if (!same_shape(other)) throw std::invalid_argument("axpy: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
}

void Matrix::scale(double alpha) {
  for (auto& x : data_) x *= alpha;
}

namespace {
void check_mul(const Matrix& a, const Matrix& b, std::size_t ak,
               std::size_t bk) {
  if (ak != bk)
    throw std::invalid_argument("matmul: inner dimension mismatch (" +
                                std::to_string(a.rows()) + "x" +
                                std::to_string(a.cols()) + " vs " +
                                std::to_string(b.rows()) + "x" +
                                std::to_string(b.cols()) + ")");
}
}  // namespace

namespace {

using GemmFn = void (*)(const Matrix&, const Matrix&, Matrix&, std::size_t,
                        std::size_t, bool);

struct GemmKernels {
  GemmFn nn, tn, nt;
};

GemmKernels select_gemm_kernels() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (gemm_avx2_compiled() && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma"))
    return {gemm_avx2::gemm_nn_range, gemm_avx2::gemm_tn_range,
            gemm_avx2::gemm_nt_range};
#endif
  return {gemm_generic::gemm_nn_range, gemm_generic::gemm_tn_range,
          gemm_generic::gemm_nt_range};
}

const GemmKernels& gemm_kernels() {
  static const GemmKernels k = select_gemm_kernels();
  return k;
}

}  // namespace

bool gemm_avx2_active() {
  return gemm_kernels().nn == &gemm_avx2::gemm_nn_range;
}

void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
             std::size_t r1, bool accumulate) {
  gemm_kernels().nn(a, b, c, r0, r1, accumulate);
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
             std::size_t r1, bool accumulate) {
  gemm_kernels().tn(a, b, c, r0, r1, accumulate);
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
             std::size_t r1, bool accumulate) {
  gemm_kernels().nt(a, b, c, r0, r1, accumulate);
}

void matmul_accumulate(const Matrix& a, const Matrix& b, Matrix& c) {
  check_mul(a, b, a.cols(), b.rows());
  if (c.rows() != a.rows() || c.cols() != b.cols())
    throw std::invalid_argument("matmul_accumulate: output shape mismatch");
  gemm_nn(a, b, c, 0, a.rows(), /*accumulate=*/true);
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  check_mul(a, b, a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  gemm_nn(a, b, c, 0, a.rows(), /*accumulate=*/false);
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  check_mul(a, b, a.rows(), b.rows());
  Matrix c(a.cols(), b.cols());
  gemm_tn(a, b, c, 0, a.cols(), /*accumulate=*/false);
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  check_mul(a, b, a.cols(), b.cols());
  Matrix c(a.rows(), b.rows());
  gemm_nt(a, b, c, 0, a.rows(), /*accumulate=*/false);
  return c;
}

Matrix matmul_reference(const Matrix& a, const Matrix& b) {
  check_mul(a, b, a.cols(), b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += a(i, p) * b(p, j);
      c(i, j) = s;
    }
  return c;
}

Matrix matmul_tn_reference(const Matrix& a, const Matrix& b) {
  check_mul(a, b, a.rows(), b.rows());
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  Matrix c(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += a(p, i) * b(p, j);
      c(i, j) = s;
    }
  return c;
}

Matrix matmul_nt_reference(const Matrix& a, const Matrix& b) {
  check_mul(a, b, a.cols(), b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += a(i, p) * b(j, p);
      c(i, j) = s;
    }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

void transpose_into(const Matrix& a, Matrix& out) {
  out.resize(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) out(j, i) = arow[j];
  }
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("operator+: shape");
  Matrix c = a;
  c.axpy(1.0, b);
  return c;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("operator-: shape");
  Matrix c = a;
  c.axpy(-1.0, b);
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("hadamard: shape");
  Matrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] * b.data()[i];
  return c;
}

Matrix operator*(double s, const Matrix& a) {
  Matrix c = a;
  c.scale(s);
  return c;
}

Matrix identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

}  // namespace sgm::tensor
