#include "tensor/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace sgm::tensor {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_)
      throw std::invalid_argument("Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

void Matrix::fill(double v) {
  for (auto& x : data_) x = v;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::fabs(x));
  return m;
}

double Matrix::sum() const {
  double s = 0.0;
  for (double x : data_) s += x;
  return s;
}

void Matrix::axpy(double alpha, const Matrix& other) {
  if (!same_shape(other)) throw std::invalid_argument("axpy: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
}

void Matrix::scale(double alpha) {
  for (auto& x : data_) x *= alpha;
}

namespace {
void check_mul(const Matrix& a, const Matrix& b, std::size_t ak,
               std::size_t bk) {
  if (ak != bk)
    throw std::invalid_argument("matmul: inner dimension mismatch (" +
                                std::to_string(a.rows()) + "x" +
                                std::to_string(a.cols()) + " vs " +
                                std::to_string(b.rows()) + "x" +
                                std::to_string(b.cols()) + ")");
}
}  // namespace

void matmul_accumulate(const Matrix& a, const Matrix& b, Matrix& c) {
  check_mul(a, b, a.cols(), b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (c.rows() != m || c.cols() != n)
    throw std::invalid_argument("matmul_accumulate: output shape mismatch");
  // i-k-j loop order: streams through B and C rows contiguously.
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a.row(i);
    double* crow = c.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      const double* brow = b.row(p);
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  matmul_accumulate(a, b, c);
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  check_mul(a, b, a.rows(), b.rows());
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  Matrix c(m, n);
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = a.row(p);
    const double* brow = b.row(p);
    for (std::size_t i = 0; i < m; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* crow = c.row(i);
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  check_mul(a, b, a.cols(), b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a.row(i);
    double* crow = c.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double* brow = b.row(j);
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] = s;
    }
  }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("operator+: shape");
  Matrix c = a;
  c.axpy(1.0, b);
  return c;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("operator-: shape");
  Matrix c = a;
  c.axpy(-1.0, b);
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("hadamard: shape");
  Matrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] * b.data()[i];
  return c;
}

Matrix operator*(double s, const Matrix& a) {
  Matrix c = a;
  c.scale(s);
  return c;
}

Matrix identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

}  // namespace sgm::tensor
