#include "tensor/ops.hpp"

#include <stdexcept>
#include <string>

namespace sgm::tensor {

namespace {

void check_same_shape(const Tape& t, VarId a, VarId b, const char* op) {
  if (!t.value(a).same_shape(t.value(b)))
    throw std::invalid_argument(std::string(op) + ": shape mismatch");
}

// -------------------------------------------------------- backward helpers

// grad(in) += alpha * g.
void axpy_grad(Tape& t, VarId in, const Matrix& g, double alpha) {
  if (in == kNoVar || !t.requires_grad(in)) return;
  Matrix& gb = t.grad_buf(in);
  const double* gp = g.data();
  double* o = gb.data();
  t.parallel_range(g.size(), Tape::kElemGrain,
                   [&](std::size_t b, std::size_t e) {
                     for (std::size_t i = b; i < e; ++i) o[i] += alpha * gp[i];
                   });
}

// grad(in) += g ⊙ other.
void prod_grad(Tape& t, VarId in, const Matrix& g, const Matrix& other) {
  if (in == kNoVar || !t.requires_grad(in)) return;
  Matrix& gb = t.grad_buf(in);
  const double* gp = g.data();
  const double* op = other.data();
  double* o = gb.data();
  t.parallel_range(g.size(), Tape::kElemGrain,
                   [&](std::size_t b, std::size_t e) {
                     for (std::size_t i = b; i < e; ++i) o[i] += gp[i] * op[i];
                   });
}

// grad(bias) (1 x d) += column sums of g. Serial: d is a network width and
// the serial pass keeps the reduction order thread-count-independent.
void colsum_grad(Tape& t, VarId bias, const Matrix& g) {
  if (bias == kNoVar || !t.requires_grad(bias)) return;
  Matrix& gb = t.grad_buf(bias);
  for (std::size_t r = 0; r < g.rows(); ++r) {
    const double* grow = g.row(r);
    double* out = gb.row(0);
    for (std::size_t c = 0; c < g.cols(); ++c) out[c] += grow[c];
  }
}

// grad(a) += g · value(b)^T, threaded over the rows of grad(a). The right
// operand is transposed once into the op node's pooled scratch so the
// product runs through the fast NN kernel instead of the strided NT shape.
void matmul_grad_left(Tape& t, TapeNode& n, VarId a, const Matrix& g,
                      const Matrix& bv) {
  if (!t.requires_grad(a)) return;
  Matrix& bt = n.aux[0];
  transpose_into(bv, bt);
  Matrix& ga = t.grad_buf(a);
  t.parallel_range(ga.rows(), Tape::kRowGrain,
                   [&](std::size_t b, std::size_t e) {
                     gemm_nn(g, bt, ga, b, e, /*accumulate=*/true);
                   });
}

// grad(b) += value(a)^T · g, threaded over the rows of grad(b).
void matmul_grad_right(Tape& t, VarId b, const Matrix& av, const Matrix& g) {
  if (!t.requires_grad(b)) return;
  Matrix& gb = t.grad_buf(b);
  t.parallel_range(gb.rows(), Tape::kRowGrain,
                   [&](std::size_t rb, std::size_t re) {
                     gemm_tn(av, g, gb, rb, re, /*accumulate=*/true);
                   });
}

}  // namespace

// ------------------------------------------------------------------- add --

VarId add(Tape& t, VarId a, VarId b) {
  check_same_shape(t, a, b, "add");
  const VarId id = t.emit(Op::kAdd, a, b);
  const Matrix& av = t.value(a);
  const Matrix& bv = t.value(b);
  Matrix& v = t.mutable_value(id);
  v.resize(av.rows(), av.cols());
  const double* ap = av.data();
  const double* bp = bv.data();
  double* vp = v.data();
  t.parallel_range(v.size(), Tape::kElemGrain,
                   [&](std::size_t b0, std::size_t e) {
                     for (std::size_t i = b0; i < e; ++i) vp[i] = ap[i] + bp[i];
                   });
  return id;
}

VarId sub(Tape& t, VarId a, VarId b) {
  check_same_shape(t, a, b, "sub");
  const VarId id = t.emit(Op::kSub, a, b);
  const Matrix& av = t.value(a);
  const Matrix& bv = t.value(b);
  Matrix& v = t.mutable_value(id);
  v.resize(av.rows(), av.cols());
  const double* ap = av.data();
  const double* bp = bv.data();
  double* vp = v.data();
  t.parallel_range(v.size(), Tape::kElemGrain,
                   [&](std::size_t b0, std::size_t e) {
                     for (std::size_t i = b0; i < e; ++i) vp[i] = ap[i] - bp[i];
                   });
  return id;
}

VarId mul(Tape& t, VarId a, VarId b) {
  check_same_shape(t, a, b, "mul");
  const VarId id = t.emit(Op::kMul, a, b);
  const Matrix& av = t.value(a);
  const Matrix& bv = t.value(b);
  Matrix& v = t.mutable_value(id);
  v.resize(av.rows(), av.cols());
  const double* ap = av.data();
  const double* bp = bv.data();
  double* vp = v.data();
  t.parallel_range(v.size(), Tape::kElemGrain,
                   [&](std::size_t b0, std::size_t e) {
                     for (std::size_t i = b0; i < e; ++i) vp[i] = ap[i] * bp[i];
                   });
  return id;
}

VarId scale(Tape& t, VarId a, double s) {
  const VarId id = t.emit(Op::kScale, a);
  t.node(id).scalar = s;
  const Matrix& av = t.value(a);
  Matrix& v = t.mutable_value(id);
  v.resize(av.rows(), av.cols());
  const double* ap = av.data();
  double* vp = v.data();
  t.parallel_range(v.size(), Tape::kElemGrain,
                   [&](std::size_t b0, std::size_t e) {
                     for (std::size_t i = b0; i < e; ++i) vp[i] = s * ap[i];
                   });
  return id;
}

VarId add_scalar(Tape& t, VarId a, double s) {
  const VarId id = t.emit(Op::kAddScalar, a);
  t.node(id).scalar = s;
  const Matrix& av = t.value(a);
  Matrix& v = t.mutable_value(id);
  v.resize(av.rows(), av.cols());
  const double* ap = av.data();
  double* vp = v.data();
  t.parallel_range(v.size(), Tape::kElemGrain,
                   [&](std::size_t b0, std::size_t e) {
                     for (std::size_t i = b0; i < e; ++i) vp[i] = ap[i] + s;
                   });
  return id;
}

// ---------------------------------------------------------------- matmul --

VarId matmul(Tape& t, VarId a, VarId b) {
  const Matrix& av0 = t.value(a);
  const Matrix& bv0 = t.value(b);
  if (av0.cols() != bv0.rows())
    throw std::invalid_argument("matmul: inner dimension mismatch (" +
                                std::to_string(av0.rows()) + "x" +
                                std::to_string(av0.cols()) + " vs " +
                                std::to_string(bv0.rows()) + "x" +
                                std::to_string(bv0.cols()) + ")");
  const VarId id = t.emit(Op::kMatmul, a, b);
  const Matrix& av = t.value(a);
  const Matrix& bv = t.value(b);
  Matrix& v = t.mutable_value(id);
  v.resize(av.rows(), bv.cols());
  t.parallel_range(v.rows(), Tape::kRowGrain,
                   [&](std::size_t rb, std::size_t re) {
                     gemm_nn(av, bv, v, rb, re, /*accumulate=*/false);
                   });
  return id;
}

VarId add_rowvec(Tape& t, VarId x, VarId b) {
  if (t.value(b).rows() != 1 || t.value(b).cols() != t.value(x).cols())
    throw std::invalid_argument("add_rowvec: b must be 1 x cols(x)");
  const VarId id = t.emit(Op::kAddRowvec, x, b);
  const Matrix& xv = t.value(x);
  const Matrix& bv = t.value(b);
  Matrix& v = t.mutable_value(id);
  v.resize(xv.rows(), xv.cols());
  const double* brow = bv.row(0);
  t.parallel_range(v.rows(), Tape::kRowGrain,
                   [&](std::size_t rb, std::size_t re) {
                     for (std::size_t r = rb; r < re; ++r) {
                       const double* xrow = xv.row(r);
                       double* vrow = v.row(r);
                       for (std::size_t c = 0; c < v.cols(); ++c)
                         vrow[c] = xrow[c] + brow[c];
                     }
                   });
  return id;
}

VarId affine(Tape& t, VarId a, VarId w, VarId b) {
  const Matrix& av0 = t.value(a);
  const Matrix& wv0 = t.value(w);
  const Matrix& bv0 = t.value(b);
  if (av0.cols() != wv0.rows())
    throw std::invalid_argument("affine: inner dimension mismatch");
  if (bv0.rows() != 1 || bv0.cols() != wv0.cols())
    throw std::invalid_argument("affine: bias must be 1 x cols(w)");
  const VarId id = t.emit(Op::kAffine, a, w, b);
  const Matrix& av = t.value(a);
  const Matrix& wv = t.value(w);
  const Matrix& bv = t.value(b);
  Matrix& v = t.mutable_value(id);
  v.resize(av.rows(), wv.cols());
  const double* brow = bv.row(0);
  t.parallel_range(v.rows(), Tape::kRowGrain,
                   [&](std::size_t rb, std::size_t re) {
                     gemm_nn(av, wv, v, rb, re, /*accumulate=*/false);
                     for (std::size_t r = rb; r < re; ++r) {
                       double* vrow = v.row(r);
                       for (std::size_t c = 0; c < v.cols(); ++c)
                         vrow[c] += brow[c];
                     }
                   });
  return id;
}

// ----------------------------------------------------------- elementwise --

VarId apply(Tape& t, VarId a, const ElementwiseFunction& f, int order) {
  const VarId id = t.emit(Op::kApply, a);
  t.node(id).fn = &f;
  t.node(id).order = order;
  const Matrix& av = t.value(a);
  Matrix& v = t.mutable_value(id);
  v.resize(av.rows(), av.cols());
  const double* ap = av.data();
  double* vp = v.data();
  t.parallel_range(v.size(), Tape::kElemGrain,
                   [&](std::size_t b0, std::size_t e) {
                     for (std::size_t i = b0; i < e; ++i)
                       vp[i] = f.eval(ap[i], order);
                   });
  return id;
}

VarId activation(Tape& t, VarId z, const ElementwiseFunction& f, int orders) {
  if (orders < 1 || orders > 3)
    throw std::invalid_argument("activation: orders must be 1..3");
  const VarId id = t.emit(Op::kActivation, z);
  TapeNode& n = t.node(id);
  n.fn = &f;
  n.index = static_cast<std::uint32_t>(orders);
  const Matrix& zv = t.value(z);
  n.value.resize(zv.rows(), zv.cols());
  for (int k = 0; k < orders; ++k) n.aux[k].resize(zv.rows(), zv.cols());
  const double* zp = zv.data();
  double* out0 = n.value.data();
  double* out1 = n.aux[0].data();
  double* out2 = orders >= 2 ? n.aux[1].data() : nullptr;
  double* out3 = orders >= 3 ? n.aux[2].data() : nullptr;
  t.parallel_range(zv.size(), Tape::kElemGrain,
                   [&](std::size_t b0, std::size_t e) {
                     double buf[4];
                     for (std::size_t i = b0; i < e; ++i) {
                       f.eval_orders(zp[i], orders, buf);
                       out0[i] = buf[0];
                       out1[i] = buf[1];
                       if (out2) out2[i] = buf[2];
                       if (out3) out3[i] = buf[3];
                     }
                   });
  return id;
}

VarId act_chain(Tape& t, VarId act, VarId zk) {
  const TapeNode& an = t.node(act);
  if (an.op != Op::kActivation || an.index < 2)
    throw std::invalid_argument(
        "act_chain: act must be an activation node with orders >= 2");
  check_same_shape(t, act, zk, "act_chain");
  const VarId id = t.emit(Op::kActChain, an.in[0], zk, kNoVar, act);
  const Matrix& s1 = t.node(act).aux[0];
  const Matrix& zkv = t.value(zk);
  Matrix& v = t.mutable_value(id);
  v.resize(zkv.rows(), zkv.cols());
  const double* s1p = s1.data();
  const double* zp = zkv.data();
  double* vp = v.data();
  t.parallel_range(v.size(), Tape::kElemGrain,
                   [&](std::size_t b0, std::size_t e) {
                     for (std::size_t i = b0; i < e; ++i)
                       vp[i] = s1p[i] * zp[i];
                   });
  return id;
}

VarId act_curve(Tape& t, VarId act, VarId zk, VarId hzk) {
  const TapeNode& an = t.node(act);
  if (an.op != Op::kActivation || an.index < 3)
    throw std::invalid_argument(
        "act_curve: act must be an activation node with orders = 3");
  check_same_shape(t, act, zk, "act_curve");
  check_same_shape(t, act, hzk, "act_curve");
  const VarId id = t.emit(Op::kActCurve, an.in[0], zk, hzk, act);
  const Matrix& s1 = t.node(act).aux[0];
  const Matrix& s2 = t.node(act).aux[1];
  const Matrix& zkv = t.value(zk);
  const Matrix& hzkv = t.value(hzk);
  Matrix& v = t.mutable_value(id);
  v.resize(zkv.rows(), zkv.cols());
  const double* s1p = s1.data();
  const double* s2p = s2.data();
  const double* zp = zkv.data();
  const double* hp = hzkv.data();
  double* vp = v.data();
  t.parallel_range(v.size(), Tape::kElemGrain,
                   [&](std::size_t b0, std::size_t e) {
                     for (std::size_t i = b0; i < e; ++i)
                       vp[i] = s2p[i] * zp[i] * zp[i] + s1p[i] * hp[i];
                   });
  return id;
}

VarId square(Tape& t, VarId a) {
  const VarId id = t.emit(Op::kSquare, a);
  const Matrix& av = t.value(a);
  Matrix& v = t.mutable_value(id);
  v.resize(av.rows(), av.cols());
  const double* ap = av.data();
  double* vp = v.data();
  t.parallel_range(v.size(), Tape::kElemGrain,
                   [&](std::size_t b0, std::size_t e) {
                     for (std::size_t i = b0; i < e; ++i) vp[i] = ap[i] * ap[i];
                   });
  return id;
}

// ------------------------------------------------------- slices / concat --

VarId col(Tape& t, VarId a, std::size_t j) {
  if (j >= t.value(a).cols())
    throw std::out_of_range("col: column out of range");
  const VarId id = t.emit(Op::kCol, a);
  t.node(id).index = static_cast<std::uint32_t>(j);
  const Matrix& av = t.value(a);
  Matrix& v = t.mutable_value(id);
  v.resize(av.rows(), 1);
  for (std::size_t r = 0; r < av.rows(); ++r) v(r, 0) = av(r, j);
  return id;
}

VarId hcat(Tape& t, VarId a, VarId b) {
  if (t.value(a).rows() != t.value(b).rows())
    throw std::invalid_argument("hcat: row count mismatch");
  const VarId id = t.emit(Op::kHcat, a, b);
  const Matrix& av = t.value(a);
  const Matrix& bv = t.value(b);
  t.node(id).index = static_cast<std::uint32_t>(av.cols());
  Matrix& v = t.mutable_value(id);
  v.resize(av.rows(), av.cols() + bv.cols());
  t.parallel_range(
      v.rows(), Tape::kRowGrain, [&](std::size_t rb, std::size_t re) {
        for (std::size_t r = rb; r < re; ++r) {
          double* vrow = v.row(r);
          const double* arow = av.row(r);
          const double* brow = bv.row(r);
          for (std::size_t c = 0; c < av.cols(); ++c) vrow[c] = arow[c];
          for (std::size_t c = 0; c < bv.cols(); ++c)
            vrow[av.cols() + c] = brow[c];
        }
      });
  return id;
}

// -------------------------------------------------------------- reductions --
// Reductions run serially in element order: their cost is linear and a fixed
// summation order keeps results byte-identical at any thread count.

VarId mean_all(Tape& t, VarId a) {
  if (t.value(a).size() == 0)
    throw std::invalid_argument("mean_all: empty matrix");
  const VarId id = t.emit(Op::kMeanAll, a);
  const Matrix& av = t.value(a);
  t.node(id).scalar = 1.0 / static_cast<double>(av.size());
  Matrix& v = t.mutable_value(id);
  v.resize(1, 1);
  v(0, 0) = av.sum() * t.node(id).scalar;
  return id;
}

VarId sum_all(Tape& t, VarId a) {
  const VarId id = t.emit(Op::kSumAll, a);
  t.node(id).scalar = 1.0;
  Matrix& v = t.mutable_value(id);
  v.resize(1, 1);
  v(0, 0) = t.value(a).sum();
  return id;
}

VarId weighted_mean(Tape& t, VarId a, const Matrix& weights) {
  if (!t.value(a).same_shape(weights))
    throw std::invalid_argument("weighted_mean: shape mismatch");
  const VarId id = t.emit(Op::kWeightedMean, a);
  TapeNode& n = t.node(id);
  n.aux[0] = weights;  // pooled copy
  n.scalar = 1.0 / static_cast<double>(weights.size());
  const Matrix& av = t.value(a);
  double s = 0.0;
  for (std::size_t i = 0; i < av.size(); ++i)
    s += av.data()[i] * weights.data()[i];
  Matrix& v = t.mutable_value(id);
  v.resize(1, 1);
  v(0, 0) = s * n.scalar;
  return id;
}

// ---------------------------------------------------------------- backward --

namespace detail {

void backward_node(Tape& t, VarId id) {
  TapeNode& n = t.node(id);
  const Matrix& g = n.grad;
  switch (n.op) {
    case Op::kLeaf:
      break;
    case Op::kAdd:
      axpy_grad(t, n.in[0], g, 1.0);
      axpy_grad(t, n.in[1], g, 1.0);
      break;
    case Op::kSub:
      axpy_grad(t, n.in[0], g, 1.0);
      axpy_grad(t, n.in[1], g, -1.0);
      break;
    case Op::kMul:
      prod_grad(t, n.in[0], g, t.value(n.in[1]));
      prod_grad(t, n.in[1], g, t.value(n.in[0]));
      break;
    case Op::kScale:
      axpy_grad(t, n.in[0], g, n.scalar);
      break;
    case Op::kAddScalar:
      axpy_grad(t, n.in[0], g, 1.0);
      break;
    case Op::kMatmul:
      matmul_grad_left(t, n, n.in[0], g, t.value(n.in[1]));
      matmul_grad_right(t, n.in[1], t.value(n.in[0]), g);
      break;
    case Op::kAffine:
      matmul_grad_left(t, n, n.in[0], g, t.value(n.in[1]));
      matmul_grad_right(t, n.in[1], t.value(n.in[0]), g);
      colsum_grad(t, n.in[2], g);
      break;
    case Op::kAddRowvec:
      axpy_grad(t, n.in[0], g, 1.0);
      colsum_grad(t, n.in[1], g);
      break;
    case Op::kApply: {
      const VarId a = n.in[0];
      if (!t.requires_grad(a)) break;
      const Matrix& av = t.value(a);
      Matrix& ga = t.grad_buf(a);
      const ElementwiseFunction* f = n.fn;
      const int next = n.order + 1;
      const double* ap = av.data();
      const double* gp = g.data();
      double* o = ga.data();
      t.parallel_range(g.size(), Tape::kElemGrain,
                       [&](std::size_t b, std::size_t e) {
                         for (std::size_t i = b; i < e; ++i)
                           o[i] += gp[i] * f->eval(ap[i], next);
                       });
      break;
    }
    case Op::kActivation:
      // d f(z) / dz = f'(z), precomputed by the sweep.
      prod_grad(t, n.in[0], g, n.aux[0]);
      break;
    case Op::kActChain: {
      // value = f'(z) ⊙ zk.
      const TapeNode& act = t.node(n.ref);
      const VarId z = n.in[0], zk = n.in[1];
      const Matrix& zkv = t.value(zk);
      if (t.requires_grad(z)) {
        Matrix& gz = t.grad_buf(z);
        const double* s2p = act.aux[1].data();
        const double* zkp = zkv.data();
        const double* gp = g.data();
        double* o = gz.data();
        t.parallel_range(g.size(), Tape::kElemGrain,
                         [&](std::size_t b, std::size_t e) {
                           for (std::size_t i = b; i < e; ++i)
                             o[i] += gp[i] * s2p[i] * zkp[i];
                         });
      }
      prod_grad(t, zk, g, act.aux[0]);
      break;
    }
    case Op::kActCurve: {
      // value = f''(z) ⊙ zk² + f'(z) ⊙ hzk.
      const TapeNode& act = t.node(n.ref);
      const VarId z = n.in[0], zk = n.in[1], hzk = n.in[2];
      const Matrix& zkv = t.value(zk);
      const Matrix& hzkv = t.value(hzk);
      const double* gp = g.data();
      if (t.requires_grad(z)) {
        Matrix& gz = t.grad_buf(z);
        const double* s2p = act.aux[1].data();
        const double* s3p = act.aux[2].data();
        const double* zkp = zkv.data();
        const double* hp = hzkv.data();
        double* o = gz.data();
        t.parallel_range(
            g.size(), Tape::kElemGrain, [&](std::size_t b, std::size_t e) {
              for (std::size_t i = b; i < e; ++i)
                o[i] += gp[i] * (s3p[i] * zkp[i] * zkp[i] + s2p[i] * hp[i]);
            });
      }
      if (t.requires_grad(zk)) {
        Matrix& gzk = t.grad_buf(zk);
        const double* s2p = act.aux[1].data();
        const double* zkp = zkv.data();
        double* o = gzk.data();
        t.parallel_range(g.size(), Tape::kElemGrain,
                         [&](std::size_t b, std::size_t e) {
                           for (std::size_t i = b; i < e; ++i)
                             o[i] += 2.0 * gp[i] * s2p[i] * zkp[i];
                         });
      }
      prod_grad(t, hzk, g, act.aux[0]);
      break;
    }
    case Op::kSquare: {
      const VarId a = n.in[0];
      if (!t.requires_grad(a)) break;
      const Matrix& av = t.value(a);
      Matrix& ga = t.grad_buf(a);
      const double* ap = av.data();
      const double* gp = g.data();
      double* o = ga.data();
      t.parallel_range(g.size(), Tape::kElemGrain,
                       [&](std::size_t b, std::size_t e) {
                         for (std::size_t i = b; i < e; ++i)
                           o[i] += 2.0 * gp[i] * ap[i];
                       });
      break;
    }
    case Op::kCol: {
      const VarId a = n.in[0];
      if (!t.requires_grad(a)) break;
      Matrix& ga = t.grad_buf(a);
      const std::size_t j = n.index;
      for (std::size_t r = 0; r < g.rows(); ++r) ga(r, j) += g(r, 0);
      break;
    }
    case Op::kMeanAll:
    case Op::kSumAll: {
      const VarId a = n.in[0];
      if (!t.requires_grad(a)) break;
      Matrix& ga = t.grad_buf(a);
      const double gv = g(0, 0) * n.scalar;
      double* o = ga.data();
      t.parallel_range(ga.size(), Tape::kElemGrain,
                       [&](std::size_t b, std::size_t e) {
                         for (std::size_t i = b; i < e; ++i) o[i] += gv;
                       });
      break;
    }
    case Op::kWeightedMean: {
      const VarId a = n.in[0];
      if (!t.requires_grad(a)) break;
      Matrix& ga = t.grad_buf(a);
      const double gv = g(0, 0) * n.scalar;
      const double* wp = n.aux[0].data();
      double* o = ga.data();
      t.parallel_range(ga.size(), Tape::kElemGrain,
                       [&](std::size_t b, std::size_t e) {
                         for (std::size_t i = b; i < e; ++i)
                           o[i] += gv * wp[i];
                       });
      break;
    }
    case Op::kHcat: {
      const VarId a = n.in[0], b = n.in[1];
      const std::size_t ac = n.index;
      if (t.requires_grad(a)) {
        Matrix& ga = t.grad_buf(a);
        t.parallel_range(g.rows(), Tape::kRowGrain,
                         [&](std::size_t rb, std::size_t re) {
                           for (std::size_t r = rb; r < re; ++r)
                             for (std::size_t c = 0; c < ac; ++c)
                               ga(r, c) += g(r, c);
                         });
      }
      if (t.requires_grad(b)) {
        Matrix& gb = t.grad_buf(b);
        const std::size_t bc = g.cols() - ac;
        t.parallel_range(g.rows(), Tape::kRowGrain,
                         [&](std::size_t rb, std::size_t re) {
                           for (std::size_t r = rb; r < re; ++r)
                             for (std::size_t c = 0; c < bc; ++c)
                               gb(r, c) += g(r, ac + c);
                         });
      }
      break;
    }
  }
}

}  // namespace detail

}  // namespace sgm::tensor
