#include "tensor/ops.hpp"

#include <stdexcept>

namespace sgm::tensor {

namespace {
void check_same_shape(const Tape& t, VarId a, VarId b, const char* op) {
  if (!t.value(a).same_shape(t.value(b)))
    throw std::invalid_argument(std::string(op) + ": shape mismatch");
}
}  // namespace

VarId add(Tape& t, VarId a, VarId b) {
  check_same_shape(t, a, b, "add");
  Matrix v = t.value(a) + t.value(b);
  return t.emit(std::move(v), {a, b}, [a, b](Tape& tt, VarId self) {
    tt.accumulate_grad(a, tt.grad(self));
    tt.accumulate_grad(b, tt.grad(self));
  });
}

VarId sub(Tape& t, VarId a, VarId b) {
  check_same_shape(t, a, b, "sub");
  Matrix v = t.value(a) - t.value(b);
  return t.emit(std::move(v), {a, b}, [a, b](Tape& tt, VarId self) {
    tt.accumulate_grad(a, tt.grad(self));
    Matrix g = tt.grad(self);
    g.scale(-1.0);
    tt.accumulate_grad(b, g);
  });
}

VarId mul(Tape& t, VarId a, VarId b) {
  check_same_shape(t, a, b, "mul");
  Matrix v = hadamard(t.value(a), t.value(b));
  return t.emit(std::move(v), {a, b}, [a, b](Tape& tt, VarId self) {
    tt.accumulate_grad(a, hadamard(tt.grad(self), tt.value(b)));
    tt.accumulate_grad(b, hadamard(tt.grad(self), tt.value(a)));
  });
}

VarId scale(Tape& t, VarId a, double s) {
  Matrix v = t.value(a);
  v.scale(s);
  return t.emit(std::move(v), {a}, [a, s](Tape& tt, VarId self) {
    Matrix g = tt.grad(self);
    g.scale(s);
    tt.accumulate_grad(a, g);
  });
}

VarId add_scalar(Tape& t, VarId a, double s) {
  Matrix v = t.value(a);
  for (std::size_t i = 0; i < v.size(); ++i) v.data()[i] += s;
  return t.emit(std::move(v), {a}, [a](Tape& tt, VarId self) {
    tt.accumulate_grad(a, tt.grad(self));
  });
}

VarId matmul(Tape& t, VarId a, VarId b) {
  Matrix v = sgm::tensor::matmul(t.value(a), t.value(b));
  return t.emit(std::move(v), {a, b}, [a, b](Tape& tt, VarId self) {
    const Matrix& g = tt.grad(self);
    if (tt.requires_grad(a)) tt.accumulate_grad(a, matmul_nt(g, tt.value(b)));
    if (tt.requires_grad(b)) tt.accumulate_grad(b, matmul_tn(tt.value(a), g));
  });
}

VarId add_rowvec(Tape& t, VarId x, VarId b) {
  const Matrix& xv = t.value(x);
  const Matrix& bv = t.value(b);
  if (bv.rows() != 1 || bv.cols() != xv.cols())
    throw std::invalid_argument("add_rowvec: b must be 1 x cols(x)");
  Matrix v = xv;
  for (std::size_t r = 0; r < v.rows(); ++r) {
    double* row = v.row(r);
    for (std::size_t c = 0; c < v.cols(); ++c) row[c] += bv(0, c);
  }
  return t.emit(std::move(v), {x, b}, [x, b](Tape& tt, VarId self) {
    const Matrix& g = tt.grad(self);
    tt.accumulate_grad(x, g);
    if (tt.requires_grad(b)) {
      Matrix gb(1, g.cols());
      for (std::size_t r = 0; r < g.rows(); ++r)
        for (std::size_t c = 0; c < g.cols(); ++c) gb(0, c) += g(r, c);
      tt.accumulate_grad(b, gb);
    }
  });
}

VarId apply(Tape& t, VarId a, const ElementwiseFunction& f, int order) {
  const Matrix& av = t.value(a);
  Matrix v(av.rows(), av.cols());
  for (std::size_t i = 0; i < av.size(); ++i)
    v.data()[i] = f.eval(av.data()[i], order);
  const ElementwiseFunction* fp = &f;
  return t.emit(std::move(v), {a}, [a, fp, order](Tape& tt, VarId self) {
    const Matrix& g = tt.grad(self);
    const Matrix& av2 = tt.value(a);
    Matrix ga(av2.rows(), av2.cols());
    for (std::size_t i = 0; i < av2.size(); ++i)
      ga.data()[i] = g.data()[i] * fp->eval(av2.data()[i], order + 1);
    tt.accumulate_grad(a, ga);
  });
}

VarId square(Tape& t, VarId a) {
  const Matrix& av = t.value(a);
  Matrix v(av.rows(), av.cols());
  for (std::size_t i = 0; i < av.size(); ++i)
    v.data()[i] = av.data()[i] * av.data()[i];
  return t.emit(std::move(v), {a}, [a](Tape& tt, VarId self) {
    const Matrix& g = tt.grad(self);
    const Matrix& av2 = tt.value(a);
    Matrix ga(av2.rows(), av2.cols());
    for (std::size_t i = 0; i < av2.size(); ++i)
      ga.data()[i] = 2.0 * g.data()[i] * av2.data()[i];
    tt.accumulate_grad(a, ga);
  });
}

VarId col(Tape& t, VarId a, std::size_t j) {
  const Matrix& av = t.value(a);
  if (j >= av.cols()) throw std::out_of_range("col: column out of range");
  Matrix v(av.rows(), 1);
  for (std::size_t r = 0; r < av.rows(); ++r) v(r, 0) = av(r, j);
  return t.emit(std::move(v), {a}, [a, j](Tape& tt, VarId self) {
    const Matrix& g = tt.grad(self);
    const Matrix& av2 = tt.value(a);
    Matrix ga(av2.rows(), av2.cols());
    for (std::size_t r = 0; r < av2.rows(); ++r) ga(r, j) = g(r, 0);
    tt.accumulate_grad(a, ga);
  });
}

VarId mean_all(Tape& t, VarId a) {
  const Matrix& av = t.value(a);
  if (av.size() == 0) throw std::invalid_argument("mean_all: empty matrix");
  Matrix v(1, 1, av.sum() / static_cast<double>(av.size()));
  const double inv_n = 1.0 / static_cast<double>(av.size());
  return t.emit(std::move(v), {a}, [a, inv_n](Tape& tt, VarId self) {
    const double g = tt.grad(self)(0, 0) * inv_n;
    const Matrix& av2 = tt.value(a);
    Matrix ga(av2.rows(), av2.cols(), g);
    tt.accumulate_grad(a, ga);
  });
}

VarId sum_all(Tape& t, VarId a) {
  const Matrix& av = t.value(a);
  Matrix v(1, 1, av.sum());
  return t.emit(std::move(v), {a}, [a](Tape& tt, VarId self) {
    const double g = tt.grad(self)(0, 0);
    const Matrix& av2 = tt.value(a);
    Matrix ga(av2.rows(), av2.cols(), g);
    tt.accumulate_grad(a, ga);
  });
}

VarId weighted_mean(Tape& t, VarId a, const Matrix& weights) {
  const Matrix& av = t.value(a);
  if (!av.same_shape(weights))
    throw std::invalid_argument("weighted_mean: shape mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < av.size(); ++i)
    s += av.data()[i] * weights.data()[i];
  const double inv_n = 1.0 / static_cast<double>(av.size());
  Matrix v(1, 1, s * inv_n);
  Matrix w = weights;  // copy captured by the closure
  return t.emit(std::move(v), {a},
                [a, w = std::move(w), inv_n](Tape& tt, VarId self) {
                  const double g = tt.grad(self)(0, 0) * inv_n;
                  Matrix ga = w;
                  ga.scale(g);
                  tt.accumulate_grad(a, ga);
                });
}

VarId hcat(Tape& t, VarId a, VarId b) {
  const Matrix& av = t.value(a);
  const Matrix& bv = t.value(b);
  if (av.rows() != bv.rows())
    throw std::invalid_argument("hcat: row count mismatch");
  Matrix v(av.rows(), av.cols() + bv.cols());
  for (std::size_t r = 0; r < av.rows(); ++r) {
    for (std::size_t c = 0; c < av.cols(); ++c) v(r, c) = av(r, c);
    for (std::size_t c = 0; c < bv.cols(); ++c) v(r, av.cols() + c) = bv(r, c);
  }
  const std::size_t ac = av.cols(), bc = bv.cols();
  return t.emit(std::move(v), {a, b}, [a, b, ac, bc](Tape& tt, VarId self) {
    const Matrix& g = tt.grad(self);
    if (tt.requires_grad(a)) {
      Matrix ga(g.rows(), ac);
      for (std::size_t r = 0; r < g.rows(); ++r)
        for (std::size_t c = 0; c < ac; ++c) ga(r, c) = g(r, c);
      tt.accumulate_grad(a, ga);
    }
    if (tt.requires_grad(b)) {
      Matrix gb(g.rows(), bc);
      for (std::size_t r = 0; r < g.rows(); ++r)
        for (std::size_t c = 0; c < bc; ++c) gb(r, c) = g(r, ac + c);
      tt.accumulate_grad(b, gb);
    }
  });
}

}  // namespace sgm::tensor
