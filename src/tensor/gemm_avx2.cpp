// AVX2+FMA build of the GEMM micro-kernels (see gemm_dispatch.hpp). CMake
// compiles this file with -mavx2 -mfma and defines SGM_GEMM_AVX2_BUILD on
// x86-64 gcc/clang; elsewhere the stubs at the bottom keep the link
// satisfied and the dispatcher never selects them.
//
// The kernels are written with intrinsics because the generic loop nest in
// gemm_kernels.inl defeats GCC's SLP vectorizer (scalar FMAs only). The
// 4 x 8 accumulator tile is 8 ymm registers; every output element is one
// ymm lane accumulated in strictly ascending p order, and tiles are
// anchored at absolute row multiples of 4 (the row-chunk grain is a
// multiple of the tile height), so results are bitwise identical however
// the row range is split across threads.
//
// The scalar edge loops accumulate with std::fma (one vfmadd*sd here, since
// this TU is compiled with -mfma) so that every element rounds exactly like
// the fused vector tiles: an element's value must not depend on whether its
// row landed in a full tile or an edge. A 1-row matrix is all edge; the same
// row inside a 33-row batch is tiled — the serving engine's batched == single
// equivalence tests (tests/test_serve.cpp) pin that both agree bitwise.

#include "tensor/gemm_dispatch.hpp"

namespace sgm::tensor {
bool gemm_avx2_compiled() {
#ifdef SGM_GEMM_AVX2_BUILD
  return true;
#else
  return false;
#endif
}
}  // namespace sgm::tensor

#ifdef SGM_GEMM_AVX2_BUILD

#include <immintrin.h>

#include <cmath>

namespace sgm::tensor::gemm_avx2 {

namespace {

constexpr std::size_t kMR = 4;
constexpr std::size_t kNR = 8;

inline void store_vec(double* crow, __m256d lo, __m256d hi, bool accumulate) {
  if (accumulate) {
    lo = _mm256_add_pd(_mm256_loadu_pd(crow), lo);
    hi = _mm256_add_pd(_mm256_loadu_pd(crow + 4), hi);
  }
  _mm256_storeu_pd(crow, lo);
  _mm256_storeu_pd(crow + 4, hi);
}

inline void store_scalar(double* c, double s, bool accumulate) {
  if (accumulate)
    *c += s;
  else
    *c = s;
}

}  // namespace

void gemm_nn_range(const Matrix& a, const Matrix& b, Matrix& c,
                   std::size_t r0, std::size_t r1, bool accumulate) {
  const std::size_t k = a.cols(), n = b.cols();
  std::size_t i = r0;
  for (; i + kMR <= r1; i += kMR) {
    const double* a0 = a.row(i);
    const double* a1 = a.row(i + 1);
    const double* a2 = a.row(i + 2);
    const double* a3 = a.row(i + 3);
    std::size_t j = 0;
    for (; j + kNR <= n; j += kNR) {
      __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
      __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
      __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
      __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
      for (std::size_t p = 0; p < k; ++p) {
        const double* brow = b.row(p) + j;
        const __m256d b0 = _mm256_loadu_pd(brow);
        const __m256d b1 = _mm256_loadu_pd(brow + 4);
        __m256d av = _mm256_set1_pd(a0[p]);
        c00 = _mm256_fmadd_pd(av, b0, c00);
        c01 = _mm256_fmadd_pd(av, b1, c01);
        av = _mm256_set1_pd(a1[p]);
        c10 = _mm256_fmadd_pd(av, b0, c10);
        c11 = _mm256_fmadd_pd(av, b1, c11);
        av = _mm256_set1_pd(a2[p]);
        c20 = _mm256_fmadd_pd(av, b0, c20);
        c21 = _mm256_fmadd_pd(av, b1, c21);
        av = _mm256_set1_pd(a3[p]);
        c30 = _mm256_fmadd_pd(av, b0, c30);
        c31 = _mm256_fmadd_pd(av, b1, c31);
      }
      store_vec(c.row(i) + j, c00, c01, accumulate);
      store_vec(c.row(i + 1) + j, c10, c11, accumulate);
      store_vec(c.row(i + 2) + j, c20, c21, accumulate);
      store_vec(c.row(i + 3) + j, c30, c31, accumulate);
    }
    for (; j < n; ++j) {  // column edge, p-ascending fused per element
      const double* ar[kMR] = {a0, a1, a2, a3};
      for (std::size_t ii = 0; ii < kMR; ++ii) {
        double s = 0.0;
        for (std::size_t p = 0; p < k; ++p)
          s = std::fma(ar[ii][p], b.row(p)[j], s);
        store_scalar(&c(i + ii, j), s, accumulate);
      }
    }
  }
  for (; i < r1; ++i) {  // row edge
    const double* arow = a.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        s = std::fma(arow[p], b.row(p)[j], s);
      store_scalar(&c(i, j), s, accumulate);
    }
  }
}

void gemm_tn_range(const Matrix& a, const Matrix& b, Matrix& c,
                   std::size_t r0, std::size_t r1, bool accumulate) {
  const std::size_t k = a.rows(), n = b.cols();
  std::size_t i = r0;
  for (; i + kMR <= r1; i += kMR) {
    std::size_t j = 0;
    for (; j + kNR <= n; j += kNR) {
      __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
      __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
      __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
      __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
      for (std::size_t p = 0; p < k; ++p) {
        const double* arow = a.row(p) + i;
        const double* brow = b.row(p) + j;
        const __m256d b0 = _mm256_loadu_pd(brow);
        const __m256d b1 = _mm256_loadu_pd(brow + 4);
        __m256d av = _mm256_set1_pd(arow[0]);
        c00 = _mm256_fmadd_pd(av, b0, c00);
        c01 = _mm256_fmadd_pd(av, b1, c01);
        av = _mm256_set1_pd(arow[1]);
        c10 = _mm256_fmadd_pd(av, b0, c10);
        c11 = _mm256_fmadd_pd(av, b1, c11);
        av = _mm256_set1_pd(arow[2]);
        c20 = _mm256_fmadd_pd(av, b0, c20);
        c21 = _mm256_fmadd_pd(av, b1, c21);
        av = _mm256_set1_pd(arow[3]);
        c30 = _mm256_fmadd_pd(av, b0, c30);
        c31 = _mm256_fmadd_pd(av, b1, c31);
      }
      store_vec(c.row(i) + j, c00, c01, accumulate);
      store_vec(c.row(i + 1) + j, c10, c11, accumulate);
      store_vec(c.row(i + 2) + j, c20, c21, accumulate);
      store_vec(c.row(i + 3) + j, c30, c31, accumulate);
    }
    for (; j < n; ++j) {
      for (std::size_t ii = 0; ii < kMR; ++ii) {
        double s = 0.0;
        for (std::size_t p = 0; p < k; ++p)
          s = std::fma(a.row(p)[i + ii], b.row(p)[j], s);
        store_scalar(&c(i + ii, j), s, accumulate);
      }
    }
  }
  for (; i < r1; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        s = std::fma(a.row(p)[i], b.row(p)[j], s);
      store_scalar(&c(i, j), s, accumulate);
    }
  }
}

void gemm_nt_range(const Matrix& a, const Matrix& b, Matrix& c,
                   std::size_t r0, std::size_t r1, bool accumulate) {
  // The NT shape (strided B access in the reduction) does not vectorize
  // profitably; the hot backward path avoids it entirely by transposing the
  // right operand once (pooled scratch) and calling the NN kernel. The
  // generic build serves the remaining cold callers.
  gemm_generic::gemm_nt_range(a, b, c, r0, r1, accumulate);
}

}  // namespace sgm::tensor::gemm_avx2

#else

namespace sgm::tensor::gemm_avx2 {

void gemm_nn_range(const Matrix& a, const Matrix& b, Matrix& c,
                   std::size_t r0, std::size_t r1, bool accumulate) {
  gemm_generic::gemm_nn_range(a, b, c, r0, r1, accumulate);
}

void gemm_tn_range(const Matrix& a, const Matrix& b, Matrix& c,
                   std::size_t r0, std::size_t r1, bool accumulate) {
  gemm_generic::gemm_tn_range(a, b, c, r0, r1, accumulate);
}

void gemm_nt_range(const Matrix& a, const Matrix& b, Matrix& c,
                   std::size_t r0, std::size_t r1, bool accumulate) {
  gemm_generic::gemm_nt_range(a, b, c, r0, r1, accumulate);
}

}  // namespace sgm::tensor::gemm_avx2

#endif
