// Register-blocked GEMM micro-kernels, included into one translation unit
// per instruction-set build (see matrix.cpp for the generic build and
// gemm_avx2.cpp for the -mavx2 -mfma build; runtime dispatch picks one).
// The includer defines SGM_GEMM_NS to a unique namespace name.
//
// Determinism contract: every element c(i, j) accumulates its products in
// strictly ascending reduction order in every path (full tiles and edges),
// so results are bitwise independent of the tiling and of how callers split
// the row range across threads. Within ONE process a single kernel build is
// selected once, so thread count never changes which code runs.
//
// Ascending order alone is not enough: each accumulation step must also
// ROUND identically in every path, so the kernel translation units are
// compiled with -ffp-contract=off (see CMakeLists.txt). Otherwise the
// compiler fuses mul+add into FMA in the vectorized tile loops but not in
// the scalar edge loops, and a row's result changes with its position in
// the tiling — which the serving engine's batched-vs-single equivalence
// tests (tests/test_serve.cpp) would catch.
//
// Tile shape: kMR x kNR accumulators held in registers while the reduction
// dimension streams through. 4 x 8 doubles = 8 ymm registers under AVX2
// (plus operands) — sized for the 16-register x86-64 vector file.

namespace sgm::tensor {
namespace SGM_GEMM_NS {

constexpr std::size_t kMR = 4;
constexpr std::size_t kNR = 8;

template <bool Accumulate>
inline void store_tile(double* crow, const double* acc, std::size_t nr) {
  for (std::size_t j = 0; j < nr; ++j) {
    if constexpr (Accumulate)
      crow[j] += acc[j];
    else
      crow[j] = acc[j];
  }
}

// C rows [r0, r1) of C = A * B.
template <bool Accumulate>
void gemm_nn_impl(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
                  std::size_t r1) {
  const std::size_t k = a.cols(), n = b.cols();
  std::size_t i = r0;
  for (; i + kMR <= r1; i += kMR) {
    const double* ar[kMR];
    for (std::size_t ii = 0; ii < kMR; ++ii) ar[ii] = a.row(i + ii);
    std::size_t j = 0;
    for (; j + kNR <= n; j += kNR) {
      double acc[kMR][kNR] = {};
      for (std::size_t p = 0; p < k; ++p) {
        const double* brow = b.row(p) + j;
        for (std::size_t ii = 0; ii < kMR; ++ii) {
          const double av = ar[ii][p];
          for (std::size_t jj = 0; jj < kNR; ++jj)
            acc[ii][jj] += av * brow[jj];
        }
      }
      for (std::size_t ii = 0; ii < kMR; ++ii)
        store_tile<Accumulate>(c.row(i + ii) + j, acc[ii], kNR);
    }
    if (j < n) {  // column edge: same p-ascending accumulation order
      const std::size_t nr = n - j;
      double acc[kMR][kNR] = {};
      for (std::size_t p = 0; p < k; ++p) {
        const double* brow = b.row(p) + j;
        for (std::size_t ii = 0; ii < kMR; ++ii) {
          const double av = ar[ii][p];
          for (std::size_t jj = 0; jj < nr; ++jj) acc[ii][jj] += av * brow[jj];
        }
      }
      for (std::size_t ii = 0; ii < kMR; ++ii)
        store_tile<Accumulate>(c.row(i + ii) + j, acc[ii], nr);
    }
  }
  for (; i < r1; ++i) {  // row edge
    const double* arow = a.row(i);
    double* crow = c.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * b.row(p)[j];
      if constexpr (Accumulate)
        crow[j] += s;
      else
        crow[j] = s;
    }
  }
}

// C rows [r0, r1) of C = A^T * B: C(i, j) = sum_p A(p, i) * B(p, j); both
// operands stream row-contiguously through the p loop.
template <bool Accumulate>
void gemm_tn_impl(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
                  std::size_t r1) {
  const std::size_t k = a.rows(), n = b.cols();
  std::size_t i = r0;
  for (; i + kMR <= r1; i += kMR) {
    std::size_t j = 0;
    for (; j + kNR <= n; j += kNR) {
      double acc[kMR][kNR] = {};
      for (std::size_t p = 0; p < k; ++p) {
        const double* arow = a.row(p) + i;
        const double* brow = b.row(p) + j;
        for (std::size_t ii = 0; ii < kMR; ++ii) {
          const double av = arow[ii];
          for (std::size_t jj = 0; jj < kNR; ++jj)
            acc[ii][jj] += av * brow[jj];
        }
      }
      for (std::size_t ii = 0; ii < kMR; ++ii)
        store_tile<Accumulate>(c.row(i + ii) + j, acc[ii], kNR);
    }
    if (j < n) {
      const std::size_t nr = n - j;
      double acc[kMR][kNR] = {};
      for (std::size_t p = 0; p < k; ++p) {
        const double* arow = a.row(p) + i;
        const double* brow = b.row(p) + j;
        for (std::size_t ii = 0; ii < kMR; ++ii) {
          const double av = arow[ii];
          for (std::size_t jj = 0; jj < nr; ++jj) acc[ii][jj] += av * brow[jj];
        }
      }
      for (std::size_t ii = 0; ii < kMR; ++ii)
        store_tile<Accumulate>(c.row(i + ii) + j, acc[ii], nr);
    }
  }
  for (; i < r1; ++i) {
    double* crow = c.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += a.row(p)[i] * b.row(p)[j];
      if constexpr (Accumulate)
        crow[j] += s;
      else
        crow[j] = s;
    }
  }
}

// C rows [r0, r1) of C = A * B^T: kMR x kNR simultaneous dot products.
template <bool Accumulate>
void gemm_nt_impl(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
                  std::size_t r1) {
  const std::size_t k = a.cols(), n = b.rows();
  std::size_t i = r0;
  for (; i + kMR <= r1; i += kMR) {
    const double* ar[kMR];
    for (std::size_t ii = 0; ii < kMR; ++ii) ar[ii] = a.row(i + ii);
    std::size_t j = 0;
    for (; j + kNR <= n; j += kNR) {
      const double* br[kNR];
      for (std::size_t jj = 0; jj < kNR; ++jj) br[jj] = b.row(j + jj);
      double acc[kMR][kNR] = {};
      for (std::size_t p = 0; p < k; ++p) {
        for (std::size_t ii = 0; ii < kMR; ++ii) {
          const double av = ar[ii][p];
          for (std::size_t jj = 0; jj < kNR; ++jj)
            acc[ii][jj] += av * br[jj][p];
        }
      }
      for (std::size_t ii = 0; ii < kMR; ++ii)
        store_tile<Accumulate>(c.row(i + ii) + j, acc[ii], kNR);
    }
    for (; j < n; ++j) {
      const double* brow = b.row(j);
      for (std::size_t ii = 0; ii < kMR; ++ii) {
        double s = 0.0;
        for (std::size_t p = 0; p < k; ++p) s += ar[ii][p] * brow[p];
        if constexpr (Accumulate)
          c(i + ii, j) += s;
        else
          c(i + ii, j) = s;
      }
    }
  }
  for (; i < r1; ++i) {
    const double* arow = a.row(i);
    double* crow = c.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double* brow = b.row(j);
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      if constexpr (Accumulate)
        crow[j] += s;
      else
        crow[j] = s;
    }
  }
}

void gemm_nn_range(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
                   std::size_t r1, bool accumulate) {
  if (accumulate)
    gemm_nn_impl<true>(a, b, c, r0, r1);
  else
    gemm_nn_impl<false>(a, b, c, r0, r1);
}

void gemm_tn_range(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
                   std::size_t r1, bool accumulate) {
  if (accumulate)
    gemm_tn_impl<true>(a, b, c, r0, r1);
  else
    gemm_tn_impl<false>(a, b, c, r0, r1);
}

void gemm_nt_range(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
                   std::size_t r1, bool accumulate) {
  if (accumulate)
    gemm_nt_impl<true>(a, b, c, r0, r1);
  else
    gemm_nt_impl<false>(a, b, c, r0, r1);
}

}  // namespace SGM_GEMM_NS
}  // namespace sgm::tensor
