#pragma once
// Differentiable ops recorded on the Tape. Each function validates shapes
// at record time (so shape bugs surface at the call site rather than inside
// backward()), emits an enum-dispatched node and computes the primal value
// into the node's pooled buffer. The matching vector-Jacobian products live
// in detail::backward_node(), dispatched by Tape::backward().

#include "tensor/matrix.hpp"
#include "tensor/tape.hpp"

namespace sgm::tensor {

/// Elementwise scalar function with analytic derivatives up to order 3.
/// Implementations must be long-lived (the tape stores raw pointers to
/// them); activations in sgm::nn are stateless singletons, which satisfies
/// this.
class ElementwiseFunction {
 public:
  virtual ~ElementwiseFunction() = default;

  /// d^order f / dx^order at x.
  virtual double eval(double x, int order) const = 0;

  /// Fills out[k] = d^k f / dx^k for k = 0..max_order in one call, letting
  /// implementations share subexpressions (e.g. a single logistic() for the
  /// whole SiLU derivative ladder). The default just loops eval().
  virtual void eval_orders(double x, int max_order, double* out) const {
    for (int k = 0; k <= max_order; ++k) out[k] = eval(x, k);
  }
};

/// c = a + b (same shape).
VarId add(Tape& t, VarId a, VarId b);

/// c = a - b (same shape).
VarId sub(Tape& t, VarId a, VarId b);

/// c = a ⊙ b (elementwise, same shape).
VarId mul(Tape& t, VarId a, VarId b);

/// c = s * a (s is a compile-time constant w.r.t. differentiation).
VarId scale(Tape& t, VarId a, double s);

/// c = a + s (elementwise constant shift).
VarId add_scalar(Tape& t, VarId a, double s);

/// c = A * B (matrix product).
VarId matmul(Tape& t, VarId a, VarId b);

/// c = X + 1⊗b : adds row vector b (1 x d) to every row of X (n x d).
VarId add_rowvec(Tape& t, VarId x, VarId b);

/// Fused c = A * W + 1⊗b — one node and one pass over C instead of the
/// matmul + add_rowvec pair. W is (k x d), b is (1 x d).
VarId affine(Tape& t, VarId a, VarId w, VarId b);

/// c = f^(order)(a) applied elementwise. Backward uses f^(order+1).
/// `f` must outlive the tape.
VarId apply(Tape& t, VarId a, const ElementwiseFunction& f, int order = 0);

/// Fused activation sweep: value = f(z), with f', ..., f^(orders) recorded
/// as auxiliary buffers in the SAME single pass over z (one eval_orders call
/// per element). orders must be 1..3: backward of the value needs f'; the
/// act_chain / act_curve consumers additionally need f''/f''' (orders >= 2
/// and 3 respectively). Returns the value node.
VarId activation(Tape& t, VarId z, const ElementwiseFunction& f, int orders);

/// Fused first-derivative propagation: c = f'(z) ⊙ zk, where `act` is the
/// activation(t, z, f, orders>=2) node (f' and the f'' its backward needs
/// were precomputed by the sweep).
VarId act_chain(Tape& t, VarId act, VarId zk);

/// Fused Hessian-diagonal propagation: c = f''(z) ⊙ zk² + f'(z) ⊙ hzk,
/// with `act` an activation(t, z, f, orders=3) node.
VarId act_curve(Tape& t, VarId act, VarId zk, VarId hzk);

/// c = a ⊙ a.
VarId square(Tape& t, VarId a);

/// Column j of a as an (n x 1) matrix.
VarId col(Tape& t, VarId a, std::size_t j);

/// Scalar (1x1) mean of all entries.
VarId mean_all(Tape& t, VarId a);

/// Scalar (1x1) sum of all entries.
VarId sum_all(Tape& t, VarId a);

/// Scalar (1x1) weighted mean: sum_i w_i * a_i / n, with constant weights w
/// (same shape as a). Used for per-point loss weighting.
VarId weighted_mean(Tape& t, VarId a, const Matrix& weights);

/// Horizontal concatenation of (n x c1) and (n x c2) into (n x c1+c2).
VarId hcat(Tape& t, VarId a, VarId b);

namespace detail {
/// Op-enum dispatch of the vector-Jacobian products; called by
/// Tape::backward() for every grad-bearing non-leaf node, in reverse
/// topological order. Accumulates into the inputs' grad_buf()s.
void backward_node(Tape& t, VarId id);
}  // namespace detail

}  // namespace sgm::tensor
