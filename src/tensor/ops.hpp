#pragma once
// Differentiable ops recorded on the Tape. Each function computes the primal
// value eagerly and registers a closure implementing its vector-Jacobian
// product. Shapes are validated at record time, so shape bugs surface at the
// call site rather than inside backward().

#include "tensor/matrix.hpp"
#include "tensor/tape.hpp"

namespace sgm::tensor {

/// Elementwise scalar function with analytic derivatives up to order 3.
/// `eval(x, k)` returns d^k f / dx^k at x. Implementations must be
/// long-lived (the tape stores raw pointers to them); activations in sgm::nn
/// are stateless singletons, which satisfies this.
class ElementwiseFunction {
 public:
  virtual ~ElementwiseFunction() = default;
  virtual double eval(double x, int order) const = 0;
};

/// c = a + b (same shape).
VarId add(Tape& t, VarId a, VarId b);

/// c = a - b (same shape).
VarId sub(Tape& t, VarId a, VarId b);

/// c = a ⊙ b (elementwise, same shape).
VarId mul(Tape& t, VarId a, VarId b);

/// c = s * a (s is a compile-time constant w.r.t. differentiation).
VarId scale(Tape& t, VarId a, double s);

/// c = a + s (elementwise constant shift).
VarId add_scalar(Tape& t, VarId a, double s);

/// c = A * B (matrix product).
VarId matmul(Tape& t, VarId a, VarId b);

/// c = X + 1⊗b : adds row vector b (1 x d) to every row of X (n x d).
VarId add_rowvec(Tape& t, VarId x, VarId b);

/// c = f^(order)(a) applied elementwise. Backward uses f^(order+1).
/// `f` must outlive the tape.
VarId apply(Tape& t, VarId a, const ElementwiseFunction& f, int order = 0);

/// c = a ⊙ a.
VarId square(Tape& t, VarId a);

/// Column j of a as an (n x 1) matrix.
VarId col(Tape& t, VarId a, std::size_t j);

/// Scalar (1x1) mean of all entries.
VarId mean_all(Tape& t, VarId a);

/// Scalar (1x1) sum of all entries.
VarId sum_all(Tape& t, VarId a);

/// Scalar (1x1) weighted mean: sum_i w_i * a_i / n, with constant weights w
/// (same shape as a). Used for per-point loss weighting.
VarId weighted_mean(Tape& t, VarId a, const Matrix& weights);

/// Horizontal concatenation of (n x c1) and (n x c2) into (n x c1+c2).
VarId hcat(Tape& t, VarId a, VarId b);

}  // namespace sgm::tensor
