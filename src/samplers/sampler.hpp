#pragma once
// Mini-batch sampling strategies for PINN training.
//
// The trainer is sampler-agnostic: each iteration it asks the active
// Sampler for a batch of collocation-point indices, and once per iteration
// it offers the sampler a chance to refresh its importance state via a
// loss-evaluation callback. The callback computes current per-point losses
// (forward passes only) for the indices the sampler chooses — the sampler
// is charged for that work in its overhead accounting, which is exactly the
// cost trade-off the paper studies.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace sgm::samplers {

/// Computes the current training loss (e.g. PDE residual norm) at each of
/// the given dataset indices. Provided by the trainer.
using LossEvaluator =
    std::function<std::vector<double>(const std::vector<std::uint32_t>&)>;

/// Resumable position in a sampler's batch stream: the (possibly shuffled)
/// epoch permutation plus the deal cursor. Carried inside train checkpoints
/// so a resumed run replays the exact same batches as an uninterrupted one.
struct DealerState {
  std::vector<std::uint32_t> indices;
  std::uint64_t cursor = 0;
  bool shuffled = false;
};

class Sampler {
 public:
  virtual ~Sampler() = default;

  virtual std::string name() const = 0;

  /// Draws the next mini-batch of dataset indices.
  virtual std::vector<std::uint32_t> next_batch(std::size_t batch_size,
                                                util::Rng& rng) = 0;

  /// Hook called once per training iteration *before* next_batch; the
  /// sampler refreshes importance state on its own schedule.
  virtual void maybe_refresh(std::uint64_t iteration,
                             const LossEvaluator& evaluate, util::Rng& rng) {
    (void)iteration;
    (void)evaluate;
    (void)rng;
  }

  /// Total wall seconds this sampler has spent refreshing (loss updates,
  /// graph work, ...). Included in trainer wall time; reported separately
  /// by the overhead bench.
  double refresh_seconds() const { return refresh_seconds_; }

  /// Number of extra loss evaluations (forward passes) the sampler caused.
  std::uint64_t loss_evaluations() const { return loss_evaluations_; }

  /// Resumable batch-stream state for checkpoints/rollback snapshots.
  /// Samplers whose stream is fully determined by (state, rng) return their
  /// dealer position; the default (importance samplers that rebuild their
  /// tables on refresh) returns an empty state, and restore is a no-op.
  virtual DealerState resume_state() const { return {}; }
  virtual void set_resume_state(const DealerState& state) { (void)state; }

 protected:
  double refresh_seconds_ = 0.0;
  std::uint64_t loss_evaluations_ = 0;
};

/// Shared helper: shuffled-epoch dealing over an index universe. Batches are
/// consecutive slices of a permutation that is reshuffled when exhausted —
/// the classic "epoch" semantics the paper's epochs build on.
class EpochDealer {
 public:
  /// Deal from the fixed universe [0, n).
  explicit EpochDealer(std::uint32_t n);

  /// Deal from an explicit index multiset (the SGM epoch). Replaces any
  /// previous epoch and reshuffles.
  void set_epoch(std::vector<std::uint32_t> indices, util::Rng& rng);

  /// Next `batch_size` indices (wraps and reshuffles at the end).
  std::vector<std::uint32_t> next(std::size_t batch_size, util::Rng& rng);

  std::size_t epoch_size() const { return indices_.size(); }

  /// Snapshot / restore of the deal position (permutation + cursor), so a
  /// resumed trainer continues mid-epoch exactly where it stopped. Restore
  /// validates the cursor and rejects an empty permutation.
  DealerState state() const;
  void set_state(DealerState state);

 private:
  std::vector<std::uint32_t> indices_;
  std::size_t cursor_ = 0;
  bool shuffled_ = false;
};

/// Weighted sampling with replacement from a discrete distribution in O(1)
/// per draw after O(n) setup (Walker alias method). Used by MIS and SGM.
class AliasTable {
 public:
  /// Weights must be non-negative with a positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  std::uint32_t sample(util::Rng& rng) const;

  /// The normalized probability of index i (for tests / diagnostics).
  double probability(std::uint32_t i) const { return prob_norm_[i]; }

 private:
  std::vector<double> threshold_;
  std::vector<std::uint32_t> alias_;
  std::vector<double> prob_norm_;
};

}  // namespace sgm::samplers
