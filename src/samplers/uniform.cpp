#include "samplers/uniform.hpp"

// UniformSampler is header-only; this translation unit anchors the target.
