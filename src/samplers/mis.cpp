#include "samplers/mis.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sgm::samplers {

using tensor::Matrix;

MisSampler::MisSampler(const Matrix& points, const MisOptions& options)
    : points_(points), opt_(options) {}

std::vector<std::uint32_t> MisSampler::next_batch(std::size_t batch_size,
                                                  util::Rng& rng) {
  const std::uint32_t n = static_cast<std::uint32_t>(points_.rows());
  // Before the first refresh we have no loss information: uniform.
  auto draw = [&]() -> std::uint32_t {
    return table_ ? table_->sample(rng)
                  : static_cast<std::uint32_t>(rng.uniform_index(n));
  };

  std::vector<std::uint32_t> batch(batch_size);
  if (!opt_.exclusion_graph) {
    for (auto& b : batch) b = draw();
    return batch;
  }

  // PGM-independent batch: no candidate adjacent (in the exclusion graph)
  // to an already-selected point, and no duplicates. Rejection sampling
  // keeps the loss-proportional distribution; the deterministic wrap-around
  // scan only engages when the batch has nearly saturated the graph's
  // independence number.
  const graph::CsrGraph& g = *opt_.exclusion_graph;
  if (selected_stamp_.size() != n) selected_stamp_.assign(n, 0);
  const std::uint64_t stamp = ++batch_stamp_;
  auto conflicts = [&](std::uint32_t c) {
    if (selected_stamp_[c] == stamp) return true;
    for (const auto v : g.neighbors(c))
      if (selected_stamp_[v] == stamp) return true;
    return false;
  };
  for (auto& b : batch) {
    std::uint32_t c = 0;
    bool ok = false;
    for (int attempt = 0; attempt < 64 && !ok; ++attempt) {
      c = draw();
      ok = !conflicts(c);
    }
    if (!ok) {
      const auto start = static_cast<std::uint32_t>(rng.uniform_index(n));
      for (std::uint32_t off = 0; off < n && !ok; ++off) {
        c = (start + off) % n;
        ok = !conflicts(c);
      }
    }
    if (!ok)
      throw std::runtime_error(
          "MisSampler: exclusion graph admits no independent batch of size " +
          std::to_string(batch_size));
    selected_stamp_[c] = stamp;
    b = c;
  }
  return batch;
}

void MisSampler::maybe_refresh(std::uint64_t iteration,
                               const LossEvaluator& evaluate, util::Rng& rng) {
  if (ever_refreshed_ && iteration - last_refresh_ < opt_.refresh_every)
    return;
  if (!ever_refreshed_ && iteration == 0) {
    // Give the network a first refresh immediately — Modulus MIS also
    // scores the initial state.
  }
  util::WallTimer timer;
  const std::uint32_t n = static_cast<std::uint32_t>(points_.rows());
  std::vector<double> score(n, 0.0);

  if (opt_.num_seeds == 0 || opt_.num_seeds >= n) {
    std::vector<std::uint32_t> all(n);
    std::iota(all.begin(), all.end(), 0u);
    std::vector<double> loss = evaluate(all);
    loss_evaluations_ += n;
    for (std::uint32_t i = 0; i < n; ++i) score[i] = loss[i];
  } else {
    std::vector<std::uint32_t> seeds = rng.sample_without_replacement(
        n, static_cast<std::uint32_t>(opt_.num_seeds));
    std::vector<double> seed_loss = evaluate(seeds);
    loss_evaluations_ += seeds.size();
    // Piecewise assignment: each point inherits its nearest seed's loss.
    Matrix seed_pts(seeds.size(), points_.cols());
    for (std::size_t s = 0; s < seeds.size(); ++s)
      for (std::size_t c = 0; c < points_.cols(); ++c)
        seed_pts(s, c) = points_(seeds[s], c);
    graph::KdTree tree(seed_pts);
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto nn = tree.query(points_.row(i), 1);
      score[i] = seed_loss[nn.index.empty() ? 0 : nn.index[0]];
    }
  }

  rebuild_table(score);
  last_refresh_ = iteration;
  ever_refreshed_ = true;
  refresh_seconds_ += timer.elapsed_s();
}

void MisSampler::rebuild_table(const std::vector<double>& score) {
  const std::size_t n = score.size();
  std::vector<double> w(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = std::pow(std::max(score[i], 0.0), opt_.exponent);
    total += w[i];
  }
  if (total <= 0.0) {
    std::fill(w.begin(), w.end(), 1.0);
    total = static_cast<double>(n);
  }
  const double floor_mass = opt_.uniform_floor / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i)
    w[i] = (1.0 - opt_.uniform_floor) * (w[i] / total) + floor_mass;
  table_ = std::make_unique<AliasTable>(w);
}

double MisSampler::probability(std::uint32_t i) const {
  return table_ ? table_->probability(i)
                : 1.0 / static_cast<double>(points_.rows());
}

}  // namespace sgm::samplers
