#pragma once
// Loss-proportional importance sampling (Nabian, Gladstone & Meidani 2021)
// as shipped in Modulus — the paper's "MIS" comparison arm.
//
// Every `refresh_every` iterations the sampler re-evaluates losses and sets
// the sampling probability of each point proportional to (loss)^exponent
// (Eq. 7 of the paper). Two refresh modes:
//   * full      — evaluate every point (Modulus default; expensive, the
//                 overhead the paper criticizes);
//   * seeded    — evaluate `num_seeds` random seeds and assign each point
//                 the loss of its nearest seed, piecewise-constant (the
//                 cheaper scheme described in [18] and Section 3.4).

#include <memory>

#include "graph/csr.hpp"
#include "graph/knn.hpp"
#include "samplers/sampler.hpp"
#include "tensor/matrix.hpp"

namespace sgm::samplers {

struct MisOptions {
  std::uint64_t refresh_every = 7000;  ///< tau_e in the paper's experiments
  /// 0 = full refresh; otherwise the number of random seeds.
  std::size_t num_seeds = 0;
  /// P ∝ loss^exponent; 1 matches Eq. 7.
  double exponent = 1.0;
  /// Mixing floor: P = (1-floor)*P_loss + floor*uniform. Keeps every point
  /// reachable (Modulus uses a similar safeguard).
  double uniform_floor = 0.05;
  /// Optional batch de-correlation against the PGM: when set (must outlive
  /// the sampler and index the same point cloud), a batch never contains
  /// both endpoints of one of this graph's edges — near-duplicate
  /// collocation points carry almost the same gradient, so spending two
  /// batch slots on a kNN pair is wasted work. Draws are rejected while
  /// adjacent to an already-selected point (deterministic scan fallback);
  /// throws std::runtime_error if no independent point is left.
  const graph::CsrGraph* exclusion_graph = nullptr;
};

class MisSampler final : public Sampler {
 public:
  /// `points` must outlive the sampler (used for nearest-seed assignment).
  MisSampler(const tensor::Matrix& points, const MisOptions& options);

  std::string name() const override { return "mis"; }

  std::vector<std::uint32_t> next_batch(std::size_t batch_size,
                                        util::Rng& rng) override;

  void maybe_refresh(std::uint64_t iteration, const LossEvaluator& evaluate,
                     util::Rng& rng) override;

  /// Current normalized probability of a point (diagnostics/tests).
  double probability(std::uint32_t i) const;

 private:
  void rebuild_table(const std::vector<double>& score);

  const tensor::Matrix& points_;
  MisOptions opt_;
  std::unique_ptr<AliasTable> table_;
  std::uint64_t last_refresh_ = 0;
  bool ever_refreshed_ = false;
  /// Exclusion-path scratch: selected_stamp_[i] == batch_stamp_ marks i as
  /// taken by the batch being assembled (generation counter, so next_batch
  /// stays O(batch * degree) instead of clearing O(n) state per call).
  std::vector<std::uint64_t> selected_stamp_;
  std::uint64_t batch_stamp_ = 0;
};

}  // namespace sgm::samplers
