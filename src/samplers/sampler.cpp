#include "samplers/sampler.hpp"

#include <numeric>
#include <stdexcept>

namespace sgm::samplers {

EpochDealer::EpochDealer(std::uint32_t n) {
  indices_.resize(n);
  std::iota(indices_.begin(), indices_.end(), std::uint32_t{0});
}

void EpochDealer::set_epoch(std::vector<std::uint32_t> indices,
                            util::Rng& rng) {
  if (indices.empty())
    throw std::invalid_argument("EpochDealer: empty epoch");
  indices_ = std::move(indices);
  rng.shuffle(indices_);
  shuffled_ = true;
  cursor_ = 0;
}

std::vector<std::uint32_t> EpochDealer::next(std::size_t batch_size,
                                             util::Rng& rng) {
  if (indices_.empty())
    throw std::logic_error("EpochDealer: no indices to deal");
  if (!shuffled_) {
    rng.shuffle(indices_);
    shuffled_ = true;
  }
  std::vector<std::uint32_t> batch;
  batch.reserve(batch_size);
  while (batch.size() < batch_size) {
    if (cursor_ == indices_.size()) {
      rng.shuffle(indices_);
      cursor_ = 0;
    }
    batch.push_back(indices_[cursor_++]);
  }
  return batch;
}

DealerState EpochDealer::state() const {
  DealerState st;
  st.indices = indices_;
  st.cursor = cursor_;
  st.shuffled = shuffled_;
  return st;
}

void EpochDealer::set_state(DealerState state) {
  if (state.indices.empty())
    throw std::invalid_argument("EpochDealer: empty state");
  if (state.cursor > state.indices.size())
    throw std::invalid_argument("EpochDealer: cursor past the epoch end");
  indices_ = std::move(state.indices);
  cursor_ = static_cast<std::size_t>(state.cursor);
  shuffled_ = state.shuffled;
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasTable: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("AliasTable: zero total");

  prob_norm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) prob_norm_[i] = weights[i] / total;

  threshold_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = prob_norm_[i] * static_cast<double>(n);

  std::vector<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i)
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    threshold_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : large) threshold_[i] = 1.0;
  for (std::uint32_t i : small) threshold_[i] = 1.0;  // numerical leftovers
}

std::uint32_t AliasTable::sample(util::Rng& rng) const {
  const std::size_t n = threshold_.size();
  const std::uint32_t i =
      static_cast<std::uint32_t>(rng.uniform_index(n));
  return rng.uniform() < threshold_[i] ? i : alias_[i];
}

}  // namespace sgm::samplers
