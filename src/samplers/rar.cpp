#include "samplers/rar.hpp"

#include <algorithm>
#include <numeric>

namespace sgm::samplers {

RarSampler::RarSampler(std::uint32_t num_points, const RarOptions& options,
                       util::Rng& rng)
    : num_points_(num_points), opt_(options), in_active_(num_points, false) {
  // Floor of one active point: initial_points = 0 would leave next_batch
  // drawing from an empty set (uniform_index(0) throws).
  const std::uint32_t init = static_cast<std::uint32_t>(std::min<std::size_t>(
      std::max<std::size_t>(opt_.initial_points, num_points > 0 ? 1 : 0),
      num_points));
  active_ = rng.sample_without_replacement(num_points, init);
  for (std::uint32_t i : active_) in_active_[i] = true;
}

std::vector<std::uint32_t> RarSampler::next_batch(std::size_t batch_size,
                                                  util::Rng& rng) {
  if (active_.empty()) return {};  // only possible when num_points_ == 0
  std::vector<std::uint32_t> batch(batch_size);
  for (auto& b : batch)
    b = active_[rng.uniform_index(active_.size())];
  return batch;
}

void RarSampler::maybe_refresh(std::uint64_t iteration,
                               const LossEvaluator& evaluate, util::Rng& rng) {
  if (iteration - last_refresh_ < opt_.refresh_every || iteration == 0) return;
  if (active_.size() >= num_points_) return;
  util::WallTimer timer;

  // Score a random candidate pool of distinct not-yet-active points.
  std::vector<std::uint32_t> pool;
  pool.reserve(opt_.candidate_pool);
  std::vector<bool> pooled(num_points_, false);
  const std::size_t tries = opt_.candidate_pool * 3;
  for (std::size_t t = 0; t < tries && pool.size() < opt_.candidate_pool; ++t) {
    const auto i = static_cast<std::uint32_t>(rng.uniform_index(num_points_));
    if (!in_active_[i] && !pooled[i]) {
      pooled[i] = true;
      pool.push_back(i);
    }
  }
  if (pool.empty()) {
    last_refresh_ = iteration;
    return;
  }
  std::vector<double> loss = evaluate(pool);
  loss_evaluations_ += pool.size();

  const std::size_t add = std::min(opt_.added_per_refresh, pool.size());
  std::vector<std::size_t> order(pool.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::partial_sort(order.begin(), order.begin() + add, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      return loss[a] > loss[b];
                    });
  for (std::size_t t = 0; t < add; ++t) {
    const std::uint32_t idx = pool[order[t]];
    if (!in_active_[idx]) {
      in_active_[idx] = true;
      active_.push_back(idx);
    }
  }
  last_refresh_ = iteration;
  refresh_seconds_ += timer.elapsed_s();
}

}  // namespace sgm::samplers
