#pragma once
// Uniform random sampling — the paper's baseline (U500 / U4000 / U1024 /
// U4096 arms). Shuffled-epoch semantics over the full dataset.

#include "samplers/sampler.hpp"

namespace sgm::samplers {

class UniformSampler final : public Sampler {
 public:
  explicit UniformSampler(std::uint32_t num_points)
      : dealer_(num_points) {}

  std::string name() const override { return "uniform"; }

  std::vector<std::uint32_t> next_batch(std::size_t batch_size,
                                        util::Rng& rng) override {
    return dealer_.next(batch_size, rng);
  }

  // The batch stream is pure (dealer state, rng): exposing the dealer makes
  // checkpoint resume byte-identical even mid-epoch.
  DealerState resume_state() const override { return dealer_.state(); }
  void set_resume_state(const DealerState& state) override {
    dealer_.set_state(state);
  }

 private:
  EpochDealer dealer_;
};

}  // namespace sgm::samplers
