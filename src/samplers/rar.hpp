#pragma once
// Residual-based adaptive refinement (RAR, Lu et al., DeepXDE) — the other
// prior-art strategy the paper's introduction discusses. The active
// training set starts small and grows by the highest-residual candidates
// every refresh; batches are drawn uniformly from the active set.

#include "samplers/sampler.hpp"

namespace sgm::samplers {

struct RarOptions {
  std::uint64_t refresh_every = 7000;
  std::size_t initial_points = 1024;   ///< active-set size at start
  std::size_t added_per_refresh = 256; ///< top-residual points added
  std::size_t candidate_pool = 4096;   ///< random candidates scored each time
};

class RarSampler final : public Sampler {
 public:
  RarSampler(std::uint32_t num_points, const RarOptions& options,
             util::Rng& rng);

  std::string name() const override { return "rar"; }

  std::vector<std::uint32_t> next_batch(std::size_t batch_size,
                                        util::Rng& rng) override;

  void maybe_refresh(std::uint64_t iteration, const LossEvaluator& evaluate,
                     util::Rng& rng) override;

  std::size_t active_size() const { return active_.size(); }

 private:
  std::uint32_t num_points_;
  RarOptions opt_;
  std::vector<std::uint32_t> active_;
  std::vector<bool> in_active_;
  std::uint64_t last_refresh_ = 0;
};

}  // namespace sgm::samplers
