#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace sgm::graph {

CsrGraph CsrGraph::from_edges(NodeId num_nodes, std::vector<Edge> edges) {
  CsrGraph g;
  g.num_nodes_ = num_nodes;

  // Normalize to u < v, drop self-loops, merge duplicates by summing weight.
  for (auto& e : edges) {
    SGM_CHECK_BOUNDS(e.u < num_nodes && e.v < num_nodes,
                     "CsrGraph: edge endpoint (", e.u, ", ", e.v,
                     ") out of range for ", num_nodes, " nodes");
    SGM_CHECK_ARG(e.w > 0.0, "CsrGraph: edge weights must be positive, got ",
                  e.w, " on (", e.u, ", ", e.v, ")");
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::erase_if(edges, [](const Edge& e) { return e.u == e.v; });
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  for (const auto& e : edges) {
    if (!g.edges_.empty() && g.edges_.back().u == e.u &&
        g.edges_.back().v == e.v) {
      g.edges_.back().w += e.w;
    } else {
      g.edges_.push_back(e);
    }
  }

  // CSR assembly (each unique edge appears in both endpoints' rows).
  g.offsets_.assign(num_nodes + 1, 0);
  for (const auto& e : g.edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (NodeId i = 0; i < num_nodes; ++i) g.offsets_[i + 1] += g.offsets_[i];
  g.nbr_.resize(g.offsets_[num_nodes]);
  g.inc_.resize(g.offsets_[num_nodes]);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId idx = 0; idx < g.edges_.size(); ++idx) {
    const Edge& e = g.edges_[idx];
    g.nbr_[cursor[e.u]] = e.v;
    g.inc_[cursor[e.u]++] = idx;
    g.nbr_[cursor[e.v]] = e.u;
    g.inc_[cursor[e.v]++] = idx;
  }

  g.wdeg_.assign(num_nodes, 0.0);
  for (const auto& e : g.edges_) {
    g.wdeg_[e.u] += e.w;
    g.wdeg_[e.v] += e.w;
  }
  SGM_AUDIT(g.audit());
  return g;
}

void CsrGraph::audit() const {
  audit_csr_arrays(num_nodes_, edges_, offsets_, nbr_, inc_, wdeg_);
}

void audit_csr_arrays(NodeId num_nodes, const std::vector<Edge>& edges,
                      const std::vector<std::size_t>& offsets,
                      const std::vector<NodeId>& nbr,
                      const std::vector<EdgeId>& inc,
                      const std::vector<double>& wdeg) {
  // Canonical edge list: u < v, strictly sorted (so unique), positive w.
  for (EdgeId i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    SGM_CHECK(e.u < e.v, "edge ", i, " not canonical: (", e.u, ", ", e.v, ")");
    SGM_CHECK(e.v < num_nodes, "edge ", i, " endpoint ", e.v,
              " out of range for ", num_nodes, " nodes");
    SGM_CHECK(e.w > 0.0, "edge ", i, " weight ", e.w, " not positive");
    if (i > 0) {
      const Edge& p = edges[i - 1];
      SGM_CHECK(p.u < e.u || (p.u == e.u && p.v < e.v),
                "edge list not strictly sorted at ", i);
    }
  }

  // CSR shape: monotone offsets covering exactly 2|E| adjacency slots.
  SGM_CHECK(offsets.size() == static_cast<std::size_t>(num_nodes) + 1,
            "offsets size ", offsets.size(), " != num_nodes + 1");
  SGM_CHECK(offsets.empty() || offsets.front() == 0, "offsets[0] != 0");
  for (NodeId u = 0; u < num_nodes; ++u)
    SGM_CHECK(offsets[u] <= offsets[u + 1], "offsets not monotone at ", u);
  SGM_CHECK(offsets[num_nodes] == 2 * edges.size(),
            "offsets[n] = ", offsets[num_nodes], " != 2|E| = ",
            2 * edges.size());
  SGM_CHECK(nbr.size() == 2 * edges.size(), "nbr size mismatch");
  SGM_CHECK(inc.size() == 2 * edges.size(), "inc size mismatch");

  // Adjacency consistency + symmetry: every slot of u's row references an
  // edge incident to u, the neighbor is the edge's other endpoint, and each
  // edge id appears exactly once per endpoint (hence exactly twice total).
  std::vector<int> seen(edges.size(), 0);
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (std::size_t s = offsets[u]; s < offsets[u + 1]; ++s) {
      const EdgeId id = inc[s];
      SGM_CHECK(id < edges.size(), "inc slot ", s, " edge id out of range");
      const Edge& e = edges[id];
      SGM_CHECK(e.u == u || e.v == u, "edge ", id, " in row ", u,
                " is not incident to it");
      const NodeId other = e.u == u ? e.v : e.u;
      SGM_CHECK(nbr[s] == other, "nbr slot ", s, " is ", nbr[s],
                " but edge ", id, " says ", other);
      ++seen[id];
    }
  }
  for (EdgeId i = 0; i < edges.size(); ++i)
    SGM_CHECK(seen[i] == 2, "edge ", i, " appears ", seen[i],
              " times in the adjacency (want 2: symmetry)");

  // Weighted degrees re-derivable from the edge list.
  SGM_CHECK(wdeg.size() == num_nodes, "wdeg size mismatch");
  std::vector<double> expect(num_nodes, 0.0);
  for (const Edge& e : edges) {
    expect[e.u] += e.w;
    expect[e.v] += e.w;
  }
  for (NodeId u = 0; u < num_nodes; ++u)
    SGM_CHECK(wdeg[u] == expect[u], "wdeg[", u, "] = ", wdeg[u],
              " != recomputed ", expect[u]);
}

double CsrGraph::average_degree() const {
  if (num_nodes_ == 0) return 0.0;
  return 2.0 * static_cast<double>(edges_.size()) /
         static_cast<double>(num_nodes_);
}

double CsrGraph::total_weight() const {
  double s = 0.0;
  for (const auto& e : edges_) s += e.w;
  return s;
}

std::pair<std::vector<NodeId>, NodeId> CsrGraph::connected_components() const {
  std::vector<NodeId> label(num_nodes_, num_nodes_);
  NodeId next = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < num_nodes_; ++s) {
    if (label[s] != num_nodes_) continue;
    label[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : neighbors(u)) {
        if (label[v] == num_nodes_) {
          label[v] = next;
          stack.push_back(v);
        }
      }
    }
    ++next;
  }
  return {std::move(label), next};
}

bool CsrGraph::is_connected() const {
  if (num_nodes_ <= 1) return true;
  return connected_components().second == 1;
}

}  // namespace sgm::graph
