#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>

namespace sgm::graph {

CsrGraph CsrGraph::from_edges(NodeId num_nodes, std::vector<Edge> edges) {
  CsrGraph g;
  g.num_nodes_ = num_nodes;

  // Normalize to u < v, drop self-loops, merge duplicates by summing weight.
  for (auto& e : edges) {
    if (e.u >= num_nodes || e.v >= num_nodes)
      throw std::out_of_range("CsrGraph: edge endpoint out of range");
    if (e.w <= 0.0)
      throw std::invalid_argument("CsrGraph: edge weights must be positive");
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::erase_if(edges, [](const Edge& e) { return e.u == e.v; });
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  for (const auto& e : edges) {
    if (!g.edges_.empty() && g.edges_.back().u == e.u &&
        g.edges_.back().v == e.v) {
      g.edges_.back().w += e.w;
    } else {
      g.edges_.push_back(e);
    }
  }

  // CSR assembly (each unique edge appears in both endpoints' rows).
  g.offsets_.assign(num_nodes + 1, 0);
  for (const auto& e : g.edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (NodeId i = 0; i < num_nodes; ++i) g.offsets_[i + 1] += g.offsets_[i];
  g.nbr_.resize(g.offsets_[num_nodes]);
  g.inc_.resize(g.offsets_[num_nodes]);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId idx = 0; idx < g.edges_.size(); ++idx) {
    const Edge& e = g.edges_[idx];
    g.nbr_[cursor[e.u]] = e.v;
    g.inc_[cursor[e.u]++] = idx;
    g.nbr_[cursor[e.v]] = e.u;
    g.inc_[cursor[e.v]++] = idx;
  }

  g.wdeg_.assign(num_nodes, 0.0);
  for (const auto& e : g.edges_) {
    g.wdeg_[e.u] += e.w;
    g.wdeg_[e.v] += e.w;
  }
  return g;
}

double CsrGraph::average_degree() const {
  if (num_nodes_ == 0) return 0.0;
  return 2.0 * static_cast<double>(edges_.size()) /
         static_cast<double>(num_nodes_);
}

double CsrGraph::total_weight() const {
  double s = 0.0;
  for (const auto& e : edges_) s += e.w;
  return s;
}

std::pair<std::vector<NodeId>, NodeId> CsrGraph::connected_components() const {
  std::vector<NodeId> label(num_nodes_, num_nodes_);
  NodeId next = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < num_nodes_; ++s) {
    if (label[s] != num_nodes_) continue;
    label[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : neighbors(u)) {
        if (label[v] == num_nodes_) {
          label[v] = next;
          stack.push_back(v);
        }
      }
    }
    ++next;
  }
  return {std::move(label), next};
}

bool CsrGraph::is_connected() const {
  if (num_nodes_ <= 1) return true;
  return connected_components().second == 1;
}

}  // namespace sgm::graph
