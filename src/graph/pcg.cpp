#include "graph/pcg.hpp"

#include <cmath>
#include <stdexcept>

namespace sgm::graph {

PcgResult pcg_solve(const std::function<void(const Vec&, Vec&)>& apply,
                    const Vec& diagonal, const Vec& b,
                    const PcgOptions& options, bool deflate, const Vec* x0) {
  const std::size_t n = b.size();
  if (x0 != nullptr && x0->size() != n)
    throw std::invalid_argument("pcg_solve: x0 size mismatch");
  PcgResult result;
  result.x.assign(n, 0.0);

  Vec r = b;
  if (deflate) deflate_constant(r);
  const double bnorm = norm2(r);
  if (bnorm == 0.0) {
    result.converged = true;
    return result;
  }

  Vec z(n), p(n), ap(n);
  if (x0 != nullptr) {
    // Warm start: x = x0, r = b - A x0. Convergence stays relative to ||b||,
    // so an already-converged x0 exits below with zero iterations.
    result.x = *x0;
    if (deflate) deflate_constant(result.x);
    apply(result.x, ap);
    if (deflate) deflate_constant(ap);
    for (std::size_t i = 0; i < n; ++i) r[i] -= ap[i];
    result.residual_norm = norm2(r);
    if (result.residual_norm <= options.rel_tol * bnorm) {
      result.converged = true;
      return result;
    }
  }
  auto precondition = [&](const Vec& rin, Vec& zout) {
    for (std::size_t i = 0; i < n; ++i)
      zout[i] = diagonal[i] > 0.0 ? rin[i] / diagonal[i] : rin[i];
    if (deflate) deflate_constant(zout);
  };

  precondition(r, z);
  p = z;
  double rz = dot(r, z);

  for (int it = 0; it < options.max_iterations; ++it) {
    apply(p, ap);
    if (deflate) deflate_constant(ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // lost positive-definiteness numerically
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      result.x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    result.iterations = it + 1;
    result.residual_norm = norm2(r);
    if (result.residual_norm <= options.rel_tol * bnorm) {
      result.converged = true;
      break;
    }
    precondition(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  if (deflate) deflate_constant(result.x);
  return result;
}

PcgResult pcg_solve_laplacian(const CsrGraph& g, const Vec& b,
                              const PcgOptions& options, const Vec* x0) {
  if (b.size() != g.num_nodes())
    throw std::invalid_argument("pcg_solve_laplacian: size mismatch");
  Vec diag = laplacian_diagonal(g);
  double shift = 0.0;
  if (options.diagonal_shift > 0.0) {
    double mean_deg = 0.0;
    for (double d : diag) mean_deg += d;
    mean_deg /= std::max<std::size_t>(1, diag.size());
    shift = options.diagonal_shift * mean_deg;
    for (double& d : diag) d += shift;
  }
  auto apply = [&g, shift](const Vec& x, Vec& y) {
    laplacian_apply(g, x, y);
    if (shift > 0.0)
      for (std::size_t i = 0; i < x.size(); ++i) y[i] += shift * x[i];
  };
  return pcg_solve(apply, diag, b, options, /*deflate=*/shift == 0.0, x0);
}

}  // namespace sgm::graph
