#include "graph/knn.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace sgm::graph {

using tensor::Matrix;

namespace {
inline double dist2(const double* a, const double* b, std::size_t d) {
  double s = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    const double t = a[i] - b[i];
    s += t * t;
  }
  return s;
}

// Max-heap on (dist2, index): keeps the k best seen so far.
inline void heap_push(std::vector<std::pair<double, NodeId>>& heap,
                      std::size_t k, double d2, NodeId idx) {
  if (heap.size() < k) {
    heap.emplace_back(d2, idx);
    std::push_heap(heap.begin(), heap.end());
  } else if (d2 < heap.front().first) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = {d2, idx};
    std::push_heap(heap.begin(), heap.end());
  }
}

KnnResult heap_to_result(std::vector<std::pair<double, NodeId>> heap) {
  std::sort_heap(heap.begin(), heap.end());
  KnnResult r;
  r.index.reserve(heap.size());
  r.dist2.reserve(heap.size());
  for (const auto& [d2, idx] : heap) {
    r.index.push_back(idx);
    r.dist2.push_back(d2);
  }
  return r;
}
}  // namespace

KdTree::KdTree(const Matrix& points)
    : n_(points.rows()), d_(points.cols()), pts_(points) {
  if (d_ == 0) throw std::invalid_argument("KdTree: dimension must be >= 1");
  order_.resize(n_);
  std::iota(order_.begin(), order_.end(), NodeId{0});
  if (n_ > 0) build(0, static_cast<std::uint32_t>(n_), 0);
}

std::int32_t KdTree::build(std::uint32_t begin, std::uint32_t end, int depth) {
  Node node;
  node.begin = begin;
  node.end = end;
  const std::int32_t id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(node);
  if (end - begin <= kLeafSize) {
    nodes_[id].leaf = true;
    return id;
  }
  // Split on the axis of largest spread for better balance than cycling.
  std::uint16_t best_axis = 0;
  double best_spread = -1.0;
  for (std::size_t ax = 0; ax < d_; ++ax) {
    double lo = pts_(order_[begin], ax), hi = lo;
    for (std::uint32_t i = begin + 1; i < end; ++i) {
      const double v = pts_(order_[i], ax);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_axis = static_cast<std::uint16_t>(ax);
    }
  }
  if (best_spread <= 0.0) {  // all points identical on every axis
    nodes_[id].leaf = true;
    return id;
  }
  const std::uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](NodeId a, NodeId b) {
                     return pts_(a, best_axis) < pts_(b, best_axis);
                   });
  nodes_[id].axis = best_axis;
  nodes_[id].split = pts_(order_[mid], best_axis);
  const std::int32_t l = build(begin, mid, depth + 1);
  const std::int32_t r = build(mid, end, depth + 1);
  nodes_[id].left = l;
  nodes_[id].right = r;
  return id;
}

void KdTree::search(std::int32_t node, const double* q, std::size_t k,
                    std::int64_t exclude,
                    std::vector<std::pair<double, NodeId>>& heap) const {
  const Node& nd = nodes_[node];
  if (nd.leaf) {
    for (std::uint32_t i = nd.begin; i < nd.end; ++i) {
      const NodeId idx = order_[i];
      if (static_cast<std::int64_t>(idx) == exclude) continue;
      heap_push(heap, k, dist2(q, pts_.row(idx), d_), idx);
    }
    return;
  }
  const double delta = q[nd.axis] - nd.split;
  const std::int32_t near = delta <= 0.0 ? nd.left : nd.right;
  const std::int32_t far = delta <= 0.0 ? nd.right : nd.left;
  search(near, q, k, exclude, heap);
  const double worst =
      heap.size() < k ? std::numeric_limits<double>::infinity()
                      : heap.front().first;
  if (delta * delta <= worst) search(far, q, k, exclude, heap);
}

KnnResult KdTree::query(const double* query, std::size_t k) const {
  std::vector<std::pair<double, NodeId>> heap;
  heap.reserve(k + 1);
  if (n_ > 0 && k > 0) search(0, query, k, -1, heap);
  return heap_to_result(std::move(heap));
}

KnnResult KdTree::query_point(NodeId i, std::size_t k) const {
  std::vector<std::pair<double, NodeId>> heap;
  heap.reserve(k + 1);
  if (n_ > 0 && k > 0)
    search(0, pts_.row(i), k, static_cast<std::int64_t>(i), heap);
  return heap_to_result(std::move(heap));
}

KnnResult knn_brute_force(const Matrix& points, const double* query,
                          std::size_t k, std::int64_t exclude) {
  std::vector<std::pair<double, NodeId>> heap;
  heap.reserve(k + 1);
  for (std::size_t i = 0; i < points.rows(); ++i) {
    if (static_cast<std::int64_t>(i) == exclude) continue;
    heap_push(heap, k, dist2(query, points.row(i), points.cols()),
              static_cast<NodeId>(i));
  }
  return heap_to_result(std::move(heap));
}

void symmetrize_edges(std::vector<Edge>& edges, std::size_t num_threads) {
  const std::size_t m = edges.size();
  if (m == 0) return;
  util::parallel_for(0, m, num_threads, [&edges](std::size_t i) {
    if (edges[i].u > edges[i].v) std::swap(edges[i].u, edges[i].v);
  });

  const auto less = [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  };
  // Fixed block-sort + merge tree: the block boundaries and merge order
  // never depend on the thread count, only on m, so every num_threads
  // produces the same sorted sequence.
  constexpr std::size_t kBlocks = 8;
  if (m < 2 * kBlocks) {
    std::sort(edges.begin(), edges.end(), less);
  } else {
    std::array<std::size_t, kBlocks + 1> bound;
    for (std::size_t b = 0; b <= kBlocks; ++b) bound[b] = m * b / kBlocks;
    util::parallel_for_chunks(
        0, kBlocks, 1, num_threads,
        [&](std::size_t b, std::size_t e, std::size_t) {
          for (std::size_t blk = b; blk < e; ++blk)
            std::sort(edges.begin() + static_cast<std::ptrdiff_t>(bound[blk]),
                      edges.begin() +
                          static_cast<std::ptrdiff_t>(bound[blk + 1]),
                      less);
        });
    for (std::size_t width = 1; width < kBlocks; width *= 2) {
      const std::size_t step = 2 * width;
      util::parallel_for_chunks(
          0, kBlocks / step, 1, num_threads,
          [&](std::size_t b, std::size_t e, std::size_t) {
            for (std::size_t t = b; t < e; ++t) {
              const std::size_t s = t * step;
              std::inplace_merge(
                  edges.begin() + static_cast<std::ptrdiff_t>(bound[s]),
                  edges.begin() +
                      static_cast<std::ptrdiff_t>(bound[s + width]),
                  edges.begin() + static_cast<std::ptrdiff_t>(
                                      bound[std::min(s + step, kBlocks)]),
                  less);
            }
          });
    }
  }
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const Edge& a, const Edge& b) {
                            return a.u == b.u && a.v == b.v;
                          }),
              edges.end());
}

CsrGraph build_knn_graph(const Matrix& points, const KnnGraphOptions& options) {
  const std::size_t n = points.rows();
  if (n == 0) return CsrGraph();
  const std::size_t k = std::min(options.k, n - 1);
  KdTree tree(points);

  // Directed candidate lists; symmetrized below. Per-point queries run on
  // the pool; the kNN-distance sum is reduced per chunk and merged in chunk
  // order so sigma is bit-identical for every thread count.
  constexpr std::size_t kGrain = 256;
  const std::size_t chunks = util::num_chunks(0, n, kGrain);
  std::vector<KnnResult> nn(n);
  std::vector<double> chunk_dist(chunks, 0.0);
  std::vector<std::size_t> chunk_count(chunks, 0);
  util::parallel_for_chunks(
      0, n, kGrain, options.num_threads,
      [&](std::size_t b, std::size_t e, std::size_t c) {
        double s = 0.0;
        std::size_t cnt = 0;
        for (std::size_t i = b; i < e; ++i) {
          nn[i] = tree.query_point(static_cast<NodeId>(i), k);
          for (double d2v : nn[i].dist2) {
            s += std::sqrt(d2v);
            ++cnt;
          }
        }
        chunk_dist[c] = s;
        chunk_count[c] = cnt;
      });
  double mean_dist = 0.0;
  std::size_t dist_count = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    mean_dist += chunk_dist[c];
    dist_count += chunk_count[c];
  }
  if (dist_count > 0) mean_dist /= static_cast<double>(dist_count);
  const double sigma = mean_dist > 0 ? mean_dist : 1.0;

  auto weight_of = [&](double d2v) {
    const double d = std::sqrt(d2v);
    switch (options.weight) {
      case KnnWeight::kUnit: return 1.0;
      case KnnWeight::kInverse: return 1.0 / (d + options.inverse_eps);
      case KnnWeight::kGauss: return std::exp(-d2v / (2.0 * sigma * sigma));
    }
    return 1.0;
  };

  // Per-chunk edge lists concatenated in chunk order keep the pre-sort edge
  // sequence identical to the serial one.
  std::vector<std::vector<Edge>> chunk_edges(chunks);
  util::parallel_for_chunks(
      0, n, kGrain, options.num_threads,
      [&](std::size_t b, std::size_t e, std::size_t c) {
        auto& out = chunk_edges[c];
        out.reserve((e - b) * k);
        for (std::size_t i = b; i < e; ++i) {
          for (std::size_t t = 0; t < nn[i].index.size(); ++t) {
            const NodeId j = nn[i].index[t];
            if (options.mutual) {
              // Keep (i,j) only when j in kNN(i) AND i in kNN(j).
              if (j <= i) continue;  // handle each unordered pair once
              const auto& back = nn[j].index;
              if (std::find(back.begin(), back.end(),
                            static_cast<NodeId>(i)) == back.end())
                continue;
            }
            out.push_back(
                {static_cast<NodeId>(i), j, weight_of(nn[i].dist2[t])});
          }
        }
      });
  std::vector<Edge> edges;
  edges.reserve(n * k);
  for (auto& ce : chunk_edges)
    edges.insert(edges.end(), ce.begin(), ce.end());
  // from_edges merges duplicates by *summing*; halve symmetric duplicates by
  // pre-deduplicating instead, so union edges keep their single weight.
  symmetrize_edges(edges, options.num_threads);
  return CsrGraph::from_edges(static_cast<NodeId>(n), std::move(edges));
}

}  // namespace sgm::graph
