#include "graph/knn.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace sgm::graph {

using tensor::Matrix;

namespace {
inline double dist2(const double* a, const double* b, std::size_t d) {
  double s = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    const double t = a[i] - b[i];
    s += t * t;
  }
  return s;
}

// Max-heap on (dist2, index): keeps the k lexicographically-smallest
// (dist2, index) pairs seen so far. Comparing the full pair (not just the
// distance) makes tie-breaking canonical: the selected set depends only on
// the candidate multiset, never on traversal order — which is what lets the
// incremental engine splice cached results next to fresh tree queries.
inline void heap_push(std::vector<std::pair<double, NodeId>>& heap,
                      std::size_t k, double d2, NodeId idx) {
  const std::pair<double, NodeId> cand{d2, idx};
  if (heap.size() < k) {
    heap.push_back(cand);
    std::push_heap(heap.begin(), heap.end());
  } else if (cand < heap.front()) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = cand;
    std::push_heap(heap.begin(), heap.end());
  }
}

KnnResult heap_to_result(std::vector<std::pair<double, NodeId>> heap) {
  std::sort_heap(heap.begin(), heap.end());
  KnnResult r;
  r.index.reserve(heap.size());
  r.dist2.reserve(heap.size());
  for (const auto& [d2, idx] : heap) {
    r.index.push_back(idx);
    r.dist2.push_back(d2);
  }
  return r;
}
}  // namespace

KdTree::KdTree(const Matrix& points)
    : n_(points.rows()), d_(points.cols()), pts_(points) {
  if (d_ == 0) throw std::invalid_argument("KdTree: dimension must be >= 1");
  rebuild();
}

void KdTree::rebuild() {
  nodes_.clear();
  order_.resize(n_);
  std::iota(order_.begin(), order_.end(), NodeId{0});
  if (n_ > 0) build(0, static_cast<std::uint32_t>(n_), 0);
}

void KdTree::update_points(const std::vector<NodeId>& ids,
                           const Matrix& rows) {
  if (rows.rows() != ids.size() || (rows.rows() > 0 && rows.cols() != d_))
    throw std::invalid_argument("KdTree::update_points: shape mismatch");
  for (std::size_t t = 0; t < ids.size(); ++t) {
    if (ids[t] >= n_)
      throw std::out_of_range("KdTree::update_points: id out of range");
    for (std::size_t c = 0; c < d_; ++c) pts_(ids[t], c) = rows(t, c);
  }
  rebuild();
}

std::int32_t KdTree::build(std::uint32_t begin, std::uint32_t end, int depth) {
  Node node;
  node.begin = begin;
  node.end = end;
  const std::int32_t id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(node);
  if (end - begin <= kLeafSize) {
    nodes_[id].leaf = true;
    return id;
  }
  // Split on the axis of largest spread for better balance than cycling.
  std::uint16_t best_axis = 0;
  double best_spread = -1.0;
  for (std::size_t ax = 0; ax < d_; ++ax) {
    double lo = pts_(order_[begin], ax), hi = lo;
    for (std::uint32_t i = begin + 1; i < end; ++i) {
      const double v = pts_(order_[i], ax);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_axis = static_cast<std::uint16_t>(ax);
    }
  }
  if (best_spread <= 0.0) {  // all points identical on every axis
    nodes_[id].leaf = true;
    return id;
  }
  const std::uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](NodeId a, NodeId b) {
                     return pts_(a, best_axis) < pts_(b, best_axis);
                   });
  nodes_[id].axis = best_axis;
  nodes_[id].split = pts_(order_[mid], best_axis);
  const std::int32_t l = build(begin, mid, depth + 1);
  const std::int32_t r = build(mid, end, depth + 1);
  nodes_[id].left = l;
  nodes_[id].right = r;
  return id;
}

void KdTree::search(std::int32_t node, const double* q, std::size_t k,
                    std::int64_t exclude,
                    std::vector<std::pair<double, NodeId>>& heap) const {
  const Node& nd = nodes_[node];
  if (nd.leaf) {
    for (std::uint32_t i = nd.begin; i < nd.end; ++i) {
      const NodeId idx = order_[i];
      if (static_cast<std::int64_t>(idx) == exclude) continue;
      heap_push(heap, k, dist2(q, pts_.row(idx), d_), idx);
    }
    return;
  }
  const double delta = q[nd.axis] - nd.split;
  const std::int32_t near = delta <= 0.0 ? nd.left : nd.right;
  const std::int32_t far = delta <= 0.0 ? nd.right : nd.left;
  search(near, q, k, exclude, heap);
  const double worst =
      heap.size() < k ? std::numeric_limits<double>::infinity()
                      : heap.front().first;
  if (delta * delta <= worst) search(far, q, k, exclude, heap);
}

KnnResult KdTree::query(const double* query, std::size_t k) const {
  std::vector<std::pair<double, NodeId>> heap;
  heap.reserve(k + 1);
  if (n_ > 0 && k > 0) search(0, query, k, -1, heap);
  return heap_to_result(std::move(heap));
}

KnnResult KdTree::query_point(NodeId i, std::size_t k) const {
  std::vector<std::pair<double, NodeId>> heap;
  heap.reserve(k + 1);
  if (n_ > 0 && k > 0)
    search(0, pts_.row(i), k, static_cast<std::int64_t>(i), heap);
  return heap_to_result(std::move(heap));
}

bool KdTree::search_within(std::int32_t node, const double* q, double r2,
                           std::int64_t exclude) const {
  const Node& nd = nodes_[node];
  if (nd.leaf) {
    for (std::uint32_t i = nd.begin; i < nd.end; ++i) {
      const NodeId idx = order_[i];
      if (static_cast<std::int64_t>(idx) == exclude) continue;
      if (dist2(q, pts_.row(idx), d_) <= r2) return true;
    }
    return false;
  }
  const double delta = q[nd.axis] - nd.split;
  const std::int32_t near = delta <= 0.0 ? nd.left : nd.right;
  const std::int32_t far = delta <= 0.0 ? nd.right : nd.left;
  if (search_within(near, q, r2, exclude)) return true;
  if (delta * delta <= r2) return search_within(far, q, r2, exclude);
  return false;
}

bool KdTree::any_within(const double* q, double r2,
                        std::int64_t exclude) const {
  if (n_ == 0 || r2 < 0.0) return false;
  return search_within(0, q, r2, exclude);
}

KnnResult knn_brute_force(const Matrix& points, const double* query,
                          std::size_t k, std::int64_t exclude) {
  std::vector<std::pair<double, NodeId>> heap;
  heap.reserve(k + 1);
  for (std::size_t i = 0; i < points.rows(); ++i) {
    if (static_cast<std::int64_t>(i) == exclude) continue;
    heap_push(heap, k, dist2(query, points.row(i), points.cols()),
              static_cast<NodeId>(i));
  }
  return heap_to_result(std::move(heap));
}

void symmetrize_edges(std::vector<Edge>& edges, std::size_t num_threads) {
  const std::size_t m = edges.size();
  if (m == 0) return;
  util::parallel_for(0, m, num_threads, [&edges](std::size_t i) {
    if (edges[i].u > edges[i].v) std::swap(edges[i].u, edges[i].v);
  });

  const auto less = [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  };
  // Fixed block-sort + merge tree: the block boundaries and merge order
  // never depend on the thread count, only on m, so every num_threads
  // produces the same sorted sequence.
  constexpr std::size_t kBlocks = 8;
  if (m < 2 * kBlocks) {
    std::sort(edges.begin(), edges.end(), less);
  } else {
    std::array<std::size_t, kBlocks + 1> bound;
    for (std::size_t b = 0; b <= kBlocks; ++b) bound[b] = m * b / kBlocks;
    util::parallel_for_chunks(
        0, kBlocks, 1, num_threads,
        [&](std::size_t b, std::size_t e, std::size_t) {
          for (std::size_t blk = b; blk < e; ++blk)
            std::sort(edges.begin() + static_cast<std::ptrdiff_t>(bound[blk]),
                      edges.begin() +
                          static_cast<std::ptrdiff_t>(bound[blk + 1]),
                      less);
        });
    for (std::size_t width = 1; width < kBlocks; width *= 2) {
      const std::size_t step = 2 * width;
      util::parallel_for_chunks(
          0, kBlocks / step, 1, num_threads,
          [&](std::size_t b, std::size_t e, std::size_t) {
            for (std::size_t t = b; t < e; ++t) {
              const std::size_t s = t * step;
              std::inplace_merge(
                  edges.begin() + static_cast<std::ptrdiff_t>(bound[s]),
                  edges.begin() +
                      static_cast<std::ptrdiff_t>(bound[s + width]),
                  edges.begin() + static_cast<std::ptrdiff_t>(
                                      bound[std::min(s + step, kBlocks)]),
                  less);
            }
          });
    }
  }
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const Edge& a, const Edge& b) {
                            return a.u == b.u && a.v == b.v;
                          }),
              edges.end());
}

namespace knn_detail {

double mean_knn_distance(const std::vector<KnnResult>& nn,
                         std::size_t num_threads) {
  // Per-chunk partial sums merged in chunk order: the additions happen in
  // exactly the order the full builders' fused query/reduce loop used, so
  // sigma is bit-identical for every thread count and for cached-vs-fresh
  // nn lists alike.
  constexpr std::size_t kGrain = 256;
  const std::size_t n = nn.size();
  const std::size_t chunks = util::num_chunks(0, n, kGrain);
  std::vector<double> chunk_dist(chunks, 0.0);
  std::vector<std::size_t> chunk_count(chunks, 0);
  util::parallel_for_chunks(
      0, n, kGrain, num_threads,
      [&](std::size_t b, std::size_t e, std::size_t c) {
        double s = 0.0;
        std::size_t cnt = 0;
        for (std::size_t i = b; i < e; ++i) {
          for (double d2v : nn[i].dist2) {
            s += std::sqrt(d2v);
            ++cnt;
          }
        }
        chunk_dist[c] = s;
        chunk_count[c] = cnt;
      });
  double mean_dist = 0.0;
  std::size_t dist_count = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    mean_dist += chunk_dist[c];
    dist_count += chunk_count[c];
  }
  if (dist_count > 0) mean_dist /= static_cast<double>(dist_count);
  return mean_dist > 0 ? mean_dist : 1.0;
}

CsrGraph graph_from_nn(const std::vector<KnnResult>& nn, std::size_t n,
                       std::size_t k, const KnnGraphOptions& options,
                       double sigma) {
  auto weight_of = [&](double d2v) {
    const double d = std::sqrt(d2v);
    switch (options.weight) {
      case KnnWeight::kUnit: return 1.0;
      case KnnWeight::kInverse: return 1.0 / (d + options.inverse_eps);
      case KnnWeight::kGauss: return std::exp(-d2v / (2.0 * sigma * sigma));
    }
    return 1.0;
  };

  // Per-chunk edge lists concatenated in chunk order keep the pre-sort edge
  // sequence identical to the serial one.
  constexpr std::size_t kGrain = 256;
  const std::size_t chunks = util::num_chunks(0, n, kGrain);
  std::vector<std::vector<Edge>> chunk_edges(chunks);
  util::parallel_for_chunks(
      0, n, kGrain, options.num_threads,
      [&](std::size_t b, std::size_t e, std::size_t c) {
        auto& out = chunk_edges[c];
        out.reserve((e - b) * k);
        for (std::size_t i = b; i < e; ++i) {
          for (std::size_t t = 0; t < nn[i].index.size(); ++t) {
            const NodeId j = nn[i].index[t];
            if (options.mutual) {
              // Keep (i,j) only when j in kNN(i) AND i in kNN(j).
              if (j <= i) continue;  // handle each unordered pair once
              const auto& back = nn[j].index;
              if (std::find(back.begin(), back.end(),
                            static_cast<NodeId>(i)) == back.end())
                continue;
            }
            out.push_back(
                {static_cast<NodeId>(i), j, weight_of(nn[i].dist2[t])});
          }
        }
      });
  std::vector<Edge> edges;
  edges.reserve(n * k);
  for (auto& ce : chunk_edges)
    edges.insert(edges.end(), ce.begin(), ce.end());
  // from_edges merges duplicates by *summing*; halve symmetric duplicates by
  // pre-deduplicating instead, so union edges keep their single weight.
  symmetrize_edges(edges, options.num_threads);
  return CsrGraph::from_edges(static_cast<NodeId>(n), std::move(edges));
}

}  // namespace knn_detail

CsrGraph build_knn_graph(const Matrix& points, const KnnGraphOptions& options) {
  const std::size_t n = points.rows();
  if (n == 0) return CsrGraph();
  const std::size_t k = std::min(options.k, n - 1);
  KdTree tree(points);

  // Directed candidate lists; weighted and symmetrized by graph_from_nn.
  constexpr std::size_t kGrain = 256;
  std::vector<KnnResult> nn(n);
  util::parallel_for_chunks(
      0, n, kGrain, options.num_threads,
      [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t i = b; i < e; ++i)
          nn[i] = tree.query_point(static_cast<NodeId>(i), k);
      });
  const double sigma =
      knn_detail::mean_knn_distance(nn, options.num_threads);
  return knn_detail::graph_from_nn(nn, n, k, options, sigma);
}

}  // namespace sgm::graph
