#pragma once
// Exact k-nearest-neighbor search and kNN-graph (PGM) construction — stage
// S1 of the SGM-PINN pipeline.
//
// Two exact back-ends are provided: a kd-tree (default; O(N log N) build,
// near-O(log N) queries in the low spatial dimensions PINN point clouds
// live in) and a brute-force scan used as the ground truth in tests. The
// approximate HNSW back-end lives in graph/hnsw.hpp.

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/csr.hpp"
#include "tensor/matrix.hpp"

namespace sgm::graph {

/// Result of a k-NN query: neighbor indices with squared distances,
/// ascending by (distance, index). Ties are broken canonically on the node
/// index, so the selected set is a pure function of the point coordinates —
/// never of tree layout or traversal order. The incremental refresh engine
/// relies on this to splice cached results from an old tree next to fresh
/// queries against a new one.
struct KnnResult {
  std::vector<NodeId> index;
  std::vector<double> dist2;
};

/// Exact kd-tree over the rows of a point matrix (n x d).
class KdTree {
 public:
  /// Builds over `points` (which is copied). d must be >= 1.
  explicit KdTree(const tensor::Matrix& points);

  /// k nearest neighbors of `query` (not excluding any index).
  KnnResult query(const double* query, std::size_t k) const;

  /// k nearest neighbors of point `i`, excluding `i` itself.
  KnnResult query_point(NodeId i, std::size_t k) const;

  /// True when any indexed point lies within squared distance `r2` of `q`
  /// (inclusive), excluding index `exclude`. Bounded search used by the
  /// incremental engine's affected-set detection.
  bool any_within(const double* q, double r2, std::int64_t exclude = -1) const;

  /// Replaces the rows at `ids` with the rows of `rows` (|ids| x d, aligned
  /// with `ids`) and rebuilds the spatial index over the updated points.
  /// The kd build is O(n log n) with small constants — cheap next to the
  /// per-point query sweep the incremental engine skips — so "update" for
  /// the exact backend is a rebuild that keeps the stored points
  /// authoritative and queries exact.
  void update_points(const std::vector<NodeId>& ids,
                     const tensor::Matrix& rows);

  std::size_t size() const { return n_; }
  std::size_t dim() const { return d_; }

 private:
  struct Node {
    std::int32_t left = -1, right = -1;
    std::uint32_t begin = 0, end = 0;  // leaf range into order_
    std::uint16_t axis = 0;
    bool leaf = false;
    double split = 0.0;
  };

  void rebuild();
  std::int32_t build(std::uint32_t begin, std::uint32_t end, int depth);
  void search(std::int32_t node, const double* q, std::size_t k,
              std::int64_t exclude, std::vector<std::pair<double, NodeId>>& heap) const;
  bool search_within(std::int32_t node, const double* q, double r2,
                     std::int64_t exclude) const;

  std::size_t n_ = 0, d_ = 0;
  tensor::Matrix pts_;
  std::vector<NodeId> order_;
  std::vector<Node> nodes_;
  static constexpr std::uint32_t kLeafSize = 16;
};

/// Brute-force exact k-NN (reference implementation for tests).
KnnResult knn_brute_force(const tensor::Matrix& points, const double* query,
                          std::size_t k, std::int64_t exclude = -1);

/// How kNN edge weights encode conditional dependence.
enum class KnnWeight {
  kUnit,     ///< w = 1
  kInverse,  ///< w = 1 / (dist + eps)   (paper: inverse distance)
  kGauss,    ///< w = exp(-dist^2 / (2 sigma^2)), sigma = mean kNN distance
};

struct KnnGraphOptions {
  std::size_t k = 10;
  KnnWeight weight = KnnWeight::kInverse;
  double inverse_eps = 1e-12;
  /// When true, keep only the mutual-kNN symmetrization; otherwise the union
  /// (a directed edge either way becomes one undirected edge). Union is the
  /// default — it keeps the PGM connected at small k.
  bool mutual = false;
  /// Worker threads for the per-point queries and the edge
  /// symmetrize/sort/dedup. 0 = util::resolve_threads default (hardware
  /// concurrency / SGM_NUM_THREADS), 1 = serial. Any value produces
  /// byte-identical graphs (see util/thread_pool.hpp's determinism
  /// contract).
  std::size_t num_threads = 0;
};

/// Builds the undirected kNN PGM over rows of `points` (n x d).
CsrGraph build_knn_graph(const tensor::Matrix& points,
                         const KnnGraphOptions& options);

/// Canonicalizes every edge to u < v, sorts by (u, v) and drops duplicate
/// pairs, keeping one representative per pair. Shared by the kd-tree and
/// HNSW graph builders. The block-sort/merge structure is fixed (independent
/// of `num_threads`), so the result is byte-identical for any thread count.
void symmetrize_edges(std::vector<Edge>& edges, std::size_t num_threads);

namespace knn_detail {

/// Mean kNN distance over all result lists, reduced with the fixed
/// chunk-order merge (byte-identical for any thread count). Returns 1.0 for
/// an empty/degenerate sweep, matching the full builders' sigma fallback.
double mean_knn_distance(const std::vector<KnnResult>& nn,
                         std::size_t num_threads);

/// Materializes the undirected edge list from per-point kNN results —
/// weighting, optional mutual filter, symmetrize/sort/dedup — exactly as
/// build_knn_graph does after its query sweep. `sigma` is the Gauss scale
/// (mean_knn_distance). Shared by the full builders and the incremental
/// engine so both produce bit-identical graphs from identical nn lists.
CsrGraph graph_from_nn(const std::vector<KnnResult>& nn, std::size_t n,
                       std::size_t k, const KnnGraphOptions& options,
                       double sigma);

}  // namespace knn_detail

}  // namespace sgm::graph
