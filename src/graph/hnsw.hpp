#pragma once
// Hierarchical Navigable Small World approximate nearest-neighbor index
// (Malkov & Yashunin, TPAMI 2018) — the kNN backend the paper uses for S1 on
// multi-million-point clouds. Exact back-ends are in graph/knn.hpp; this one
// trades a little recall for O(N log N) construction at scale.

#include <cstdint>
#include <vector>

#include "graph/knn.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace sgm::graph {

struct HnswOptions {
  std::size_t m = 16;                ///< max neighbors per node per layer
  std::size_t ef_construction = 100; ///< beam width while inserting
  std::size_t ef_search = 64;        ///< beam width while querying
  std::uint64_t seed = 42;           ///< level assignment randomness
};

class HnswIndex {
 public:
  /// Per-query visit-tracking scratch. Queries share no mutable index state,
  /// so concurrent const queries are race-free; each caller (or each worker
  /// in a parallel query loop) owns one of these and reuses it across
  /// queries to amortize the O(n) mark array.
  struct SearchScratch {
    std::vector<std::uint32_t> mark;
    std::uint32_t epoch = 0;
  };

  /// Builds the index over the rows of `points` (copied).
  HnswIndex(const tensor::Matrix& points, const HnswOptions& options);

  /// Approximate k nearest neighbors of an arbitrary query vector.
  KnnResult query(const double* query, std::size_t k) const;
  KnnResult query(const double* query, std::size_t k,
                  SearchScratch& scratch) const;

  /// Approximate k nearest neighbors of indexed point `i`, excluding `i`.
  KnnResult query_point(NodeId i, std::size_t k) const;
  KnnResult query_point(NodeId i, std::size_t k,
                        SearchScratch& scratch) const;

  /// Moves the points at `ids` to the rows of `rows` (|ids| x d, aligned
  /// with `ids`) by deleting them from every adjacency list and re-inserting
  /// them at their new coordinates, keeping each point's original level so
  /// the level-assignment rng stream is untouched. Deterministic: ids are
  /// processed in ascending order on the calling thread. The mutated index
  /// is a valid HNSW graph but not bit-identical to a fresh build over the
  /// same points; tests bound the recall gap (see test_knn.cpp). Re-inserts
  /// everything from scratch when every point is dirty.
  void update_points(const std::vector<NodeId>& ids,
                     const tensor::Matrix& rows);

  std::size_t size() const { return n_; }
  std::size_t max_level() const { return levels_.empty() ? 0 : max_level_; }

 private:
  struct SearchCandidate {
    double d2;
    NodeId id;
    bool operator<(const SearchCandidate& o) const { return d2 < o.d2; }
    bool operator>(const SearchCandidate& o) const { return d2 > o.d2; }
  };

  double dist2(const double* a, NodeId b) const;
  void insert_existing(NodeId i, SearchScratch& scratch);
  NodeId greedy_descend(const double* q, NodeId entry, int from_level,
                        int to_level) const;
  std::vector<SearchCandidate> search_layer(const double* q, NodeId entry,
                                            std::size_t ef, int level,
                                            std::int64_t exclude,
                                            SearchScratch& scratch) const;
  void connect(NodeId node, int level,
               const std::vector<SearchCandidate>& candidates);
  std::vector<NodeId>& neighbors(NodeId node, int level);
  const std::vector<NodeId>& neighbors(NodeId node, int level) const;

  std::size_t n_ = 0, d_ = 0;
  HnswOptions opt_;
  tensor::Matrix pts_;
  std::vector<int> levels_;                     // per node top level
  std::vector<std::vector<std::vector<NodeId>>> adj_;  // [node][level]
  NodeId entry_ = 0;
  int max_level_ = 0;
};

/// Builds an undirected kNN PGM using HNSW search (approximate analogue of
/// build_knn_graph).
CsrGraph build_knn_graph_hnsw(const tensor::Matrix& points,
                              const KnnGraphOptions& graph_options,
                              const HnswOptions& hnsw_options);

}  // namespace sgm::graph
