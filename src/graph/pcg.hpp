#pragma once
// Jacobi-preconditioned conjugate gradient for graph-Laplacian systems.
//
// Laplacians are singular (constant nullspace per connected component), so
// the solver deflates the constant from the right-hand side and from every
// iterate; on a connected graph this solves L x = b exactly in the range of
// L, which is what effective-resistance and SPADE computations need.

#include <functional>

#include "graph/laplacian.hpp"

namespace sgm::graph {

struct PcgOptions {
  double rel_tol = 1e-8;    ///< stop when ||r|| <= rel_tol * ||b||
  int max_iterations = 2000;
  /// Added to the diagonal (relative to mean degree) to regularize graphs
  /// that are disconnected or nearly so. 0 = pure Laplacian.
  double diagonal_shift = 0.0;
};

struct PcgResult {
  Vec x;
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

/// Solves (L + shift*I) x = b with Jacobi preconditioning and constant-mode
/// deflation (deflation is skipped when shift > 0, where the operator is
/// nonsingular). `x0` optionally warm-starts the iteration: convergence is
/// still judged against ||b|| (not the initial residual), so a warm start
/// whose residual already meets rel_tol returns after zero iterations — the
/// incremental effective-resistance path leans on this to skip columns the
/// graph update left untouched.
PcgResult pcg_solve_laplacian(const CsrGraph& g, const Vec& b,
                              const PcgOptions& options = {},
                              const Vec* x0 = nullptr);

/// Generic PCG on a user operator with a diagonal preconditioner.
/// `apply(x, y)` must compute y = A x for an SPD (or deflated-SPSD) A.
/// `x0` warm-starts the iteration (see pcg_solve_laplacian).
PcgResult pcg_solve(const std::function<void(const Vec&, Vec&)>& apply,
                    const Vec& diagonal, const Vec& b,
                    const PcgOptions& options, bool deflate,
                    const Vec* x0 = nullptr);

}  // namespace sgm::graph
