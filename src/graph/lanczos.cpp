#include "graph/lanczos.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sgm::graph {

using tensor::Matrix;

EigenPairs jacobi_eigensymm(const Matrix& a, double tol, int max_sweeps) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("jacobi_eigensymm: matrix must be square");
  const std::size_t n = a.rows();
  Matrix m = a;
  Matrix v = tensor::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += m(p, q) * m(p, q);
    if (std::sqrt(2.0 * off) <= tol * (1.0 + m.max_abs())) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = m(p, p), aqq = m(q, q);
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        for (std::size_t i = 0; i < n; ++i) {
          const double mip = m(i, p), miq = m(i, q);
          m(i, p) = c * mip - s * miq;
          m(i, q) = s * mip + c * miq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double mpi = m(p, i), mqi = m(q, i);
          m(p, i) = c * mpi - s * mqi;
          m(q, i) = s * mpi + c * mqi;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p), viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  // Sort ascending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return m(i, i) < m(j, j); });

  EigenPairs out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = m(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = v(i, order[j]);
  }
  return out;
}

EigenPairs lanczos(const std::function<void(const Vec&, Vec&)>& apply,
                   std::size_t n, const LanczosOptions& options) {
  if (n == 0) return {};
  const int m_max =
      std::min<int>(options.max_iterations, static_cast<int>(n));
  const int want = std::min<int>(options.num_eigenpairs, static_cast<int>(n));

  util::Rng rng(options.seed);
  std::vector<Vec> basis;  // orthonormal Lanczos vectors
  std::vector<double> alpha, beta;

  Vec q(n);
  for (auto& x : q) x = rng.normal();
  double qn = norm2(q);
  for (auto& x : q) x /= qn;
  basis.push_back(q);

  Vec w(n);
  for (int j = 0; j < m_max; ++j) {
    apply(basis[j], w);
    const double a = dot(basis[j], w);
    alpha.push_back(a);
    // w -= alpha_j q_j + beta_{j-1} q_{j-1}; then full reorthogonalization.
    for (std::size_t i = 0; i < n; ++i) w[i] -= a * basis[j][i];
    if (j > 0)
      for (std::size_t i = 0; i < n; ++i) w[i] -= beta[j - 1] * basis[j - 1][i];
    for (const auto& qb : basis) {
      const double c = dot(qb, w);
      for (std::size_t i = 0; i < n; ++i) w[i] -= c * qb[i];
    }
    const double b = norm2(w);
    if (b < 1e-12 || j + 1 == m_max) {
      if (b >= 1e-12) beta.push_back(b);
      break;
    }
    beta.push_back(b);
    Vec next(n);
    for (std::size_t i = 0; i < n; ++i) next[i] = w[i] / b;
    basis.push_back(std::move(next));
  }

  // Tridiagonal Rayleigh–Ritz via the dense Jacobi solver.
  const std::size_t m = basis.size();
  Matrix t(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    t(i, i) = alpha[i];
    if (i + 1 < m) {
      t(i, i + 1) = beta[i];
      t(i + 1, i) = beta[i];
    }
  }
  EigenPairs ritz = jacobi_eigensymm(t);

  // Pick the requested extreme; assemble Ritz vectors in original space.
  std::vector<std::size_t> picks;
  if (options.largest) {
    for (std::size_t j = m; j-- > 0 && picks.size() < std::size_t(want);)
      picks.push_back(j);
  } else {
    for (std::size_t j = 0; j < m && picks.size() < std::size_t(want); ++j)
      picks.push_back(j);
  }
  std::sort(picks.begin(), picks.end(), [&](std::size_t a2, std::size_t b2) {
    return ritz.values[a2] < ritz.values[b2];
  });

  EigenPairs out;
  out.values.reserve(picks.size());
  out.vectors = Matrix(n, picks.size());
  for (std::size_t c = 0; c < picks.size(); ++c) {
    const std::size_t j = picks[c];
    out.values.push_back(ritz.values[j]);
    for (std::size_t row = 0; row < n; ++row) {
      double s = 0.0;
      for (std::size_t l = 0; l < m; ++l)
        s += basis[l][row] * ritz.vectors(l, j);
      out.vectors(row, c) = s;
    }
  }
  return out;
}

}  // namespace sgm::graph
