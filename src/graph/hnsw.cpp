#include "graph/hnsw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace sgm::graph {

using tensor::Matrix;

HnswIndex::HnswIndex(const Matrix& points, const HnswOptions& options)
    : n_(points.rows()), d_(points.cols()), opt_(options), pts_(points) {
  if (opt_.m < 2) throw std::invalid_argument("HnswIndex: m must be >= 2");
  levels_.resize(n_, 0);
  adj_.resize(n_);
  if (n_ == 0) return;

  util::Rng rng(opt_.seed);
  const double ml = 1.0 / std::log(static_cast<double>(opt_.m));

  // Node 0 seeds the structure at level 0.
  levels_[0] = 0;
  adj_[0].resize(1);
  entry_ = 0;
  max_level_ = 0;

  SearchScratch scratch;  // insertion is sequential; one scratch suffices
  for (NodeId i = 1; i < n_; ++i) {
    // Exponentially distributed level (the classic HNSW assignment).
    double u = rng.uniform();
    if (u <= 0.0) u = std::numeric_limits<double>::min();
    levels_[i] = static_cast<int>(-std::log(u) * ml);
    insert_existing(i, scratch);
  }
}

void HnswIndex::insert_existing(NodeId i, SearchScratch& scratch) {
  const int level = levels_[i];
  adj_[i].assign(static_cast<std::size_t>(level) + 1, {});
  const double* q = pts_.row(i);
  NodeId ep = greedy_descend(q, entry_, max_level_, level + 1);
  for (int lc = std::min(level, max_level_); lc >= 0; --lc) {
    auto cands = search_layer(q, ep, opt_.ef_construction, lc, -1, scratch);
    connect(i, lc, cands);
    if (!cands.empty()) ep = cands.front().id;
  }
  if (level > max_level_) {
    max_level_ = level;
    entry_ = i;
  }
}

void HnswIndex::update_points(const std::vector<NodeId>& ids,
                              const Matrix& rows) {
  if (rows.rows() != ids.size() || (rows.rows() > 0 && rows.cols() != d_))
    throw std::invalid_argument("HnswIndex::update_points: shape mismatch");
  if (ids.empty()) return;
  std::vector<char> dirty(n_, 0);
  for (std::size_t t = 0; t < ids.size(); ++t) {
    if (ids[t] >= n_)
      throw std::out_of_range("HnswIndex::update_points: id out of range");
    dirty[ids[t]] = 1;
    for (std::size_t c = 0; c < d_; ++c) pts_(ids[t], c) = rows(t, c);
  }
  std::vector<NodeId> order(ids);
  std::sort(order.begin(), order.end());
  order.erase(std::unique(order.begin(), order.end()), order.end());

  SearchScratch scratch;
  if (order.size() == n_) {
    // Everything moved: re-run the construction sweep at preserved levels.
    for (auto& levels : adj_) levels.clear();
    adj_[0].assign(static_cast<std::size_t>(levels_[0]) + 1, {});
    entry_ = 0;
    max_level_ = levels_[0];
    for (NodeId i = 1; i < n_; ++i) insert_existing(i, scratch);
    return;
  }

  // Unlink every dirty node, then re-insert each at its new position (and
  // original level) in ascending id order. Levels are preserved, so the
  // global max level cannot change; only the entry point may need a stand-in
  // while its node is detached.
  for (NodeId v = 0; v < n_; ++v) {
    if (dirty[v]) continue;
    for (auto& lst : adj_[v])
      lst.erase(std::remove_if(lst.begin(), lst.end(),
                               [&](NodeId nb) { return dirty[nb] != 0; }),
                lst.end());
  }
  if (dirty[entry_]) {
    NodeId best = 0;
    int best_level = -1;
    for (NodeId v = 0; v < n_; ++v)
      if (!dirty[v] && levels_[v] > best_level) {
        best_level = levels_[v];
        best = v;
      }
    entry_ = best;
  }
  for (NodeId i : order) insert_existing(i, scratch);
  if (levels_[entry_] < max_level_) {
    // Deterministically restore a top-level entry point (the stand-in may
    // sit below the top layer).
    for (NodeId v = 0; v < n_; ++v)
      if (levels_[v] == max_level_) {
        entry_ = v;
        break;
      }
  }
}

double HnswIndex::dist2(const double* a, NodeId b) const {
  const double* pb = pts_.row(b);
  double s = 0.0;
  for (std::size_t i = 0; i < d_; ++i) {
    const double t = a[i] - pb[i];
    s += t * t;
  }
  return s;
}

std::vector<NodeId>& HnswIndex::neighbors(NodeId node, int level) {
  return adj_[node][level];
}
const std::vector<NodeId>& HnswIndex::neighbors(NodeId node, int level) const {
  return adj_[node][level];
}

NodeId HnswIndex::greedy_descend(const double* q, NodeId entry, int from_level,
                                 int to_level) const {
  NodeId cur = entry;
  double cur_d = dist2(q, cur);
  for (int level = from_level; level >= to_level; --level) {
    bool improved = true;
    while (improved) {
      improved = false;
      if (level >= static_cast<int>(adj_[cur].size())) break;
      for (NodeId nb : neighbors(cur, level)) {
        const double d = dist2(q, nb);
        if (d < cur_d) {
          cur_d = d;
          cur = nb;
          improved = true;
        }
      }
    }
  }
  return cur;
}

std::vector<HnswIndex::SearchCandidate> HnswIndex::search_layer(
    const double* q, NodeId entry, std::size_t ef, int level,
    std::int64_t exclude, SearchScratch& scratch) const {
  // Visit tracking lives entirely in the caller-owned scratch so concurrent
  // const queries never touch shared index state.
  auto& visit_mark = scratch.mark;
  auto& visit_epoch = scratch.epoch;
  if (visit_mark.size() != n_) {
    visit_mark.assign(n_, 0);
    visit_epoch = 0;
  }
  ++visit_epoch;
  if (visit_epoch == 0) {  // wrapped: reset marks
    std::fill(visit_mark.begin(), visit_mark.end(), 0);
    visit_epoch = 1;
  }

  // to_visit: min-heap by distance; best: max-heap of current ef best.
  std::priority_queue<SearchCandidate, std::vector<SearchCandidate>,
                      std::greater<SearchCandidate>>
      to_visit;
  std::priority_queue<SearchCandidate> best;

  const double ed = dist2(q, entry);
  to_visit.push({ed, entry});
  visit_mark[entry] = visit_epoch;
  if (static_cast<std::int64_t>(entry) != exclude) best.push({ed, entry});

  while (!to_visit.empty()) {
    const SearchCandidate c = to_visit.top();
    to_visit.pop();
    if (best.size() >= ef && c.d2 > best.top().d2) break;
    if (level >= static_cast<int>(adj_[c.id].size())) continue;
    for (NodeId nb : neighbors(c.id, level)) {
      if (visit_mark[nb] == visit_epoch) continue;
      visit_mark[nb] = visit_epoch;
      const double d = dist2(q, nb);
      if (best.size() < ef || d < best.top().d2) {
        to_visit.push({d, nb});
        if (static_cast<std::int64_t>(nb) != exclude) {
          best.push({d, nb});
          if (best.size() > ef) best.pop();
        }
      }
    }
  }

  std::vector<SearchCandidate> out(best.size());
  for (std::size_t i = out.size(); i-- > 0;) {
    out[i] = best.top();
    best.pop();
  }
  return out;  // ascending by distance
}

void HnswIndex::connect(NodeId node, int level,
                        const std::vector<SearchCandidate>& candidates) {
  // Simple neighbor selection: closest M. (The original paper's heuristic
  // prunes dominated candidates; closest-M keeps recall high on the smooth
  // low-dimensional clouds PINNs use.)
  const std::size_t m_max = level == 0 ? 2 * opt_.m : opt_.m;
  auto& mine = neighbors(node, level);
  for (const auto& c : candidates) {
    if (c.id == node) continue;
    // A candidate that does not reach this layer cannot be linked here.
    // Normal construction never produces one, but update_points' stand-in
    // entry point (used while the true top-level node is detached) can
    // surface at layers above its own level.
    if (static_cast<std::size_t>(level) >= adj_[c.id].size()) continue;
    if (mine.size() >= m_max) break;
    mine.push_back(c.id);
    auto& theirs = neighbors(c.id, level);
    theirs.push_back(node);
    if (theirs.size() > m_max) {
      // Evict the farthest neighbor of c.id to respect the degree bound.
      const double* pc = pts_.row(c.id);
      std::size_t worst = 0;
      double worst_d = -1.0;
      for (std::size_t t = 0; t < theirs.size(); ++t) {
        const double d = dist2(pc, theirs[t]);
        if (d > worst_d) {
          worst_d = d;
          worst = t;
        }
      }
      theirs.erase(theirs.begin() + static_cast<std::ptrdiff_t>(worst));
    }
  }
}

KnnResult HnswIndex::query(const double* query, std::size_t k) const {
  SearchScratch scratch;
  return this->query(query, k, scratch);
}

KnnResult HnswIndex::query(const double* query, std::size_t k,
                           SearchScratch& scratch) const {
  KnnResult r;
  if (n_ == 0 || k == 0) return r;
  const NodeId ep = greedy_descend(query, entry_, max_level_, 1);
  auto cands =
      search_layer(query, ep, std::max(opt_.ef_search, k), 0, -1, scratch);
  const std::size_t take = std::min(k, cands.size());
  for (std::size_t i = 0; i < take; ++i) {
    r.index.push_back(cands[i].id);
    r.dist2.push_back(cands[i].d2);
  }
  return r;
}

KnnResult HnswIndex::query_point(NodeId i, std::size_t k) const {
  SearchScratch scratch;
  return query_point(i, k, scratch);
}

KnnResult HnswIndex::query_point(NodeId i, std::size_t k,
                                 SearchScratch& scratch) const {
  KnnResult r;
  if (n_ == 0 || k == 0) return r;
  const double* q = pts_.row(i);
  const NodeId ep = greedy_descend(q, entry_, max_level_, 1);
  auto cands = search_layer(q, ep, std::max(opt_.ef_search, k + 1), 0,
                            static_cast<std::int64_t>(i), scratch);
  const std::size_t take = std::min(k, cands.size());
  for (std::size_t t = 0; t < take; ++t) {
    r.index.push_back(cands[t].id);
    r.dist2.push_back(cands[t].d2);
  }
  return r;
}

CsrGraph build_knn_graph_hnsw(const Matrix& points,
                              const KnnGraphOptions& graph_options,
                              const HnswOptions& hnsw_options) {
  const std::size_t n = points.rows();
  if (n == 0) return CsrGraph();
  const std::size_t k = std::min(graph_options.k, n - 1);
  // Insertion order feeds back into the link structure, so construction
  // stays sequential (deterministic for a fixed seed); the per-point query
  // sweep below is where the time goes and parallelizes cleanly.
  HnswIndex index(points, hnsw_options);

  constexpr std::size_t kGrain = 256;
  std::vector<KnnResult> nn(n);
  util::parallel_for_chunks(
      0, n, kGrain, graph_options.num_threads,
      [&](std::size_t b, std::size_t e, std::size_t) {
        HnswIndex::SearchScratch scratch;
        for (std::size_t i = b; i < e; ++i)
          nn[i] = index.query_point(static_cast<NodeId>(i), k, scratch);
      });
  const double sigma =
      knn_detail::mean_knn_distance(nn, graph_options.num_threads);
  return knn_detail::graph_from_nn(nn, n, k, graph_options, sigma);
}

}  // namespace sgm::graph
