#pragma once
// Symmetric eigensolvers:
//  * dense Jacobi rotation eigensolver — exact, O(n^3), used on small dense
//    matrices (Rayleigh–Ritz projections, exact effective resistance in
//    tests);
//  * Lanczos with full reorthogonalization — extremal eigenpairs of a
//    matrix-free symmetric operator (graph Laplacians, L_Y^+ L_X pencils).

#include <functional>
#include <vector>

#include "graph/laplacian.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace sgm::graph {

struct EigenPairs {
  /// Ascending eigenvalues.
  std::vector<double> values;
  /// Column i of `vectors` is the eigenvector for values[i].
  tensor::Matrix vectors;
};

/// Dense symmetric eigendecomposition by cyclic Jacobi rotations.
/// `a` must be symmetric; returns all n eigenpairs, values ascending.
EigenPairs jacobi_eigensymm(const tensor::Matrix& a, double tol = 1e-12,
                            int max_sweeps = 100);

struct LanczosOptions {
  int num_eigenpairs = 6;
  int max_iterations = 200;     ///< Krylov dimension cap
  double tol = 1e-8;            ///< residual tolerance on Ritz pairs
  std::uint64_t seed = 7;       ///< start-vector randomness
  bool largest = true;          ///< largest (true) or smallest eigenvalues
};

/// Lanczos on a symmetric operator y = A x of dimension n.
/// Full reorthogonalization keeps the basis numerically orthogonal (the
/// Krylov dimensions used here are small, so the O(m^2 n) cost is fine).
EigenPairs lanczos(const std::function<void(const Vec&, Vec&)>& apply,
                   std::size_t n, const LanczosOptions& options);

}  // namespace sgm::graph
