#pragma once
// Effective-resistance estimation (Definition 3.1 of the paper).
//
// All estimators produce an *embedding*: a matrix Z (n x t) such that
// R_eff(u, v) ≈ || Z_u - Z_v ||^2 over rows. Working with embeddings (rather
// than per-edge scalars) lets the LRD decomposition bound the resistance
// diameter of merged clusters without re-solving.
//
// Back-ends:
//  * kExact      — dense eigendecomposition, Z = U diag(lambda^-1/2); O(n^3),
//                  tests and tiny graphs only.
//  * kJlSolve    — Spielman–Srivastava: t = O(log n) random +-1 edge
//                  combinations, each requiring one Laplacian PCG solve;
//                  (1±eps) accurate with high probability.
//  * kSmoothed   — HyperEF-style Krylov smoothing: t random vectors smoothed
//                  by a few Jacobi iterations, orthogonalized to the constant
//                  vector. No linear solves; nearly-linear time. This is the
//                  scalable path referenced in Section 3.3 of the paper and
//                  the default inside LRD. It produces *relative* (rank-
//                  preserving) rather than calibrated estimates.

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "tensor/matrix.hpp"

namespace sgm::graph {

enum class ErMethod { kExact, kJlSolve, kSmoothed };

struct ErOptions {
  ErMethod method = ErMethod::kSmoothed;
  int num_vectors = 12;        ///< t: embedding width (kJlSolve / kSmoothed)
  int smoothing_iterations = 40;  ///< Jacobi sweeps for kSmoothed
  double cg_rel_tol = 1e-6;    ///< PCG tolerance for kJlSolve
  int cg_max_iterations = 1000;
  std::uint64_t seed = 1234;
  /// Worker threads for the per-column smoothing/solve work (kJlSolve /
  /// kSmoothed; random draws stay serial so the stream is thread-count
  /// independent). 0 = util::resolve_threads default, 1 = serial. Any value
  /// yields byte-identical embeddings.
  std::size_t num_threads = 0;
  /// IncrementalErEngine / kSmoothed only: when the influence region of the
  /// changed edges covers more than this fraction of the nodes, recompute
  /// every column in full instead of the localized sweep.
  double incremental_region_fraction = 0.5;
};

/// Embedding Z with rows as node coordinates; see file comment.
tensor::Matrix effective_resistance_embedding(const CsrGraph& g,
                                              const ErOptions& options);

/// R(u,v) read off an embedding.
double er_from_embedding(const tensor::Matrix& z, NodeId u, NodeId v);

/// Per-unique-edge effective resistances from an embedding, aligned with
/// g.edges(). num_threads: 0 = util::resolve_threads default, 1 = serial.
std::vector<double> edge_effective_resistance(const CsrGraph& g,
                                              const tensor::Matrix& z,
                                              std::size_t num_threads = 0);

/// Exact effective resistance between two nodes via dense pseudo-inverse
/// (test helper; O(n^3)).
double exact_effective_resistance(const CsrGraph& g, NodeId u, NodeId v);

struct ErUpdateStats {
  bool full_recompute = false;    ///< every node/column was recomputed
  std::size_t changed_nodes = 0;  ///< endpoints of changed edges seen
  std::size_t region_nodes = 0;   ///< kSmoothed: nodes inside the swept ball
  std::size_t columns_resolved = 0;  ///< kJlSolve: columns PCG iterated on
  std::size_t pcg_iterations = 0;    ///< kJlSolve: total PCG iterations
};

/// Incrementally-maintained effective-resistance embedding — the S2 half of
/// the incremental refresh engine.
///
/// The engine keeps the previous embedding between refreshes and restricts
/// the re-solve to what the changed edges can actually influence:
///  * kJlSolve  — the JL sketch draws each edge's Rademacher sign from a
///    counter-based hash of (seed, column, u, v) instead of a sequential
///    stream, so unchanged edges keep their contribution and the sketch of
///    a lightly-edited graph is a small perturbation. Each column's PCG is
///    then warm-started from the cached solution; columns whose warm
///    residual already meets cg_rel_tol * ||b|| cost zero iterations.
///    Incremental and full results agree within the PCG tolerance (both are
///    rel_tol-accurate solutions of the same systems).
///  * kSmoothed — the T-sweep Richardson iteration has finite propagation
///    speed: a node farther than T hops (in the union of the old and new
///    adjacency) from every changed edge reproduces its previous value
///    exactly. The engine re-sweeps only the 2T-hop ball around the changed
///    endpoints and commits the T-hop core, which is *bit-identical* to a
///    full canonical recompute; when the ball exceeds
///    incremental_region_fraction * n it recomputes all columns. To make
///    values splice across refreshes the canonical form pins the Richardson
///    step size to the largest max-degree seen (monotone, re-pinned with a
///    full recompute when the degree grows) and deflates the constant mode
///    once on the initial vectors rather than every sweep — a per-column
///    constant shift that cancels in every R(u,v) readout.
///  * kExact    — always recomputed (tests/tiny graphs only).
///
/// Note the canonical forms differ (deliberately, and only within estimator
/// noise) from the one-shot effective_resistance_embedding(); equivalence
/// tests compare IncrementalErEngine::update against
/// IncrementalErEngine::rebuild, which share them.
class IncrementalErEngine {
 public:
  explicit IncrementalErEngine(ErOptions options);

  /// Full canonical recompute over `g`. For a fixed option set and graph
  /// history this is deterministic; for kJlSolve/kExact it is a pure
  /// function of `g`, for kSmoothed it also depends on the monotone pinned
  /// step size (see above).
  const tensor::Matrix& rebuild(const CsrGraph& g);

  /// Incremental update. `g` is the new graph, `prev` the graph this engine
  /// last saw, `changed_nodes` the sorted endpoints of every edge that was
  /// added, removed, or re-weighted between them. Falls back to a full
  /// recompute internally whenever required for correctness.
  const tensor::Matrix& update(const CsrGraph& g, const CsrGraph& prev,
                               const std::vector<NodeId>& changed_nodes,
                               ErUpdateStats* stats = nullptr);

  const tensor::Matrix& embedding() const { return z_; }

  /// kSmoothed: the monotone max weighted degree the Richardson step size
  /// is pinned to. Callers that SKIP updates (stale-ER amortization) must
  /// force an update whenever a graph's max degree exceeds this — else
  /// their pin history diverges from an engine that saw every graph and
  /// the resync-lands-bitwise contract breaks (the refresh engine does
  /// exactly that check each refresh).
  double max_degree_seen() const { return d_max_seen_; }

 private:
  void smoothed_full(const CsrGraph& g);
  void smoothed_localized(const CsrGraph& g,
                          const std::vector<NodeId>& commit,
                          const std::vector<NodeId>& swept);
  void jl_solve(const CsrGraph& g, bool warm_start, ErUpdateStats* stats);
  const std::vector<std::vector<double>>& cached_init(std::size_t n);

  ErOptions opt_;
  tensor::Matrix z_;
  double d_max_seen_ = 0.0;
  double sigma_pin_ = 0.0;
  /// The deflated random initial vectors are a pure function of
  /// (seed, n, t); caching them keeps localized updates from paying the
  /// O(n * t) serial regeneration on every refresh.
  std::vector<std::vector<double>> init_cache_;
  std::size_t init_cache_n_ = 0;
};

}  // namespace sgm::graph
