#pragma once
// Effective-resistance estimation (Definition 3.1 of the paper).
//
// All estimators produce an *embedding*: a matrix Z (n x t) such that
// R_eff(u, v) ≈ || Z_u - Z_v ||^2 over rows. Working with embeddings (rather
// than per-edge scalars) lets the LRD decomposition bound the resistance
// diameter of merged clusters without re-solving.
//
// Back-ends:
//  * kExact      — dense eigendecomposition, Z = U diag(lambda^-1/2); O(n^3),
//                  tests and tiny graphs only.
//  * kJlSolve    — Spielman–Srivastava: t = O(log n) random +-1 edge
//                  combinations, each requiring one Laplacian PCG solve;
//                  (1±eps) accurate with high probability.
//  * kSmoothed   — HyperEF-style Krylov smoothing: t random vectors smoothed
//                  by a few Jacobi iterations, orthogonalized to the constant
//                  vector. No linear solves; nearly-linear time. This is the
//                  scalable path referenced in Section 3.3 of the paper and
//                  the default inside LRD. It produces *relative* (rank-
//                  preserving) rather than calibrated estimates.

#include <cstdint>

#include "graph/csr.hpp"
#include "tensor/matrix.hpp"

namespace sgm::graph {

enum class ErMethod { kExact, kJlSolve, kSmoothed };

struct ErOptions {
  ErMethod method = ErMethod::kSmoothed;
  int num_vectors = 12;        ///< t: embedding width (kJlSolve / kSmoothed)
  int smoothing_iterations = 40;  ///< Jacobi sweeps for kSmoothed
  double cg_rel_tol = 1e-6;    ///< PCG tolerance for kJlSolve
  int cg_max_iterations = 1000;
  std::uint64_t seed = 1234;
  /// Worker threads for the per-column smoothing/solve work (kJlSolve /
  /// kSmoothed; random draws stay serial so the stream is thread-count
  /// independent). 0 = util::resolve_threads default, 1 = serial. Any value
  /// yields byte-identical embeddings.
  std::size_t num_threads = 0;
};

/// Embedding Z with rows as node coordinates; see file comment.
tensor::Matrix effective_resistance_embedding(const CsrGraph& g,
                                              const ErOptions& options);

/// R(u,v) read off an embedding.
double er_from_embedding(const tensor::Matrix& z, NodeId u, NodeId v);

/// Per-unique-edge effective resistances from an embedding, aligned with
/// g.edges(). num_threads: 0 = util::resolve_threads default, 1 = serial.
std::vector<double> edge_effective_resistance(const CsrGraph& g,
                                              const tensor::Matrix& z,
                                              std::size_t num_threads = 0);

/// Exact effective resistance between two nodes via dense pseudo-inverse
/// (test helper; O(n^3)).
double exact_effective_resistance(const CsrGraph& g, NodeId u, NodeId v);

}  // namespace sgm::graph
