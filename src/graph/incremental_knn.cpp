#include "graph/incremental_knn.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace sgm::graph {

using tensor::Matrix;

namespace {
constexpr std::size_t kGrain = 256;
}

IncrementalKnnGraph::IncrementalKnnGraph(IncrementalKnnOptions options)
    : opt_(std::move(options)) {}

void IncrementalKnnGraph::finalize_graph() {
  const std::size_t n = metric_.rows();
  const double sigma =
      knn_detail::mean_knn_distance(nn_, opt_.knn.num_threads);
  graph_ = knn_detail::graph_from_nn(nn_, n, k_, opt_.knn, sigma);
}

const CsrGraph& IncrementalKnnGraph::rebuild(const Matrix& metric) {
  metric_ = metric;
  const std::size_t n = metric_.rows();
  if (n == 0) {
    built_empty_ = true;
    nn_.clear();
    kd_.reset();
    hnsw_.reset();
    graph_ = CsrGraph();
    return graph_;
  }
  k_ = std::min(opt_.knn.k, n - 1);
  nn_.assign(n, KnnResult{});
  if (opt_.use_hnsw) {
    kd_.reset();
    hnsw_ = std::make_unique<HnswIndex>(metric_, opt_.hnsw);
    util::parallel_for_chunks(
        0, n, kGrain, opt_.knn.num_threads,
        [&](std::size_t b, std::size_t e, std::size_t) {
          HnswIndex::SearchScratch scratch;
          for (std::size_t i = b; i < e; ++i)
            nn_[i] = hnsw_->query_point(static_cast<NodeId>(i), k_, scratch);
        });
  } else {
    hnsw_.reset();
    kd_ = std::make_unique<KdTree>(metric_);
    util::parallel_for_chunks(
        0, n, kGrain, opt_.knn.num_threads,
        [&](std::size_t b, std::size_t e, std::size_t) {
          for (std::size_t i = b; i < e; ++i)
            nn_[i] = kd_->query_point(static_cast<NodeId>(i), k_);
        });
  }
  finalize_graph();
  return graph_;
}

std::vector<NodeId> IncrementalKnnGraph::affected_points(
    const std::vector<NodeId>& ids, const Matrix& rows) const {
  const std::size_t n = metric_.rows();
  std::vector<char> is_dirty(n, 0);
  for (NodeId id : ids) is_dirty[id] = 1;

  // Exact existence index over the dirty points' NEW positions; this stays
  // a kd-tree even under the HNSW backend — the affected set must never
  // miss a point whose neighborhood could have changed.
  KdTree dirty_tree(rows);

  std::vector<char> affected(n, 0);
  util::parallel_for_chunks(
      0, n, kGrain, opt_.knn.num_threads,
      [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t i = b; i < e; ++i) {
          if (is_dirty[i]) {
            affected[i] = 1;
            continue;
          }
          // (a) an old neighbor moved.
          bool hit = false;
          for (NodeId nb : nn_[i].index)
            if (is_dirty[nb]) {
              hit = true;
              break;
            }
          if (!hit && k_ > 0) {
            if (nn_[i].dist2.size() < k_) {
              // Short list (HNSW recall miss): no reliable kth radius —
              // treat as affected whenever anything moved at all.
              hit = true;
            } else {
              // (b) a dirty point's new position entered i's kth-NN ball
              // (inclusive: ties must re-query to stay canonical).
              hit = dirty_tree.any_within(metric_.row(i),
                                          nn_[i].dist2.back());
            }
          }
          affected[i] = hit ? 1 : 0;
        }
      });

  std::vector<NodeId> out;
  for (std::size_t i = 0; i < n; ++i)
    if (affected[i]) out.push_back(static_cast<NodeId>(i));
  return out;
}

const CsrGraph& IncrementalKnnGraph::update(const std::vector<NodeId>& ids,
                                            const Matrix& rows,
                                            KnnUpdateStats* stats) {
  if (!built())
    throw std::logic_error("IncrementalKnnGraph::update before rebuild");
  const std::size_t n = metric_.rows();
  if (rows.rows() != ids.size() ||
      (rows.rows() > 0 && rows.cols() != metric_.cols()))
    throw std::invalid_argument("IncrementalKnnGraph::update: shape mismatch");
  if (!std::is_sorted(ids.begin(), ids.end()) ||
      std::adjacent_find(ids.begin(), ids.end()) != ids.end())
    throw std::invalid_argument(
        "IncrementalKnnGraph::update: ids must be sorted and unique");
  if (!ids.empty() && ids.back() >= n)
    throw std::out_of_range("IncrementalKnnGraph::update: id out of range");
  if (stats) *stats = KnnUpdateStats{};
  if (ids.empty() || n == 0) return graph_;

  // The affected set is decided against the OLD lists/radii and the NEW
  // dirty positions, before anything mutates.
  const std::vector<NodeId> affected = affected_points(ids, rows);

  for (std::size_t t = 0; t < ids.size(); ++t)
    for (std::size_t c = 0; c < metric_.cols(); ++c)
      metric_(ids[t], c) = rows(t, c);
  if (opt_.use_hnsw) {
    hnsw_->update_points(ids, rows);
    util::parallel_for_chunks(
        0, affected.size(), kGrain, opt_.knn.num_threads,
        [&](std::size_t b, std::size_t e, std::size_t) {
          HnswIndex::SearchScratch scratch;
          for (std::size_t t = b; t < e; ++t)
            nn_[affected[t]] = hnsw_->query_point(affected[t], k_, scratch);
        });
  } else {
    kd_->update_points(ids, rows);
    util::parallel_for_chunks(
        0, affected.size(), kGrain, opt_.knn.num_threads,
        [&](std::size_t b, std::size_t e, std::size_t) {
          for (std::size_t t = b; t < e; ++t)
            nn_[affected[t]] = kd_->query_point(affected[t], k_);
        });
  }
  finalize_graph();
  if (stats) {
    stats->dirty = ids.size();
    stats->requeried = affected.size();
  }
  return graph_;
}

}  // namespace sgm::graph
