#include "graph/laplacian.hpp"

#include <cmath>
#include <stdexcept>

namespace sgm::graph {

void laplacian_apply(const CsrGraph& g, const Vec& x, Vec& y) {
  const std::size_t n = g.num_nodes();
  if (x.size() != n) throw std::invalid_argument("laplacian_apply: size");
  y.assign(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    const auto eids = g.incident_edges(u);
    double acc = g.weighted_degree(u) * x[u];
    for (std::size_t t = 0; t < nbrs.size(); ++t)
      acc -= g.edge(eids[t]).w * x[nbrs[t]];
    y[u] = acc;
  }
}

Vec laplacian_diagonal(const CsrGraph& g) {
  Vec d(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) d[u] = g.weighted_degree(u);
  return d;
}

tensor::Matrix laplacian_dense(const CsrGraph& g) {
  const std::size_t n = g.num_nodes();
  tensor::Matrix l(n, n);
  for (const auto& e : g.edges()) {
    l(e.u, e.u) += e.w;
    l(e.v, e.v) += e.w;
    l(e.u, e.v) -= e.w;
    l(e.v, e.u) -= e.w;
  }
  return l;
}

void deflate_constant(Vec& x) {
  if (x.empty()) return;
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  for (double& v : x) v -= mean;
}

double dot(const Vec& a, const Vec& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vec& a) { return std::sqrt(dot(a, a)); }

}  // namespace sgm::graph
