#include "graph/effective_resistance.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/lanczos.hpp"
#include "graph/pcg.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sgm::graph {

using tensor::Matrix;

namespace {

Matrix exact_embedding(const CsrGraph& g) {
  const std::size_t n = g.num_nodes();
  EigenPairs eig = jacobi_eigensymm(laplacian_dense(g));
  // Skip (near-)zero eigenvalues — the constant nullspace contributes
  // nothing to e_uv^T L^+ e_uv.
  const double cutoff = 1e-9 * std::max(1.0, std::fabs(eig.values.back()));
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < eig.values.size(); ++i)
    if (eig.values[i] > cutoff) keep.push_back(i);
  Matrix z(n, keep.size());
  for (std::size_t c = 0; c < keep.size(); ++c) {
    const double s = 1.0 / std::sqrt(eig.values[keep[c]]);
    for (std::size_t r = 0; r < n; ++r)
      z(r, c) = eig.vectors(r, keep[c]) * s;
  }
  return z;
}

// Spielman–Srivastava sketch: row u of Z is [z_1[u], ..., z_t[u]] where
// z_i solves L z_i = B^T W^{1/2} q_i / sqrt(t) for random +-1 q_i over edges.
Matrix jl_embedding(const CsrGraph& g, const ErOptions& opt) {
  const std::size_t n = g.num_nodes();
  const int t = std::max(1, opt.num_vectors);
  util::Rng rng(opt.seed);
  Matrix z(n, t);
  PcgOptions pcg;
  pcg.rel_tol = opt.cg_rel_tol;
  pcg.max_iterations = opt.cg_max_iterations;
  const double inv_sqrt_t = 1.0 / std::sqrt(static_cast<double>(t));
  // Draw every sketch vector serially first — the rng stream is consumed in
  // the same order for any thread count — then run the independent (and
  // dominant) Laplacian solves on the pool.
  std::vector<Vec> sketches(static_cast<std::size_t>(t), Vec(n, 0.0));
  for (int col = 0; col < t; ++col) {
    Vec& b = sketches[static_cast<std::size_t>(col)];
    for (const auto& e : g.edges()) {
      const double val = rng.rademacher() * std::sqrt(e.w) * inv_sqrt_t;
      b[e.u] += val;
      b[e.v] -= val;
    }
  }
  util::parallel_for_chunks(
      0, static_cast<std::size_t>(t), 1, opt.num_threads,
      [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t col = b; col < e; ++col) {
          PcgResult sol = pcg_solve_laplacian(g, sketches[col], pcg);
          for (std::size_t r = 0; r < n; ++r) z(r, col) = sol.x[r];
        }
      });
  return z;
}

// HyperEF-style smoothed random embedding: random vectors smoothed by
// damped Richardson iteration x <- x - sigma * L x with sigma chosen from
// the spectral bound lambda_max(L) <= 2 * max weighted degree. Richardson
// (rather than degree-normalized Jacobi) is essential here: it damps each
// Laplacian mode at a rate proportional to its *global* eigenvalue, so the
// slow modes across weak cuts — which carry the high-effective-resistance
// signal — survive the smoothing while high-frequency content dies.
Matrix smoothed_embedding(const CsrGraph& g, const ErOptions& opt) {
  const std::size_t n = g.num_nodes();
  const int t = std::max(1, opt.num_vectors);
  util::Rng rng(opt.seed);
  Matrix z(n, t);
  double d_max = 0.0;
  for (NodeId u = 0; u < n; ++u)
    d_max = std::max(d_max, g.weighted_degree(u));
  if (d_max <= 0.0) d_max = 1.0;
  const double sigma = (2.0 / 3.0) / (2.0 * d_max);
  // Random initial vectors are drawn serially (identical rng stream for any
  // thread count); the Richardson sweeps — the expensive part — then run
  // per column on the pool, each with its own workspace.
  std::vector<Vec> init(static_cast<std::size_t>(t), Vec(n));
  for (int col = 0; col < t; ++col) {
    Vec& x = init[static_cast<std::size_t>(col)];
    for (auto& v : x) v = rng.uniform(-0.5, 0.5);
    deflate_constant(x);
  }
  const double s = 1.0 / std::sqrt(static_cast<double>(t));
  util::parallel_for_chunks(
      0, static_cast<std::size_t>(t), 1, opt.num_threads,
      [&](std::size_t b, std::size_t e, std::size_t) {
        Vec y(n);
        for (std::size_t col = b; col < e; ++col) {
          Vec& x = init[col];
          for (int it = 0; it < opt.smoothing_iterations; ++it) {
            laplacian_apply(g, x, y);
            for (std::size_t i = 0; i < n; ++i) x[i] -= sigma * y[i];
            deflate_constant(x);
          }
          for (std::size_t r = 0; r < n; ++r) z(r, col) = x[r] * s;
        }
      });
  return z;
}

}  // namespace

Matrix effective_resistance_embedding(const CsrGraph& g,
                                      const ErOptions& options) {
  if (g.num_nodes() == 0) return Matrix();
  switch (options.method) {
    case ErMethod::kExact: return exact_embedding(g);
    case ErMethod::kJlSolve: return jl_embedding(g, options);
    case ErMethod::kSmoothed: return smoothed_embedding(g, options);
  }
  throw std::logic_error("effective_resistance_embedding: bad method");
}

double er_from_embedding(const Matrix& z, NodeId u, NodeId v) {
  double s = 0.0;
  const double* zu = z.row(u);
  const double* zv = z.row(v);
  for (std::size_t c = 0; c < z.cols(); ++c) {
    const double d = zu[c] - zv[c];
    s += d * d;
  }
  return s;
}

std::vector<double> edge_effective_resistance(const CsrGraph& g,
                                              const Matrix& z,
                                              std::size_t num_threads) {
  std::vector<double> er(g.num_edges());
  util::parallel_for(0, g.num_edges(), num_threads, [&](std::size_t e) {
    const EdgeId id = static_cast<EdgeId>(e);
    er[e] = er_from_embedding(z, g.edge(id).u, g.edge(id).v);
  });
  return er;
}

double exact_effective_resistance(const CsrGraph& g, NodeId u, NodeId v) {
  Matrix z = exact_embedding(g);
  return er_from_embedding(z, u, v);
}

// ------------------------------------------------- IncrementalErEngine ----

namespace {

inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Order-independent per-edge Rademacher sign: a pure function of
/// (seed, column, u, v), so inserting or removing other edges never shifts
/// the signs of the survivors — the property the warm-started JL path needs.
inline double rademacher_hash(std::uint64_t seed, int col, NodeId u,
                              NodeId v) {
  std::uint64_t h = splitmix64(seed);
  h = splitmix64(h ^ static_cast<std::uint64_t>(col));
  h = splitmix64(h ^ (static_cast<std::uint64_t>(u) << 32 |
                      static_cast<std::uint64_t>(v)));
  return (h >> 63) ? 1.0 : -1.0;
}

/// Depth-limited BFS from `seeds` over the union of two adjacencies.
/// Returns the visited nodes (sorted) and, aligned, their depths.
void union_ball(const CsrGraph& a, const CsrGraph& b,
                const std::vector<NodeId>& seeds, int max_depth,
                std::vector<NodeId>* nodes, std::vector<int>* depth_out) {
  const std::size_t n = a.num_nodes();
  std::vector<int> depth(n, -1);
  std::vector<NodeId> frontier;
  for (NodeId s : seeds)
    if (s < n && depth[s] < 0) {
      depth[s] = 0;
      frontier.push_back(s);
    }
  for (int d = 0; d < max_depth && !frontier.empty(); ++d) {
    std::vector<NodeId> next;
    for (NodeId u : frontier) {
      for (NodeId v : a.neighbors(u))
        if (depth[v] < 0) {
          depth[v] = d + 1;
          next.push_back(v);
        }
      if (b.num_nodes() == n)
        for (NodeId v : b.neighbors(u))
          if (depth[v] < 0) {
            depth[v] = d + 1;
            next.push_back(v);
          }
    }
    frontier.swap(next);
  }
  nodes->clear();
  depth_out->clear();
  for (NodeId v = 0; v < n; ++v)
    if (depth[v] >= 0) {
      nodes->push_back(v);
      depth_out->push_back(depth[v]);
    }
}

}  // namespace

IncrementalErEngine::IncrementalErEngine(ErOptions options)
    : opt_(std::move(options)) {}

const std::vector<std::vector<double>>& IncrementalErEngine::cached_init(
    std::size_t n) {
  // Serial draws in a fixed order: the same (seed, n, t) always regenerates
  // the identical initial vectors, which is what lets localized updates
  // splice against cached values bit-for-bit — and what makes caching the
  // block across refreshes safe.
  const int t = std::max(1, opt_.num_vectors);
  if (init_cache_n_ == n &&
      init_cache_.size() == static_cast<std::size_t>(t))
    return init_cache_;
  util::Rng rng(opt_.seed);
  init_cache_.assign(static_cast<std::size_t>(t), std::vector<double>(n));
  for (auto& x : init_cache_) {
    for (auto& v : x) v = rng.uniform(-0.5, 0.5);
    deflate_constant(x);
  }
  init_cache_n_ = n;
  return init_cache_;
}

void IncrementalErEngine::smoothed_full(const CsrGraph& g) {
  const std::size_t n = g.num_nodes();
  const int t = std::max(1, opt_.num_vectors);
  double d_max = 0.0;
  for (NodeId u = 0; u < n; ++u)
    d_max = std::max(d_max, g.weighted_degree(u));
  if (d_max <= 0.0) d_max = 1.0;
  d_max_seen_ = std::max(d_max_seen_, d_max);
  sigma_pin_ = (2.0 / 3.0) / (2.0 * d_max_seen_);

  const std::vector<Vec>& init = cached_init(n);
  z_ = Matrix(n, static_cast<std::size_t>(t));
  const double s = 1.0 / std::sqrt(static_cast<double>(t));
  const double sigma = sigma_pin_;
  util::parallel_for_chunks(
      0, static_cast<std::size_t>(t), 1, opt_.num_threads,
      [&](std::size_t b, std::size_t e, std::size_t) {
        Vec y(n);
        for (std::size_t col = b; col < e; ++col) {
          Vec x = init[col];  // working copy; the cache is reused
          for (int it = 0; it < opt_.smoothing_iterations; ++it) {
            laplacian_apply(g, x, y);
            for (std::size_t i = 0; i < n; ++i) x[i] -= sigma * y[i];
          }
          for (std::size_t r = 0; r < n; ++r) z_(r, col) = x[r] * s;
        }
      });
}

void IncrementalErEngine::smoothed_localized(const CsrGraph& g,
                                             const std::vector<NodeId>& commit,
                                             const std::vector<NodeId>& swept) {
  const std::size_t n = g.num_nodes();
  const int t = std::max(1, opt_.num_vectors);
  const std::vector<Vec>& init = cached_init(n);
  const double s = 1.0 / std::sqrt(static_cast<double>(t));
  const double sigma = sigma_pin_;
  util::parallel_for_chunks(
      0, static_cast<std::size_t>(t), 1, opt_.num_threads,
      [&](std::size_t b, std::size_t e, std::size_t) {
        Vec y(swept.size());
        for (std::size_t col = b; col < e; ++col) {
          Vec x = init[col];  // working copy; the cache is reused
          for (int it = 0; it < opt_.smoothing_iterations; ++it) {
            // Per-node arithmetic replicates laplacian_apply exactly
            // (weighted-degree term first, then neighbors in CSR order), so
            // the committed core is bit-identical to a full sweep.
            for (std::size_t idx = 0; idx < swept.size(); ++idx) {
              const NodeId u = swept[idx];
              const auto nbrs = g.neighbors(u);
              const auto eids = g.incident_edges(u);
              double acc = g.weighted_degree(u) * x[u];
              for (std::size_t a = 0; a < nbrs.size(); ++a)
                acc -= g.edge(eids[a]).w * x[nbrs[a]];
              y[idx] = acc;
            }
            for (std::size_t idx = 0; idx < swept.size(); ++idx)
              x[swept[idx]] -= sigma * y[idx];
          }
          for (NodeId v : commit) z_(v, col) = x[v] * s;
        }
      });
}

void IncrementalErEngine::jl_solve(const CsrGraph& g, bool warm_start,
                                   ErUpdateStats* stats) {
  const std::size_t n = g.num_nodes();
  const int t = std::max(1, opt_.num_vectors);
  PcgOptions pcg;
  pcg.rel_tol = opt_.cg_rel_tol;
  pcg.max_iterations = opt_.cg_max_iterations;
  const double inv_sqrt_t = 1.0 / std::sqrt(static_cast<double>(t));
  const bool warm = warm_start && z_.rows() == n &&
                    z_.cols() == static_cast<std::size_t>(t);
  Matrix z_new(n, static_cast<std::size_t>(t));
  std::vector<int> col_iters(static_cast<std::size_t>(t), 0);
  util::parallel_for_chunks(
      0, static_cast<std::size_t>(t), 1, opt_.num_threads,
      [&](std::size_t b, std::size_t e, std::size_t) {
        Vec bvec(n), x0(n);
        for (std::size_t col = b; col < e; ++col) {
          std::fill(bvec.begin(), bvec.end(), 0.0);
          for (const auto& edge : g.edges()) {
            const double val =
                rademacher_hash(opt_.seed, static_cast<int>(col), edge.u,
                                edge.v) *
                std::sqrt(edge.w) * inv_sqrt_t;
            bvec[edge.u] += val;
            bvec[edge.v] -= val;
          }
          const Vec* start = nullptr;
          if (warm) {
            for (std::size_t r = 0; r < n; ++r) x0[r] = z_(r, col);
            start = &x0;
          }
          PcgResult sol = pcg_solve_laplacian(g, bvec, pcg, start);
          for (std::size_t r = 0; r < n; ++r) z_new(r, col) = sol.x[r];
          col_iters[col] = sol.iterations;
        }
      });
  z_ = std::move(z_new);
  if (stats) {
    for (int it : col_iters) {
      stats->pcg_iterations += static_cast<std::size_t>(it);
      if (it > 0) ++stats->columns_resolved;
    }
  }
}

const Matrix& IncrementalErEngine::rebuild(const CsrGraph& g) {
  if (g.num_nodes() == 0) {
    z_ = Matrix();
    return z_;
  }
  switch (opt_.method) {
    case ErMethod::kExact:
      z_ = effective_resistance_embedding(g, opt_);
      break;
    case ErMethod::kJlSolve:
      jl_solve(g, /*warm_start=*/false, nullptr);
      break;
    case ErMethod::kSmoothed:
      smoothed_full(g);
      break;
  }
  return z_;
}

const Matrix& IncrementalErEngine::update(
    const CsrGraph& g, const CsrGraph& prev,
    const std::vector<NodeId>& changed_nodes, ErUpdateStats* stats) {
  if (stats) {
    *stats = ErUpdateStats{};
    stats->changed_nodes = changed_nodes.size();
  }
  const std::size_t n = g.num_nodes();
  const int t = std::max(1, opt_.num_vectors);
  const bool shape_ok =
      z_.rows() == n && z_.cols() == static_cast<std::size_t>(t) &&
      prev.num_nodes() == n;
  if (n == 0 || !shape_ok || opt_.method == ErMethod::kExact) {
    if (stats) stats->full_recompute = true;
    return rebuild(g);
  }
  if (changed_nodes.empty()) return z_;  // identical graph: nothing to do

  if (opt_.method == ErMethod::kJlSolve) {
    jl_solve(g, /*warm_start=*/true, stats);
    return z_;
  }

  // kSmoothed. A grown max degree would unpin the Richardson step size —
  // recompute everything under the new pin.
  double d_max = 0.0;
  for (NodeId u = 0; u < n; ++u)
    d_max = std::max(d_max, g.weighted_degree(u));
  if (d_max > d_max_seen_) {
    if (stats) stats->full_recompute = true;
    smoothed_full(g);
    return z_;
  }
  const int sweeps = std::max(1, opt_.smoothing_iterations);
  std::vector<NodeId> ball;
  std::vector<int> depth;
  union_ball(g, prev, changed_nodes, 2 * sweeps, &ball, &depth);
  if (stats) stats->region_nodes = ball.size();
  if (static_cast<double>(ball.size()) >
      opt_.incremental_region_fraction * static_cast<double>(n)) {
    if (stats) stats->full_recompute = true;
    smoothed_full(g);
    return z_;
  }
  std::vector<NodeId> commit;
  for (std::size_t i = 0; i < ball.size(); ++i)
    if (depth[i] <= sweeps) commit.push_back(ball[i]);
  smoothed_localized(g, commit, ball);
  return z_;
}

}  // namespace sgm::graph
