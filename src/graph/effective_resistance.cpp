#include "graph/effective_resistance.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/lanczos.hpp"
#include "graph/pcg.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sgm::graph {

using tensor::Matrix;

namespace {

Matrix exact_embedding(const CsrGraph& g) {
  const std::size_t n = g.num_nodes();
  EigenPairs eig = jacobi_eigensymm(laplacian_dense(g));
  // Skip (near-)zero eigenvalues — the constant nullspace contributes
  // nothing to e_uv^T L^+ e_uv.
  const double cutoff = 1e-9 * std::max(1.0, std::fabs(eig.values.back()));
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < eig.values.size(); ++i)
    if (eig.values[i] > cutoff) keep.push_back(i);
  Matrix z(n, keep.size());
  for (std::size_t c = 0; c < keep.size(); ++c) {
    const double s = 1.0 / std::sqrt(eig.values[keep[c]]);
    for (std::size_t r = 0; r < n; ++r)
      z(r, c) = eig.vectors(r, keep[c]) * s;
  }
  return z;
}

// Spielman–Srivastava sketch: row u of Z is [z_1[u], ..., z_t[u]] where
// z_i solves L z_i = B^T W^{1/2} q_i / sqrt(t) for random +-1 q_i over edges.
Matrix jl_embedding(const CsrGraph& g, const ErOptions& opt) {
  const std::size_t n = g.num_nodes();
  const int t = std::max(1, opt.num_vectors);
  util::Rng rng(opt.seed);
  Matrix z(n, t);
  PcgOptions pcg;
  pcg.rel_tol = opt.cg_rel_tol;
  pcg.max_iterations = opt.cg_max_iterations;
  const double inv_sqrt_t = 1.0 / std::sqrt(static_cast<double>(t));
  // Draw every sketch vector serially first — the rng stream is consumed in
  // the same order for any thread count — then run the independent (and
  // dominant) Laplacian solves on the pool.
  std::vector<Vec> sketches(static_cast<std::size_t>(t), Vec(n, 0.0));
  for (int col = 0; col < t; ++col) {
    Vec& b = sketches[static_cast<std::size_t>(col)];
    for (const auto& e : g.edges()) {
      const double val = rng.rademacher() * std::sqrt(e.w) * inv_sqrt_t;
      b[e.u] += val;
      b[e.v] -= val;
    }
  }
  util::parallel_for_chunks(
      0, static_cast<std::size_t>(t), 1, opt.num_threads,
      [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t col = b; col < e; ++col) {
          PcgResult sol = pcg_solve_laplacian(g, sketches[col], pcg);
          for (std::size_t r = 0; r < n; ++r) z(r, col) = sol.x[r];
        }
      });
  return z;
}

// HyperEF-style smoothed random embedding: random vectors smoothed by
// damped Richardson iteration x <- x - sigma * L x with sigma chosen from
// the spectral bound lambda_max(L) <= 2 * max weighted degree. Richardson
// (rather than degree-normalized Jacobi) is essential here: it damps each
// Laplacian mode at a rate proportional to its *global* eigenvalue, so the
// slow modes across weak cuts — which carry the high-effective-resistance
// signal — survive the smoothing while high-frequency content dies.
Matrix smoothed_embedding(const CsrGraph& g, const ErOptions& opt) {
  const std::size_t n = g.num_nodes();
  const int t = std::max(1, opt.num_vectors);
  util::Rng rng(opt.seed);
  Matrix z(n, t);
  double d_max = 0.0;
  for (NodeId u = 0; u < n; ++u)
    d_max = std::max(d_max, g.weighted_degree(u));
  if (d_max <= 0.0) d_max = 1.0;
  const double sigma = (2.0 / 3.0) / (2.0 * d_max);
  // Random initial vectors are drawn serially (identical rng stream for any
  // thread count); the Richardson sweeps — the expensive part — then run
  // per column on the pool, each with its own workspace.
  std::vector<Vec> init(static_cast<std::size_t>(t), Vec(n));
  for (int col = 0; col < t; ++col) {
    Vec& x = init[static_cast<std::size_t>(col)];
    for (auto& v : x) v = rng.uniform(-0.5, 0.5);
    deflate_constant(x);
  }
  const double s = 1.0 / std::sqrt(static_cast<double>(t));
  util::parallel_for_chunks(
      0, static_cast<std::size_t>(t), 1, opt.num_threads,
      [&](std::size_t b, std::size_t e, std::size_t) {
        Vec y(n);
        for (std::size_t col = b; col < e; ++col) {
          Vec& x = init[col];
          for (int it = 0; it < opt.smoothing_iterations; ++it) {
            laplacian_apply(g, x, y);
            for (std::size_t i = 0; i < n; ++i) x[i] -= sigma * y[i];
            deflate_constant(x);
          }
          for (std::size_t r = 0; r < n; ++r) z(r, col) = x[r] * s;
        }
      });
  return z;
}

}  // namespace

Matrix effective_resistance_embedding(const CsrGraph& g,
                                      const ErOptions& options) {
  if (g.num_nodes() == 0) return Matrix();
  switch (options.method) {
    case ErMethod::kExact: return exact_embedding(g);
    case ErMethod::kJlSolve: return jl_embedding(g, options);
    case ErMethod::kSmoothed: return smoothed_embedding(g, options);
  }
  throw std::logic_error("effective_resistance_embedding: bad method");
}

double er_from_embedding(const Matrix& z, NodeId u, NodeId v) {
  double s = 0.0;
  const double* zu = z.row(u);
  const double* zv = z.row(v);
  for (std::size_t c = 0; c < z.cols(); ++c) {
    const double d = zu[c] - zv[c];
    s += d * d;
  }
  return s;
}

std::vector<double> edge_effective_resistance(const CsrGraph& g,
                                              const Matrix& z,
                                              std::size_t num_threads) {
  std::vector<double> er(g.num_edges());
  util::parallel_for(0, g.num_edges(), num_threads, [&](std::size_t e) {
    const EdgeId id = static_cast<EdgeId>(e);
    er[e] = er_from_embedding(z, g.edge(id).u, g.edge(id).v);
  });
  return er;
}

double exact_effective_resistance(const CsrGraph& g, NodeId u, NodeId v) {
  Matrix z = exact_embedding(g);
  return er_from_embedding(z, u, v);
}

}  // namespace sgm::graph
