#pragma once
// Weighted undirected graph in compressed-sparse-row form.
//
// The graph is the probabilistic graphical model (PGM) of the paper: nodes
// are collocation points, edge weights encode conditional dependence
// (inverse distance on the kNN graph). Unique edges are stored once
// (u < v); the CSR adjacency references edges by index so per-edge
// quantities (effective resistance, ISR scores) live in plain arrays.

#include <cstdint>
#include <span>
#include <vector>

namespace sgm::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  double w = 1.0;
};

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from an edge list over `num_nodes` nodes. Self-loops are
  /// dropped; duplicate (u,v) pairs have their weights summed. Weights must
  /// be positive.
  static CsrGraph from_edges(NodeId num_nodes, std::vector<Edge> edges);

  NodeId num_nodes() const { return num_nodes_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  const std::vector<Edge>& edges() const { return edges_; }
  const Edge& edge(EdgeId e) const { return edges_[e]; }

  /// Neighbor node ids of `u`.
  std::span<const NodeId> neighbors(NodeId u) const {
    return {nbr_.data() + offsets_[u], nbr_.data() + offsets_[u + 1]};
  }
  /// Edge ids incident to `u`, aligned with neighbors(u).
  std::span<const EdgeId> incident_edges(NodeId u) const {
    return {inc_.data() + offsets_[u], inc_.data() + offsets_[u + 1]};
  }

  std::size_t degree(NodeId u) const { return offsets_[u + 1] - offsets_[u]; }
  double weighted_degree(NodeId u) const { return wdeg_[u]; }

  double average_degree() const;
  double total_weight() const;

  /// Component label per node (0-based) and the number of components.
  std::pair<std::vector<NodeId>, NodeId> connected_components() const;

  /// True when every node is reachable from node 0 (or the graph is empty).
  bool is_connected() const;

  /// Heavy invariant sweep (SGM_CHECK-based; see util/check.hpp): canonical
  /// u < v sorted unique edge list with positive weights, consistent CSR
  /// offsets/adjacency, symmetric neighbor lists (v in N(u) iff u in N(v),
  /// through the same edge id), and weighted degrees that match the edge
  /// list. Throws util::CheckError on the first violation. from_edges runs
  /// it automatically when SGM_AUDIT=1; tier-1 tests call it directly.
  void audit() const;

 private:
  NodeId num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::size_t> offsets_;  // n+1
  std::vector<NodeId> nbr_;
  std::vector<EdgeId> inc_;
  std::vector<double> wdeg_;
};

/// The raw-array form of CsrGraph::audit(), so tests can exercise the audit
/// on deliberately malformed structures (from_edges never produces one).
void audit_csr_arrays(NodeId num_nodes, const std::vector<Edge>& edges,
                      const std::vector<std::size_t>& offsets,
                      const std::vector<NodeId>& nbr,
                      const std::vector<EdgeId>& inc,
                      const std::vector<double>& wdeg);

}  // namespace sgm::graph
