#include "graph/lrd.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace sgm::graph {

std::vector<std::vector<NodeId>> Clustering::members() const {
  std::vector<std::vector<NodeId>> m(num_clusters);
  for (NodeId v = 0; v < node_cluster.size(); ++v)
    m[node_cluster[v]].push_back(v);
  return m;
}

std::vector<std::uint32_t> Clustering::sizes() const {
  std::vector<std::uint32_t> s(num_clusters, 0);
  for (NodeId c : node_cluster) ++s[c];
  return s;
}

namespace {

/// Union-find with per-root resistance-diameter bound and size.
struct MergeForest {
  std::vector<NodeId> parent;
  std::vector<NodeId> rank;
  std::vector<double> diameter;
  std::vector<std::uint32_t> size;

  explicit MergeForest(NodeId n)
      : parent(n), rank(n, 0), diameter(n, 0.0), size(n, 1) {
    std::iota(parent.begin(), parent.end(), NodeId{0});
  }

  NodeId find(NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }

  /// Merge roots a, b across an edge of resistance `er`; the caller has
  /// already verified the budget.
  void unite(NodeId a, NodeId b, double er) {
    const double d = diameter[a] + diameter[b] + er;
    const std::uint32_t s = size[a] + size[b];
    if (rank[a] < rank[b]) std::swap(a, b);
    parent[b] = a;
    if (rank[a] == rank[b]) ++rank[a];
    diameter[a] = d;
    size[a] = s;
  }
};

}  // namespace

Clustering lrd_decompose_with_embedding(const CsrGraph& g,
                                        const tensor::Matrix& embedding,
                                        const LrdOptions& options) {
  const NodeId n = g.num_nodes();
  Clustering out;
  if (n == 0) return out;
  if (options.levels < 1)
    throw std::invalid_argument("lrd_decompose: levels must be >= 1");

  std::vector<double> er = edge_effective_resistance(
      g, embedding,
      options.num_threads ? options.num_threads : options.er.num_threads);

  // Edges sorted ascending by estimated ER: strongest conditional
  // dependence first.
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::sort(order.begin(), order.end(),
            [&](EdgeId a, EdgeId b) { return er[a] < er[b]; });

  double mean_er = 0.0;
  for (double r : er) mean_er += r;
  if (!er.empty()) mean_er /= static_cast<double>(er.size());

  const double budget =
      options.diameter_budget > 0.0
          ? options.diameter_budget
          : options.budget_scale * mean_er * static_cast<double>(options.levels);

  MergeForest forest(n);

  // Level l admits edges up to the (l/levels)-quantile of the ER order and
  // up to a proportional share of the final diameter budget. Later levels
  // therefore coarsen progressively, mirroring HyperEF's level loop.
  const std::size_t m = order.size();
  for (int level = 1; level <= options.levels; ++level) {
    const std::size_t hi =
        (m * static_cast<std::size_t>(level)) /
        static_cast<std::size_t>(options.levels);
    const double level_budget =
        budget * static_cast<double>(level) / options.levels;
    for (std::size_t t = 0; t < hi; ++t) {
      const EdgeId e = order[t];
      NodeId ra = forest.find(g.edge(e).u);
      NodeId rb = forest.find(g.edge(e).v);
      if (ra == rb) continue;
      if (forest.diameter[ra] + forest.diameter[rb] + er[e] > level_budget)
        continue;
      if (options.max_cluster_size > 0 &&
          forest.size[ra] + forest.size[rb] > options.max_cluster_size)
        continue;
      forest.unite(ra, rb, er[e]);
    }
  }

  // Compact root ids to [0, num_clusters).
  out.node_cluster.assign(n, 0);
  std::vector<NodeId> root_to_cluster(n, n);
  NodeId next = 0;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId r = forest.find(v);
    if (root_to_cluster[r] == n) {
      root_to_cluster[r] = next++;
      out.cluster_diameter.push_back(forest.diameter[r]);
    }
    out.node_cluster[v] = root_to_cluster[r];
  }
  out.num_clusters = next;
  return out;
}

Clustering lrd_decompose(const CsrGraph& g, const LrdOptions& options) {
  ErOptions er = options.er;
  if (options.num_threads) er.num_threads = options.num_threads;
  const tensor::Matrix z = effective_resistance_embedding(g, er);
  return lrd_decompose_with_embedding(g, z, options);
}

}  // namespace sgm::graph
