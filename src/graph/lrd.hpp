#pragma once
// Low-resistance-diameter (LRD) decomposition — stage S2 of SGM-PINN.
//
// Partitions the PGM into clusters whose effective-resistance diameter is
// bounded, so each cluster groups only strongly conditionally-dependent
// samples (Alev, Anari, Lau & Oveis Gharan, ITCS 2018 prove such partitions
// exist with diameter O(1/avg-degree) after removing a constant edge
// fraction). The implementation follows the HyperEF (ICCAD 2022) shape the
// paper builds on: L levels of contraction, each level merging the lowest-
// effective-resistance edges first, subject to a per-cluster resistance-
// diameter budget tracked through the merge tree:
//     diam(C1 ∪ C2) <= diam(C1) + diam(C2) + R(e).

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/effective_resistance.hpp"

namespace sgm::graph {

struct LrdOptions {
  /// Number of contraction levels (the paper's hyperparameter "L";
  /// LDC uses 10, the annular ring uses 6). More levels = coarser clusters.
  int levels = 10;
  /// Resistance-diameter budget per cluster. <= 0 selects the automatic
  /// budget: budget_scale * (average edge ER) * levels.
  double diameter_budget = 0.0;
  double budget_scale = 1.0;
  /// Hard cap on cluster size (0 = none). Guards against degenerate giant
  /// clusters on highly irregular clouds.
  std::size_t max_cluster_size = 0;
  ErOptions er;  ///< effective-resistance estimator configuration
  /// Worker threads for the ER embedding and per-edge ER evaluation (the
  /// union-find merge loop itself is inherently sequential). Nonzero
  /// overrides er.num_threads; 0 defers to it. Any value produces an
  /// identical clustering for a fixed er.seed.
  std::size_t num_threads = 0;
};

struct Clustering {
  /// cluster id per node, in [0, num_clusters).
  std::vector<NodeId> node_cluster;
  NodeId num_clusters = 0;
  /// Upper bound on the effective-resistance diameter of each cluster.
  std::vector<double> cluster_diameter;

  /// Member lists (computed on demand from node_cluster).
  std::vector<std::vector<NodeId>> members() const;
  /// Cluster sizes.
  std::vector<std::uint32_t> sizes() const;
};

/// Decomposes `g` into LRD clusters. Deterministic for a fixed seed in
/// `options.er`.
Clustering lrd_decompose(const CsrGraph& g, const LrdOptions& options);

/// Decompose using a precomputed ER embedding (lets callers reuse one
/// embedding across LRD and diagnostics).
Clustering lrd_decompose_with_embedding(const CsrGraph& g,
                                        const tensor::Matrix& embedding,
                                        const LrdOptions& options);

}  // namespace sgm::graph
