#pragma once
// Incrementally-maintained kNN PGM — the S1 half of the incremental refresh
// engine (see docs/ARCHITECTURE.md, "Incremental refresh").
//
// The engine caches every point's kNN result between refreshes. When a
// refresh moves only a subset of points (the *dirty* set — in SGM-PINN the
// points whose model-output features drifted), only the points whose kNN
// result could actually have changed are re-queried:
//
//   affected(D) = D                                  (they moved)
//             ∪ { i : knn_old(i) ∩ D ≠ ∅ }           (a neighbor moved away)
//             ∪ { i : min_{j∈D} d_new(i,j) ≤ r_i }   (a point moved into
//                                                     i's kth-NN ball)
//
// The third set is found with an exact kd-tree over just the dirty points'
// new positions (an any-within-radius existence query per clean point).
// For the exact kd backend this set is *provably complete*: every other
// point's candidate multiset within its old kth-NN radius is unchanged, and
// kNN selection breaks ties canonically on (distance, index), so splicing
// cached results next to fresh queries reproduces the full rebuild
// bit-for-bit. For the HNSW backend the same affected set is re-queried
// against the in-place-mutated index (HnswIndex::update_points); the result
// is deterministic but — like HNSW itself — approximate.

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/csr.hpp"
#include "graph/hnsw.hpp"
#include "graph/knn.hpp"
#include "tensor/matrix.hpp"

namespace sgm::graph {

struct IncrementalKnnOptions {
  KnnGraphOptions knn{};
  bool use_hnsw = false;  ///< kd-tree (exact) when false
  HnswOptions hnsw{};
};

struct KnnUpdateStats {
  std::size_t dirty = 0;      ///< points whose rows changed
  std::size_t requeried = 0;  ///< points whose kNN lists were recomputed
};

class IncrementalKnnGraph {
 public:
  explicit IncrementalKnnGraph(IncrementalKnnOptions options);

  /// Full (re)build over `metric` (copied). The resulting graph is
  /// bit-identical to build_knn_graph / build_knn_graph_hnsw over the same
  /// matrix and options.
  const CsrGraph& rebuild(const tensor::Matrix& metric);

  /// Moves the rows at `ids` (sorted, unique) to the rows of `rows`
  /// (|ids| x d, aligned) and updates the graph by localized re-query; see
  /// the file comment for the exactness contract per backend.
  const CsrGraph& update(const std::vector<NodeId>& ids,
                         const tensor::Matrix& rows,
                         KnnUpdateStats* stats = nullptr);

  bool built() const { return metric_.rows() > 0 || built_empty_; }
  const CsrGraph& graph() const { return graph_; }
  const tensor::Matrix& metric() const { return metric_; }
  std::size_t size() const { return metric_.rows(); }

 private:
  std::vector<NodeId> affected_points(const std::vector<NodeId>& ids,
                                      const tensor::Matrix& rows) const;
  void finalize_graph();

  IncrementalKnnOptions opt_;
  std::size_t k_ = 0;
  bool built_empty_ = false;
  tensor::Matrix metric_;
  std::vector<KnnResult> nn_;
  std::unique_ptr<KdTree> kd_;
  std::unique_ptr<HnswIndex> hnsw_;
  CsrGraph graph_;
};

}  // namespace sgm::graph
