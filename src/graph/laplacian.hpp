#pragma once
// Graph Laplacian operators. The Laplacian is kept implicit (matrix-free):
// L x = D x - A x computed straight off the CSR adjacency, which is all the
// PCG solver, Lanczos and the smoothed-embedding ER estimator need.

#include <vector>

#include "graph/csr.hpp"
#include "tensor/matrix.hpp"

namespace sgm::graph {

using Vec = std::vector<double>;

/// y = L x for the weighted Laplacian of `g`.
void laplacian_apply(const CsrGraph& g, const Vec& x, Vec& y);

/// Diagonal of L (weighted degrees).
Vec laplacian_diagonal(const CsrGraph& g);

/// Dense Laplacian (n x n) — test/diagnostic use only.
tensor::Matrix laplacian_dense(const CsrGraph& g);

/// x_i -= mean(x): projects out the constant nullspace of a connected
/// Laplacian. Solvers call this on right-hand sides and iterates.
void deflate_constant(Vec& x);

/// Euclidean inner product / norm helpers used across the solvers.
double dot(const Vec& a, const Vec& b);
double norm2(const Vec& a);

}  // namespace sgm::graph
