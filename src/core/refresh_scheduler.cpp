#include "core/refresh_scheduler.hpp"

// RefreshScheduler is header-only; this translation unit anchors the target.
