#include "core/pgm.hpp"

#include <cmath>
#include <stdexcept>

namespace sgm::core {

using tensor::Matrix;

Matrix standardize_columns(const Matrix& m) {
  Matrix out(m.rows(), m.cols());
  const double n = static_cast<double>(m.rows());
  if (m.rows() == 0) return out;
  for (std::size_t c = 0; c < m.cols(); ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < m.rows(); ++r) mean += m(r, c);
    mean /= n;
    double var = 0.0;
    for (std::size_t r = 0; r < m.rows(); ++r) {
      const double d = m(r, c) - mean;
      var += d * d;
    }
    var /= n;
    const double inv_std = var > 1e-24 ? 1.0 / std::sqrt(var) : 0.0;
    for (std::size_t r = 0; r < m.rows(); ++r)
      out(r, c) = (m(r, c) - mean) * inv_std;
  }
  return out;
}

graph::CsrGraph build_pgm(const Matrix& points, const Matrix* outputs,
                          const PgmOptions& options) {
  const Matrix* metric = &points;
  Matrix augmented;
  if (outputs != nullptr && options.output_feature_weight > 0.0) {
    if (outputs->rows() != points.rows())
      throw std::invalid_argument("build_pgm: outputs row count mismatch");
    const Matrix std_out = standardize_columns(*outputs);
    augmented = Matrix(points.rows(), points.cols() + std_out.cols());
    for (std::size_t r = 0; r < points.rows(); ++r) {
      for (std::size_t c = 0; c < points.cols(); ++c)
        augmented(r, c) = points(r, c);
      for (std::size_t c = 0; c < std_out.cols(); ++c)
        augmented(r, points.cols() + c) =
            options.output_feature_weight * std_out(r, c);
    }
    metric = &augmented;
  }

  graph::KnnGraphOptions knn = options.knn;
  if (options.num_threads) knn.num_threads = options.num_threads;
  switch (options.backend) {
    case KnnBackend::kKdTree:
      return graph::build_knn_graph(*metric, knn);
    case KnnBackend::kHnsw:
      return graph::build_knn_graph_hnsw(*metric, knn, options.hnsw);
  }
  throw std::logic_error("build_pgm: bad backend");
}

}  // namespace sgm::core
