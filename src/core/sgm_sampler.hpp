#pragma once
// The SGM-PINN sampler — Algorithm 1 of the paper, wired as a drop-in
// samplers::Sampler so the trainer can A/B it against uniform and MIS.
//
// Pipeline per refresh (every tau_e iterations):
//   S1/S2 (every tau_G)  rebuild kNN PGM + LRD clusters (optionally on a
//                        background thread, optionally folding the model
//                        outputs into the graph metric);
//   line 5-6             draw r% representatives per cluster, evaluate
//                        their current losses via the trainer callback;
//   S3 (optional)        ISR stability scores on the same representative
//                        subset (parameterized problems);
//   line 8-9             combine + normalize into cluster scores, map to
//                        sampling ratios;
//   line 10              materialize the epoch (floor 1 per cluster) and
//                        deal shuffled mini-batches from it until the next
//                        refresh.

#include <memory>
#include <optional>

#include "core/async_rebuild.hpp"
#include "core/cluster_store.hpp"
#include "core/dirty_tracker.hpp"
#include "core/epoch_builder.hpp"
#include "core/incremental_refresh.hpp"
#include "core/pgm.hpp"
#include "core/refresh_scheduler.hpp"
#include "core/scorer.hpp"
#include "graph/lrd.hpp"
#include "samplers/sampler.hpp"
#include "spade/isr.hpp"

namespace sgm::core {

struct SgmOptions {
  PgmOptions pgm{};                 ///< S1: kNN size k, weights, backend
  graph::LrdOptions lrd{};          ///< S2: levels L, diameter budget
  double rep_fraction = 0.15;       ///< r: per-cluster loss-sample ratio
  std::uint64_t tau_e = 7000;       ///< score/epoch refresh period
  std::uint64_t tau_g = 25000;      ///< graph/cluster rebuild period
  EpochBuilderOptions epoch{};      ///< epoch size + ratio mapping
  ScorerOptions scorer{};           ///< ISR fusion weight
  bool use_isr = false;             ///< S3 on/off (SGM-S vs SGM)
  spade::IsrOptions isr{};          ///< S3 configuration
  /// kNN size for the representative-subset input graph used by ISR.
  std::size_t isr_subset_k = 8;
  bool async_rebuild = false;       ///< rebuild S1/S2 on a worker thread
  /// When rebuilding, append current outputs to the PGM metric with this
  /// weight (0 keeps the metric purely spatial).
  double rebuild_output_weight = 0.0;
  /// Worker threads for the S1/S2 rebuild (kNN queries, edge assembly, ER
  /// embedding). Nonzero overrides pgm.num_threads / lrd.num_threads; 0
  /// defers to them (whose own 0 means util::resolve_threads default, i.e.
  /// hardware concurrency). 1 = serial; every value produces an identical
  /// PGM and clustering for a fixed seed.
  std::size_t num_threads = 0;
  std::uint64_t seed = 2024;

  // --- Incremental refresh (core/incremental_refresh) --------------------
  /// When true, S1/S2 rebuilds run through the IncrementalRefreshEngine:
  /// only points whose output features drifted beyond dirty_tolerance are
  /// re-inserted into the kNN graph, ER re-solves are warm-started /
  /// localized around the changed edges, and the engine falls back to a
  /// full rebuild when the dirty fraction exceeds incremental_threshold.
  /// Meaningful together with rebuild_output_weight > 0 and an outputs
  /// provider; with a purely spatial metric nothing ever drifts and every
  /// rebuild after the first becomes a (cheap) no-op — which is the win.
  bool incremental_refresh = false;
  /// Dirty fraction above which the engine rebuilds from scratch. Negative
  /// forces the full path every refresh (the equivalence-test baseline);
  /// >= 1 never falls back.
  double incremental_threshold = 0.30;
  /// Relative per-feature drift that makes a point dirty (0 = any bitwise
  /// change; exact-equivalence setting).
  double dirty_tolerance = 0.0;
  /// Stale-ER amortization ratio (see IncrementalRefreshOptions::
  /// er_stale_ratio): cumulative changed-edge fraction tolerated before an
  /// exact ER resync. 0 = resync every rebuild (strict equivalence).
  double er_stale_ratio = 0.0;
  /// Dirty-fraction-aware rebuild cadence: the engine's measured dirty
  /// fraction (at rebuilds) and the representative-loss drift (between
  /// them, see loss_dirty_tolerance) modulate the effective tau_G. Only
  /// active when incremental_refresh is on; the legacy fixed cadence is
  /// untouched otherwise.
  RefreshCadence cadence{};
  /// Relative representative-loss drift that counts a point dirty for the
  /// cadence signal.
  double loss_dirty_tolerance = 0.25;
};

class SgmSampler final : public samplers::Sampler {
 public:
  /// `points` must outlive the sampler. Builds the initial PGM + clusters
  /// eagerly (the paper does this before training starts).
  SgmSampler(const tensor::Matrix& points, const SgmOptions& options);

  /// Joins any in-flight async rebuild BEFORE members destruct: the worker
  /// job holds a raw pointer to engine_, which (being declared after
  /// async_) would otherwise be freed while the worker still runs.
  ~SgmSampler() override { async_.wait(); }

  std::string name() const override {
    return opt_.use_isr ? "sgm-s" : "sgm";
  }

  std::vector<std::uint32_t> next_batch(std::size_t batch_size,
                                        util::Rng& rng) override;

  void maybe_refresh(std::uint64_t iteration,
                     const samplers::LossEvaluator& evaluate,
                     util::Rng& rng) override;

  /// Supplies the model-output matrix used when rebuilding the PGM with
  /// output features (optional; callers that skip it, or leave
  /// rebuild_output_weight at 0, get purely spatial rebuilds). ISR does
  /// not consume this: its output manifold is the representative losses.
  void set_outputs_provider(
      std::function<tensor::Matrix(const std::vector<std::uint32_t>&)>
          provider) {
    outputs_provider_ = std::move(provider);
  }

  const ClusterStore& clusters() const { return clusters_; }
  const ClusterScores& last_scores() const { return last_scores_; }
  std::size_t last_epoch_size() const { return last_epoch_size_; }
  std::uint64_t rebuild_count() const { return rebuild_count_; }
  /// The incremental engine's stats for the most recent refresh (zeroed
  /// struct when incremental_refresh is off or nothing refreshed yet).
  const RefreshStats& last_refresh_stats() const { return last_refresh_stats_; }
  const RefreshScheduler& scheduler() const { return schedule_; }

 private:
  void rebuild_clusters(util::Rng& rng);
  void rebuild_clusters_incremental();
  std::unique_ptr<tensor::Matrix> snapshot_outputs() const;
  void observe_engine_stats();
  std::vector<double> representative_isr(
      const ClusterStore::Representatives& reps,
      const std::vector<double>& rep_loss);

  const tensor::Matrix& points_;
  SgmOptions opt_;
  RefreshScheduler schedule_;
  ClusterStore clusters_;
  samplers::EpochDealer dealer_;
  ClusterScores last_scores_;
  std::size_t last_epoch_size_ = 0;
  std::uint64_t rebuild_count_ = 0;
  AsyncRebuilder async_;
  std::function<tensor::Matrix(const std::vector<std::uint32_t>&)>
      outputs_provider_;
  std::unique_ptr<IncrementalRefreshEngine> engine_;  // incremental_refresh
  DirtyTracker loss_tracker_;                         // cadence signal
  RefreshStats last_refresh_stats_;
  std::uint64_t observed_rebuilds_ = 0;
};

}  // namespace sgm::core
