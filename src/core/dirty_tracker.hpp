#pragma once
// Tracks which sample points' per-point signal — residual losses, model
// outputs, or whole metric rows — drifted beyond a threshold since the last
// S1/S2 rebuild. The incremental refresh engine uses the snapshot interface
// (rebase/diff over full feature matrices) to decide which points to
// re-insert into the kNN graph; the sampler uses the sampled-stream
// interface (observe over representative losses) to estimate the population
// dirty fraction that drives the RefreshScheduler's cadence.
//
// A point is dirty when ANY of its `width` features moved more than
// relative_tolerance * scale(feature) away from the reference value captured
// at the last rebase. A tolerance of 0 marks any bitwise change dirty —
// that is the setting under which the incremental refresh path is exactly
// equivalent to a full rebuild (see docs/TESTING.md).

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace sgm::core {

class DirtyTracker {
 public:
  DirtyTracker() = default;
  DirtyTracker(std::size_t num_points, std::size_t width,
               double relative_tolerance);

  std::size_t num_points() const { return n_; }
  std::size_t width() const { return w_; }
  double tolerance() const { return tol_; }

  /// Per-feature scales the tolerance is relative to (default all 1).
  void set_scales(std::vector<double> scales);
  const std::vector<double>& scales() const { return scale_; }

  /// When enabled, the drift threshold for each value is
  /// tolerance * max(|reference|, floor) instead of tolerance * scale —
  /// i.e. genuinely *relative* drift. This is what the sampler's
  /// representative-loss cadence signal uses: losses span decades across
  /// problems and training phases, so an absolute threshold would either
  /// never fire (tiny late-training residuals) or always fire (large early
  /// ones). `floor` guards near-zero references.
  void set_relative_to_reference(double floor = 1e-12) {
    relative_to_reference_ = true;
    reference_floor_ = floor;
  }

  // --- snapshot interface (refresh engine) -------------------------------

  /// Captures `values` (num_points x width) as the reference for every
  /// point and clears all dirty/observed marks.
  void rebase_all(const tensor::Matrix& values);

  /// Re-captures the reference rows for `ids` only (rows aligned with ids)
  /// and clears their marks — called after an incremental update applied
  /// exactly those rows.
  void rebase_rows(const std::vector<std::uint32_t>& ids,
                   const tensor::Matrix& rows);

  /// Sorted ids of points whose candidate row in `values` (num_points x
  /// width) drifted beyond tolerance from the reference. Pure query; points
  /// without a reference yet are reported dirty.
  std::vector<std::uint32_t> diff(const tensor::Matrix& values) const;

  // --- sampled-stream interface (cadence signal) -------------------------

  /// Observes fresh width-1 signal values for `ids`; first sight of a point
  /// sets its reference, later sights mark it dirty on drift. Returns the
  /// number of points newly marked dirty.
  std::size_t observe(const std::vector<std::uint32_t>& ids,
                      const std::vector<double>& values);

  /// Absorbs the drift seen so far: every observed point's last value
  /// becomes its reference and dirty marks clear. Call after a rebuild.
  void settle();

  bool is_dirty(std::uint32_t i) const { return dirty_[i] != 0; }
  std::size_t dirty_count() const { return dirty_count_; }
  std::size_t observed_count() const { return observed_count_; }

  /// dirty / observed among stream-observed points (0 when none observed):
  /// the RefreshScheduler cadence signal.
  double dirty_fraction() const;

 private:
  bool row_dirty(const double* ref, const double* cand) const;

  std::size_t n_ = 0, w_ = 0;
  double tol_ = 0.0;
  bool relative_to_reference_ = false;
  double reference_floor_ = 1e-12;
  std::vector<double> scale_;
  std::vector<double> ref_;      // n x w, row-major
  std::vector<double> last_;     // last stream observation
  std::vector<char> has_ref_;
  std::vector<char> observed_;
  std::vector<char> dirty_;
  std::size_t dirty_count_ = 0;
  std::size_t observed_count_ = 0;
};

}  // namespace sgm::core
