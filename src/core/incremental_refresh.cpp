#include "core/incremental_refresh.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace sgm::core {

using graph::CsrGraph;
using graph::Edge;
using graph::NodeId;
using tensor::Matrix;

namespace {

/// Per-column mean and std with the standardize_columns conventions
/// (population variance, zero-variance columns get inv_std = 0).
void column_moments(const Matrix& m, std::vector<double>* mean,
                    std::vector<double>* stddev,
                    std::vector<double>* inv_std) {
  mean->assign(m.cols(), 0.0);
  stddev->assign(m.cols(), 0.0);
  inv_std->assign(m.cols(), 0.0);
  if (m.rows() == 0) return;
  const double n = static_cast<double>(m.rows());
  for (std::size_t c = 0; c < m.cols(); ++c) {
    double mu = 0.0;
    for (std::size_t r = 0; r < m.rows(); ++r) mu += m(r, c);
    mu /= n;
    double var = 0.0;
    for (std::size_t r = 0; r < m.rows(); ++r) {
      const double d = m(r, c) - mu;
      var += d * d;
    }
    var /= n;
    (*mean)[c] = mu;
    (*stddev)[c] = std::sqrt(var);
    (*inv_std)[c] = var > 1e-24 ? 1.0 / std::sqrt(var) : 0.0;
  }
}

/// Sorted unique endpoints of every edge that differs (present in only one
/// graph, or re-weighted) between the two sorted-by-(u,v) edge lists.
std::vector<NodeId> diff_edges(const CsrGraph& a, const CsrGraph& b,
                               std::size_t* changed_edges) {
  const auto& ea = a.edges();
  const auto& eb = b.edges();
  std::vector<NodeId> nodes;
  std::size_t changed = 0;
  auto before = [](const Edge& x, const Edge& y) {
    return x.u != y.u ? x.u < y.u : x.v < y.v;
  };
  std::size_t i = 0, j = 0;
  while (i < ea.size() || j < eb.size()) {
    if (j == eb.size() || (i < ea.size() && before(ea[i], eb[j]))) {
      ++changed;
      nodes.push_back(ea[i].u);
      nodes.push_back(ea[i].v);
      ++i;
    } else if (i == ea.size() || before(eb[j], ea[i])) {
      ++changed;
      nodes.push_back(eb[j].u);
      nodes.push_back(eb[j].v);
      ++j;
    } else {
      if (ea[i].w != eb[j].w) {
        ++changed;
        nodes.push_back(ea[i].u);
        nodes.push_back(ea[i].v);
      }
      ++i;
      ++j;
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  if (changed_edges) *changed_edges = changed;
  return nodes;
}

}  // namespace

IncrementalRefreshEngine::IncrementalRefreshEngine(
    const Matrix& points, IncrementalRefreshOptions options)
    : points_(points),
      opt_(std::move(options)),
      knn_([&] {
        IncrementalRefreshOptions& o = opt_;
        if (o.num_threads) {
          o.pgm.num_threads = o.num_threads;
          o.lrd.num_threads = o.num_threads;
        }
        if (o.pgm.num_threads) o.pgm.knn.num_threads = o.pgm.num_threads;
        if (o.lrd.num_threads) o.lrd.er.num_threads = o.lrd.num_threads;
        graph::IncrementalKnnOptions ko;
        ko.knn = o.pgm.knn;
        ko.use_hnsw = o.pgm.backend == KnnBackend::kHnsw;
        ko.hnsw = o.pgm.hnsw;
        return ko;
      }()),
      er_(opt_.lrd.er) {}

bool IncrementalRefreshEngine::outputs_active(const Matrix* outputs) const {
  return outputs != nullptr && outputs->cols() > 0 &&
         opt_.pgm.output_feature_weight > 0.0;
}

void IncrementalRefreshEngine::pin_standardization(const Matrix* outputs) {
  if (outputs == nullptr) {
    out_mean_.clear();
    out_std_.clear();
    out_inv_std_.clear();
    return;
  }
  column_moments(*outputs, &out_mean_, &out_std_, &out_inv_std_);
}

bool IncrementalRefreshEngine::std_drifted(const Matrix& outputs) const {
  if (out_std_.size() != outputs.cols()) return true;
  std::vector<double> mean, stddev, inv_std;
  column_moments(outputs, &mean, &stddev, &inv_std);
  for (std::size_t c = 0; c < stddev.size(); ++c) {
    const double fresh = std::max(stddev[c], 1e-12);
    const double pinned = std::max(out_std_[c], 1e-12);
    const double ratio = fresh / pinned;
    if (ratio > opt_.std_repin_ratio || ratio * opt_.std_repin_ratio < 1.0)
      return true;
  }
  return false;
}

Matrix IncrementalRefreshEngine::candidate_metric(
    const Matrix* outputs) const {
  const std::size_t n = points_.rows();
  const std::size_t d = points_.cols();
  const bool active = outputs_active(outputs);
  const std::size_t m = active ? outputs->cols() : 0;
  Matrix metric(n, d + m);
  const double w = opt_.pgm.output_feature_weight;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) metric(r, c) = points_(r, c);
    for (std::size_t c = 0; c < m; ++c)
      metric(r, d + c) =
          w * ((*outputs)(r, c) - out_mean_[c]) * out_inv_std_[c];
  }
  return metric;
}

graph::Clustering IncrementalRefreshEngine::full_rebuild(
    const Matrix* outputs, bool repin, RefreshStats* stats) {
  stats->full_rebuild = true;
  if (repin) {
    stats->repinned = true;
    pin_standardization(outputs_active(outputs) ? outputs : nullptr);
  }
  const Matrix metric = candidate_metric(outputs);
  knn_.rebuild(metric);
  er_.rebuild(knn_.graph());
  er_sync_graph_ = knn_.graph();
  er_changed_accum_.clear();
  er_stale_edges_ = 0;
  clustering_ =
      graph::lrd_decompose_with_embedding(knn_.graph(), er_.embedding(),
                                          opt_.lrd);
  // Fresh tracker sized for the (possibly new) metric width: spatial
  // columns keep their data scale, output columns live at the
  // output_feature_weight scale by construction.
  tracker_ = DirtyTracker(points_.rows(), metric.cols(),
                          opt_.dirty_tolerance);
  std::vector<double> mean, stddev, inv_std;
  column_moments(points_, &mean, &stddev, &inv_std);
  std::vector<double> scales(metric.cols(), 1.0);
  for (std::size_t c = 0; c < points_.cols(); ++c)
    scales[c] = std::max(stddev[c], 1e-12);
  for (std::size_t c = points_.cols(); c < metric.cols(); ++c)
    scales[c] = std::max(opt_.pgm.output_feature_weight, 1e-12);
  tracker_.set_scales(std::move(scales));
  tracker_.rebase_all(metric);
  built_ = true;
  return clustering_;
}

graph::Clustering IncrementalRefreshEngine::refresh(const Matrix* outputs,
                                                    RefreshStats* stats) {
  RefreshStats local;
  RefreshStats* st = stats ? stats : &local;
  *st = RefreshStats{};
  const std::size_t n = points_.rows();
  const bool active = outputs_active(outputs);
  if (active && outputs->rows() != n)
    throw std::invalid_argument(
        "IncrementalRefreshEngine: outputs row count mismatch");
  const std::size_t width = points_.cols() + (active ? outputs->cols() : 0);

  if (!built_ || width != knn_.metric().cols()) {
    // First build, or the metric just gained/lost its output block: pin the
    // standardization to the current outputs and build from scratch.
    st->dirty_points = n;
    st->dirty_fraction = 1.0;
    full_rebuild(outputs, /*repin=*/true, st);
    last_stats_ = *st;
    return clustering_;
  }
  if (active && std_drifted(*outputs)) {
    st->dirty_points = n;
    st->dirty_fraction = 1.0;
    full_rebuild(outputs, /*repin=*/true, st);
    last_stats_ = *st;
    return clustering_;
  }

  const Matrix cand = candidate_metric(outputs);
  const std::vector<std::uint32_t> dirty = tracker_.diff(cand);
  st->dirty_points = dirty.size();
  st->dirty_fraction =
      n ? static_cast<double>(dirty.size()) / static_cast<double>(n) : 0.0;

  if (st->dirty_fraction > opt_.incremental_threshold) {
    // Fallback: everything is re-queried/re-solved, but the pinned
    // standardization is kept (re-pinning is governed by std_repin_ratio
    // alone) so incremental and always-full engines stay in lockstep.
    full_rebuild(outputs, /*repin=*/false, st);
    last_stats_ = *st;
    return clustering_;
  }
  if (dirty.empty()) {
    last_stats_ = *st;
    return clustering_;
  }

  // Incremental path.
  {
    std::vector<char> hit(clustering_.num_clusters, 0);
    for (std::uint32_t v : dirty) hit[clustering_.node_cluster[v]] = 1;
    st->dirty_clusters = static_cast<std::size_t>(
        std::count(hit.begin(), hit.end(), char{1}));
  }
  Matrix rows(dirty.size(), width);
  for (std::size_t t = 0; t < dirty.size(); ++t)
    for (std::size_t c = 0; c < width; ++c) rows(t, c) = cand(dirty[t], c);

  const CsrGraph g_old = knn_.graph();
  graph::KnnUpdateStats ks;
  knn_.update(dirty, rows, &ks);
  st->requeried_points = ks.requeried;
  tracker_.rebase_rows(dirty, rows);

  const std::vector<NodeId> changed =
      diff_edges(g_old, knn_.graph(), &st->changed_edges);
  if (!changed.empty()) {
    // Stale-ER amortization: bank this round's changes; resync the
    // embedding only when the outstanding changed-edge fraction crosses
    // er_stale_ratio. The resync diffs against the snapshot the embedding
    // was computed ON, so correctness never depends on how many rounds were
    // banked.
    er_stale_edges_ += st->changed_edges;
    er_changed_accum_.insert(er_changed_accum_.end(), changed.begin(),
                             changed.end());
    std::sort(er_changed_accum_.begin(), er_changed_accum_.end());
    er_changed_accum_.erase(
        std::unique(er_changed_accum_.begin(), er_changed_accum_.end()),
        er_changed_accum_.end());
    const double stale_ratio =
        static_cast<double>(er_stale_edges_) /
        std::max<double>(1.0, static_cast<double>(knn_.graph().num_edges()));
    // A grown max degree must unpin the smoothed Richardson step size NOW:
    // skipping this graph would let the pin history diverge from an engine
    // that resyncs every refresh, breaking the resync-lands-bitwise
    // contract (see IncrementalErEngine::max_degree_seen).
    bool degree_unpins = false;
    if (opt_.lrd.er.method == graph::ErMethod::kSmoothed) {
      double d_max = 0.0;
      for (NodeId u = 0; u < knn_.graph().num_nodes(); ++u)
        d_max = std::max(d_max, knn_.graph().weighted_degree(u));
      degree_unpins = d_max > er_.max_degree_seen();
    }
    if (stale_ratio > opt_.er_stale_ratio || degree_unpins) {
      er_.update(knn_.graph(), er_sync_graph_, er_changed_accum_, &st->er);
      er_sync_graph_ = knn_.graph();
      er_changed_accum_.clear();
      er_stale_edges_ = 0;
      st->er_resynced = true;
    } else {
      st->er_reused_stale = true;
    }
    st->er_stale_changed_accum = er_stale_edges_;
    clustering_ = graph::lrd_decompose_with_embedding(
        knn_.graph(), er_.embedding(), opt_.lrd);
  }
  last_stats_ = *st;
  return clustering_;
}

}  // namespace sgm::core
