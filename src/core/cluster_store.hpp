#pragma once
// Cluster bookkeeping between S2 (LRD decomposition) and S4 (epoch
// building): member lists, sizes, and the per-cluster representative
// sampling (the "r% of points per cluster" whose losses stand in for the
// whole cluster).

#include <cstdint>
#include <vector>

#include "graph/lrd.hpp"
#include "util/rng.hpp"

namespace sgm::core {

class ClusterStore {
 public:
  ClusterStore() = default;
  explicit ClusterStore(graph::Clustering clustering);

  /// Replaces the clustering in place, reusing the member-list storage from
  /// the previous one (the incremental refresh path swaps clusterings every
  /// tau_G; keeping the vectors' capacity makes the swap allocation-light).
  void rebuild(graph::Clustering clustering);

  std::uint32_t num_clusters() const { return clustering_.num_clusters; }
  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(clustering_.node_cluster.size());
  }

  std::uint32_t cluster_of(std::uint32_t node) const {
    return clustering_.node_cluster[node];
  }
  const std::vector<std::uint32_t>& members(std::uint32_t cluster) const {
    return members_[cluster];
  }
  std::uint32_t size(std::uint32_t cluster) const {
    return static_cast<std::uint32_t>(members_[cluster].size());
  }
  const graph::Clustering& clustering() const { return clustering_; }

  /// Draws ceil(rep_fraction * size) representatives (at least 1) from each
  /// cluster, without replacement. Returns a flat index list plus, aligned
  /// with it, the cluster id of each representative.
  struct Representatives {
    std::vector<std::uint32_t> node;     ///< dataset indices
    std::vector<std::uint32_t> cluster;  ///< owning cluster per entry
  };
  Representatives sample_representatives(double rep_fraction,
                                         util::Rng& rng) const;

 private:
  graph::Clustering clustering_;
  std::vector<std::vector<std::uint32_t>> members_;
};

}  // namespace sgm::core
