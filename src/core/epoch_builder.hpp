#pragma once
// Algorithm 1, lines 9-10: map cluster scores to proportional sampling
// ratios and materialize an epoch with P_i * S_i samples per cluster, with
// a floor of one sample per cluster so no region is ever forgotten
// (mitigating the retention failure mode of pure loss-proportional IS).

#include <cstdint>
#include <vector>

#include "core/cluster_store.hpp"

namespace sgm::core {

struct EpochBuilderOptions {
  /// Target epoch size as a fraction of the dataset (e.g. 500k of 8M
  /// points ~ 0.0625 in the paper's LDC run).
  double epoch_fraction = 0.125;
  /// Sampling-ratio range: the lowest-score cluster contributes at a rate
  /// ratio_min * base, the highest at ratio_max * base, linear in between
  /// ("map L to a range of proportional sampling ratios P").
  double ratio_min = 0.25;
  double ratio_max = 4.0;
};

struct Epoch {
  /// Dataset indices composing the epoch (unshuffled; the dealer shuffles).
  std::vector<std::uint32_t> indices;
  /// Realized samples per cluster (diagnostics/tests).
  std::vector<std::uint32_t> per_cluster;
};

/// Builds an epoch given combined cluster scores. Guarantees:
///   * every cluster contributes at least 1 and at most size(c) samples,
///   * within a cluster, samples are drawn without replacement,
///   * total size is exactly clamp(round(epoch_fraction * N),
///     num_clusters, N): per-cluster counts are apportioned by the
///     largest-remainder method, so clamp residue from clusters pinned at
///     the floor/cap is redistributed instead of drifting the epoch size.
Epoch build_epoch(const ClusterStore& store,
                  const std::vector<double>& cluster_scores,
                  const EpochBuilderOptions& options, util::Rng& rng);

}  // namespace sgm::core
