#pragma once
// Background S1+S2 rebuild (Algorithm 1, lines 14-18): the paper overlaps
// PGM construction and LRD decomposition with training on worker threads,
// swapping the new clustering in when ready ("S <- S_new"). This class owns
// the worker thread; the sampler polls try_take() once per iteration and
// keeps training on the previous clustering until a result lands.

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <thread>

#include "core/cluster_store.hpp"
#include "core/pgm.hpp"
#include "graph/lrd.hpp"
#include "tensor/matrix.hpp"
#include "util/mutex.hpp"

namespace sgm::core {

class AsyncRebuilder {
 public:
  AsyncRebuilder() = default;
  ~AsyncRebuilder();

  AsyncRebuilder(const AsyncRebuilder&) = delete;
  AsyncRebuilder& operator=(const AsyncRebuilder&) = delete;

  /// Starts a rebuild from a snapshot of the inputs. No-op when one is
  /// already running.
  void launch(tensor::Matrix points, std::unique_ptr<tensor::Matrix> outputs,
              PgmOptions pgm, graph::LrdOptions lrd);

  /// Runs an arbitrary clustering job on the worker thread — the incremental
  /// refresh path hands its engine (plus an outputs snapshot) in here. The
  /// caller must not touch state the job reads/writes until the job has been
  /// reaped via try_take()/wait(); the sampler guarantees this by waiting
  /// before every launch and before every score refresh (the PR 2
  /// determinism barrier). No-op when a job is already running.
  void launch_job(std::function<graph::Clustering()> job);

  /// True while the worker is still computing.
  bool running() const { return running_.load(); }

  /// Returns the finished clustering exactly once, if available.
  std::optional<graph::Clustering> try_take();

  /// Blocks until any in-flight rebuild finishes (used by tests/dtor).
  void wait();

 private:
  std::thread worker_;
  /// Lock-free poll flag: cleared by the worker only after the result has
  /// been published under mu_, so running_ == false makes the result (if
  /// any) visible to a subsequent lock of mu_.
  std::atomic<bool> running_{false};
  util::Mutex mu_;
  bool has_result_ SGM_GUARDED_BY(mu_) = false;
  graph::Clustering result_ SGM_GUARDED_BY(mu_);
};

}  // namespace sgm::core
