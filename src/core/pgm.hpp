#pragma once
// Stage S1: probabilistic-graphical-model construction from the point cloud.
//
// The PGM is an undirected kNN graph over the collocation points' spatial
// coordinates; edge weights (inverse distance) encode the conditional
// dependence between nearby samples (Section 3.2). Later in training the
// graph can be rebuilt with model outputs appended as extra features so the
// clustering also respects the emerging solution structure (e.g. grouping
// points with similar velocity), which the paper mentions as the "re-built
// ... incorporating additional features from the output" path.

#include "graph/csr.hpp"
#include "graph/hnsw.hpp"
#include "graph/knn.hpp"
#include "tensor/matrix.hpp"

namespace sgm::core {

enum class KnnBackend {
  kKdTree,  ///< exact; default at the scales this repo runs
  kHnsw,    ///< approximate (the paper's choice for multi-million clouds)
};

struct PgmOptions {
  graph::KnnGraphOptions knn{};      ///< k, weight scheme
  KnnBackend backend = KnnBackend::kKdTree;
  graph::HnswOptions hnsw{};
  /// If > 0 and outputs are provided, appends standardized output features
  /// scaled by this factor to the coordinates before the kNN search.
  double output_feature_weight = 0.0;
  /// Worker threads for the kNN queries + edge assembly. Nonzero overrides
  /// knn.num_threads; 0 defers to it. The built graph is byte-identical for
  /// any value.
  std::size_t num_threads = 0;
};

/// Builds the PGM over `points` (n x d spatial/parameter coordinates).
/// `outputs` may be null; when present (n x m) and output_feature_weight > 0
/// its standardized columns join the metric.
graph::CsrGraph build_pgm(const tensor::Matrix& points,
                          const tensor::Matrix* outputs,
                          const PgmOptions& options);

/// Helper: standardize each column of `m` to zero mean / unit variance
/// (columns with zero variance become all-zero). Returns the result.
tensor::Matrix standardize_columns(const tensor::Matrix& m);

}  // namespace sgm::core
