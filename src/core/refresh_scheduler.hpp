#pragma once
// tau_e / tau_G scheduling (Algorithm 1's outer loop): scores refresh every
// tau_e iterations, the graph + clustering rebuild every tau_G iterations.
// Kept as its own small class so the schedule semantics are testable apart
// from the sampler.

#include <cstdint>

namespace sgm::core {

class RefreshScheduler {
 public:
  RefreshScheduler(std::uint64_t tau_e, std::uint64_t tau_g)
      : tau_e_(tau_e), tau_g_(tau_g) {}

  /// True when the score/epoch refresh (lines 5-10) should run at
  /// `iteration`. Fires at iteration 0 and every tau_e thereafter.
  bool should_score(std::uint64_t iteration) {
    if (scored_ && iteration - last_score_ < tau_e_) return false;
    scored_ = true;
    last_score_ = iteration;
    return true;
  }

  /// True when the PGM + LRD rebuild (lines 14-18) should run. Does not
  /// fire at iteration 0 (the initial build happens at construction).
  bool should_rebuild(std::uint64_t iteration) {
    if (tau_g_ == 0) return false;
    if (iteration == 0 || iteration - last_rebuild_ < tau_g_) return false;
    last_rebuild_ = iteration;
    return true;
  }

  std::uint64_t tau_e() const { return tau_e_; }
  std::uint64_t tau_g() const { return tau_g_; }

 private:
  std::uint64_t tau_e_;
  std::uint64_t tau_g_;
  std::uint64_t last_score_ = 0;
  std::uint64_t last_rebuild_ = 0;
  bool scored_ = false;
};

}  // namespace sgm::core
