#pragma once
// tau_e / tau_G scheduling (Algorithm 1's outer loop): scores refresh every
// tau_e iterations, the graph + clustering rebuild every tau_G iterations.
// Kept as its own small class so the schedule semantics are testable apart
// from the sampler.
//
// The rebuild cadence is *dirty-fraction aware*: callers may feed the
// scheduler the latest observed dirty fraction (the share of sample points
// whose residuals/outputs drifted beyond threshold — see core/dirty_tracker
// and the incremental refresh engine). A hot signal shortens the effective
// rebuild period, a cold one may stretch it. The cadence remains a pure
// function of iteration numbers and observed fractions — never wall-clock
// time — and with no signal observed it is exactly the legacy fixed-tau_G
// schedule.

#include <cstdint>

namespace sgm::core {

/// How the observed dirty fraction modulates the rebuild period.
struct RefreshCadence {
  /// Signal >= hot_fraction shrinks the effective period to
  /// max(1, tau_g / hot_divisor): the clustering is going stale faster than
  /// the fixed cadence assumed.
  double hot_fraction = 0.5;
  std::uint64_t hot_divisor = 4;
  /// Signal <= cold_fraction stretches the period to tau_g * cold_multiplier
  /// (rebuilding an unchanged graph is pure overhead). Disabled by default:
  /// the sentinel cold_fraction < 0 can never trigger on a fraction in
  /// [0, 1].
  double cold_fraction = -1.0;
  std::uint64_t cold_multiplier = 1;
};

class RefreshScheduler {
 public:
  RefreshScheduler(std::uint64_t tau_e, std::uint64_t tau_g,
                   RefreshCadence cadence = {})
      : tau_e_(tau_e), tau_g_(tau_g), cadence_(cadence) {}

  /// True when the score/epoch refresh (lines 5-10) should run at
  /// `iteration`. Fires at iteration 0 and every tau_e thereafter.
  bool should_score(std::uint64_t iteration) {
    if (scored_ && iteration - last_score_ < tau_e_) return false;
    scored_ = true;
    last_score_ = iteration;
    return true;
  }

  /// True when the PGM + LRD rebuild (lines 14-18) should run. Does not
  /// fire at iteration 0 (the initial build happens at construction). The
  /// period is effective_tau_g(): tau_g modulated by the latest observed
  /// dirty fraction.
  bool should_rebuild(std::uint64_t iteration) {
    if (tau_g_ == 0) return false;
    if (iteration == 0 || iteration - last_rebuild_ < effective_tau_g())
      return false;
    last_rebuild_ = iteration;
    return true;
  }

  /// Records the latest dirty-fraction signal (clamped into [0, 1]).
  /// Negative values clear the signal back to the legacy fixed cadence.
  void observe_dirty_fraction(double fraction) {
    if (fraction < 0.0) {
      has_signal_ = false;
      return;
    }
    has_signal_ = true;
    dirty_fraction_ = fraction > 1.0 ? 1.0 : fraction;
  }

  /// The rebuild period currently in force.
  std::uint64_t effective_tau_g() const {
    if (!has_signal_ || tau_g_ == 0) return tau_g_;
    if (dirty_fraction_ >= cadence_.hot_fraction && cadence_.hot_divisor > 1) {
      const std::uint64_t accel = tau_g_ / cadence_.hot_divisor;
      return accel > 0 ? accel : 1;
    }
    if (dirty_fraction_ <= cadence_.cold_fraction &&
        cadence_.cold_multiplier > 1)
      return tau_g_ * cadence_.cold_multiplier;
    return tau_g_;
  }

  bool has_dirty_signal() const { return has_signal_; }
  double dirty_fraction() const { return dirty_fraction_; }

  std::uint64_t tau_e() const { return tau_e_; }
  std::uint64_t tau_g() const { return tau_g_; }

 private:
  std::uint64_t tau_e_;
  std::uint64_t tau_g_;
  RefreshCadence cadence_;
  std::uint64_t last_score_ = 0;
  std::uint64_t last_rebuild_ = 0;
  bool scored_ = false;
  bool has_signal_ = false;
  double dirty_fraction_ = 0.0;
};

}  // namespace sgm::core
