#pragma once
// The incremental S1/S2 refresh engine — the stage the SGM sampler runs
// every tau_G iterations, restructured so its cost scales with how much of
// the point cloud actually changed instead of with n.
//
// Between refreshes the only thing that can move a point in the PGM metric
// is its model-output feature block (spatial coordinates are fixed). The
// engine therefore:
//
//   1. forms the candidate metric row of every point from the *pinned*
//      output standardization (mean/std captured when outputs first joined
//      the metric, re-pinned only when the output scale drifts beyond
//      std_repin_ratio — a deterministic function of the output stream);
//   2. diffs candidate rows against the applied metric (core/dirty_tracker)
//      to get the dirty set; sub-tolerance drift is deferred — clean rows
//      keep their exact previous values, so their cached kNN results stay
//      valid (and drift accumulates against the applied reference until it
//      crosses the threshold);
//   3. when the dirty fraction exceeds incremental_threshold, falls back to
//      a full rebuild (fresh index, every point re-queried, every ER column
//      re-solved cold);
//   4. otherwise updates the kNN graph by point re-insertion + localized
//      re-query (graph/incremental_knn), re-solves the effective-resistance
//      embedding only around the changed edges (graph/effective_resistance,
//      IncrementalErEngine — warm-started PCG for kJlSolve, finite-
//      propagation region sweeps for kSmoothed), and re-runs the cheap LRD
//      merge on the updated (graph, embedding) pair.
//
// Equivalence contract (pinned by tests/test_incremental_refresh.cpp): with
// dirty_tolerance = 0 and the exact kd backend, an engine taking the
// incremental path produces the same kNN edges, ER values within the PCG
// tolerance (bitwise for kSmoothed), and the identical clustering as an
// engine configured to take the full-rebuild path on every refresh, fed the
// same output stream. The HNSW backend is deterministic but approximate
// away from the fallback path, like HNSW itself.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dirty_tracker.hpp"
#include "core/pgm.hpp"
#include "graph/effective_resistance.hpp"
#include "graph/incremental_knn.hpp"
#include "graph/lrd.hpp"
#include "tensor/matrix.hpp"

namespace sgm::core {

struct IncrementalRefreshOptions {
  PgmOptions pgm{};        ///< backend, kNN options, output feature weight
  graph::LrdOptions lrd{};  ///< levels, budget, ER estimator
  /// Relative per-feature drift that makes a point dirty (0 = any bitwise
  /// change; the setting under which incremental == full exactly).
  double dirty_tolerance = 0.0;
  /// Dirty fraction above which the engine falls back to a full rebuild.
  /// Negative forces the full path on every refresh (the equivalence
  /// baseline); >= 1 never falls back.
  double incremental_threshold = 0.30;
  /// Re-pin the output standardization (and rebuild fully) when any output
  /// column's fresh std leaves [pinned/ratio, pinned*ratio].
  double std_repin_ratio = 2.0;
  /// Stale-ER amortization: while the CUMULATIVE fraction of PGM edges
  /// changed since the last ER resync stays <= this ratio, refreshes reuse
  /// the cached embedding wholesale — unchanged edges read their exact
  /// previous ER values, changed/new edges read off the (slightly stale)
  /// embedding rows; LRD consumes only the resulting ranking, which is
  /// robust to the perturbation. Crossing the ratio triggers an exact
  /// resync against the graph snapshot the embedding was computed on —
  /// which for kSmoothed lands bit-for-bit on the canonical recompute, so
  /// the engine re-coincides with a never-stale engine at every resync.
  /// (A refresh whose graph grows the max weighted degree beyond the
  /// smoothed step-size pin forces a resync regardless of the ratio;
  /// otherwise a skipped graph could leave this engine's pin history —
  /// and hence every later embedding — diverged from the never-stale
  /// engine's.)
  /// 0 (default) = resync every refresh (the strict-equivalence mode);
  /// converged-tolerance ER (PCG/Richardson) costs near-full price per
  /// solve no matter how small the perturbation, so this amortization is
  /// where the ER-stage speedup actually comes from.
  double er_stale_ratio = 0.0;
  /// Worker threads for the query/solve sweeps. Nonzero overrides the
  /// pgm/lrd thread counts; 0 defers to them. Byte-identical results for
  /// any value.
  std::size_t num_threads = 0;
};

struct RefreshStats {
  bool full_rebuild = false;   ///< took the full path (first build, width
                               ///< change, repin, or threshold fallback)
  bool repinned = false;       ///< output standardization re-captured
  std::size_t dirty_points = 0;
  double dirty_fraction = 0.0;
  std::size_t requeried_points = 0;  ///< kNN lists recomputed
  std::size_t changed_edges = 0;     ///< PGM edges added/removed/reweighted
  std::size_t dirty_clusters = 0;    ///< previous clusters touched by dirty points
  bool er_reused_stale = false;      ///< embedding reused under er_stale_ratio
  bool er_resynced = false;          ///< exact ER recompute ran this refresh
  /// Cumulative changed edges currently outstanding against the embedding.
  std::size_t er_stale_changed_accum = 0;
  graph::ErUpdateStats er{};
};

class IncrementalRefreshEngine {
 public:
  /// `points` (n x d spatial/parameter coordinates) must outlive the
  /// engine. Nothing is built until the first refresh() call.
  IncrementalRefreshEngine(const tensor::Matrix& points,
                           IncrementalRefreshOptions options);

  /// Builds (first call) or refreshes the PGM + LRD clustering. `outputs`
  /// is the current model-output matrix over all points (nullptr, or a
  /// zero output_feature_weight, keeps the metric purely spatial — in which
  /// case every refresh after the first is a no-op). Returns the clustering
  /// for the caller's ClusterStore.
  graph::Clustering refresh(const tensor::Matrix* outputs,
                            RefreshStats* stats = nullptr);

  const RefreshStats& last_stats() const { return last_stats_; }
  const graph::CsrGraph& graph() const { return knn_.graph(); }
  const tensor::Matrix& embedding() const { return er_.embedding(); }
  const tensor::Matrix& metric() const { return knn_.metric(); }

 private:
  bool outputs_active(const tensor::Matrix* outputs) const;
  tensor::Matrix candidate_metric(const tensor::Matrix* outputs) const;
  void pin_standardization(const tensor::Matrix* outputs);
  bool std_drifted(const tensor::Matrix& outputs) const;
  graph::Clustering full_rebuild(const tensor::Matrix* outputs, bool repin,
                                 RefreshStats* stats);

  const tensor::Matrix& points_;
  IncrementalRefreshOptions opt_;
  graph::IncrementalKnnGraph knn_;
  graph::IncrementalErEngine er_;
  DirtyTracker tracker_;
  std::vector<double> out_mean_, out_std_, out_inv_std_;  // pinned
  bool built_ = false;
  graph::Clustering clustering_;  // last result (reused on no-op refreshes)
  RefreshStats last_stats_;
  // Stale-ER bookkeeping: the graph snapshot the current embedding was
  // computed on, the changed endpoints accumulated against it, and the
  // outstanding changed-edge count.
  graph::CsrGraph er_sync_graph_;
  std::vector<graph::NodeId> er_changed_accum_;
  std::size_t er_stale_edges_ = 0;
};

}  // namespace sgm::core
