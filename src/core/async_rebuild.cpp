#include "core/async_rebuild.hpp"

namespace sgm::core {

AsyncRebuilder::~AsyncRebuilder() { wait(); }

void AsyncRebuilder::launch_job(std::function<graph::Clustering()> job) {
  if (running_.load()) return;
  wait();  // join any finished-but-unjoined worker
  {
    util::MutexLock lock(mu_);
    has_result_ = false;
  }
  running_.store(true);
  worker_ = std::thread([this, job = std::move(job)]() {
    graph::Clustering r = job();
    {
      util::MutexLock lock(mu_);
      result_ = std::move(r);
      has_result_ = true;
    }
    running_.store(false);  // last: publishes the result to try_take()
  });
}

void AsyncRebuilder::launch(tensor::Matrix points,
                            std::unique_ptr<tensor::Matrix> outputs,
                            PgmOptions pgm, graph::LrdOptions lrd) {
  // std::function requires a copyable callable — park the outputs snapshot
  // in a shared_ptr.
  std::shared_ptr<tensor::Matrix> out(outputs.release());
  launch_job([points = std::move(points), out = std::move(out),
              pgm = std::move(pgm), lrd = std::move(lrd)]() {
    graph::CsrGraph g = build_pgm(points, out.get(), pgm);
    return graph::lrd_decompose(g, lrd);
  });
}

std::optional<graph::Clustering> AsyncRebuilder::try_take() {
  if (running_.load()) return std::nullopt;
  std::optional<graph::Clustering> out;
  {
    util::MutexLock lock(mu_);
    if (!has_result_) return std::nullopt;
    has_result_ = false;
    out.emplace(std::move(result_));
  }
  if (worker_.joinable()) worker_.join();
  return out;
}

void AsyncRebuilder::wait() {
  if (worker_.joinable()) worker_.join();
}

}  // namespace sgm::core
