#include "core/async_rebuild.hpp"

namespace sgm::core {

AsyncRebuilder::~AsyncRebuilder() { wait(); }

void AsyncRebuilder::launch_job(std::function<graph::Clustering()> job) {
  if (running_.load()) return;
  wait();  // join any finished-but-unjoined worker
  running_.store(true);
  has_result_.store(false);
  worker_ = std::thread([this, job = std::move(job)]() {
    result_ = job();
    has_result_.store(true);
    running_.store(false);
  });
}

void AsyncRebuilder::launch(tensor::Matrix points,
                            std::unique_ptr<tensor::Matrix> outputs,
                            PgmOptions pgm, graph::LrdOptions lrd) {
  // std::function requires a copyable callable — park the outputs snapshot
  // in a shared_ptr.
  std::shared_ptr<tensor::Matrix> out(outputs.release());
  launch_job([points = std::move(points), out = std::move(out),
              pgm = std::move(pgm), lrd = std::move(lrd)]() {
    graph::CsrGraph g = build_pgm(points, out.get(), pgm);
    return graph::lrd_decompose(g, lrd);
  });
}

std::optional<graph::Clustering> AsyncRebuilder::try_take() {
  if (running_.load() || !has_result_.load()) return std::nullopt;
  if (worker_.joinable()) worker_.join();
  has_result_.store(false);
  return std::move(result_);
}

void AsyncRebuilder::wait() {
  if (worker_.joinable()) worker_.join();
}

}  // namespace sgm::core
