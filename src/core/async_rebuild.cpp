#include "core/async_rebuild.hpp"

namespace sgm::core {

AsyncRebuilder::~AsyncRebuilder() { wait(); }

void AsyncRebuilder::launch(tensor::Matrix points,
                            std::unique_ptr<tensor::Matrix> outputs,
                            PgmOptions pgm, graph::LrdOptions lrd) {
  if (running_.load()) return;
  wait();  // join any finished-but-unjoined worker
  running_.store(true);
  has_result_.store(false);
  worker_ = std::thread([this, points = std::move(points),
                         outputs = std::move(outputs), pgm = std::move(pgm),
                         lrd = std::move(lrd)]() {
    graph::CsrGraph g = build_pgm(points, outputs.get(), pgm);
    graph::Clustering c = graph::lrd_decompose(g, lrd);
    result_ = std::move(c);
    has_result_.store(true);
    running_.store(false);
  });
}

std::optional<graph::Clustering> AsyncRebuilder::try_take() {
  if (running_.load() || !has_result_.load()) return std::nullopt;
  if (worker_.joinable()) worker_.join();
  has_result_.store(false);
  return std::move(result_);
}

void AsyncRebuilder::wait() {
  if (worker_.joinable()) worker_.join();
}

}  // namespace sgm::core
