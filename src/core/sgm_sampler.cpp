#include "core/sgm_sampler.hpp"

#include <numeric>

#include "util/log.hpp"

namespace sgm::core {

using tensor::Matrix;

SgmSampler::SgmSampler(const Matrix& points, const SgmOptions& options)
    : points_(points),
      opt_(options),
      schedule_(options.tau_e, options.tau_g, options.cadence),
      dealer_(static_cast<std::uint32_t>(points.rows())) {
  if (opt_.num_threads) {
    opt_.pgm.num_threads = opt_.num_threads;
    opt_.lrd.num_threads = opt_.num_threads;
  }
  util::WallTimer timer;
  if (opt_.incremental_refresh) {
    IncrementalRefreshOptions eopt;
    eopt.pgm = opt_.pgm;
    eopt.pgm.output_feature_weight = opt_.rebuild_output_weight;
    eopt.lrd = opt_.lrd;
    eopt.dirty_tolerance = opt_.dirty_tolerance;
    eopt.incremental_threshold = opt_.incremental_threshold;
    eopt.er_stale_ratio = opt_.er_stale_ratio;
    eopt.num_threads = opt_.num_threads;
    engine_ = std::make_unique<IncrementalRefreshEngine>(points_, eopt);
    // The initial build is spatial (no outputs exist yet), exactly like the
    // legacy path. Its stats are not fed to the cadence: a 100% "dirty"
    // first build says nothing about drift.
    clusters_ = ClusterStore(engine_->refresh(nullptr, nullptr));
    loss_tracker_ = DirtyTracker(points_.rows(), 1,
                                 opt_.loss_dirty_tolerance);
    // Losses span decades across problems and training phases; the drift
    // threshold must be relative to each point's reference loss.
    loss_tracker_.set_relative_to_reference();
  } else {
    graph::CsrGraph g = build_pgm(points_, nullptr, opt_.pgm);
    clusters_ = ClusterStore(graph::lrd_decompose(g, opt_.lrd));
  }
  refresh_seconds_ += timer.elapsed_s();
  util::log_info() << "SgmSampler: initial PGM"
                   << (engine_ ? " (incremental engine)" : "")
                   << " n=" << points_.rows()
                   << " clusters=" << clusters_.num_clusters();
}

std::vector<std::uint32_t> SgmSampler::next_batch(std::size_t batch_size,
                                                  util::Rng& rng) {
  return dealer_.next(batch_size, rng);
}

std::unique_ptr<Matrix> SgmSampler::snapshot_outputs() const {
  if (!outputs_provider_ || opt_.rebuild_output_weight <= 0.0) return nullptr;
  std::vector<std::uint32_t> all(points_.rows());
  std::iota(all.begin(), all.end(), 0u);
  return std::make_unique<Matrix>(outputs_provider_(all));
}

void SgmSampler::observe_engine_stats() {
  // Feed the engine's measured dirty fraction to the cadence and absorb the
  // representative-loss drift the rebuild just answered. Only called at
  // deterministic points (rebuild boundaries / score barriers), so the
  // cadence is a pure function of the iteration schedule; only acts when a
  // rebuild actually completed since the last observation, so the loss
  // tracker's drift keeps accumulating across score refreshes in between.
  if (!engine_ || rebuild_count_ == observed_rebuilds_) return;
  observed_rebuilds_ = rebuild_count_;
  last_refresh_stats_ = engine_->last_stats();
  schedule_.observe_dirty_fraction(last_refresh_stats_.dirty_fraction);
  loss_tracker_.settle();
}

void SgmSampler::rebuild_clusters_incremental() {
  if (opt_.async_rebuild) {
    util::WallTimer timer;
    // Same barrier discipline as the legacy path: reap any in-flight
    // refresh first, so every scheduled rebuild is real and the engine is
    // never touched by two threads at once.
    async_.wait();
    if (auto done = async_.try_take()) {
      clusters_.rebuild(std::move(*done));
      ++rebuild_count_;
    }
    observe_engine_stats();
    // The provider evaluation (and the snapshot copy) stays on the training
    // thread and is charged to refresh_seconds_.
    std::shared_ptr<Matrix> outputs(snapshot_outputs().release());
    IncrementalRefreshEngine* engine = engine_.get();
    async_.launch_job([engine, outputs]() {
      return engine->refresh(outputs.get(), nullptr);
    });
    refresh_seconds_ += timer.elapsed_s();
    return;
  }
  util::WallTimer timer;
  std::unique_ptr<Matrix> outputs = snapshot_outputs();
  clusters_.rebuild(engine_->refresh(outputs.get(), nullptr));
  ++rebuild_count_;
  observe_engine_stats();
  refresh_seconds_ += timer.elapsed_s();
}

void SgmSampler::rebuild_clusters(util::Rng& rng) {
  (void)rng;
  if (engine_) {
    rebuild_clusters_incremental();
    return;
  }
  if (opt_.async_rebuild) {
    // The graph/cluster build overlaps training on the worker, but the
    // output-provider evaluation over all points (and the input snapshot)
    // happens right here on the training thread — charge it, or
    // refresh_seconds_ undercounts exactly when async + output-weighted
    // rebuilds are both on.
    util::WallTimer timer;
    // Reap any still-running previous rebuild first: launch() would
    // silently no-op on a busy worker, which both wastes the provider
    // evaluation below and makes *whether* this rebuild happens depend on
    // worker timing. Waiting keeps every scheduled rebuild real and the
    // clustering stream a pure function of the iteration schedule; the
    // stall only triggers when a rebuild outlives a whole tau_g window.
    async_.wait();
    if (auto done = async_.try_take()) {
      clusters_.rebuild(std::move(*done));
      ++rebuild_count_;
    }
    std::unique_ptr<Matrix> outputs = snapshot_outputs();
    PgmOptions pgm = opt_.pgm;
    pgm.output_feature_weight = opt_.rebuild_output_weight;
    async_.launch(points_, std::move(outputs), pgm, opt_.lrd);
    refresh_seconds_ += timer.elapsed_s();
    return;
  }
  util::WallTimer timer;
  std::unique_ptr<Matrix> outputs = snapshot_outputs();
  PgmOptions pgm = opt_.pgm;
  pgm.output_feature_weight = opt_.rebuild_output_weight;
  graph::CsrGraph g = build_pgm(points_, outputs.get(), pgm);
  clusters_.rebuild(graph::lrd_decompose(g, opt_.lrd));
  ++rebuild_count_;
  refresh_seconds_ += timer.elapsed_s();
}

std::vector<double> SgmSampler::representative_isr(
    const ClusterStore::Representatives& reps,
    const std::vector<double>& rep_loss) {
  // Input graph over the representative subset's coordinates...
  Matrix sub(reps.node.size(), points_.cols());
  for (std::size_t i = 0; i < reps.node.size(); ++i)
    for (std::size_t c = 0; c < points_.cols(); ++c)
      sub(i, c) = points_(reps.node[i], c);
  graph::KnnGraphOptions kx;
  kx.k = std::min(opt_.isr_subset_k, reps.node.size() - 1);
  kx.weight = graph::KnnWeight::kInverse;
  graph::CsrGraph gx = graph::build_knn_graph(sub, kx);

  // ...output manifold = the current losses at those representatives (the
  // paper: "F(X) in this case being the NN", applied to the NN losses).
  Matrix y(reps.node.size(), 1);
  for (std::size_t i = 0; i < reps.node.size(); ++i) y(i, 0) = rep_loss[i];

  spade::IsrResult isr = spade::compute_isr(gx, y, opt_.isr);
  return isr.node_score;
}

void SgmSampler::maybe_refresh(std::uint64_t iteration,
                               const samplers::LossEvaluator& evaluate,
                               util::Rng& rng) {
  // Swap in a finished background rebuild, if any (line 16-17: S <- S_new).
  // The swap (ClusterStore rebuild) runs on the training thread and is
  // charged to refresh_seconds_ like every other sampler cost. The cadence
  // signal is NOT read here: this take's timing depends on the worker, and
  // the schedule must stay a pure function of the iteration stream.
  if (opt_.async_rebuild) {
    util::WallTimer swap_timer;
    if (auto done = async_.try_take()) {
      clusters_.rebuild(std::move(*done));
      ++rebuild_count_;
      refresh_seconds_ += swap_timer.elapsed_s();
    }
  }
  // Determinism barrier: a score refresh synchronizes with any in-flight
  // async rebuild before reading the clustering, so which clustering a
  // given epoch is built from depends only on the iteration schedule —
  // never on worker-thread timing — and same-seed runs produce identical
  // histories. The barrier runs BEFORE a possible same-iteration rebuild
  // launch (tau_g aligned to a tau_e multiple is the recommended setup):
  // that launch then overlaps the next window instead of being waited on
  // immediately. The (rare) wait is sampler overhead, charged accordingly.
  const bool score_now = schedule_.should_score(iteration);
  if (score_now && opt_.async_rebuild) {
    util::WallTimer wait_timer;
    async_.wait();  // no-op when nothing is in flight
    if (auto done = async_.try_take()) {
      clusters_.rebuild(std::move(*done));
      ++rebuild_count_;
    }
    // A deterministic point: any rebuild launched in the previous window is
    // complete and its measured dirty fraction may steer the cadence.
    observe_engine_stats();
    refresh_seconds_ += wait_timer.elapsed_s();
  }
  if (schedule_.should_rebuild(iteration)) rebuild_clusters(rng);
  if (!score_now) return;

  util::WallTimer timer;
  // Lines 5-6: r% representatives per cluster, score their losses.
  ClusterStore::Representatives reps =
      clusters_.sample_representatives(opt_.rep_fraction, rng);
  std::vector<double> rep_loss = evaluate(reps.node);
  loss_evaluations_ += reps.node.size();

  // Representative-loss drift estimates the population dirty fraction
  // between rebuilds — the free cadence signal (core/dirty_tracker).
  if (engine_) {
    loss_tracker_.observe(reps.node, rep_loss);
    schedule_.observe_dirty_fraction(loss_tracker_.dirty_fraction());
  }

  // Line 7 (S3): ISR on the same subset, normalized with the losses.
  std::vector<double> rep_isr;
  if (opt_.use_isr && reps.node.size() > 2) {
    rep_isr = representative_isr(reps, rep_loss);
  }

  // Lines 8-10: combine, rank, materialize the epoch.
  last_scores_ = score_clusters(clusters_, reps, rep_loss, rep_isr,
                                opt_.scorer);
  Epoch epoch = build_epoch(clusters_, last_scores_.combined, opt_.epoch, rng);
  last_epoch_size_ = epoch.indices.size();
  dealer_.set_epoch(std::move(epoch.indices), rng);
  refresh_seconds_ += timer.elapsed_s();
}

}  // namespace sgm::core
