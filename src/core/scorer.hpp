#pragma once
// Cluster importance scoring (Algorithm 1, lines 6-8): combine the losses
// measured at cluster representatives with the optional ISR stability term,
// normalized against each other exactly as Section 3.5 describes ("using
// the same subset of samples as — and normalized with — the other PDE
// losses").

#include <vector>

#include "core/cluster_store.hpp"

namespace sgm::core {

struct ScorerOptions {
  /// Relative weight of the normalized ISR term (0 disables S3 fusion even
  /// when ISR values are supplied).
  double isr_weight = 1.0;
};

struct ClusterScores {
  /// Combined score per cluster (>= 0, mean approximately 1 over clusters).
  std::vector<double> combined;
  /// Mean representative loss per cluster (pre-normalization).
  std::vector<double> mean_loss;
  /// Mean representative ISR per cluster (pre-normalization; empty if
  /// unused).
  std::vector<double> mean_isr;
};

/// Aggregates per-representative losses (and optional per-representative
/// ISR scores, same alignment) into per-cluster combined scores. Clusters
/// that received no representative keep a neutral score of 1.
ClusterScores score_clusters(const ClusterStore& store,
                             const ClusterStore::Representatives& reps,
                             const std::vector<double>& rep_loss,
                             const std::vector<double>& rep_isr,
                             const ScorerOptions& options);

}  // namespace sgm::core
