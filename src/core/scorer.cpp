#include "core/scorer.hpp"

#include <stdexcept>

namespace sgm::core {

namespace {
/// Normalizes a vector to mean 1 (leaves it untouched when the mean is 0).
void normalize_mean(std::vector<double>& v) {
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  if (mean <= 0.0) return;
  for (double& x : v) x /= mean;
}
}  // namespace

ClusterScores score_clusters(const ClusterStore& store,
                             const ClusterStore::Representatives& reps,
                             const std::vector<double>& rep_loss,
                             const std::vector<double>& rep_isr,
                             const ScorerOptions& options) {
  if (reps.node.size() != rep_loss.size())
    throw std::invalid_argument("score_clusters: loss size mismatch");
  const bool use_isr = !rep_isr.empty() && options.isr_weight > 0.0;
  if (use_isr && rep_isr.size() != reps.node.size())
    throw std::invalid_argument("score_clusters: isr size mismatch");

  const std::uint32_t nc = store.num_clusters();
  ClusterScores out;
  out.mean_loss.assign(nc, 0.0);
  if (use_isr) out.mean_isr.assign(nc, 0.0);
  std::vector<std::uint32_t> count(nc, 0);

  for (std::size_t i = 0; i < reps.node.size(); ++i) {
    const std::uint32_t c = reps.cluster[i];
    out.mean_loss[c] += rep_loss[i];
    if (use_isr) out.mean_isr[c] += rep_isr[i];
    ++count[c];
  }
  for (std::uint32_t c = 0; c < nc; ++c) {
    if (count[c] == 0) continue;
    out.mean_loss[c] /= count[c];
    if (use_isr) out.mean_isr[c] /= count[c];
  }

  // Normalize the two signals against each other (both to mean 1), then sum.
  std::vector<double> loss_norm = out.mean_loss;
  normalize_mean(loss_norm);
  std::vector<double> isr_norm;
  if (use_isr) {
    isr_norm = out.mean_isr;
    normalize_mean(isr_norm);
  }

  out.combined.assign(nc, 0.0);
  for (std::uint32_t c = 0; c < nc; ++c) {
    if (count[c] == 0) {
      out.combined[c] = 1.0;  // unseen cluster: neutral
      continue;
    }
    double s = loss_norm[c];
    if (use_isr) s += options.isr_weight * isr_norm[c];
    out.combined[c] = s;
  }
  if (use_isr) {
    // Keep the combined scale comparable whether or not ISR is fused.
    for (double& s : out.combined) s /= (1.0 + options.isr_weight);
  }
  return out;
}

}  // namespace sgm::core
