#include "core/dirty_tracker.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sgm::core {

using tensor::Matrix;

DirtyTracker::DirtyTracker(std::size_t num_points, std::size_t width,
                           double relative_tolerance)
    : n_(num_points), w_(width), tol_(relative_tolerance) {
  if (width == 0)
    throw std::invalid_argument("DirtyTracker: width must be >= 1");
  if (relative_tolerance < 0.0)
    throw std::invalid_argument("DirtyTracker: tolerance must be >= 0");
  scale_.assign(w_, 1.0);
  ref_.assign(n_ * w_, 0.0);
  last_.assign(n_ * w_, 0.0);
  has_ref_.assign(n_, 0);
  observed_.assign(n_, 0);
  dirty_.assign(n_, 0);
}

void DirtyTracker::set_scales(std::vector<double> scales) {
  if (scales.size() != w_)
    throw std::invalid_argument("DirtyTracker::set_scales: width mismatch");
  for (double s : scales)
    if (!(s > 0.0))
      throw std::invalid_argument("DirtyTracker::set_scales: scales must be > 0");
  scale_ = std::move(scales);
}

bool DirtyTracker::row_dirty(const double* ref, const double* cand) const {
  for (std::size_t c = 0; c < w_; ++c) {
    const double scale =
        relative_to_reference_
            ? std::max(std::fabs(ref[c]), reference_floor_)
            : scale_[c];
    if (std::fabs(cand[c] - ref[c]) > tol_ * scale) return true;
  }
  return false;
}

void DirtyTracker::rebase_all(const Matrix& values) {
  if (values.rows() != n_ || values.cols() != w_)
    throw std::invalid_argument("DirtyTracker::rebase_all: shape mismatch");
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t c = 0; c < w_; ++c) ref_[i * w_ + c] = values(i, c);
  has_ref_.assign(n_, 1);
  observed_.assign(n_, 0);
  dirty_.assign(n_, 0);
  dirty_count_ = 0;
  observed_count_ = 0;
}

void DirtyTracker::rebase_rows(const std::vector<std::uint32_t>& ids,
                               const Matrix& rows) {
  if (rows.rows() != ids.size() || (rows.rows() > 0 && rows.cols() != w_))
    throw std::invalid_argument("DirtyTracker::rebase_rows: shape mismatch");
  for (std::size_t t = 0; t < ids.size(); ++t) {
    const std::uint32_t i = ids[t];
    if (i >= n_)
      throw std::out_of_range("DirtyTracker::rebase_rows: id out of range");
    for (std::size_t c = 0; c < w_; ++c) ref_[i * w_ + c] = rows(t, c);
    has_ref_[i] = 1;
    if (dirty_[i]) {
      dirty_[i] = 0;
      --dirty_count_;
    }
  }
}

std::vector<std::uint32_t> DirtyTracker::diff(const Matrix& values) const {
  if (values.rows() != n_ || values.cols() != w_)
    throw std::invalid_argument("DirtyTracker::diff: shape mismatch");
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < n_; ++i) {
    if (!has_ref_[i] || row_dirty(&ref_[i * w_], values.row(i)))
      out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

std::size_t DirtyTracker::observe(const std::vector<std::uint32_t>& ids,
                                  const std::vector<double>& values) {
  if (w_ != 1)
    throw std::logic_error("DirtyTracker::observe: stream interface is width-1");
  if (values.size() != ids.size())
    throw std::invalid_argument("DirtyTracker::observe: size mismatch");
  std::size_t newly_dirty = 0;
  for (std::size_t t = 0; t < ids.size(); ++t) {
    const std::uint32_t i = ids[t];
    if (i >= n_)
      throw std::out_of_range("DirtyTracker::observe: id out of range");
    last_[i] = values[t];
    if (!observed_[i]) {
      observed_[i] = 1;
      ++observed_count_;
    }
    if (!has_ref_[i]) {
      ref_[i] = values[t];
      has_ref_[i] = 1;
      continue;
    }
    if (!dirty_[i] && row_dirty(&ref_[i], &values[t])) {
      dirty_[i] = 1;
      ++dirty_count_;
      ++newly_dirty;
    }
  }
  return newly_dirty;
}

void DirtyTracker::settle() {
  for (std::size_t i = 0; i < n_; ++i) {
    if (!observed_[i]) continue;
    for (std::size_t c = 0; c < w_; ++c) ref_[i * w_ + c] = last_[i * w_ + c];
    has_ref_[i] = 1;
  }
  dirty_.assign(n_, 0);
  dirty_count_ = 0;
}

double DirtyTracker::dirty_fraction() const {
  if (observed_count_ == 0) return 0.0;
  return static_cast<double>(dirty_count_) /
         static_cast<double>(observed_count_);
}

}  // namespace sgm::core
