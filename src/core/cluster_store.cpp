#include "core/cluster_store.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sgm::core {

ClusterStore::ClusterStore(graph::Clustering clustering) {
  rebuild(std::move(clustering));
}

void ClusterStore::rebuild(graph::Clustering clustering) {
  clustering_ = std::move(clustering);
  // Clear-then-resize keeps each member vector's capacity across rebuilds.
  for (auto& m : members_) m.clear();
  members_.resize(clustering_.num_clusters);
  for (std::uint32_t v = 0; v < clustering_.node_cluster.size(); ++v)
    members_[clustering_.node_cluster[v]].push_back(v);
}

ClusterStore::Representatives ClusterStore::sample_representatives(
    double rep_fraction, util::Rng& rng) const {
  if (rep_fraction <= 0.0 || rep_fraction > 1.0)
    throw std::invalid_argument(
        "sample_representatives: rep_fraction must be in (0, 1]");
  Representatives reps;
  for (std::uint32_t c = 0; c < num_clusters(); ++c) {
    const auto& m = members_[c];
    const auto want = static_cast<std::uint32_t>(std::max<double>(
        1.0, std::ceil(rep_fraction * static_cast<double>(m.size()))));
    std::vector<std::uint32_t> local = rng.sample_without_replacement(
        static_cast<std::uint32_t>(m.size()), want);
    for (std::uint32_t li : local) {
      reps.node.push_back(m[li]);
      reps.cluster.push_back(c);
    }
  }
  return reps;
}

}  // namespace sgm::core
