#include "core/epoch_builder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sgm::core {

Epoch build_epoch(const ClusterStore& store,
                  const std::vector<double>& cluster_scores,
                  const EpochBuilderOptions& options, util::Rng& rng) {
  const std::uint32_t nc = store.num_clusters();
  if (cluster_scores.size() != nc)
    throw std::invalid_argument("build_epoch: score count mismatch");
  if (options.ratio_min <= 0.0 || options.ratio_max < options.ratio_min)
    throw std::invalid_argument("build_epoch: bad ratio range");

  const double n = static_cast<double>(store.num_nodes());
  const double target = std::max(1.0, options.epoch_fraction * n);

  // Linear score -> ratio map over the observed score range.
  double lo = cluster_scores[0], hi = cluster_scores[0];
  for (double s : cluster_scores) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  const double span = hi - lo;

  std::vector<double> raw(nc);
  double raw_total = 0.0;
  for (std::uint32_t c = 0; c < nc; ++c) {
    const double t = span > 0.0 ? (cluster_scores[c] - lo) / span : 0.5;
    const double ratio =
        options.ratio_min + t * (options.ratio_max - options.ratio_min);
    raw[c] = ratio * static_cast<double>(store.size(c));
    raw_total += raw[c];
  }
  const double scale = raw_total > 0.0 ? target / raw_total : 1.0;

  Epoch epoch;
  epoch.per_cluster.assign(nc, 0);
  for (std::uint32_t c = 0; c < nc; ++c) {
    const auto size_c = store.size(c);
    auto want = static_cast<std::uint32_t>(std::llround(raw[c] * scale));
    want = std::clamp<std::uint32_t>(want, 1u, size_c);  // floor of 1
    epoch.per_cluster[c] = want;
    const auto& members = store.members(c);
    std::vector<std::uint32_t> local =
        rng.sample_without_replacement(size_c, want);
    for (std::uint32_t li : local) epoch.indices.push_back(members[li]);
  }
  return epoch;
}

}  // namespace sgm::core
