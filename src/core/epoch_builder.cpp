#include "core/epoch_builder.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sgm::core {

Epoch build_epoch(const ClusterStore& store,
                  const std::vector<double>& cluster_scores,
                  const EpochBuilderOptions& options, util::Rng& rng) {
  const std::uint32_t nc = store.num_clusters();
  if (cluster_scores.size() != nc)
    throw std::invalid_argument("build_epoch: score count mismatch");
  if (options.ratio_min <= 0.0 || options.ratio_max < options.ratio_min)
    throw std::invalid_argument("build_epoch: bad ratio range");
  if (nc == 0) return {};  // empty clustering: nothing to apportion

  const double n = static_cast<double>(store.num_nodes());
  const double target = std::max(1.0, options.epoch_fraction * n);

  // Linear score -> ratio map over the observed score range.
  double lo = cluster_scores[0], hi = cluster_scores[0];
  for (double s : cluster_scores) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  const double span = hi - lo;

  std::vector<double> raw(nc);
  double raw_total = 0.0;
  for (std::uint32_t c = 0; c < nc; ++c) {
    const double t = span > 0.0 ? (cluster_scores[c] - lo) / span : 0.5;
    const double ratio =
        options.ratio_min + t * (options.ratio_max - options.ratio_min);
    raw[c] = ratio * static_cast<double>(store.size(c));
    raw_total += raw[c];
  }
  const double scale = raw_total > 0.0 ? target / raw_total : 1.0;

  // Largest-remainder apportionment of the P_i * S_i budget: clamping each
  // cluster to [1, size_c] independently lets the realized epoch drift far
  // from epoch_fraction * n once many clusters hit the floor or cap, so the
  // clamp residual is redistributed until the total matches the budget (the
  // budget itself clamped to what floor-of-1 and the cluster sizes allow).
  const std::uint64_t total_nodes = store.num_nodes();
  const std::uint64_t budget = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(std::llround(target)),
      static_cast<std::uint64_t>(nc), total_nodes);

  std::vector<std::uint32_t> want(nc);
  std::vector<double> remainder(nc);
  std::uint64_t total = 0;
  for (std::uint32_t c = 0; c < nc; ++c) {
    const double quota = raw[c] * scale;
    const double fl = std::floor(quota);
    remainder[c] = quota - fl;
    want[c] = std::clamp<std::uint32_t>(
        static_cast<std::uint32_t>(std::min<double>(fl, 4294967295.0)), 1u,
        store.size(c));
    total += want[c];
  }
  if (total < budget) {
    // Grant +1 by descending fractional remainder (ties: lower id) to
    // clusters with headroom; repeat passes until the budget is met.
    std::vector<std::uint32_t> order(nc);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return remainder[a] != remainder[b] ? remainder[a] > remainder[b]
                                          : a < b;
    });
    bool progressed = true;
    while (total < budget && progressed) {
      progressed = false;
      for (std::uint32_t c : order) {
        if (total >= budget) break;
        if (want[c] < store.size(c)) {
          ++want[c];
          ++total;
          progressed = true;
        }
      }
    }
  } else if (total > budget) {
    // Floors overshot: reclaim -1 by ascending remainder (ties: lower id)
    // from clusters above the floor of one.
    std::vector<std::uint32_t> order(nc);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return remainder[a] != remainder[b] ? remainder[a] < remainder[b]
                                          : a < b;
    });
    bool progressed = true;
    while (total > budget && progressed) {
      progressed = false;
      for (std::uint32_t c : order) {
        if (total <= budget) break;
        if (want[c] > 1) {
          --want[c];
          --total;
          progressed = true;
        }
      }
    }
  }

  Epoch epoch;
  epoch.per_cluster = want;
  for (std::uint32_t c = 0; c < nc; ++c) {
    const auto& members = store.members(c);
    std::vector<std::uint32_t> local =
        rng.sample_without_replacement(store.size(c), want[c]);
    for (std::uint32_t li : local) epoch.indices.push_back(members[li]);
  }
  return epoch;
}

}  // namespace sgm::core
