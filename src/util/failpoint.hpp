#pragma once
// Deterministic failpoint injection — named fault sites compiled into
// production code paths, inert unless armed.
//
// A failpoint is a named site; code declares one with either macro:
//
//     SGM_FAILPOINT("registry.publish.before_write");   // throws when fired
//     if (SGM_FAILPOINT_HIT("socket.short_send")) n = 1; // custom fault
//
// Sites register themselves in a process-wide registry on first execution
// (the macro caches the site in a function-local static, so each call site
// resolves its name exactly once). An unarmed site costs one relaxed atomic
// load — cheap enough to leave in release builds and on serving hot paths.
//
// Arming, via environment or programmatically:
//
//     SGM_FAILPOINTS="durable_write.torn=once,trainer.diverge=after:100"
//     FailpointRegistry::instance().arm("durable_write.torn", "prob:0.01");
//
// Spec grammar (one action per site):
//     once      fire on the next evaluation, then disarm
//     always    fire on every evaluation
//     prob:P    fire each evaluation with probability P in [0, 1]
//     after:N   pass N evaluations, fire on the N+1-th, then disarm
//
// Determinism contract: prob: draws route through one util::Rng owned by
// the registry (seeded from SGM_FAILPOINT_SEED or set_seed()), never
// wall-clock or std::random_device — a chaos run replays exactly given the
// same seed and interleaving. scripts/lint_determinism.py enforces this.

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace sgm::util {

/// Thrown by SGM_FAILPOINT(name) when the site fires — simulates a crash
/// at that point (callers are expected to NOT catch it except in tests).
class FailpointTriggered : public std::runtime_error {
 public:
  explicit FailpointTriggered(const std::string& site)
      : std::runtime_error("failpoint fired: " + site), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// One named injection site. Construction goes through
/// FailpointRegistry (Failpoint::site); sites live for the process
/// lifetime and are never destroyed, so cached references stay valid.
class Failpoint {
 public:
  enum class Mode { kOff, kOnce, kAlways, kProb, kAfter };

  /// Get-or-create the site with this name (process-wide registry).
  static Failpoint& site(const char* name);

  /// True when the site is armed and its spec says "fire now". The
  /// unarmed fast path is a single relaxed atomic load.
  bool should_fire() {
    if (!armed_.load(std::memory_order_relaxed)) return false;
    return fire_slow();
  }

  const std::string& name() const { return name_; }

  /// Evaluations while armed / times fired (test observability).
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t fires() const {
    return fires_.load(std::memory_order_relaxed);
  }

 private:
  friend class FailpointRegistry;
  explicit Failpoint(std::string name) : name_(std::move(name)) {}
  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  bool fire_slow();

  std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> fires_{0};
  // Spec state, guarded by the registry mutex (armed_ is the fast-path
  // mirror: true iff mode_ != kOff).
  Mode mode_ = Mode::kOff;
  double prob_ = 0.0;
  std::uint64_t remaining_passes_ = 0;
};

/// Snapshot of one site for listings/tests.
struct FailpointInfo {
  std::string name;
  bool armed = false;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

/// Process-wide failpoint table. Thread-safe; sites are created lazily by
/// the macros and armed by name (arming a name before its site first
/// executes is fine — the spec is applied when the site registers).
class FailpointRegistry {
 public:
  static FailpointRegistry& instance();

  /// Arm `name` with a spec ("once" | "always" | "prob:P" | "after:N").
  /// Throws std::invalid_argument on a malformed spec.
  void arm(const std::string& name, const std::string& spec);

  void disarm(const std::string& name);
  void disarm_all();

  /// Reseed the prob: draw stream (chaos replay). Also settable up front
  /// via the SGM_FAILPOINT_SEED environment variable.
  void set_seed(std::uint64_t seed);

  /// Parse an SGM_FAILPOINTS-style list ("a=once,b=prob:0.5") and arm
  /// every entry. Throws std::invalid_argument on malformed input.
  void arm_from_spec_list(const std::string& list);

  std::vector<FailpointInfo> list() const;

  /// Total fires across all sites (quick "did anything trip" probe).
  std::uint64_t total_fires() const;

 private:
  friend class Failpoint;
  FailpointRegistry();

  Failpoint& site_locked(const std::string& name) SGM_REQUIRES(mu_);
  static void apply_spec(Failpoint& fp, const std::string& spec);

  mutable Mutex mu_;
  // Sites are heap-allocated and intentionally leaked at process exit:
  // macro call sites hold references from static initializers, and
  // destruction order across TUs is unknowable.
  std::vector<Failpoint*> sites_ SGM_GUARDED_BY(mu_);
  Rng rng_ SGM_GUARDED_BY(mu_){0x5AFE5EEDull};
  // Specs armed before their site first executes, as (name, spec) pairs.
  std::vector<std::pair<std::string, std::string>> pending_
      SGM_GUARDED_BY(mu_);
};

}  // namespace sgm::util

/// Evaluates to true when the named failpoint is armed and fires now.
/// Use for custom faults (torn write, forced NaN, short send).
#define SGM_FAILPOINT_HIT(site_name)                               \
  ([]() -> bool {                                                  \
    static ::sgm::util::Failpoint& sgm_fp_site =                   \
        ::sgm::util::Failpoint::site(site_name);                   \
    return sgm_fp_site.should_fire();                              \
  }())

/// Throws util::FailpointTriggered when the named failpoint fires —
/// simulates a crash between two steps of a protocol.
#define SGM_FAILPOINT(site_name)                                   \
  do {                                                             \
    if (SGM_FAILPOINT_HIT(site_name))                              \
      throw ::sgm::util::FailpointTriggered(site_name);            \
  } while (false)
