#pragma once
// Capability-annotated mutex / scoped-lock / condition-variable wrappers —
// the only locking primitives allowed in src/ (scripts/lint_determinism.py
// bans raw std::mutex, std::lock_guard, std::unique_lock and
// std::condition_variable everywhere else).
//
// Why a wrapper: clang's -Wthread-safety proves at compile time that every
// access to a SGM_GUARDED_BY(mu) member happens with mu held, but it can
// only reason about capabilities it can see. std::mutex carries no
// annotations, so the analysis is blind to it; util::Mutex is the same
// std::mutex with the capability attributes attached (zero overhead — every
// method is an inline forward).
//
// Condition-variable idiom: CondVar waits on the annotated Mutex directly
// (adopt-lock trick over std::condition_variable, so the futex fast path is
// preserved). Write wait loops inline rather than with predicate lambdas —
//
//     MutexLock lock(mu_);
//     while (!stop_ && queue_.empty()) cv_.wait(mu_);
//
// — because the analysis treats a lambda body as a separate unannotated
// function and would (correctly) refuse to let it read guarded members.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace sgm::util {

/// std::mutex with the clang capability attributes attached.
class SGM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SGM_ACQUIRE() { m_.lock(); }
  void unlock() SGM_RELEASE() { m_.unlock(); }
  bool try_lock() SGM_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII scoped lock over a Mutex (the std::lock_guard of this codebase).
class SGM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SGM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SGM_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting on an annotated Mutex. The caller holds the
/// Mutex (via MutexLock) around every wait, exactly as with
/// std::condition_variable — SGM_REQUIRES(mu) lets the analysis check it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning. Spurious wakeups happen; always wait in a condition loop.
  void wait(Mutex& mu) SGM_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait so
    // std::condition_variable's fast path applies, then release the
    // unique_lock's ownership claim without unlocking — the caller's
    // MutexLock still owns the mutex, which wait() reacquired.
    std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// wait() with a deadline; returns std::cv_status::timeout when the
  /// deadline passed before a notification.
  template <class Clock, class Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      SGM_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sgm::util
