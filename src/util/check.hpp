#pragma once
// Contract macros — the one way to state runtime invariants and boundary
// preconditions in this codebase (replacing the former ad-hoc assert/throw
// mix). Every failure message carries the failed expression and file:line,
// so a violation in a soak log is attributable without a debugger.
//
//   SGM_CHECK(cond, ...)        always-on internal invariant; throws
//                               util::CheckError (a std::runtime_error) —
//                               firing means a bug in this library
//   SGM_CHECK_ARG(cond, ...)    caller-input precondition at an API
//                               boundary; throws std::invalid_argument
//   SGM_CHECK_BOUNDS(cond, ...) index/range precondition; throws
//                               std::out_of_range
//   SGM_DCHECK(cond, ...)       debug-only invariant (hot paths); compiles
//                               to nothing unless SGM_DEBUG_CHECKS is
//                               defined (CMake defines it for Debug builds)
//   SGM_AUDIT(expr)             heavy invariant sweep (graph symmetry, CSR
//                               well-formedness, ...); evaluated only when
//                               audits are enabled via the SGM_AUDIT=1
//                               environment variable. The audit functions
//                               themselves are plain functions built on
//                               SGM_CHECK, so tests call them directly.
//
// Extra arguments after the condition are streamed into the message:
//   SGM_CHECK(version > prev_, "registry version went backwards: ",
//             version, " after ", prev_);

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace sgm::util {

/// Thrown by SGM_CHECK / SGM_DCHECK / audit failures. Derives from
/// std::runtime_error so existing catch sites (and tests pinning
/// std::runtime_error) treat an invariant violation as the internal error
/// it is.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

/// True when the SGM_AUDIT environment variable is set to a value other
/// than "" or "0" (read once per process).
bool audits_enabled();

namespace detail {

template <class... Parts>
std::string check_message(const char* kind, const char* expr,
                          const char* file, int line, const Parts&... parts) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  if constexpr (sizeof...(parts) > 0) {
    os << ": ";
    (os << ... << parts);
  }
  return os.str();
}

template <class Error, class... Parts>
[[noreturn]] void check_fail(const char* kind, const char* expr,
                             const char* file, int line,
                             const Parts&... parts) {
  throw Error(check_message(kind, expr, file, line, parts...));
}

template <class... Args>
inline void ignore(const Args&...) {}

}  // namespace detail
}  // namespace sgm::util

#define SGM_CHECK(cond, ...)                                             \
  do {                                                                   \
    if (!(cond)) [[unlikely]]                                            \
      ::sgm::util::detail::check_fail<::sgm::util::CheckError>(          \
          "SGM_CHECK", #cond, __FILE__, __LINE__ __VA_OPT__(, )          \
              __VA_ARGS__);                                              \
  } while (false)

#define SGM_CHECK_ARG(cond, ...)                                         \
  do {                                                                   \
    if (!(cond)) [[unlikely]]                                            \
      ::sgm::util::detail::check_fail<std::invalid_argument>(            \
          "SGM_CHECK_ARG", #cond, __FILE__, __LINE__ __VA_OPT__(, )      \
              __VA_ARGS__);                                              \
  } while (false)

#define SGM_CHECK_BOUNDS(cond, ...)                                      \
  do {                                                                   \
    if (!(cond)) [[unlikely]]                                            \
      ::sgm::util::detail::check_fail<std::out_of_range>(                \
          "SGM_CHECK_BOUNDS", #cond, __FILE__, __LINE__ __VA_OPT__(, )   \
              __VA_ARGS__);                                              \
  } while (false)

#ifdef SGM_DEBUG_CHECKS
#define SGM_DCHECK(cond, ...)                                            \
  do {                                                                   \
    if (!(cond)) [[unlikely]]                                            \
      ::sgm::util::detail::check_fail<::sgm::util::CheckError>(          \
          "SGM_DCHECK", #cond, __FILE__, __LINE__ __VA_OPT__(, )         \
              __VA_ARGS__);                                              \
  } while (false)
#else
// Release: never evaluated (zero cost on hot paths), but still compiled so
// a DCHECK cannot bit-rot, and its operands do not trip -Wunused.
#define SGM_DCHECK(cond, ...)                                  \
  do {                                                         \
    if (false) {                                               \
      (void)(cond);                                            \
      ::sgm::util::detail::ignore(__VA_ARGS__);                \
    }                                                          \
  } while (false)
#endif

#define SGM_AUDIT(expr)                          \
  do {                                           \
    if (::sgm::util::audits_enabled()) (expr);   \
  } while (false)
