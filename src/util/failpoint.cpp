#include "util/failpoint.hpp"

#include <cstdlib>
#include <utility>

namespace sgm::util {

namespace {

// Parses "once" | "always" | "prob:P" | "after:N" into mode + params.
// Throws std::invalid_argument with the offending spec on malformed input.
void parse_spec(const std::string& spec, Failpoint::Mode& mode, double& prob,
                std::uint64_t& passes) {
  prob = 0.0;
  passes = 0;
  if (spec == "once") {
    mode = Failpoint::Mode::kOnce;
    return;
  }
  if (spec == "always") {
    mode = Failpoint::Mode::kAlways;
    return;
  }
  if (spec.rfind("prob:", 0) == 0) {
    const std::string arg = spec.substr(5);
    std::size_t used = 0;
    double p = -1.0;
    try {
      p = std::stod(arg, &used);
    } catch (const std::exception&) {
      throw std::invalid_argument("failpoint: bad spec '" + spec + "'");
    }
    if (used != arg.size() || !(p >= 0.0 && p <= 1.0))
      throw std::invalid_argument("failpoint: bad spec '" + spec +
                                  "' (want prob:P with P in [0,1])");
    mode = Failpoint::Mode::kProb;
    prob = p;
    return;
  }
  if (spec.rfind("after:", 0) == 0) {
    const std::string arg = spec.substr(6);
    if (arg.empty() ||
        arg.find_first_not_of("0123456789") != std::string::npos)
      throw std::invalid_argument("failpoint: bad spec '" + spec +
                                  "' (want after:N with N >= 0)");
    mode = Failpoint::Mode::kAfter;
    passes = std::strtoull(arg.c_str(), nullptr, 10);
    return;
  }
  throw std::invalid_argument(
      "failpoint: unknown spec '" + spec +
      "' (want once | always | prob:P | after:N)");
}

}  // namespace

Failpoint& Failpoint::site(const char* name) {
  FailpointRegistry& reg = FailpointRegistry::instance();
  MutexLock lock(reg.mu_);
  return reg.site_locked(name);
}

bool Failpoint::fire_slow() {
  FailpointRegistry& reg = FailpointRegistry::instance();
  MutexLock lock(reg.mu_);
  hits_.fetch_add(1, std::memory_order_relaxed);
  bool fire = false;
  switch (mode_) {
    case Mode::kOff:
      break;  // lost a disarm race; stay quiet
    case Mode::kOnce:
      fire = true;
      mode_ = Mode::kOff;
      armed_.store(false, std::memory_order_relaxed);
      break;
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kProb:
      fire = reg.rng_.uniform() < prob_;
      break;
    case Mode::kAfter:
      if (remaining_passes_ == 0) {
        fire = true;
        mode_ = Mode::kOff;
        armed_.store(false, std::memory_order_relaxed);
      } else {
        --remaining_passes_;
      }
      break;
  }
  if (fire) fires_.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

FailpointRegistry& FailpointRegistry::instance() {
  static FailpointRegistry* reg = new FailpointRegistry();  // never destroyed
  return *reg;
}

FailpointRegistry::FailpointRegistry() {
  // Object not yet shared: members are safe to touch without mu_ here.
  if (const char* seed = std::getenv("SGM_FAILPOINT_SEED"))
    rng_ = Rng(std::strtoull(seed, nullptr, 10));
  if (const char* specs = std::getenv("SGM_FAILPOINTS")) {
    std::string list(specs);
    std::size_t start = 0;
    while (start <= list.size()) {
      std::size_t comma = list.find(',', start);
      if (comma == std::string::npos) comma = list.size();
      const std::string entry = list.substr(start, comma - start);
      start = comma + 1;
      if (entry.empty()) continue;
      const std::size_t eq = entry.find('=');
      if (eq == std::string::npos || eq == 0)
        throw std::invalid_argument(
            "SGM_FAILPOINTS: bad entry '" + entry + "' (want name=spec)");
      // Validate the spec now so a typo fails at startup, not mid-run.
      Failpoint::Mode mode;
      double prob;
      std::uint64_t passes;
      parse_spec(entry.substr(eq + 1), mode, prob, passes);
      pending_.emplace_back(entry.substr(0, eq), entry.substr(eq + 1));
    }
  }
}

Failpoint& FailpointRegistry::site_locked(const std::string& name) {
  for (Failpoint* fp : sites_)
    if (fp->name_ == name) return *fp;
  auto* fp = new Failpoint(name);  // leaked by design: cached in statics
  sites_.push_back(fp);
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->first == name) {
      apply_spec(*fp, it->second);
      pending_.erase(it);
      break;
    }
  }
  return *fp;
}

void FailpointRegistry::apply_spec(Failpoint& fp, const std::string& spec) {
  parse_spec(spec, fp.mode_, fp.prob_, fp.remaining_passes_);
  fp.armed_.store(fp.mode_ != Failpoint::Mode::kOff,
                  std::memory_order_relaxed);
}

void FailpointRegistry::arm(const std::string& name,
                            const std::string& spec) {
  // Validate up front so a bad spec never half-arms a pending entry.
  Failpoint::Mode mode;
  double prob;
  std::uint64_t passes;
  parse_spec(spec, mode, prob, passes);

  MutexLock lock(mu_);
  for (Failpoint* fp : sites_) {
    if (fp->name_ == name) {
      apply_spec(*fp, spec);
      return;
    }
  }
  for (auto& entry : pending_) {
    if (entry.first == name) {
      entry.second = spec;
      return;
    }
  }
  pending_.emplace_back(name, spec);
}

void FailpointRegistry::disarm(const std::string& name) {
  MutexLock lock(mu_);
  for (Failpoint* fp : sites_) {
    if (fp->name_ == name) {
      fp->mode_ = Failpoint::Mode::kOff;
      fp->armed_.store(false, std::memory_order_relaxed);
    }
  }
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->first == name) {
      pending_.erase(it);
      break;
    }
  }
}

void FailpointRegistry::disarm_all() {
  MutexLock lock(mu_);
  for (Failpoint* fp : sites_) {
    fp->mode_ = Failpoint::Mode::kOff;
    fp->armed_.store(false, std::memory_order_relaxed);
  }
  pending_.clear();
}

void FailpointRegistry::set_seed(std::uint64_t seed) {
  MutexLock lock(mu_);
  rng_ = Rng(seed);
}

void FailpointRegistry::arm_from_spec_list(const std::string& list) {
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string entry = list.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument(
          "failpoint: bad entry '" + entry + "' (want name=spec)");
    arm(entry.substr(0, eq), entry.substr(eq + 1));
  }
}

std::vector<FailpointInfo> FailpointRegistry::list() const {
  MutexLock lock(mu_);
  std::vector<FailpointInfo> out;
  out.reserve(sites_.size());
  for (const Failpoint* fp : sites_) {
    FailpointInfo info;
    info.name = fp->name_;
    info.armed = fp->armed_.load(std::memory_order_relaxed);
    info.hits = fp->hits();
    info.fires = fp->fires();
    out.push_back(std::move(info));
  }
  return out;
}

std::uint64_t FailpointRegistry::total_fires() const {
  MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const Failpoint* fp : sites_) total += fp->fires();
  return total;
}

}  // namespace sgm::util
