#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace sgm::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state so nearby seeds give unrelated streams.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // (0 - n) % n with n == 0 is undefined behavior, not just a bad value.
  if (n == 0)
    throw std::invalid_argument("Rng::uniform_index: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::rademacher() { return (next_u64() & 1u) ? 1.0 : -1.0; }

void Rng::shuffle(std::vector<std::uint32_t>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(v[i - 1], v[j]);
  }
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  if (k > n) k = n;
  if (k == 0) return {};
  if (k * 3ull >= n) {
    std::vector<std::uint32_t> all(n);
    for (std::uint32_t i = 0; i < n; ++i) all[i] = i;
    shuffle(all);
    all.resize(k);
    return all;
  }
  // Floyd's algorithm: k iterations, O(k) expected memory.
  std::unordered_set<std::uint32_t> chosen;
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(uniform_index(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xD1B54A32D192ED03ull); }

RngState Rng::state() const {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.spare_normal = spare_normal_;
  st.has_spare = has_spare_;
  return st;
}

void Rng::set_state(const RngState& st) {
  for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  spare_normal_ = st.spare_normal;
  has_spare_ = st.has_spare;
}

}  // namespace sgm::util
