#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace sgm::util {

std::string format_double(double v) {
  // %.17g is the shortest fixed precision that round-trips every double
  // through strtod (%.9g, used previously, silently lost the low 8 digits
  // of mantissa — telemetry could not be compared exactly against the
  // in-memory TrainHistory).
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
  out_.flush();
  check_stream("writing header to");
}

void CsvWriter::row(const std::vector<double>& values) {
  if (values.size() != columns_)
    throw std::runtime_error("CsvWriter: row width mismatch for " + path_);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << format_double(values[i]);
  }
  out_ << '\n';
  out_.flush();
  check_stream("writing row to");
}

void CsvWriter::row_strings(const std::vector<std::string>& cells) {
  if (cells.size() != columns_)
    throw std::runtime_error("CsvWriter: row width mismatch for " + path_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  out_.flush();
  check_stream("writing row to");
}

void CsvWriter::close() {
  if (!out_.is_open()) return;
  out_.flush();
  check_stream("flushing");
  out_.close();
  check_stream("closing");
}

void CsvWriter::check_stream(const char* when) {
  if (!out_)
    throw std::runtime_error(std::string("CsvWriter: error ") + when + " " +
                             path_);
}

}  // namespace sgm::util
