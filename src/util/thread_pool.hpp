#pragma once
// Fixed-size worker pool + deterministic parallel-for — the refresh engine's
// threading substrate.
//
// Determinism contract (what makes `num_threads=N` byte-identical to
// `num_threads=1`): `parallel_for_chunks` splits an index range into chunks
// whose boundaries depend only on the `grain` argument — never on the thread
// count — and hands each chunk a stable chunk index. Callers that (a) write
// only to per-index or per-chunk slots inside the body and (b) merge
// per-chunk partial results sequentially in chunk order get bit-identical
// output no matter how many workers execute the chunks, because the
// *algorithm* (chunk layout + merge order) is fixed and only the *execution*
// is concurrent. With one thread the chunks simply run inline, in order.

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/mutex.hpp"

namespace sgm::util {

/// Resolves a requested thread count: n > 0 is taken literally; 0 selects
/// the `SGM_NUM_THREADS` environment variable when set (> 0), otherwise
/// std::thread::hardware_concurrency() (minimum 1).
std::size_t resolve_threads(std::size_t requested);

/// Fixed pool of worker threads draining a shared task queue. Safe to submit
/// from multiple threads (e.g. the trainer and an async rebuild worker at
/// once).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 resolves as resolve_threads(0)).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future carries its result (or exception).
  template <class F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mu_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs one queued task on the calling thread, if any is pending. Used by
  /// parallel_for_chunks waiters so nested parallel loops can never deadlock
  /// the pool (a blocked waiter drains the queue instead of just sleeping).
  bool try_run_one();

  /// Process-wide pool shared by all parallel loops. Sized to at least 4
  /// workers even on smaller machines so requests for num_threads > cores
  /// stay genuinely concurrent (this is what lets ThreadSanitizer exercise
  /// the concurrent paths on 1-2 core CI runners).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ SGM_GUARDED_BY(mu_);
  bool stop_ SGM_GUARDED_BY(mu_) = false;
};

/// Number of chunks `parallel_for_chunks(begin, end, grain, ...)` produces.
std::size_t num_chunks(std::size_t begin, std::size_t end, std::size_t grain);

/// Runs `fn(chunk_begin, chunk_end, chunk_index)` over every grain-sized
/// chunk of [begin, end). Chunk boundaries depend only on `grain` (see the
/// determinism contract above). Blocks until every chunk finished; the
/// calling thread participates, so this is safe to call from inside a pool
/// task (no deadlock — the caller can always drain the remaining chunks
/// itself). The first exception thrown by `fn` is rethrown here after all
/// chunks complete. num_threads: 0 = resolve_threads default, 1 = inline
/// serial execution.
void parallel_for_chunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    std::size_t num_threads,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

/// Per-index convenience over parallel_for_chunks for loops whose
/// iterations are independent and write only their own slot (no reduction):
/// runs `fn(i)` for every i in [begin, end).
void parallel_for(std::size_t begin, std::size_t end, std::size_t num_threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace sgm::util
