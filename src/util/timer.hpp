#pragma once
// Wall-clock timing used by the trainer telemetry and the benches.

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>

namespace sgm::util {

/// Monotonic stopwatch. `elapsed_s()` never goes backwards.
class WallTimer {
 public:
  WallTimer() { reset(); }

  void reset() { start_ = clock::now(); }

  /// Seconds since construction or last reset().
  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named phase durations (e.g. "forward", "sampler_refresh") so
/// overhead benches can attribute wall time to pipeline stages.
class PhaseAccumulator {
 public:
  /// Add `seconds` to phase `name`.
  void add(const std::string& name, double seconds);

  /// Total accumulated seconds for `name` (0 if never added).
  double total(const std::string& name) const;

  /// Number of add() calls for `name`.
  std::uint64_t count(const std::string& name) const;

  void clear();

  const std::unordered_map<std::string, double>& totals() const {
    return totals_;
  }

 private:
  std::unordered_map<std::string, double> totals_;
  std::unordered_map<std::string, std::uint64_t> counts_;
};

/// RAII helper: times a scope and adds it to an accumulator on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseAccumulator& acc, std::string name)
      : acc_(acc), name_(std::move(name)) {}
  ~ScopedPhase() { acc_.add(name_, timer_.elapsed_s()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseAccumulator& acc_;
  std::string name_;
  WallTimer timer_;
};

}  // namespace sgm::util
