#pragma once
// Lock-free latency histogram for the serving metrics endpoint and
// bench_serve.
//
// HDR-style bucketing: durations are recorded in integer nanoseconds and
// bucketed by (octave, 4-bit sub-bucket), i.e. 16 geometric sub-buckets per
// power of two, so quantile estimates carry at most 1/16 (~6%) relative
// error across the whole range — microseconds to minutes — with a fixed,
// small table. record() is a single relaxed atomic increment (plus one for
// the running sum), so hot serving paths can record every request without a
// lock and ThreadSanitizer stays quiet; quantiles are computed from an
// explicit snapshot() so readers always see a consistent view.

#include <atomic>
#include <cstdint>
#include <vector>

namespace sgm::util {

/// Immutable copy of a histogram's counters; all quantile math runs here.
struct HistogramSnapshot {
  std::vector<std::uint64_t> counts;  ///< per-bucket counts
  std::uint64_t total = 0;            ///< sum of counts
  std::uint64_t sum_ns = 0;           ///< sum of recorded durations

  /// Smallest recorded-duration upper bound (seconds) such that at least
  /// ceil(q * total) samples fall at or below it. q outside (0, 1] is
  /// clamped; returns 0 when empty.
  double quantile(double q) const;

  double mean_seconds() const;
};

class LatencyHistogram {
 public:
  LatencyHistogram();

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one duration. Negative values clamp to zero; anything beyond
  /// ~18 minutes lands in the top bucket. Thread-safe, lock-free.
  void record(double seconds) { record_ns(to_ns(seconds)); }
  void record_ns(std::uint64_t ns);

  std::uint64_t count() const {
    return total_.load(std::memory_order_relaxed);
  }
  double total_seconds() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }

  /// Consistent copy of the counters (relaxed reads; exact once recording
  /// has quiesced, a close approximation while it has not).
  HistogramSnapshot snapshot() const;

  /// Convenience over snapshot().quantile().
  double quantile(double q) const { return snapshot().quantile(q); }

  void reset();

  // Bucket geometry (shared with HistogramSnapshot::quantile).
  static constexpr std::uint32_t kSubBucketBits = 4;  // 16 per octave
  static std::size_t bucket_count();
  static std::size_t bucket_index(std::uint64_t ns);
  /// Inclusive upper bound (ns) of bucket `i`.
  static std::uint64_t bucket_upper_ns(std::size_t i);

 private:
  static std::uint64_t to_ns(double seconds);

  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

}  // namespace sgm::util
