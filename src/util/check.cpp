#include "util/check.hpp"

namespace sgm::util {

bool audits_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("SGM_AUDIT");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
  }();
  return enabled;
}

}  // namespace sgm::util
