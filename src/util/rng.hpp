#pragma once
// Deterministic, seedable random number generation for the whole library.
//
// Every stochastic component in sgm-pinn (point-cloud generation, weight
// init, mini-batch selection, JL projections, ...) takes an explicit Rng so
// experiments are reproducible run-to-run and arm-to-arm; the benches average
// over seeds the same way the paper averages over 5 runs.

#include <cstdint>
#include <vector>

namespace sgm::util {

/// Complete serializable Rng state — capturing and restoring it resumes
/// the stream exactly (trainer snapshots / durable train checkpoints).
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  double spare_normal = 0.0;
  bool has_spare = false;
};

/// xoshiro256** — small, fast, high-quality PRNG (Blackman & Vigna).
/// Not cryptographic; plenty for Monte-Carlo sampling and initialization.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Throws std::invalid_argument when n == 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (cached spare value).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Rademacher ±1 value (for JL sketches).
  double rademacher();

  /// Fisher–Yates shuffle of an index vector.
  void shuffle(std::vector<std::uint32_t>& v);

  /// Sample `k` distinct indices from [0, n) (k <= n), ascending order not
  /// guaranteed. Uses Floyd's algorithm for k << n, shuffle otherwise.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

  /// Derive an independent child stream (for per-thread / per-component use).
  Rng split();

  /// Snapshot / restore the full generator state (byte-exact resume).
  RngState state() const;
  void set_state(const RngState& st);

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace sgm::util
