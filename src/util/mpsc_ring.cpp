#include "util/mpsc_ring.hpp"

namespace sgm::util {

RingGate::Ticket RingGate::prepare_wait() {
  // seq_cst RMW: the Dekker store half. Everything the caller re-checks
  // after this (the ring) is ordered after the waiter count became visible,
  // so a producer that misses the count must have pushed late enough for
  // the recheck to see its item.
  waiters_.fetch_add(1, std::memory_order_seq_cst);
  MutexLock lock(mu_);
  return epoch_;
}

void RingGate::cancel_wait() {
  waiters_.fetch_sub(1, std::memory_order_release);
}

void RingGate::wait(Ticket ticket) {
  {
    MutexLock lock(mu_);
    while (epoch_ == ticket) cv_.wait(mu_);
  }
  waiters_.fetch_sub(1, std::memory_order_release);
}

bool RingGate::wait_until(Ticket ticket,
                          std::chrono::steady_clock::time_point deadline) {
  bool notified = true;
  {
    MutexLock lock(mu_);
    while (epoch_ == ticket) {
      if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout &&
          epoch_ == ticket) {
        notified = false;
        break;
      }
    }
  }
  waiters_.fetch_sub(1, std::memory_order_release);
  return notified;
}

void RingGate::notify() {
  // Dekker load half, as an identity RMW (not a fence: TSan cannot model
  // fences, and an RMW makes the pairing airtight in the formal model).
  // If this reads 0, prepare_wait's fetch_add is later in waiters_'s
  // modification order and reads-from this RMW's write — that
  // synchronizes-with edge orders the caller's push before the waiter's
  // recheck, so the item cannot be missed. If it reads > 0, we broadcast.
  if (waiters_.fetch_add(0, std::memory_order_seq_cst) == 0) return;
  bump_and_broadcast();
}

void RingGate::notify_all() { bump_and_broadcast(); }

void RingGate::bump_and_broadcast() {
  {
    MutexLock lock(mu_);
    ++epoch_;
  }
  cv_.notify_all();
}

}  // namespace sgm::util
