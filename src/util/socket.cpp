#include "util/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/failpoint.hpp"

namespace sgm::util {

namespace {
std::runtime_error sys_error(const char* what) {
  return std::runtime_error(std::string(what) + ": " +
                            std::strerror(errno));
}

timeval to_timeval(double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  return tv;
}

void set_fd_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags) ::fcntl(fd, F_SETFL, want);
}
}  // namespace

// ---------------------------------------------------------------------------
// TcpSocket
// ---------------------------------------------------------------------------

TcpSocket::TcpSocket(TcpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

long TcpSocket::read_some(char* buf, std::size_t n) {
  while (true) {
    const ssize_t r = ::recv(fd_, buf, n, 0);
    if (r >= 0) return static_cast<long>(r);
    if (errno == EINTR) continue;
    return -1;
  }
}

long TcpSocket::read_nb(char* buf, std::size_t n) {
  while (true) {
    const ssize_t r = ::recv(fd_, buf, n, 0);
    if (r >= 0) return static_cast<long>(r);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    return -1;
  }
}

long TcpSocket::write_some(const char* buf, std::size_t n) {
  // socket.short_send caps the chunk at one byte, as in send_all, so the
  // reactor's partial-write continuation is drivable deterministically.
  const std::size_t chunk = SGM_FAILPOINT_HIT("socket.short_send")
                                ? std::min<std::size_t>(1, n)
                                : n;
  while (true) {
    const ssize_t w = ::send(fd_, buf, chunk, MSG_NOSIGNAL);
    if (w >= 0) return static_cast<long>(w);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    return -1;
  }
}

void TcpSocket::set_nonblocking(bool on) { set_fd_nonblocking(fd_, on); }

bool TcpSocket::send_all(int fd, const char* buf, std::size_t n) {
  // socket.short_send caps every send at one byte, forcing the partial-
  // write resume path that a loopback kernel almost never exercises.
  const bool short_sends = SGM_FAILPOINT_HIT("socket.short_send");
  std::size_t sent = 0;
  while (sent < n) {
    const std::size_t chunk = short_sends ? 1 : n - sent;
    const ssize_t w = ::send(fd, buf + sent, chunk, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    // Everything else — peer gone (EPIPE/ECONNRESET), SO_SNDTIMEO expiry
    // (EAGAIN), bad fd — is a failed write; the caller owns the fallout.
    return false;
  }
  return true;
}

void TcpSocket::set_nodelay(bool on) {
  const int flag = on ? 1 : 0;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag));
}

void TcpSocket::set_recv_timeout(double seconds) {
  const timeval tv = to_timeval(seconds);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void TcpSocket::set_send_timeout(double seconds) {
  const timeval tv = to_timeval(seconds);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void TcpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw sys_error("TcpListener: socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    throw sys_error("TcpListener: bind");
  }
  if (::listen(listen_fd_, backlog) < 0) {
    ::close(listen_fd_);
    throw sys_error("TcpListener: listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    ::close(listen_fd_);
    throw sys_error("TcpListener: getsockname");
  }
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_pipe_) < 0) {
    ::close(listen_fd_);
    throw sys_error("TcpListener: pipe");
  }
}

TcpListener::~TcpListener() {
  close();
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

TcpSocket TcpListener::accept() {
  while (true) {
    if (closed_.load(std::memory_order_acquire)) return TcpSocket();
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return TcpSocket();
    }
    // Wake-pipe readable => close() was called while we were blocked.
    if (fds[1].revents != 0 || closed_.load(std::memory_order_acquire))
      return TcpSocket();
    if (!(fds[0].revents & POLLIN)) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return TcpSocket();
    }
    return TcpSocket(fd);
  }
}

void TcpListener::set_nonblocking(bool on) {
  set_fd_nonblocking(listen_fd_, on);
}

TcpSocket TcpListener::accept_nb(bool& would_block) {
  would_block = false;
  while (true) {
    if (closed_.load(std::memory_order_acquire)) return TcpSocket();
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd >= 0) return TcpSocket(fd);
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      would_block = true;
      return TcpSocket();
    }
    return TcpSocket();
  }
}

void TcpListener::close() {
  // Only signals: the fds stay open until destruction so a concurrent
  // accept() never polls a closed descriptor (that would be a race).
  if (!closed_.exchange(true, std::memory_order_acq_rel)) {
    const char byte = 0;
    [[maybe_unused]] ssize_t w = ::write(wake_pipe_[1], &byte, 1);
  }
}

TcpSocket tcp_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw sys_error("tcp_connect: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
         0) {
    if (errno == EINTR) continue;
    ::close(fd);
    throw sys_error("tcp_connect: connect");
  }
  return TcpSocket(fd);
}

}  // namespace sgm::util
