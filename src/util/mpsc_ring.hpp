#pragma once
// Bounded lock-free ring buffer + parked-consumer wakeup gate — the request
// path of the serving engine (serve/batcher.*).
//
// MpscRing<T> is the classic slot-sequence (Vyukov) bounded queue: every
// slot carries its own sequence ticket, producers claim a position with one
// CAS on the tail and publish the payload with a release store of the slot
// sequence; consumers mirror that on the head. No mutex anywhere on the
// enqueue/dequeue path, and the contended atomics (head, tail, each slot)
// live on their own cache lines so producers never false-share with the
// consumer. The name reflects the serving topology — many client threads
// feeding one batcher worker — but the per-slot sequences make multi-
// consumer drains (batcher num_workers > 1, the response-slot freelist)
// safe too.
//
// RingGate is the blocking half: a consumer that finds the ring empty spins
// briefly and then parks on an eventcount (epoch + waiter counter). The
// producer's post-push notify() is one identity RMW on the waiter counter
// when nobody is parked — the loaded-server fast path never takes a mutex
// or makes a syscall. The mutex/condvar pair is only touched on the park
// path itself (there is no raw futex; the condvar's native fast path does
// the heavy lifting).
//
// Memory-ordering contract (pinned by tests/test_mpsc_ring.cpp under TSan):
//  * everything written before try_push(v) is visible to the thread whose
//    try_pop returns v (release slot-sequence store / acquire load);
//  * the prepare_wait / recheck / wait protocol cannot lose a wakeup: both
//    sides RMW the waiter counter seq_cst, forming a store-buffering
//    (Dekker) pair, so either the consumer's recheck sees the pushed item
//    or the producer sees the parked consumer and bumps the epoch. (RMWs,
//    not fences: TSan cannot model fences, and an RMW reads-from edge
//    gives the pairing a synchronizes-with guarantee in the formal model.)

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/check.hpp"
#include "util/mutex.hpp"

namespace sgm::util {

/// One PAUSE/YIELD in a spin loop; keeps the hyperthread sibling breathing.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#endif
}

/// Eventcount for a spin-then-park consumer. Protocol:
///
///     for (;;) {
///       if (ring.try_pop(v)) break;            // spin phase (caller's)
///       RingGate::Ticket t = gate.prepare_wait();
///       if (ring.try_pop(v)) { gate.cancel_wait(); break; }  // recheck!
///       gate.wait(t);                          // park until a notify
///     }
///
/// and producers call notify() after every successful push. The recheck
/// between prepare_wait and wait is mandatory — that is where the lost-
/// wakeup race is closed.
class RingGate {
 public:
  using Ticket = std::uint64_t;

  RingGate() = default;
  RingGate(const RingGate&) = delete;
  RingGate& operator=(const RingGate&) = delete;

  /// Registers the caller as (about to be) parked and returns the current
  /// epoch. Must be paired with exactly one cancel_wait() or wait*() call.
  Ticket prepare_wait();

  /// Un-registers after a successful recheck; the caller does not block.
  void cancel_wait();

  /// Blocks until any notify issued after `ticket` was taken.
  void wait(Ticket ticket);

  /// wait() with a deadline; returns false when the deadline passed first.
  bool wait_until(Ticket ticket,
                  std::chrono::steady_clock::time_point deadline);

  /// Producer side, called after a successful push. One identity RMW on
  /// the waiter counter when no consumer is parked; bumps the epoch and
  /// wakes everyone otherwise.
  void notify();

  /// Unconditional epoch bump + broadcast (shutdown paths).
  void notify_all();

 private:
  void bump_and_broadcast();

  std::atomic<std::uint32_t> waiters_{0};
  Mutex mu_;
  CondVar cv_;
  std::uint64_t epoch_ SGM_GUARDED_BY(mu_) = 0;
};

/// Bounded lock-free FIFO of trivially-movable payloads. Capacity is
/// rounded up to a power of two. try_push returns false when full,
/// try_pop when empty; neither ever blocks or throws.
template <class T>
class MpscRing {
 public:
  explicit MpscRing(std::size_t min_capacity) {
    SGM_CHECK_ARG(min_capacity >= 2 && min_capacity <= (std::size_t{1} << 31),
                  "MpscRing: capacity must be in [2, 2^31]");
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (std::size_t i = 0; i < cap; ++i)
      slots_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Racy occupancy estimate — monitoring only, never a correctness signal.
  std::size_t approx_size() const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  bool try_push(T v) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const std::size_t seq = s.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        // The slot is free for exactly this position: claim it.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          s.value = std::move(v);
          s.seq.store(pos + 1, std::memory_order_release);  // publish
          return true;
        }
      } else if (dif < 0) {
        // The consumer that owes this slot its next sequence hasn't
        // finished: the ring is full (or within the few-instruction window
        // where a pop has claimed the head but not yet recycled the slot).
        return false;
      } else {
        pos = tail_.load(std::memory_order_relaxed);  // lost the race
      }
    }
  }

  bool try_pop(T& out) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const std::size_t seq = s.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(s.value);
          // Recycle the slot for the producer one lap ahead.
          s.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producers
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer(s)
  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;
};

}  // namespace sgm::util
