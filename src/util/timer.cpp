#include "util/timer.hpp"

namespace sgm::util {

void PhaseAccumulator::add(const std::string& name, double seconds) {
  totals_[name] += seconds;
  counts_[name] += 1;
}

double PhaseAccumulator::total(const std::string& name) const {
  auto it = totals_.find(name);
  return it == totals_.end() ? 0.0 : it->second;
}

std::uint64_t PhaseAccumulator::count(const std::string& name) const {
  auto it = counts_.find(name);
  return it == counts_.end() ? 0 : it->second;
}

void PhaseAccumulator::clear() {
  totals_.clear();
  counts_.clear();
}

}  // namespace sgm::util
