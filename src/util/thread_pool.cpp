#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>

namespace sgm::util {

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SGM_NUM_THREADS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = num_threads > 0 ? num_threads : resolve_threads(0);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this]() { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // only reachable when stop_ is set
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max<std::size_t>(resolve_threads(0), 4));
  return pool;
}

std::size_t num_chunks(std::size_t begin, std::size_t end, std::size_t grain) {
  if (end <= begin) return 0;
  const std::size_t g = std::max<std::size_t>(grain, 1);
  return (end - begin + g - 1) / g;
}

void parallel_for_chunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    std::size_t num_threads,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const std::size_t g = std::max<std::size_t>(grain, 1);
  const std::size_t chunks = num_chunks(begin, end, g);
  if (chunks == 0) return;
  const std::size_t threads = resolve_threads(num_threads);

  if (threads <= 1 || chunks <= 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t cb = begin + c * g;
      fn(cb, std::min(end, cb + g), c);
    }
    return;
  }

  // Dynamic chunk claiming: which thread runs a chunk is scheduling-
  // dependent, but the chunk layout is not, so outputs stay deterministic.
  std::atomic<std::size_t> next{0};
  Mutex err_mu;
  std::exception_ptr first_error;
  auto runner = [&]() {
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const std::size_t cb = begin + c * g;
      try {
        fn(cb, std::min(end, cb + g), c);
      } catch (...) {
        MutexLock lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  const std::size_t helpers = std::min(threads, chunks) - 1;
  std::vector<std::future<void>> pending;
  pending.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i)
    pending.push_back(ThreadPool::shared().submit(runner));
  runner();  // the caller is one of the runners
  for (auto& f : pending) {
    // Help drain the queue while waiting so nested parallel loops cannot
    // deadlock when every worker is itself blocked in a wait like this one.
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!ThreadPool::shared().try_run_one())
        f.wait_for(std::chrono::microseconds(200));
    }
    f.get();
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t num_threads,
                  const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t threads = resolve_threads(num_threads);
  // Independent iterations: any grain is correct; pick one that gives each
  // thread a few chunks for load balance.
  const std::size_t n = end - begin;
  const std::size_t grain =
      std::max<std::size_t>(1, n / std::max<std::size_t>(threads * 4, 1));
  parallel_for_chunks(begin, end, grain, num_threads,
                      [&fn](std::size_t b, std::size_t e, std::size_t) {
                        for (std::size_t i = b; i < e; ++i) fn(i);
                      });
}

}  // namespace sgm::util
