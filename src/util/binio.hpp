#pragma once
// Explicit little-endian binary encoding, shared by every on-disk format
// in the tree (nn/serialize.cpp model checkpoints, pinn train checkpoints).
// Integers are decomposed byte-by-byte and doubles go through their
// IEEE-754 bit pattern, so files are bit-identical across hosts regardless
// of endianness; FNV-1a64 is the common checksum.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace sgm::util::binio {

inline std::uint64_t fnv1a64(const char* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

inline void put_u32(std::string& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    b.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
inline void put_u64(std::string& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    b.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
inline void put_f64(std::string& b, double v) {
  put_u64(b, std::bit_cast<std::uint64_t>(v));
}
inline void put_str(std::string& b, const std::string& s) {
  put_u32(b, static_cast<std::uint32_t>(s.size()));
  b.append(s);
}

/// Bounds-checked sequential reader over an in-memory byte buffer; every
/// under-run throws instead of reading past the end.
class ByteReader {
 public:
  ByteReader(const char* p, std::size_t n) : p_(p), end_(p + n) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p_[i]))
           << (8 * i);
    p_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p_[i]))
           << (8 * i);
    p_ += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(p_, n);
    p_ += n;
    return s;
  }
  std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }

 private:
  void need(std::size_t n) {
    if (remaining() < n)
      throw std::runtime_error("checkpoint: truncated body");
  }
  const char* p_;
  const char* end_;
};

}  // namespace sgm::util::binio
