#pragma once
// Minimal CSV writer for trainer telemetry and bench outputs.

#include <fstream>
#include <string>
#include <vector>

namespace sgm::util {

/// Writes rows of doubles/strings under a fixed header. Values are emitted
/// with enough precision to round-trip doubles.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Emits one row; size must match the header. Flushes on every row so
  /// partial runs still leave usable telemetry.
  void row(const std::vector<double>& values);

  /// Mixed row of pre-formatted cells.
  void row_strings(const std::vector<std::string>& cells);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

/// Formats a double with round-trip precision ("%.17g").
std::string format_double(double v);

}  // namespace sgm::util
