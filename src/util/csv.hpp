#pragma once
// Minimal CSV writer for trainer telemetry and bench outputs.

#include <fstream>
#include <string>
#include <vector>

namespace sgm::util {

/// Writes rows of doubles/strings under a fixed header. Values are emitted
/// with enough precision to round-trip doubles.
///
/// Write errors are not silent: every row checks the stream after its flush
/// and throws std::runtime_error on failure (disk full, deleted directory),
/// so a run aborts at the first lost row instead of finishing with
/// truncated telemetry. close() gives callers a throwing final flush; the
/// destructor closes quietly (never throws).
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened or the header write
  /// fails.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Emits one row; size must match the header. Flushes on every row so
  /// partial runs still leave usable telemetry; throws std::runtime_error
  /// when the write or flush fails.
  void row(const std::vector<double>& values);

  /// Mixed row of pre-formatted cells.
  void row_strings(const std::vector<std::string>& cells);

  /// Flushes and closes the file, throwing on failure. Idempotent; rows
  /// after close() throw.
  void close();

  const std::string& path() const { return path_; }

 private:
  void check_stream(const char* when);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

/// Formats a double with round-trip precision ("%.17g").
std::string format_double(double v);

}  // namespace sgm::util
