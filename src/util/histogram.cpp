#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace sgm::util {

namespace {
constexpr std::uint32_t kSubBuckets = 1u << LatencyHistogram::kSubBucketBits;
// Octaves 4..39 get sub-bucketed; values >= 2^40 ns (~18 min) clamp into the
// top bucket. The first 16 buckets are exact single-nanosecond counts.
constexpr std::uint32_t kMaxOctave = 40;
}  // namespace

std::size_t LatencyHistogram::bucket_count() {
  return kSubBuckets * (kMaxOctave - (kSubBucketBits - 1));
}

std::size_t LatencyHistogram::bucket_index(std::uint64_t ns) {
  if (ns < kSubBuckets) return static_cast<std::size_t>(ns);
  std::uint32_t octave = static_cast<std::uint32_t>(std::bit_width(ns)) - 1;
  if (octave >= kMaxOctave) return bucket_count() - 1;
  const std::uint64_t sub =
      (ns >> (octave - kSubBucketBits)) & (kSubBuckets - 1);
  return kSubBuckets * (octave - (kSubBucketBits - 1)) +
         static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::bucket_upper_ns(std::size_t i) {
  if (i < kSubBuckets) return i;
  const std::uint64_t octave = i / kSubBuckets + (kSubBucketBits - 1);
  const std::uint64_t sub = i % kSubBuckets;
  return ((kSubBuckets + sub + 1) << (octave - kSubBucketBits)) - 1;
}

std::uint64_t LatencyHistogram::to_ns(double seconds) {
  if (!(seconds > 0.0)) return 0;
  const double ns = seconds * 1e9;
  if (ns >= 9.2e18) return ~0ull;
  return static_cast<std::uint64_t>(ns);
}

LatencyHistogram::LatencyHistogram() : counts_(bucket_count()) {}

void LatencyHistogram::record_ns(std::uint64_t ns) {
  counts_[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot snap;
  snap.counts.resize(counts_.size());
  snap.total = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    snap.total += snap.counts[i];
  }
  snap.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  return snap;
}

void LatencyHistogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= target)
      return static_cast<double>(LatencyHistogram::bucket_upper_ns(i)) * 1e-9;
  }
  return static_cast<double>(
             LatencyHistogram::bucket_upper_ns(counts.size() - 1)) *
         1e-9;
}

double HistogramSnapshot::mean_seconds() const {
  if (total == 0) return 0.0;
  return static_cast<double>(sum_ns) * 1e-9 / static_cast<double>(total);
}

}  // namespace sgm::util
