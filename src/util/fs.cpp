#include "util/fs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "util/failpoint.hpp"

namespace sgm::util {

namespace {

namespace fs = std::filesystem;

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw std::runtime_error(what + " '" + path +
                           "': " + std::strerror(errno));
}

/// Closes the fd on scope exit unless released (error paths mid-protocol).
class FdGuard {
 public:
  explicit FdGuard(int fd) : fd_(fd) {}
  ~FdGuard() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  int fd() const { return fd_; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_;
};

void write_all_fd(int fd, const char* data, std::size_t n,
                  const std::string& path) {
  std::size_t off = 0;
  while (off < n) {
    const ::ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("durable write: write failed", path);
    }
    off += static_cast<std::size_t>(w);
  }
}

std::string parent_dir(const std::string& path) {
  const fs::path parent = fs::path(path).parent_path();
  return parent.empty() ? std::string(".") : parent.string();
}

}  // namespace

void write_file_durable(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  FdGuard owner(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                       0644));
  const int fd = owner.fd();
  if (fd < 0) throw_errno("durable write: cannot create", tmp);

  // Torn write: persist only a prefix, as a crash mid-write would.
  std::size_t to_write = bytes.size();
  const bool torn = SGM_FAILPOINT_HIT("durable_write.torn");
  if (torn) to_write /= 2;
  write_all_fd(fd, bytes.data(), to_write, tmp);
  if (torn) throw FailpointTriggered("durable_write.torn");

  SGM_FAILPOINT("durable_write.before_fsync");
  // fsync also surfaces deferred write errors (full disk, I/O error) that
  // a buffered write() may not have reported.
  if (::fsync(fd) != 0) throw_errno("durable write: fsync failed", tmp);
  if (::close(owner.release()) != 0)
    throw_errno("durable write: close failed", tmp);

  SGM_FAILPOINT("durable_write.before_rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0)
    throw_errno("durable write: rename failed", path);

  SGM_FAILPOINT("durable_write.after_rename");
  fsync_directory(parent_dir(path));
}

void fsync_directory(const std::string& dir) {
  FdGuard owner(::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC));
  if (owner.fd() < 0) throw_errno("fsync_directory: cannot open", dir);
  if (::fsync(owner.fd()) != 0)
    throw_errno("fsync_directory: fsync failed", dir);
}

std::string quarantine_file(const std::string& path) {
  const std::string target = path + ".quarantined";
  if (::rename(path.c_str(), target.c_str()) != 0)
    throw_errno("quarantine_file: rename failed", path);
  // Make the sideline itself durable so a corrupt file can't reappear
  // under its loadable name after a crash.
  fsync_directory(parent_dir(path));
  return target;
}

std::vector<std::string> remove_stale_temp_files(const std::string& dir) {
  std::vector<std::string> removed;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      std::error_code rm_ec;
      if (fs::remove(entry.path(), rm_ec))
        removed.push_back(entry.path().string());
    }
  }
  return removed;
}

}  // namespace sgm::util
