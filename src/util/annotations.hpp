#pragma once
// Clang thread-safety-analysis attribute macros (SGM_GUARDED_BY and
// friends). On clang the annotations feed -Wthread-safety, which statically
// proves the locking discipline documented in docs/ARCHITECTURE.md; on gcc
// and MSVC they expand to nothing, so the annotated tree stays portable.
//
// Usage is always through util::Mutex / util::MutexLock / util::CondVar
// (util/mutex.hpp) — never raw std::mutex, which the analysis cannot see and
// scripts/lint_determinism.py therefore bans outside that wrapper.
//
// Vocabulary (names follow the clang documentation):
//   SGM_CAPABILITY("mutex")  — class is a lockable capability
//   SGM_SCOPED_CAPABILITY    — RAII object acquiring/releasing a capability
//   SGM_GUARDED_BY(mu)       — member may only be touched while mu is held
//   SGM_PT_GUARDED_BY(mu)    — pointee guarded (the pointer itself is not)
//   SGM_REQUIRES(mu)         — caller must already hold mu
//   SGM_EXCLUDES(mu)         — caller must NOT hold mu (anti-deadlock)
//   SGM_ACQUIRE/SGM_RELEASE  — function acquires / releases the capability
//   SGM_TRY_ACQUIRE(b)       — acquires exactly when it returns b
//   SGM_ASSERT_CAPABILITY    — runtime assertion that the capability is held
//   SGM_NO_THREAD_SAFETY_ANALYSIS — opt a function body out (last resort)

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SGM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SGM_THREAD_ANNOTATION
#define SGM_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

#define SGM_CAPABILITY(x) SGM_THREAD_ANNOTATION(capability(x))
#define SGM_SCOPED_CAPABILITY SGM_THREAD_ANNOTATION(scoped_lockable)
#define SGM_GUARDED_BY(x) SGM_THREAD_ANNOTATION(guarded_by(x))
#define SGM_PT_GUARDED_BY(x) SGM_THREAD_ANNOTATION(pt_guarded_by(x))
#define SGM_ACQUIRED_BEFORE(...) \
  SGM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SGM_ACQUIRED_AFTER(...) \
  SGM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define SGM_REQUIRES(...) \
  SGM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SGM_ACQUIRE(...) \
  SGM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SGM_RELEASE(...) \
  SGM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SGM_TRY_ACQUIRE(...) \
  SGM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SGM_EXCLUDES(...) SGM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SGM_ASSERT_CAPABILITY(x) \
  SGM_THREAD_ANNOTATION(assert_capability(x))
#define SGM_RETURN_CAPABILITY(x) SGM_THREAD_ANNOTATION(lock_returned(x))
#define SGM_NO_THREAD_SAFETY_ANALYSIS \
  SGM_THREAD_ANNOTATION(no_thread_safety_analysis)
