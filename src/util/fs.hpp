#pragma once
// Crash-safe file replacement — the one durable-write path every on-disk
// artifact (registry checkpoints, train checkpoints) goes through.
//
// write_file_durable's protocol survives power loss at any instant:
//   1. write the bytes to `path + ".tmp"` in the same directory,
//   2. fsync the temp file (data hits the platter before any rename),
//   3. rename(temp, path) — atomic replace on POSIX,
//   4. fsync the containing directory (the rename itself is durable).
// A crash before (3) leaves the old `path` intact (plus a stale .tmp that
// remove_stale_temp_files sweeps on next open); a crash after (3) leaves
// the new file complete. There is no instant at which `path` names a
// partial file.
//
// Failpoint sites (util/failpoint.hpp), used by the chaos tests to kill
// the writer at every step of the protocol:
//   durable_write.torn           write only half the bytes, then fail
//   durable_write.before_fsync   crash after write, before fsync(file)
//   durable_write.before_rename  crash after fsync, before rename
//   durable_write.after_rename   crash after rename, before fsync(dir)

#include <string>
#include <vector>

namespace sgm::util {

/// Atomically + durably replaces `path` with `bytes` (protocol above).
/// Throws std::runtime_error on any I/O failure — including short writes
/// and errors surfaced only at fsync/close time.
void write_file_durable(const std::string& path, const std::string& bytes);

/// fsync a directory so a completed rename within it is durable.
void fsync_directory(const std::string& dir);

/// Sidelines a corrupt file as `path + ".quarantined"` (atomic rename; any
/// previous quarantine of the same name is replaced). Returns the new
/// path. Throws std::runtime_error when the rename fails.
std::string quarantine_file(const std::string& path);

/// Deletes `*.tmp` residue left by writers that crashed mid-protocol.
/// Returns the paths removed (non-recursive; missing dir is a no-op).
std::vector<std::string> remove_stale_temp_files(const std::string& dir);

}  // namespace sgm::util
