#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace sgm::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load()) return;
  std::fprintf(stderr, "[sgm %s] %s\n", tag(level), msg.c_str());
}

}  // namespace sgm::util
