#pragma once
// Thin RAII wrappers over POSIX TCP sockets — the transport under
// serve::HttpServer and the bench/test clients.
//
// Two I/O disciplines share these wrappers:
//  * blocking calls (read_some/write_all, TcpListener::accept) — the
//    thread-per-connection HTTP path and the simple test clients;
//  * nonblocking calls (read_nb/write_some, TcpListener::accept_nb) for the
//    epoll reactor in serve::HttpServer — would-block is a normal return
//    (kWouldBlock), never an error, and partial writes report how far they
//    got so the caller can keep a write cursor.
//
// Shutdown contract: TcpListener::accept() blocks in poll() on the listening
// fd plus an internal wake pipe, so close() from another thread reliably
// unblocks any pending accept (closing a listening fd alone does not
// guarantee that on Linux). All writes use MSG_NOSIGNAL — a peer that
// disappears surfaces as an error return, never SIGPIPE.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sgm::util {

/// Movable RAII wrapper of one connected TCP socket.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket() { close(); }

  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Distinguished return of the nonblocking calls: the operation would
  /// have blocked (EAGAIN/EWOULDBLOCK). Not an error — retry when the fd
  /// polls readable/writable again.
  static constexpr long kWouldBlock = -2;

  /// Blocking read of up to `n` bytes. Returns the byte count, 0 on orderly
  /// peer shutdown, -1 on error. Retries EINTR internally.
  long read_some(char* buf, std::size_t n);

  /// Nonblocking read: byte count, 0 on orderly peer shutdown, kWouldBlock
  /// when no data is buffered, -1 on error. Retries EINTR internally. The
  /// fd must be in nonblocking mode (set_nonblocking / accept_nb).
  long read_nb(char* buf, std::size_t n);

  /// Nonblocking write of at most `n` bytes: returns how many the kernel
  /// took (possibly < n), kWouldBlock when the send buffer is full, -1 on
  /// error. Never raises SIGPIPE; retries EINTR. The `socket.short_send`
  /// failpoint caps each send at one byte (partial-write continuation
  /// tests). The fd must be in nonblocking mode.
  long write_some(const char* buf, std::size_t n);

  /// Toggles O_NONBLOCK on the fd.
  void set_nonblocking(bool on);

  /// Writes all `n` bytes through the single audited send loop (send_all):
  /// partial sends resume where they left off, EINTR retries, and a
  /// SO_SNDTIMEO expiry (peer stopped reading) surfaces as false like any
  /// other error. Never raises SIGPIPE. Returns false on any error.
  bool write_all(const char* buf, std::size_t n) {
    return send_all(fd_, buf, n);
  }
  bool write_all(const std::string& s) {
    return write_all(s.data(), s.size());
  }

  /// Disables Nagle batching; latency-sensitive request/response traffic.
  void set_nodelay(bool on);

  /// Read timeout (SO_RCVTIMEO); 0 disables. Guards server worker threads
  /// against idle keep-alive connections parking forever.
  void set_recv_timeout(double seconds);

  /// Write timeout (SO_SNDTIMEO); 0 disables. A peer that accepts the
  /// connection but never drains its receive buffer would otherwise park a
  /// blocking send (and its handler thread) forever; with the timeout the
  /// stalled send fails and write_all returns false.
  void set_send_timeout(double seconds);

  void close();

 private:
  /// The one send loop every write goes through (keeping the partial-write /
  /// EINTR handling in a single audited place). The `socket.short_send`
  /// failpoint caps each send at one byte so tests can drive the resume
  /// path deterministically.
  static bool send_all(int fd, const char* buf, std::size_t n);

  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1. Thread-safe close() that unblocks a
/// concurrent accept().
class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:`port`; port 0 picks an ephemeral port
  /// (read it back via port()). Throws std::runtime_error on failure.
  explicit TcpListener(std::uint16_t port, int backlog = 128);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// The listening descriptor — for registration in an epoll set (the
  /// reactor I/O mode). Combine with set_nonblocking() + accept_nb().
  int fd() const { return listen_fd_; }

  /// Puts the *listening* fd into nonblocking mode so accept_nb never
  /// parks (a readiness notification can be stale: another acceptor, or a
  /// client that reset before the accept).
  void set_nonblocking(bool on);

  /// Blocks until a client connects or close() is called. Returns an invalid
  /// socket exactly when the listener was closed.
  TcpSocket accept();

  /// Nonblocking accept (accept4): the returned connection is already in
  /// nonblocking mode. On an invalid return, `would_block` distinguishes
  /// "no pending connection right now" (true) from a real error or a closed
  /// listener (false). Retries EINTR/ECONNABORTED internally.
  TcpSocket accept_nb(bool& would_block);

  /// Signals shutdown; idempotent, safe from any thread while accept() is
  /// blocked. Descriptors are released by the destructor (which must not run
  /// concurrently with accept() — join the acceptor thread first).
  void close();

 private:
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< close() writes, accept() polls
  std::uint16_t port_ = 0;
  std::atomic<bool> closed_{false};
};

/// Blocking connect to 127.0.0.1:`port` (bench/test client side). Throws
/// std::runtime_error on failure.
TcpSocket tcp_connect(std::uint16_t port);

}  // namespace sgm::util
