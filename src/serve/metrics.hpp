#pragma once
// Serving observability: request/batch counters + latency histograms, with
// a Prometheus-style text rendering for the /metrics endpoint. The same
// object is shared by the HTTP front end, the batcher and bench_serve, so
// the numbers on the endpoint and in BENCH_serve.json come from one source.
//
// Everything here is wait-free on the hot path: counters are relaxed
// atomics and the histograms are util::LatencyHistogram (lock-free HDR
// buckets); render() works off snapshots, so scraping /metrics never stalls
// a request.

#include <atomic>
#include <cstdint>
#include <string>

#include "util/histogram.hpp"

namespace sgm::serve {

struct ServeMetrics {
  // Front-end (HTTP) counters.
  std::atomic<std::uint64_t> http_requests_total{0};
  std::atomic<std::uint64_t> http_errors_total{0};  ///< 4xx/5xx responses

  // Batcher counters.
  std::atomic<std::uint64_t> queries_total{0};         ///< answered queries
  std::atomic<std::uint64_t> query_errors_total{0};
  /// Backpressure: queries shed immediately because the bounded request
  /// ring / response-slot pool was full (HTTP surfaces these as 503).
  std::atomic<std::uint64_t> rejected_total{0};
  /// Deadline shedding: queries refused up front because the estimated
  /// queue wait already exceeded their deadline budget (HTTP surfaces
  /// these as 503 + Retry-After).
  std::atomic<std::uint64_t> deadline_shed_total{0};
  std::atomic<std::uint64_t> batches_total{0};         ///< coalesced forwards
  std::atomic<std::uint64_t> batched_queries_total{0}; ///< sum of batch sizes
  std::atomic<std::uint64_t> full_flushes_total{0};    ///< flushed at B
  std::atomic<std::uint64_t> deadline_flushes_total{0};///< flushed by timer

  /// Currently open HTTP connections (gauge; both I/O modes maintain it).
  std::atomic<std::uint64_t> open_connections{0};

  /// End-to-end HTTP request handling time.
  util::LatencyHistogram http_latency;
  /// Batcher enqueue -> response latency (what a caller of query() sees).
  util::LatencyHistogram query_latency;

  /// Prometheus text exposition: counters plus {0.5, 0.99, 0.999} quantile
  /// summaries, count and sum for each histogram. Registry-owned stats are
  /// passed in so the one exposition renders in one place (the HTTP layer
  /// used to splice sgm_registry_quarantined_total in by hand).
  std::string render(std::uint64_t registry_quarantined = 0) const;
};

}  // namespace sgm::serve
