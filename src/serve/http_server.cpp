#include "serve/http_server.hpp"

#include <poll.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace sgm::serve {

namespace {

// ---------------------------------------------------------------------------
// Tiny JSON helpers — exactly the two shapes the /v1/query body uses. No
// escape sequences on the parse side (scenario names are [A-Za-z0-9._-]) and
// no nesting; everything we *emit* inside a JSON string goes through
// json_escape, because error messages (SGM_CHECK, registry) freely contain
// quotes and would otherwise produce invalid JSON bodies.
// ---------------------------------------------------------------------------

std::size_t find_key(const std::string& body, const std::string& key) {
  const std::string quoted = "\"" + key + "\"";
  std::size_t pos = body.find(quoted);
  if (pos == std::string::npos) return std::string::npos;
  pos += quoted.size();
  while (pos < body.size() &&
         (std::isspace(static_cast<unsigned char>(body[pos])) ||
          body[pos] == ':'))
    ++pos;
  return pos;
}

bool json_string_field(const std::string& body, const std::string& key,
                       std::string& out) {
  std::size_t pos = find_key(body, key);
  if (pos == std::string::npos || pos >= body.size() || body[pos] != '"')
    return false;
  const std::size_t end = body.find('"', pos + 1);
  if (end == std::string::npos) return false;
  out = body.substr(pos + 1, end - pos - 1);
  return true;
}

bool json_number_array(const std::string& body, const std::string& key,
                       std::vector<double>& out) {
  std::size_t pos = find_key(body, key);
  if (pos == std::string::npos || pos >= body.size() || body[pos] != '[')
    return false;
  out.clear();
  ++pos;
  while (pos < body.size()) {
    while (pos < body.size() &&
           (std::isspace(static_cast<unsigned char>(body[pos])) ||
            body[pos] == ','))
      ++pos;
    if (pos >= body.size()) return false;
    if (body[pos] == ']') return true;
    char* parse_end = nullptr;
    const double v = std::strtod(body.c_str() + pos, &parse_end);
    if (parse_end == body.c_str() + pos) return false;
    out.push_back(v);
    pos = static_cast<std::size_t>(parse_end - body.c_str());
  }
  return false;
}

void append_f64(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

/// Minimal JSON string escaper: quotes, backslashes and control characters.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_error(const std::string& message) {
  return "{\"error\": \"" + json_escape(message) + "\"}\n";
}

// ---------------------------------------------------------------------------
// HTTP plumbing
// ---------------------------------------------------------------------------

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

/// `extra_headers` holds zero or more fully formed "Name: value\r\n" lines
/// (Retry-After on shed responses).
std::string make_response(int status, const std::string& content_type,
                          const std::string& body, bool keep_alive,
                          const std::string& extra_headers = std::string()) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    status_text(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += extra_headers;
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += body;
  return out;
}

/// RFC-style Retry-After value: whole seconds, at least 1.
std::string retry_after_header(double retry_after_s) {
  const double secs = std::ceil(std::max(retry_after_s, 1.0));
  return "Retry-After: " +
         std::to_string(static_cast<long long>(secs)) + "\r\n";
}

bool iequals(const std::string& a, const char* b) {
  std::size_t i = 0;
  for (; i < a.size() && b[i]; ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return i == a.size() && b[i] == '\0';
}

struct HttpRequest {
  std::string method, target, body;
  bool keep_alive = true;
  std::size_t content_length = 0;
  double deadline_s = -1.0;  ///< from x-deadline-ms; < 0 = none given
};

enum class ParseStatus {
  kNeedMore,    ///< head incomplete; read more bytes
  kOk,          ///< head parsed; body starts at body_offset
  kBadRequest,  ///< 400: malformed request line / version / Content-Length
  kTooLarge,    ///< 413: declared Content-Length exceeds max_body_bytes
};

/// Parses the head (request line + headers) at the start of `buf`. The
/// Content-Length value is validated here — digits only, no wrap, and at
/// most `max_body_bytes` — so a hostile header is rejected immediately
/// instead of wrapping `body_offset + content_length` into a truncated body
/// or stalling the connection until the idle timeout.
ParseStatus parse_head(const std::string& buf, HttpRequest& req,
                       std::size_t& body_offset, std::size_t max_body_bytes) {
  const std::size_t head_end = buf.find("\r\n\r\n");
  if (head_end == std::string::npos) return ParseStatus::kNeedMore;

  const std::size_t line_end = buf.find("\r\n");
  const std::string line = buf.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos)
    return ParseStatus::kBadRequest;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // HTTP/1.0 peers default to close (they do not understand keep-alive
  // unless they ask for it); HTTP/1.1 defaults to keep-alive.
  const std::string version = line.substr(sp2 + 1);
  if (version == "HTTP/1.1")
    req.keep_alive = true;
  else if (version == "HTTP/1.0")
    req.keep_alive = false;
  else
    return ParseStatus::kBadRequest;

  std::size_t pos = line_end + 2;
  while (pos < head_end) {
    const std::size_t eol = buf.find("\r\n", pos);
    const std::string header = buf.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = header.find(':');
    if (colon == std::string::npos) continue;
    std::string name = header.substr(0, colon);
    std::string value = header.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t'))
      value.erase(0, 1);
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t'))
      value.pop_back();
    if (iequals(name, "content-length")) {
      if (value.empty() ||
          !std::all_of(value.begin(), value.end(), [](unsigned char c) {
            return std::isdigit(c) != 0;
          }))
        return ParseStatus::kBadRequest;
      // 20 digits overflows std::uint64_t; any value this long is over any
      // sane max_body_bytes anyway, so reject before strtoull can wrap.
      if (value.size() > 19) return ParseStatus::kTooLarge;
      const std::uint64_t parsed = std::strtoull(value.c_str(), nullptr, 10);
      if (parsed > max_body_bytes) return ParseStatus::kTooLarge;
      req.content_length = static_cast<std::size_t>(parsed);
    } else if (iequals(name, "connection")) {
      if (iequals(value, "close"))
        req.keep_alive = false;
      else if (iequals(value, "keep-alive"))
        req.keep_alive = true;
    } else if (iequals(name, "x-deadline-ms")) {
      // Per-request deadline budget. A malformed or non-positive value is a
      // client bug — reject it rather than silently serving without the
      // deadline the client thought it set.
      char* parse_end = nullptr;
      const double ms =
          value.empty() ? 0.0 : std::strtod(value.c_str(), &parse_end);
      if (parse_end != value.c_str() + value.size() || !std::isfinite(ms) ||
          ms <= 0.0)
        return ParseStatus::kBadRequest;
      req.deadline_s = ms * 1e-3;
    }
  }
  body_offset = head_end + 4;
  return ParseStatus::kOk;
}

}  // namespace

HttpServer::HttpServer(ModelRegistry& registry, InferenceBatcher& batcher,
                       ServeMetrics& metrics, HttpServerOptions opt)
    : registry_(registry),
      batcher_(batcher),
      metrics_(metrics),
      opt_(opt),
      listener_(opt.port) {
  if (opt_.num_workers == 0)
    throw std::invalid_argument("HttpServer: num_workers must be >= 1");
  handlers_.reserve(opt_.num_workers);
  for (std::size_t i = 0; i < opt_.num_workers; ++i)
    handlers_.emplace_back([this] { handler_loop(); });
  acceptor_ = std::thread([this] { acceptor_loop(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  {
    util::MutexLock lock(mu_);
    if (stop_) return;
  }
  // Phase 1 — graceful drain: refuse new connections (listener closed,
  // /healthz flips to "draining"), then give the handlers up to
  // drain_deadline_s to answer what was already accepted. Handlers close
  // each connection at its next request boundary once draining_ is set.
  draining_.store(true, std::memory_order_seq_cst);
  listener_.close();
  util::WallTimer drain_timer;
  while (drain_timer.elapsed_s() < opt_.drain_deadline_s) {
    bool queue_empty;
    {
      util::MutexLock lock(mu_);
      queue_empty = conn_queue_.empty();
    }
    if (queue_empty && active_conns_.load(std::memory_order_acquire) == 0)
      break;
    cv_.notify_all();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Phase 2 — hard stop: whatever didn't drain in time is dropped.
  {
    util::MutexLock lock(mu_);
    if (stop_) return;  // lost a race with a concurrent stop(); it joins
    stop_ = true;
  }
  cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& h : handlers_) {
    if (h.joinable()) h.join();
  }
  handlers_.clear();
}

void HttpServer::acceptor_loop() {
  while (true) {
    util::TcpSocket conn = listener_.accept();
    if (!conn.valid()) return;  // listener closed => shutting down
    conn.set_nodelay(true);
    if (opt_.send_timeout_s > 0)
      conn.set_send_timeout(opt_.send_timeout_s);
    {
      util::MutexLock lock(mu_);
      if (stop_) return;
      conn_queue_.push_back(std::move(conn));
    }
    cv_.notify_one();
  }
}

void HttpServer::handler_loop() {
  while (true) {
    util::TcpSocket conn;
    {
      util::MutexLock lock(mu_);
      while (!stop_ && conn_queue_.empty()) cv_.wait(mu_);
      if (stop_) return;
      conn = std::move(conn_queue_.front());
      conn_queue_.pop_front();
      // Claimed while still holding mu_, so stop()'s drain loop observes
      // either a non-empty queue or a non-zero active count — never a gap.
      active_conns_.fetch_add(1, std::memory_order_acq_rel);
    }
    handle_connection(conn);
    active_conns_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void HttpServer::handle_connection(util::TcpSocket& conn) {
  // Streaming read loop: `buf` carries leftover bytes across requests, so a
  // peer that pipelines many requests into one write (or whose request
  // boundaries straddle read chunks) is served every one of them — one
  // read_some can yield many responses, written back as one coalesced
  // write. The pre-PR code rebuilt the buffer per request and silently
  // dropped whatever it had already read past the first body.
  std::string buf;
  std::string outbuf;
  double idle_s = 0.0;
  char chunk[8192];
  for (;;) {
    // Serve every complete request already buffered.
    outbuf.clear();
    bool close_after_write = false;
    for (;;) {
      HttpRequest req;
      std::size_t body_offset = 0;
      const ParseStatus ps =
          parse_head(buf, req, body_offset, opt_.max_body_bytes);
      if (ps == ParseStatus::kNeedMore) {
        if (buf.size() > opt_.max_body_bytes) {  // runaway / malicious head
          metrics_.http_requests_total.fetch_add(1, std::memory_order_relaxed);
          metrics_.http_errors_total.fetch_add(1, std::memory_order_relaxed);
          outbuf += make_response(431, "text/plain", "headers too large\n",
                                  /*keep_alive=*/false);
          close_after_write = true;
        }
        break;
      }
      if (ps != ParseStatus::kOk) {
        const int status = ps == ParseStatus::kTooLarge ? 413 : 400;
        metrics_.http_requests_total.fetch_add(1, std::memory_order_relaxed);
        metrics_.http_errors_total.fetch_add(1, std::memory_order_relaxed);
        outbuf += make_response(
            status, "text/plain",
            status == 413 ? "body too large\n" : "bad request\n",
            /*keep_alive=*/false);
        close_after_write = true;
        break;
      }
      if (buf.size() - body_offset < req.content_length) break;  // need body
      req.body.assign(buf, body_offset, req.content_length);
      buf.erase(0, body_offset + req.content_length);

      util::WallTimer timer;
      int status = 200;
      std::string extra_headers;
      std::string body = route(req.method, req.target, req.body,
                               req.deadline_s, status, extra_headers);
      metrics_.http_requests_total.fetch_add(1, std::memory_order_relaxed);
      if (status >= 400)
        metrics_.http_errors_total.fetch_add(1, std::memory_order_relaxed);
      metrics_.http_latency.record(timer.elapsed_s());

      const bool is_json = !body.empty() && (body[0] == '{' || body[0] == '[');
      const char* content_type = is_json ? "application/json" : "text/plain";
      outbuf += make_response(status, content_type, body, req.keep_alive,
                              extra_headers);
      if (!req.keep_alive) {
        close_after_write = true;
        break;
      }
    }
    if (!outbuf.empty() && !conn.write_all(outbuf)) return;
    if (close_after_write) return;
    // Draining: every complete buffered request was just answered — close
    // at this request boundary so stop() can finish.
    if (draining_.load(std::memory_order_relaxed)) return;

    // Poll in short slices so a stop() is honored promptly even while a
    // keep-alive peer is idle.
    pollfd pfd{conn.fd(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    {
      util::MutexLock lock(mu_);
      if (stop_) return;
    }
    if (rc == 0) {
      idle_s += 0.1;
      if (idle_s >= opt_.recv_timeout_s) return;
      continue;
    }
    if (rc < 0) return;
    const long n = conn.read_some(chunk, sizeof(chunk));
    if (n <= 0) return;  // peer closed or error
    idle_s = 0.0;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string HttpServer::route(const std::string& method,
                              const std::string& target,
                              const std::string& body, double deadline_s,
                              int& status, std::string& extra_headers) {
  if (target == "/healthz" || target == "/metrics" ||
      target == "/v1/models") {
    if (method != "GET") {  // read-only endpoints: mutating verbs are 405
      status = 405;
      return json_error("GET required for " + target);
    }
    if (target == "/healthz") {
      const HealthState st = draining_.load(std::memory_order_relaxed)
                                 ? HealthState::kDraining
                                 : batcher_.health();
      if (st == HealthState::kDraining) status = 503;
      return std::string(to_string(st)) + "\n";
    }
    if (target == "/metrics") {
      std::string out = metrics_.render();
      char line[160];
      std::snprintf(line, sizeof(line),
                    "# TYPE sgm_registry_quarantined_total counter\n"
                    "sgm_registry_quarantined_total %llu\n",
                    static_cast<unsigned long long>(
                        registry_.stats().quarantined));
      out += line;
      return out;
    }
    std::string out = "[";
    bool first = true;
    for (const ModelInfo& info : registry_.list()) {
      if (!first) out += ", ";
      first = false;
      out += "{\"scenario\": \"" + json_escape(info.scenario) +
             "\", \"version\": " + std::to_string(info.version) +
             ", \"resident\": " + (info.resident ? "true" : "false") +
             ", \"pinned\": " + (info.pinned ? "true" : "false") + "}";
    }
    out += "]\n";
    return out;
  }
  if (target == "/v1/query") {
    if (method != "POST") {
      status = 405;
      return json_error("POST required");
    }
    std::string scenario;
    std::vector<double> x;
    if (!json_string_field(body, "scenario", scenario) ||
        !json_number_array(body, "x", x)) {
      status = 400;
      return json_error(
          "body must be {\"scenario\": \"<name>\", \"x\": [..]}");
    }
    try {
      InferenceBatcher::Response resp =
          batcher_.query(scenario, std::move(x), deadline_s);
      std::string out = "{\"scenario\": \"" + json_escape(scenario) +
                        "\", \"version\": " + std::to_string(resp.version) +
                        ", \"y\": [";
      for (std::size_t i = 0; i < resp.y.size(); ++i) {
        if (i) out += ", ";
        append_f64(out, resp.y[i]);
      }
      out += "]}\n";
      return out;
    } catch (const std::out_of_range& e) {
      status = 404;
      return json_error(e.what());
    } catch (const std::invalid_argument& e) {
      status = 400;
      return json_error(e.what());
    } catch (const DeadlineExceededError& e) {
      status = 503;  // shed up front: the answer would arrive too late
      extra_headers = retry_after_header(e.retry_after_s());
      return json_error(e.what());
    } catch (const QueueFullError& e) {
      status = 503;  // backpressure: bounded queue full, try again later
      extra_headers = retry_after_header(1.0);
      return json_error(e.what());
    } catch (const std::exception& e) {
      status = 503;
      return json_error(e.what());
    }
  }
  status = 404;
  return json_error("no such endpoint: " + target);
}

}  // namespace sgm::serve
