#include "serve/http_server.hpp"

#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "util/failpoint.hpp"

namespace sgm::serve {

namespace {
using Clock = std::chrono::steady_clock;
using http::HttpRequest;
using http::ParseStatus;

Clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}
}  // namespace

// ---------------------------------------------------------------------------
// Reactor: one epoll loop owning a share of the connections. Everything in
// here except the inbox (mu/done_inbox/conn_inbox/parked) is touched only
// by the owning reactor thread. Batcher completions and cross-reactor
// connection handoffs go through the inbox; the writer rings the eventfd
// only when the reactor is actually parked in epoll_wait, so the steady-
// state completion path is one mutex'd vector push, no syscall.
// ---------------------------------------------------------------------------

struct HttpServer::Reactor {
  HttpServer* srv = nullptr;
  std::size_t index = 0;
  int epfd = -1;
  int wake_fd = -1;  ///< eventfd; epoll data.u64 == kWakeId

  /// Connections keyed by id (epoll data.u64 carries the id, not a pointer,
  /// so a stale readiness event for a just-closed connection misses the map
  /// instead of dereferencing freed memory).
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns;
  std::uint64_t next_id = 2;  ///< 0 = listener, 1 = eventfd
  std::uint64_t rr = 0;       ///< round-robin accept distribution (reactor 0)

  /// Idle wheel: with one uniform timeout, deadlines are pushed in nearly
  /// monotone order, so a deque + lazy recheck replaces a timer heap. An
  /// entry whose connection was active since it was pushed is re-enqueued
  /// at the connection's real deadline; a stale entry (closed conn) is
  /// dropped. Expiry therefore fires within [timeout, 2*timeout) — a
  /// coarse guard, not a precise timer.
  std::deque<std::pair<Clock::time_point, std::uint64_t>> wheel;

  /// Connections (by id) that produced output this cycle; flushed once per
  /// loop iteration so many completions on one connection coalesce into a
  /// single write.
  std::vector<std::uint64_t> dirty;

  struct Done {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    InferenceBatcher::Response resp;
    QueryError error = QueryError::kNone;
    std::string message;
  };
  util::Mutex mu;
  std::vector<Done> done_inbox SGM_GUARDED_BY(mu);
  std::vector<util::TcpSocket> conn_inbox SGM_GUARDED_BY(mu);
  /// True exactly while the reactor sits in epoll_wait — inbox writers only
  /// pay the eventfd syscall when someone is actually asleep.
  bool parked SGM_GUARDED_BY(mu) = false;

  std::thread thread;

  ~Reactor() {
    if (wake_fd >= 0) ::close(wake_fd);
    if (epfd >= 0) ::close(epfd);
  }
};

namespace {
constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kWakeId = 1;
constexpr int kMaxEvents = 64;
}  // namespace

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

HttpServer::HttpServer(ModelRegistry& registry, InferenceBatcher& batcher,
                       ServeMetrics& metrics, HttpServerOptions opt)
    : registry_(registry),
      batcher_(batcher),
      metrics_(metrics),
      opt_(opt),
      listener_(opt.port) {
  if (opt_.io_mode == IoMode::kReactor) {
    if (opt_.num_reactors == 0)
      throw std::invalid_argument("HttpServer: num_reactors must be >= 1");
    if (opt_.max_pipeline == 0)
      throw std::invalid_argument("HttpServer: max_pipeline must be >= 1");
    if (!batcher_.supports_async())
      throw std::invalid_argument(
          "HttpServer: IoMode::kReactor needs query_async, i.e. a "
          "QueueMode::kRing batcher");
    listener_.set_nonblocking(true);
    reactors_.reserve(opt_.num_reactors);
    for (std::size_t i = 0; i < opt_.num_reactors; ++i) {
      auto r = std::make_unique<Reactor>();
      r->srv = this;
      r->index = i;
      r->epfd = ::epoll_create1(0);
      if (r->epfd < 0)
        throw std::runtime_error("HttpServer: epoll_create1 failed");
      r->wake_fd = ::eventfd(0, EFD_NONBLOCK);
      if (r->wake_fd < 0)
        throw std::runtime_error("HttpServer: eventfd failed");
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = kWakeId;
      ::epoll_ctl(r->epfd, EPOLL_CTL_ADD, r->wake_fd, &ev);
      if (i == 0) {
        epoll_event lev{};
        lev.events = EPOLLIN;
        lev.data.u64 = kListenerId;
        ::epoll_ctl(r->epfd, EPOLL_CTL_ADD, listener_.fd(), &lev);
      }
      reactors_.push_back(std::move(r));
    }
    for (auto& r : reactors_)
      r->thread = std::thread([this, rp = r.get()] { reactor_loop(*rp); });
    return;
  }
  if (opt_.num_workers == 0)
    throw std::invalid_argument("HttpServer: num_workers must be >= 1");
  handlers_.reserve(opt_.num_workers);
  for (std::size_t i = 0; i < opt_.num_workers; ++i)
    handlers_.emplace_back([this] { handler_loop(); });
  acceptor_ = std::thread([this] { acceptor_loop(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  {
    util::MutexLock lock(mu_);
    if (stop_) return;
  }
  // Phase 1 — graceful drain: refuse new connections (listener closed,
  // /healthz flips to "draining"), then answer what was already accepted
  // for up to drain_deadline_s. Both modes close each connection at its
  // next request boundary once draining_ is set.
  draining_.store(true, std::memory_order_seq_cst);
  listener_.close();
  if (opt_.io_mode == IoMode::kReactor) {
    for (auto& r : reactors_) wake(*r);
    util::WallTimer drain_timer;
    while (drain_timer.elapsed_s() < opt_.drain_deadline_s) {
      if (reactor_conns_.load(std::memory_order_acquire) == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    {
      util::MutexLock lock(mu_);
      if (stop_) return;  // lost a race with a concurrent stop(); it joins
      stop_ = true;
    }
    hard_stop_.store(true, std::memory_order_seq_cst);
    for (auto& r : reactors_) wake(*r);
    for (auto& r : reactors_) {
      if (r->thread.joinable()) r->thread.join();
    }
    // In-flight query_async completions touch the reactors' inboxes; the
    // reactors (and this server) must outlive every one of them.
    while (outstanding_.load(std::memory_order_acquire) != 0)
      std::this_thread::yield();
    return;
  }
  util::WallTimer drain_timer;
  while (drain_timer.elapsed_s() < opt_.drain_deadline_s) {
    bool queue_empty;
    {
      util::MutexLock lock(mu_);
      queue_empty = conn_queue_.empty();
    }
    if (queue_empty && active_conns_.load(std::memory_order_acquire) == 0)
      break;
    cv_.notify_all();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Phase 2 — hard stop: whatever didn't drain in time is dropped.
  {
    util::MutexLock lock(mu_);
    if (stop_) return;  // lost a race with a concurrent stop(); it joins
    stop_ = true;
  }
  cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& h : handlers_) {
    if (h.joinable()) h.join();
  }
  handlers_.clear();
}

// ---------------------------------------------------------------------------
// Reactor mode
// ---------------------------------------------------------------------------

void HttpServer::wake(Reactor& r) {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t w = ::write(r.wake_fd, &one, sizeof(one));
}

void HttpServer::on_query_done(void* ctx, std::uint64_t conn_id,
                               std::uint64_t seq,
                               InferenceBatcher::Response&& resp,
                               QueryError error, const std::string& message) {
  auto* r = static_cast<Reactor*>(ctx);
  HttpServer* srv = r->srv;
  bool need_wake = false;
  {
    util::MutexLock lock(r->mu);
    r->done_inbox.push_back(
        Reactor::Done{conn_id, seq, std::move(resp), error, message});
    need_wake = r->parked;
  }
  if (need_wake) srv->wake(*r);
  // Last touch of the reactor: stop() spins on outstanding_ before letting
  // the reactors (or this server) die.
  srv->outstanding_.fetch_sub(1, std::memory_order_release);
}

void HttpServer::adopt_connection(Reactor& r, util::TcpSocket sock) {
  // accept_nb hands the fd over already nonblocking (accept4).
  const std::uint64_t id = r.next_id++;
  auto conn = std::make_unique<Connection>(std::move(sock), id);
  Connection& c = *conn;
  r.conns.emplace(id, std::move(conn));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = id;
  ::epoll_ctl(r.epfd, EPOLL_CTL_ADD, c.sock.fd(), &ev);
  r.wheel.emplace_back(Clock::now() + to_duration(opt_.recv_timeout_s), id);
  metrics_.open_connections.fetch_add(1, std::memory_order_relaxed);
  reactor_conns_.fetch_add(1, std::memory_order_relaxed);
  if (draining_.load(std::memory_order_relaxed)) {
    // Handed off after the drain began: nothing was read yet, close it.
    c.parse_stopped = true;
    mark_dirty(r, c);
  }
}

void HttpServer::close_connection(Reactor& r, Connection& c) {
  ::epoll_ctl(r.epfd, EPOLL_CTL_DEL, c.sock.fd(), nullptr);
  metrics_.open_connections.fetch_sub(1, std::memory_order_relaxed);
  reactor_conns_.fetch_sub(1, std::memory_order_relaxed);
  r.conns.erase(c.id);  // destroys c — must be the last touch
}

void HttpServer::accept_ready(Reactor& r) {
  for (;;) {
    bool would_block = false;
    util::TcpSocket sock = listener_.accept_nb(would_block);
    if (!sock.valid()) return;  // would-block, closed or transient error
    sock.set_nodelay(true);
    Reactor& target = *reactors_[r.rr++ % reactors_.size()];
    if (&target == &r) {
      adopt_connection(r, std::move(sock));
      continue;
    }
    bool need_wake = false;
    {
      util::MutexLock lock(target.mu);
      target.conn_inbox.push_back(std::move(sock));
      need_wake = target.parked;
    }
    if (need_wake) wake(target);
  }
}

void HttpServer::mark_dirty(Reactor& r, Connection& c) {
  if (c.in_dirty_list) return;
  c.in_dirty_list = true;
  r.dirty.push_back(c.id);
}

void HttpServer::finish_local(Reactor& r, Connection& c, std::uint64_t seq,
                              int status, const std::string& body,
                              bool keep_alive,
                              const std::string& extra_headers) {
  metrics_.http_requests_total.fetch_add(1, std::memory_order_relaxed);
  if (status >= 400)
    metrics_.http_errors_total.fetch_add(1, std::memory_order_relaxed);
  metrics_.http_latency.record(c.slot_elapsed_s(seq));
  const bool is_json = !body.empty() && (body[0] == '{' || body[0] == '[');
  c.fill_slot(seq,
              http::make_response(status,
                                  is_json ? "application/json" : "text/plain",
                                  body, keep_alive, extra_headers));
  mark_dirty(r, c);
}

void HttpServer::dispatch_request(Reactor& r, Connection& c,
                                  HttpRequest req) {
  const std::uint64_t seq = c.open_slot();
  Connection::PendingResponse* slot = c.slot(seq);
  slot->keep_alive = req.keep_alive;
  if (req.target == "/v1/query") {
    if (req.method != "POST") {
      finish_local(r, c, seq, 405, http::json_error("POST required"),
                   req.keep_alive);
      return;
    }
    std::string scenario;
    std::vector<double> x;
    if (!http::json_string_field(req.body, "scenario", scenario) ||
        !http::json_number_array(req.body, "x", x)) {
      finish_local(r, c, seq, 400,
                   http::json_error(
                       "body must be {\"scenario\": \"<name>\", \"x\": [..]}"),
                   req.keep_alive);
      return;
    }
    slot->scenario = scenario;
    // Admission errors (shed/full/draining) throw synchronously and the
    // completion never fires; on success the completion fires exactly once
    // on a worker thread and lands in this reactor's inbox.
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    try {
      batcher_.query_async(scenario, std::move(x), req.deadline_s,
                           &HttpServer::on_query_done, &r, c.id, seq);
      return;
    } catch (const DeadlineExceededError& e) {
      outstanding_.fetch_sub(1, std::memory_order_relaxed);
      finish_local(r, c, seq, 503, http::json_error(e.what()), req.keep_alive,
                   http::retry_after_header(e.retry_after_s()));
    } catch (const QueueFullError& e) {
      outstanding_.fetch_sub(1, std::memory_order_relaxed);
      finish_local(r, c, seq, 503, http::json_error(e.what()), req.keep_alive,
                   http::retry_after_header(1.0));
    } catch (const std::exception& e) {
      outstanding_.fetch_sub(1, std::memory_order_relaxed);
      finish_local(r, c, seq, 503, http::json_error(e.what()), req.keep_alive);
    }
    return;
  }
  int status = 200;
  const std::string body = route_sync(req.method, req.target, status);
  finish_local(r, c, seq, status, body, req.keep_alive);
}

void HttpServer::parse_requests(Reactor& r, Connection& c) {
  while (!c.parse_stopped && c.pending.size() < opt_.max_pipeline) {
    HttpRequest req;
    std::size_t body_offset = 0;
    const ParseStatus ps =
        http::parse_head(c.inbuf, req, body_offset, opt_.max_body_bytes);
    if (ps == ParseStatus::kNeedMore) {
      if (c.inbuf.size() > opt_.max_body_bytes) {  // runaway / hostile head
        const std::uint64_t seq = c.open_slot();
        c.parse_stopped = true;
        finish_local(r, c, seq, 431, "headers too large\n",
                     /*keep_alive=*/false);
      }
      break;
    }
    if (ps != ParseStatus::kOk) {
      const int status = ps == ParseStatus::kTooLarge ? 413 : 400;
      const std::uint64_t seq = c.open_slot();
      c.parse_stopped = true;
      finish_local(r, c, seq, status,
                   status == 413 ? "body too large\n" : "bad request\n",
                   /*keep_alive=*/false);
      break;
    }
    if (c.inbuf.size() - body_offset < req.content_length) break;  // need body
    req.body.assign(c.inbuf, body_offset, req.content_length);
    c.inbuf.erase(0, body_offset + req.content_length);
    // Draining: this request still gets its answer, but the connection
    // closes at this boundary so stop() can finish.
    if (draining_.load(std::memory_order_relaxed)) req.keep_alive = false;
    if (!req.keep_alive) c.parse_stopped = true;
    dispatch_request(r, c, std::move(req));
  }
  update_interest(r, c);
}

void HttpServer::update_interest(Reactor& r, Connection& c) {
  // EPOLLIN is paused at the pipeline cap (per-connection backpressure) and
  // once parsing stopped; EPOLLOUT is armed only while there is unflushed
  // output — leaving it armed on a writable socket would busy-loop the
  // level-triggered epoll.
  const bool pause =
      c.parse_stopped || c.pending.size() >= opt_.max_pipeline;
  const bool want_out = c.has_backlog();
  if (pause == c.reading_paused && want_out == c.want_write) return;
  c.reading_paused = pause;
  c.want_write = want_out;
  epoll_event ev{};
  ev.data.u64 = c.id;
  ev.events = (pause ? 0U : static_cast<unsigned>(EPOLLIN)) |
              (want_out ? static_cast<unsigned>(EPOLLOUT) : 0U);
  ::epoll_ctl(r.epfd, EPOLL_CTL_MOD, c.sock.fd(), &ev);
}

void HttpServer::on_readable(Reactor& r, Connection& c) {
  char chunk[16384];
  for (;;) {
    const long n = c.sock.read_nb(chunk, sizeof(chunk));
    if (n == util::TcpSocket::kWouldBlock) break;
    if (n <= 0) {  // peer closed or error
      close_connection(r, c);
      return;
    }
    c.inbuf.append(chunk, static_cast<std::size_t>(n));
    c.last_activity.reset();
    // A short read usually means the socket is drained; level-triggered
    // epoll re-notifies if not, so don't spin another syscall to prove it.
    if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
  }
  parse_requests(r, c);
}

void HttpServer::flush_dirty(Reactor& r) {
  // Index loop: processing may append new dirty ids (a flushed connection
  // freeing pipeline slots can parse more buffered requests, whose local
  // responses re-mark it).
  for (std::size_t i = 0; i < r.dirty.size(); ++i) {
    const auto it = r.conns.find(r.dirty[i]);
    if (it == r.conns.end()) continue;  // closed since marked
    Connection& c = *it->second;
    c.in_dirty_list = false;
    c.collect_ready();
    const Connection::WriteResult res = c.flush();
    if (res == Connection::WriteResult::kError) {
      close_connection(r, c);
      continue;
    }
    if (c.should_close()) {
      close_connection(r, c);
      continue;
    }
    if (!c.parse_stopped && !c.inbuf.empty() &&
        c.pending.size() < opt_.max_pipeline)
      parse_requests(r, c);
    update_interest(r, c);
  }
  r.dirty.clear();
}

void HttpServer::drain_inboxes(Reactor& r) {
  std::vector<Reactor::Done> done;
  std::vector<util::TcpSocket> fresh;
  {
    util::MutexLock lock(r.mu);
    done.swap(r.done_inbox);
    fresh.swap(r.conn_inbox);
  }
  for (auto& sock : fresh) adopt_connection(r, std::move(sock));
  for (Reactor::Done& d : done) {
    const auto it = r.conns.find(d.conn_id);
    if (it == r.conns.end()) continue;  // connection died while in flight
    Connection& c = *it->second;
    Connection::PendingResponse* slot = c.slot(d.seq);
    if (slot == nullptr) continue;  // stale (cannot happen; guard anyway)
    int status = 200;
    std::string body;
    switch (d.error) {
      case QueryError::kNone:
        body = http::render_query_body(slot->scenario, d.resp.version,
                                       d.resp.y, status);
        break;
      case QueryError::kNotFound:
        status = 404;
        body = http::json_error(d.message);
        break;
      case QueryError::kInvalidArgument:
        status = 400;
        body = http::json_error(d.message);
        break;
      case QueryError::kRuntime:
        status = 503;
        body = http::json_error(d.message);
        break;
    }
    finish_local(r, c, d.seq, status, body, slot->keep_alive);
  }
}

void HttpServer::expire_idle(Reactor& r) {
  const Clock::time_point now = Clock::now();
  while (!r.wheel.empty() && r.wheel.front().first <= now) {
    const std::uint64_t id = r.wheel.front().second;
    r.wheel.pop_front();
    const auto it = r.conns.find(id);
    if (it == r.conns.end()) continue;  // stale entry of a closed conn
    Connection& c = *it->second;
    const double idle_s = c.last_activity.elapsed_s();
    if (idle_s < opt_.recv_timeout_s) {
      // Was active since this entry was pushed: re-enqueue lazily at the
      // connection's real deadline.
      r.wheel.emplace_back(now + to_duration(opt_.recv_timeout_s - idle_s),
                           id);
      continue;
    }
    close_connection(r, c);
  }
}

void HttpServer::reactor_loop(Reactor& r) {
  epoll_event evs[kMaxEvents];
  bool drain_latched = false;
  while (!hard_stop_.load(std::memory_order_acquire)) {
    drain_inboxes(r);
    if (!drain_latched && draining_.load(std::memory_order_acquire)) {
      drain_latched = true;
      // Answer every complete buffered request, then stop parsing; each
      // connection closes once its pending responses flush.
      for (auto& [id, conn] : r.conns) {
        Connection& c = *conn;
        if (!c.parse_stopped) parse_requests(r, c);
        c.parse_stopped = true;
        mark_dirty(r, c);
      }
    }
    flush_dirty(r);
    expire_idle(r);

    int timeout_ms = -1;
    if (!r.wheel.empty()) {
      const Clock::time_point now = Clock::now();
      if (r.wheel.front().first <= now) {
        timeout_ms = 0;
      } else {
        const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            r.wheel.front().first - now)
                            .count() +
                        1;
        timeout_ms = static_cast<int>(std::min<long long>(ms, 60000));
      }
    }
    {
      // Park protocol: declare intent under the inbox lock, then recheck —
      // a completion that lands after this sees parked=true and rings the
      // eventfd, which epoll_wait observes immediately.
      util::MutexLock lock(r.mu);
      if (!r.done_inbox.empty() || !r.conn_inbox.empty()) continue;
      r.parked = true;
    }
    int n;
    for (;;) {
      const bool fake_eintr = SGM_FAILPOINT_HIT("http.epoll_eintr");
      n = fake_eintr ? -1 : ::epoll_wait(r.epfd, evs, kMaxEvents, timeout_ms);
      if (fake_eintr) errno = EINTR;
      if (n >= 0) break;
      if (errno == EINTR) continue;  // signal delivery is not shutdown
      n = 0;  // unexpected epoll failure: treat as a timeout tick
      break;
    }
    {
      util::MutexLock lock(r.mu);
      r.parked = false;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = evs[i].data.u64;
      if (id == kListenerId) {
        accept_ready(r);
        continue;
      }
      if (id == kWakeId) {
        std::uint64_t v = 0;
        [[maybe_unused]] ssize_t rd = ::read(r.wake_fd, &v, sizeof(v));
        continue;
      }
      const auto it = r.conns.find(id);
      if (it == r.conns.end()) continue;  // closed earlier this cycle
      Connection& c = *it->second;
      if (evs[i].events & (EPOLLERR | EPOLLHUP)) {
        close_connection(r, c);
        continue;
      }
      if (evs[i].events & EPOLLOUT) mark_dirty(r, c);
      if (evs[i].events & EPOLLIN) on_readable(r, c);  // may close c
    }
  }
  // Hard stop: drop whatever is left (the graceful drain already ran).
  for (std::size_t i = 0; i < r.conns.size(); ++i) {
    metrics_.open_connections.fetch_sub(1, std::memory_order_relaxed);
    reactor_conns_.fetch_sub(1, std::memory_order_relaxed);
  }
  r.conns.clear();
}

// ---------------------------------------------------------------------------
// Thread-per-connection mode (the A/B baseline)
// ---------------------------------------------------------------------------

void HttpServer::acceptor_loop() {
  while (true) {
    util::TcpSocket conn = listener_.accept();
    if (!conn.valid()) return;  // listener closed => shutting down
    conn.set_nodelay(true);
    if (opt_.send_timeout_s > 0)
      conn.set_send_timeout(opt_.send_timeout_s);
    {
      util::MutexLock lock(mu_);
      if (stop_) return;
      conn_queue_.push_back(std::move(conn));
    }
    cv_.notify_one();
  }
}

void HttpServer::handler_loop() {
  while (true) {
    util::TcpSocket conn;
    {
      util::MutexLock lock(mu_);
      while (!stop_ && conn_queue_.empty()) cv_.wait(mu_);
      if (stop_) return;
      conn = std::move(conn_queue_.front());
      conn_queue_.pop_front();
      // Claimed while still holding mu_, so stop()'s drain loop observes
      // either a non-empty queue or a non-zero active count — never a gap.
      active_conns_.fetch_add(1, std::memory_order_acq_rel);
    }
    metrics_.open_connections.fetch_add(1, std::memory_order_relaxed);
    handle_connection(conn);
    metrics_.open_connections.fetch_sub(1, std::memory_order_relaxed);
    active_conns_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void HttpServer::handle_connection(util::TcpSocket& conn) {
  // Streaming read loop: `buf` carries leftover bytes across requests, so a
  // peer that pipelines many requests into one write (or whose request
  // boundaries straddle read chunks) is served every one of them — one
  // read_some can yield many responses, written back as one coalesced
  // write. The pre-PR code rebuilt the buffer per request and silently
  // dropped whatever it had already read past the first body.
  std::string buf;
  std::string outbuf;
  double idle_s = 0.0;
  char chunk[8192];
  for (;;) {
    // Serve every complete request already buffered.
    outbuf.clear();
    bool close_after_write = false;
    for (;;) {
      HttpRequest req;
      std::size_t body_offset = 0;
      const ParseStatus ps =
          http::parse_head(buf, req, body_offset, opt_.max_body_bytes);
      if (ps == ParseStatus::kNeedMore) {
        if (buf.size() > opt_.max_body_bytes) {  // runaway / malicious head
          metrics_.http_requests_total.fetch_add(1, std::memory_order_relaxed);
          metrics_.http_errors_total.fetch_add(1, std::memory_order_relaxed);
          outbuf += http::make_response(431, "text/plain",
                                        "headers too large\n",
                                        /*keep_alive=*/false);
          close_after_write = true;
        }
        break;
      }
      if (ps != ParseStatus::kOk) {
        const int status = ps == ParseStatus::kTooLarge ? 413 : 400;
        metrics_.http_requests_total.fetch_add(1, std::memory_order_relaxed);
        metrics_.http_errors_total.fetch_add(1, std::memory_order_relaxed);
        outbuf += http::make_response(
            status, "text/plain",
            status == 413 ? "body too large\n" : "bad request\n",
            /*keep_alive=*/false);
        close_after_write = true;
        break;
      }
      if (buf.size() - body_offset < req.content_length) break;  // need body
      req.body.assign(buf, body_offset, req.content_length);
      buf.erase(0, body_offset + req.content_length);

      util::WallTimer timer;
      int status = 200;
      std::string extra_headers;
      std::string body = route(req.method, req.target, req.body,
                               req.deadline_s, status, extra_headers);
      metrics_.http_requests_total.fetch_add(1, std::memory_order_relaxed);
      if (status >= 400)
        metrics_.http_errors_total.fetch_add(1, std::memory_order_relaxed);
      metrics_.http_latency.record(timer.elapsed_s());

      const bool is_json = !body.empty() && (body[0] == '{' || body[0] == '[');
      const char* content_type = is_json ? "application/json" : "text/plain";
      outbuf += http::make_response(status, content_type, body, req.keep_alive,
                                    extra_headers);
      if (!req.keep_alive) {
        close_after_write = true;
        break;
      }
    }
    if (!outbuf.empty() && !conn.write_all(outbuf)) return;
    if (close_after_write) return;
    // Draining: every complete buffered request was just answered — close
    // at this request boundary so stop() can finish.
    if (draining_.load(std::memory_order_relaxed)) return;

    // Poll in short slices so a stop() is honored promptly even while a
    // keep-alive peer is idle. EINTR is a retry, never a disconnect — a
    // signal delivery must not tear down a healthy keep-alive connection.
    int rc;
    for (;;) {
      pollfd pfd{conn.fd(), POLLIN, 0};
      const bool fake_eintr = SGM_FAILPOINT_HIT("http.poll_eintr");
      rc = fake_eintr ? -1 : ::poll(&pfd, 1, /*timeout_ms=*/100);
      if (fake_eintr) errno = EINTR;
      if (rc >= 0) break;
      if (errno != EINTR) return;
    }
    {
      util::MutexLock lock(mu_);
      if (stop_) return;
    }
    if (rc == 0) {
      idle_s += 0.1;
      if (idle_s >= opt_.recv_timeout_s) return;
      continue;
    }
    const long n = conn.read_some(chunk, sizeof(chunk));
    if (n <= 0) return;  // peer closed or error
    idle_s = 0.0;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

std::string HttpServer::route_sync(const std::string& method,
                                   const std::string& target, int& status) {
  if (target == "/healthz" || target == "/metrics" ||
      target == "/v1/models") {
    if (method != "GET") {  // read-only endpoints: mutating verbs are 405
      status = 405;
      return http::json_error("GET required for " + target);
    }
    if (target == "/healthz") {
      const HealthState st = draining_.load(std::memory_order_relaxed)
                                 ? HealthState::kDraining
                                 : batcher_.health();
      if (st == HealthState::kDraining) status = 503;
      return std::string(to_string(st)) + "\n";
    }
    if (target == "/metrics")
      return metrics_.render(registry_.stats().quarantined);
    std::string out = "[";
    bool first = true;
    for (const ModelInfo& info : registry_.list()) {
      if (!first) out += ", ";
      first = false;
      out += "{\"scenario\": \"" + http::json_escape(info.scenario) +
             "\", \"version\": " + std::to_string(info.version) +
             ", \"resident\": " + (info.resident ? "true" : "false") +
             ", \"pinned\": " + (info.pinned ? "true" : "false") + "}";
    }
    out += "]\n";
    return out;
  }
  if (target == "/v1/query") {
    status = 405;
    return http::json_error("POST required");
  }
  status = 404;
  return http::json_error("no such endpoint: " + target);
}

std::string HttpServer::route(const std::string& method,
                              const std::string& target,
                              const std::string& body, double deadline_s,
                              int& status, std::string& extra_headers) {
  if (target == "/v1/query" && method == "POST") {
    std::string scenario;
    std::vector<double> x;
    if (!http::json_string_field(body, "scenario", scenario) ||
        !http::json_number_array(body, "x", x)) {
      status = 400;
      return http::json_error(
          "body must be {\"scenario\": \"<name>\", \"x\": [..]}");
    }
    try {
      InferenceBatcher::Response resp =
          batcher_.query(scenario, std::move(x), deadline_s);
      return http::render_query_body(scenario, resp.version, resp.y, status);
    } catch (const std::out_of_range& e) {
      status = 404;
      return http::json_error(e.what());
    } catch (const std::invalid_argument& e) {
      status = 400;
      return http::json_error(e.what());
    } catch (const DeadlineExceededError& e) {
      status = 503;  // shed up front: the answer would arrive too late
      extra_headers = http::retry_after_header(e.retry_after_s());
      return http::json_error(e.what());
    } catch (const QueueFullError& e) {
      status = 503;  // backpressure: bounded queue full, try again later
      extra_headers = http::retry_after_header(1.0);
      return http::json_error(e.what());
    } catch (const std::exception& e) {
      status = 503;
      return http::json_error(e.what());
    }
  }
  return route_sync(method, target, status);
}

}  // namespace sgm::serve
