#include "serve/connection.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sgm::serve::http {

namespace {

/// Trims ASCII whitespace from both ends (header token handling).
std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

bool iequals(const std::string& a, const char* b) {
  std::size_t i = 0;
  for (; i < a.size() && b[i]; ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return i == a.size() && b[i] == '\0';
}

std::size_t find_key(const std::string& body, const std::string& key) {
  // Walk the JSON structure instead of substring-searching the raw bytes:
  // only a string immediately followed by ':' is a key, and string
  // *contents* are stepped over — so {"scenario": "x", "x": [1]} finds the
  // "x" key, not the two bytes inside the scenario value.
  std::size_t i = 0;
  while (i < body.size()) {
    if (body[i] != '"') {
      ++i;
      continue;
    }
    const std::size_t start = i + 1;
    std::size_t j = start;
    while (j < body.size() && body[j] != '"') {
      if (body[j] == '\\' && j + 1 < body.size())
        j += 2;  // escaped char (incl. \") never terminates the string
      else
        ++j;
    }
    if (j >= body.size()) return std::string::npos;  // unterminated string
    std::size_t after = j + 1;
    while (after < body.size() &&
           std::isspace(static_cast<unsigned char>(body[after])))
      ++after;
    const bool is_key = after < body.size() && body[after] == ':';
    if (is_key && j - start == key.size() &&
        body.compare(start, key.size(), key) == 0) {
      ++after;  // past ':'
      while (after < body.size() &&
             std::isspace(static_cast<unsigned char>(body[after])))
        ++after;
      return after;
    }
    // Resume after the colon (a key) or after the closing quote (a value).
    i = is_key ? after + 1 : j + 1;
  }
  return std::string::npos;
}

bool json_string_field(const std::string& body, const std::string& key,
                       std::string& out) {
  std::size_t pos = find_key(body, key);
  if (pos == std::string::npos || pos >= body.size() || body[pos] != '"')
    return false;
  const std::size_t end = body.find('"', pos + 1);
  if (end == std::string::npos) return false;
  out = body.substr(pos + 1, end - pos - 1);
  return true;
}

bool json_number_array(const std::string& body, const std::string& key,
                       std::vector<double>& out) {
  std::size_t pos = find_key(body, key);
  if (pos == std::string::npos || pos >= body.size() || body[pos] != '[')
    return false;
  out.clear();
  ++pos;
  while (pos < body.size()) {
    while (pos < body.size() &&
           (std::isspace(static_cast<unsigned char>(body[pos])) ||
            body[pos] == ','))
      ++pos;
    if (pos >= body.size()) return false;
    if (body[pos] == ']') return true;
    char* parse_end = nullptr;
    const double v = std::strtod(body.c_str() + pos, &parse_end);
    if (parse_end == body.c_str() + pos) return false;
    // strtod happily accepts nan, inf and overflowing literals (1e999 ->
    // HUGE_VAL). None of them is JSON and none may reach the model.
    if (!std::isfinite(v)) return false;
    out.push_back(v);
    pos = static_cast<std::size_t>(parse_end - body.c_str());
  }
  return false;
}

void append_json_f64(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // bare nan/inf tokens are not JSON
    return;
  }
  // Shortest round-trip representation: strtod(to_chars(v)) == v bitwise,
  // same contract as %.17g but ~an order of magnitude cheaper — this runs
  // twice per served query, squarely on the reactor's hot path.
  char buf[40];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, r.ptr);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_error(const std::string& message) {
  return "{\"error\": \"" + json_escape(message) + "\"}\n";
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::string make_response(int status, const std::string& content_type,
                          const std::string& body, bool keep_alive,
                          const std::string& extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    status_text(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += extra_headers;
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += body;
  return out;
}

std::string retry_after_header(double retry_after_s) {
  const double secs = std::ceil(std::max(retry_after_s, 1.0));
  return "Retry-After: " +
         std::to_string(static_cast<long long>(secs)) + "\r\n";
}

std::string render_query_body(const std::string& scenario,
                              std::uint64_t version,
                              const std::vector<double>& y, int& status) {
  // Defense in depth: the parser already refuses non-finite inputs, but a
  // model is free to produce them. Refuse to serialize — a 500 with valid
  // JSON beats a 200 whose body no JSON parser accepts.
  for (const double v : y) {
    if (!std::isfinite(v)) {
      status = 500;
      return json_error("model produced a non-finite prediction");
    }
  }
  std::string out = "{\"scenario\": \"" + json_escape(scenario) +
                    "\", \"version\": " + std::to_string(version) +
                    ", \"y\": [";
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (i) out += ", ";
    append_json_f64(out, y[i]);
  }
  out += "]}\n";
  return out;
}

ParseStatus parse_head(const std::string& buf, HttpRequest& req,
                       std::size_t& body_offset, std::size_t max_body_bytes) {
  const std::size_t head_end = buf.find("\r\n\r\n");
  if (head_end == std::string::npos) return ParseStatus::kNeedMore;

  const std::size_t line_end = buf.find("\r\n");
  const std::string line = buf.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos)
    return ParseStatus::kBadRequest;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // HTTP/1.0 peers default to close (they do not understand keep-alive
  // unless they ask for it); HTTP/1.1 defaults to keep-alive.
  const std::string version = line.substr(sp2 + 1);
  if (version == "HTTP/1.1")
    req.keep_alive = true;
  else if (version == "HTTP/1.0")
    req.keep_alive = false;
  else
    return ParseStatus::kBadRequest;

  std::size_t pos = line_end + 2;
  while (pos < head_end) {
    const std::size_t eol = buf.find("\r\n", pos);
    const std::string header = buf.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = header.find(':');
    if (colon == std::string::npos) continue;
    std::string name = header.substr(0, colon);
    std::string value = trim(header.substr(colon + 1));
    if (iequals(name, "content-length")) {
      if (value.empty() ||
          !std::all_of(value.begin(), value.end(), [](unsigned char c) {
            return std::isdigit(c) != 0;
          }))
        return ParseStatus::kBadRequest;
      // 20 digits overflows std::uint64_t; any value this long is over any
      // sane max_body_bytes anyway, so reject before strtoull can wrap.
      if (value.size() > 19) return ParseStatus::kTooLarge;
      const std::uint64_t parsed = std::strtoull(value.c_str(), nullptr, 10);
      if (parsed > max_body_bytes) return ParseStatus::kTooLarge;
      req.content_length = static_cast<std::size_t>(parsed);
    } else if (iequals(name, "connection")) {
      // The header value is a comma-separated token list (RFC 9110) —
      // "keep-alive, Upgrade" keeps the connection alive. Comparing the
      // whole value against a single token would silently drop to the
      // version default. close beats keep-alive if both appear.
      bool saw_close = false;
      bool saw_keep_alive = false;
      std::size_t tp = 0;
      while (tp <= value.size()) {
        std::size_t comma = value.find(',', tp);
        if (comma == std::string::npos) comma = value.size();
        const std::string token = trim(value.substr(tp, comma - tp));
        if (iequals(token, "close")) saw_close = true;
        else if (iequals(token, "keep-alive")) saw_keep_alive = true;
        tp = comma + 1;
      }
      if (saw_close)
        req.keep_alive = false;
      else if (saw_keep_alive)
        req.keep_alive = true;
    } else if (iequals(name, "x-deadline-ms")) {
      // Per-request deadline budget. A malformed or non-positive value is a
      // client bug — reject it rather than silently serving without the
      // deadline the client thought it set.
      char* parse_end = nullptr;
      const double ms =
          value.empty() ? 0.0 : std::strtod(value.c_str(), &parse_end);
      if (parse_end != value.c_str() + value.size() || !std::isfinite(ms) ||
          ms <= 0.0)
        return ParseStatus::kBadRequest;
      req.deadline_s = ms * 1e-3;
    }
  }
  body_offset = head_end + 4;
  return ParseStatus::kOk;
}

}  // namespace sgm::serve::http
