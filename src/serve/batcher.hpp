#pragma once
// Batched inference engine: coalesces concurrent queries into one blocked-
// GEMM forward.
//
// Requests enter a shared queue; a worker drains every pending request for
// the scenario at the head of the queue (up to max_batch), stacks their
// inputs into one matrix and runs a single Mlp::forward_batched over it.
// Partial batches wait at most max_delay_s past the oldest request's
// arrival (deadline flush), so tail latency is bounded even at low load.
//
// Determinism / attribution contract (pinned by tests/test_serve.cpp):
//  * each response row is bitwise identical to what a lone
//    net.forward(single_row) would return — batching and the worker's
//    thread count never change the numbers (GEMM row independence);
//  * a batch acquires its model exactly once; every response carries the
//    version (and checksum) of that one acquire, so under concurrent
//    hot-swaps each response is attributable to exactly one published
//    version — never a torn mix.

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nn/mlp.hpp"
#include "serve/metrics.hpp"
#include "serve/model_registry.hpp"
#include "util/mutex.hpp"
#include "util/timer.hpp"

namespace sgm::serve {

struct BatcherOptions {
  std::size_t max_batch = 64;    ///< coalesce at most this many queries
  double max_delay_s = 200e-6;   ///< deadline flush for partial batches
  std::size_t num_threads = 1;   ///< row-parallel forward threads (0 = auto)
  std::size_t num_workers = 1;   ///< batch-assembly worker threads
};

class InferenceBatcher {
 public:
  /// Spawns the workers. `metrics` may be null (bench/tests often pass one).
  InferenceBatcher(ModelRegistry& registry, BatcherOptions opt,
                   ServeMetrics* metrics = nullptr);
  ~InferenceBatcher();

  InferenceBatcher(const InferenceBatcher&) = delete;
  InferenceBatcher& operator=(const InferenceBatcher&) = delete;

  struct Response {
    std::vector<double> y;        ///< output_dim values
    std::uint64_t version = 0;    ///< the one model version that answered
    std::uint64_t checksum = 0;   ///< its payload checksum
  };

  /// Blocking: enqueues, waits for the coalesced forward, returns the row.
  /// Throws std::out_of_range for unpublished scenarios,
  /// std::invalid_argument for wrong input width, std::runtime_error after
  /// stop(). Worker-side failures travel as an error code + message and are
  /// rethrown here as fresh exceptions — exception objects never cross
  /// threads (their libstdc++-internal refcounting is opaque to TSan, and a
  /// failed batch would otherwise share one object across all its callers).
  Response query(const std::string& scenario, std::vector<double> x);

  /// Drains the queue (pending requests fail with std::runtime_error) and
  /// joins the workers. Idempotent; also called by the destructor.
  void stop();

 private:
  struct Pending;
  void worker_loop();
  void serve_batch(std::vector<std::unique_ptr<Pending>> batch);
  /// Moves every queued request for `scenario` (up to max_batch) into
  /// `batch`, preserving queue order for other scenarios.
  void collect_locked(const std::string& scenario,
                      std::vector<std::unique_ptr<Pending>>& batch)
      SGM_REQUIRES(mu_);

  ModelRegistry& registry_;
  BatcherOptions opt_;
  ServeMetrics* metrics_;

  util::Mutex mu_;
  util::CondVar cv_;
  std::deque<std::unique_ptr<Pending>> queue_ SGM_GUARDED_BY(mu_);
  bool stop_ SGM_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace sgm::serve
