#pragma once
// Batched inference engine: coalesces concurrent queries into one blocked-
// GEMM forward.
//
// Request path (QueueMode::kRing, the default): a client claims a pooled
// response slot (fixed-capacity table, generation-tagged), writes its
// request into the slot, pushes the slot index onto a bounded lock-free
// MPSC ring (util/mpsc_ring.*) and spins-then-parks on the slot until the
// worker publishes the response into it. No mutex, no allocation and no
// promise/future on the hot path — the PR 6 profile showed the queue mutex
// and the per-query promise dominating well before the GEMM did. When the
// slot pool is exhausted the query is rejected immediately with
// QueueFullError (the HTTP layer maps it to 503) and counted in
// rejected_total — bounded queues shed load instead of collapsing.
//
// QueueMode::kMutex preserves the PR 6 mutex-guarded deque + promise per
// query, byte-for-byte, as the A/B baseline for `bench_serve --arm mutex`.
//
// A worker drains pending requests, groups them by scenario (up to
// max_batch of the oldest entry's scenario), stacks their inputs into one
// matrix and runs a single Mlp::forward_batched over it. Partial batches
// wait at most max_delay_s past the oldest request's arrival (deadline
// flush), so tail latency is bounded even at low load.
//
// Determinism / attribution contract (pinned by tests/test_serve.cpp):
//  * each response row is bitwise identical to what a lone
//    net.forward(single_row) would return — batching, the queue mode and
//    the worker's thread count never change the numbers (GEMM row
//    independence);
//  * a batch acquires its model exactly once; every response carries the
//    version (and checksum) of that one acquire, so under concurrent
//    hot-swaps each response is attributable to exactly one published
//    version — never a torn mix.

#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "nn/mlp.hpp"
#include "serve/metrics.hpp"
#include "serve/model_registry.hpp"
#include "util/mpsc_ring.hpp"
#include "util/mutex.hpp"
#include "util/timer.hpp"

namespace sgm::serve {

/// Thrown by query() when the bounded request queue is full (backpressure).
/// The HTTP front end maps it to 503 Service Unavailable.
class QueueFullError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by query() when the estimated queue wait already exceeds the
/// request's deadline budget — shedding up front beats queueing work whose
/// answer will arrive too late to matter. The HTTP front end maps it to
/// 503 + a Retry-After hint of retry_after_s().
class DeadlineExceededError : public std::runtime_error {
 public:
  DeadlineExceededError(const std::string& what, double retry_after_s)
      : std::runtime_error(what), retry_after_s_(retry_after_s) {}
  double retry_after_s() const { return retry_after_s_; }

 private:
  double retry_after_s_;
};

/// Serving health, coarsest first: kOk (normal), kDegraded (load was shed
/// since the last probe, or occupancy crossed half the queue bound —
/// callers should back off), kDraining (stop() in progress; no new work).
enum class HealthState : std::uint8_t { kOk, kDegraded, kDraining };

constexpr const char* to_string(HealthState s) {
  switch (s) {
    case HealthState::kOk: return "ok";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kDraining: return "draining";
  }
  return "unknown";
}

enum class QueueMode : std::uint8_t {
  kRing,   ///< lock-free ring + pooled response slots (default)
  kMutex,  ///< PR 6 mutex-guarded deque + promise/future (A/B baseline)
};

/// Error classification carried by an async completion (query_async). The
/// worker cannot throw into the submitter's thread, so failures travel as a
/// code + message; the HTTP reactor maps them to the same statuses the
/// blocking query()'s exceptions get.
enum class QueryError : std::uint8_t {
  kNone,             ///< success
  kNotFound,         ///< unpublished scenario (std::out_of_range ~ 404)
  kInvalidArgument,  ///< wrong input width etc. (std::invalid_argument ~ 400)
  kRuntime,          ///< forward failure / stopped (std::runtime_error ~ 503)
};

struct BatcherOptions {
  std::size_t max_batch = 64;    ///< coalesce at most this many queries
  double max_delay_s = 200e-6;   ///< deadline flush for partial batches
  std::size_t num_threads = 1;   ///< row-parallel forward threads (0 = auto)
  std::size_t num_workers = 1;   ///< batch-assembly worker threads
  QueueMode mode = QueueMode::kRing;
  /// Bound on in-flight queries (ring mode): ring length and response-slot
  /// count. Rounded up to a power of two. Queries beyond it are rejected
  /// with QueueFullError.
  std::size_t queue_capacity = 1024;
  /// Deadline budget applied to queries that don't carry their own
  /// (seconds). 0 disables deadline shedding — the PR 8 behavior.
  double default_deadline_s = 0.0;
  /// stop() serves already-accepted queries for at most this long before
  /// failing the remainder (graceful drain bound).
  double drain_deadline_s = 2.0;
};

class InferenceBatcher {
 public:
  /// Spawns the workers. `metrics` may be null (bench/tests often pass one).
  InferenceBatcher(ModelRegistry& registry, BatcherOptions opt,
                   ServeMetrics* metrics = nullptr);
  ~InferenceBatcher();

  InferenceBatcher(const InferenceBatcher&) = delete;
  InferenceBatcher& operator=(const InferenceBatcher&) = delete;

  struct Response {
    std::vector<double> y;        ///< output_dim values
    std::uint64_t version = 0;    ///< the one model version that answered
    std::uint64_t checksum = 0;   ///< its payload checksum
  };

  /// Blocking: enqueues, waits for the coalesced forward, returns the row.
  /// Throws std::out_of_range for unpublished scenarios,
  /// std::invalid_argument for wrong input width, QueueFullError when the
  /// bounded queue is full, DeadlineExceededError when `deadline_s` (or
  /// opt_.default_deadline_s when deadline_s < 0) is smaller than the
  /// estimated queue wait, std::runtime_error after stop(). Worker-side
  /// failures travel as an error code + message and are rethrown here as
  /// fresh exceptions — exception objects never cross threads (their
  /// libstdc++-internal refcounting is opaque to TSan, and a failed batch
  /// would otherwise share one object across all its callers).
  Response query(const std::string& scenario, std::vector<double> x,
                 double deadline_s = -1.0);

  /// Async completion signature (see query_async). Invoked exactly once,
  /// on a batcher worker thread (or on the thread driving stop() for
  /// requests failed by the final drain). `tag1`/`tag2` echo the submit
  /// call's values; on failure `error != kNone` and `message` explains.
  /// The response slot is recycled before the callback runs, so a slow
  /// callback never holds queue capacity — but it does hold the worker, so
  /// keep it O(queue-append) cheap.
  using Completion = void (*)(void* ctx, std::uint64_t tag1,
                              std::uint64_t tag2, Response&& resp,
                              QueryError error, const std::string& message);

  /// Nonblocking submit for readiness-driven callers (the epoll reactor):
  /// enqueues exactly like query() but returns immediately; the coalesced
  /// result is delivered through `done` on a worker thread. Admission
  /// errors are still synchronous — throws QueueFullError,
  /// DeadlineExceededError and "query after stop()" std::runtime_error like
  /// query(), and `done` is NOT invoked for those. Requires
  /// QueueMode::kRing (the mutex A/B arm keeps its blocking-only PR 6
  /// shape); throws std::logic_error otherwise.
  void query_async(const std::string& scenario, std::vector<double> x,
                   double deadline_s, Completion done, void* ctx,
                   std::uint64_t tag1, std::uint64_t tag2);

  bool supports_async() const { return opt_.mode == QueueMode::kRing; }

  /// Graceful drain: refuses new queries immediately, serves what was
  /// already accepted for up to opt_.drain_deadline_s, then hard-stops
  /// (stragglers fail with std::runtime_error) and joins the workers.
  /// Idempotent; also called by the destructor.
  void stop();

  /// Current health (see HealthState). Reading it consumes the "load was
  /// shed since the last probe" degraded latch, so a single poller (the
  /// /healthz endpoint) sees degraded for exactly one probe per incident
  /// burst rather than forever.
  HealthState health();

  /// Estimated time a query enqueued now waits before its batch completes
  /// (in-flight depth × smoothed batch service time). Monitoring + the
  /// deadline-shed decision; never a correctness signal.
  double estimated_wait_s() const;

  /// Requests accepted but not yet answered (monitoring estimate). Ring
  /// mode derives this from the freelist occupancy — the request hot path
  /// carries no extra shared-line RMW for it; mutex mode counts directly.
  std::uint64_t in_flight() const;

 private:
  struct Pending;
  struct Slot;

  /// Sheds a query whose deadline budget the estimated wait exceeds:
  /// counts it and throws DeadlineExceededError. `budget <= 0` never sheds.
  void maybe_shed(double budget) const;
  void note_shed() const;  ///< feeds metrics + the degraded-health latch

  // --- ring mode -----------------------------------------------------------
  Response ring_query(const std::string& scenario, std::vector<double>&& x);
  /// Claims a slot, writes the request and pushes it through the ring —
  /// the shared front half of ring_query (which then parks on the slot)
  /// and query_async (which returns and lets complete_slot fire the
  /// slot's callback). Returns the claimed slot index.
  std::uint32_t ring_submit(const std::string& scenario,
                            std::vector<double>&& x, Completion done,
                            void* ctx, std::uint64_t tag1, std::uint64_t tag2);
  void ring_worker_loop();
  /// Serves `batch` (slot indices, all one scenario) and completes each slot.
  void serve_slots(const std::vector<std::uint32_t>& batch);
  void fail_slot(Slot& slot, std::uint8_t err, const std::string& message);
  void complete_slot(Slot& slot);
  /// Fails every entry still in the ring; used by stopping workers and by
  /// stop() itself after the workers joined.
  void drain_ring_failing();

  // --- legacy mutex mode ---------------------------------------------------
  Response mutex_query(const std::string& scenario, std::vector<double>&& x);
  void graceful_drain();  ///< bounded wait for in-flight work (stop() step 1)
  void mutex_worker_loop();
  void serve_batch(std::vector<std::unique_ptr<Pending>> batch);
  /// Moves every queued request for `scenario` (up to max_batch) into
  /// `batch`, preserving queue order for other scenarios.
  void collect_locked(const std::string& scenario,
                      std::vector<std::unique_ptr<Pending>>& batch)
      SGM_REQUIRES(mu_);

  void count_flush(std::size_t batch_size);
  void update_service_ewma(double batch_s);

  ModelRegistry& registry_;
  BatcherOptions opt_;
  ServeMetrics* metrics_;

  // Ring-mode state. `slots_` is immutable after construction; each Slot
  // synchronizes its own handoff (see Slot in batcher.cpp).
  std::unique_ptr<util::MpscRing<std::uint32_t>> ring_;      ///< requests
  std::unique_ptr<util::MpscRing<std::uint32_t>> freelist_;  ///< free slots
  std::unique_ptr<Slot[]> slots_;
  util::RingGate gate_;
  std::atomic<bool> stop_flag_{false};
  std::atomic<std::uint32_t> pending_pushes_{0};  ///< stop/push Dekker pair

  // Health / degradation state (both modes).
  std::atomic<bool> draining_{false};  ///< stop() entered its drain phase
  /// Mutex-mode in-flight count (ring mode derives it from the freelist —
  /// see in_flight() — to keep the lock-free path free of extra RMWs).
  std::atomic<std::uint64_t> in_flight_{0};
  /// EWMA of batch service time in ns (racy cross-worker update; feeds
  /// estimated_wait_s only).
  std::atomic<std::uint64_t> ewma_batch_ns_{0};
  /// Queries shed (queue-full or deadline) since the last health() probe.
  mutable std::atomic<std::uint64_t> shed_since_health_{0};

  // Legacy-mode state.
  util::Mutex mu_;
  util::CondVar cv_;
  std::deque<std::unique_ptr<Pending>> queue_ SGM_GUARDED_BY(mu_);
  bool stop_ SGM_GUARDED_BY(mu_) = false;

  std::vector<std::thread> workers_;
};

}  // namespace sgm::serve
