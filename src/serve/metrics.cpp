#include "serve/metrics.hpp"

#include <cstdio>

namespace sgm::serve {

namespace {

void append_counter(std::string& out, const char* name, std::uint64_t v) {
  char line[160];
  std::snprintf(line, sizeof(line), "# TYPE %s counter\n%s %llu\n", name,
                name, static_cast<unsigned long long>(v));
  out += line;
}

void append_summary(std::string& out, const char* name,
                    const util::HistogramSnapshot& snap) {
  char line[160];
  std::snprintf(line, sizeof(line), "# TYPE %s summary\n", name);
  out += line;
  for (double q : {0.5, 0.99, 0.999}) {
    std::snprintf(line, sizeof(line), "%s{quantile=\"%g\"} %.9g\n", name, q,
                  snap.quantile(q));
    out += line;
  }
  std::snprintf(line, sizeof(line), "%s_sum %.9g\n%s_count %llu\n", name,
                static_cast<double>(snap.sum_ns) * 1e-9, name,
                static_cast<unsigned long long>(snap.total));
  out += line;
}

void append_gauge(std::string& out, const char* name, std::uint64_t v) {
  char line[160];
  std::snprintf(line, sizeof(line), "# TYPE %s gauge\n%s %llu\n", name, name,
                static_cast<unsigned long long>(v));
  out += line;
}

}  // namespace

std::string ServeMetrics::render(std::uint64_t registry_quarantined) const {
  std::string out;
  out.reserve(2048);
  append_counter(out, "sgm_serve_http_requests_total",
                 http_requests_total.load(std::memory_order_relaxed));
  append_counter(out, "sgm_serve_http_errors_total",
                 http_errors_total.load(std::memory_order_relaxed));
  append_counter(out, "sgm_serve_queries_total",
                 queries_total.load(std::memory_order_relaxed));
  append_counter(out, "sgm_serve_query_errors_total",
                 query_errors_total.load(std::memory_order_relaxed));
  append_counter(out, "sgm_serve_rejected_total",
                 rejected_total.load(std::memory_order_relaxed));
  append_counter(out, "sgm_serve_deadline_shed_total",
                 deadline_shed_total.load(std::memory_order_relaxed));
  append_counter(out, "sgm_serve_batches_total",
                 batches_total.load(std::memory_order_relaxed));
  append_counter(out, "sgm_serve_batched_queries_total",
                 batched_queries_total.load(std::memory_order_relaxed));
  append_counter(out, "sgm_serve_full_flushes_total",
                 full_flushes_total.load(std::memory_order_relaxed));
  append_counter(out, "sgm_serve_deadline_flushes_total",
                 deadline_flushes_total.load(std::memory_order_relaxed));
  append_counter(out, "sgm_registry_quarantined_total", registry_quarantined);
  append_gauge(out, "sgm_serve_open_connections",
               open_connections.load(std::memory_order_relaxed));
  append_summary(out, "sgm_serve_http_latency_seconds",
                 http_latency.snapshot());
  append_summary(out, "sgm_serve_query_latency_seconds",
                 query_latency.snapshot());
  return out;
}

}  // namespace sgm::serve
