#include "serve/batcher.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/check.hpp"

namespace sgm::serve {

using Clock = std::chrono::steady_clock;

namespace {

// Exception objects must not cross threads. Transporting them through
// promise::set_exception means the worker can drop the last reference to
// an exception whose what() buffer a client just read; the refcounting
// that makes this safe lives inside libstdc++ where TSan cannot see it,
// and one exception object would be shared by every member of a failed
// batch besides. The worker records an error *code* + message instead and
// query() throws a fresh exception on the caller's own thread.
enum class ErrKind : std::uint8_t {
  kNone,
  kOutOfRange,
  kInvalidArgument,
  kRuntime,
};

[[noreturn]] void rethrow(ErrKind kind, const std::string& message) {
  switch (kind) {
    case ErrKind::kOutOfRange:
      throw std::out_of_range(message);
    case ErrKind::kInvalidArgument:
      throw std::invalid_argument(message);
    default:
      throw std::runtime_error(message);
  }
}

QueryError to_query_error(ErrKind kind) {
  switch (kind) {
    case ErrKind::kNone: return QueryError::kNone;
    case ErrKind::kOutOfRange: return QueryError::kNotFound;
    case ErrKind::kInvalidArgument: return QueryError::kInvalidArgument;
    case ErrKind::kRuntime: return QueryError::kRuntime;
  }
  return QueryError::kRuntime;
}

// Slot completion phases; a slot's state word is generation * 4 + phase.
constexpr std::uint64_t kPhaseFree = 0;
constexpr std::uint64_t kPhaseQueued = 1;
constexpr std::uint64_t kPhaseDone = 2;

// Spinning only helps when another core can complete the awaited work
// concurrently; on a single-CPU host every spin cycle starves the thread
// being waited on, so all spin budgets collapse to zero there and waiters
// yield or park instead.
const bool kMultiCore = std::thread::hardware_concurrency() > 1;

// Client-side spin budget before parking on the slot (~a few µs: a loaded
// multi-core server completes a batch well inside it).
const int kClientSpins = kMultiCore ? 128 : 0;
// Worker-side spin budget before parking on the gate.
const int kWorkerSpins = kMultiCore ? 256 : 0;
// Yields the batch-collect loop spends giving producers the CPU before it
// pays for a full gate park/unpark cycle per arrival.
constexpr int kCollectYields = 64;

// Bounded spin escalating to sched yield — for the retry loops that can
// only fail transiently (a peer claimed a ring slot but has not recycled
// its sequence yet). The yield guarantees progress on one core, where the
// peer cannot run while we spin.
inline void backoff(int& spins) {
  if (kMultiCore && spins < 256) {
    util::cpu_relax();
    ++spins;
  } else {
    std::this_thread::yield();
  }
}

}  // namespace

// Legacy (mutex-mode) request record.
struct InferenceBatcher::Pending {
  std::string scenario;
  std::vector<double> x;
  struct Outcome {
    Response resp;
    ErrKind err = ErrKind::kNone;
    std::string message;
  };
  std::promise<Outcome> promise;
  util::WallTimer since_enqueue;  ///< feeds query_latency
  Clock::time_point deadline;     ///< enqueue time + max_delay_s

  void fulfill(Response resp) {
    Outcome out;
    out.resp = std::move(resp);
    promise.set_value(std::move(out));
  }
  void fail(ErrKind kind, std::string message) {
    Outcome out;
    out.err = kind;
    out.message = std::move(message);
    promise.set_value(std::move(out));
  }
};

// Pooled response slot (ring mode). Ownership handoff:
//   client: pops the index off the freelist (exclusive owner), writes the
//           request fields, pushes the index onto the request ring — the
//           ring's release/acquire pair publishes the request to the
//           worker — then spins-then-parks on `state`;
//   worker: writes the response fields and publishes them with a release
//           store of `state` = generation*4 + kPhaseDone (complete_slot);
//   client: observes kPhaseDone (acquire), reads the response, bumps the
//           generation and returns the index to the freelist.
// The generation tag makes a recycled slot's state word unambiguous: a
// stale reader from a previous life can never mistake the new life's
// kPhaseDone for its own (its expected word differs in the generation
// bits). `parked`/`mu`/`cv` implement the spin-then-wait: the worker takes
// the slot mutex only when the client actually parked.
struct alignas(64) InferenceBatcher::Slot {
  // Request (client writes, worker reads; published by the ring push).
  std::string scenario;
  std::vector<double> x;
  util::WallTimer since_enqueue;
  Clock::time_point deadline;
  // Response (worker writes, client reads; published by `state`).
  Response resp;
  ErrKind err = ErrKind::kNone;
  std::string message;
  // Async completion (query_async): when `done` is set there is no parked
  // client — complete_slot delivers the response through the callback and
  // recycles the slot itself, on the worker thread.
  InferenceBatcher::Completion done = nullptr;
  void* done_ctx = nullptr;
  std::uint64_t done_tag1 = 0;
  std::uint64_t done_tag2 = 0;
  // Completion protocol. `parked` is an integer so both sides of its
  // Dekker pairing can use RMWs (see complete_slot).
  std::atomic<std::uint64_t> state{kPhaseFree};
  std::atomic<std::uint32_t> parked{0};
  util::Mutex mu;
  util::CondVar cv;
  std::uint64_t generation = 0;  ///< written only by the current owner
};

InferenceBatcher::InferenceBatcher(ModelRegistry& registry, BatcherOptions opt,
                                   ServeMetrics* metrics)
    : registry_(registry), opt_(opt), metrics_(metrics) {
  SGM_CHECK_ARG(opt_.max_batch >= 1, "InferenceBatcher: max_batch must be >= 1");
  SGM_CHECK_ARG(opt_.num_workers >= 1,
                "InferenceBatcher: num_workers must be >= 1");
  if (opt_.mode == QueueMode::kRing) {
    SGM_CHECK_ARG(opt_.queue_capacity >= 2,
                  "InferenceBatcher: queue_capacity must be >= 2");
    ring_ = std::make_unique<util::MpscRing<std::uint32_t>>(opt_.queue_capacity);
    freelist_ =
        std::make_unique<util::MpscRing<std::uint32_t>>(ring_->capacity());
    slots_ = std::make_unique<Slot[]>(ring_->capacity());
    for (std::uint32_t i = 0; i < ring_->capacity(); ++i) {
      const bool ok = freelist_->try_push(i);
      SGM_CHECK(ok, "freelist seeding overflowed at slot ", i);
    }
  }
  workers_.reserve(opt_.num_workers);
  for (std::size_t i = 0; i < opt_.num_workers; ++i)
    workers_.emplace_back([this] {
      if (opt_.mode == QueueMode::kRing)
        ring_worker_loop();
      else
        mutex_worker_loop();
    });
}

InferenceBatcher::~InferenceBatcher() { stop(); }

InferenceBatcher::Response InferenceBatcher::query(const std::string& scenario,
                                                   std::vector<double> x,
                                                   double deadline_s) {
  if (draining_.load(std::memory_order_acquire))
    throw std::runtime_error("InferenceBatcher: query after stop()");
  const double budget =
      deadline_s < 0.0 ? opt_.default_deadline_s : deadline_s;
  maybe_shed(budget);
  return opt_.mode == QueueMode::kRing ? ring_query(scenario, std::move(x))
                                       : mutex_query(scenario, std::move(x));
}

std::uint64_t InferenceBatcher::in_flight() const {
  if (opt_.mode == QueueMode::kRing) {
    // Derived, not counted: a slot absent from the freelist is owned by a
    // client or the worker. Two relaxed loads; the lock-free request path
    // pays nothing for this monitoring signal.
    const std::size_t free_slots = freelist_->approx_size();
    const std::size_t cap = ring_->capacity();
    return free_slots >= cap ? 0 : cap - free_slots;
  }
  return in_flight_.load(std::memory_order_relaxed);
}

double InferenceBatcher::estimated_wait_s() const {
  // A query enqueued now waits for the batches ahead of it; each batch
  // costs at least the deadline-flush delay (a partial batch waits that
  // long for stragglers) and at most the smoothed observed service time.
  const double batch_s = std::max(
      static_cast<double>(ewma_batch_ns_.load(std::memory_order_relaxed)) *
          1e-9,
      opt_.max_delay_s);
  const std::uint64_t batches_ahead = in_flight() / opt_.max_batch + 1;
  return static_cast<double>(batches_ahead) * batch_s;
}

void InferenceBatcher::maybe_shed(double budget) const {
  if (budget <= 0.0) return;
  const double est = estimated_wait_s();
  if (est <= budget) return;
  if (metrics_)
    metrics_->deadline_shed_total.fetch_add(1, std::memory_order_relaxed);
  note_shed();
  throw DeadlineExceededError(
      "InferenceBatcher: estimated queue wait " + std::to_string(est) +
          " s exceeds the request deadline budget " + std::to_string(budget) +
          " s",
      est);
}

void InferenceBatcher::note_shed() const {
  shed_since_health_.fetch_add(1, std::memory_order_relaxed);
}

HealthState InferenceBatcher::health() {
  if (draining_.load(std::memory_order_acquire)) return HealthState::kDraining;
  // Latched: any shed since the previous probe marks one degraded reading.
  if (shed_since_health_.exchange(0, std::memory_order_relaxed) != 0)
    return HealthState::kDegraded;
  const std::uint64_t depth = in_flight();
  if (opt_.mode == QueueMode::kRing) {
    if (depth * 2 >= ring_->capacity()) return HealthState::kDegraded;
  } else if (depth >= 4 * opt_.max_batch) {
    return HealthState::kDegraded;
  }
  return HealthState::kOk;
}

void InferenceBatcher::update_service_ewma(double batch_s) {
  const auto ns = static_cast<std::uint64_t>(batch_s * 1e9);
  // Racy read-modify-write across workers: acceptable — the EWMA only
  // feeds estimated_wait_s, a monitoring signal, never correctness.
  const std::uint64_t prev = ewma_batch_ns_.load(std::memory_order_relaxed);
  const std::uint64_t next = prev == 0 ? ns : (prev * 7 + ns) / 8;
  ewma_batch_ns_.store(next, std::memory_order_relaxed);
}

void InferenceBatcher::count_flush(std::size_t batch_size) {
  if (!metrics_ || batch_size == 0) return;
  metrics_->batches_total.fetch_add(1, std::memory_order_relaxed);
  if (batch_size >= opt_.max_batch)
    metrics_->full_flushes_total.fetch_add(1, std::memory_order_relaxed);
  else
    metrics_->deadline_flushes_total.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Ring mode
// ---------------------------------------------------------------------------

std::uint32_t InferenceBatcher::ring_submit(const std::string& scenario,
                                            std::vector<double>&& x,
                                            Completion done, void* ctx,
                                            std::uint64_t tag1,
                                            std::uint64_t tag2) {
  if (stop_flag_.load(std::memory_order_acquire))
    throw std::runtime_error("InferenceBatcher: query after stop()");
  std::uint32_t idx = 0;
  if (!freelist_->try_pop(idx)) {
    // Bounded queue full: shed load now instead of queueing unboundedly.
    if (metrics_)
      metrics_->rejected_total.fetch_add(1, std::memory_order_relaxed);
    note_shed();
    throw QueueFullError("InferenceBatcher: request queue full (capacity " +
                         std::to_string(ring_->capacity()) + ")");
  }
  Slot& slot = slots_[idx];
  const std::uint64_t gen = slot.generation;
  slot.scenario = scenario;
  slot.x = std::move(x);
  slot.err = ErrKind::kNone;
  slot.message.clear();
  slot.done = done;
  slot.done_ctx = ctx;
  slot.done_tag1 = tag1;
  slot.done_tag2 = tag2;
  slot.since_enqueue.reset();
  slot.deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opt_.max_delay_s));
  slot.state.store(gen * 4 + kPhaseQueued, std::memory_order_relaxed);

  // Dekker pair with stop(): either this push lands before stop() starts
  // its final drain (stop spins until pending_pushes_ is 0), or the
  // stop_flag_ recheck below sees the stop and backs out.
  pending_pushes_.fetch_add(1, std::memory_order_seq_cst);
  if (stop_flag_.load(std::memory_order_seq_cst)) {
    pending_pushes_.fetch_sub(1, std::memory_order_release);
    slot.done = nullptr;
    slot.generation = gen + 1;
    slot.state.store((gen + 1) * 4 + kPhaseFree, std::memory_order_release);
    for (int s = 0; !freelist_->try_push(idx);) backoff(s);
    throw std::runtime_error("InferenceBatcher: query after stop()");
  }
  // Occupancy never exceeds the slot count == ring capacity, so a push can
  // only fail in the few-instruction window where a popping worker has
  // claimed the head but not yet recycled the slot sequence; back it off.
  for (int s = 0; !ring_->try_push(idx);) backoff(s);
  pending_pushes_.fetch_sub(1, std::memory_order_release);
  gate_.notify();
  return idx;
}

void InferenceBatcher::query_async(const std::string& scenario,
                                   std::vector<double> x, double deadline_s,
                                   Completion done, void* ctx,
                                   std::uint64_t tag1, std::uint64_t tag2) {
  SGM_CHECK_ARG(done != nullptr,
                "InferenceBatcher: query_async needs a completion");
  if (opt_.mode != QueueMode::kRing)
    throw std::logic_error(
        "InferenceBatcher: query_async requires QueueMode::kRing");
  if (draining_.load(std::memory_order_acquire))
    throw std::runtime_error("InferenceBatcher: query after stop()");
  const double budget =
      deadline_s < 0.0 ? opt_.default_deadline_s : deadline_s;
  maybe_shed(budget);
  ring_submit(scenario, std::move(x), done, ctx, tag1, tag2);
}

InferenceBatcher::Response InferenceBatcher::ring_query(
    const std::string& scenario, std::vector<double>&& x) {
  const std::uint32_t idx =
      ring_submit(scenario, std::move(x), nullptr, nullptr, 0, 0);
  Slot& slot = slots_[idx];
  // Safe to re-read: only the submitting client ever writes `generation`
  // for a sync slot, so it is unchanged since ring_submit claimed the slot.
  const std::uint64_t gen = slot.generation;

  // Spin-then-park on the slot until the worker publishes the response.
  const std::uint64_t want = gen * 4 + kPhaseDone;
  bool done = false;
  for (int i = 0; i < kClientSpins; ++i) {
    if (slot.state.load(std::memory_order_acquire) == want) {
      done = true;
      break;
    }
    util::cpu_relax();
  }
  if (!done) {
    slot.parked.exchange(1, std::memory_order_seq_cst);
    {
      util::MutexLock lock(slot.mu);
      while (slot.state.load(std::memory_order_acquire) != want)
        slot.cv.wait(slot.mu);
    }
    slot.parked.store(0, std::memory_order_relaxed);
  }

  const ErrKind err = slot.err;
  Response resp;
  std::string message;
  if (err == ErrKind::kNone)
    resp = std::move(slot.resp);
  else
    message = std::move(slot.message);
  // Recycle: bump the generation so any stale observer of the old state
  // word can never match, then hand the slot back to the pool.
  slot.generation = gen + 1;
  slot.state.store((gen + 1) * 4 + kPhaseFree, std::memory_order_release);
  for (int s = 0; !freelist_->try_push(idx);) backoff(s);
  if (err != ErrKind::kNone) rethrow(err, message);
  return resp;
}

void InferenceBatcher::complete_slot(Slot& slot) {
  const std::uint64_t gen = slot.state.load(std::memory_order_relaxed) / 4;
  if (slot.done != nullptr) {
    // Async slot (query_async): no parked client — move the outcome out,
    // recycle the slot here (it is back in the pool before the callback
    // runs, so a slow callback never holds queue capacity), then deliver.
    // This thread is the slot's exclusive owner; plain reads suffice.
    const Completion done = slot.done;
    void* const ctx = slot.done_ctx;
    const std::uint64_t tag1 = slot.done_tag1;
    const std::uint64_t tag2 = slot.done_tag2;
    Response resp = std::move(slot.resp);
    const ErrKind err = slot.err;
    std::string message = std::move(slot.message);
    slot.done = nullptr;
    slot.resp = Response{};
    slot.message = std::string();
    slot.generation = gen + 1;
    slot.state.store((gen + 1) * 4 + kPhaseFree, std::memory_order_release);
    const auto idx = static_cast<std::uint32_t>(&slot - slots_.get());
    for (int s = 0; !freelist_->try_push(idx);) backoff(s);
    done(ctx, tag1, tag2, std::move(resp), to_query_error(err), message);
    return;
  }
  slot.state.store(gen * 4 + kPhaseDone, std::memory_order_release);
  // Dekker pair with the client's parked publication, fence-free (TSan
  // cannot model fences): both sides RMW `parked` seq_cst. If this identity
  // RMW reads 0, the client's exchange(1) is later in the modification
  // order and reads-from this write — the synchronizes-with edge orders the
  // kPhaseDone store above before the client's post-exchange state recheck,
  // so the client cannot park on a completed slot. If it reads 1, notify.
  if (slot.parked.fetch_add(0, std::memory_order_seq_cst) != 0) {
    { util::MutexLock lock(slot.mu); }  // order the wakeup after the wait
    slot.cv.notify_one();
  }
}

void InferenceBatcher::fail_slot(Slot& slot, std::uint8_t err,
                                 const std::string& message) {
  slot.err = static_cast<ErrKind>(err);
  slot.message = message;
  complete_slot(slot);
}

void InferenceBatcher::drain_ring_failing() {
  std::uint32_t idx = 0;
  while (ring_->try_pop(idx))
    fail_slot(slots_[idx], static_cast<std::uint8_t>(ErrKind::kRuntime),
              "InferenceBatcher: stopped before serving");
}

void InferenceBatcher::ring_worker_loop() {
  // Requests popped for a different scenario than the batch under assembly
  // wait here; the next iteration serves them first (oldest first).
  std::vector<std::uint32_t> stash;
  std::vector<std::uint32_t> batch;
  const auto stop_drain = [this, &stash] {
    for (const std::uint32_t idx : stash)
      fail_slot(slots_[idx], static_cast<std::uint8_t>(ErrKind::kRuntime),
                "InferenceBatcher: stopped before serving");
    stash.clear();
    drain_ring_failing();
  };
  for (;;) {
    // --- obtain the batch's first (oldest) member -------------------------
    std::uint32_t first = 0;
    bool have_first = false;
    if (!stash.empty()) {
      first = stash.front();
      stash.erase(stash.begin());
      have_first = true;
    }
    while (!have_first) {
      if (stop_flag_.load(std::memory_order_acquire)) {
        stop_drain();
        return;
      }
      if (ring_->try_pop(first)) {
        have_first = true;
        break;
      }
      for (int i = 0; i < kWorkerSpins && !have_first; ++i) {
        util::cpu_relax();
        have_first = ring_->try_pop(first);
      }
      if (have_first) break;
      const util::RingGate::Ticket ticket = gate_.prepare_wait();
      if (ring_->try_pop(first)) {  // mandatory recheck (see RingGate)
        gate_.cancel_wait();
        have_first = true;
        break;
      }
      if (stop_flag_.load(std::memory_order_acquire)) {
        gate_.cancel_wait();
        stop_drain();
        return;
      }
      gate_.wait(ticket);
    }

    const std::string scenario = slots_[first].scenario;
    const Clock::time_point deadline = slots_[first].deadline;
    batch.clear();
    batch.push_back(first);

    // --- coalesce: stashed entries first, then new arrivals ---------------
    for (auto it = stash.begin();
         it != stash.end() && batch.size() < opt_.max_batch;) {
      if (slots_[*it].scenario == scenario) {
        batch.push_back(*it);
        it = stash.erase(it);
      } else {
        ++it;
      }
    }
    // Deadline flush: a partial batch waits for stragglers only until the
    // oldest member's deadline, bounding tail latency at low load.
    int yields = 0;
    while (batch.size() < opt_.max_batch &&
           !stop_flag_.load(std::memory_order_acquire)) {
      std::uint32_t idx = 0;
      if (ring_->try_pop(idx)) {
        (slots_[idx].scenario == scenario ? batch : stash).push_back(idx);
        yields = 0;
        continue;
      }
      if (Clock::now() >= deadline) break;
      // Give producers the CPU first: a woken client pushes through the
      // gate's no-waiter fast path (no lock, no futex), so under load the
      // batch fills without a park/unpark syscall pair per arrival.
      if (yields < kCollectYields) {
        ++yields;
        std::this_thread::yield();
        continue;
      }
      const util::RingGate::Ticket ticket = gate_.prepare_wait();
      if (ring_->try_pop(idx)) {
        gate_.cancel_wait();
        (slots_[idx].scenario == scenario ? batch : stash).push_back(idx);
        continue;
      }
      if (stop_flag_.load(std::memory_order_acquire)) {
        gate_.cancel_wait();
        break;
      }
      if (!gate_.wait_until(ticket, deadline)) break;
    }

    count_flush(batch.size());
    serve_slots(batch);
  }
}

void InferenceBatcher::serve_slots(const std::vector<std::uint32_t>& batch) {
  if (batch.empty()) return;
  util::WallTimer service_timer;  // feeds the estimated-wait EWMA

  // One acquire per batch: every response below carries this version.
  ServedModelPtr served;
  try {
    served = registry_.acquire(slots_[batch.front()].scenario);
  } catch (const std::exception& e) {
    if (metrics_)
      metrics_->query_errors_total.fetch_add(batch.size(),
                                             std::memory_order_relaxed);
    const ErrKind kind = dynamic_cast<const std::out_of_range*>(&e)
                             ? ErrKind::kOutOfRange
                             : ErrKind::kRuntime;
    for (const std::uint32_t idx : batch)
      fail_slot(slots_[idx], static_cast<std::uint8_t>(kind), e.what());
    return;
  }
  const nn::Mlp& net = *served->model;
  const std::size_t in_dim = net.config().input_dim;
  const std::size_t out_dim = net.config().output_dim;

  // Per-worker pooled buffers (thread_local: serve_slots only runs on
  // worker threads, and each worker reuses its own capacity run-to-run).
  thread_local tensor::Matrix xb, yb;
  thread_local nn::Mlp::ForwardWorkspace ws;

  std::vector<Slot*> valid;
  valid.reserve(batch.size());
  for (const std::uint32_t idx : batch) {
    Slot& slot = slots_[idx];
    if (slot.x.size() == in_dim) {
      valid.push_back(&slot);
      continue;
    }
    if (metrics_)
      metrics_->query_errors_total.fetch_add(1, std::memory_order_relaxed);
    fail_slot(slot, static_cast<std::uint8_t>(ErrKind::kInvalidArgument),
              "InferenceBatcher: query width " + std::to_string(slot.x.size()) +
                  " != input_dim " + std::to_string(in_dim));
  }
  if (valid.empty()) return;

  xb.resize(valid.size(), in_dim);
  for (std::size_t r = 0; r < valid.size(); ++r) {
    double* row = xb.row(r);
    for (std::size_t c = 0; c < in_dim; ++c) row[c] = valid[r]->x[c];
  }
  try {
    net.forward_batched(xb, yb, ws, opt_.num_threads);
  } catch (const std::exception& e) {
    if (metrics_)
      metrics_->query_errors_total.fetch_add(valid.size(),
                                             std::memory_order_relaxed);
    for (Slot* slot : valid)
      fail_slot(*slot, static_cast<std::uint8_t>(ErrKind::kRuntime), e.what());
    return;
  }
  SGM_CHECK(yb.rows() == valid.size() && yb.cols() == out_dim,
            "forward_batched returned ", yb.rows(), "x", yb.cols(),
            " for a ", valid.size(), "-query batch of width ", out_dim);

  // Counters first, fulfillment second: a client that has its response in
  // hand must already be visible in the metrics (complete_slot unblocks the
  // caller immediately, so anything after it races with the client).
  if (metrics_) {
    metrics_->batched_queries_total.fetch_add(valid.size(),
                                              std::memory_order_relaxed);
    metrics_->queries_total.fetch_add(valid.size(), std::memory_order_relaxed);
  }
  for (std::size_t r = 0; r < valid.size(); ++r) {
    Slot& slot = *valid[r];
    slot.resp.y.assign(yb.row(r), yb.row(r) + out_dim);
    slot.resp.version = served->info.meta.model_version;
    slot.resp.checksum = served->info.checksum;
    if (metrics_)
      metrics_->query_latency.record(slot.since_enqueue.elapsed_s());
    complete_slot(slot);
  }
  update_service_ewma(service_timer.elapsed_s());
}

// ---------------------------------------------------------------------------
// Legacy mutex mode (the PR 6 implementation, kept as the bench A/B arm)
// ---------------------------------------------------------------------------

InferenceBatcher::Response InferenceBatcher::mutex_query(
    const std::string& scenario, std::vector<double>&& x) {
  auto pending = std::make_unique<Pending>();
  pending->scenario = scenario;
  pending->x = std::move(x);
  pending->deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opt_.max_delay_s));
  std::future<Pending::Outcome> fut = pending->promise.get_future();
  {
    util::MutexLock lock(mu_);
    if (stop_)
      throw std::runtime_error("InferenceBatcher: query after stop()");
    queue_.push_back(std::move(pending));
  }
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_one();
  Pending::Outcome out = fut.get();
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  if (out.err != ErrKind::kNone) rethrow(out.err, out.message);
  return std::move(out.resp);
}

void InferenceBatcher::collect_locked(
    const std::string& scenario,
    std::vector<std::unique_ptr<Pending>>& batch) {
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < opt_.max_batch;) {
    if ((*it)->scenario == scenario) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void InferenceBatcher::mutex_worker_loop() {
  std::vector<std::unique_ptr<Pending>> batch;
  while (true) {
    batch.clear();
    {
      util::MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(mu_);
      if (stop_) return;  // stop() answers whatever is still queued

      // Coalesce every pending request for the scenario at the head of the
      // queue; requests for other scenarios keep their queue order and are
      // picked up by the next batch.
      const std::string scenario = queue_.front()->scenario;
      const Clock::time_point deadline = queue_.front()->deadline;
      collect_locked(scenario, batch);
      // Deadline flush, as in ring mode.
      while (batch.size() < opt_.max_batch && !stop_) {
        if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) {
          collect_locked(scenario, batch);
          break;
        }
        collect_locked(scenario, batch);
      }
    }
    count_flush(batch.size());
    serve_batch(std::move(batch));
  }
}

void InferenceBatcher::serve_batch(
    std::vector<std::unique_ptr<Pending>> batch) {
  if (batch.empty()) return;
  util::WallTimer service_timer;  // feeds the estimated-wait EWMA

  ServedModelPtr served;
  try {
    served = registry_.acquire(batch.front()->scenario);
  } catch (const std::exception& e) {
    if (metrics_)
      metrics_->query_errors_total.fetch_add(batch.size(),
                                             std::memory_order_relaxed);
    const ErrKind kind = dynamic_cast<const std::out_of_range*>(&e)
                             ? ErrKind::kOutOfRange
                             : ErrKind::kRuntime;
    for (auto& p : batch) p->fail(kind, e.what());
    return;
  }
  const nn::Mlp& net = *served->model;
  const std::size_t in_dim = net.config().input_dim;
  const std::size_t out_dim = net.config().output_dim;

  thread_local tensor::Matrix xb, yb;
  thread_local nn::Mlp::ForwardWorkspace ws;

  std::vector<Pending*> valid;
  valid.reserve(batch.size());
  for (auto& p : batch) {
    if (p->x.size() == in_dim) {
      valid.push_back(p.get());
      continue;
    }
    if (metrics_)
      metrics_->query_errors_total.fetch_add(1, std::memory_order_relaxed);
    p->fail(ErrKind::kInvalidArgument,
            "InferenceBatcher: query width " + std::to_string(p->x.size()) +
                " != input_dim " + std::to_string(in_dim));
  }
  if (valid.empty()) return;

  xb.resize(valid.size(), in_dim);
  for (std::size_t r = 0; r < valid.size(); ++r) {
    double* row = xb.row(r);
    for (std::size_t c = 0; c < in_dim; ++c) row[c] = valid[r]->x[c];
  }
  try {
    net.forward_batched(xb, yb, ws, opt_.num_threads);
  } catch (const std::exception& e) {
    if (metrics_)
      metrics_->query_errors_total.fetch_add(valid.size(),
                                             std::memory_order_relaxed);
    for (Pending* p : valid) p->fail(ErrKind::kRuntime, e.what());
    return;
  }
  SGM_CHECK(yb.rows() == valid.size() && yb.cols() == out_dim,
            "forward_batched returned ", yb.rows(), "x", yb.cols(),
            " for a ", valid.size(), "-query batch of width ", out_dim);

  if (metrics_) {
    metrics_->batched_queries_total.fetch_add(valid.size(),
                                              std::memory_order_relaxed);
    metrics_->queries_total.fetch_add(valid.size(),
                                      std::memory_order_relaxed);
  }
  for (std::size_t r = 0; r < valid.size(); ++r) {
    Response resp;
    resp.y.assign(yb.row(r), yb.row(r) + out_dim);
    resp.version = served->info.meta.model_version;
    resp.checksum = served->info.checksum;
    if (metrics_)
      metrics_->query_latency.record(valid[r]->since_enqueue.elapsed_s());
    valid[r]->fulfill(std::move(resp));
  }
  update_service_ewma(service_timer.elapsed_s());
}

// ---------------------------------------------------------------------------
// Shutdown
// ---------------------------------------------------------------------------

void InferenceBatcher::graceful_drain() {
  // Step 1 of stop(): flip to draining (query() rejects from here on) and
  // give the workers a bounded window to answer what was already accepted.
  // Already-draining calls fall through immediately once in-flight work
  // is gone, keeping stop() idempotent.
  draining_.store(true, std::memory_order_seq_cst);
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opt_.drain_deadline_s));
  while (in_flight() != 0 && Clock::now() < deadline)
    std::this_thread::yield();
}

void InferenceBatcher::stop() {
  graceful_drain();
  if (opt_.mode == QueueMode::kRing) {
    stop_flag_.store(true, std::memory_order_seq_cst);
    // Let in-flight ring pushes land before the final drain (Dekker pair
    // with ring_query): any client past its stop recheck has already
    // incremented pending_pushes_.
    while (pending_pushes_.load(std::memory_order_seq_cst) != 0)
      std::this_thread::yield();
    gate_.notify_all();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    workers_.clear();
    drain_ring_failing();  // entries that raced past the exiting workers
    return;
  }
  std::deque<std::unique_ptr<Pending>> orphans;
  {
    util::MutexLock lock(mu_);
    stop_ = true;
    orphans.swap(queue_);
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  for (auto& p : orphans) {
    p->fail(ErrKind::kRuntime, "InferenceBatcher: stopped before serving");
  }
}

}  // namespace sgm::serve
