#include "serve/batcher.hpp"

#include <chrono>
#include <future>
#include <stdexcept>
#include <utility>

#include "util/check.hpp"

namespace sgm::serve {

using Clock = std::chrono::steady_clock;

namespace {

// Exception objects must not cross threads. Transporting them through
// promise::set_exception means the worker can drop the last reference to
// an exception whose what() buffer a client just read; the refcounting
// that makes this safe lives inside libstdc++ where TSan cannot see it,
// and one exception object would be shared by every member of a failed
// batch besides. The worker records an error *code* + message instead and
// query() throws a fresh exception on the caller's own thread.
enum class ErrKind : std::uint8_t {
  kNone,
  kOutOfRange,
  kInvalidArgument,
  kRuntime,
};

}  // namespace

struct InferenceBatcher::Pending {
  std::string scenario;
  std::vector<double> x;
  struct Outcome {
    Response resp;
    ErrKind err = ErrKind::kNone;
    std::string message;
  };
  std::promise<Outcome> promise;
  util::WallTimer since_enqueue;  ///< feeds query_latency
  Clock::time_point deadline;     ///< enqueue time + max_delay_s

  void fulfill(Response resp) {
    Outcome out;
    out.resp = std::move(resp);
    promise.set_value(std::move(out));
  }
  void fail(ErrKind kind, std::string message) {
    Outcome out;
    out.err = kind;
    out.message = std::move(message);
    promise.set_value(std::move(out));
  }
};

InferenceBatcher::InferenceBatcher(ModelRegistry& registry, BatcherOptions opt,
                                   ServeMetrics* metrics)
    : registry_(registry), opt_(opt), metrics_(metrics) {
  SGM_CHECK_ARG(opt_.max_batch >= 1, "InferenceBatcher: max_batch must be >= 1");
  SGM_CHECK_ARG(opt_.num_workers >= 1,
                "InferenceBatcher: num_workers must be >= 1");
  workers_.reserve(opt_.num_workers);
  for (std::size_t i = 0; i < opt_.num_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

InferenceBatcher::~InferenceBatcher() { stop(); }

InferenceBatcher::Response InferenceBatcher::query(const std::string& scenario,
                                                   std::vector<double> x) {
  auto pending = std::make_unique<Pending>();
  pending->scenario = scenario;
  pending->x = std::move(x);
  pending->deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opt_.max_delay_s));
  std::future<Pending::Outcome> fut = pending->promise.get_future();
  {
    util::MutexLock lock(mu_);
    if (stop_)
      throw std::runtime_error("InferenceBatcher: query after stop()");
    queue_.push_back(std::move(pending));
  }
  cv_.notify_one();
  Pending::Outcome out = fut.get();
  switch (out.err) {  // worker errors rethrow here, on the caller's thread
    case ErrKind::kNone:
      return std::move(out.resp);
    case ErrKind::kOutOfRange:
      throw std::out_of_range(out.message);
    case ErrKind::kInvalidArgument:
      throw std::invalid_argument(out.message);
    case ErrKind::kRuntime:
      break;
  }
  throw std::runtime_error(out.message);
}

void InferenceBatcher::collect_locked(
    const std::string& scenario,
    std::vector<std::unique_ptr<Pending>>& batch) {
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < opt_.max_batch;) {
    if ((*it)->scenario == scenario) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void InferenceBatcher::worker_loop() {
  std::vector<std::unique_ptr<Pending>> batch;
  while (true) {
    batch.clear();
    {
      util::MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(mu_);
      if (stop_) return;  // stop() answers whatever is still queued

      // Coalesce every pending request for the scenario at the head of the
      // queue; requests for other scenarios keep their queue order and are
      // picked up by the next batch.
      const std::string scenario = queue_.front()->scenario;
      const Clock::time_point deadline = queue_.front()->deadline;
      collect_locked(scenario, batch);
      // Deadline flush: a partial batch waits for stragglers only until the
      // oldest member's deadline, bounding tail latency at low load.
      while (batch.size() < opt_.max_batch && !stop_) {
        if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) {
          collect_locked(scenario, batch);
          break;
        }
        collect_locked(scenario, batch);
      }
    }
    if (metrics_ && !batch.empty()) {
      metrics_->batches_total.fetch_add(1, std::memory_order_relaxed);
      if (batch.size() >= opt_.max_batch)
        metrics_->full_flushes_total.fetch_add(1, std::memory_order_relaxed);
      else
        metrics_->deadline_flushes_total.fetch_add(1,
                                                   std::memory_order_relaxed);
    }
    serve_batch(std::move(batch));
  }
}

void InferenceBatcher::serve_batch(
    std::vector<std::unique_ptr<Pending>> batch) {
  if (batch.empty()) return;

  // One acquire per batch: every response below carries this version.
  ServedModelPtr served;
  try {
    served = registry_.acquire(batch.front()->scenario);
  } catch (const std::exception& e) {
    if (metrics_)
      metrics_->query_errors_total.fetch_add(batch.size(),
                                             std::memory_order_relaxed);
    const ErrKind kind = dynamic_cast<const std::out_of_range*>(&e)
                             ? ErrKind::kOutOfRange
                             : ErrKind::kRuntime;
    for (auto& p : batch) p->fail(kind, e.what());
    return;
  }
  const nn::Mlp& net = *served->model;
  const std::size_t in_dim = net.config().input_dim;
  const std::size_t out_dim = net.config().output_dim;

  // Per-worker pooled buffers (thread_local: serve_batch only runs on
  // worker threads, and each worker reuses its own capacity run-to-run).
  thread_local tensor::Matrix xb, yb;
  thread_local nn::Mlp::ForwardWorkspace ws;

  std::vector<Pending*> valid;
  valid.reserve(batch.size());
  for (auto& p : batch) {
    if (p->x.size() == in_dim) {
      valid.push_back(p.get());
      continue;
    }
    if (metrics_)
      metrics_->query_errors_total.fetch_add(1, std::memory_order_relaxed);
    p->fail(ErrKind::kInvalidArgument,
            "InferenceBatcher: query width " + std::to_string(p->x.size()) +
                " != input_dim " + std::to_string(in_dim));
  }
  if (valid.empty()) return;

  xb.resize(valid.size(), in_dim);
  for (std::size_t r = 0; r < valid.size(); ++r) {
    double* row = xb.row(r);
    for (std::size_t c = 0; c < in_dim; ++c) row[c] = valid[r]->x[c];
  }
  try {
    net.forward_batched(xb, yb, ws, opt_.num_threads);
  } catch (const std::exception& e) {
    if (metrics_)
      metrics_->query_errors_total.fetch_add(valid.size(),
                                             std::memory_order_relaxed);
    for (Pending* p : valid) p->fail(ErrKind::kRuntime, e.what());
    return;
  }
  SGM_CHECK(yb.rows() == valid.size() && yb.cols() == out_dim,
            "forward_batched returned ", yb.rows(), "x", yb.cols(),
            " for a ", valid.size(), "-query batch of width ", out_dim);

  // Counters first, fulfillment second: a client that has its response in
  // hand must already be visible in the metrics (set_value unblocks the
  // caller immediately, so anything after it races with the client).
  if (metrics_) {
    metrics_->batched_queries_total.fetch_add(valid.size(),
                                              std::memory_order_relaxed);
    metrics_->queries_total.fetch_add(valid.size(),
                                      std::memory_order_relaxed);
  }
  for (std::size_t r = 0; r < valid.size(); ++r) {
    Response resp;
    resp.y.assign(yb.row(r), yb.row(r) + out_dim);
    resp.version = served->info.meta.model_version;
    resp.checksum = served->info.checksum;
    if (metrics_)
      metrics_->query_latency.record(valid[r]->since_enqueue.elapsed_s());
    valid[r]->fulfill(std::move(resp));
  }
}

void InferenceBatcher::stop() {
  std::deque<std::unique_ptr<Pending>> orphans;
  {
    util::MutexLock lock(mu_);
    stop_ = true;
    orphans.swap(queue_);
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  for (auto& p : orphans) {
    p->fail(ErrKind::kRuntime, "InferenceBatcher: stopped before serving");
  }
}

}  // namespace sgm::serve
