#pragma once
// Minimal HTTP/1.1 front end for the surrogate serving engine.
//
// Architecture: one acceptor thread pushes connections onto a queue; a
// fixed pool of handler threads serves them with blocking reads/writes and
// keep-alive (connection-per-thread — request concurrency is aggregated by
// the InferenceBatcher behind it, not by socket multiplexing). In the
// spirit of GraphLab's in-process metrics_server: a tiny embedded endpoint,
// not a general web server.
//
// The read path is a streaming loop: leftover buffered bytes carry across
// requests, so a pipelining client gets one response per request no matter
// how the bytes chunk onto reads, and responses for already-buffered
// requests coalesce into one write. Content-Length is validated (digits
// only, <= max_body_bytes) before any arithmetic; GET-only endpoints
// return 405 for other verbs; HTTP/1.0 peers default to Connection: close;
// everything emitted inside a JSON string is escaped.
//
// Degradation contract (the failure model, docs/ARCHITECTURE.md):
//  * a full batcher queue surfaces as 503 + sgm_serve_rejected_total and a
//    Retry-After hint (backpressure, not collapse);
//  * a query whose `x-deadline-ms` request header (or the batcher's default
//    deadline) is smaller than the estimated queue wait is shed up front:
//    503 + Retry-After + sgm_serve_deadline_shed_total;
//  * /healthz reports the batcher's health state — "ok" / "degraded" (both
//    200, degraded means load was shed recently or the queue is deep) or
//    "draining" (503, stop() in progress) — so load balancers can steer
//    away before hard failures;
//  * stop() drains gracefully: accepted connections get their buffered
//    requests answered (bounded by drain_deadline_s) before the hard stop.
//
// Routes:
//   POST /v1/query   {"scenario": "<name>", "x": [..]}
//                 -> {"scenario": "...", "version": N, "y": [..]}
//                    optional x-deadline-ms header = per-request budget
//   GET  /v1/models  JSON array of {scenario, version, resident, pinned}
//   GET  /healthz    "ok" | "degraded" (200) or "draining" (503)
//   GET  /metrics    Prometheus text exposition (ServeMetrics::render +
//                    sgm_registry_quarantined_total from the registry)
//
// Doubles in responses are printed with %.17g, so a served prediction
// round-trips the text layer bit-exactly (same contract as the telemetry
// CSVs).

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/metrics.hpp"
#include "serve/model_registry.hpp"
#include "util/mutex.hpp"
#include "util/socket.hpp"

namespace sgm::serve {

struct HttpServerOptions {
  std::uint16_t port = 0;        ///< 0 = ephemeral (read back via port())
  std::size_t num_workers = 4;   ///< connection handler threads
  double recv_timeout_s = 10.0;  ///< idle keep-alive cutoff
  /// Per-connection write timeout (SO_SNDTIMEO): a peer that stops reading
  /// stalls its own connection, not a handler thread forever. 0 disables.
  double send_timeout_s = 10.0;
  /// stop() serves already-accepted connections for at most this long
  /// before hard-stopping the handlers.
  double drain_deadline_s = 2.0;
  std::size_t max_body_bytes = 1 << 20;
};

class HttpServer {
 public:
  /// Binds immediately (so port() is valid) and spawns the threads.
  HttpServer(ModelRegistry& registry, InferenceBatcher& batcher,
             ServeMetrics& metrics, HttpServerOptions opt = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Graceful stop: refuses new connections immediately (/healthz flips to
  /// "draining"), answers the requests already accepted — bounded by
  /// opt_.drain_deadline_s — then hard-stops and joins all threads. Idle
  /// keep-alive connections are dropped at their next request boundary.
  /// Idempotent.
  void stop();

 private:
  void acceptor_loop();
  void handler_loop();
  /// Serves the connection until the peer closes, a request asks for (or
  /// implies) close, an error occurs, the idle timeout passes, or the
  /// server stops. Maintains a streaming read buffer across requests, so
  /// pipelined requests (many per read) are all served.
  void handle_connection(util::TcpSocket& conn);

  /// `deadline_s` is the request's deadline budget (< 0 = none given).
  /// `extra_headers` receives fully formed "Name: value\r\n" lines to splice
  /// into the response head (Retry-After on shed responses).
  std::string route(const std::string& method, const std::string& target,
                    const std::string& body, double deadline_s, int& status,
                    std::string& extra_headers);

  ModelRegistry& registry_;
  InferenceBatcher& batcher_;
  ServeMetrics& metrics_;
  HttpServerOptions opt_;

  util::TcpListener listener_;
  /// stop() entered its drain phase: handlers close connections at the next
  /// request boundary, /healthz reports "draining".
  std::atomic<bool> draining_{false};
  /// Connections currently inside handle_connection (incremented under mu_
  /// before the queue pop is published, so the drain loop can't miss one).
  std::atomic<std::uint32_t> active_conns_{0};
  util::Mutex mu_;
  util::CondVar cv_;
  std::deque<util::TcpSocket> conn_queue_ SGM_GUARDED_BY(mu_);
  bool stop_ SGM_GUARDED_BY(mu_) = false;
  std::thread acceptor_;
  std::vector<std::thread> handlers_;
};

}  // namespace sgm::serve
