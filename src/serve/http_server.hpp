#pragma once
// Minimal HTTP/1.1 front end for the surrogate serving engine.
//
// Architecture: one acceptor thread pushes connections onto a queue; a
// fixed pool of handler threads serves them with blocking reads/writes and
// keep-alive (connection-per-thread — request concurrency is aggregated by
// the InferenceBatcher behind it, not by socket multiplexing). In the
// spirit of GraphLab's in-process metrics_server: a tiny embedded endpoint,
// not a general web server.
//
// The read path is a streaming loop: leftover buffered bytes carry across
// requests, so a pipelining client gets one response per request no matter
// how the bytes chunk onto reads, and responses for already-buffered
// requests coalesce into one write. Content-Length is validated (digits
// only, <= max_body_bytes) before any arithmetic; GET-only endpoints
// return 405 for other verbs; HTTP/1.0 peers default to Connection: close;
// everything emitted inside a JSON string is escaped. A full batcher queue
// surfaces as 503 + sgm_serve_rejected_total (backpressure, not collapse).
//
// Routes:
//   POST /v1/query   {"scenario": "<name>", "x": [..]}
//                 -> {"scenario": "...", "version": N, "y": [..]}
//   GET  /v1/models  JSON array of {scenario, version, resident, pinned}
//   GET  /healthz    "ok"
//   GET  /metrics    Prometheus text exposition (ServeMetrics::render)
//
// Doubles in responses are printed with %.17g, so a served prediction
// round-trips the text layer bit-exactly (same contract as the telemetry
// CSVs).

#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/metrics.hpp"
#include "serve/model_registry.hpp"
#include "util/mutex.hpp"
#include "util/socket.hpp"

namespace sgm::serve {

struct HttpServerOptions {
  std::uint16_t port = 0;        ///< 0 = ephemeral (read back via port())
  std::size_t num_workers = 4;   ///< connection handler threads
  double recv_timeout_s = 10.0;  ///< idle keep-alive cutoff
  std::size_t max_body_bytes = 1 << 20;
};

class HttpServer {
 public:
  /// Binds immediately (so port() is valid) and spawns the threads.
  HttpServer(ModelRegistry& registry, InferenceBatcher& batcher,
             ServeMetrics& metrics, HttpServerOptions opt = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Stops accepting, wakes the handlers and joins all threads. In-flight
  /// requests finish; idle keep-alive connections are dropped. Idempotent.
  void stop();

 private:
  void acceptor_loop();
  void handler_loop();
  /// Serves the connection until the peer closes, a request asks for (or
  /// implies) close, an error occurs, the idle timeout passes, or the
  /// server stops. Maintains a streaming read buffer across requests, so
  /// pipelined requests (many per read) are all served.
  void handle_connection(util::TcpSocket& conn);

  std::string route(const std::string& method, const std::string& target,
                    const std::string& body, int& status);

  ModelRegistry& registry_;
  InferenceBatcher& batcher_;
  ServeMetrics& metrics_;
  HttpServerOptions opt_;

  util::TcpListener listener_;
  util::Mutex mu_;
  util::CondVar cv_;
  std::deque<util::TcpSocket> conn_queue_ SGM_GUARDED_BY(mu_);
  bool stop_ SGM_GUARDED_BY(mu_) = false;
  std::thread acceptor_;
  std::vector<std::thread> handlers_;
};

}  // namespace sgm::serve
