#pragma once
// Minimal HTTP/1.1 front end for the surrogate serving engine.
//
// Two I/O modes share one routing/parsing core (serve/connection.*):
//
//  * IoMode::kReactor (default) — readiness-driven: a small fixed set of
//    reactor threads own nonblocking connections in an epoll set. Each
//    connection is a state machine (streaming parse buffer, ordered
//    pending-response queue, partial-write cursor); /v1/query dispatches
//    into the batcher's lock-free ring via query_async and the completion
//    marshals the response back to the owning reactor (eventfd wake only
//    when the reactor is actually parked in epoll_wait). Pipelined requests
//    on one connection batch together in the GEMM and their responses
//    coalesce into single writes, but always flush in request order.
//    Thread count is fixed at num_reactors no matter how many thousands of
//    keep-alive connections are open; idle connections cost one epoll
//    registration and one lazy idle-wheel entry, not a parked thread.
//  * IoMode::kThreads — the PR 6 thread-per-connection path with blocking
//    reads/writes, kept verbatim as the A/B baseline for
//    `bench_serve --io threads` (concurrency there = handler threads).
//
// The read path in both modes is a streaming loop: leftover buffered bytes
// carry across requests, so a pipelining client gets one response per
// request no matter how the bytes chunk onto reads. Content-Length is
// validated (digits only, <= max_body_bytes) before any arithmetic;
// GET-only endpoints return 405 for other verbs; HTTP/1.0 peers default to
// Connection: close; the Connection header is parsed as a token list;
// non-finite numbers are rejected on parse and refused on serialize;
// everything emitted inside a JSON string is escaped.
//
// Degradation contract (the failure model, docs/ARCHITECTURE.md):
//  * a full batcher queue surfaces as 503 + sgm_serve_rejected_total and a
//    Retry-After hint (backpressure, not collapse);
//  * a query whose `x-deadline-ms` request header (or the batcher's default
//    deadline) is smaller than the estimated queue wait is shed up front:
//    503 + Retry-After + sgm_serve_deadline_shed_total — identical in both
//    I/O modes (query_async sheds synchronously at submit);
//  * /healthz reports the batcher's health state — "ok" / "degraded" (both
//    200, degraded means load was shed recently or the queue is deep) or
//    "draining" (503, stop() in progress) — so load balancers can steer
//    away before hard failures;
//  * stop() drains gracefully in both modes: accepted connections get their
//    buffered requests answered (bounded by drain_deadline_s) before the
//    hard stop.
//
// Routes:
//   POST /v1/query   {"scenario": "<name>", "x": [..]}
//                 -> {"scenario": "...", "version": N, "y": [..]}
//                    optional x-deadline-ms header = per-request budget
//   GET  /v1/models  JSON array of {scenario, version, resident, pinned}
//   GET  /healthz    "ok" | "degraded" (200) or "draining" (503)
//   GET  /metrics    Prometheus text exposition (ServeMetrics::render,
//                    including sgm_registry_quarantined_total and the
//                    sgm_serve_open_connections gauge)
//
// Doubles in responses are printed in their shortest round-trip form
// (std::to_chars), so a served prediction round-trips the text layer
// bit-exactly (same guarantee the telemetry CSVs get from %.17g).

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/connection.hpp"
#include "serve/metrics.hpp"
#include "serve/model_registry.hpp"
#include "util/mutex.hpp"
#include "util/socket.hpp"

namespace sgm::serve {

enum class IoMode : std::uint8_t {
  kReactor,  ///< epoll readiness loop, nonblocking fds (default)
  kThreads,  ///< thread-per-connection, blocking I/O (A/B baseline)
};

constexpr const char* to_string(IoMode m) {
  return m == IoMode::kReactor ? "reactor" : "threads";
}

struct HttpServerOptions {
  std::uint16_t port = 0;        ///< 0 = ephemeral (read back via port())
  std::size_t num_workers = 4;   ///< kThreads: connection handler threads
  double recv_timeout_s = 10.0;  ///< idle keep-alive cutoff (both modes)
  /// kThreads: per-connection write timeout (SO_SNDTIMEO) so a peer that
  /// stops reading stalls its own connection, not a handler thread forever.
  /// 0 disables. (The reactor never blocks on writes; a stalled peer just
  /// keeps its EPOLLOUT armed until the idle cutoff.)
  double send_timeout_s = 10.0;
  /// stop() serves already-accepted connections for at most this long
  /// before hard-stopping.
  double drain_deadline_s = 2.0;
  std::size_t max_body_bytes = 1 << 20;
  IoMode io_mode = IoMode::kReactor;
  /// kReactor: event-loop threads. Connections are distributed round-robin
  /// at accept; each is owned by exactly one reactor for its lifetime.
  std::size_t num_reactors = 1;
  /// kReactor: per-connection cap on parsed-but-unanswered requests.
  /// Reaching it pauses reading (EPOLLIN disarmed) until responses flush —
  /// per-connection backpressure on top of the batcher's bounded ring.
  std::size_t max_pipeline = 64;
};

class HttpServer {
 public:
  /// Binds immediately (so port() is valid) and spawns the threads.
  /// IoMode::kReactor requires a batcher with supports_async() (ring
  /// queue mode); throws std::invalid_argument otherwise.
  HttpServer(ModelRegistry& registry, InferenceBatcher& batcher,
             ServeMetrics& metrics, HttpServerOptions opt = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Graceful stop: refuses new connections immediately (/healthz flips to
  /// "draining"), answers the requests already accepted — bounded by
  /// opt_.drain_deadline_s — then hard-stops and joins all threads. Idle
  /// keep-alive connections are dropped at their next request boundary.
  /// Idempotent.
  void stop();

 private:
  struct Reactor;

  // --- kThreads mode -------------------------------------------------------
  void acceptor_loop();
  void handler_loop();
  /// Serves the connection until the peer closes, a request asks for (or
  /// implies) close, an error occurs, the idle timeout passes, or the
  /// server stops. Maintains a streaming read buffer across requests, so
  /// pipelined requests (many per read) are all served.
  void handle_connection(util::TcpSocket& conn);

  /// `deadline_s` is the request's deadline budget (< 0 = none given).
  /// `extra_headers` receives fully formed "Name: value\r\n" lines to splice
  /// into the response head (Retry-After on shed responses). Used by the
  /// blocking path; the reactor splits the /v1/query dispatch out (see
  /// dispatch_request) and shares route_sync for everything else.
  std::string route(const std::string& method, const std::string& target,
                    const std::string& body, double deadline_s, int& status,
                    std::string& extra_headers);

  /// The non-query endpoints (/healthz, /metrics, /v1/models, 404s, 405s):
  /// synchronous in both modes.
  std::string route_sync(const std::string& method, const std::string& target,
                         int& status);

  // --- kReactor mode -------------------------------------------------------
  void reactor_loop(Reactor& r);
  void wake(Reactor& r);
  void adopt_connection(Reactor& r, util::TcpSocket sock);
  void close_connection(Reactor& r, Connection& c);
  void accept_ready(Reactor& r);
  void on_readable(Reactor& r, Connection& c);
  /// Parses every complete buffered request (up to the pipeline cap) and
  /// dispatches each; updates read-interest afterwards.
  void parse_requests(Reactor& r, Connection& c);
  void dispatch_request(Reactor& r, Connection& c, http::HttpRequest req);
  /// Fills `seq` with a locally produced (non-async) response.
  void finish_local(Reactor& r, Connection& c, std::uint64_t seq, int status,
                    const std::string& body, bool keep_alive,
                    const std::string& extra_headers = std::string());
  void mark_dirty(Reactor& r, Connection& c);
  /// Recomputes the epoll interest mask (EPOLLIN paused at the pipeline
  /// cap / after parse stop; EPOLLOUT only while output is backlogged).
  void update_interest(Reactor& r, Connection& c);
  /// collect_ready + flush + epoll re-arming + close-when-done for every
  /// connection marked dirty this cycle.
  void flush_dirty(Reactor& r);
  void drain_inboxes(Reactor& r);
  void expire_idle(Reactor& r);
  /// InferenceBatcher::Completion trampoline (ctx = Reactor*).
  static void on_query_done(void* ctx, std::uint64_t conn_id,
                            std::uint64_t seq, InferenceBatcher::Response&& resp,
                            QueryError error, const std::string& message);

  ModelRegistry& registry_;
  InferenceBatcher& batcher_;
  ServeMetrics& metrics_;
  HttpServerOptions opt_;

  util::TcpListener listener_;
  /// stop() entered its drain phase: no new connections; existing ones are
  /// answered and closed at their next request boundary; /healthz reports
  /// "draining".
  std::atomic<bool> draining_{false};

  // kThreads state.
  /// Connections currently inside handle_connection (incremented under mu_
  /// before the queue pop is published, so the drain loop can't miss one).
  std::atomic<std::uint32_t> active_conns_{0};
  util::Mutex mu_;
  util::CondVar cv_;
  std::deque<util::TcpSocket> conn_queue_ SGM_GUARDED_BY(mu_);
  bool stop_ SGM_GUARDED_BY(mu_) = false;
  std::thread acceptor_;
  std::vector<std::thread> handlers_;

  // kReactor state.
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::atomic<bool> hard_stop_{false};  ///< reactor loops exit when set
  /// Open reactor-owned connections across all reactors (drain progress).
  std::atomic<std::uint64_t> reactor_conns_{0};
  /// query_async dispatches whose completion has not finished yet. The
  /// completion touches its Reactor's inbox, so stop() must not let the
  /// reactors die before this reaches zero.
  std::atomic<std::uint64_t> outstanding_{0};
};

}  // namespace sgm::serve
