#pragma once
// HTTP request-path machinery shared by both HttpServer I/O modes, split
// out of http_server.cpp so the epoll reactor, the thread-per-connection
// path and the unit tests all exercise the exact same parser and
// serializer:
//
//  * sgm::serve::http — the head parser (streaming: kNeedMore until the
//    full head is buffered), the two-shape JSON body helpers and the
//    response serializers. Pure functions over strings; no I/O.
//  * sgm::serve::Connection — the reactor's per-connection state machine:
//    streaming input buffer, an *ordered* pending-response queue (pipelined
//    requests dispatch concurrently into the batcher but their responses
//    flush strictly in request order), and a partial-write cursor over the
//    coalesced output buffer.
//
// Parser hardening pinned by tests/test_serve.cpp regressions:
//  * find_key walks JSON structure and skips string *contents*, so a value
//    that happens to contain a key's spelling ({"scenario": "x", "x": [1]})
//    can never shadow the real key;
//  * json_number_array rejects non-finite numbers (nan/inf/1e999) — and the
//    response side refuses to serialize non-finite predictions (defense in
//    depth: a bare `nan` token is not JSON);
//  * the Connection header is parsed as a comma-separated token list
//    ("keep-alive, Upgrade" keeps the connection alive; close wins).

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/socket.hpp"
#include "util/timer.hpp"

namespace sgm::serve::http {

struct HttpRequest {
  std::string method, target, body;
  bool keep_alive = true;
  std::size_t content_length = 0;
  double deadline_s = -1.0;  ///< from x-deadline-ms; < 0 = none given
};

enum class ParseStatus {
  kNeedMore,    ///< head incomplete; read more bytes
  kOk,          ///< head parsed; body starts at body_offset
  kBadRequest,  ///< 400: malformed request line / version / Content-Length
  kTooLarge,    ///< 413: declared Content-Length exceeds max_body_bytes
};

/// Parses the head (request line + headers) at the start of `buf`. The
/// Content-Length value is validated here — digits only, no wrap, and at
/// most `max_body_bytes` — so a hostile header is rejected immediately
/// instead of wrapping `body_offset + content_length` into a truncated body
/// or stalling the connection until the idle timeout. The Connection header
/// is a token list: any `close` token forces close, else any `keep-alive`
/// token keeps the connection alive.
ParseStatus parse_head(const std::string& buf, HttpRequest& req,
                       std::size_t& body_offset, std::size_t max_body_bytes);

/// Returns the offset just past `"key":` (and any following spaces), or
/// npos. Walks the JSON structure: only a string immediately followed by a
/// colon counts as a key, and string contents are skipped entirely.
std::size_t find_key(const std::string& body, const std::string& key);

bool json_string_field(const std::string& body, const std::string& key,
                       std::string& out);

/// Parses `"key": [n, n, ...]`. Rejects non-finite numbers (nan, inf,
/// overflowing literals like 1e999) — they are not JSON and must never
/// reach the model as silent poison.
bool json_number_array(const std::string& body, const std::string& key,
                       std::vector<double>& out);

/// Shortest round-trip representation (std::to_chars: strtod of the text
/// is bit-exact, like %.17g but much cheaper) — but a non-finite value
/// serializes as `null`: bare `nan`/`inf` tokens are not JSON. Callers
/// that must not emit non-finite at all (the /v1/query success body) check
/// first and fail the request instead.
void append_json_f64(std::string& out, double v);

/// Minimal JSON string escaper: quotes, backslashes and control characters.
std::string json_escape(const std::string& s);

std::string json_error(const std::string& message);

const char* status_text(int status);

/// `extra_headers` holds zero or more fully formed "Name: value\r\n" lines
/// (Retry-After on shed responses).
std::string make_response(int status, const std::string& content_type,
                          const std::string& body, bool keep_alive,
                          const std::string& extra_headers = std::string());

/// RFC-style Retry-After value: whole seconds, at least 1.
std::string retry_after_header(double retry_after_s);

bool iequals(const std::string& a, const char* b);

/// Renders the /v1/query success body — unless any prediction is
/// non-finite, in which case it returns a 500 error body instead (status is
/// rewritten): the server refuses to emit invalid JSON no matter what the
/// model produced.
std::string render_query_body(const std::string& scenario,
                              std::uint64_t version,
                              const std::vector<double>& y, int& status);

}  // namespace sgm::serve::http

namespace sgm::serve {

/// Per-connection state owned by exactly one reactor thread (never shared;
/// batcher completions are marshalled back to the owning reactor before
/// they touch it — see http_server.cpp). Plain struct + small mechanics:
/// the reactor drives parsing/dispatch, the Connection keeps the ordering
/// and write bookkeeping honest.
struct Connection {
  Connection(util::TcpSocket s, std::uint64_t conn_id)
      : sock(std::move(s)), id(conn_id) {}

  util::TcpSocket sock;
  std::uint64_t id = 0;

  /// Streaming input: leftover bytes carry across requests so pipelined
  /// requests are all served regardless of how they chunk onto reads.
  std::string inbuf;

  /// Coalesced output + partial-write cursor: one flush() drains as many
  /// complete responses as the kernel will take; kWouldBlock leaves the
  /// cursor mid-response and EPOLLOUT resumes it.
  std::string outbuf;
  std::size_t out_off = 0;

  /// One entry per parsed-and-dispatched request, in request order. An
  /// async completion fills its slot out of order; only the ready in-order
  /// prefix ever moves to outbuf (HTTP/1.1 responses must not interleave).
  struct PendingResponse {
    bool ready = false;
    std::string bytes;
    util::WallTimer timer;  ///< request parse -> response ready (http_latency)
    /// Context an async completion needs to render its response.
    bool keep_alive = true;
    std::string scenario;
  };
  std::deque<PendingResponse> pending;
  std::uint64_t base_seq = 0;  ///< sequence number of pending.front()
  std::uint64_t next_seq = 0;  ///< sequence the next parsed request gets

  /// No further requests will be parsed from inbuf: the peer asked for (or
  /// a parse error forced) Connection: close, or the server is draining.
  /// The connection closes once every pending response has flushed.
  bool parse_stopped = false;
  bool want_write = false;      ///< EPOLLOUT currently armed
  bool reading_paused = false;  ///< EPOLLIN disarmed (pipeline cap reached)
  bool in_dirty_list = false;   ///< queued for this cycle's deferred flush
  util::WallTimer last_activity;  ///< feeds the idle wheel's lazy recheck

  /// Allocates the next in-order response slot; returns its sequence.
  std::uint64_t open_slot() {
    pending.emplace_back();
    return next_seq++;
  }

  /// Slot `seq`, or nullptr if it is stale / out of range.
  PendingResponse* slot(std::uint64_t seq) {
    if (seq < base_seq || seq - base_seq >= pending.size()) return nullptr;
    return &pending[seq - base_seq];
  }

  /// Fills slot `seq` (request-order sequence from open_slot). Safe for
  /// out-of-order completions; returns false if the seq is stale (already
  /// flushed — cannot happen under the reactor's single-owner discipline,
  /// kept as a guard).
  bool fill_slot(std::uint64_t seq, std::string bytes) {
    if (seq < base_seq || seq - base_seq >= pending.size()) return false;
    PendingResponse& slot = pending[seq - base_seq];
    slot.bytes = std::move(bytes);
    slot.ready = true;
    return true;
  }

  /// Elapsed seconds since slot `seq` was opened (for http_latency).
  double slot_elapsed_s(std::uint64_t seq) const {
    if (seq < base_seq || seq - base_seq >= pending.size()) return 0.0;
    return pending[seq - base_seq].timer.elapsed_s();
  }

  /// Moves the ready in-order prefix of `pending` into outbuf. Returns
  /// true if outbuf grew (the connection needs a flush).
  bool collect_ready() {
    bool grew = false;
    while (!pending.empty() && pending.front().ready) {
      outbuf += pending.front().bytes;
      pending.pop_front();
      ++base_seq;
      grew = true;
    }
    return grew;
  }

  enum class WriteResult : std::uint8_t {
    kFlushed,     ///< outbuf fully written (and compacted)
    kWouldBlock,  ///< kernel buffer full; arm EPOLLOUT and resume later
    kError,       ///< peer gone / write error: close the connection
  };

  /// Drains outbuf through nonblocking writes from the cursor.
  WriteResult flush() {
    while (out_off < outbuf.size()) {
      const long w =
          sock.write_some(outbuf.data() + out_off, outbuf.size() - out_off);
      if (w == util::TcpSocket::kWouldBlock) {
        // Compact lazily so a long EPOLLOUT stall doesn't pin the flushed
        // prefix forever.
        if (out_off > (1u << 16) && out_off > outbuf.size() / 2) {
          outbuf.erase(0, out_off);
          out_off = 0;
        }
        return WriteResult::kWouldBlock;
      }
      if (w < 0) return WriteResult::kError;
      out_off += static_cast<std::size_t>(w);
    }
    outbuf.clear();
    out_off = 0;
    return WriteResult::kFlushed;
  }

  bool has_backlog() const { return out_off < outbuf.size(); }

  /// Nothing left to do: parsing stopped, every response flushed.
  bool should_close() const {
    return parse_stopped && pending.empty() && !has_backlog();
  }
};

}  // namespace sgm::serve
